#!/usr/bin/env python3
"""Convert a bench_sim_throughput CSV into a perf snapshot, and check
one snapshot against another.

Snapshot mode:
    perf_snapshot.py sim_throughput.csv BENCH_6.json [--label PR6]

Check mode (exits 1 on failure):
    perf_snapshot.py sim_throughput.csv current.json \
        --check BENCH_6.json --tolerance 0.10

Several CSVs may be given (repeated runs of the bench); each case
takes its best rate across runs. Wall-clock noise on a busy host is
one-sided -- contention only ever slows a run down -- so best-of-N
recovers the honest rate while the deterministic columns are
required to agree across every run.

The check enforces two different contracts per case:
  * work_per_iter (simulated cycles / completed units per iteration)
    is deterministic and must match the baseline exactly -- a drift
    means simulator semantics changed without a baseline refresh.
  * rate is a wall-clock measurement and only gates *relative*
    regressions: the median current/baseline ratio across all shared
    cases estimates the host-speed scale, and a case fails when
    current < (1 - tolerance) * scale * baseline. A slower or busier
    host shifts every case together (scale absorbs it); a code
    regression hits specific cases relative to the untouched
    baseline benches and trips the floor. Pass --raw-rates to gate
    absolute rates instead (same-host trajectory tracking only).
Uniform wall-clock regressions are by construction invisible to the
normalized gate; they remain inspectable in the emitted snapshots.
Cases present on one side only are reported but do not fail the
check (the grid is allowed to grow).
"""

import argparse
import csv
import json
import sys


def parse_csv(path):
    cases = {}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            name = row["Benchmark"]
            cases[name] = {
                "iters": int(row["Iters"].replace(",", "")),
                "work_per_iter": int(row["Work/Iter"].replace(",", "")),
                "rate": float(row["Rate"].replace(",", "")),
                "unit": row["Unit"],
            }
    if not cases:
        sys.exit(f"perf_snapshot: no rows parsed from {path}")
    return cases


def merge_best(paths):
    merged = parse_csv(paths[0])
    for path in paths[1:]:
        for name, case in parse_csv(path).items():
            prev = merged.get(name)
            if prev is None:
                merged[name] = case
            elif case["work_per_iter"] != prev["work_per_iter"]:
                sys.exit(
                    f"perf_snapshot: {name}: work/iter differs "
                    f"across runs ({prev['work_per_iter']} vs "
                    f"{case['work_per_iter']} in {path}); simulated "
                    "cycles must be deterministic")
            elif case["rate"] > prev["rate"]:
                merged[name] = case
    return merged


def host_scale(current, baseline):
    """Median current/baseline rate ratio over shared cases."""
    ratios = sorted(
        cur["rate"] / base["rate"]
        for name, base in baseline["cases"].items()
        if base["rate"] > 0
        for cur in [current["cases"].get(name)]
        if cur is not None)
    if not ratios:
        return 1.0
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


def check(current, baseline, tolerance, raw_rates):
    scale = 1.0 if raw_rates else host_scale(current, baseline)
    print(f"host-speed scale: {scale:.3f}"
          f"{' (raw rates)' if raw_rates else ' (median ratio)'}")
    failures = []
    for name, base in baseline["cases"].items():
        cur = current["cases"].get(name)
        if cur is None:
            print(f"note: case '{name}' missing from current run")
            continue
        if cur["work_per_iter"] != base["work_per_iter"]:
            failures.append(
                f"{name}: work/iter drifted "
                f"{base['work_per_iter']} -> {cur['work_per_iter']} "
                "(simulated cycles must be deterministic; refresh the "
                "snapshot only with an intended semantics change)")
        floor = (1.0 - tolerance) * scale * base["rate"]
        if cur["rate"] < floor:
            failures.append(
                f"{name}: rate regressed {base['rate']:,.0f} -> "
                f"{cur['rate']:,.0f} {cur['unit']} "
                f"(floor {floor:,.0f} at {tolerance:.0%} tolerance, "
                f"scale {scale:.3f})")
    for name in current["cases"]:
        if name not in baseline["cases"]:
            print(f"note: case '{name}' is new (not in baseline)")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("csv_paths", nargs="+",
                    metavar="sim_throughput.csv",
                    help="one or more runs; cases take their best "
                         "rate across runs")
    ap.add_argument("out_json")
    ap.add_argument("--label", default="")
    ap.add_argument("--check", metavar="BASELINE_JSON")
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--raw-rates", action="store_true",
                    help="gate absolute rates without host-speed "
                         "normalization (same-host runs only)")
    args = ap.parse_args()

    snapshot = {
        "bench": "bench_sim_throughput",
        "label": args.label,
        "cases": merge_best(args.csv_paths),
    }
    with open(args.out_json, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out_json} ({len(snapshot['cases'])} cases)")

    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        failures = check(snapshot, baseline, args.tolerance,
                         args.raw_rates)
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        if failures:
            sys.exit(1)
        print(f"perf check ok vs {args.check}")


if __name__ == "__main__":
    main()
