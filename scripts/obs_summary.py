#!/usr/bin/env python3
"""Summarize canon observability artifacts.

Series mode (the default) reads a --series-out time-series CSV in the
long form the sampler emits
(scenario,pass,metric,component,cycle,value) with cumulative counter
readings. For every (scenario, pass, metric, component) series this
prints the final value, the run length in sampled cycles, and the
mean rate (final value / final cycle) -- the quick look that answers
"which component saturated" without opening the trace UI.

Accounting mode (--accounting-json) reads a canon.stats.v2
--stats-json dump instead and prints the --cycle-accounting
stall-cause breakdown: per observed run, one row per component with
the six category counts and their percentages, ranked by stalled
cycles (upstream starvation + downstream backpressure). The mode
re-checks the accounting invariant -- every component's categories
must sum exactly to the observed cycles -- and exits 1 on any
violation, so it doubles as an artifact validator.

With --metric the series report is restricted to one metric; with
--top K only the K highest-ranked rows are kept (by final value in
series mode, by stalled cycles in accounting mode); with --csv the
summary is emitted as machine-readable CSV instead of the aligned
table.

Usage: obs_summary.py SERIES.csv [--metric NAME] [--top K] [--csv]
       obs_summary.py --accounting-json STATS.json [--top K] [--csv]
"""

import argparse
import csv
import json
import sys

HEADER = ["scenario", "pass", "metric", "component", "cycle", "value"]

CATEGORIES = [
    "compute",
    "stall_upstream_empty",
    "stall_downstream_backpressure",
    "tag_search",
    "drain",
    "idle",
]


def read_series(path):
    """{(scenario, pass, metric, component): [(cycle, value), ...]}"""
    series = {}
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header != HEADER:
            sys.exit(
                f"obs_summary: {path}: unexpected header {header!r}"
            )
        for row in reader:
            if len(row) != 6:
                sys.exit(f"obs_summary: {path}: malformed row {row!r}")
            key = (int(row[0]), int(row[1]), row[2], row[3])
            series.setdefault(key, []).append(
                (int(row[4]), int(row[5]))
            )
    return series


def series_report(args):
    series = read_series(args.series)
    rows = []
    for (scenario, pass_, metric, component), pts in sorted(
        series.items()
    ):
        if args.metric and metric != args.metric:
            continue
        cycles, values = zip(*pts)
        final_cycle, final_value = cycles[-1], values[-1]
        if list(cycles) != sorted(cycles):
            sys.exit(
                f"obs_summary: series {metric}/{component} of "
                f"scenario {scenario} is not cycle-ordered"
            )
        if list(values) != sorted(values):
            sys.exit(
                f"obs_summary: series {metric}/{component} of "
                f"scenario {scenario} is not cumulative"
            )
        rate = final_value / final_cycle if final_cycle else 0.0
        rows.append(
            (
                scenario,
                pass_,
                metric,
                component,
                len(pts),
                final_cycle,
                final_value,
                rate,
            )
        )

    if not rows:
        sys.exit("obs_summary: no matching series")

    if args.top:
        rows.sort(key=lambda r: (-r[6], r[:4]))
        rows = rows[: args.top]

    if args.csv:
        w = csv.writer(sys.stdout)
        w.writerow(
            [
                "scenario",
                "pass",
                "metric",
                "component",
                "samples",
                "cycles",
                "final",
                "per_cycle",
            ]
        )
        for r in rows:
            w.writerow([*r[:7], f"{r[7]:.6f}"])
        return

    fmt = "{:>8} {:>4} {:<18} {:<10} {:>7} {:>10} {:>12} {:>10}"
    print(
        fmt.format(
            "scenario",
            "pass",
            "metric",
            "component",
            "samples",
            "cycles",
            "final",
            "per_cycle",
        )
    )
    for r in rows:
        print(fmt.format(*r[:7], f"{r[7]:.4f}"))


def accounting_report(args):
    try:
        with open(args.accounting_json, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"obs_summary: {args.accounting_json}: {e}")

    schema = doc.get("schema")
    if schema != "canon.stats.v2":
        sys.exit(
            f"obs_summary: schema is {schema!r}, expected"
            " 'canon.stats.v2' (accounting needs --cycle-accounting)"
        )

    rows = []
    violations = 0
    for s in doc.get("scenarios", []):
        runs = s.get("sim", {}).get("runs", [])
        for pass_, run in enumerate(runs):
            acct = run.get("accounting")
            if not acct:
                continue
            cycles = acct["cycles"]
            for comp in acct["components"]:
                cats = [comp[c] for c in CATEGORIES]
                total = sum(cats)
                if total != cycles or comp["total"] != cycles:
                    print(
                        "obs_summary: INVARIANT VIOLATION: scenario"
                        f" {s.get('index')} pass {pass_} component"
                        f" {comp['component']}: categories sum to"
                        f" {total}, observed cycles {cycles}",
                        file=sys.stderr,
                    )
                    violations += 1
                stalled = (
                    comp["stall_upstream_empty"]
                    + comp["stall_downstream_backpressure"]
                )
                rows.append(
                    (
                        s.get("index", 0),
                        pass_,
                        comp["component"],
                        cycles,
                        stalled,
                        *cats,
                    )
                )

    if not rows:
        sys.exit(
            "obs_summary: no accounting records (was the run made"
            " with --cycle-accounting?)"
        )

    rows.sort(key=lambda r: (-r[4], r[0], r[1], r[2]))
    if args.top:
        rows = rows[: args.top]

    head = ["scenario", "pass", "component", "cycles", "stalled"]
    head += CATEGORIES
    if args.csv:
        w = csv.writer(sys.stdout)
        w.writerow(head)
        for r in rows:
            w.writerow(r)
    else:
        fmt = (
            "{:>8} {:>4} {:<10} {:>8} {:>16} {:>12} "
            "{:>20} {:>29} {:>12} {:>10} {:>10}"
        )

        def pct(v, cycles):
            share = 100.0 * v / cycles if cycles else 0.0
            return f"{v} ({share:.1f}%)"

        print(fmt.format(*head))
        for r in rows:
            cells = [pct(v, r[3]) for v in r[4:]]
            print(fmt.format(*r[:4], *cells))

    if violations:
        sys.exit(
            f"obs_summary: FAIL: {violations} accounting invariant"
            " violation(s)"
        )
    print(
        f"obs_summary: accounting OK: {len(rows)} row(s), every"
        " component's categories sum to its observed cycles",
        file=sys.stderr,
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "series",
        nargs="?",
        help="path to the --series-out CSV (series mode)",
    )
    ap.add_argument(
        "--accounting-json",
        metavar="STATS_JSON",
        help="path to a canon.stats.v2 --stats-json dump: print the"
        " stall-cause breakdown instead of the series summary",
    )
    ap.add_argument("--metric", help="only report this metric")
    ap.add_argument(
        "--top",
        type=int,
        metavar="K",
        help="keep only the K highest-ranked rows",
    )
    ap.add_argument(
        "--csv",
        action="store_true",
        help="emit the summary as CSV instead of a table",
    )
    args = ap.parse_args()

    if args.top is not None and args.top < 1:
        ap.error("--top expects a positive count")
    if args.accounting_json:
        if args.series:
            ap.error("--accounting-json replaces the SERIES argument")
        if args.metric:
            ap.error("--metric applies to series mode only")
        accounting_report(args)
    elif args.series:
        series_report(args)
    else:
        ap.error("need a SERIES CSV or --accounting-json")


if __name__ == "__main__":
    main()
