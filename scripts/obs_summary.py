#!/usr/bin/env python3
"""Summarize a canon --series-out time-series CSV.

The input is the long-form CSV the sampler emits
(scenario,pass,metric,component,cycle,value) with cumulative counter
readings. For every (scenario, pass, metric, component) series this
prints the final value, the run length in sampled cycles, and the
mean rate (final value / final cycle) -- the quick look that answers
"which component saturated" without opening the trace UI.

With --metric the report is restricted to one metric; with --csv the
summary is emitted as machine-readable CSV instead of the aligned
table.

Usage: obs_summary.py SERIES.csv [--metric NAME] [--csv]
"""

import argparse
import csv
import sys

HEADER = ["scenario", "pass", "metric", "component", "cycle", "value"]


def read_series(path):
    """{(scenario, pass, metric, component): [(cycle, value), ...]}"""
    series = {}
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header != HEADER:
            sys.exit(
                f"obs_summary: {path}: unexpected header {header!r}"
            )
        for row in reader:
            if len(row) != 6:
                sys.exit(f"obs_summary: {path}: malformed row {row!r}")
            key = (int(row[0]), int(row[1]), row[2], row[3])
            series.setdefault(key, []).append(
                (int(row[4]), int(row[5]))
            )
    return series


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("series", help="path to the --series-out CSV")
    ap.add_argument("--metric", help="only report this metric")
    ap.add_argument(
        "--csv",
        action="store_true",
        help="emit the summary as CSV instead of a table",
    )
    args = ap.parse_args()

    series = read_series(args.series)
    rows = []
    for (scenario, pass_, metric, component), pts in sorted(
        series.items()
    ):
        if args.metric and metric != args.metric:
            continue
        cycles, values = zip(*pts)
        final_cycle, final_value = cycles[-1], values[-1]
        if list(cycles) != sorted(cycles):
            sys.exit(
                f"obs_summary: series {metric}/{component} of "
                f"scenario {scenario} is not cycle-ordered"
            )
        if list(values) != sorted(values):
            sys.exit(
                f"obs_summary: series {metric}/{component} of "
                f"scenario {scenario} is not cumulative"
            )
        rate = final_value / final_cycle if final_cycle else 0.0
        rows.append(
            (
                scenario,
                pass_,
                metric,
                component,
                len(pts),
                final_cycle,
                final_value,
                rate,
            )
        )

    if not rows:
        sys.exit("obs_summary: no matching series")

    if args.csv:
        w = csv.writer(sys.stdout)
        w.writerow(
            [
                "scenario",
                "pass",
                "metric",
                "component",
                "samples",
                "cycles",
                "final",
                "per_cycle",
            ]
        )
        for r in rows:
            w.writerow([*r[:7], f"{r[7]:.6f}"])
        return

    fmt = "{:>8} {:>4} {:<18} {:<10} {:>7} {:>10} {:>12} {:>10}"
    print(
        fmt.format(
            "scenario",
            "pass",
            "metric",
            "component",
            "samples",
            "cycles",
            "final",
            "per_cycle",
        )
    )
    for r in rows:
        print(fmt.format(*r[:7], f"{r[7]:.4f}"))


if __name__ == "__main__":
    main()
