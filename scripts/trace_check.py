#!/usr/bin/env python3
"""Validate a canon --trace-out Chrome trace-event JSON document.

Checks, in order:

 1. the file parses as JSON and has the canon-trace-1 envelope
    (traceEvents array, otherData.schema, displayTimeUnit);
 2. every event carries the required fields for its phase -- all
    events name/ph/ts/pid/tid, complete events ("X") a non-negative
    dur, instants ("i") the thread scope marker s="t";
 3. per (pid, tid) track, timestamps are non-decreasing in array
    order (the writer serializes scenarios on a virtual timeline, so
    an out-of-order event means the report layer regressed);
 4. the metadata names the expected tracks ("engine" and, when any
    simulation executed, "sim");
 5. when the trace carries cycle-accounting counter tracks
    ("acct.*" 'C' events from --cycle-accounting with sampling), the
    cumulative category values are non-decreasing per track, every
    capture carries all six categories plus the acct.accounted
    rollup, and at every capture the six categories sum exactly to
    acct.accounted -- the trace-level face of the
    categories-sum-to-cycles invariant. --require-accounting makes
    the absence of these tracks itself a failure (the CI accounting
    pass uses it).

Exit code 0 on success; 1 with a diagnostic on the first violation.

Usage: trace_check.py TRACE.json [--min-events N]
       [--require-accounting]
"""

import argparse
import json
import sys

PHASES = {"M", "X", "i", "C"}
SCHEMA = "canon-trace-1"

ACCT_CATEGORIES = [
    "acct.compute",
    "acct.stall_upstream_empty",
    "acct.stall_downstream_backpressure",
    "acct.tag_search",
    "acct.drain",
    "acct.idle",
]
ACCT_ROLLUP = "acct.accounted"
ACCT_NAMES = set(ACCT_CATEGORIES) | {ACCT_ROLLUP}


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_accounting(acct_events, required):
    """Validate the acct.* counter tracks collected from the trace.

    acct_events: [(index, run, name, ts, value)] in array order,
    where run identifies the enclosing sim.run span (each run's
    accountant counts from zero, so cumulative checks are per run)
    and value is the summed args of one 'C' event (the accountant
    emits a single fabric rollup arg per capture).
    """
    if not acct_events:
        if required:
            fail(
                "no acct.* counter tracks (--require-accounting set;"
                " was the trace made with --cycle-accounting and"
                " --sample-every?)"
            )
        return 0

    last = {}
    captures = {}
    for i, run, name, ts, value in acct_events:
        where = f"traceEvents[{i}]"
        if run < 0:
            fail(f"{where}: acct counter outside any sim.run span")
        prev = last.get((run, name))
        if prev is not None and value < prev:
            fail(
                f"{where}: cumulative counter {name} decreased"
                f" within a run ({prev} -> {value})"
            )
        last[(run, name)] = value
        cap = captures.setdefault((run, ts), {})
        if name in cap:
            fail(f"{where}: duplicate {name} sample at ts {ts}")
        cap[name] = value

    for (run, ts), cap in sorted(captures.items()):
        missing = ACCT_NAMES - cap.keys()
        if missing:
            fail(
                f"accounting capture at ts {ts} is missing"
                f" {sorted(missing)}"
            )
        total = sum(cap[c] for c in ACCT_CATEGORIES)
        if total != cap[ACCT_ROLLUP]:
            fail(
                f"accounting capture at ts {ts}: categories sum to"
                f" {total}, {ACCT_ROLLUP} says {cap[ACCT_ROLLUP]}"
            )
    return len(captures)


def check(trace_path, min_events, require_accounting):
    try:
        with open(trace_path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{trace_path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    schema = doc.get("otherData", {}).get("schema")
    if schema != SCHEMA:
        fail(f"otherData.schema is {schema!r}, expected {SCHEMA!r}")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit is not 'ms'")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    if len(events) < min_events:
        fail(f"only {len(events)} events, expected >= {min_events}")

    last_ts = {}
    thread_names = set()
    counts = dict.fromkeys(PHASES, 0)
    acct_events = []
    sim_run = -1
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"{where}: missing {field!r}")
        ph = e["ph"]
        if ph not in PHASES:
            fail(f"{where}: unexpected phase {ph!r}")
        counts[ph] += 1
        if ph == "X" and e.get("dur", -1) < 0:
            fail(f"{where}: X event without non-negative dur")
        if ph == "i" and e.get("s") != "t":
            fail(f"{where}: instant without thread scope s='t'")
        if ph == "M":
            if e["name"] == "thread_name":
                thread_names.add(e.get("args", {}).get("name"))
            continue
        if ph == "X" and e["name"] == "sim.run":
            sim_run += 1
        if ph == "C" and e["name"] in ACCT_NAMES:
            args = e.get("args", {})
            if not args:
                fail(f"{where}: acct counter without args")
            acct_events.append(
                (i, sim_run, e["name"], e["ts"], sum(args.values()))
            )
        track = (e["pid"], e["tid"])
        ts = e["ts"]
        if ts < last_ts.get(track, 0):
            fail(
                f"{where}: ts {ts} goes backwards on track "
                f"pid={track[0]} tid={track[1]} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ts

    if "engine" not in thread_names:
        fail("no 'engine' thread_name metadata event")
    if counts["X"] == 0:
        fail("no complete ('X') spans at all")

    acct_captures = check_accounting(acct_events, require_accounting)

    acct_note = (
        f", accounting invariant holds at {acct_captures} captures"
        if acct_captures
        else ""
    )
    print(
        f"trace_check: OK: {trace_path}: {len(events)} events "
        f"({counts['X']} spans, {counts['C']} counter samples, "
        f"{counts['i']} instants) on {len(last_ts)} tracks, "
        f"timestamps monotonic per track{acct_note}"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to the --trace-out JSON file")
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum total event count (default 1)",
    )
    ap.add_argument(
        "--require-accounting",
        action="store_true",
        help="fail unless the trace carries acct.* counter tracks",
    )
    args = ap.parse_args()
    check(args.trace, args.min_events, args.require_accounting)


if __name__ == "__main__":
    main()
