#!/usr/bin/env python3
"""Validate a canon --trace-out Chrome trace-event JSON document.

Checks, in order:

 1. the file parses as JSON and has the canon-trace-1 envelope
    (traceEvents array, otherData.schema, displayTimeUnit);
 2. every event carries the required fields for its phase -- all
    events name/ph/ts/pid/tid, complete events ("X") a non-negative
    dur, instants ("i") the thread scope marker s="t";
 3. per (pid, tid) track, timestamps are non-decreasing in array
    order (the writer serializes scenarios on a virtual timeline, so
    an out-of-order event means the report layer regressed);
 4. the metadata names the expected tracks ("engine" and, when any
    simulation executed, "sim").

Exit code 0 on success; 1 with a diagnostic on the first violation.

Usage: trace_check.py TRACE.json [--min-events N]
"""

import argparse
import json
import sys

PHASES = {"M", "X", "i", "C"}
SCHEMA = "canon-trace-1"


def fail(msg):
    print(f"trace_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(trace_path, min_events):
    try:
        with open(trace_path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{trace_path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    schema = doc.get("otherData", {}).get("schema")
    if schema != SCHEMA:
        fail(f"otherData.schema is {schema!r}, expected {SCHEMA!r}")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit is not 'ms'")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    if len(events) < min_events:
        fail(f"only {len(events)} events, expected >= {min_events}")

    last_ts = {}
    thread_names = set()
    counts = dict.fromkeys(PHASES, 0)
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"{where}: missing {field!r}")
        ph = e["ph"]
        if ph not in PHASES:
            fail(f"{where}: unexpected phase {ph!r}")
        counts[ph] += 1
        if ph == "X" and e.get("dur", -1) < 0:
            fail(f"{where}: X event without non-negative dur")
        if ph == "i" and e.get("s") != "t":
            fail(f"{where}: instant without thread scope s='t'")
        if ph == "M":
            if e["name"] == "thread_name":
                thread_names.add(e.get("args", {}).get("name"))
            continue
        track = (e["pid"], e["tid"])
        ts = e["ts"]
        if ts < last_ts.get(track, 0):
            fail(
                f"{where}: ts {ts} goes backwards on track "
                f"pid={track[0]} tid={track[1]} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ts

    if "engine" not in thread_names:
        fail("no 'engine' thread_name metadata event")
    if counts["X"] == 0:
        fail("no complete ('X') spans at all")

    print(
        f"trace_check: OK: {trace_path}: {len(events)} events "
        f"({counts['X']} spans, {counts['C']} counter samples, "
        f"{counts['i']} instants) on {len(last_ts)} tracks, "
        "timestamps monotonic per track"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to the --trace-out JSON file")
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum total event count (default 1)",
    )
    args = ap.parse_args()
    check(args.trace, args.min_events)


if __name__ == "__main__":
    main()
