/**
 * @file
 * PE pipeline tests: a single PE driven by a hand-held instruction
 * pipeline. Verifies 3-stage timing, exact forwarding for
 * back-to-back accumulation, VFlush's recycle-zeroing, routing
 * pass-through, port discipline panics, and memory/register
 * semantics.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "pe/pe.hh"
#include "sim/simulator.hh"

namespace canon
{
namespace
{

namespace as = addrspace;

/** Single-PE harness with channels on all four sides. */
class PeHarness
{
  public:
    PeHarness()
        : stats("t"), pe(PeGeometry{0, 0}, 64, 8, stats), pipe(1),
          north(8, "n"), south(8, "s"), east(8, "e"), west(8, "w")
    {
        pe.bindPipeline(&pipe);
        pe.router().bindIn(Dir::North, &north);
        pe.router().bindOut(Dir::South, &south);
        pe.router().bindIn(Dir::West, &west);
        pe.router().bindOut(Dir::East, &east);
        sim.add(&pipe);
        sim.add(&pe);
        sim.add(&committer);
        committer.chans = {&north, &south, &east, &west};
    }

    void
    issue(const Instruction &i)
    {
        pipe.issue(i);
    }

    void step() { sim.step(); }

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            step();
    }

    struct Committer : Clocked
    {
        std::vector<ChannelFifo<Vec4> *> chans;
        void tickCompute() override {}
        void
        tickCommit() override
        {
            for (auto *c : chans)
                c->commit();
        }
    };

    StatGroup stats;
    Simulator sim;
    Pe pe;
    InstPipeline pipe;
    DataChannel north, south, east, west;
    Committer committer;
};

Instruction
inst(OpCode op, Addr a, Addr b, Addr r, std::uint8_t route = 0)
{
    Instruction i;
    i.op = op;
    i.op1 = a;
    i.op2 = b;
    i.res = r;
    i.route = route;
    return i;
}

TEST(PePipeline, VMovThreeStageLatency)
{
    PeHarness h;
    h.pe.dmem().poke(3, Vec4{{7, 8, 9, 10}});
    h.issue(inst(OpCode::VMov, as::dmem(3), as::kNullAddr, as::reg(0)));
    // Tap at cycle 1 (issue latch), LOAD 1, EXEC 2, COMMIT 3.
    h.run(3);
    EXPECT_TRUE(h.pe.reg(0).isZero());
    h.run(1);
    EXPECT_EQ(h.pe.reg(0), (Vec4{{7, 8, 9, 10}}));
}

TEST(PePipeline, BackToBackAccumulationForwards)
{
    // Three consecutive SvMacs into the same register must see each
    // other's results exactly (the dense inner loop).
    PeHarness h;
    h.pe.dmem().poke(0, Vec4{{1, 2, 3, 4}});
    h.west.push(Vec4{{2, 0, 0, 0}});
    h.west.push(Vec4{{3, 0, 0, 0}});
    h.west.push(Vec4{{5, 0, 0, 0}});
    h.west.commit();

    const auto mac = inst(OpCode::SvMac, as::portIn(Dir::West),
                          as::dmem(0), as::reg(1));
    h.issue(mac);
    h.step();
    h.issue(mac);
    h.step();
    h.issue(mac);
    h.run(5);
    // (2+3+5) * [1,2,3,4]
    EXPECT_EQ(h.pe.reg(1), (Vec4{{10, 20, 30, 40}}));
}

TEST(PePipeline, VFlushZeroesSourceAndSendsSouth)
{
    PeHarness h;
    h.pe.spad().poke(2, Vec4{{5, 6, 7, 8}});
    h.issue(inst(OpCode::VFlush, as::spad(2), as::kNullAddr,
                 as::portOut(Dir::South)));
    h.run(5);
    EXPECT_TRUE(h.pe.spad().peek(2).isZero());
    ASSERT_FALSE(h.south.empty());
    EXPECT_EQ(h.south.front(), (Vec4{{5, 6, 7, 8}}));
}

TEST(PePipeline, VFlushThenImmediateMacSeesZero)
{
    // The recycled-slot hazard: a MAC issued right after a flush of
    // the same slot must accumulate from zero, not the stale psum.
    PeHarness h;
    h.pe.spad().poke(0, Vec4{{100, 100, 100, 100}});
    h.pe.dmem().poke(0, Vec4{{1, 1, 1, 1}});
    h.west.push(Vec4{{4, 0, 0, 0}});
    h.west.commit();

    h.issue(inst(OpCode::VFlush, as::spad(0), as::kNullAddr,
                 as::portOut(Dir::South)));
    h.step();
    h.issue(inst(OpCode::SvMac, as::portIn(Dir::West), as::dmem(0),
                 as::spad(0)));
    h.run(5);
    EXPECT_EQ(h.pe.spad().peek(0), (Vec4{{4, 4, 4, 4}}));
}

TEST(PePipeline, RoutePassThroughNorthToSouth)
{
    PeHarness h;
    h.north.push(Vec4{{9, 9, 9, 9}});
    h.north.commit();
    h.issue(inst(OpCode::Nop, as::kNullAddr, as::kNullAddr,
                 as::kNullAddr, kRouteN2S));
    h.run(5);
    ASSERT_FALSE(h.south.empty());
    EXPECT_EQ(h.south.front(), (Vec4{{9, 9, 9, 9}}));
    EXPECT_TRUE(h.north.empty());
}

TEST(PePipeline, SharedPortPopFeedsOperandAndRoute)
{
    // SvMac consuming W_IN while also routing W->E: one physical pop.
    PeHarness h;
    h.pe.dmem().poke(0, Vec4{{1, 1, 1, 1}});
    h.west.push(Vec4{{6, 0, 0, 0}});
    h.west.commit();
    h.issue(inst(OpCode::SvMac, as::portIn(Dir::West), as::dmem(0),
                 as::reg(0), kRouteW2E));
    h.run(5);
    EXPECT_EQ(h.pe.reg(0), (Vec4{{6, 6, 6, 6}}));
    ASSERT_FALSE(h.east.empty());
    EXPECT_EQ(h.east.front()[0], 6);
    EXPECT_TRUE(h.west.empty());
}

TEST(PePipeline, VvMacWChainsWestPsum)
{
    PeHarness h;
    h.pe.spad().poke(0, Vec4{{1, 2, 3, 4}});
    h.pe.dmem().poke(0, Vec4{{2, 2, 2, 2}});
    h.west.push(Vec4{{10, 20, 30, 40}});
    h.west.commit();
    h.issue(inst(OpCode::VvMacW, as::spad(0), as::dmem(0),
                 as::portOut(Dir::East)));
    h.run(5);
    ASSERT_FALSE(h.east.empty());
    EXPECT_EQ(h.east.front(), (Vec4{{12, 24, 36, 48}}));
}

TEST(PePipeline, ReadingEmptyPortPanics)
{
    PeHarness h;
    h.issue(inst(OpCode::VMov, as::portIn(Dir::North), as::kNullAddr,
                 as::reg(0)));
    EXPECT_THROW(h.run(3), PanicError);
}

TEST(PePipeline, TwoSpadReadsPanics)
{
    PeHarness h;
    h.issue(inst(OpCode::VAdd, as::spad(0), as::spad(1), as::reg(0)));
    EXPECT_THROW(h.run(3), PanicError);
}

TEST(PePipeline, ZeroAddrReadsZero)
{
    PeHarness h;
    h.pe.pokeReg(2, Vec4{{5, 5, 5, 5}});
    h.issue(inst(OpCode::VAdd, as::kZeroAddr, as::reg(2), as::reg(3)));
    h.run(4);
    EXPECT_EQ(h.pe.reg(3), (Vec4{{5, 5, 5, 5}}));
}

TEST(PePipeline, NullDestinationDiscards)
{
    PeHarness h;
    h.pe.pokeReg(0, Vec4{{1, 1, 1, 1}});
    h.issue(
        inst(OpCode::VMov, as::reg(0), as::kNullAddr, as::kNullAddr));
    EXPECT_NO_THROW(h.run(4));
}

TEST(PePipeline, IdleWhenDrained)
{
    PeHarness h;
    EXPECT_TRUE(h.pe.idle());
    h.issue(inst(OpCode::VMov, as::kZeroAddr, as::kNullAddr,
                 as::reg(0)));
    h.run(2); // issue latch + LOAD
    EXPECT_FALSE(h.pe.idle());
    h.run(4);
    EXPECT_TRUE(h.pe.idle());
}

TEST(VecRam, BoundsAndStats)
{
    StatGroup stats("t");
    VecRam ram("dmem", 8, 1, stats);
    EXPECT_EQ(ram.sizeBytes(), 32u);
    ram.write(3, Vec4{{1, 2, 3, 4}});
    EXPECT_EQ(ram.read(3), (Vec4{{1, 2, 3, 4}}));
    EXPECT_THROW(ram.read(8), PanicError);
    EXPECT_THROW(ram.write(-1, Vec4{}), PanicError);
    EXPECT_EQ(stats.sumCounter("dmemReads"), 1u);
    EXPECT_EQ(stats.sumCounter("dmemWrites"), 1u);
}

TEST(TrafficModel, BandwidthArithmetic)
{
    TrafficModel t;
    t.addRead(1'000'000'000); // 1 GB over 1e9 cycles @1GHz = 1 GB/s
    EXPECT_NEAR(t.requiredBandwidthGBps(1'000'000'000), 1.0, 1e-9);
    const auto dev = lpddr5x16();
    EXPECT_NEAR(static_cast<double>(t.transferCycles(dev)),
                1e9 / 17.0, 1e5);
}

} // namespace
} // namespace canon
