/**
 * @file
 * Observability-layer tests: the obs flag grammar and its cross-flag
 * validation, cycle-sampler determinism across registration-shuffle
 * seeds, the zero-perturbation guarantee (observed runs behave
 * bit-identically to unobserved ones), engine-level byte-equality of
 * all three artifacts across worker counts, Chrome-trace schema
 * validity with per-track monotonic timestamps, and the structured
 * stats dump round-trip against the in-memory profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli/options.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "core/fabric.hh"
#include "engine/common_flags.hh"
#include "engine/engine.hh"
#include "engine/obs_report.hh"
#include "kernels/spmm.hh"
#include "obs/accounting.hh"
#include "obs/collector.hh"
#include "obs/hist.hh"
#include "obs/host.hh"
#include "obs/sampler.hh"
#include "obs/series.hh"
#include "sparse/generate.hh"

namespace canon
{
namespace
{

// ---------------------------------------------------------------------
// Flag grammar.
// ---------------------------------------------------------------------

engine::FlagParse
offer(const std::string &key, const std::string &value,
      engine::CommonFlags &out)
{
    std::string err;
    return engine::parseCommonFlag(key, value, out, err);
}

TEST(ObsFlags, RecognizedAsCommon)
{
    EXPECT_TRUE(engine::isCommonFlag("--sample-every"));
    EXPECT_TRUE(engine::isCommonFlag("--series-out"));
    EXPECT_TRUE(engine::isCommonFlag("--trace-out"));
    EXPECT_TRUE(engine::isCommonFlag("--stats-json"));
    EXPECT_FALSE(engine::isCommonFlag("--sample"));
}

TEST(ObsFlags, SampleEveryParsesAndRejects)
{
    engine::CommonFlags f;
    EXPECT_EQ(offer("--sample-every", "50", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(f.obs.sampleEvery, 50u);

    for (const char *bad : {"0", "-3", "abc", "1000000001", ""}) {
        engine::CommonFlags g;
        std::string err;
        EXPECT_EQ(engine::parseCommonFlag("--sample-every", bad, g,
                                          err),
                  engine::FlagParse::Error)
            << "value '" << bad << "'";
        EXPECT_FALSE(err.empty()) << "value '" << bad << "'";
    }
}

TEST(ObsFlags, OutputPathsParseAndRejectEmpty)
{
    engine::CommonFlags f;
    EXPECT_EQ(offer("--series-out", "s.csv", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(offer("--trace-out", "t.json", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(offer("--stats-json", "j.json", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(f.obs.seriesOut, "s.csv");
    EXPECT_EQ(f.obs.traceOut, "t.json");
    EXPECT_EQ(f.obs.statsJsonOut, "j.json");

    for (const char *key :
         {"--series-out", "--trace-out", "--stats-json"}) {
        engine::CommonFlags g;
        EXPECT_EQ(offer(key, "", g), engine::FlagParse::Error)
            << key;
    }
}

TEST(ObsFlags, BooleanFlagsParseAndRejectValues)
{
    EXPECT_TRUE(engine::isCommonFlag("--cycle-accounting"));
    EXPECT_TRUE(engine::isCommonFlag("--host-timers"));
    EXPECT_TRUE(engine::isCommonBoolFlag("--cycle-accounting"));
    EXPECT_TRUE(engine::isCommonBoolFlag("--host-timers"));
    EXPECT_FALSE(engine::isCommonBoolFlag("--sample-every"));
    EXPECT_FALSE(engine::isCommonBoolFlag("--series-out"));

    engine::CommonFlags f;
    EXPECT_EQ(offer("--cycle-accounting", "", f),
              engine::FlagParse::Ok);
    EXPECT_TRUE(f.obs.cycleAccounting);
    EXPECT_EQ(offer("--host-timers", "", f), engine::FlagParse::Ok);
    EXPECT_TRUE(f.obs.hostTimers);

    // Boolean knobs take no value: --cycle-accounting=on is a typo,
    // not a request.
    for (const char *key : {"--cycle-accounting", "--host-timers"}) {
        engine::CommonFlags g;
        std::string err;
        EXPECT_EQ(engine::parseCommonFlag(key, "on", g, err),
                  engine::FlagParse::Error)
            << key;
        EXPECT_FALSE(err.empty()) << key;
    }
}

TEST(ObsFlags, OutputPathParentsValidatedAtParseTime)
{
    // A typo'd directory fails fast, before anything simulates.
    for (const char *key :
         {"--series-out", "--trace-out", "--stats-json"}) {
        engine::CommonFlags f;
        f.obs.sampleEvery = 10;
        const std::string path =
            "no-such-canon-dir-xyzzy/out.dat";
        if (std::string(key) == "--series-out")
            f.obs.seriesOut = path;
        else if (std::string(key) == "--trace-out")
            f.obs.traceOut = path;
        else
            f.obs.statsJsonOut = path;
        const std::string err = engine::validateCommonFlags(f);
        EXPECT_FALSE(err.empty()) << key;
        EXPECT_NE(err.find("does not exist"), std::string::npos)
            << err;
    }

    // A bare filename writes into the (writable) cwd: fine.
    engine::CommonFlags ok;
    ok.obs.statsJsonOut = "ok.json";
    EXPECT_TRUE(engine::validateCommonFlags(ok).empty());

    // An existing directory is not a writable file target.
    engine::CommonFlags dir;
    dir.obs.statsJsonOut = ".";
    EXPECT_FALSE(engine::validateCommonFlags(dir).empty());
}

TEST(ObsFlags, CrossValidation)
{
    // --series-out needs a cadence to sample at.
    engine::CommonFlags f;
    f.obs.seriesOut = "s.csv";
    EXPECT_FALSE(engine::validateCommonFlags(f).empty());

    // A cadence with no output requested samples into the void.
    engine::CommonFlags g;
    g.obs.sampleEvery = 10;
    EXPECT_FALSE(engine::validateCommonFlags(g).empty());

    // Cadence + any output flag is a valid combination.
    engine::CommonFlags h;
    h.obs.sampleEvery = 10;
    h.obs.traceOut = "t.json";
    EXPECT_TRUE(engine::validateCommonFlags(h).empty());

    // Trace/stats dumps alone need no cadence.
    engine::CommonFlags k;
    k.obs.statsJsonOut = "j.json";
    EXPECT_TRUE(engine::validateCommonFlags(k).empty());
}

TEST(ObsOptions, DisabledByDefault)
{
    const obs::ObsOptions opt;
    EXPECT_FALSE(opt.enabled());
    EXPECT_FALSE(opt.sampling());
    EXPECT_FALSE(opt.wantFlatStats());
    EXPECT_FALSE(opt.cycleAccounting);
    EXPECT_FALSE(opt.hostTimers);
}

TEST(ObsOptions, AccountingAloneEnables)
{
    obs::ObsOptions opt;
    opt.cycleAccounting = true;
    EXPECT_TRUE(opt.enabled());
    EXPECT_FALSE(opt.sampling());

    obs::ObsOptions timers;
    timers.hostTimers = true;
    EXPECT_TRUE(timers.enabled());
}

// ---------------------------------------------------------------------
// Histogram bucket scheme.
// ---------------------------------------------------------------------

TEST(Histogram, BucketEdges)
{
    using obs::Histogram;
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    EXPECT_EQ(Histogram::bucketOf(7), 3);
    EXPECT_EQ(Histogram::bucketOf(32767), Histogram::kBuckets - 2);
    EXPECT_EQ(Histogram::bucketOf(32768), Histogram::kBuckets - 1);
    // Overflow clamps into the last bucket instead of falling off.
    EXPECT_EQ(Histogram::bucketOf(std::uint64_t(1) << 40),
              Histogram::kBuckets - 1);

    // Every bucket's lower bound lands in that bucket, and the value
    // just below it lands in the previous one.
    for (int b = 1; b < Histogram::kBuckets; ++b) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(b) - 1),
                  b - 1);
    }
}

TEST(Histogram, RecordCountsAndLabels)
{
    obs::Histogram h;
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(5);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(3), 2u);

    EXPECT_EQ(obs::Histogram::bucketLabel(0), "0");
    EXPECT_EQ(obs::Histogram::bucketLabel(1), "1");
    EXPECT_EQ(obs::Histogram::bucketLabel(2), "2-3");
    EXPECT_EQ(obs::Histogram::bucketLabel(obs::Histogram::kBuckets -
                                          1),
              "32768+");
}

// ---------------------------------------------------------------------
// Sampler cadence edges (driven directly, no fabric).
// ---------------------------------------------------------------------

TEST(Sampler, ExactCadenceMultipleSamplesOnceAtRunEnd)
{
    // 10 cycles at --sample-every 5: samples at 5 and 10, and the
    // final-interval capture must notice cycle 10 is already sampled
    // instead of duplicating it.
    StatGroup stats("fabric");
    Counter &c = stats.counter("macOps");
    obs::CycleSampler s(stats, 5);
    for (int i = 0; i < 10; ++i) {
        ++c;
        s.tickCommit();
    }
    s.captureFinal();
    const auto set = s.take();
    ASSERT_EQ(set.series.size(), 1u);
    const auto &pts = set.series[0].points;
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].cycle, 5u);
    EXPECT_EQ(pts[0].value, 5u);
    EXPECT_EQ(pts[1].cycle, 10u);
    EXPECT_EQ(pts[1].value, 10u);
}

TEST(Sampler, RunShorterThanOneCadenceStillGetsFinalSample)
{
    StatGroup stats("fabric");
    Counter &c = stats.counter("macOps");
    obs::CycleSampler s(stats, 100);
    for (int i = 0; i < 3; ++i) {
        ++c;
        s.tickCommit();
    }
    s.captureFinal();
    const auto set = s.take();
    ASSERT_EQ(set.series.size(), 1u);
    const auto &pts = set.series[0].points;
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].cycle, 3u);
    EXPECT_EQ(pts[0].value, 3u);
}

// ---------------------------------------------------------------------
// Sampler determinism and zero perturbation on a live fabric.
// ---------------------------------------------------------------------

struct ObservedRun
{
    Cycle cycles = 0;
    WordMatrix result;
    std::map<std::string, std::uint64_t> flat;
    std::uint64_t macOps = 0;
    std::shared_ptr<const obs::ScenarioObs> obs;
};

/**
 * One sampled SpMM execution under a registration shuffle. The
 * workload is fixed; only the shuffle seed, the observation options,
 * and the orchestrator policy axes vary.
 */
ObservedRun
sampledRun(std::uint64_t shuffle_seed, bool observe,
           int tag_banks = 1,
           SpadFlushPolicy flush = SpadFlushPolicy::Eager)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    cfg.tagBanks = tag_banks;
    cfg.spadFlush = flush;
    Rng rng(77);
    const auto a = randomSparse(32, 16, 0.5, rng);
    const auto b = randomDense(16, 8, rng);

    obs::ObsOptions opt;
    opt.sampleEvery = 25;
    opt.seriesOut = "unused.csv"; // never written; writers not called
    opt.statsJsonOut = "unused.json";

    ObservedRun out;
    CanonFabric fabric(cfg, shuffle_seed);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    if (observe) {
        obs::Collector col(opt);
        obs::ScopedCollector scope(col);
        out.cycles = fabric.run();
        out.obs = col.finish();
    } else {
        out.cycles = fabric.run();
    }
    out.result = fabric.result();
    out.flat = fabric.stats().flatten();
    out.macOps = fabric.stats().sumCounter("macOps");
    return out;
}

TEST(Sampler, SeriesIdenticalAcrossRegistrationShuffles)
{
    const auto ref = sampledRun(0, true);
    ASSERT_EQ(ref.obs->runs.size(), 1u);
    ASSERT_FALSE(ref.obs->runs[0].series.empty());
    for (std::uint64_t seed : {1ull, 12345ull}) {
        const auto got = sampledRun(seed, true);
        EXPECT_EQ(got.cycles, ref.cycles) << "seed " << seed;
        ASSERT_EQ(got.obs->runs.size(), 1u);
        EXPECT_EQ(got.obs->runs[0].series, ref.obs->runs[0].series)
            << "seed " << seed;
        EXPECT_EQ(got.obs->runs[0].flat, ref.obs->runs[0].flat)
            << "seed " << seed;
    }
}

TEST(Sampler, SeriesIdenticalAcrossShufflesUnderPolicyAxes)
{
    // The banked search and the adaptive flush policy must not leak
    // registration order into the sampled series either.
    const auto ref =
        sampledRun(0, true, 4, SpadFlushPolicy::Adaptive);
    ASSERT_EQ(ref.obs->runs.size(), 1u);
    ASSERT_FALSE(ref.obs->runs[0].series.empty());
    for (std::uint64_t seed : {1ull, 12345ull}) {
        const auto got =
            sampledRun(seed, true, 4, SpadFlushPolicy::Adaptive);
        EXPECT_EQ(got.cycles, ref.cycles) << "seed " << seed;
        ASSERT_EQ(got.obs->runs.size(), 1u);
        EXPECT_EQ(got.obs->runs[0].series, ref.obs->runs[0].series)
            << "seed " << seed;
        EXPECT_EQ(got.obs->runs[0].flat, ref.obs->runs[0].flat)
            << "seed " << seed;
    }
    // Same answer as the eager/linear baseline: policies change
    // timing and probe cost, never values.
    EXPECT_EQ(ref.result, sampledRun(0, false).result);
}

TEST(Sampler, SeriesShapeAndCumulativeValues)
{
    const auto run = sampledRun(0, true);
    const auto &set = run.obs->runs[0].series;

    // Probes include the fabric-wide rollup and each orchestrator.
    bool saw_fabric = false, saw_orch = false;
    for (const auto &s : set.series) {
        saw_fabric |= s.component == "fabric";
        saw_orch |= s.component.rfind("orch", 0) == 0;

        // Every series shares the cadence: samples at multiples of 25
        // plus one final partial-interval sample at run end.
        ASSERT_FALSE(s.points.empty()) << s.metric;
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            const auto &p = s.points[i];
            if (i + 1 < s.points.size())
                EXPECT_EQ(p.cycle % 25, 0u) << s.metric;
            else
                EXPECT_EQ(p.cycle, run.cycles) << s.metric;
            if (i > 0) {
                EXPECT_GT(p.cycle, s.points[i - 1].cycle);
                // Cumulative counters never decrease.
                EXPECT_GE(p.value, s.points[i - 1].value)
                    << s.metric << "@" << p.cycle;
            }
        }
    }
    EXPECT_TRUE(saw_fabric);
    EXPECT_TRUE(saw_orch);

    // The fabric macOps series must end at the counter's final value.
    for (const auto &s : set.series)
        if (s.metric == "macOps" && s.component == "fabric")
            EXPECT_EQ(s.points.back().value, run.macOps);
}

TEST(Sampler, ObservationDoesNotPerturbTheRun)
{
    // The observed execution is bit-identical to the unobserved one:
    // same cycle count, same result matrix, same final stats.
    const auto off = sampledRun(0, false);
    const auto on = sampledRun(0, true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.result, on.result);
    EXPECT_EQ(off.flat, on.flat);
    EXPECT_EQ(off.obs, nullptr);
    EXPECT_EQ(obs::current(), nullptr);
}

// ---------------------------------------------------------------------
// Cycle accounting on a live fabric.
// ---------------------------------------------------------------------

/** sampledRun with --cycle-accounting on (and optional sampling). */
ObservedRun
accountedRun(std::uint64_t shuffle_seed, bool sample = true)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    Rng rng(77);
    const auto a = randomSparse(32, 16, 0.5, rng);
    const auto b = randomDense(16, 8, rng);

    obs::ObsOptions opt;
    opt.cycleAccounting = true;
    opt.statsJsonOut = "unused.json";
    if (sample) {
        opt.sampleEvery = 25;
        opt.seriesOut = "unused.csv";
    }

    ObservedRun out;
    CanonFabric fabric(cfg, shuffle_seed);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    obs::Collector col(opt);
    {
        obs::ScopedCollector scope(col);
        out.cycles = fabric.run();
    }
    out.obs = col.finish();
    out.result = fabric.result();
    out.flat = fabric.stats().flatten();
    return out;
}

TEST(Accounting, CategoriesSumExactlyToObservedCycles)
{
    const auto run = accountedRun(0);
    ASSERT_EQ(run.obs->runs.size(), 1u);
    const auto &acct = run.obs->runs[0].accounting;
    ASSERT_FALSE(acct.empty());
    EXPECT_EQ(acct.cycles, run.cycles);

    // 2x2 fabric: 2 orchestrators, 4 PEs, 2 pipelines, in the fixed
    // orchs / row-major PEs / pipes order.
    ASSERT_EQ(acct.components.size(), 8u);
    EXPECT_EQ(acct.components[0].component, "orch0");
    EXPECT_EQ(acct.components[1].component, "orch1");
    EXPECT_EQ(acct.components[2].component, "pe0_0");
    EXPECT_EQ(acct.components[5].component, "pe1_1");
    EXPECT_EQ(acct.components[6].component, "pipe0");
    EXPECT_EQ(acct.components[7].component, "pipe1");

    // The invariant: six mutually exclusive categories, summing
    // exactly to the observed cycles for every component.
    for (const auto &comp : acct.components)
        EXPECT_EQ(comp.total(), acct.cycles) << comp.component;
}

TEST(Accounting, IdenticalAcrossRegistrationShuffles)
{
    const auto ref = accountedRun(0);
    ASSERT_EQ(ref.obs->runs.size(), 1u);
    for (std::uint64_t seed : {1ull, 12345ull}) {
        const auto got = accountedRun(seed);
        ASSERT_EQ(got.obs->runs.size(), 1u);
        EXPECT_EQ(got.obs->runs[0].accounting,
                  ref.obs->runs[0].accounting)
            << "seed " << seed;
    }
}

TEST(Accounting, HistogramsPopulatedInFixedOrder)
{
    const auto run = accountedRun(0);
    const auto &hists = run.obs->runs[0].accounting.histograms;
    // 3 channel-class occupancy + 2 tagDepth + 2 searchLen.
    ASSERT_EQ(hists.size(), 7u);
    EXPECT_EQ(hists[0].metric, "occupancy");
    EXPECT_EQ(hists[0].component, "vert");
    EXPECT_EQ(hists[1].component, "horiz");
    EXPECT_EQ(hists[2].component, "msg");
    EXPECT_EQ(hists[3].metric, "tagDepth");
    EXPECT_EQ(hists[3].component, "orch0");
    EXPECT_EQ(hists[5].metric, "searchLen");
    EXPECT_EQ(hists[5].component, "orch0");

    // Occupancy sampled on the cadence: one sample per channel per
    // captured cycle, so the counts sum to samples().
    EXPECT_GT(hists[0].hist.samples(), 0u);
    for (const auto &h : hists) {
        std::uint64_t sum = 0;
        for (std::uint64_t c : h.hist.counts())
            sum += c;
        EXPECT_EQ(sum, h.hist.samples())
            << h.metric << "/" << h.component;
    }
}

TEST(Accounting, RollupSeriesSumToAccounted)
{
    const auto run = accountedRun(0);
    const auto &set = run.obs->runs[0].series;
    std::map<std::uint64_t, std::uint64_t> cat_sum, accounted;
    for (const auto &s : set.series) {
        if (s.metric.rfind("acct.", 0) != 0)
            continue;
        EXPECT_EQ(s.component, "fabric") << s.metric;
        for (const auto &p : s.points) {
            if (s.metric == "acct.accounted")
                accounted[p.cycle] = p.value;
            else
                cat_sum[p.cycle] += p.value;
        }
    }
    ASSERT_FALSE(accounted.empty());
    // At every sampled cycle the six categories sum to the accounted
    // rollup, which itself is components x elapsed cycles.
    EXPECT_EQ(cat_sum, accounted);
    EXPECT_EQ(accounted.rbegin()->second, 8u * run.cycles);
}

TEST(Accounting, ObservationDoesNotPerturbTheRun)
{
    const auto off = sampledRun(0, false);
    const auto on = accountedRun(0);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.result, on.result);
    EXPECT_EQ(off.flat, on.flat);
}

TEST(Accounting, DisabledRunRegistersNoExtraPartitions)
{
    // Zero-cost-when-off is structural: without --cycle-accounting no
    // accountant partition exists; with it, exactly one more.
    auto partitions = [](bool accounting) {
        CanonConfig cfg;
        cfg.rows = 2;
        cfg.cols = 2;
        cfg.spadEntries = 4;
        Rng rng(77);
        const auto a = randomSparse(32, 16, 0.5, rng);
        const auto b = randomDense(16, 8, rng);
        CanonFabric fabric(cfg, 0);
        fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
        if (accounting) {
            obs::ObsOptions opt;
            opt.cycleAccounting = true;
            opt.statsJsonOut = "unused.json";
            obs::Collector col(opt);
            obs::ScopedCollector scope(col);
            fabric.run();
        } else {
            fabric.run();
        }
        return fabric.schedulePartitions();
    };
    const std::size_t base = partitions(false);
    EXPECT_EQ(partitions(true), base + 1);
}

// ---------------------------------------------------------------------
// A minimal JSON reader (enough for the two documents we emit).
// ---------------------------------------------------------------------

struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &k) const { return obj.count(k) != 0; }
    const Json &
    at(const std::string &k) const
    {
        auto it = obj.find(k);
        if (it == obj.end())
            throw std::runtime_error("missing key: " + k);
        return it->second;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s_(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (i_ != s_.size())
            throw std::runtime_error("trailing JSON garbage");
        return v;
    }

  private:
    void
    ws()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
                s_[i_] == '\r'))
            ++i_;
    }

    char
    peek()
    {
        if (i_ >= s_.size())
            throw std::runtime_error("unexpected end of JSON");
        return s_[i_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " +
                                     std::to_string(i_));
        ++i_;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"': {
            Json v;
            v.kind = Json::Kind::Str;
            v.str = string();
            return v;
        }
        case 't':
        case 'f': {
            Json v;
            v.kind = Json::Kind::Bool;
            v.boolean = peek() == 't';
            i_ += v.boolean ? 4 : 5;
            return v;
        }
        case 'n':
            i_ += 4;
            return Json{};
        default:
            return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Obj;
        ws();
        if (peek() == '}') {
            ++i_;
            return v;
        }
        while (true) {
            ws();
            std::string key = string();
            ws();
            expect(':');
            v.obj.emplace(std::move(key), value());
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    array()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Arr;
        ws();
        if (peek() == ']') {
            ++i_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = s_[i_++];
            if (c == '\\') {
                char e = s_[i_++];
                switch (e) {
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'u':
                    i_ += 4; // control chars; tests never compare them
                    out += '?';
                    break;
                default:
                    out += e; // '"', '\\', '/'
                }
            } else {
                out += c;
            }
        }
        ++i_;
        return out;
    }

    Json
    number()
    {
        std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
                s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        if (i_ == start)
            throw std::runtime_error("bad JSON number");
        Json v;
        v.kind = Json::Kind::Num;
        v.num = std::stod(s_.substr(start, i_ - start));
        return v;
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

// ---------------------------------------------------------------------
// Engine-level artifact determinism and schema checks.
// ---------------------------------------------------------------------

/**
 * A small 3-point sparsity sweep with every obs output requested.
 * @p policy_axes additionally sweeps tag-banks and spad-flush,
 * exercising the policy grammar through the full engine/obs path.
 */
engine::ScenarioRequest
obsSweepRequest(bool policy_axes = false, bool accounting = false)
{
    cli::Options opt;
    opt.m = 32;
    opt.k = 16;
    opt.n = 8;
    opt.rows = 2;
    opt.cols = 2;
    opt.spadEntries = 4;
    opt.sweepAxes.emplace_back("sparsity", "0.3,0.5,0.8");
    if (policy_axes) {
        opt.sweepAxes.emplace_back("tag-banks", "1,4");
        opt.sweepAxes.emplace_back("spad-flush", "eager,adaptive");
    }
    opt.common.obs.sampleEvery = 50;
    opt.common.obs.seriesOut = "unused-s.csv";
    opt.common.obs.traceOut = "unused-t.json";
    opt.common.obs.statsJsonOut = "unused-j.json";
    opt.common.obs.cycleAccounting = accounting;
    return engine::ScenarioRequest::fromOptions(opt);
}

struct Artifacts
{
    std::string series, trace, stats;
};

Artifacts
renderArtifacts(const engine::ResultSet &rs)
{
    Artifacts a;
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    a.series = os.str();
    os.str("");
    rs.obs().writeTrace(os);
    a.trace = os.str();
    os.str("");
    rs.obs().writeStatsJson(os);
    a.stats = os.str();
    return a;
}

TEST(ObsReport, ArtifactsByteIdenticalAcrossJobs)
{
    engine::Engine one(engine::EngineConfig{.jobs = 1});
    engine::Engine four(engine::EngineConfig{.jobs = 4});
    const auto rs1 = one.run(obsSweepRequest());
    const auto rs4 = four.run(obsSweepRequest());
    ASSERT_TRUE(rs1.ok()) << rs1.error();
    ASSERT_TRUE(rs4.ok()) << rs4.error();
    ASSERT_TRUE(rs1.obs().enabled());

    const auto a1 = renderArtifacts(rs1);
    const auto a4 = renderArtifacts(rs4);
    EXPECT_EQ(a1.series, a4.series);
    EXPECT_EQ(a1.trace, a4.trace);
    EXPECT_EQ(a1.stats, a4.stats);

    // Every scenario was observed (no cache, so all three executed).
    ASSERT_EQ(rs1.obs().scenarios().size(), 3u);
    for (const auto &s : rs1.obs().scenarios()) {
        ASSERT_NE(s.obs, nullptr) << s.index;
        EXPECT_FALSE(s.obs->runs.empty()) << s.index;
    }
}

TEST(ObsReport, ArtifactsByteIdenticalAcrossJobsUnderPolicyAxes)
{
    // Same gate with tag-banks and spad-flush swept on top of
    // sparsity: 12 scenarios, each observed, byte-identical whether
    // executed serially or on four workers.
    engine::Engine one(engine::EngineConfig{.jobs = 1});
    engine::Engine four(engine::EngineConfig{.jobs = 4});
    const auto rs1 = one.run(obsSweepRequest(true));
    const auto rs4 = four.run(obsSweepRequest(true));
    ASSERT_TRUE(rs1.ok()) << rs1.error();
    ASSERT_TRUE(rs4.ok()) << rs4.error();
    ASSERT_EQ(rs1.obs().scenarios().size(), 12u);

    const auto a1 = renderArtifacts(rs1);
    const auto a4 = renderArtifacts(rs4);
    EXPECT_EQ(a1.series, a4.series);
    EXPECT_EQ(a1.trace, a4.trace);
    EXPECT_EQ(a1.stats, a4.stats);
}

TEST(ObsReport, AccountingArtifactsByteIdenticalAcrossJobs)
{
    engine::Engine one(engine::EngineConfig{.jobs = 1});
    engine::Engine four(engine::EngineConfig{.jobs = 4});
    const auto rs1 = one.run(obsSweepRequest(false, true));
    const auto rs4 = four.run(obsSweepRequest(false, true));
    ASSERT_TRUE(rs1.ok()) << rs1.error();
    ASSERT_TRUE(rs4.ok()) << rs4.error();
    ASSERT_TRUE(rs1.obs().hasAccounting());
    ASSERT_TRUE(rs4.obs().hasAccounting());

    const auto a1 = renderArtifacts(rs1);
    const auto a4 = renderArtifacts(rs4);
    EXPECT_EQ(a1.series, a4.series);
    EXPECT_EQ(a1.trace, a4.trace);
    EXPECT_EQ(a1.stats, a4.stats);

    // The rendered breakdown table is part of the byte contract too.
    std::ostringstream t1, t4;
    rs1.obs().writeAccounting(t1);
    rs4.obs().writeAccounting(t4);
    EXPECT_FALSE(t1.str().empty());
    EXPECT_EQ(t1.str(), t4.str());
    // One table per scenario, fabric rollup row in each.
    EXPECT_NE(t1.str().find("Cycle accounting -- scenario 0"),
              std::string::npos);
    EXPECT_NE(t1.str().find("fabric"), std::string::npos);
}

TEST(ObsReport, StatsJsonCarriesAccountingWithSumInvariant)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest(false, true));
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeStatsJson(os);

    Json doc = JsonReader(os.str()).parse();
    EXPECT_EQ(doc.at("schema").str, "canon.stats.v2");
    std::size_t components_checked = 0;
    for (const Json &s : doc.at("scenarios").arr) {
        for (const Json &r : s.at("sim").at("runs").arr) {
            ASSERT_TRUE(r.has("accounting"));
            const Json &acct = r.at("accounting");
            const double cycles = acct.at("cycles").num;
            EXPECT_GT(cycles, 0.0);
            for (const Json &c : acct.at("components").arr) {
                double sum = 0;
                for (int cat = 0; cat < obs::kCycleCatCount; ++cat)
                    sum += c.at(obs::cycleCatName(cat)).num;
                EXPECT_EQ(sum, cycles) << c.at("component").str;
                EXPECT_EQ(c.at("total").num, cycles)
                    << c.at("component").str;
                ++components_checked;
            }
            ASSERT_TRUE(r.has("histograms"));
            const auto &hists = r.at("histograms").arr;
            ASSERT_FALSE(hists.empty());
            for (const Json &h : hists)
                EXPECT_EQ(h.at("counts").arr.size(),
                          static_cast<std::size_t>(
                              obs::Histogram::kBuckets));
        }
    }
    EXPECT_GT(components_checked, 0u);
}

namespace
{

std::uint64_t fake_clock_us = 0;

std::uint64_t
fakeClock()
{
    return fake_clock_us += 7;
}

} // namespace

TEST(ObsReport, HostTimersDeterministicUnderInjectedClock)
{
    obs::setHostClockForTest(&fakeClock);
    auto run_once = [] {
        fake_clock_us = 0;
        cli::Options opt;
        opt.m = 16;
        opt.k = 16;
        opt.n = 8;
        opt.rows = 2;
        opt.cols = 2;
        opt.spadEntries = 4;
        opt.common.obs.hostTimers = true;
        opt.common.obs.statsJsonOut = "unused-j.json";
        engine::Engine eng(engine::EngineConfig{.jobs = 1});
        const auto rs =
            eng.run(engine::ScenarioRequest::fromOptions(opt));
        EXPECT_TRUE(rs.ok()) << rs.error();
        std::ostringstream os;
        rs.obs().writeStatsJson(os);
        return os.str();
    };
    const std::string a = run_once();
    const std::string b = run_once();
    obs::setHostClockForTest(nullptr);

    // Same virtual clock, same call sequence: byte-identical dumps.
    EXPECT_EQ(a, b);

    Json doc = JsonReader(a).parse();
    const Json &s = doc.at("scenarios").arr.at(0);
    ASSERT_TRUE(s.has("host"));
    const Json &host = s.at("host");
    // The fake clock advances on every read, so the measured sim
    // phase is non-zero; the uncached engine never probes or stores.
    EXPECT_GT(host.at("simUs").num, 0.0);
    EXPECT_EQ(host.at("cacheProbeUs").num, 0.0);
    EXPECT_EQ(host.at("cacheStoreUs").num, 0.0);
}

TEST(ObsReport, HostTimersAbsentWithoutFlag)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeStatsJson(os);
    Json doc = JsonReader(os.str()).parse();
    for (const Json &s : doc.at("scenarios").arr)
        EXPECT_FALSE(s.has("host"));
}

TEST(ObsReport, SeriesCsvShape)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "scenario,pass,metric,component,cycle,value");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // scenario index is the leading field of every data row.
        EXPECT_TRUE(std::isdigit(
            static_cast<unsigned char>(line.front())))
            << line;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5)
            << line;
    }
    EXPECT_GT(rows, 0u);
}

TEST(ObsReport, TraceIsValidJsonWithMonotonicTimestamps)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeTrace(os);

    Json doc = JsonReader(os.str()).parse();
    ASSERT_EQ(doc.kind, Json::Kind::Obj);
    EXPECT_EQ(doc.at("otherData").at("schema").str, "canon-trace-1");
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");

    const auto &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, Json::Kind::Arr);
    ASSERT_FALSE(events.arr.empty());

    std::map<std::pair<double, double>, double> last_ts;
    std::size_t spans = 0, counters = 0;
    for (const auto &e : events.arr) {
        const std::string &ph = e.at("ph").str;
        ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i" || ph == "C")
            << ph;
        EXPECT_FALSE(e.at("name").str.empty());
        if (ph == "M")
            continue;
        spans += ph == "X";
        counters += ph == "C";
        if (ph == "X")
            EXPECT_GE(e.at("dur").num, 0.0);
        if (ph == "i")
            EXPECT_EQ(e.at("s").str, "t");
        const auto key = std::pair{e.at("pid").num, e.at("tid").num};
        const double ts = e.at("ts").num;
        auto it = last_ts.find(key);
        if (it != last_ts.end())
            EXPECT_GE(ts, it->second)
                << "track (" << key.first << "," << key.second
                << ") went backwards";
        last_ts[key] = ts;
    }
    // Per scenario: one "scenario N" span plus one "sim.run" span.
    EXPECT_EQ(spans, 6u);
    EXPECT_GT(counters, 0u);
}

TEST(ObsReport, StatsJsonRoundTripsAgainstProfiles)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeStatsJson(os);

    Json doc = JsonReader(os.str()).parse();
    EXPECT_EQ(doc.at("schema").str, "canon.stats.v2");
    const auto &scenarios = doc.at("scenarios");
    ASSERT_EQ(scenarios.arr.size(), rs.scenarios().size());

    for (std::size_t i = 0; i < scenarios.arr.size(); ++i) {
        const Json &s = scenarios.arr[i];
        EXPECT_EQ(static_cast<std::size_t>(s.at("index").num), i);
        const auto &archs = s.at("archs").arr;
        ASSERT_FALSE(archs.empty()) << i;

        // The dumped cycles must match the in-memory profile.
        const auto &cases = rs.scenarios()[i].cases;
        for (const Json &a : archs) {
            const auto &prof = cases.at(a.at("arch").str);
            EXPECT_EQ(
                static_cast<std::uint64_t>(a.at("cycles").num),
                prof.cycles);
        }

        // Executed scenarios carry the flat sim stats.
        const auto &runs = s.at("sim").at("runs").arr;
        ASSERT_FALSE(runs.empty()) << i;
        EXPECT_GT(runs[0].at("cycles").num, 0.0);
        EXPECT_FALSE(runs[0].at("stats").obj.empty());
    }
}

TEST(ObsReport, DisabledRequestYieldsNoObservations)
{
    cli::Options opt;
    opt.m = 16;
    opt.k = 16;
    opt.n = 8;
    opt.rows = 2;
    opt.cols = 2;
    opt.spadEntries = 4;
    engine::Engine eng(engine::EngineConfig{.jobs = 1});
    const auto rs =
        eng.run(engine::ScenarioRequest::fromOptions(opt));
    ASSERT_TRUE(rs.ok()) << rs.error();
    EXPECT_FALSE(rs.obs().enabled());
    ASSERT_EQ(rs.scenarios().size(), 1u);
    EXPECT_EQ(rs.scenarios()[0].obs, nullptr);

    // Disabled writers emit nothing and write no files.
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    rs.obs().writeTrace(os);
    rs.obs().writeStatsJson(os);
    EXPECT_TRUE(os.str().empty());
    EXPECT_TRUE(rs.obs().writeOutputs().empty());
}

} // namespace
} // namespace canon
