/**
 * @file
 * Observability-layer tests: the obs flag grammar and its cross-flag
 * validation, cycle-sampler determinism across registration-shuffle
 * seeds, the zero-perturbation guarantee (observed runs behave
 * bit-identically to unobserved ones), engine-level byte-equality of
 * all three artifacts across worker counts, Chrome-trace schema
 * validity with per-track monotonic timestamps, and the structured
 * stats dump round-trip against the in-memory profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cli/options.hh"
#include "common/rng.hh"
#include "core/fabric.hh"
#include "engine/common_flags.hh"
#include "engine/engine.hh"
#include "engine/obs_report.hh"
#include "kernels/spmm.hh"
#include "obs/collector.hh"
#include "obs/series.hh"
#include "sparse/generate.hh"

namespace canon
{
namespace
{

// ---------------------------------------------------------------------
// Flag grammar.
// ---------------------------------------------------------------------

engine::FlagParse
offer(const std::string &key, const std::string &value,
      engine::CommonFlags &out)
{
    std::string err;
    return engine::parseCommonFlag(key, value, out, err);
}

TEST(ObsFlags, RecognizedAsCommon)
{
    EXPECT_TRUE(engine::isCommonFlag("--sample-every"));
    EXPECT_TRUE(engine::isCommonFlag("--series-out"));
    EXPECT_TRUE(engine::isCommonFlag("--trace-out"));
    EXPECT_TRUE(engine::isCommonFlag("--stats-json"));
    EXPECT_FALSE(engine::isCommonFlag("--sample"));
}

TEST(ObsFlags, SampleEveryParsesAndRejects)
{
    engine::CommonFlags f;
    EXPECT_EQ(offer("--sample-every", "50", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(f.obs.sampleEvery, 50u);

    for (const char *bad : {"0", "-3", "abc", "1000000001", ""}) {
        engine::CommonFlags g;
        std::string err;
        EXPECT_EQ(engine::parseCommonFlag("--sample-every", bad, g,
                                          err),
                  engine::FlagParse::Error)
            << "value '" << bad << "'";
        EXPECT_FALSE(err.empty()) << "value '" << bad << "'";
    }
}

TEST(ObsFlags, OutputPathsParseAndRejectEmpty)
{
    engine::CommonFlags f;
    EXPECT_EQ(offer("--series-out", "s.csv", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(offer("--trace-out", "t.json", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(offer("--stats-json", "j.json", f),
              engine::FlagParse::Ok);
    EXPECT_EQ(f.obs.seriesOut, "s.csv");
    EXPECT_EQ(f.obs.traceOut, "t.json");
    EXPECT_EQ(f.obs.statsJsonOut, "j.json");

    for (const char *key :
         {"--series-out", "--trace-out", "--stats-json"}) {
        engine::CommonFlags g;
        EXPECT_EQ(offer(key, "", g), engine::FlagParse::Error)
            << key;
    }
}

TEST(ObsFlags, CrossValidation)
{
    // --series-out needs a cadence to sample at.
    engine::CommonFlags f;
    f.obs.seriesOut = "s.csv";
    EXPECT_FALSE(engine::validateCommonFlags(f).empty());

    // A cadence with no output requested samples into the void.
    engine::CommonFlags g;
    g.obs.sampleEvery = 10;
    EXPECT_FALSE(engine::validateCommonFlags(g).empty());

    // Cadence + any output flag is a valid combination.
    engine::CommonFlags h;
    h.obs.sampleEvery = 10;
    h.obs.traceOut = "t.json";
    EXPECT_TRUE(engine::validateCommonFlags(h).empty());

    // Trace/stats dumps alone need no cadence.
    engine::CommonFlags k;
    k.obs.statsJsonOut = "j.json";
    EXPECT_TRUE(engine::validateCommonFlags(k).empty());
}

TEST(ObsOptions, DisabledByDefault)
{
    const obs::ObsOptions opt;
    EXPECT_FALSE(opt.enabled());
    EXPECT_FALSE(opt.sampling());
    EXPECT_FALSE(opt.wantFlatStats());
}

// ---------------------------------------------------------------------
// Sampler determinism and zero perturbation on a live fabric.
// ---------------------------------------------------------------------

struct ObservedRun
{
    Cycle cycles = 0;
    WordMatrix result;
    std::map<std::string, std::uint64_t> flat;
    std::uint64_t macOps = 0;
    std::shared_ptr<const obs::ScenarioObs> obs;
};

/**
 * One sampled SpMM execution under a registration shuffle. The
 * workload is fixed; only the shuffle seed, the observation options,
 * and the orchestrator policy axes vary.
 */
ObservedRun
sampledRun(std::uint64_t shuffle_seed, bool observe,
           int tag_banks = 1,
           SpadFlushPolicy flush = SpadFlushPolicy::Eager)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    cfg.tagBanks = tag_banks;
    cfg.spadFlush = flush;
    Rng rng(77);
    const auto a = randomSparse(32, 16, 0.5, rng);
    const auto b = randomDense(16, 8, rng);

    obs::ObsOptions opt;
    opt.sampleEvery = 25;
    opt.seriesOut = "unused.csv"; // never written; writers not called
    opt.statsJsonOut = "unused.json";

    ObservedRun out;
    CanonFabric fabric(cfg, shuffle_seed);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    if (observe) {
        obs::Collector col(opt);
        obs::ScopedCollector scope(col);
        out.cycles = fabric.run();
        out.obs = col.finish();
    } else {
        out.cycles = fabric.run();
    }
    out.result = fabric.result();
    out.flat = fabric.stats().flatten();
    out.macOps = fabric.stats().sumCounter("macOps");
    return out;
}

TEST(Sampler, SeriesIdenticalAcrossRegistrationShuffles)
{
    const auto ref = sampledRun(0, true);
    ASSERT_EQ(ref.obs->runs.size(), 1u);
    ASSERT_FALSE(ref.obs->runs[0].series.empty());
    for (std::uint64_t seed : {1ull, 12345ull}) {
        const auto got = sampledRun(seed, true);
        EXPECT_EQ(got.cycles, ref.cycles) << "seed " << seed;
        ASSERT_EQ(got.obs->runs.size(), 1u);
        EXPECT_EQ(got.obs->runs[0].series, ref.obs->runs[0].series)
            << "seed " << seed;
        EXPECT_EQ(got.obs->runs[0].flat, ref.obs->runs[0].flat)
            << "seed " << seed;
    }
}

TEST(Sampler, SeriesIdenticalAcrossShufflesUnderPolicyAxes)
{
    // The banked search and the adaptive flush policy must not leak
    // registration order into the sampled series either.
    const auto ref =
        sampledRun(0, true, 4, SpadFlushPolicy::Adaptive);
    ASSERT_EQ(ref.obs->runs.size(), 1u);
    ASSERT_FALSE(ref.obs->runs[0].series.empty());
    for (std::uint64_t seed : {1ull, 12345ull}) {
        const auto got =
            sampledRun(seed, true, 4, SpadFlushPolicy::Adaptive);
        EXPECT_EQ(got.cycles, ref.cycles) << "seed " << seed;
        ASSERT_EQ(got.obs->runs.size(), 1u);
        EXPECT_EQ(got.obs->runs[0].series, ref.obs->runs[0].series)
            << "seed " << seed;
        EXPECT_EQ(got.obs->runs[0].flat, ref.obs->runs[0].flat)
            << "seed " << seed;
    }
    // Same answer as the eager/linear baseline: policies change
    // timing and probe cost, never values.
    EXPECT_EQ(ref.result, sampledRun(0, false).result);
}

TEST(Sampler, SeriesShapeAndCumulativeValues)
{
    const auto run = sampledRun(0, true);
    const auto &set = run.obs->runs[0].series;

    // Probes include the fabric-wide rollup and each orchestrator.
    bool saw_fabric = false, saw_orch = false;
    for (const auto &s : set.series) {
        saw_fabric |= s.component == "fabric";
        saw_orch |= s.component.rfind("orch", 0) == 0;

        // Every series shares the cadence: samples at multiples of 25
        // plus one final partial-interval sample at run end.
        ASSERT_FALSE(s.points.empty()) << s.metric;
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            const auto &p = s.points[i];
            if (i + 1 < s.points.size())
                EXPECT_EQ(p.cycle % 25, 0u) << s.metric;
            else
                EXPECT_EQ(p.cycle, run.cycles) << s.metric;
            if (i > 0) {
                EXPECT_GT(p.cycle, s.points[i - 1].cycle);
                // Cumulative counters never decrease.
                EXPECT_GE(p.value, s.points[i - 1].value)
                    << s.metric << "@" << p.cycle;
            }
        }
    }
    EXPECT_TRUE(saw_fabric);
    EXPECT_TRUE(saw_orch);

    // The fabric macOps series must end at the counter's final value.
    for (const auto &s : set.series)
        if (s.metric == "macOps" && s.component == "fabric")
            EXPECT_EQ(s.points.back().value, run.macOps);
}

TEST(Sampler, ObservationDoesNotPerturbTheRun)
{
    // The observed execution is bit-identical to the unobserved one:
    // same cycle count, same result matrix, same final stats.
    const auto off = sampledRun(0, false);
    const auto on = sampledRun(0, true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.result, on.result);
    EXPECT_EQ(off.flat, on.flat);
    EXPECT_EQ(off.obs, nullptr);
    EXPECT_EQ(obs::current(), nullptr);
}

// ---------------------------------------------------------------------
// A minimal JSON reader (enough for the two documents we emit).
// ---------------------------------------------------------------------

struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &k) const { return obj.count(k) != 0; }
    const Json &
    at(const std::string &k) const
    {
        auto it = obj.find(k);
        if (it == obj.end())
            throw std::runtime_error("missing key: " + k);
        return it->second;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s_(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (i_ != s_.size())
            throw std::runtime_error("trailing JSON garbage");
        return v;
    }

  private:
    void
    ws()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
                s_[i_] == '\r'))
            ++i_;
    }

    char
    peek()
    {
        if (i_ >= s_.size())
            throw std::runtime_error("unexpected end of JSON");
        return s_[i_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " +
                                     std::to_string(i_));
        ++i_;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"': {
            Json v;
            v.kind = Json::Kind::Str;
            v.str = string();
            return v;
        }
        case 't':
        case 'f': {
            Json v;
            v.kind = Json::Kind::Bool;
            v.boolean = peek() == 't';
            i_ += v.boolean ? 4 : 5;
            return v;
        }
        case 'n':
            i_ += 4;
            return Json{};
        default:
            return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Obj;
        ws();
        if (peek() == '}') {
            ++i_;
            return v;
        }
        while (true) {
            ws();
            std::string key = string();
            ws();
            expect(':');
            v.obj.emplace(std::move(key), value());
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    array()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Arr;
        ws();
        if (peek() == ']') {
            ++i_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = s_[i_++];
            if (c == '\\') {
                char e = s_[i_++];
                switch (e) {
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'u':
                    i_ += 4; // control chars; tests never compare them
                    out += '?';
                    break;
                default:
                    out += e; // '"', '\\', '/'
                }
            } else {
                out += c;
            }
        }
        ++i_;
        return out;
    }

    Json
    number()
    {
        std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
                s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        if (i_ == start)
            throw std::runtime_error("bad JSON number");
        Json v;
        v.kind = Json::Kind::Num;
        v.num = std::stod(s_.substr(start, i_ - start));
        return v;
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

// ---------------------------------------------------------------------
// Engine-level artifact determinism and schema checks.
// ---------------------------------------------------------------------

/**
 * A small 3-point sparsity sweep with every obs output requested.
 * @p policy_axes additionally sweeps tag-banks and spad-flush,
 * exercising the policy grammar through the full engine/obs path.
 */
engine::ScenarioRequest
obsSweepRequest(bool policy_axes = false)
{
    cli::Options opt;
    opt.m = 32;
    opt.k = 16;
    opt.n = 8;
    opt.rows = 2;
    opt.cols = 2;
    opt.spadEntries = 4;
    opt.sweepAxes.emplace_back("sparsity", "0.3,0.5,0.8");
    if (policy_axes) {
        opt.sweepAxes.emplace_back("tag-banks", "1,4");
        opt.sweepAxes.emplace_back("spad-flush", "eager,adaptive");
    }
    opt.common.obs.sampleEvery = 50;
    opt.common.obs.seriesOut = "unused-s.csv";
    opt.common.obs.traceOut = "unused-t.json";
    opt.common.obs.statsJsonOut = "unused-j.json";
    return engine::ScenarioRequest::fromOptions(opt);
}

struct Artifacts
{
    std::string series, trace, stats;
};

Artifacts
renderArtifacts(const engine::ResultSet &rs)
{
    Artifacts a;
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    a.series = os.str();
    os.str("");
    rs.obs().writeTrace(os);
    a.trace = os.str();
    os.str("");
    rs.obs().writeStatsJson(os);
    a.stats = os.str();
    return a;
}

TEST(ObsReport, ArtifactsByteIdenticalAcrossJobs)
{
    engine::Engine one(engine::EngineConfig{.jobs = 1});
    engine::Engine four(engine::EngineConfig{.jobs = 4});
    const auto rs1 = one.run(obsSweepRequest());
    const auto rs4 = four.run(obsSweepRequest());
    ASSERT_TRUE(rs1.ok()) << rs1.error();
    ASSERT_TRUE(rs4.ok()) << rs4.error();
    ASSERT_TRUE(rs1.obs().enabled());

    const auto a1 = renderArtifacts(rs1);
    const auto a4 = renderArtifacts(rs4);
    EXPECT_EQ(a1.series, a4.series);
    EXPECT_EQ(a1.trace, a4.trace);
    EXPECT_EQ(a1.stats, a4.stats);

    // Every scenario was observed (no cache, so all three executed).
    ASSERT_EQ(rs1.obs().scenarios().size(), 3u);
    for (const auto &s : rs1.obs().scenarios()) {
        ASSERT_NE(s.obs, nullptr) << s.index;
        EXPECT_FALSE(s.obs->runs.empty()) << s.index;
    }
}

TEST(ObsReport, ArtifactsByteIdenticalAcrossJobsUnderPolicyAxes)
{
    // Same gate with tag-banks and spad-flush swept on top of
    // sparsity: 12 scenarios, each observed, byte-identical whether
    // executed serially or on four workers.
    engine::Engine one(engine::EngineConfig{.jobs = 1});
    engine::Engine four(engine::EngineConfig{.jobs = 4});
    const auto rs1 = one.run(obsSweepRequest(true));
    const auto rs4 = four.run(obsSweepRequest(true));
    ASSERT_TRUE(rs1.ok()) << rs1.error();
    ASSERT_TRUE(rs4.ok()) << rs4.error();
    ASSERT_EQ(rs1.obs().scenarios().size(), 12u);

    const auto a1 = renderArtifacts(rs1);
    const auto a4 = renderArtifacts(rs4);
    EXPECT_EQ(a1.series, a4.series);
    EXPECT_EQ(a1.trace, a4.trace);
    EXPECT_EQ(a1.stats, a4.stats);
}

TEST(ObsReport, SeriesCsvShape)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "scenario,pass,metric,component,cycle,value");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        // scenario index is the leading field of every data row.
        EXPECT_TRUE(std::isdigit(
            static_cast<unsigned char>(line.front())))
            << line;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5)
            << line;
    }
    EXPECT_GT(rows, 0u);
}

TEST(ObsReport, TraceIsValidJsonWithMonotonicTimestamps)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeTrace(os);

    Json doc = JsonReader(os.str()).parse();
    ASSERT_EQ(doc.kind, Json::Kind::Obj);
    EXPECT_EQ(doc.at("otherData").at("schema").str, "canon-trace-1");
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");

    const auto &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, Json::Kind::Arr);
    ASSERT_FALSE(events.arr.empty());

    std::map<std::pair<double, double>, double> last_ts;
    std::size_t spans = 0, counters = 0;
    for (const auto &e : events.arr) {
        const std::string &ph = e.at("ph").str;
        ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i" || ph == "C")
            << ph;
        EXPECT_FALSE(e.at("name").str.empty());
        if (ph == "M")
            continue;
        spans += ph == "X";
        counters += ph == "C";
        if (ph == "X")
            EXPECT_GE(e.at("dur").num, 0.0);
        if (ph == "i")
            EXPECT_EQ(e.at("s").str, "t");
        const auto key = std::pair{e.at("pid").num, e.at("tid").num};
        const double ts = e.at("ts").num;
        auto it = last_ts.find(key);
        if (it != last_ts.end())
            EXPECT_GE(ts, it->second)
                << "track (" << key.first << "," << key.second
                << ") went backwards";
        last_ts[key] = ts;
    }
    // Per scenario: one "scenario N" span plus one "sim.run" span.
    EXPECT_EQ(spans, 6u);
    EXPECT_GT(counters, 0u);
}

TEST(ObsReport, StatsJsonRoundTripsAgainstProfiles)
{
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    const auto rs = eng.run(obsSweepRequest());
    ASSERT_TRUE(rs.ok()) << rs.error();
    std::ostringstream os;
    rs.obs().writeStatsJson(os);

    Json doc = JsonReader(os.str()).parse();
    EXPECT_EQ(doc.at("schema").str, "canon.stats.v1");
    const auto &scenarios = doc.at("scenarios");
    ASSERT_EQ(scenarios.arr.size(), rs.scenarios().size());

    for (std::size_t i = 0; i < scenarios.arr.size(); ++i) {
        const Json &s = scenarios.arr[i];
        EXPECT_EQ(static_cast<std::size_t>(s.at("index").num), i);
        const auto &archs = s.at("archs").arr;
        ASSERT_FALSE(archs.empty()) << i;

        // The dumped cycles must match the in-memory profile.
        const auto &cases = rs.scenarios()[i].cases;
        for (const Json &a : archs) {
            const auto &prof = cases.at(a.at("arch").str);
            EXPECT_EQ(
                static_cast<std::uint64_t>(a.at("cycles").num),
                prof.cycles);
        }

        // Executed scenarios carry the flat sim stats.
        const auto &runs = s.at("sim").at("runs").arr;
        ASSERT_FALSE(runs.empty()) << i;
        EXPECT_GT(runs[0].at("cycles").num, 0.0);
        EXPECT_FALSE(runs[0].at("stats").obj.empty());
    }
}

TEST(ObsReport, DisabledRequestYieldsNoObservations)
{
    cli::Options opt;
    opt.m = 16;
    opt.k = 16;
    opt.n = 8;
    opt.rows = 2;
    opt.cols = 2;
    opt.spadEntries = 4;
    engine::Engine eng(engine::EngineConfig{.jobs = 1});
    const auto rs =
        eng.run(engine::ScenarioRequest::fromOptions(opt));
    ASSERT_TRUE(rs.ok()) << rs.error();
    EXPECT_FALSE(rs.obs().enabled());
    ASSERT_EQ(rs.scenarios().size(), 1u);
    EXPECT_EQ(rs.scenarios()[0].obs, nullptr);

    // Disabled writers emit nothing and write no files.
    std::ostringstream os;
    rs.obs().writeSeriesCsv(os);
    rs.obs().writeTrace(os);
    rs.obs().writeStatsJson(os);
    EXPECT_TRUE(os.str().empty());
    EXPECT_TRUE(rs.obs().writeOutputs().empty());
}

} // namespace
} // namespace canon
