/**
 * @file
 * Baseline-architecture tests: the cycle-level systolic simulator
 * against the gold reference and against the closed-form model (exact
 * timing equality), ZeD scheduling properties, DFG utilities, and
 * mapper correctness (dependence + resource constraints honored).
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/cgra.hh"
#include "common/bitfield.hh"
#include "baselines/systolic.hh"
#include "baselines/zed.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

TEST(Systolic, SimComputesExactGemm)
{
    Rng rng(1);
    SystolicConfig cfg{4, 4, SparsitySupport::Dense};
    for (auto [m, k, n] :
         {std::tuple{4, 4, 4}, {7, 9, 5}, {12, 8, 16}, {3, 17, 2}}) {
        const auto a = randomDense(m, k, rng);
        const auto b = randomDense(k, n, rng);
        SystolicSim sim(cfg);
        sim.run(a, b);
        EXPECT_EQ(sim.result(), reference::gemm(a, b))
            << m << "x" << k << "x" << n;
    }
}

TEST(Systolic, ModelCyclesMatchSimExactly)
{
    Rng rng(2);
    SystolicConfig cfg{4, 4, SparsitySupport::Dense};
    SystolicModel model(cfg);
    for (auto [m, k, n] :
         {std::tuple{8, 8, 8}, {5, 12, 9}, {16, 4, 4}, {1, 1, 1}}) {
        const auto a = randomDense(m, k, rng);
        const auto b = randomDense(k, n, rng);
        SystolicSim sim(cfg);
        sim.run(a, b);
        EXPECT_EQ(sim.cycles(), model.gemmCycles(m, k, n))
            << m << "x" << k << "x" << n;
    }
}

TEST(Systolic, SparseRunsAtDenseCost)
{
    SystolicModel model(SystolicConfig{});
    const auto dense = model.gemm(128, 128, 128);
    const auto sparse = model.spmm(128, 128, 128, 0.9);
    EXPECT_EQ(dense.cycles, sparse.cycles);
}

TEST(Systolic, TwoFourHalvesEffectiveK)
{
    SystolicModel m24(
        SystolicConfig{16, 16, SparsitySupport::TwoFour});
    const auto dense = m24.gemm(256, 256, 256);
    const auto s24 = m24.gemm(256, 256, 256, {2, 4});
    EXPECT_LT(s24.cycles, dense.cycles * 0.6);
    EXPECT_GT(s24.cycles, dense.cycles * 0.4);

    // 2:8 compresses only to the 2:4 format: same cycles as 2:4.
    const auto s28 = m24.gemm(256, 256, 256, {2, 8});
    EXPECT_EQ(s28.cycles, s24.cycles);
    // But its useful work is half, which perf-per-op accounting sees.
    EXPECT_LT(s28.get("laneMacs"), s24.get("laneMacs"));
}

TEST(Systolic, DenseVariantIgnoresStructure)
{
    SystolicModel dense(SystolicConfig{});
    EXPECT_EQ(dense.gemm(64, 64, 64, {2, 4}).cycles,
              dense.gemm(64, 64, 64).cycles);
}

TEST(Systolic, WindowChunkingCoversBandTwice)
{
    SystolicModel model(SystolicConfig{});
    const auto p = model.sddmmWindow(1024, 64, 128);
    // Chunked scores = seq * 2w = 2x the band.
    EXPECT_EQ(p.get("laneMacs"),
              2ull * 1024 * 128 * 64);
}

TEST(Zed, MakespanNeverBeatsIdealBound)
{
    ZedModel zed;
    Rng rng(3);
    for (int t = 0; t < 20; ++t) {
        std::vector<std::uint64_t> rows;
        std::uint64_t total = 0;
        const auto n = 1 + rng.nextBounded(200);
        for (std::uint64_t i = 0; i < n; ++i) {
            rows.push_back(1 + rng.nextBounded(50));
            total += rows.back();
        }
        const auto span = zed.makespan(rows);
        const auto ideal = divCeil(total, 16);
        EXPECT_GE(span, ideal);
        const auto longest =
            *std::max_element(rows.begin(), rows.end());
        EXPECT_GE(span, longest);
        // Graham bound: 2x optimal for list scheduling.
        EXPECT_LE(span, 2 * std::max<std::uint64_t>(ideal, longest));
    }
}

TEST(Zed, StealingNoWorseThanStatic)
{
    ZedConfig steal_cfg;
    ZedConfig static_cfg;
    static_cfg.workStealing = false;
    ZedModel steal(steal_cfg), fixed(static_cfg);

    Rng rng(4);
    std::vector<std::int64_t> rows;
    for (int i = 0; i < 333; ++i)
        rows.push_back(1 + static_cast<std::int64_t>(
                               rng.nextBounded(40)));
    const auto a = steal.spmmRows(rows, 64);
    const auto b = fixed.spmmRows(rows, 64);
    EXPECT_LE(a.cycles, b.cycles);
}

TEST(Zed, UniformRowsNearIdeal)
{
    ZedModel zed;
    std::vector<std::int64_t> rows(160, 64); // 10 rows per cluster
    const auto p = zed.spmmRows(rows, 64);
    const std::uint64_t work_cycles = 10ull * (4 + 64 * 64 / 16);
    EXPECT_EQ(p.cycles, work_cycles);
}

TEST(Zed, EmptyRowsSkipped)
{
    ZedModel zed;
    std::vector<std::int64_t> rows(100, 0);
    rows[50] = 8;
    const auto p = zed.spmmRows(rows, 16);
    EXPECT_EQ(p.get("decodeOps"), 8u);
    EXPECT_LT(p.cycles, 30u);
}

TEST(Zed, SkewPenalizesSingleLongRow)
{
    // One giant row cannot be split across clusters at row
    // granularity: Canon's K-sliced dataflow has no such cliff.
    ZedModel zed;
    std::vector<std::int64_t> skewed(64, 4);
    skewed[0] = 2048;
    std::vector<std::int64_t> uniform(64, 4 + (2048 - 4) / 64 + 1);
    const auto s = zed.spmmRows(skewed, 64);
    const auto u = zed.spmmRows(uniform, 64);
    EXPECT_GT(s.cycles, u.cycles * 2);
}

TEST(Dfg, TopoAndCriticalPath)
{
    Dfg d("t");
    const int a = d.addNode("a", DfgOp::Load, 2);
    const int b = d.addNode("b", DfgOp::Load, 2);
    const int c = d.addNode("c", DfgOp::Mul, 1);
    const int e = d.addNode("e", DfgOp::Add, 1);
    d.addEdge(a, c);
    d.addEdge(b, c);
    d.addEdge(c, e);
    EXPECT_EQ(d.criticalPath(), 4); // 2 + 1 + 1
    const auto order = d.topoOrder();
    EXPECT_EQ(order.size(), 4u);
    // a and b before c before e.
    auto pos = [&](int v) {
        return std::find(order.begin(), order.end(), v) -
               order.begin();
    };
    EXPECT_LT(pos(a), pos(c));
    EXPECT_LT(pos(b), pos(c));
    EXPECT_LT(pos(c), pos(e));
}

TEST(Dfg, SelfEdgeRejected)
{
    Dfg d("t");
    const int a = d.addNode("a", DfgOp::Add, 1);
    EXPECT_THROW(d.addEdge(a, a), PanicError);
}

TEST(Mapper, RespectsDependencesAndResources)
{
    Dfg d("chain");
    int prev = d.addNode("n0", DfgOp::Load, 2);
    for (int i = 1; i < 6; ++i) {
        const int v = d.addNode("n" + std::to_string(i), DfgOp::Add, 1);
        d.addEdge(prev, v);
        prev = v;
    }
    CgraMapper mapper(CgraConfig{2, 2, 3, 16});
    const auto m = mapper.map(d, 1);
    ASSERT_TRUE(m.ok);

    // Dependences: consumer no earlier than producer finish + route.
    for (int v = 0; v < d.size(); ++v) {
        for (int p : d.preds(v))
            EXPECT_GE(m.timeOf[v],
                      m.timeOf[p] + d.node(p).latency);
    }
    // Resources: one op per (pe, time mod II).
    std::set<std::pair<int, int>> used;
    for (int v = 0; v < d.size(); ++v) {
        const auto key = std::make_pair(m.peOf[v], m.timeOf[v] % m.ii);
        EXPECT_TRUE(used.insert(key).second)
            << "PE slot double-booked";
    }
}

TEST(Mapper, IiAtLeastResourceMii)
{
    // 9 nodes on a 2x2 fabric need II >= ceil(9/4) = 3.
    Dfg d("wide");
    std::vector<int> loads;
    for (int i = 0; i < 9; ++i)
        loads.push_back(
            d.addNode("l" + std::to_string(i), DfgOp::Add, 1));
    CgraMapper mapper(CgraConfig{2, 2, 3, 16});
    const auto m = mapper.map(d, 1);
    ASSERT_TRUE(m.ok);
    EXPECT_GE(m.ii, 3);
}

TEST(Mapper, RecurrenceMiiHonored)
{
    Dfg d("rec");
    d.addNode("a", DfgOp::Add, 1);
    CgraMapper mapper(CgraConfig{4, 4, 3, 16});
    EXPECT_EQ(mapper.map(d, 5).ii, 5);
}

TEST(Mapper, EmptyDfg)
{
    CgraMapper mapper;
    const auto m = mapper.map(Dfg("empty"), 1);
    EXPECT_TRUE(m.ok);
}

TEST(Cgra, ReplicationUnrolls)
{
    Dfg d("body");
    const int a = d.addNode("a", DfgOp::Load, 2);
    const int b = d.addNode("b", DfgOp::Mul, 1);
    d.addEdge(a, b);
    const auto r = replicateDfg(d, 3);
    EXPECT_EQ(r.size(), 6);
    EXPECT_EQ(r.edgeCount(), 3);
}

TEST(Cgra, LoopKernelThroughputScalesWithUnroll)
{
    Dfg body("b");
    const int a = body.addNode("a", DfgOp::Load, 2);
    const int m = body.addNode("m", DfgOp::Mul, 1);
    body.addEdge(a, m);

    CgraModel cgra(CgraConfig{4, 4, 3, 16});
    const auto wide = cgra.loopKernel(body, 10000, 1, 8, "wide");
    const auto narrow = cgra.loopKernel(body, 10000, 1, 1, "narrow");
    EXPECT_LT(wide.cycles * 3, narrow.cycles);
}

TEST(Cgra, TensorEmulationTracksSystolic)
{
    CgraModel cgra;
    SystolicModel sys(SystolicConfig{});
    EXPECT_EQ(cgra.gemm(128, 128, 128).cycles,
              sys.gemm(128, 128, 128).cycles);
    EXPECT_GT(cgra.gemm(128, 128, 128).get("instFetches"), 0u);
}

} // namespace
} // namespace canon
