/**
 * @file
 * End-to-end SpMM on the Canon fabric against the gold reference:
 * the central correctness property of the whole simulator. Sweeps
 * sparsity levels, scratchpad depths and array shapes with
 * parameterized tests; every comparison is exact INT32 equality.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

CanonConfig
smallConfig(int rows = 4, int cols = 4, int spad = 4)
{
    CanonConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.spadEntries = spad;
    return cfg;
}

WordMatrix
runSpmm(const CsrMatrix &a, const DenseMatrix &b, const CanonConfig &cfg)
{
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(a, b, cfg));
    fabric.run();
    return fabric.result();
}

TEST(CanonSpmm, TinyDiagonal)
{
    const auto cfg = smallConfig();
    const int m = 4, k = 8, n = 16;
    DenseMatrix a(m, k);
    for (int i = 0; i < m; ++i)
        a.at(i, i) = static_cast<Elem>(i + 1);
    Rng rng(1);
    const auto b = randomDense(k, n, rng);
    const auto csr = CsrMatrix::fromDense(a);

    EXPECT_EQ(runSpmm(csr, b, cfg), reference::spmm(csr, b));
}

TEST(CanonSpmm, SingleRowManyNnz)
{
    const auto cfg = smallConfig();
    Rng rng(2);
    const auto a = randomSparse(1, 16, 0.2, rng);
    const auto b = randomDense(16, 16, rng);
    const auto csr = CsrMatrix::fromDense(a);

    EXPECT_EQ(runSpmm(csr, b, cfg), reference::spmm(csr, b));
}

TEST(CanonSpmm, EmptyMatrix)
{
    const auto cfg = smallConfig();
    Rng rng(3);
    const DenseMatrix a(8, 16); // all zeros
    const auto b = randomDense(16, 16, rng);
    const auto csr = CsrMatrix::fromDense(a);

    const auto c = runSpmm(csr, b, cfg);
    EXPECT_EQ(c, WordMatrix(8, 16));
}

TEST(CanonSpmm, DenseViaSpmm)
{
    const auto cfg = smallConfig();
    Rng rng(4);
    const auto a = randomDense(12, 16, rng);
    const auto b = randomDense(16, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemmViaSpmm(a, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::gemm(a, b));
}

struct SweepParam
{
    double sparsity;
    int spad;
    int rows;
    int cols;
    int m;
    int k;
    std::uint64_t seed;
};

class SpmmSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SpmmSweep, MatchesReference)
{
    const auto p = GetParam();
    const auto cfg = smallConfig(p.rows, p.cols, p.spad);
    Rng rng(p.seed);
    const auto a = randomSparse(p.m, p.k, p.sparsity, rng);
    const auto b = randomDense(p.k, cfg.cols * kSimdWidth, rng);
    const auto csr = CsrMatrix::fromDense(a);

    EXPECT_EQ(runSpmm(csr, b, cfg), reference::spmm(csr, b))
        << "sparsity=" << p.sparsity << " spad=" << p.spad;
}

INSTANTIATE_TEST_SUITE_P(
    SparsityLevels, SpmmSweep,
    ::testing::Values(
        SweepParam{0.0, 4, 4, 4, 16, 16, 10},
        SweepParam{0.1, 4, 4, 4, 16, 16, 11},
        SweepParam{0.3, 4, 4, 4, 24, 16, 12},
        SweepParam{0.5, 4, 4, 4, 24, 16, 13},
        SweepParam{0.7, 4, 4, 4, 32, 16, 14},
        SweepParam{0.9, 4, 4, 4, 32, 16, 15},
        SweepParam{0.95, 4, 4, 4, 48, 32, 16}));

INSTANTIATE_TEST_SUITE_P(
    SpadDepths, SpmmSweep,
    ::testing::Values(
        SweepParam{0.6, 1, 4, 4, 24, 16, 20},
        SweepParam{0.6, 2, 4, 4, 24, 16, 21},
        SweepParam{0.6, 8, 4, 4, 24, 16, 22},
        SweepParam{0.6, 16, 4, 4, 24, 16, 23},
        SweepParam{0.6, 64, 4, 4, 24, 16, 24}));

INSTANTIATE_TEST_SUITE_P(
    ArrayShapes, SpmmSweep,
    ::testing::Values(
        SweepParam{0.5, 4, 2, 2, 16, 8, 30},
        SweepParam{0.5, 4, 8, 8, 32, 32, 31},
        SweepParam{0.5, 4, 2, 8, 16, 16, 32},
        SweepParam{0.5, 4, 8, 2, 16, 32, 33},
        SweepParam{0.5, 4, 1, 4, 16, 8, 34}));

TEST(CanonSpmm, PaperConfigModerate)
{
    const auto cfg = CanonConfig::paper();
    Rng rng(42);
    const auto a = randomSparse(64, 64, 0.6, rng);
    const auto b = randomDense(64, cfg.cols * kSimdWidth, rng);
    const auto csr = CsrMatrix::fromDense(a);

    EXPECT_EQ(runSpmm(csr, b, cfg), reference::spmm(csr, b));
}

TEST(CanonSpmm, UtilizationDropsWithSparsityImbalance)
{
    // At equal nnz-work, a deeper scratchpad should never hurt and at
    // high sparsity should help (Figure 17's qualitative shape).
    Rng rng(77);
    const auto a = randomSparse(96, 32, 0.8, rng);
    const auto b = randomDense(32, 16, rng);
    const auto csr = CsrMatrix::fromDense(a);

    auto run_cycles = [&](int spad) {
        const auto cfg = smallConfig(4, 4, spad);
        CanonFabric fabric(cfg);
        fabric.load(mapSpmm(csr, b, cfg));
        return fabric.run();
    };

    const auto deep = run_cycles(16);
    const auto shallow = run_cycles(1);
    EXPECT_LE(deep, shallow);
}

} // namespace
} // namespace canon
