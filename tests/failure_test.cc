/**
 * @file
 * Failure injection: a deterministic fabric must fail *loudly* when
 * its invariants are violated -- a mis-programmed FSM, a corrupted
 * bitstream, a starved stream, or an overdriven channel should
 * produce a diagnostic panic or a watchdog trip, never a wrong
 * answer. These tests inject each fault and pin the failure mode.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"

namespace canon
{
namespace
{

namespace as = addrspace;

CanonConfig
tinyConfig()
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    return cfg;
}

TEST(FailureInjection, UnprogrammedOrchestratorRejected)
{
    const auto cfg = tinyConfig();
    CanonFabric fabric(cfg);
    KernelMapping empty;
    empty.name = "empty";
    EXPECT_THROW(fabric.load(std::move(empty)), FatalError);
}

TEST(FailureInjection, UncompiledProgramRejected)
{
    const auto cfg = tinyConfig();
    CanonFabric fabric(cfg);
    KernelMapping map;
    map.program = std::make_shared<OrchProgram>("raw");
    map.outRows = 1;
    map.outCols = 8;
    EXPECT_THROW(fabric.load(std::move(map)), PanicError);
}

TEST(FailureInjection, FsmWithoutTerminationTripsWatchdog)
{
    // A program whose rules never reach the done state: the fabric
    // watchdog must panic rather than hang.
    const auto cfg = tinyConfig();
    auto prog = std::make_shared<OrchProgram>("livelock");
    prog->setInitialState(0);
    prog->setDoneState(7); // unreachable
    prog->compile();       // everything self-loops as NOP

    KernelMapping map;
    map.name = "livelock";
    map.program = prog;
    map.outRows = 1;
    map.outCols = 8;
    CanonFabric fabric(cfg);
    fabric.load(std::move(map));
    EXPECT_THROW(fabric.run(10'000), PanicError);
}

TEST(FailureInjection, ReadingStarvedPortPanicsWithPeName)
{
    // An FSM that issues a W_IN consumer without feeding the west
    // edge: the PE's port read must name the culprit.
    const auto cfg = tinyConfig();
    auto prog = std::make_shared<OrchProgram>("starved");
    prog->setPredicates(0, {Predicate::True, Predicate::False,
                            Predicate::False, Predicate::False});
    const int am_win = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::West)));
    const int am_brow =
        prog->addAddrMode(AddrMode::fixed(as::dmem(0)));
    const int am_r0 = prog->addAddrMode(AddrMode::fixed(as::reg(0)));
    prog->rule(0)
        .when(Predicate::True)
        .op(OpCode::SvMac)
        .op1(am_win)
        .op2(am_brow)
        .res(am_r0)
        .next(0); // note: no westFeed
    prog->setDoneState(7);
    prog->compile();

    KernelMapping map;
    map.name = "starved";
    map.program = prog;
    map.outRows = 1;
    map.outCols = 8;
    CanonFabric fabric(cfg);
    fabric.load(std::move(map));
    try {
        fabric.run(100);
        FAIL() << "expected a panic";
    } catch (const PanicError &e) {
        // The diagnostic names the starved resource: either the PE or
        // the west-edge channel it tried to pop.
        const std::string what = e.what();
        EXPECT_TRUE(what.find("pe") != std::string::npos ||
                    what.find("empty") != std::string::npos)
            << what;
    }
}

TEST(FailureInjection, CorruptBitstreamDecodesToSafeNops)
{
    // Random LUT bits may decode to any field combination, but the
    // *unpack* path itself never produces out-of-range opcodes from a
    // 3-bit field; a deliberately corrupted stream of valid size
    // loads fine and yields deterministic behaviour.
    FsmLut lut;
    Rng rng(9);
    std::vector<std::uint8_t> bits(FsmLut::bitstreamBytes());
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_NO_THROW(lut.loadBitstream(bits));
    // All 1024 entries decode without tripping assertions.
    for (int i = 0; i < kLutEntries; ++i) {
        const auto &f = lut.lookup(static_cast<std::uint16_t>(i));
        EXPECT_LT(static_cast<int>(f.peOp), 8);
        EXPECT_LT(f.nextState, 8);
    }
}

TEST(FailureInjection, StreamValueBeyondMetaRangeRejected)
{
    const auto cfg = tinyConfig();
    Rng rng(10);
    const auto big = randomSparse(2, 8, 0.5, rng);
    auto csr = CsrMatrix::fromDense(big);
    const auto b = randomDense(8, 8, rng);
    // M >= 2^14 must be rejected by the mapper, not wrap silently.
    CsrMatrix giant(1 << 14, 8);
    EXPECT_THROW(mapSpmm(giant, b, cfg), FatalError);
}

TEST(FailureInjection, DoubleCompilePanics)
{
    OrchProgram p("twice");
    p.compile();
    EXPECT_THROW(p.compile(), PanicError);
}

TEST(FailureInjection, RuleAfterCompilePanics)
{
    OrchProgram p("late");
    p.compile();
    EXPECT_THROW(p.rule(0), PanicError);
}

} // namespace
} // namespace canon
