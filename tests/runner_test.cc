/**
 * @file
 * Runner subsystem tests: sweep-spec expansion (cartesian product,
 * axis validation), worker-pool determinism (identical results and
 * identical rendered output regardless of thread count), and the
 * aggregated sweep table.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "cli/driver.hh"
#include "common/logging.hh"
#include "runner/aggregate.hh"
#include "runner/pool.hh"
#include "runner/shard.hh"
#include "runner/sweep.hh"

namespace canon
{
namespace runner
{
namespace
{

cli::Options
smallSpmm()
{
    cli::Options o;
    o.workload = cli::Workload::Spmm;
    o.m = 32;
    o.k = 32;
    o.n = 32;
    o.sparsity = 0.5;
    o.archs = {"canon"};
    return o;
}

// ---- SweepSpec expansion ---------------------------------------------

TEST(SweepSpec, NoAxesExpandsToSingleBaseJob)
{
    SweepSpec spec;
    EXPECT_EQ(spec.jobCount(), 1u);

    const cli::Options base = smallSpmm();
    auto jobs = spec.expand(base);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].index, 0u);
    EXPECT_EQ(jobs[0].point, "");
    EXPECT_EQ(jobs[0].options.m, base.m);
    EXPECT_DOUBLE_EQ(jobs[0].options.sparsity, base.sparsity);
}

TEST(SweepSpec, SingleAxisExpandsInDeclaredValueOrder)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.5,0.9"), "");
    EXPECT_EQ(spec.jobCount(), 3u);

    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_DOUBLE_EQ(jobs[0].options.sparsity, 0.3);
    EXPECT_DOUBLE_EQ(jobs[1].options.sparsity, 0.5);
    EXPECT_DOUBLE_EQ(jobs[2].options.sparsity, 0.9);
    EXPECT_EQ(jobs[0].point, "sparsity=0.3");
    EXPECT_EQ(jobs[2].point, "sparsity=0.9");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepSpec, CartesianProductVariesLastAxisFastest)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    ASSERT_EQ(spec.addAxis("rows", "4,8"), "");
    EXPECT_EQ(spec.jobCount(), 4u);

    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].point, "sparsity=0.3 rows=4");
    EXPECT_EQ(jobs[1].point, "sparsity=0.3 rows=8");
    EXPECT_EQ(jobs[2].point, "sparsity=0.6 rows=4");
    EXPECT_EQ(jobs[3].point, "sparsity=0.6 rows=8");
    EXPECT_EQ(jobs[1].options.rows, 8);
    EXPECT_DOUBLE_EQ(jobs[1].options.sparsity, 0.3);
    EXPECT_EQ(jobs[2].options.rows, 4);
    EXPECT_DOUBLE_EQ(jobs[2].options.sparsity, 0.6);
}

TEST(SweepSpec, WorkloadAndModelAreSweepable)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("workload", "gemm,spmm"), "");
    ASSERT_EQ(spec.addAxis("model", "longformer,none"), "");
    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].options.workload, cli::Workload::Gemm);
    EXPECT_EQ(jobs[0].options.model, "longformer");
    EXPECT_EQ(jobs[1].options.model, "");
    EXPECT_EQ(jobs[2].options.workload, cli::Workload::Spmm);
}

TEST(SweepSpec, RejectsBadAxes)
{
    SweepSpec spec;
    // Unknown key.
    EXPECT_NE(spec.addAxis("frobnicate", "1,2"), "");
    // Keys outside the scenario grammar are not sweepable, and the
    // message says so rather than calling a real flag unknown.
    const std::string csv_err = spec.addAxis("csv", "a.csv,b.csv");
    EXPECT_NE(csv_err.find("not sweepable"), std::string::npos)
        << csv_err;
    EXPECT_NE(spec.addAxis("arch", "canon,zed"), "");
    EXPECT_NE(spec.addAxis("jobs", "1,2"), "");
    // Malformed values.
    EXPECT_NE(spec.addAxis("sparsity", "0.5,1.5"), "");
    EXPECT_NE(spec.addAxis("m", "64,abc"), "");
    EXPECT_NE(spec.addAxis("model", "gpt5"), "");
    // Empty value list, embedded and trailing empty values.
    EXPECT_NE(spec.addAxis("rows", ""), "");
    EXPECT_NE(spec.addAxis("rows", "4,,8"), "");
    EXPECT_NE(spec.addAxis("rows", "4,8,"), "");
    // "--sweep --rows=4" style keys get a targeted hint.
    const std::string dash_err = spec.addAxis("--rows", "4,8");
    EXPECT_NE(dash_err.find("should not start with '-'"),
              std::string::npos)
        << dash_err;
    // A rejected axis must not have been recorded.
    EXPECT_EQ(spec.axisCount(), 0u);
    EXPECT_EQ(spec.jobCount(), 1u);
}

TEST(SweepSpec, RejectsDuplicateAxis)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("rows", "4,8"), "");
    const std::string err = spec.addAxis("rows", "16");
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    EXPECT_EQ(spec.axisCount(), 1u);
}

TEST(SweepSpec, MakeSweepSpecReportsFirstError)
{
    SweepSpec ok;
    EXPECT_EQ(makeSweepSpec({{"sparsity", "0.5,0.7"}, {"rows", "4"}},
                            ok),
              "");
    EXPECT_EQ(ok.jobCount(), 2u);

    SweepSpec bad;
    const std::string err =
        makeSweepSpec({{"rows", "4"}, {"sparsity", "2.0"}}, bad);
    EXPECT_NE(err.find("sparsity"), std::string::npos) << err;
}

// ---- Shard splitter ---------------------------------------------------

TEST(Shard, ParsesValidSpecs)
{
    Shard s;
    EXPECT_EQ(parseShard("0/1", s), "");
    EXPECT_TRUE(s.whole());

    EXPECT_EQ(parseShard("3/8", s), "");
    EXPECT_EQ(s.index, 3);
    EXPECT_EQ(s.count, 8);
    EXPECT_FALSE(s.whole());
    EXPECT_EQ(s.label(), "3/8");
}

TEST(Shard, RejectsMalformedSpecs)
{
    Shard s{7, 9}; // must stay untouched on failure
    for (const char *bad :
         {"", "2", "/", "2/", "/2", "2/2", "3/2", "-1/2", "0/0",
          "0/-3", "a/b", "1/2x", "1.5/2", "0/9999"}) {
        EXPECT_NE(parseShard(bad, s), "") << bad;
        EXPECT_EQ(s.index, 7) << bad;
        EXPECT_EQ(s.count, 9) << bad;
    }
}

TEST(Shard, RangesPartitionTheJobList)
{
    // Union of all shards == [0, total), disjoint, in order -- for
    // totals smaller than, equal to, and larger than the shard count.
    for (std::size_t total : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 100u}) {
        for (int n : {1, 2, 3, 4, 8}) {
            std::size_t expect_begin = 0;
            for (int i = 0; i < n; ++i) {
                const auto [first, last] =
                    shardRange(Shard{i, n}, total);
                EXPECT_EQ(first, expect_begin)
                    << "total=" << total << " shard=" << i << "/" << n;
                EXPECT_LE(first, last);
                expect_begin = last;
            }
            EXPECT_EQ(expect_begin, total) << "total=" << total
                                           << " n=" << n;
        }
    }
}

TEST(Shard, SlicesAreBalancedWithinOneJob)
{
    const std::size_t total = 10;
    for (int i = 0; i < 3; ++i) {
        const auto [first, last] = shardRange(Shard{i, 3}, total);
        const std::size_t size = last - first;
        EXPECT_GE(size, 3u);
        EXPECT_LE(size, 4u);
    }
}

TEST(Shard, MoreShardsThanJobsYieldsEmptySlices)
{
    // 2 jobs over 5 shards: some shards own nothing, and that is a
    // legal, silent no-op rather than an error.
    std::size_t owned = 0, empty_shards = 0;
    for (int i = 0; i < 5; ++i) {
        const auto [first, last] = shardRange(Shard{i, 5}, 2);
        owned += last - first;
        if (first == last)
            ++empty_shards;
    }
    EXPECT_EQ(owned, 2u);
    EXPECT_EQ(empty_shards, 3u);

    // The fully degenerate case: no jobs at all.
    const auto [first, last] = shardRange(Shard{1, 4}, 0);
    EXPECT_EQ(first, last);
}

// ---- ScenarioPool -----------------------------------------------------

TEST(ScenarioPool, MapCollectsResultsAtTheirIndex)
{
    const auto results = ScenarioPool(4).map<std::size_t>(
        32, [](std::size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 32u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ScenarioPool, MapRethrowsLowestIndexedFailure)
{
    try {
        ScenarioPool(4).map<int>(16, [](std::size_t i) -> int {
            if (i == 11 || i == 5)
                fatal("job ", i, " exploded");
            return static_cast<int>(i);
        });
        FAIL() << "map() should have thrown";
    } catch (const std::runtime_error &e) {
        // Every job ran; the reported failure is the first by index,
        // independent of scheduling.
        EXPECT_NE(std::string(e.what()).find("job 5 exploded"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ScenarioPool, EmptyJobListYieldsNoResults)
{
    ScenarioPool pool(4);
    auto results = pool.run(
        {}, [](const cli::Options &) { return CaseResult{}; });
    EXPECT_TRUE(results.empty());
}

TEST(ScenarioPool, ResultsLandAtTheirJobIndex)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("m", "8,16,24,32,40,48,56,64"), "");
    auto jobs = spec.expand(smallSpmm());

    // A synthetic runner that encodes the job's m into the profile,
    // so any misplacement is visible.
    auto fn = [](const cli::Options &o) {
        CaseResult r;
        ExecutionProfile p;
        p.cycles = static_cast<std::uint64_t>(o.m);
        r["canon"] = p;
        return r;
    };

    for (int workers : {1, 3, 8, 16}) {
        auto results = ScenarioPool(workers).run(jobs, fn);
        ASSERT_EQ(results.size(), jobs.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].job.index, i);
            EXPECT_EQ(results[i].cases.at("canon").cycles,
                      static_cast<std::uint64_t>(
                          jobs[i].options.m))
                << "workers=" << workers << " job=" << i;
        }
    }
}

TEST(ScenarioPool, CapturesExceptionsAndEmptyResults)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("m", "8,16,24"), "");
    auto jobs = spec.expand(smallSpmm());

    auto fn = [](const cli::Options &o) -> CaseResult {
        if (o.m == 8)
            fatal("scenario exploded");
        if (o.m == 16)
            return {}; // nothing could run
        CaseResult r;
        r["canon"] = ExecutionProfile{};
        r["canon"].cycles = 1;
        return r;
    };

    auto results = ScenarioPool(2).run(jobs, fn);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_NE(results[0].error.find("scenario exploded"),
              std::string::npos);
    EXPECT_EQ(results[1].error, std::string(kNoArchError));
    EXPECT_EQ(results[2].error, "");
    EXPECT_EQ(results[2].cases.at("canon").cycles, 1u);
}

TEST(ScenarioPool, CancelTokenLandsTypedFailuresAtTheirIndex)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("m", "8,16,24,32"), "");
    auto jobs = spec.expand(smallSpmm());

    // One worker runs the jobs inline in index order; cancelling
    // from the first callback deterministically skips the rest.
    CancelToken token;
    std::atomic<int> executed{0};
    auto results = ScenarioPool(1).run(
        jobs,
        [&](const cli::Options &) -> CaseResult {
            ++executed;
            CaseResult r;
            r["canon"] = ExecutionProfile{};
            r["canon"].cycles = 1;
            return r;
        },
        nullptr,
        [&](const ScenarioResult &) { token.cancel(); }, &token);

    EXPECT_EQ(executed.load(), 1);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].error, "");
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].error, std::string(kCancelledError));
        EXPECT_TRUE(results[i].cancelled()) << i;
        EXPECT_FALSE(results[i].cacheHit);
        EXPECT_FALSE(results[i].cacheStored);
    }

    // A token cancelled before the run skips everything.
    auto skipped = ScenarioPool(4).run(
        jobs,
        [&](const cli::Options &) -> CaseResult {
            ++executed;
            return {};
        },
        nullptr, nullptr, &token);
    EXPECT_EQ(executed.load(), 1);
    for (const auto &r : skipped)
        EXPECT_TRUE(r.cancelled());
}

TEST(ScenarioPool, RealSweepIsDeterministicAcrossWorkerCounts)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    ASSERT_EQ(spec.addAxis("rows", "2,4"), "");
    auto jobs = spec.expand(smallSpmm());

    auto run = [&](int workers) {
        return ScenarioPool(workers).run(
            jobs,
            [](const cli::Options &o) { return cli::runCases(o); });
    };

    auto serial = run(1);
    auto threaded = run(8);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].cases.size(), threaded[i].cases.size());
        for (const auto &[arch, profile] : serial[i].cases) {
            const auto &other = threaded[i].cases.at(arch);
            EXPECT_EQ(profile.cycles, other.cycles)
                << "job " << i << " arch " << arch;
            EXPECT_EQ(profile.activity, other.activity)
                << "job " << i << " arch " << arch;
        }
    }
}

// ---- SweepResult / end-to-end ----------------------------------------

TEST(SweepResult, CombinedTableHasOneRowPerScenarioArch)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    cli::Options base = smallSpmm();
    base.archs = {"canon", "systolic"};
    auto jobs = spec.expand(base);

    auto results = ScenarioPool(2).run(
        jobs, [](const cli::Options &o) { return cli::runCases(o); });
    SweepResult sweep(std::move(results));
    EXPECT_EQ(sweep.failureCount(), 0u);

    std::ostringstream os;
    sweep.table().print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Scenario"), std::string::npos);
    EXPECT_NE(text.find("sparsity=0.3"), std::string::npos);
    EXPECT_NE(text.find("sparsity=0.6"), std::string::npos);
    EXPECT_NE(text.find("systolic"), std::string::npos);
}

TEST(SweepResult, FailedScenarioRendersXRow)
{
    SweepJob job;
    job.index = 0;
    job.options = smallSpmm();
    job.point = "m=8";
    ScenarioResult failed;
    failed.job = job;
    failed.error = "boom";

    SweepResult sweep({failed});
    EXPECT_EQ(sweep.failureCount(), 1u);
    std::ostringstream os;
    sweep.table().print(os);
    EXPECT_NE(os.str().find("X"), std::string::npos);
}

TEST(RunScenario, SweepOutputByteIdenticalAcrossJobCounts)
{
    auto run = [](int jobs_flag) {
        auto parsed = cli::parseArgs(
            {"--workload", "spmm", "--m", "32", "--k", "32", "--n",
             "32", "--sweep", "sparsity=0.5,0.7,0.9", "--sweep",
             "rows=4,8", "--jobs", std::to_string(jobs_flag)});
        EXPECT_TRUE(parsed.ok) << parsed.error;
        std::ostringstream out, err;
        const int rc =
            cli::runScenario(parsed.options, out, err);
        EXPECT_EQ(rc, 0) << err.str();
        EXPECT_EQ(err.str(), "");
        return out.str();
    };

    const std::string serial = run(1);
    const std::string threaded = run(4);
    EXPECT_EQ(serial, threaded);
    // All six scenarios must be present.
    for (const char *point :
         {"sparsity=0.5 rows=4", "sparsity=0.5 rows=8",
          "sparsity=0.7 rows=4", "sparsity=0.7 rows=8",
          "sparsity=0.9 rows=4", "sparsity=0.9 rows=8"})
        EXPECT_NE(serial.find(point), std::string::npos) << point;
}

TEST(RunScenario, SweepCsvByteIdenticalAcrossJobCounts)
{
    auto run = [](int jobs_flag, const std::string &path) {
        auto parsed = cli::parseArgs(
            {"--workload", "gemm", "--m", "16", "--k", "16", "--n",
             "16", "--sweep", "k=16,32", "--jobs",
             std::to_string(jobs_flag), "--csv", path});
        EXPECT_TRUE(parsed.ok) << parsed.error;
        std::ostringstream out, err;
        EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0)
            << err.str();
        std::ifstream f(path);
        std::stringstream ss;
        ss << f.rdbuf();
        return ss.str();
    };

    const std::string dir = ::testing::TempDir();
    const std::string a = run(1, dir + "runner_sweep_1.csv");
    const std::string b = run(3, dir + "runner_sweep_3.csv");
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("Scenario,Point,Arch"), std::string::npos);
}

TEST(RunScenario, ShardCsvsConcatenateToTheFullSweepCsv)
{
    auto run = [](const std::string &shard, const std::string &path) {
        std::vector<std::string> args = {
            "--workload", "gemm", "--m", "16", "--k", "16", "--n",
            "16", "--sweep", "k=16,32,48", "--sweep", "rows=2,4",
            "--csv", path};
        if (!shard.empty()) {
            args.push_back("--shard");
            args.push_back(shard);
        }
        auto parsed = cli::parseArgs(args);
        EXPECT_TRUE(parsed.ok) << parsed.error;
        std::ostringstream out, err;
        EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0)
            << err.str();
        std::ifstream f(path);
        std::stringstream ss;
        ss << f.rdbuf();
        return ss.str();
    };

    const std::string dir = ::testing::TempDir();
    const std::string full = run("", dir + "shard_full.csv");
    EXPECT_FALSE(full.empty());

    // Any shard count recombines to the serial CSV: only shard 0
    // carries the header, every slice keeps expansion order.
    for (int n : {2, 3, 4}) {
        std::string merged;
        for (int i = 0; i < n; ++i)
            merged += run(std::to_string(i) + "/" + std::to_string(n),
                          dir + "shard_part.csv");
        EXPECT_EQ(merged, full) << "n=" << n;
    }
}

TEST(RunScenario, ShardedRunReportsItsSlice)
{
    auto parsed = cli::parseArgs({"--workload", "gemm", "--m", "16",
                                  "--k", "16", "--n", "16", "--sweep",
                                  "k=16,32", "--shard", "1/2"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("1 of 2 scenarios (shard 1/2)"),
              std::string::npos)
        << out.str();
    // Shard 1 owns only the second expansion point.
    EXPECT_EQ(out.str().find("k=16"), std::string::npos);
    EXPECT_NE(out.str().find("k=32"), std::string::npos);
}

TEST(RunScenario, ShardedSingleScenarioMayOwnNothing)
{
    // One job over two shards: the floor split [total*i/n,
    // total*(i+1)/n) hands the job to shard 1, so shard 0 owns the
    // empty slice and must succeed with an empty sweep report (the
    // shard contract), not crash on the missing single-run result.
    auto parsed = cli::parseArgs({"--workload", "gemm", "--m", "16",
                                  "--k", "16", "--n", "16", "--shard",
                                  "0/2"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("0 of 1 scenario (shard 0/2)"),
              std::string::npos)
        << out.str();
}

TEST(RunScenario, DegenerateSingleRunKeepsClassicReport)
{
    auto parsed = cli::parseArgs(
        {"--workload", "spmm", "--m", "32", "--k", "32", "--n", "32"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0);
    EXPECT_EQ(err.str(), "");
    const std::string text = out.str();
    // Classic report: fabric description then the per-arch table.
    EXPECT_NE(text.find("=== canonsim: spmm"), std::string::npos);
    EXPECT_EQ(text.find("canonsim sweep"), std::string::npos);
}

TEST(RunScenario, MalformedSweepAxisExitsWithUsageError)
{
    auto parsed =
        cli::parseArgs({"--sweep", "sparsity=0.5,oops"});
    ASSERT_TRUE(parsed.ok) << parsed.error; // parse defers validation
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 2);
    EXPECT_NE(err.str().find("sparsity"), std::string::npos);
    // Bad usage prints the usage text, like main.cc's parse failure.
    EXPECT_NE(err.str().find("Usage: canonsim"), std::string::npos);
}

TEST(RunScenario, RejectsShapeAxesWhenModelPinsTheScenario)
{
    auto parsed = cli::parseArgs(
        {"--model", "longformer", "--sweep", "m=8,16"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 2);
    EXPECT_NE(err.str().find("has no effect"), std::string::npos);

    // Sweeping only models (no 'none' point) is just as pinned.
    auto swept = cli::parseArgs(
        {"--sweep", "model=longformer,llama8b-attn", "--sweep",
         "m=8,16"});
    ASSERT_TRUE(swept.ok) << swept.error;
    std::ostringstream sout, serr;
    EXPECT_EQ(cli::runScenario(swept.options, sout, serr), 2);
    EXPECT_NE(serr.str().find("has no effect"), std::string::npos);

    // A 'model' axis (which may contain 'none') re-legitimizes the
    // shape axes: model=none points are shape scenarios.
    auto mixed = cli::parseArgs(
        {"--model", "longformer", "--workload", "gemm",
         "--m", "16", "--k", "16", "--n", "16",
         "--sweep", "model=none", "--sweep", "m=16,32"});
    ASSERT_TRUE(mixed.ok) << mixed.error;
    std::ostringstream mout, merr;
    EXPECT_EQ(cli::runScenario(mixed.options, mout, merr), 0)
        << merr.str();
    EXPECT_NE(mout.str().find("m=32"), std::string::npos);
}

} // namespace
} // namespace runner
} // namespace canon
