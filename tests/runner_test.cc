/**
 * @file
 * Runner subsystem tests: sweep-spec expansion (cartesian product,
 * axis validation), worker-pool determinism (identical results and
 * identical rendered output regardless of thread count), and the
 * aggregated sweep table.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "cli/driver.hh"
#include "common/logging.hh"
#include "runner/aggregate.hh"
#include "runner/pool.hh"
#include "runner/sweep.hh"

namespace canon
{
namespace runner
{
namespace
{

cli::Options
smallSpmm()
{
    cli::Options o;
    o.workload = cli::Workload::Spmm;
    o.m = 32;
    o.k = 32;
    o.n = 32;
    o.sparsity = 0.5;
    o.archs = {"canon"};
    return o;
}

// ---- SweepSpec expansion ---------------------------------------------

TEST(SweepSpec, NoAxesExpandsToSingleBaseJob)
{
    SweepSpec spec;
    EXPECT_EQ(spec.jobCount(), 1u);

    const cli::Options base = smallSpmm();
    auto jobs = spec.expand(base);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].index, 0u);
    EXPECT_EQ(jobs[0].point, "");
    EXPECT_EQ(jobs[0].options.m, base.m);
    EXPECT_DOUBLE_EQ(jobs[0].options.sparsity, base.sparsity);
}

TEST(SweepSpec, SingleAxisExpandsInDeclaredValueOrder)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.5,0.9"), "");
    EXPECT_EQ(spec.jobCount(), 3u);

    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_DOUBLE_EQ(jobs[0].options.sparsity, 0.3);
    EXPECT_DOUBLE_EQ(jobs[1].options.sparsity, 0.5);
    EXPECT_DOUBLE_EQ(jobs[2].options.sparsity, 0.9);
    EXPECT_EQ(jobs[0].point, "sparsity=0.3");
    EXPECT_EQ(jobs[2].point, "sparsity=0.9");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepSpec, CartesianProductVariesLastAxisFastest)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    ASSERT_EQ(spec.addAxis("rows", "4,8"), "");
    EXPECT_EQ(spec.jobCount(), 4u);

    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].point, "sparsity=0.3 rows=4");
    EXPECT_EQ(jobs[1].point, "sparsity=0.3 rows=8");
    EXPECT_EQ(jobs[2].point, "sparsity=0.6 rows=4");
    EXPECT_EQ(jobs[3].point, "sparsity=0.6 rows=8");
    EXPECT_EQ(jobs[1].options.rows, 8);
    EXPECT_DOUBLE_EQ(jobs[1].options.sparsity, 0.3);
    EXPECT_EQ(jobs[2].options.rows, 4);
    EXPECT_DOUBLE_EQ(jobs[2].options.sparsity, 0.6);
}

TEST(SweepSpec, WorkloadAndModelAreSweepable)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("workload", "gemm,spmm"), "");
    ASSERT_EQ(spec.addAxis("model", "longformer,none"), "");
    auto jobs = spec.expand(smallSpmm());
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].options.workload, cli::Workload::Gemm);
    EXPECT_EQ(jobs[0].options.model, "longformer");
    EXPECT_EQ(jobs[1].options.model, "");
    EXPECT_EQ(jobs[2].options.workload, cli::Workload::Spmm);
}

TEST(SweepSpec, RejectsBadAxes)
{
    SweepSpec spec;
    // Unknown key.
    EXPECT_NE(spec.addAxis("frobnicate", "1,2"), "");
    // Keys outside the scenario grammar are not sweepable, and the
    // message says so rather than calling a real flag unknown.
    const std::string csv_err = spec.addAxis("csv", "a.csv,b.csv");
    EXPECT_NE(csv_err.find("not sweepable"), std::string::npos)
        << csv_err;
    EXPECT_NE(spec.addAxis("arch", "canon,zed"), "");
    EXPECT_NE(spec.addAxis("jobs", "1,2"), "");
    // Malformed values.
    EXPECT_NE(spec.addAxis("sparsity", "0.5,1.5"), "");
    EXPECT_NE(spec.addAxis("m", "64,abc"), "");
    EXPECT_NE(spec.addAxis("model", "gpt5"), "");
    // Empty value list, embedded and trailing empty values.
    EXPECT_NE(spec.addAxis("rows", ""), "");
    EXPECT_NE(spec.addAxis("rows", "4,,8"), "");
    EXPECT_NE(spec.addAxis("rows", "4,8,"), "");
    // "--sweep --rows=4" style keys get a targeted hint.
    const std::string dash_err = spec.addAxis("--rows", "4,8");
    EXPECT_NE(dash_err.find("should not start with '-'"),
              std::string::npos)
        << dash_err;
    // A rejected axis must not have been recorded.
    EXPECT_EQ(spec.axisCount(), 0u);
    EXPECT_EQ(spec.jobCount(), 1u);
}

TEST(SweepSpec, RejectsDuplicateAxis)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("rows", "4,8"), "");
    const std::string err = spec.addAxis("rows", "16");
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    EXPECT_EQ(spec.axisCount(), 1u);
}

TEST(SweepSpec, MakeSweepSpecReportsFirstError)
{
    SweepSpec ok;
    EXPECT_EQ(makeSweepSpec({{"sparsity", "0.5,0.7"}, {"rows", "4"}},
                            ok),
              "");
    EXPECT_EQ(ok.jobCount(), 2u);

    SweepSpec bad;
    const std::string err =
        makeSweepSpec({{"rows", "4"}, {"sparsity", "2.0"}}, bad);
    EXPECT_NE(err.find("sparsity"), std::string::npos) << err;
}

// ---- ScenarioPool -----------------------------------------------------

TEST(ScenarioPool, EmptyJobListYieldsNoResults)
{
    ScenarioPool pool(4);
    auto results = pool.run(
        {}, [](const cli::Options &) { return CaseResult{}; });
    EXPECT_TRUE(results.empty());
}

TEST(ScenarioPool, ResultsLandAtTheirJobIndex)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("m", "8,16,24,32,40,48,56,64"), "");
    auto jobs = spec.expand(smallSpmm());

    // A synthetic runner that encodes the job's m into the profile,
    // so any misplacement is visible.
    auto fn = [](const cli::Options &o) {
        CaseResult r;
        ExecutionProfile p;
        p.cycles = static_cast<std::uint64_t>(o.m);
        r["canon"] = p;
        return r;
    };

    for (int workers : {1, 3, 8, 16}) {
        auto results = ScenarioPool(workers).run(jobs, fn);
        ASSERT_EQ(results.size(), jobs.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].job.index, i);
            EXPECT_EQ(results[i].cases.at("canon").cycles,
                      static_cast<std::uint64_t>(
                          jobs[i].options.m))
                << "workers=" << workers << " job=" << i;
        }
    }
}

TEST(ScenarioPool, CapturesExceptionsAndEmptyResults)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("m", "8,16,24"), "");
    auto jobs = spec.expand(smallSpmm());

    auto fn = [](const cli::Options &o) -> CaseResult {
        if (o.m == 8)
            fatal("scenario exploded");
        if (o.m == 16)
            return {}; // nothing could run
        CaseResult r;
        r["canon"] = ExecutionProfile{};
        r["canon"].cycles = 1;
        return r;
    };

    auto results = ScenarioPool(2).run(jobs, fn);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_NE(results[0].error.find("scenario exploded"),
              std::string::npos);
    EXPECT_EQ(results[1].error, std::string(kNoArchError));
    EXPECT_EQ(results[2].error, "");
    EXPECT_EQ(results[2].cases.at("canon").cycles, 1u);
}

TEST(ScenarioPool, RealSweepIsDeterministicAcrossWorkerCounts)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    ASSERT_EQ(spec.addAxis("rows", "2,4"), "");
    auto jobs = spec.expand(smallSpmm());

    auto run = [&](int workers) {
        return ScenarioPool(workers).run(
            jobs,
            [](const cli::Options &o) { return cli::runCases(o); });
    };

    auto serial = run(1);
    auto threaded = run(8);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].cases.size(), threaded[i].cases.size());
        for (const auto &[arch, profile] : serial[i].cases) {
            const auto &other = threaded[i].cases.at(arch);
            EXPECT_EQ(profile.cycles, other.cycles)
                << "job " << i << " arch " << arch;
            EXPECT_EQ(profile.activity, other.activity)
                << "job " << i << " arch " << arch;
        }
    }
}

// ---- SweepResult / end-to-end ----------------------------------------

TEST(SweepResult, CombinedTableHasOneRowPerScenarioArch)
{
    SweepSpec spec;
    ASSERT_EQ(spec.addAxis("sparsity", "0.3,0.6"), "");
    cli::Options base = smallSpmm();
    base.archs = {"canon", "systolic"};
    auto jobs = spec.expand(base);

    auto results = ScenarioPool(2).run(
        jobs, [](const cli::Options &o) { return cli::runCases(o); });
    SweepResult sweep(std::move(results));
    EXPECT_EQ(sweep.failureCount(), 0u);

    std::ostringstream os;
    sweep.table().print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Scenario"), std::string::npos);
    EXPECT_NE(text.find("sparsity=0.3"), std::string::npos);
    EXPECT_NE(text.find("sparsity=0.6"), std::string::npos);
    EXPECT_NE(text.find("systolic"), std::string::npos);
}

TEST(SweepResult, FailedScenarioRendersXRow)
{
    SweepJob job;
    job.index = 0;
    job.options = smallSpmm();
    job.point = "m=8";
    ScenarioResult failed;
    failed.job = job;
    failed.error = "boom";

    SweepResult sweep({failed});
    EXPECT_EQ(sweep.failureCount(), 1u);
    std::ostringstream os;
    sweep.table().print(os);
    EXPECT_NE(os.str().find("X"), std::string::npos);
}

TEST(RunScenario, SweepOutputByteIdenticalAcrossJobCounts)
{
    auto run = [](int jobs_flag) {
        auto parsed = cli::parseArgs(
            {"--workload", "spmm", "--m", "32", "--k", "32", "--n",
             "32", "--sweep", "sparsity=0.5,0.7,0.9", "--sweep",
             "rows=4,8", "--jobs", std::to_string(jobs_flag)});
        EXPECT_TRUE(parsed.ok) << parsed.error;
        std::ostringstream out, err;
        const int rc =
            cli::runScenario(parsed.options, out, err);
        EXPECT_EQ(rc, 0) << err.str();
        EXPECT_EQ(err.str(), "");
        return out.str();
    };

    const std::string serial = run(1);
    const std::string threaded = run(4);
    EXPECT_EQ(serial, threaded);
    // All six scenarios must be present.
    for (const char *point :
         {"sparsity=0.5 rows=4", "sparsity=0.5 rows=8",
          "sparsity=0.7 rows=4", "sparsity=0.7 rows=8",
          "sparsity=0.9 rows=4", "sparsity=0.9 rows=8"})
        EXPECT_NE(serial.find(point), std::string::npos) << point;
}

TEST(RunScenario, SweepCsvByteIdenticalAcrossJobCounts)
{
    auto run = [](int jobs_flag, const std::string &path) {
        auto parsed = cli::parseArgs(
            {"--workload", "gemm", "--m", "16", "--k", "16", "--n",
             "16", "--sweep", "k=16,32", "--jobs",
             std::to_string(jobs_flag), "--csv", path});
        EXPECT_TRUE(parsed.ok) << parsed.error;
        std::ostringstream out, err;
        EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0)
            << err.str();
        std::ifstream f(path);
        std::stringstream ss;
        ss << f.rdbuf();
        return ss.str();
    };

    const std::string dir = ::testing::TempDir();
    const std::string a = run(1, dir + "runner_sweep_1.csv");
    const std::string b = run(3, dir + "runner_sweep_3.csv");
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("Scenario,Point,Arch"), std::string::npos);
}

TEST(RunScenario, DegenerateSingleRunKeepsClassicReport)
{
    auto parsed = cli::parseArgs(
        {"--workload", "spmm", "--m", "32", "--k", "32", "--n", "32"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 0);
    EXPECT_EQ(err.str(), "");
    const std::string text = out.str();
    // Classic report: fabric description then the per-arch table.
    EXPECT_NE(text.find("=== canonsim: spmm"), std::string::npos);
    EXPECT_EQ(text.find("canonsim sweep"), std::string::npos);
}

TEST(RunScenario, MalformedSweepAxisExitsWithUsageError)
{
    auto parsed =
        cli::parseArgs({"--sweep", "sparsity=0.5,oops"});
    ASSERT_TRUE(parsed.ok) << parsed.error; // parse defers validation
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 2);
    EXPECT_NE(err.str().find("sparsity"), std::string::npos);
    // Bad usage prints the usage text, like main.cc's parse failure.
    EXPECT_NE(err.str().find("Usage: canonsim"), std::string::npos);
}

TEST(RunScenario, RejectsShapeAxesWhenModelPinsTheScenario)
{
    auto parsed = cli::parseArgs(
        {"--model", "longformer", "--sweep", "m=8,16"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(parsed.options, out, err), 2);
    EXPECT_NE(err.str().find("has no effect"), std::string::npos);

    // Sweeping only models (no 'none' point) is just as pinned.
    auto swept = cli::parseArgs(
        {"--sweep", "model=longformer,llama8b-attn", "--sweep",
         "m=8,16"});
    ASSERT_TRUE(swept.ok) << swept.error;
    std::ostringstream sout, serr;
    EXPECT_EQ(cli::runScenario(swept.options, sout, serr), 2);
    EXPECT_NE(serr.str().find("has no effect"), std::string::npos);

    // A 'model' axis (which may contain 'none') re-legitimizes the
    // shape axes: model=none points are shape scenarios.
    auto mixed = cli::parseArgs(
        {"--model", "longformer", "--workload", "gemm",
         "--m", "16", "--k", "16", "--n", "16",
         "--sweep", "model=none", "--sweep", "m=16,32"});
    ASSERT_TRUE(mixed.ok) << mixed.error;
    std::ostringstream mout, merr;
    EXPECT_EQ(cli::runScenario(mixed.options, mout, merr), 0)
        << merr.str();
    EXPECT_NE(mout.str().find("m=32"), std::string::npos);
}

} // namespace
} // namespace runner
} // namespace canon
