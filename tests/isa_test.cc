/**
 * @file
 * ISA tests: unified address-space classification, instruction
 * encode/decode round-trips (property-swept over randomized
 * instructions), and disassembly.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace canon
{
namespace
{

namespace as = addrspace;

TEST(AddressSpace, RegionClassification)
{
    EXPECT_EQ(as::region(as::dmem(0)), AddrRegion::Dmem);
    EXPECT_EQ(as::region(as::dmem(1023)), AddrRegion::Dmem);
    EXPECT_EQ(as::region(as::spad(0)), AddrRegion::Spad);
    EXPECT_EQ(as::region(as::spad(255)), AddrRegion::Spad);
    EXPECT_EQ(as::region(as::reg(0)), AddrRegion::Reg);
    EXPECT_EQ(as::region(as::reg(15)), AddrRegion::Reg);
    EXPECT_EQ(as::region(as::portIn(Dir::North)), AddrRegion::PortIn);
    EXPECT_EQ(as::region(as::portOut(Dir::West)), AddrRegion::PortOut);
    EXPECT_EQ(as::region(as::kZeroAddr), AddrRegion::Zero);
    EXPECT_EQ(as::region(as::kNullAddr), AddrRegion::Null);
}

TEST(AddressSpace, OffsetsRoundTrip)
{
    EXPECT_EQ(as::offset(as::dmem(77)), 77);
    EXPECT_EQ(as::offset(as::spad(13)), 13);
    EXPECT_EQ(as::offset(as::reg(9)), 9);
    EXPECT_EQ(as::offset(as::portIn(Dir::South)),
              static_cast<Addr>(Dir::South));
}

TEST(AddressSpace, BoundsChecked)
{
    EXPECT_THROW(as::dmem(1024), PanicError);
    EXPECT_THROW(as::spad(256), PanicError);
    EXPECT_THROW(as::reg(16), PanicError);
    EXPECT_THROW(as::dmem(-1), PanicError);
}

TEST(AddressSpace, ToString)
{
    EXPECT_EQ(as::toString(as::dmem(5)), "DMEM[5]");
    EXPECT_EQ(as::toString(as::spad(3)), "SPAD[3]");
    EXPECT_EQ(as::toString(as::reg(2)), "R2");
    EXPECT_EQ(as::toString(as::portIn(Dir::North)), "N_IN");
    EXPECT_EQ(as::toString(as::portOut(Dir::South)), "S_OUT");
    EXPECT_EQ(as::toString(as::kZeroAddr), "ZERO");
    EXPECT_EQ(as::toString(as::kNullAddr), "NULL");
}

TEST(Instruction, NopDefaults)
{
    const auto n = nopInst();
    EXPECT_TRUE(n.isNop());
    EXPECT_EQ(n.op, OpCode::Nop);
    EXPECT_EQ(Instruction::decode(n.encode()), n);
}

TEST(Instruction, EncodeDecodeExplicit)
{
    Instruction i;
    i.op = OpCode::SvMac;
    i.op1 = as::portIn(Dir::West);
    i.op2 = as::dmem(42);
    i.res = as::spad(7);
    i.route = kRouteW2E | kRouteN2S;
    i.hold = true;
    EXPECT_EQ(Instruction::decode(i.encode()), i);
}

TEST(Instruction, DecodeRejectsBadOpcode)
{
    // Craft a word with an out-of-range opcode field.
    const std::uint64_t bad = 0x3F; // op field all-ones
    EXPECT_THROW(Instruction::decode(bad), PanicError);
}

TEST(Instruction, Disassembly)
{
    Instruction i;
    i.op = OpCode::SvMac;
    i.op1 = as::portIn(Dir::West);
    i.op2 = as::dmem(3);
    i.res = as::spad(1);
    i.route = kRouteN2S;
    const auto s = i.toString();
    EXPECT_NE(s.find("SVMAC"), std::string::npos);
    EXPECT_NE(s.find("W_IN"), std::string::npos);
    EXPECT_NE(s.find("DMEM[3]"), std::string::npos);
    EXPECT_NE(s.find("SPAD[1]"), std::string::npos);
    EXPECT_NE(s.find("N>S"), std::string::npos);
}

/** Property sweep: random legal instructions round-trip exactly. */
class InstructionRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(InstructionRoundTrip, EncodeDecodeIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int t = 0; t < 500; ++t) {
        Instruction i;
        i.op = static_cast<OpCode>(rng.nextBounded(
            static_cast<std::uint64_t>(OpCode::NumOpCodes)));
        i.op1 = static_cast<Addr>(rng.nextBounded(1 << 16));
        i.op2 = static_cast<Addr>(rng.nextBounded(1 << 16));
        i.res = static_cast<Addr>(rng.nextBounded(1 << 16));
        i.route = static_cast<std::uint8_t>(rng.nextBounded(16));
        i.hold = rng.nextBool(0.5);
        EXPECT_EQ(Instruction::decode(i.encode()), i);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstructionRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Assembler, ParsesOperands)
{
    EXPECT_EQ(parseAddr("DMEM[42]"), as::dmem(42));
    EXPECT_EQ(parseAddr("spad[7]"), as::spad(7));
    EXPECT_EQ(parseAddr("R3"), as::reg(3));
    EXPECT_EQ(parseAddr("w_in"), as::portIn(Dir::West));
    EXPECT_EQ(parseAddr("S_OUT"), as::portOut(Dir::South));
    EXPECT_EQ(parseAddr("ZERO"), as::kZeroAddr);
    EXPECT_EQ(parseAddr("NULL"), as::kNullAddr);
    EXPECT_THROW(parseAddr("BOGUS[1]"), FatalError);
    EXPECT_THROW(parseAddr("Q9"), FatalError);
}

TEST(Assembler, AssemblesFullInstruction)
{
    const auto i = assembleInstruction(
        "SVMAC W_IN, DMEM[3] -> SPAD[1] [N>S W>E]");
    EXPECT_EQ(i.op, OpCode::SvMac);
    EXPECT_EQ(i.op1, as::portIn(Dir::West));
    EXPECT_EQ(i.op2, as::dmem(3));
    EXPECT_EQ(i.res, as::spad(1));
    EXPECT_EQ(i.route, kRouteN2S | kRouteW2E);
}

TEST(Assembler, SingleOperandForms)
{
    const auto mov = assembleInstruction("VMOV SPAD[2] -> S_OUT");
    EXPECT_EQ(mov.op, OpCode::VMov);
    EXPECT_EQ(mov.op1, as::spad(2));
    EXPECT_EQ(mov.op2, as::kNullAddr);
    EXPECT_EQ(mov.res, as::portOut(Dir::South));

    EXPECT_TRUE(assembleInstruction("NOP").isNop());
    EXPECT_EQ(assembleInstruction("NOP [N>S]").route, kRouteN2S);
}

TEST(Assembler, RejectsMalformed)
{
    EXPECT_THROW(assembleInstruction(""), FatalError);
    EXPECT_THROW(assembleInstruction("FROB R0 -> R1"), FatalError);
    EXPECT_THROW(assembleInstruction("VMOV R0 R1"), FatalError);
    EXPECT_THROW(assembleInstruction("VMOV -> R1"), FatalError);
}

/** Property: toString() output re-assembles to the same instruction
 *  for every kernel-legal form. */
TEST(Assembler, DisassemblyRoundTrips)
{
    Rng rng(99);
    const std::vector<OpCode> ops = {OpCode::SvMac, OpCode::VvMac,
                                     OpCode::VvMacW, OpCode::VAdd,
                                     OpCode::VMov, OpCode::VFlush};
    const std::vector<Addr> addrs = {
        as::dmem(0),  as::dmem(999),          as::spad(15),
        as::reg(0),   as::reg(15),            as::portIn(Dir::West),
        as::portIn(Dir::North),               as::portOut(Dir::South),
        as::portOut(Dir::East),               as::kZeroAddr,
    };
    for (int t = 0; t < 300; ++t) {
        Instruction i;
        i.op = ops[rng.nextBounded(ops.size())];
        i.op1 = addrs[rng.nextBounded(addrs.size())];
        i.op2 = addrs[rng.nextBounded(addrs.size())];
        i.res = addrs[rng.nextBounded(addrs.size())];
        i.route = static_cast<std::uint8_t>(rng.nextBounded(4));
        EXPECT_EQ(assembleInstruction(i.toString()), i)
            << i.toString();
    }
}

} // namespace
} // namespace canon
