/**
 * @file
 * Workload-layer tests: the tiled Canon runner against the gold
 * reference, proxy-scaling cross-validation, the cross-architecture
 * suite's qualitative orderings (the paper's headline claims), and
 * PolyBench/model descriptor sanity.
 */

#include <gtest/gtest.h>

#include "obs/collector.hh"
#include "sparse/reference.hh"
#include "workloads/polybench.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace
{

TEST(CanonRunner, ExactTiledSpmmMatchesReference)
{
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.spadEntries = 8;
    CanonRunner runner(cfg);

    Rng rng(5);
    // N = 40 spans 2.5 native tiles; K = 20 needs padding to 20->20
    // (rows=4 divides 20).
    const auto a = randomSparse(30, 20, 0.6, rng);
    const auto b = randomDense(20, 40, rng);
    const auto csr = CsrMatrix::fromDense(a);

    WordMatrix c;
    runner.spmmExact(csr, b, &c);
    EXPECT_EQ(c, reference::spmm(csr, b));
}

TEST(CanonRunner, ProxyScalingConsistent)
{
    // A proxy-scaled profile should approximate the exact run of the
    // full shape (same sparsity, same fabric).
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    CanonRunner runner(cfg);

    const std::int64_t m = 256, k = 64, n = 64;
    const double sparsity = 0.7;

    CanonRunOptions exact_opt;
    exact_opt.maxProxyRows = 1 << 20; // no scaling
    exact_opt.maxProxyPasses = 1 << 20;
    const auto exact =
        runner.spmmShape(m, k, n, sparsity, 9, exact_opt);

    CanonRunOptions proxy_opt;
    proxy_opt.maxProxyRows = 64; // 4x M scaling
    proxy_opt.maxProxyPasses = 2;
    const auto proxy =
        runner.spmmShape(m, k, n, sparsity, 9, proxy_opt);

    const double ratio = static_cast<double>(proxy.cycles) /
                         static_cast<double>(exact.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.15)
        << "proxy " << proxy.cycles << " vs exact " << exact.cycles;
}

TEST(CanonRunner, ProxyRowCapDerivesFromFabricHeight)
{
    // Default cap: at least kMinProxyRows, at least
    // kMinProxySlicesPerRow slices per orchestrator row, rounded up
    // to a multiple of the height. 8x8 through 32x32 keep the
    // historical 512; taller fabrics scale instead of thinning each
    // orchestrator's sample.
    const CanonRunOptions opt;
    const auto cap = [&](int rows) {
        CanonConfig cfg;
        cfg.rows = rows;
        return opt.effectiveProxyRows(cfg);
    };
    EXPECT_EQ(cap(8), 512);
    EXPECT_EQ(cap(16), 512);
    EXPECT_EQ(cap(32), 512);
    EXPECT_EQ(cap(24), 528);  // rounded up to a multiple of 24
    EXPECT_EQ(cap(48), 768);  // 16 slices/row beats the 512 floor
    EXPECT_EQ(cap(64), 1024);

    CanonRunOptions explicit_opt;
    explicit_opt.maxProxyRows = 64; // explicit settings win
    CanonConfig cfg;
    cfg.rows = 64;
    EXPECT_EQ(explicit_opt.effectiveProxyRows(cfg), 64);
}

TEST(CanonRunner, AdaptiveFlushLiftsProxyRowFloor)
{
    // Under the adaptive flush policy the per-row cost curve is flat
    // through >= 4096 resident rows (ResidentRowCostFlat below), so
    // the derived cap starts from the 4x larger
    // kMinProxyRowsAdaptive floor. Eager keeps the historical 512
    // pins of ProxyRowCapDerivesFromFabricHeight untouched.
    const CanonRunOptions opt;
    const auto cap = [&](int rows) {
        CanonConfig cfg;
        cfg.rows = rows;
        cfg.spadFlush = SpadFlushPolicy::Adaptive;
        return opt.effectiveProxyRows(cfg);
    };
    EXPECT_EQ(cap(8), 2048);
    EXPECT_EQ(cap(16), 2048);
    EXPECT_EQ(cap(32), 2048);
    EXPECT_EQ(cap(24), 2064); // rounded up to a multiple of 24
    EXPECT_EQ(cap(64), 2048);

    CanonRunOptions explicit_opt;
    explicit_opt.maxProxyRows = 64; // explicit settings still win
    CanonConfig cfg;
    cfg.rows = 16;
    cfg.spadFlush = SpadFlushPolicy::Adaptive;
    EXPECT_EQ(explicit_opt.effectiveProxyRows(cfg), 64);
}

/** Raw (unscaled) proxy cycles of one 16x16 SpMM run at @p rows
 *  simulated resident rows, observed through an installed Collector
 *  the way examples/resident_rows.cc measures the curve. */
static std::uint64_t
rawProxyCycles(int rows_cap, SpadFlushPolicy policy)
{
    CanonConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.spadFlush = policy;

    obs::ObsOptions oo;
    oo.statsJsonOut = "(memory)"; // flat-stats capture, no file
    obs::Collector col(oo);
    std::shared_ptr<const obs::ScenarioObs> seen;
    {
        obs::ScopedCollector scope(col);
        CanonRunner runner(cfg);
        CanonRunOptions opt;
        opt.maxProxyRows = rows_cap;
        (void)runner.spmmShape(1 << 20, 128, 16 * kSimdWidth, 0.7, 42,
                               opt);
        seen = col.finish();
    }
    return seen->runs.front().cycles;
}

TEST(CanonRunner, ResidentRowCostFlatUnderAdaptiveFlush)
{
    // The tentpole acceptance pin: with adaptive flushing, per-row
    // cycles at 2048 resident rows stay within 15% of the 512-row
    // cost (measured: the 2048-row cost is actually *lower*). Under
    // eager flushing the same ratio was 1.61x -- the knee that
    // historically capped the proxy at 512 rows.
    const auto c512 = rawProxyCycles(512, SpadFlushPolicy::Adaptive);
    const auto c2048 = rawProxyCycles(2048, SpadFlushPolicy::Adaptive);
    const double per_row_512 = static_cast<double>(c512) / 512.0;
    const double per_row_2048 = static_cast<double>(c2048) / 2048.0;
    EXPECT_LE(per_row_2048, 1.15 * per_row_512)
        << "cycles/row " << per_row_512 << " @512 vs " << per_row_2048
        << " @2048";
}

TEST(CanonRunner, AdaptiveProxyConsistentAtLiftedCap)
{
    // Proxy-vs-exact cross-validation in the adaptive regime: the
    // derived cap is now 2048, so validate the M-linear
    // extrapolation against an exact run from well above the lifted
    // cap (8192 rows, 4x scaling).
    CanonConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.spadFlush = SpadFlushPolicy::Adaptive;
    CanonRunner runner(cfg);

    const std::int64_t m = 8192, k = 512, n = 64;

    CanonRunOptions exact_opt;
    exact_opt.maxProxyRows = 1 << 20; // no scaling
    exact_opt.maxProxyPasses = 1 << 20;
    const auto exact = runner.spmmShape(m, k, n, 0.7, 9, exact_opt);

    const auto proxy = runner.spmmShape(m, k, n, 0.7, 9, {});

    const double ratio = static_cast<double>(proxy.cycles) /
                         static_cast<double>(exact.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.15)
        << "proxy " << proxy.cycles << " vs exact " << exact.cycles;
}

TEST(CanonRunner, PolicyAndBankingPreserveResults)
{
    // --tag-banks and --spad-flush are scheduling knobs: psum
    // accumulation is exact integer arithmetic, so whatever order
    // merges happen in, every configuration must produce the
    // reference product bit-for-bit.
    Rng rng(5);
    const auto a = randomSparse(64, 32, 0.6, rng);
    const auto b = randomDense(32, 32, rng);
    const auto csr = CsrMatrix::fromDense(a);
    const auto want = reference::spmm(csr, b);

    const struct
    {
        int banks;
        SpadFlushPolicy flush;
    } cases[] = {
        {1, SpadFlushPolicy::Eager},
        {8, SpadFlushPolicy::Eager},
        {1, SpadFlushPolicy::Adaptive},
        {8, SpadFlushPolicy::Adaptive},
    };
    for (const auto &c : cases) {
        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8;
        cfg.tagBanks = c.banks;
        cfg.spadFlush = c.flush;
        WordMatrix got;
        CanonRunner(cfg).spmmExact(csr, b, &got);
        EXPECT_EQ(got, want)
            << c.banks << " banks, " << spadFlushName(c.flush);
    }
}

TEST(CanonRunner, BankingIsTimingInvariant)
{
    // Banking only re-shards the associative search: cycles are
    // untouched while tag compares drop and probe counts stay put.
    const auto run = [](int banks) {
        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8;
        cfg.tagBanks = banks;
        return CanonRunner(cfg).spmmShape(2048, 256, 32, 0.7, 21);
    };
    const auto flat = run(1), banked = run(16);
    EXPECT_EQ(flat.cycles, banked.cycles);
    EXPECT_EQ(flat.get("bufferSearches"),
              banked.get("bufferSearches"));
    EXPECT_LT(banked.get("tagCompares"),
              flat.get("tagCompares") / 4);
}

TEST(CanonRunner, ProxyScalingConsistentOnLargerFabrics)
{
    // Figure 15's scalability axis: the proxy must stay faithful on
    // 16x16 and 32x32, not just the paper's 8x8. Validation sits in
    // the proxy's design regime -- K in the thousands (hidden
    // dimensions), where per-row-slice populations are authentic and
    // the per-row cycle cost is in its flat region (it rises
    // superlinearly beyond ~1k resident rows as psum-tag pressure
    // grows, which is exactly why the default cap stays at 512).
    const struct
    {
        int size;
        std::int64_t m, k, n;
        int proxy_rows;
    } cases[] = {
        {16, 512, 1024, 64, 128},  // 4x M scaling
        {32, 512, 1024, 128, 256}, // 2x M scaling
    };
    for (const auto &c : cases) {
        CanonConfig cfg;
        cfg.rows = c.size;
        cfg.cols = c.size;
        CanonRunner runner(cfg);

        CanonRunOptions exact_opt;
        exact_opt.maxProxyRows = 1 << 20; // no scaling
        exact_opt.maxProxyPasses = 1 << 20;
        const auto exact =
            runner.spmmShape(c.m, c.k, c.n, 0.7, 9, exact_opt);

        CanonRunOptions proxy_opt;
        proxy_opt.maxProxyRows = c.proxy_rows;
        const auto proxy =
            runner.spmmShape(c.m, c.k, c.n, 0.7, 9, proxy_opt);

        const double ratio = static_cast<double>(proxy.cycles) /
                             static_cast<double>(exact.cycles);
        EXPECT_NEAR(ratio, 1.0, 0.15)
            << c.size << "x" << c.size << ": proxy " << proxy.cycles
            << " vs exact " << exact.cycles;
    }
}

TEST(CanonRunner, LargerFabricsPinnedScalingTrend)
{
    // Regression pin for the 16x16/32x32 proxy-scaling path: one
    // fixed SpMM shape across fabric sizes. Quadrupling the PEs
    // roughly halves the cycles (row-parallel work splits across
    // more orchestrators while per-pass drain overheads grow), and
    // the proxy-scaled MAC totals are invariant -- the same
    // mathematical work, however it is spread.
    const auto run = [](int size) {
        CanonConfig cfg;
        cfg.rows = size;
        cfg.cols = size;
        return CanonRunner(cfg).spmmShape(1024, 256, 128, 0.7, 21);
    };
    const auto p8 = run(8), p16 = run(16), p32 = run(32);

    EXPECT_EQ(p8.get("laneMacs"), p16.get("laneMacs"));
    EXPECT_EQ(p8.get("laneMacs"), p32.get("laneMacs"));

    EXPECT_GT(p8.cycles, p16.cycles);
    EXPECT_GT(p16.cycles, p32.cycles);
    const double s16 = static_cast<double>(p8.cycles) /
                       static_cast<double>(p16.cycles);
    const double s32 = static_cast<double>(p16.cycles) /
                       static_cast<double>(p32.cycles);
    // Measured 2.18 and 1.83 at this shape; the band flags any
    // change that breaks the scaling story, not noise.
    EXPECT_NEAR(s16, 2.2, 0.5) << p8.cycles << " -> " << p16.cycles;
    EXPECT_NEAR(s32, 1.8, 0.5) << p16.cycles << " -> " << p32.cycles;
}

TEST(ArchSuite, GemmCanonMatchesSystolic)
{
    // Section 6.2: "Canon emulates the systolic dataflow of
    // conventional systolic arrays for the GEMM kernel ... to match
    // their performance" -- the cycle gap is within a few percent
    // either way (the efficiency gap shows up in perf/W instead).
    ArchSuite suite;
    const auto r = suite.gemm(256, 256, 128, 11);
    const double canon_c = static_cast<double>(r.at("canon").cycles);
    const double sys_c = static_cast<double>(r.at("systolic").cycles);
    EXPECT_NEAR(sys_c / canon_c, 1.0, 0.10);
}

TEST(ArchSuite, SystolicFragileUnderHighSparsity)
{
    // "their throughput can drop to less than 0.3x that of Canon".
    ArchSuite suite;
    const auto r = suite.spmm(256, 256, 128, 0.9, 12);
    const double canon_c = static_cast<double>(r.at("canon").cycles);
    const double sys_c = static_cast<double>(r.at("systolic").cycles);
    EXPECT_GT(sys_c, canon_c / 0.35)
        << "systolic should be <0.35x Canon at 90% sparsity";
}

TEST(ArchSuite, ZedWithinBandOnUnstructured)
{
    // ZeD and Canon trade within ~10% on unstructured SpMM.
    ArchSuite suite;
    for (double sp : {0.2, 0.5, 0.8}) {
        const auto r = suite.spmm(512, 512, 256, sp, 13);
        const double canon_c =
            static_cast<double>(r.at("canon").cycles);
        const double zed_c = static_cast<double>(r.at("zed").cycles);
        EXPECT_GT(zed_c / canon_c, 0.80) << "sparsity " << sp;
        EXPECT_LT(zed_c / canon_c, 1.35) << "sparsity " << sp;
    }
}

TEST(ArchSuite, CanonMatchesTwoFourSystolicOn24)
{
    // Section 6.2: Canon leverages 2:4 structure despite being
    // agnostic to it, comparable to the specialized array.
    ArchSuite suite;
    const auto r = suite.spmmNm(512, 512, 256, 2, 4, 14);
    const double canon_c = static_cast<double>(r.at("canon").cycles);
    const double s24_c =
        static_cast<double>(r.at("systolic24").cycles);
    EXPECT_NEAR(canon_c / s24_c, 1.0, 0.30);
}

TEST(ArchSuite, TwoFourSystolicDegradesOn28)
{
    // 2:8 only gets the 2:4-format speedup on the modified systolic
    // array, while Canon's cycles keep tracking nnz.
    ArchSuite suite;
    const auto r24 = suite.spmmNm(512, 512, 256, 2, 4, 15);
    const auto r28 = suite.spmmNm(512, 512, 256, 2, 8, 15);
    const double canon_gain =
        static_cast<double>(r24.at("canon").cycles) /
        static_cast<double>(r28.at("canon").cycles);
    const double s24_gain =
        static_cast<double>(r24.at("systolic24").cycles) /
        static_cast<double>(r28.at("systolic24").cycles);
    EXPECT_GT(canon_gain, 1.5); // Canon: ~2x fewer non-zeros -> ~2x
    EXPECT_NEAR(s24_gain, 1.0, 0.05); // systolic24: no extra gain
}

TEST(ArchSuite, CanonWinsWindowAttention)
{
    // "Canon outperforms all baselines on window attention."
    ArchSuite suite;
    const auto r = suite.sddmmWindow(2048, 64, 256, 16);
    const double canon_c = static_cast<double>(r.at("canon").cycles);
    for (const auto &arch :
         {"systolic", "systolic24", "zed", "cgra"}) {
        EXPECT_GT(static_cast<double>(r.at(arch).cycles), canon_c)
            << arch;
    }
}

TEST(Polybench, SuiteShape)
{
    const auto suite = polybenchSuite();
    EXPECT_GE(suite.size(), 18u);
    int blas = 0, kern = 0, sten = 0;
    for (const auto &k : suite) {
        EXPECT_GT(k.body.size(), 0);
        EXPECT_GT(k.iters, 0);
        EXPECT_GE(k.recMii, 1);
        EXPECT_GE(k.dlp, 1);
        EXPECT_GE(k.vecFraction, 0.0);
        EXPECT_LE(k.vecFraction, 1.0);
        switch (k.group) {
          case PolyGroup::Blas: ++blas; break;
          case PolyGroup::Kernel: ++kern; break;
          case PolyGroup::Stencil: ++sten; break;
        }
    }
    EXPECT_GE(blas, 5);
    EXPECT_GE(kern, 4);
    EXPECT_GE(sten, 4);
}

TEST(Polybench, CgraWinsLowDlpSolvers)
{
    // Section 6.2: CGRAs outperform Canon where data parallelism is
    // low (the BLAS solvers); Canon wins the parallel kernels.
    CgraModel cgra;
    const CanonConfig cfg = CanonConfig::paper();
    int cgra_wins_low_dlp = 0, canon_wins_high_dlp = 0;
    for (const auto &k : polybenchSuite()) {
        const auto c = canonPolybench(k, cfg);
        const auto g = cgraPolybench(k, cgra);
        if (k.dlp <= 8 && g.cycles < c.cycles)
            ++cgra_wins_low_dlp;
        if (k.dlp >= 1024 && c.cycles < g.cycles)
            ++canon_wins_high_dlp;
    }
    EXPECT_GE(cgra_wins_low_dlp, 2);
    EXPECT_GE(canon_wins_high_dlp, 4);
}

TEST(Models, SpecsPopulated)
{
    for (const auto &m :
         {resnet50Conv(), llama8bMlp(0.7), llama8bAttn(0.7),
          mistral7bMlp(0.0), mistral7bAttn(), longformerAttn()}) {
        EXPECT_FALSE(m.layers.empty()) << m.name;
        for (const auto &l : m.layers) {
            EXPECT_GT(l.m, 0);
            EXPECT_GT(l.k, 0);
            EXPECT_GT(l.n, 0);
        }
    }
}

} // namespace
} // namespace canon
