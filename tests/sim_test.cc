/**
 * @file
 * Simulation-kernel tests: two-phase latch/channel semantics, the
 * watchdog, the staggered instruction pipeline (the 3-cycle offset of
 * Figure 2/3), and message-channel timing alignment.
 */

#include <gtest/gtest.h>

#include "noc/inst_pipeline.hh"
#include "orch/msg_channel.hh"
#include "sim/latch.hh"
#include "sim/schedule.hh"
#include "sim/simulator.hh"

namespace canon
{
namespace
{

TEST(Latch, StagedVisibility)
{
    Latch<int> l(1);
    EXPECT_EQ(l.get(), 1);
    l.set(2);
    EXPECT_EQ(l.get(), 1); // not yet visible
    l.commit();
    EXPECT_EQ(l.get(), 2);
    l.commit(); // idempotent without a pending set
    EXPECT_EQ(l.get(), 2);
}

TEST(ChannelFifo, PushPopOrdering)
{
    ChannelFifo<int> ch(4, "t");
    ch.push(1);
    ch.push(2);
    EXPECT_TRUE(ch.empty()); // staged, not visible
    ch.commit();
    EXPECT_EQ(ch.size(), 2u);
    EXPECT_EQ(ch.front(), 1);
    ch.pop();
    EXPECT_EQ(ch.front(), 1); // pop applies at commit
    ch.commit();
    EXPECT_EQ(ch.front(), 2);
}

TEST(ChannelFifo, OverflowPanics)
{
    ChannelFifo<int> ch(2, "t");
    ch.push(1);
    ch.push(2);
    EXPECT_FALSE(ch.canPush());
    EXPECT_THROW(ch.push(3), PanicError);
}

TEST(ChannelFifo, PopEmptyPanics)
{
    ChannelFifo<int> ch(2, "t");
    EXPECT_THROW(ch.pop(), PanicError);
    EXPECT_THROW(ch.front(), PanicError);
}

TEST(ChannelFifo, DoublePopPanics)
{
    ChannelFifo<int> ch(2, "t");
    ch.push(1);
    ch.commit();
    ch.pop();
    EXPECT_THROW(ch.pop(), PanicError);
}

TEST(ChannelFifo, StagedPushCountsAgainstCapacity)
{
    ChannelFifo<int> ch(2, "t");
    ch.push(1);
    ch.commit();
    ch.pop();     // frees space only next cycle
    ch.push(2);   // 1 resident + 1 staged = at capacity
    EXPECT_FALSE(ch.canPush());
}

namespace
{

class TickCounter : public Clocked
{
  public:
    int computes = 0;
    int commits = 0;
    void tickCompute() override { ++computes; }
    void tickCommit() override { ++commits; }
};

} // namespace

TEST(Simulator, PhasesAndCycleCount)
{
    Simulator sim;
    TickCounter a, b;
    sim.add(&a);
    sim.add(&b);
    sim.runFor(5);
    EXPECT_EQ(sim.now(), 5u);
    EXPECT_EQ(a.computes, 5);
    EXPECT_EQ(b.commits, 5);
}

TEST(Simulator, WatchdogPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.run([] { return false; }, 100), PanicError);
}

TEST(Simulator, RunUntilPredicate)
{
    Simulator sim;
    const auto n = sim.run([&] { return sim.now() >= 7; });
    EXPECT_EQ(n, 7u);
}

TEST(TickSchedule, TypedComponentsShareOnePartition)
{
    TickSchedule sched;
    MsgChannel a("a"), b("b");
    sched.add(&a);
    sched.add(&b);
    EXPECT_EQ(sched.partitionCount(), 1u);
    TickCounter v;
    sched.addVirtual(&v);
    EXPECT_EQ(sched.partitionCount(), 2u);
}

TEST(TickSchedule, DeadPhaseElision)
{
    // FifoCommitList declares kHasTickCompute = false: ticking the
    // schedule's compute pass must leave its channels untouched, and
    // the commit pass must publish them.
    TickSchedule sched;
    ChannelFifo<int> ch(4, "t");
    FifoCommitList<int> commits;
    commits.add(&ch);
    sched.add(&commits);
    ch.push(7);
    sched.tickCompute();
    EXPECT_TRUE(ch.empty()); // compute pass skipped the dead phase
    sched.tickCommit();
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 7);
}

/**
 * An external/test component on the residual virtual partition,
 * observing a typed component (MsgChannel) from within the phases.
 * Delivery latency must be exactly what a monolithic virtual loop
 * produced: the virtual partition ticks in-phase with the typed ones.
 */
class LatencyProbe : public Clocked
{
  public:
    explicit LatencyProbe(MsgChannel *ch) : ch_(ch) {}

    int observedLatency = -1;

    void
    tickCompute() override
    {
        if (cycle_ == 0)
            ch_->push({kMsgPsum, 9});
        if (observedLatency < 0 && !ch_->empty())
            observedLatency = cycle_;
    }

    void tickCommit() override { ++cycle_; }

  private:
    MsgChannel *ch_;
    int cycle_ = 0;
};

TEST(Simulator, VirtualResidualTicksInPhaseWithTypedPartitions)
{
    Simulator sim;
    MsgChannel ch("msg");
    LatencyProbe probe(&ch);
    sim.addTyped(&ch);  // typed partition
    sim.add(&probe);    // residual virtual partition
    sim.runFor(10);
    // Pushed during cycle 0's compute; consumable stagger + 1 cycles
    // later, as MsgChannel guarantees for orchestrators.
    EXPECT_EQ(probe.observedLatency, kIssueStagger + 1);
}

TEST(Simulator, TypedAndVirtualMixCountsCycles)
{
    Simulator sim;
    TickCounter v;
    MsgChannel m("m");
    InstPipeline p(2);
    sim.addTyped(&m);
    sim.addTyped(&p);
    sim.add(&v);
    sim.runFor(4);
    EXPECT_EQ(v.computes, 4);
    EXPECT_EQ(v.commits, 4);
    EXPECT_EQ(sim.now(), 4u);
}

TEST(InstPipeline, StaggerIsThreeCyclesPerColumn)
{
    // "issued to the first PE in cycle 1, then traverses a 3-cycle
    // pipeline before reaching the second PE in cycle 4."
    InstPipeline pipe(4);
    Instruction marker;
    marker.op = OpCode::VMov;
    marker.op1 = addrspace::dmem(9);

    pipe.issue(marker);
    pipe.tickCommit();
    // Cycle 1: column 0 sees it.
    EXPECT_EQ(pipe.tap(0), marker);
    EXPECT_TRUE(pipe.tap(1).isNop());

    for (int c = 1; c < 4; ++c) {
        for (int i = 0; i < kIssueStagger; ++i)
            pipe.tickCommit();
        EXPECT_EQ(pipe.tap(c), marker) << "column " << c;
        if (c + 1 < 4)
            EXPECT_TRUE(pipe.tap(c + 1).isNop());
    }
}

TEST(InstPipeline, DrainsToNops)
{
    InstPipeline pipe(3);
    Instruction i;
    i.op = OpCode::VAdd;
    pipe.issue(i);
    pipe.tickCommit();
    EXPECT_FALSE(pipe.drained());
    for (int t = 0; t < kIssueStagger * 2 + 1; ++t)
        pipe.tickCommit();
    EXPECT_TRUE(pipe.drained());
}

TEST(InstPipeline, FreezeHoldsTaps)
{
    InstPipeline pipe(2);
    Instruction i;
    i.op = OpCode::SvMac;
    pipe.issue(i);
    pipe.tickCommit();
    pipe.freeze(true);
    for (int t = 0; t < 10; ++t)
        pipe.tickCommit();
    EXPECT_EQ(pipe.tap(0), i); // held in place
}

TEST(InstPipeline, DoubleIssuePanics)
{
    InstPipeline pipe(2);
    pipe.issue(nopInst());
    EXPECT_THROW(pipe.issue(nopInst()), PanicError);
}

TEST(MsgChannel, FixedDeliveryLatency)
{
    // A message pushed at cycle t is consumable at t + stagger + 1:
    // aligned with the flushed vector reaching the neighbour's north
    // port.
    MsgChannel ch;
    ch.push({kMsgPsum, 42});
    int latency = 0;
    while (ch.empty()) {
        ch.tickCommit();
        ++latency;
        ASSERT_LE(latency, 10);
    }
    EXPECT_EQ(latency, kIssueStagger + 1);
    EXPECT_EQ(ch.front().value, 42);
}

TEST(MsgChannel, WindowLimitsOutstanding)
{
    MsgChannel ch;
    for (std::size_t i = 0; i < kMsgWindow; ++i) {
        ASSERT_TRUE(ch.canPush()) << i;
        ch.push({kMsgPsum, static_cast<std::uint16_t>(i)});
        ch.tickCommit();
    }
    EXPECT_FALSE(ch.canPush());
    // Consuming reopens the window.
    while (ch.empty())
        ch.tickCommit();
    ch.pop();
    ch.tickCommit();
    EXPECT_TRUE(ch.canPush());
}

TEST(MsgChannel, OrderPreserved)
{
    MsgChannel ch;
    ch.push({kMsgPsum, 1});
    ch.tickCommit();
    ch.push({kMsgPsum, 2});
    for (int i = 0; i < 8; ++i)
        ch.tickCommit();
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front().value, 1);
    ch.pop();
    ch.tickCommit();
    EXPECT_EQ(ch.front().value, 2);
}

} // namespace
} // namespace canon
