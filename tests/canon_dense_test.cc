/**
 * @file
 * Dense GEMM and N:M structured-sparse SpMM on the Canon fabric: the
 * register-ring cadence program (no scratchpad involvement), including
 * the systolic-style merge behaviour and the paper's claim that the
 * cadence path executes in nnz-proportional time.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/dense_cadence.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

CanonConfig
smallConfig(int rows = 4, int cols = 4, int spad = 4)
{
    CanonConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.spadEntries = spad;
    return cfg;
}

TEST(CanonGemm, TinyExact)
{
    const auto cfg = smallConfig();
    Rng rng(1);
    const auto a = randomDense(8, 16, rng);
    const auto b = randomDense(16, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::gemm(a, b));
}

TEST(CanonGemm, TallMatrix)
{
    const auto cfg = smallConfig();
    Rng rng(2);
    const auto a = randomDense(64, 16, rng);
    const auto b = randomDense(16, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::gemm(a, b));
}

TEST(CanonGemm, PaperConfig)
{
    const auto cfg = CanonConfig::paper();
    Rng rng(3);
    const auto a = randomDense(48, 64, rng);
    const auto b = randomDense(64, 32, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::gemm(a, b));
}

TEST(CanonGemm, NoScratchpadTraffic)
{
    // Figure 11: GEMM power shows no scratchpad component -- the
    // cadence program never touches it.
    const auto cfg = smallConfig();
    Rng rng(4);
    const auto a = randomDense(16, 16, rng);
    const auto b = randomDense(16, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.stats().sumCounter("spadReads"), 0u);
    EXPECT_EQ(fabric.stats().sumCounter("spadWrites"), 0u);
}

TEST(CanonGemm, HighUtilization)
{
    // Dense streaming should approach H/(H+2) lane utilization.
    const auto cfg = smallConfig();
    Rng rng(5);
    const auto a = randomDense(64, 16, rng);
    const auto b = randomDense(16, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    EXPECT_GT(fabric.utilization(), 0.5);
}

struct NmParam
{
    int n;
    int m;
    int rows_a;
    int k;
    std::uint64_t seed;
};

class NmSweep : public ::testing::TestWithParam<NmParam>
{
};

TEST_P(NmSweep, MatchesReference)
{
    const auto p = GetParam();
    const auto cfg = smallConfig();
    Rng rng(p.seed);
    const auto a = nmStructured(p.rows_a, p.k, p.n, p.m, rng);
    const auto b = randomDense(p.k, 16, rng);

    CanonFabric fabric(cfg);
    fabric.load(mapNmSpmm(a, b, p.n, p.m, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(),
              reference::spmm(CsrMatrix::fromDense(a), b));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, NmSweep,
    ::testing::Values(NmParam{2, 4, 16, 16, 40},
                      NmParam{2, 8, 16, 32, 41},
                      NmParam{1, 4, 24, 32, 42},
                      NmParam{4, 8, 16, 32, 43},
                      NmParam{1, 8, 32, 32, 44}));

TEST(CanonNm, TwoFourTwiceAsFastAsDense)
{
    // Section 6.2: Canon exploits the 2:4 structure, halving cycles
    // versus the same shapes dense.
    const auto cfg = smallConfig();
    Rng rng(6);
    const int m_rows = 48, k = 64;
    const auto dense = randomDense(m_rows, k, rng);
    const auto sparse24 = nmStructured(m_rows, k, 2, 4, rng);
    const auto b = randomDense(k, 16, rng);

    CanonFabric dense_fab(cfg);
    dense_fab.load(mapGemm(dense, b, cfg));
    const auto dense_cycles = dense_fab.run();

    CanonFabric nm_fab(cfg);
    nm_fab.load(mapNmSpmm(sparse24, b, 2, 4, cfg));
    const auto nm_cycles = nm_fab.run();

    EXPECT_LT(nm_cycles, dense_cycles * 0.62)
        << "2:4 should run close to half the dense cycles";
    EXPECT_GT(nm_cycles, dense_cycles * 0.38);
}

} // namespace
} // namespace canon
