/**
 * @file
 * Orchestrator-layer tests: LUT word packing and bitstream
 * round-trips (the 6 KB SRAM image), TagFifo / buffer-management
 * invariants, microcode rule compilation and priority, and the
 * Appendix C decision cases observed through a live fabric.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "orch/lut.hh"
#include "orch/tag_fifo.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

OutputFields
randomFields(Rng &rng)
{
    OutputFields f;
    f.nextState = static_cast<std::uint8_t>(rng.nextBounded(8));
    f.peOp = static_cast<OpCode>(rng.nextBounded(8));
    f.op1Mode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.op2Mode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.resMode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.routeMode = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.msgMode = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.bufferOp = static_cast<BufferOp>(rng.nextBounded(4));
    f.metaUpd0 = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.metaUpd1 = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.consumeInput = rng.nextBool(0.5);
    f.consumeMsg = rng.nextBool(0.5);
    f.westFeed = static_cast<WestFeed>(rng.nextBounded(3));
    f.emitOutRec = rng.nextBool(0.5);
    f.stallable = rng.nextBool(0.5);
    return f;
}

TEST(Lut, PackUnpackRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto f = randomFields(rng);
        EXPECT_EQ(unpackOutput(packOutput(f)), f);
    }
}

TEST(Lut, PackFitsIn48Bits)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const auto w = packOutput(randomFields(rng));
        EXPECT_EQ(w >> kLutWordBits, 0u);
    }
}

TEST(Lut, BitstreamIs6KB)
{
    EXPECT_EQ(FsmLut::bitstreamBytes(), 6u * 1024u);
}

TEST(Lut, BitstreamRoundTrip)
{
    Rng rng(3);
    FsmLut lut;
    for (int i = 0; i < kLutEntries; ++i)
        lut.set(static_cast<std::uint16_t>(i), randomFields(rng));

    const auto bits = lut.toBitstream();
    FsmLut restored;
    restored.loadBitstream(bits);
    for (int i = 0; i < kLutEntries; ++i)
        EXPECT_EQ(restored.lookup(static_cast<std::uint16_t>(i)),
                  lut.lookup(static_cast<std::uint16_t>(i)));
}

TEST(Lut, BadBitstreamRejected)
{
    FsmLut lut;
    EXPECT_THROW(lut.loadBitstream({1, 2, 3}), PanicError);
}

TEST(Lut, IndexComposition)
{
    EXPECT_EQ(lutIndex(0, 0, 0), 0);
    EXPECT_EQ(lutIndex(1, 0, 0), 1 << 7);
    EXPECT_EQ(lutIndex(0, 1, 0), 1 << 4);
    EXPECT_EQ(lutIndex(0, 0, 1), 1);
    EXPECT_EQ(lutIndex(7, 7, 15), kLutEntries - 1);
    EXPECT_THROW(lutIndex(8, 0, 0), PanicError);
}

TEST(TagFifo, CircularSlotAssignment)
{
    StatGroup stats("t");
    TagFifo f(4, stats);
    EXPECT_EQ(f.residentCap(), 3);
    EXPECT_EQ(f.tailSlot(), 0);

    f.push(10);
    EXPECT_EQ(f.tailSlot(), 1);
    f.push(11);
    f.push(12);
    EXPECT_TRUE(f.atResidentCap());
    EXPECT_EQ(f.headSlot(), 0);
    EXPECT_EQ(f.headTag(), 10);

    f.pop();
    EXPECT_EQ(f.headSlot(), 1);
    EXPECT_EQ(f.headTag(), 11);
    // Freed slot 0 becomes the new accumulation slot after wrap.
    EXPECT_EQ(f.tailSlot(), 3);
    f.push(13);
    EXPECT_EQ(f.tailSlot(), 0);
}

TEST(TagFifo, SearchFindsPhysicalSlot)
{
    StatGroup stats("t");
    TagFifo f(4, stats);
    f.push(5);
    f.push(9);
    f.pop(); // head now 9 at slot 1
    f.push(7);
    EXPECT_FALSE(f.search(5).has_value());
    ASSERT_TRUE(f.search(9).has_value());
    EXPECT_EQ(*f.search(9), 1);
    ASSERT_TRUE(f.search(7).has_value());
    EXPECT_EQ(*f.search(7), 2);
}

TEST(TagFifo, DepthOneDegeneratesToSingleRegister)
{
    StatGroup stats("t");
    TagFifo f(1, stats);
    EXPECT_EQ(f.residentCap(), 0);
    EXPECT_TRUE(f.atResidentCap());
    // Push-then-pop in one row-end cycle: the just-pushed entry is
    // the head being flushed.
    f.push(3);
    EXPECT_EQ(f.headSlot(), 0);
    EXPECT_EQ(f.headTag(), 3);
    f.pop();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.tailSlot(), 0);
}

TEST(TagFifo, OverCapacityPanics)
{
    StatGroup stats("t");
    TagFifo f(2, stats);
    f.push(1);
    f.push(2);
    EXPECT_THROW(f.push(3), PanicError);
    EXPECT_THROW(TagFifo(0, stats), PanicError);
}

TEST(Program, RulePriorityIsRegistrationOrder)
{
    OrchProgram p("prio");
    p.setPredicates(0, {Predicate::True, Predicate::False,
                        Predicate::False, Predicate::False});
    p.rule(0).when(Predicate::True).next(3); // first: wins
    p.rule(0).next(5);                       // unreachable for cond=1
    p.compile();

    EXPECT_EQ(p.lut().lookup(lutIndex(0, 0, 1)).nextState, 3);
    // Condition bit clear: first rule doesn't match, second does.
    EXPECT_EQ(p.lut().lookup(lutIndex(0, 0, 0)).nextState, 5);
}

TEST(Program, DefaultIsSelfLoopNop)
{
    OrchProgram p("empty");
    p.compile();
    const auto &f = p.lut().lookup(lutIndex(4, 2, 9));
    EXPECT_EQ(f.nextState, 4);
    EXPECT_EQ(f.peOp, OpCode::Nop);
    EXPECT_FALSE(f.consumeInput);
    EXPECT_FALSE(f.consumeMsg);
}

TEST(Program, MenuLimitsEnforced)
{
    OrchProgram p("full");
    for (int i = 0; i < kNumAddrModes - 1; ++i)
        p.addAddrMode(AddrMode::fixed(addrspace::dmem(i)));
    EXPECT_THROW(p.addAddrMode(AddrMode::null()), PanicError);
}

TEST(Program, RuleNeedsSelectedPredicate)
{
    OrchProgram p("preds");
    p.setPredicates(0, {Predicate::InputIsEnd, Predicate::False,
                        Predicate::False, Predicate::False});
    EXPECT_THROW(p.rule(0).when(Predicate::BufferEmpty), PanicError);
}

TEST(Program, SpmmBitstreamLoadsAndRuns)
{
    // The compiled SpMM program survives a serialize/deserialize trip
    // and still computes correctly: the bitstream is the whole
    // control definition.
    auto prog = buildSpmmProgram();
    const auto bits = prog->lut().toBitstream();
    EXPECT_EQ(bits.size(), FsmLut::bitstreamBytes());

    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    Rng rng(5);
    const auto a = randomSparse(8, 8, 0.5, rng);
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

// ---------------------------------------------------------------------
// Appendix C decision cases, observed on a live fabric.
// ---------------------------------------------------------------------

TEST(SpmmFsm, Case1NormalMacStaysInMacState)
{
    // A single-row dense-ish A with no downstream traffic: the top
    // orchestrator should never leave MAC except at row boundaries.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    Rng rng(6);
    DenseMatrix a(1, 8);
    for (int kk = 0; kk < 8; ++kk)
        a.at(0, kk) = 1;
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    // Step a few cycles: while non-zeros stream, state stays MAC.
    for (int t = 0; t < 4; ++t) {
        fabric.step();
        EXPECT_EQ(fabric.orch(0).state(), spmm_state::kMac);
    }
}

TEST(SpmmFsm, Case2ManagedPsumAccumulates)
{
    // Two PE rows, both contributing to the same output rows: the
    // southern orchestrator must enter ACC (managed merge) at least
    // once, and the result is exact.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 8;
    Rng rng(7);
    const auto a = randomSparse(16, 8, 0.2, rng); // dense-ish
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));

    bool saw_acc = false;
    while (!fabric.done()) {
        fabric.step();
        saw_acc |= fabric.orch(1).state() == spmm_state::kAcc;
    }
    EXPECT_TRUE(saw_acc);
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

TEST(SpmmFsm, Case3ImbalanceCausesBypass)
{
    // Row 0's K-slice is heavily populated while row 1's is nearly
    // empty: row 1 finishes early, so late psums from the north find
    // no managed tag and must be bypassed (forwarded south).
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    Rng rng(8);
    DenseMatrix a(32, 8);
    for (int m = 0; m < 32; ++m) {
        for (int kk = 0; kk < 4; ++kk) // slice of PE row 0: dense
            a.at(m, kk) = static_cast<Elem>(1 + (m + kk) % 3);
        if (m == 0)
            a.at(m, 4) = 1; // slice of PE row 1: one lonely nnz
    }
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    fabric.run();

    const auto fwd =
        fabric.stats().childAt("orch1").sumCounter("fwdAhead") +
        fabric.stats().childAt("orch1").sumCounter("fwdBehind");
    EXPECT_GT(fwd, 0u) << "row 1 should have bypassed late psums";
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

} // namespace
} // namespace canon
