/**
 * @file
 * Orchestrator-layer tests: LUT word packing and bitstream
 * round-trips (the 6 KB SRAM image), TagFifo / buffer-management
 * invariants, microcode rule compilation and priority, and the
 * Appendix C decision cases observed through a live fabric.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "orch/lut.hh"
#include "orch/tag_fifo.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

OutputFields
randomFields(Rng &rng)
{
    OutputFields f;
    f.nextState = static_cast<std::uint8_t>(rng.nextBounded(8));
    f.peOp = static_cast<OpCode>(rng.nextBounded(8));
    f.op1Mode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.op2Mode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.resMode = static_cast<std::uint8_t>(rng.nextBounded(16));
    f.routeMode = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.msgMode = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.bufferOp = static_cast<BufferOp>(rng.nextBounded(4));
    f.metaUpd0 = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.metaUpd1 = static_cast<std::uint8_t>(rng.nextBounded(4));
    f.consumeInput = rng.nextBool(0.5);
    f.consumeMsg = rng.nextBool(0.5);
    f.westFeed = static_cast<WestFeed>(rng.nextBounded(3));
    f.emitOutRec = rng.nextBool(0.5);
    f.stallable = rng.nextBool(0.5);
    return f;
}

TEST(Lut, PackUnpackRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto f = randomFields(rng);
        EXPECT_EQ(unpackOutput(packOutput(f)), f);
    }
}

TEST(Lut, PackFitsIn48Bits)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const auto w = packOutput(randomFields(rng));
        EXPECT_EQ(w >> kLutWordBits, 0u);
    }
}

TEST(Lut, BitstreamIs6KB)
{
    EXPECT_EQ(FsmLut::bitstreamBytes(), 6u * 1024u);
}

TEST(Lut, BitstreamRoundTrip)
{
    Rng rng(3);
    FsmLut lut;
    for (int i = 0; i < kLutEntries; ++i)
        lut.set(static_cast<std::uint16_t>(i), randomFields(rng));

    const auto bits = lut.toBitstream();
    FsmLut restored;
    restored.loadBitstream(bits);
    for (int i = 0; i < kLutEntries; ++i)
        EXPECT_EQ(restored.lookup(static_cast<std::uint16_t>(i)),
                  lut.lookup(static_cast<std::uint16_t>(i)));
}

TEST(Lut, BadBitstreamRejected)
{
    FsmLut lut;
    EXPECT_THROW(lut.loadBitstream({1, 2, 3}), PanicError);
}

TEST(Lut, IndexComposition)
{
    EXPECT_EQ(lutIndex(0, 0, 0), 0);
    EXPECT_EQ(lutIndex(1, 0, 0), 1 << 7);
    EXPECT_EQ(lutIndex(0, 1, 0), 1 << 4);
    EXPECT_EQ(lutIndex(0, 0, 1), 1);
    EXPECT_EQ(lutIndex(7, 7, 15), kLutEntries - 1);
    EXPECT_THROW(lutIndex(8, 0, 0), PanicError);
}

TEST(TagFifo, CircularSlotAssignment)
{
    StatGroup stats("t");
    TagFifo f(4, stats);
    EXPECT_EQ(f.residentCap(), 3);
    EXPECT_EQ(f.tailSlot(), 0);

    f.push(10);
    EXPECT_EQ(f.tailSlot(), 1);
    f.push(11);
    f.push(12);
    EXPECT_TRUE(f.atResidentCap());
    EXPECT_EQ(f.headSlot(), 0);
    EXPECT_EQ(f.headTag(), 10);

    f.pop();
    EXPECT_EQ(f.headSlot(), 1);
    EXPECT_EQ(f.headTag(), 11);
    // Freed slot 0 becomes the new accumulation slot after wrap.
    EXPECT_EQ(f.tailSlot(), 3);
    f.push(13);
    EXPECT_EQ(f.tailSlot(), 0);
}

TEST(TagFifo, SearchFindsPhysicalSlot)
{
    StatGroup stats("t");
    TagFifo f(4, stats);
    f.push(5);
    f.push(9);
    f.pop(); // head now 9 at slot 1
    f.push(7);
    EXPECT_FALSE(f.search(5).has_value());
    ASSERT_TRUE(f.search(9).has_value());
    EXPECT_EQ(*f.search(9), 1);
    ASSERT_TRUE(f.search(7).has_value());
    EXPECT_EQ(*f.search(7), 2);
}

TEST(TagFifo, DepthOneDegeneratesToSingleRegister)
{
    StatGroup stats("t");
    TagFifo f(1, stats);
    EXPECT_EQ(f.residentCap(), 0);
    EXPECT_TRUE(f.atResidentCap());
    // Push-then-pop in one row-end cycle: the just-pushed entry is
    // the head being flushed.
    f.push(3);
    EXPECT_EQ(f.headSlot(), 0);
    EXPECT_EQ(f.headTag(), 3);
    f.pop();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.tailSlot(), 0);
}

TEST(TagFifo, OverCapacityPanics)
{
    StatGroup stats("t");
    TagFifo f(2, stats);
    f.push(1);
    f.push(2);
    EXPECT_THROW(f.push(3), PanicError);
    EXPECT_THROW(TagFifo(0, stats), PanicError);
    EXPECT_THROW(TagFifo(4, stats, 0), PanicError);
    EXPECT_THROW(TagFifo(4, stats, -3), PanicError);
}

TEST(TagFifo, BankedSearchMatchesLinearReference)
{
    // Differential property test: for every bank count, a randomized
    // insert/search/evict sequence must be observation-identical to
    // the 1-bank linear reference -- same hit/miss, same physical
    // slot, same head/tail bookkeeping. Tags are drawn from a small
    // range so duplicates occur and oldest-match semantics is pinned
    // (duplicates hash to the same bank, so bank order decides).
    constexpr int kCapacity = 16;
    const int bank_counts[] = {2, 3, 4, 7, 8, 16, 64};

    StatGroup ref_stats("ref");
    TagFifo ref(kCapacity, ref_stats, 1);

    std::deque<StatGroup> stats;
    std::deque<TagFifo> banked;
    for (int banks : bank_counts) {
        stats.emplace_back("b" + std::to_string(banks));
        banked.emplace_back(kCapacity, stats.back(), banks);
    }

    Rng rng(77);
    for (int step = 0; step < 4000; ++step) {
        const bool can_push = ref.size() < kCapacity;
        const bool do_push =
            can_push && (ref.empty() || rng.nextBool(0.55));
        if (do_push) {
            const auto tag =
                static_cast<std::uint16_t>(rng.nextBounded(24));
            ref.push(tag);
            for (auto &f : banked)
                f.push(tag);
        } else if (!ref.empty()) {
            ref.pop();
            for (auto &f : banked)
                f.pop();
        }

        const auto probe =
            static_cast<std::uint16_t>(rng.nextBounded(24));
        const auto want = ref.search(probe);
        for (std::size_t i = 0; i < banked.size(); ++i) {
            auto &f = banked[i];
            EXPECT_EQ(f.search(probe), want)
                << f.numBanks() << " banks, step " << step;
            EXPECT_EQ(f.size(), ref.size());
            EXPECT_EQ(f.tailSlot(), ref.tailSlot());
            if (!ref.empty()) {
                EXPECT_EQ(f.headSlot(), ref.headSlot());
                EXPECT_EQ(f.headTag(), ref.headTag());
            }
        }
    }

    // Counter consistency: one bufferSearches bump per probe
    // everywhere; per-probe compares never exceed the population
    // (checked in aggregate: total compares <= searches * cap), and
    // banking strictly reduces total compare work at this
    // duplicate-heavy occupancy.
    const auto searches = ref_stats.counter("bufferSearches").value();
    const auto ref_compares = ref_stats.counter("tagCompares").value();
    EXPECT_EQ(searches, 4000u);
    EXPECT_LE(ref_compares, searches * kCapacity);
    for (std::size_t i = 0; i < banked.size(); ++i) {
        EXPECT_EQ(stats[i].counter("bufferSearches").value(),
                  searches);
        EXPECT_LE(stats[i].counter("tagCompares").value(),
                  ref_compares)
            << banked[i].numBanks() << " banks";
    }
}

TEST(TagFifo, SearchCountersAreMonotonePerProbe)
{
    // Each counted probe bumps searches by exactly 1 and compares by
    // at most the resident population, and never decreases either.
    StatGroup stats("t");
    TagFifo f(8, stats, 4);
    const auto &searches = stats.counter("bufferSearches");
    const auto &compares = stats.counter("tagCompares");

    Rng rng(3);
    std::uint64_t prev_s = 0, prev_c = 0;
    for (int step = 0; step < 500; ++step) {
        if (f.size() < 8 && rng.nextBool(0.6))
            f.push(static_cast<std::uint16_t>(rng.nextBounded(12)));
        else if (!f.empty())
            f.pop();
        f.search(static_cast<std::uint16_t>(rng.nextBounded(12)));
        EXPECT_EQ(searches.value(), prev_s + 1);
        EXPECT_GE(compares.value(), prev_c);
        EXPECT_LE(compares.value() - prev_c,
                  static_cast<std::uint64_t>(f.size()));
        prev_s = searches.value();
        prev_c = compares.value();
    }
}

// The cost counters may only move through the explicit non-const
// probe API: a const view of the buffer (e.g. a diagnostic walk over
// a const fabric) exposes no counted search at compile time.
template <typename T>
concept ConstCountedSearch =
    requires(const T t) { t.search(std::uint16_t{0}); };
static_assert(!ConstCountedSearch<TagFifo>,
              "search() charges cost counters and must not be"
              " callable through a const buffer view");
static_assert(requires(const TagFifo t) { t.probe(std::uint16_t{0}); },
              "probe() is the uncounted const lookup");

TEST(TagFifo, ConstProbeDoesNotChargeCounters)
{
    StatGroup stats("t");
    TagFifo f(8, stats, 2);
    f.push(3);
    f.push(4);

    const TagFifo &view = f;
    ASSERT_TRUE(view.probe(4).has_value());
    EXPECT_EQ(*view.probe(4), 1);
    EXPECT_FALSE(view.probe(9).has_value());
    EXPECT_EQ(stats.counter("bufferSearches").value(), 0u);
    EXPECT_EQ(stats.counter("tagCompares").value(), 0u);

    // The counted probe agrees with the uncounted one and charges.
    EXPECT_EQ(f.search(4), view.probe(4));
    EXPECT_EQ(stats.counter("bufferSearches").value(), 1u);
    EXPECT_GT(stats.counter("tagCompares").value(), 0u);
}

TEST(TagFifo, ConstFabricWalkCannotMutateStats)
{
    // End-to-end version of the const-correctness pin: walking every
    // orchestrator buffer of a finished (const) fabric with probe()
    // leaves the fabric's stat snapshot untouched.
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.tagBanks = 2;
    CanonFabric fabric(cfg);

    Rng rng(11);
    const auto a = randomSparse(32, 16, 0.5, rng);
    const auto b = randomDense(16, 16, rng);
    const auto csr = CsrMatrix::fromDense(a);
    fabric.load(mapSpmm(csr, b, cfg));
    fabric.run();

    const CanonFabric &view = fabric;
    const auto before = view.profile("walk");
    for (int r = 0; r < cfg.rows; ++r)
        for (std::uint16_t tag = 0; tag < 64; ++tag)
            (void)view.orch(r).buffer().probe(tag);
    const auto after = view.profile("walk");
    EXPECT_EQ(after.get("bufferSearches"),
              before.get("bufferSearches"));
    EXPECT_EQ(after.get("tagCompares"), before.get("tagCompares"));
}

TEST(Program, RulePriorityIsRegistrationOrder)
{
    OrchProgram p("prio");
    p.setPredicates(0, {Predicate::True, Predicate::False,
                        Predicate::False, Predicate::False});
    p.rule(0).when(Predicate::True).next(3); // first: wins
    p.rule(0).next(5);                       // unreachable for cond=1
    p.compile();

    EXPECT_EQ(p.lut().lookup(lutIndex(0, 0, 1)).nextState, 3);
    // Condition bit clear: first rule doesn't match, second does.
    EXPECT_EQ(p.lut().lookup(lutIndex(0, 0, 0)).nextState, 5);
}

TEST(Program, DefaultIsSelfLoopNop)
{
    OrchProgram p("empty");
    p.compile();
    const auto &f = p.lut().lookup(lutIndex(4, 2, 9));
    EXPECT_EQ(f.nextState, 4);
    EXPECT_EQ(f.peOp, OpCode::Nop);
    EXPECT_FALSE(f.consumeInput);
    EXPECT_FALSE(f.consumeMsg);
}

TEST(Program, MenuLimitsEnforced)
{
    OrchProgram p("full");
    for (int i = 0; i < kNumAddrModes - 1; ++i)
        p.addAddrMode(AddrMode::fixed(addrspace::dmem(i)));
    EXPECT_THROW(p.addAddrMode(AddrMode::null()), PanicError);
}

TEST(Program, RuleNeedsSelectedPredicate)
{
    OrchProgram p("preds");
    p.setPredicates(0, {Predicate::InputIsEnd, Predicate::False,
                        Predicate::False, Predicate::False});
    EXPECT_THROW(p.rule(0).when(Predicate::BufferEmpty), PanicError);
}

TEST(Program, SpmmBitstreamLoadsAndRuns)
{
    // The compiled SpMM program survives a serialize/deserialize trip
    // and still computes correctly: the bitstream is the whole
    // control definition.
    auto prog = buildSpmmProgram();
    const auto bits = prog->lut().toBitstream();
    EXPECT_EQ(bits.size(), FsmLut::bitstreamBytes());

    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    Rng rng(5);
    const auto a = randomSparse(8, 8, 0.5, rng);
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    fabric.run();
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

// ---------------------------------------------------------------------
// Appendix C decision cases, observed on a live fabric.
// ---------------------------------------------------------------------

TEST(SpmmFsm, Case1NormalMacStaysInMacState)
{
    // A single-row dense-ish A with no downstream traffic: the top
    // orchestrator should never leave MAC except at row boundaries.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    Rng rng(6);
    DenseMatrix a(1, 8);
    for (int kk = 0; kk < 8; ++kk)
        a.at(0, kk) = 1;
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    // Step a few cycles: while non-zeros stream, state stays MAC.
    for (int t = 0; t < 4; ++t) {
        fabric.step();
        EXPECT_EQ(fabric.orch(0).state(), spmm_state::kMac);
    }
}

TEST(SpmmFsm, Case2ManagedPsumAccumulates)
{
    // Two PE rows, both contributing to the same output rows: the
    // southern orchestrator must enter ACC (managed merge) at least
    // once, and the result is exact.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 8;
    Rng rng(7);
    const auto a = randomSparse(16, 8, 0.2, rng); // dense-ish
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));

    bool saw_acc = false;
    while (!fabric.done()) {
        fabric.step();
        saw_acc |= fabric.orch(1).state() == spmm_state::kAcc;
    }
    EXPECT_TRUE(saw_acc);
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

TEST(SpmmFsm, Case3ImbalanceCausesBypass)
{
    // Row 0's K-slice is heavily populated while row 1's is nearly
    // empty: row 1 finishes early, so late psums from the north find
    // no managed tag and must be bypassed (forwarded south).
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    Rng rng(8);
    DenseMatrix a(32, 8);
    for (int m = 0; m < 32; ++m) {
        for (int kk = 0; kk < 4; ++kk) // slice of PE row 0: dense
            a.at(m, kk) = static_cast<Elem>(1 + (m + kk) % 3);
        if (m == 0)
            a.at(m, 4) = 1; // slice of PE row 1: one lonely nnz
    }
    const auto b = randomDense(8, 8, rng);
    const auto csr = CsrMatrix::fromDense(a);

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(csr, b, cfg));
    fabric.run();

    const auto fwd =
        fabric.stats().childAt("orch1").sumCounter("fwdAhead") +
        fabric.stats().childAt("orch1").sumCounter("fwdBehind");
    EXPECT_GT(fwd, 0u) << "row 1 should have bypassed late psums";
    EXPECT_EQ(fabric.result(), reference::spmm(csr, b));
}

} // namespace
} // namespace canon
