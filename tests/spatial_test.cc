/**
 * @file
 * Spatial execution mode (Appendix D / Figure 22): configure the
 * array through the instruction NoC, freeze, and run a static
 * dataflow with per-PE instructions -- the place-and-route
 * compatibility mode of classic CGRAs.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "core/spatial.hh"

namespace canon
{
namespace
{

namespace as = addrspace;

Instruction
inst(OpCode op, Addr a, Addr b, Addr r)
{
    Instruction i;
    i.op = op;
    i.op1 = a;
    i.op2 = b;
    i.res = r;
    return i;
}

TEST(Spatial, ConfigurationCostThreeCyclesPerColumn)
{
    CanonConfig cfg;
    cfg.rows = 1;
    cfg.cols = 4;
    CanonFabric fabric(cfg);
    std::vector<std::vector<Instruction>> prog(
        1, std::vector<Instruction>(4, nopInst()));
    const auto cycles = fabric.configureSpatial(prog);
    // ~3 cycles per column (Figure 22: 12 cycles for 4 columns).
    EXPECT_GE(cycles, 9u);
    EXPECT_LE(cycles, 13u);
}

TEST(Spatial, BucketBrigadeMovesDataWestToEast)
{
    // Every PE: VMov W_IN -> E_OUT. A vector pushed west must emerge
    // east, once per push, in order.
    CanonConfig cfg;
    cfg.rows = 1;
    cfg.cols = 4;
    CanonFabric fabric(cfg);
    std::vector<std::vector<Instruction>> prog(1);
    for (int c = 0; c < 4; ++c)
        prog[0].push_back(inst(OpCode::VMov, as::portIn(Dir::West),
                               as::kNullAddr,
                               as::portOut(Dir::East)));
    fabric.configureSpatial(prog);

    for (int v = 1; v <= 3; ++v)
        fabric.pushWest(0, Vec4::splat(v));

    std::vector<Vec4> out;
    for (int t = 0; t < 40 && out.size() < 3; ++t) {
        fabric.step();
        if (auto v = fabric.popEast(0))
            out.push_back(*v);
    }
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], Vec4::splat(1));
    EXPECT_EQ(out[1], Vec4::splat(2));
    EXPECT_EQ(out[2], Vec4::splat(3));
}

TEST(Spatial, PipelinedMacChainComputesDotProducts)
{
    // Column c multiplies the streamed scalar by its local dmem
    // vector and adds the psum from the west: a spatial 4-tap
    // convolution-style pipeline.
    CanonConfig cfg;
    cfg.rows = 1;
    cfg.cols = 4;
    CanonFabric fabric(cfg);
    std::vector<std::vector<Instruction>> prog(1);
    for (int c = 0; c < 4; ++c)
        prog[0].push_back(inst(OpCode::VvMacW, as::spad(0),
                               as::dmem(0), as::portOut(Dir::East)));
    fabric.configureSpatial(prog);
    for (int c = 0; c < 4; ++c) {
        fabric.pe(0, c).spad().poke(0, Vec4::splat(c + 1));
        fabric.pe(0, c).dmem().poke(0, Vec4::splat(2));
    }

    // Seed psums from the west edge; each traversal accumulates
    // sum_c (c+1)*2 = 20 on top of the seed.
    fabric.pushWest(0, Vec4::splat(100));
    fabric.pushWest(0, Vec4::splat(200));

    std::vector<Vec4> out;
    for (int t = 0; t < 60 && out.size() < 2; ++t) {
        fabric.step();
        if (auto v = fabric.popEast(0))
            out.push_back(*v);
    }
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], Vec4::splat(120));
    EXPECT_EQ(out[1], Vec4::splat(220));
}

TEST(Spatial, MultiRowIndependentPipelines)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    CanonFabric fabric(cfg);
    std::vector<std::vector<Instruction>> prog(2);
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            prog[r].push_back(inst(OpCode::VMov,
                                   as::portIn(Dir::West),
                                   as::kNullAddr,
                                   as::portOut(Dir::East)));
    fabric.configureSpatial(prog);
    fabric.pushWest(0, Vec4::splat(7));
    fabric.pushWest(1, Vec4::splat(8));

    std::optional<Vec4> a, b;
    for (int t = 0; t < 30 && !(a && b); ++t) {
        fabric.step();
        if (!a)
            a = fabric.popEast(0);
        if (!b)
            b = fabric.popEast(1);
    }
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, Vec4::splat(7));
    EXPECT_EQ(*b, Vec4::splat(8));
}

TEST(SpatialBuilder, PadsWithForwarders)
{
    SpatialPipeline p;
    p.stage(OpCode::VvMacW, as::spad(0), as::dmem(0));
    const auto insts = p.instructions(4);
    ASSERT_EQ(insts.size(), 4u);
    EXPECT_EQ(insts[0].op, OpCode::VvMacW);
    for (int c = 1; c < 4; ++c) {
        EXPECT_EQ(insts[c].op, OpCode::VMov);
        EXPECT_EQ(insts[c].op1, as::portIn(Dir::West));
        EXPECT_EQ(insts[c].res, as::portOut(Dir::East));
    }
}

TEST(SpatialBuilder, RejectsIllegalStages)
{
    SpatialPipeline p;
    EXPECT_THROW(p.stage(OpCode::VvMac, as::dmem(0), as::dmem(1)),
                 FatalError); // two dmem reads per cycle
    EXPECT_THROW(p.stage(OpCode::Hold, as::kNullAddr), FatalError);
    EXPECT_THROW(p.stage(OpCode::VMov, as::portOut(Dir::East)),
                 FatalError);
}

TEST(SpatialBuilder, TooManyStagesRejected)
{
    SpatialPipeline p;
    for (int i = 0; i < 3; ++i)
        p.forward();
    EXPECT_THROW(p.instructions(2), FatalError);
}

TEST(SpatialBuilder, EndToEndPipeline)
{
    // Build the Figure 22 style pipeline through the checked builder
    // and run it: stage c adds its dmem constant to the stream.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 3;
    CanonFabric fabric(cfg);

    SpatialPipeline adder;
    for (int c = 0; c < 3; ++c)
        adder.stage(OpCode::VAdd, as::portIn(Dir::West), as::dmem(0));
    const auto grid = buildSpatialProgram({adder}, cfg.rows, cfg.cols);
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_TRUE(grid[1][0].isNop()); // idle row

    fabric.configureSpatial(grid);
    for (int c = 0; c < 3; ++c)
        fabric.pe(0, c).dmem().poke(0, Vec4::splat(10));

    fabric.pushWest(0, Vec4::splat(5));
    std::optional<Vec4> out;
    for (int t = 0; t < 40 && !out; ++t) {
        fabric.step();
        out = fabric.popEast(0);
    }
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, Vec4::splat(35)); // 5 + 3*10
}

} // namespace
} // namespace canon
