/**
 * @file
 * Result-cache tests: key canonicalization through the relevance
 * matrix, payload codec round-trips, store semantics (modes, atomic
 * publication, collision verification, concurrent shared
 * directories), the pool's cached execution paths, and the canonsim
 * end-to-end contracts -- warm reruns execute zero simulation jobs
 * with byte-identical CSVs, interrupted sweeps resume from their
 * cache directory, and concurrent shards share one directory
 * cleanly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "cache/key.hh"
#include "cache/mode.hh"
#include "cache/payload.hh"
#include "cache/store.hh"
#include "cli/driver.hh"
#include "cli/options.hh"
#include "runner/pool.hh"
#include "runner/sweep.hh"

namespace canon
{
namespace cache
{
namespace
{

/** Per-test scratch dir: ctest -j runs tests concurrently. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name + "/";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::size_t
entryCount(const std::string &dir)
{
    std::size_t n = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".entry")
            ++n;
    return n;
}

// ---- keys -------------------------------------------------------------

TEST(ScenarioKeyTest, IrrelevantOptionsDoNotChangeTheKey)
{
    cli::Options a;
    a.workload = cli::Workload::Spmm;
    cli::Options b = a;
    b.nmN = 1;
    b.nmM = 8;     // spmm ignores --nm
    b.window = 99; // and --window
    EXPECT_EQ(scenarioKey(a).canonical, scenarioKey(b).canonical);

    cli::Options c = a;
    c.sparsity = 0.9; // but consumes --sparsity
    EXPECT_NE(scenarioKey(a).canonical, scenarioKey(c).canonical);

    cli::Options nm = a;
    nm.workload = cli::Workload::SpmmNm; // spmm-nm: nm yes, sparsity no
    cli::Options nm2 = nm;
    nm2.sparsity = 0.9;
    EXPECT_EQ(scenarioKey(nm).canonical, scenarioKey(nm2).canonical);
    nm2.nmM = 8;
    EXPECT_NE(scenarioKey(nm).canonical, scenarioKey(nm2).canonical);
}

TEST(ScenarioKeyTest, SddmmWindowIgnoresN)
{
    cli::Options a;
    a.workload = cli::Workload::SddmmWindow;
    cli::Options b = a;
    b.n = 4096; // sddmm-window has no N
    EXPECT_EQ(scenarioKey(a).canonical, scenarioKey(b).canonical);
    b.window = 128;
    EXPECT_NE(scenarioKey(a).canonical, scenarioKey(b).canonical);
}

TEST(ScenarioKeyTest, ArchSetIsOrderAndDuplicateInsensitive)
{
    cli::Options a;
    a.archs = {"systolic", "canon"};
    cli::Options b;
    b.archs = {"canon", "systolic", "canon"};
    EXPECT_EQ(scenarioKey(a).canonical, scenarioKey(b).canonical);

    cli::Options c;
    c.archs = {"canon"};
    cli::Options d; // empty archs = canon only, per the contract
    EXPECT_EQ(scenarioKey(c).canonical, scenarioKey(d).canonical);
    EXPECT_NE(scenarioKey(a).canonical, scenarioKey(c).canonical);
}

TEST(ScenarioKeyTest, ModelKeysIgnoreShapeAndDormantSparsity)
{
    cli::Options a;
    a.model = "llama8b-attn";
    cli::Options b = a;
    b.m = 4096;
    b.workload = cli::Workload::Gemm; // both ignored under a model
    EXPECT_EQ(scenarioKey(a).canonical, scenarioKey(b).canonical);

    // A sparsity-knob model distinguishes explicit sparsity from the
    // canonical default...
    cli::Options c = a;
    c.sparsity = 0.7;
    c.sparsitySet = true;
    EXPECT_NE(scenarioKey(a).canonical, scenarioKey(c).canonical);

    // ...while a window-structured model ignores it entirely.
    cli::Options w;
    w.model = "longformer";
    cli::Options w2 = w;
    w2.sparsity = 0.3;
    w2.sparsitySet = true;
    EXPECT_EQ(scenarioKey(w).canonical, scenarioKey(w2).canonical);
}

TEST(ScenarioKeyTest, ClockGhzOnlyAffectsRenderingNotTheKey)
{
    cli::Options a;
    cli::Options b = a;
    b.clockGhz = 2.5;
    EXPECT_EQ(scenarioKey(a).canonical, scenarioKey(b).canonical);
    b.rows = 16; // real fabric dimensions do key
    EXPECT_NE(scenarioKey(a).canonical, scenarioKey(b).canonical);
}

TEST(ScenarioKeyTest, SchemaVersionIsBakedIn)
{
    const ScenarioKey key = scenarioKey(cli::Options{});
    EXPECT_NE(key.canonical.find(
                  "schema=" + std::to_string(kSchemaVersion)),
              std::string::npos)
        << key.canonical;
}

TEST(ScenarioKeyTest, DigestIsStableHexAndCollisionFree)
{
    const ScenarioKey a = scenarioKey(cli::Options{});
    EXPECT_EQ(a.digest().size(), 32u);
    EXPECT_EQ(a.digest(), a.digest());
    EXPECT_EQ(a.digest().find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(a.fileName(), a.digest() + ".entry");

    const ScenarioKey f = figureKey("bench_x", "table", "a=1");
    EXPECT_NE(a.digest(), f.digest());
    EXPECT_NE(figureKey("bench_x", "table", "a=2").digest(),
              f.digest());
}

TEST(CacheMode, ParsesEverySpellingAndRejectsGarbage)
{
    const std::pair<const char *, Mode> cases[] = {
        {"off", Mode::Off},
        {"read", Mode::Read},
        {"write", Mode::Write},
        {"readwrite", Mode::ReadWrite},
        {"refresh", Mode::Refresh},
    };
    for (const auto &[text, mode] : cases) {
        Mode out = Mode::Off;
        EXPECT_EQ(parseMode(text, out), "") << text;
        EXPECT_EQ(out, mode) << text;
        EXPECT_STREQ(modeName(mode), text);
    }
    Mode out = Mode::Off;
    EXPECT_NE(parseMode("rw", out), "");
    EXPECT_NE(parseMode("", out), "");
}

// ---- payload codecs ---------------------------------------------------

TEST(Payload, CaseResultRoundTripsLosslessly)
{
    CaseResult cases;
    ExecutionProfile canon_p;
    canon_p.arch = "canon";
    canon_p.workload = "spmm proxy m 512/2048"; // spaces survive
    canon_p.cycles = 1'253'184;
    canon_p.peCount = 64;
    canon_p.activity = {{"laneMacs", 123456789ull},
                        {"offchipBytes", 42ull}};
    cases["canon"] = canon_p;
    ExecutionProfile zed_p;
    zed_p.arch = "zed";
    zed_p.cycles = 7;
    cases["zed"] = zed_p;

    CaseResult back;
    ASSERT_TRUE(decodeCaseResult(encodeCaseResult(cases), back));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.at("canon").workload, canon_p.workload);
    EXPECT_EQ(back.at("canon").cycles, canon_p.cycles);
    EXPECT_EQ(back.at("canon").peCount, 64u);
    EXPECT_EQ(back.at("canon").activity, canon_p.activity);
    EXPECT_EQ(back.at("zed").cycles, 7u);
    // Idempotent: re-encoding the decode is bit-identical.
    EXPECT_EQ(encodeCaseResult(back), encodeCaseResult(cases));
}

TEST(Payload, CaseResultDecoderIsStrict)
{
    CaseResult cases;
    cases["canon"] = ExecutionProfile{};
    const std::string good = encodeCaseResult(cases);

    CaseResult out;
    EXPECT_FALSE(decodeCaseResult("", out));
    EXPECT_FALSE(decodeCaseResult("garbage\n", out));
    EXPECT_FALSE(
        decodeCaseResult(good.substr(0, good.size() / 2), out));
    EXPECT_FALSE(decodeCaseResult(good + "trailing\n", out));
}

TEST(Payload, RowsRoundTripThroughHostileCells)
{
    const RowTable rows = {
        {"a", "1,000", "say \"hi\""},
        {"", "line\nbreak", "cell 3\n"},
        {},
    };
    RowTable back;
    ASSERT_TRUE(decodeRows(encodeRows(rows), back));
    EXPECT_EQ(back, rows);

    RowTable out;
    EXPECT_FALSE(decodeRows("", out));
    EXPECT_FALSE(decodeRows("rows 2\nrow 0\n", out)); // short
    EXPECT_FALSE(decodeRows(encodeRows(rows) + "x", out));
    // Hostile counts fail the structural checks instead of throwing
    // (or allocating) out of the graceful-miss path.
    EXPECT_FALSE(decodeRows("rows 18446744073709551615\n", out));
    EXPECT_FALSE(decodeRows("rows 1\nrow 1000000000\ncell 1\na\n",
                            out));
}

// ---- the store --------------------------------------------------------

TEST(ResultStoreTest, StoreAndLookupRoundTrip)
{
    const std::string dir = scratchDir("cache_store_roundtrip");
    ResultStore store(dir, Mode::ReadWrite);
    ASSERT_EQ(store.prepare(), "");

    const ScenarioKey key = figureKey("b", "t", "p=1");
    EXPECT_FALSE(store.lookup(key).has_value());
    ASSERT_TRUE(store.store(key, "payload bytes\n"));
    const auto hit = store.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "payload bytes\n");

    // Hits are recorded by the caller once the payload proves
    // usable, not by lookup itself (an undecodable fetch must count
    // as exactly one miss).
    EXPECT_EQ(store.stats().hits, 0u);
    store.recordHit();
    const CacheStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_NE(store.statsLine().find("1 hits"), std::string::npos);
}

TEST(ResultStoreTest, LookupVerifiesTheFullCanonicalKey)
{
    const std::string dir = scratchDir("cache_store_verify");
    ResultStore store(dir, Mode::ReadWrite);
    ASSERT_EQ(store.prepare(), "");

    // A forged entry at the right path but with another canonical
    // key (a digest collision, in effect) must read as a miss.
    const ScenarioKey key = figureKey("b", "t", "p=1");
    {
        std::ofstream f(dir + key.fileName(), std::ios::binary);
        f << "canon-cache 1\nsome other canonical key\npayload\n";
    }
    EXPECT_FALSE(store.lookup(key).has_value());

    // So must a stale store format...
    {
        std::ofstream f(dir + key.fileName(), std::ios::binary);
        f << "canon-cache 0\n" << key.canonical << "\npayload\n";
    }
    EXPECT_FALSE(store.lookup(key).has_value());

    // ...while the well-formed spelling hits.
    {
        std::ofstream f(dir + key.fileName(), std::ios::binary);
        f << "canon-cache 1\n" << key.canonical << "\npayload\n";
    }
    EXPECT_TRUE(store.lookup(key).has_value());
}

TEST(ResultStoreTest, ModesGateReadsWritesAndOverwrites)
{
    const std::string dir = scratchDir("cache_store_modes");
    const ScenarioKey key = figureKey("b", "t", "p=1");

    ResultStore read_only(dir, Mode::Read);
    ASSERT_EQ(read_only.prepare(), "");
    EXPECT_TRUE(read_only.store(key, "x")); // silent no-op
    EXPECT_EQ(entryCount(dir), 0u);

    ResultStore write_only(dir, Mode::Write);
    EXPECT_TRUE(write_only.store(key, "first"));
    EXPECT_FALSE(write_only.lookup(key).has_value()); // no reads
    EXPECT_TRUE(write_only.store(key, "second")); // keeps "first"

    ResultStore rw(dir, Mode::ReadWrite);
    EXPECT_EQ(*rw.lookup(key), "first");

    ResultStore refresh(dir, Mode::Refresh);
    EXPECT_TRUE(refresh.store(key, "third")); // overwrites stale
    EXPECT_FALSE(refresh.lookup(key).has_value()); // no reads
    EXPECT_EQ(*rw.lookup(key), "third");
}

TEST(ResultStoreTest, ConcurrentWritersAndReadersNeverTear)
{
    const std::string dir = scratchDir("cache_store_race");
    ResultStore store(dir, Mode::Refresh);
    ASSERT_EQ(store.prepare(), "");
    ResultStore reader(dir, Mode::Read);

    // 8 threads hammer 4 shared keys; payloads are writer-specific
    // but every observed read must be one of them, complete.
    const int writers = 8, rounds = 50;
    std::atomic<int> torn{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&, t]() {
            for (int r = 0; r < rounds; ++r) {
                const ScenarioKey key = figureKey(
                    "race", "t", "k=" + std::to_string(r % 4));
                const std::string payload =
                    "payload-" + std::to_string(t) + "\n";
                store.store(key, payload);
                if (auto got = reader.lookup(key)) {
                    if (got->rfind("payload-", 0) != 0 ||
                        got->back() != '\n')
                        torn.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(entryCount(dir), 4u);
    // No temp litter left behind.
    for (const auto &e : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(e.path().extension(), ".entry") << e.path();
}

// ---- cached pool execution --------------------------------------------

/** A small real sweep: 2 sparsities x 2 seeds on a tiny spmm. */
std::vector<runner::SweepJob>
tinySweepJobs()
{
    cli::Options base;
    base.workload = cli::Workload::Spmm;
    base.m = 16;
    base.k = 16;
    base.n = 16;
    runner::SweepSpec spec;
    EXPECT_EQ(spec.addAxis("sparsity", "0.3,0.7"), "");
    EXPECT_EQ(spec.addAxis("seed", "1,2"), "");
    return spec.expand(base);
}

TEST(CachedPool, WarmRunExecutesZeroScenarios)
{
    const std::string dir = scratchDir("cache_pool_warm");
    const auto jobs = tinySweepJobs();
    const runner::ScenarioPool pool(2);
    std::atomic<int> executed{0};
    auto fn = [&executed](const cli::Options &o) {
        executed.fetch_add(1);
        return cli::runCases(o);
    };

    ResultStore cold(dir, Mode::ReadWrite);
    ASSERT_EQ(cold.prepare(), "");
    const auto first = pool.run(jobs, fn, &cold);
    EXPECT_EQ(executed.load(), 4);
    EXPECT_EQ(cold.stats().misses, 4u);
    EXPECT_EQ(cold.stats().stores, 4u);
    EXPECT_EQ(entryCount(dir), 4u);

    ResultStore warm(dir, Mode::ReadWrite);
    const auto second = pool.run(jobs, fn, &warm);
    EXPECT_EQ(executed.load(), 4); // zero new simulations
    EXPECT_EQ(warm.stats().hits, 4u);
    EXPECT_EQ(warm.stats().misses, 0u);

    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].error, "");
        EXPECT_EQ(encodeCaseResult(second[i].cases),
                  encodeCaseResult(first[i].cases))
            << jobs[i].point;
    }
}

TEST(CachedPool, FailedScenariosAreNeverCached)
{
    const std::string dir = scratchDir("cache_pool_fail");
    cli::Options base;
    runner::SweepSpec spec;
    ASSERT_EQ(spec.addAxis("seed", "1,2,3"), "");
    const auto jobs = spec.expand(base);

    const runner::ScenarioPool pool(1);
    std::atomic<int> executed{0};
    auto flaky = [&executed](const cli::Options &o) -> CaseResult {
        executed.fetch_add(1);
        if (o.seed == 2)
            throw std::runtime_error("transient failure");
        return cli::runCases(o);
    };

    ResultStore store(dir, Mode::ReadWrite);
    ASSERT_EQ(store.prepare(), "");
    auto first = pool.run(jobs, flaky, &store);
    EXPECT_EQ(first[1].error, "transient failure");
    EXPECT_EQ(entryCount(dir), 2u); // only the successes persisted

    // The resume re-runs exactly the failed scenario.
    ResultStore resume(dir, Mode::ReadWrite);
    executed.store(0);
    auto second = pool.run(jobs, cli::runCases, &resume);
    EXPECT_EQ(executed.load(), 0); // flaky not used; count via stats
    EXPECT_EQ(resume.stats().hits, 2u);
    EXPECT_EQ(resume.stats().misses, 1u);
    EXPECT_EQ(second[1].error, "");
}

TEST(CachedPool, MapCachedRoundTripsPayloads)
{
    const std::string dir = scratchDir("cache_pool_map");
    const runner::ScenarioPool pool(2);
    std::atomic<int> computed{0};
    auto key_of = [](std::size_t i) {
        return figureKey("map", "t", "i=" + std::to_string(i));
    };
    auto compute = [&computed](std::size_t i) {
        computed.fetch_add(1);
        return "value-" + std::to_string(i * i);
    };

    ResultStore store(dir, Mode::ReadWrite);
    ASSERT_EQ(store.prepare(), "");
    const auto cold = pool.mapCached(5, key_of, compute, &store);
    EXPECT_EQ(computed.load(), 5);
    ASSERT_EQ(cold.size(), 5u);
    EXPECT_EQ(cold[3], "value-9");

    ResultStore warm(dir, Mode::ReadWrite);
    EXPECT_EQ(pool.mapCached(5, key_of, compute, &warm), cold);
    EXPECT_EQ(computed.load(), 5);
    EXPECT_EQ(warm.stats().hits, 5u);

    // Null store degrades to a plain map.
    EXPECT_EQ(pool.mapCached(5, key_of, compute, nullptr), cold);
    EXPECT_EQ(computed.load(), 10);
}

// ---- canonsim end to end ----------------------------------------------

struct RunOutput
{
    int rc = 0;
    std::string out;
    std::string err;
    std::string csv;
};

RunOutput
runCanonsim(std::vector<std::string> args, const std::string &csv)
{
    if (!csv.empty()) {
        args.push_back("--csv");
        args.push_back(csv);
    }
    auto parsed = cli::parseArgs(args);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    RunOutput r;
    std::ostringstream out, err;
    r.rc = cli::runScenario(parsed.options, out, err);
    r.out = out.str();
    r.err = err.str();
    if (!csv.empty())
        r.csv = slurp(csv);
    return r;
}

const std::vector<std::string> kSweepArgs = {
    "--workload", "gemm", "--m", "16", "--k", "16", "--n", "16",
    "--sweep", "k=16,32,48", "--sweep", "rows=2,4", "--jobs", "2"};

TEST(CachedRunScenario, WarmRerunIsByteIdenticalWithZeroJobs)
{
    const std::string dir = scratchDir("cache_e2e_warm");
    const std::string cache = dir + "cache";

    auto base = runCanonsim(kSweepArgs, dir + "plain.csv");
    ASSERT_EQ(base.rc, 0) << base.err;

    auto cached_args = kSweepArgs;
    cached_args.insert(cached_args.end(), {"--cache-dir", cache});
    auto cold = runCanonsim(cached_args, dir + "cold.csv");
    ASSERT_EQ(cold.rc, 0) << cold.err;
    EXPECT_NE(cold.out.find("cache: 0 hits, 6 misses, 6 stored;"
                            " simulation jobs executed: 6"),
              std::string::npos)
        << cold.out;
    EXPECT_EQ(cold.csv, base.csv);

    auto warm = runCanonsim(cached_args, dir + "warm.csv");
    ASSERT_EQ(warm.rc, 0) << warm.err;
    EXPECT_NE(warm.out.find("cache: 6 hits, 0 misses, 0 stored;"
                            " simulation jobs executed: 0"),
              std::string::npos)
        << warm.out;
    EXPECT_EQ(warm.csv, base.csv); // byte-identical from the cache
}

TEST(CachedRunScenario, InterruptedSweepResumesOnlyMissingPoints)
{
    const std::string dir = scratchDir("cache_e2e_resume");
    const std::string cache = dir + "cache";

    // "Interrupted": only the first half of the grid ever ran.
    auto half_args = kSweepArgs;
    half_args.insert(half_args.end(),
                     {"--cache-dir", cache, "--shard", "0/2"});
    auto half = runCanonsim(half_args, "");
    ASSERT_EQ(half.rc, 0) << half.err;
    EXPECT_NE(half.out.find("simulation jobs executed: 3"),
              std::string::npos)
        << half.out;

    // The full rerun executes exactly the three missing scenarios.
    auto full_args = kSweepArgs;
    full_args.insert(full_args.end(), {"--cache-dir", cache});
    auto resumed = runCanonsim(full_args, dir + "resumed.csv");
    ASSERT_EQ(resumed.rc, 0) << resumed.err;
    EXPECT_NE(resumed.out.find("cache: 3 hits, 3 misses, 3 stored;"
                               " simulation jobs executed: 3"),
              std::string::npos)
        << resumed.out;

    auto plain = runCanonsim(kSweepArgs, dir + "plain.csv");
    EXPECT_EQ(resumed.csv, plain.csv);
}

TEST(CachedRunScenario, ConcurrentShardsShareOneCacheDirCleanly)
{
    const std::string dir = scratchDir("cache_e2e_shards");
    const std::string cache = dir + "cache";

    // Two shard "processes" race on one cache directory.
    RunOutput results[2];
    {
        std::vector<std::thread> threads;
        for (int s = 0; s < 2; ++s) {
            threads.emplace_back([&, s]() {
                auto args = kSweepArgs;
                args.insert(args.end(),
                            {"--cache-dir", cache, "--shard",
                             std::to_string(s) + "/2"});
                results[s] = runCanonsim(
                    args, dir + "s" + std::to_string(s) + ".csv");
            });
        }
        for (auto &t : threads)
            t.join();
    }
    ASSERT_EQ(results[0].rc, 0) << results[0].err;
    ASSERT_EQ(results[1].rc, 0) << results[1].err;

    // Merged shard CSVs reproduce the unsharded CSV byte for byte.
    auto plain = runCanonsim(kSweepArgs, dir + "plain.csv");
    EXPECT_EQ(results[0].csv + results[1].csv, plain.csv);

    // And the directory now warms a full run completely.
    auto warm_args = kSweepArgs;
    warm_args.insert(warm_args.end(), {"--cache-dir", cache});
    auto warm = runCanonsim(warm_args, dir + "warm.csv");
    EXPECT_NE(warm.out.find("cache: 6 hits, 0 misses, 0 stored;"
                            " simulation jobs executed: 0"),
              std::string::npos)
        << warm.out;
    EXPECT_EQ(warm.csv, plain.csv);
}

TEST(CachedRunScenario, RefreshOverwritesStaleEntries)
{
    const std::string dir = scratchDir("cache_e2e_refresh");
    const std::string cache = dir + "cache";

    auto cached_args = kSweepArgs;
    cached_args.insert(cached_args.end(), {"--cache-dir", cache});
    auto cold = runCanonsim(cached_args, dir + "cold.csv");
    ASSERT_EQ(cold.rc, 0) << cold.err;

    // Corrupt every entry's payload, keeping the valid header so the
    // lookup itself still matches (a genuinely stale body).
    std::size_t corrupted = 0;
    for (const auto &e : std::filesystem::directory_iterator(cache)) {
        const std::string text = slurp(e.path().string());
        const auto second_nl = text.find('\n', text.find('\n') + 1);
        ASSERT_NE(second_nl, std::string::npos);
        std::ofstream f(e.path(), std::ios::binary);
        f << text.substr(0, second_nl + 1) << "stale garbage\n";
        ++corrupted;
    }
    EXPECT_EQ(corrupted, 6u);

    // readwrite tolerates the corruption by re-running (and, since
    // the entries exist, leaves them stale). A fetched-but-
    // undecodable entry is exactly one miss, never also a hit.
    auto tolerant = runCanonsim(cached_args, dir + "tolerant.csv");
    ASSERT_EQ(tolerant.rc, 0) << tolerant.err;
    EXPECT_NE(tolerant.out.find("cache: 0 hits, 6 misses"),
              std::string::npos)
        << tolerant.out;
    EXPECT_EQ(tolerant.csv, cold.csv);

    // ...and refresh rewrites them for good.
    auto refresh_args = cached_args;
    refresh_args.insert(refresh_args.end(), {"--cache", "refresh"});
    auto refreshed = runCanonsim(refresh_args, "");
    ASSERT_EQ(refreshed.rc, 0) << refreshed.err;
    EXPECT_NE(refreshed.out.find("6 stored"), std::string::npos)
        << refreshed.out;

    auto warm = runCanonsim(cached_args, dir + "warm.csv");
    EXPECT_NE(warm.out.find("simulation jobs executed: 0"),
              std::string::npos)
        << warm.out;
    EXPECT_EQ(warm.csv, cold.csv);
}

TEST(CachedRunScenario, ReadModeNeverPopulatesTheStore)
{
    const std::string dir = scratchDir("cache_e2e_read");
    const std::string cache = dir + "cache";

    auto args = kSweepArgs;
    args.insert(args.end(),
                {"--cache-dir", cache, "--cache", "read"});
    auto run = runCanonsim(args, "");
    ASSERT_EQ(run.rc, 0) << run.err;
    EXPECT_NE(run.out.find("0 stored"), std::string::npos)
        << run.out;
    EXPECT_EQ(entryCount(cache), 0u);
}

TEST(CachedRunScenario, SingleRunReportsCacheStats)
{
    const std::string dir = scratchDir("cache_e2e_single");
    const std::vector<std::string> args = {
        "--workload", "spmm", "--m", "16", "--k", "16", "--n", "16",
        "--cache-dir", dir + "cache"};
    auto cold = runCanonsim(args, "");
    ASSERT_EQ(cold.rc, 0) << cold.err;
    EXPECT_NE(cold.out.find("cache: 0 hits, 1 misses, 1 stored;"),
              std::string::npos)
        << cold.out;
    auto warm = runCanonsim(args, "");
    EXPECT_NE(warm.out.find("cache: 1 hits, 0 misses, 0 stored;"),
              std::string::npos)
        << warm.out;
}

} // namespace
} // namespace cache
} // namespace canon
