/**
 * @file
 * Energy/area model tests: category accounting, the Figure 10 area
 * shares, the Figure 9 deltas, per-PE power magnitudes in Figure 11's
 * regime, and EDP arithmetic.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/dense_cadence.hh"
#include "kernels/spmm.hh"
#include "power/area.hh"
#include "power/energy.hh"
#include "sparse/generate.hh"

namespace canon
{
namespace
{

TEST(Energy, CategoriesSumToTotal)
{
    ExecutionProfile p;
    p.cycles = 1000;
    p.peCount = 64;
    p.add("laneMacs", 5000);
    p.add("dmemReads", 900);
    p.add("spadReads", 100);
    p.add("spadWrites", 120);
    p.add("routerHops", 300);

    EnergyModel model;
    const auto r = model.evaluate(p);
    double sum = 0.0;
    for (const auto &[_, v] : r.categoriesPj)
        sum += v;
    EXPECT_DOUBLE_EQ(sum, r.totalPj);
    EXPECT_GT(r.totalPj, 0.0);
}

TEST(Energy, MacSlotsDominateLaneMacsForEnergy)
{
    ExecutionProfile p;
    p.cycles = 10;
    p.add("laneMacs", 100);   // useful
    p.add("macSlots", 400);   // switched (padded dense execution)
    EnergyModel model;
    const auto r = model.evaluate(p);
    EXPECT_DOUBLE_EQ(r.category("compute"),
                     400 * model.params().macInt8Pj);
}

TEST(Energy, WattsAndEdp)
{
    ExecutionProfile p;
    p.cycles = 1'000'000; // 1 ms at 1 GHz
    p.add("laneMacs", 1'000'000);
    EnergyModel model;
    const auto r = model.evaluate(p, 1.0);
    EXPECT_NEAR(r.seconds(), 1e-3, 1e-12);
    EXPECT_GT(r.watts(), 0.0);
    EXPECT_NEAR(r.edp(), r.totalJoules() * 1e-3, 1e-18);
}

TEST(Energy, GemmPerPePowerInPaperRegime)
{
    // Figure 11 shows roughly 1-2 mW per PE for streaming workloads
    // at 1 GHz.
    CanonConfig cfg;
    Rng rng(1);
    const auto a = randomDense(64, 64, rng);
    const auto b = randomDense(64, 32, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();

    EnergyModel model;
    const auto r = model.evaluate(fabric.profile("gemm"));
    const double per_pe_mw = r.watts() / cfg.numPes() * 1e3;
    EXPECT_GT(per_pe_mw, 0.3);
    EXPECT_LT(per_pe_mw, 3.0);
}

TEST(Energy, SparsityShiftsPowerIntoScratchpad)
{
    // Figure 11: moving from GEMM to high sparsity, the scratchpad
    // share grows from zero.
    CanonConfig cfg;
    Rng rng(2);
    EnergyModel model;

    const auto ag = randomDense(64, 64, rng);
    const auto b = randomDense(64, 32, rng);
    CanonFabric gemm_fab(cfg);
    gemm_fab.load(mapGemm(ag, b, cfg));
    gemm_fab.run();
    const auto gemm_r = model.evaluate(gemm_fab.profile("gemm"));
    EXPECT_DOUBLE_EQ(gemm_r.category("spadRead") +
                         gemm_r.category("spadWrite"),
                     0.0);

    const auto as = randomSparse(64, 64, 0.8, rng);
    CanonFabric sp_fab(cfg);
    sp_fab.load(mapSpmm(CsrMatrix::fromDense(as), b, cfg));
    sp_fab.run();
    const auto sp_r = model.evaluate(sp_fab.profile("spmm"));
    EXPECT_GT(sp_r.category("spadRead") + sp_r.category("spadWrite"),
              0.0);
}

TEST(Area, CanonSharesMatchFigure10)
{
    AreaModel model;
    const auto b = model.canon();
    // Paper: 58 / 13 / 16 / 5 / 8 percent.
    EXPECT_NEAR(b.share("dataMem"), 0.58, 0.05);
    EXPECT_NEAR(b.share("spad"), 0.13, 0.04);
    EXPECT_NEAR(b.share("compute"), 0.16, 0.04);
    EXPECT_NEAR(b.share("routing"), 0.05, 0.03);
    EXPECT_NEAR(b.share("control"), 0.08, 0.03);
}

TEST(Area, Figure9Deltas)
{
    AreaModel model;
    const double canon = model.canon().total();
    const double systolic = model.systolic().total();
    const double zed = model.zed().total();
    const double cgra = model.cgra().total();

    // +30% vs systolic, +9% vs ZeD, -7% vs CGRA (Figure 9).
    EXPECT_NEAR(canon / systolic, 1.30, 0.08);
    EXPECT_NEAR(canon / zed, 1.09, 0.06);
    EXPECT_NEAR(canon / cgra, 0.93, 0.06);
}

TEST(Area, SystolicSplitMatchesFigure10)
{
    AreaModel model;
    const auto b = model.systolic();
    EXPECT_NEAR(b.share("dataMem"), 0.83, 0.05);
    EXPECT_NEAR(b.share("compute"), 0.17, 0.05);
}

TEST(Area, ScalesWithArray)
{
    AreaModel model;
    const auto small = model.canon(4, 4);
    const auto big = model.canon(8, 8);
    EXPECT_NEAR(big.total() / small.total(), 4.0, 0.5);
}

} // namespace
} // namespace canon
