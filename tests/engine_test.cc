/**
 * @file
 * canon::engine façade tests: the shared common-flag grammar,
 * request-validation parity with every CLI rejection path, engine
 * execution (determinism across worker counts, streaming-callback
 * ordering, batches, shards), warm-cache engine reruns executing
 * zero simulation jobs, dry-run plans, and the introspection
 * registry's no-drift guarantees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/key.hh"
#include "cli/driver.hh"
#include "cli/options.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"
#include "workloads/models.hh"

namespace canon
{
namespace engine
{
namespace
{

/** Per-test scratch dir: ctest -j runs tests concurrently. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name + "/";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

cli::ParseResult
parse(std::initializer_list<std::string> args)
{
    return cli::parseArgs(std::vector<std::string>(args));
}

std::string
render(const ResultSet &rs)
{
    std::ostringstream out;
    rs.sweepTable().print(out);
    return out.str();
}

// ---- the shared common-flag grammar -----------------------------------

TEST(CommonFlags, ParsesTheSharedGrammar)
{
    CommonFlags flags;
    std::string err;
    EXPECT_EQ(parseCommonFlag("--jobs", "4", flags, err),
              FlagParse::Ok);
    EXPECT_EQ(parseCommonFlag("--shard", "1/4", flags, err),
              FlagParse::Ok);
    EXPECT_EQ(parseCommonFlag("--cache-dir", "/tmp/c", flags, err),
              FlagParse::Ok);
    EXPECT_EQ(parseCommonFlag("--cache", "refresh", flags, err),
              FlagParse::Ok);
    EXPECT_EQ(flags.jobs, 4);
    EXPECT_EQ(flags.shard.index, 1);
    EXPECT_EQ(flags.shard.count, 4);
    EXPECT_EQ(flags.cacheDir, "/tmp/c");
    EXPECT_EQ(flags.cacheMode, cache::Mode::Refresh);
    EXPECT_TRUE(validateCommonFlags(flags).empty());

    EXPECT_EQ(parseCommonFlag("--sparsity", "0.5", flags, err),
              FlagParse::NotCommon);
    EXPECT_FALSE(isCommonFlag("--sparsity"));
    EXPECT_TRUE(isCommonFlag("--jobs"));
}

TEST(CommonFlags, ErrorsMatchTheCliParser)
{
    // Both canonsim and the benches report a bad common flag with
    // exactly the shared parser's message.
    const std::pair<const char *, const char *> bad[] = {
        {"--jobs", "0"},      {"--jobs", "257"}, {"--jobs", "many"},
        {"--shard", "2"},     {"--shard", "2/2"}, {"--shard", "a/b"},
        {"--cache-dir", ""},  {"--cache", "rw"},
    };
    for (const auto &[key, value] : bad) {
        CommonFlags flags;
        std::string err;
        ASSERT_EQ(parseCommonFlag(key, value, flags, err),
                  FlagParse::Error)
            << key << " " << value;
        auto res = parse({key, std::string(value)});
        ASSERT_FALSE(res.ok) << key;
        EXPECT_EQ(res.error, err) << key << " " << value;
    }
}

TEST(CommonFlags, CacheModeRequiresDirectory)
{
    CommonFlags flags;
    std::string err;
    ASSERT_EQ(parseCommonFlag("--cache", "read", flags, err),
              FlagParse::Ok);
    EXPECT_EQ(validateCommonFlags(flags),
              "option '--cache' requires --cache-dir");
}

// ---- request-validation parity with the CLI ---------------------------

TEST(ScenarioRequest, SetRejectsExactlyWhatTheCliRejects)
{
    // Every scenario-grammar rejection path, with the same text the
    // CLI parser produces (both funnel through applyScenarioOption).
    const std::pair<const char *, const char *> bad[] = {
        {"workload", "conv3d"}, {"model", "gpt2"},
        {"m", "abc"},           {"m", "0"},
        {"k", "-4"},            {"n", "1.5"},
        {"window", "0"},        {"seed", "-1"},
        {"sparsity", "1.0"},    {"sparsity", "-0.1"},
        {"sparsity", "dense"},  {"nm", "4"},
        {"nm", "4:2"},          {"nm", "0:4"},
        {"nm", "a:b"},          {"rows", "0"},
        {"cols", "2000"},       {"spad", "0"},
        {"dmem", "0"},          {"clock-ghz", "0"},
        {"frobnicate", "1"},
    };
    for (const auto &[key, value] : bad) {
        ScenarioRequest req;
        req.set(key, value);
        EXPECT_FALSE(req.validate()) << key << "=" << value;
        auto res = parse({"--" + std::string(key), value});
        ASSERT_FALSE(res.ok) << key;
        EXPECT_EQ(req.error(), res.error) << key << "=" << value;
    }
}

TEST(ScenarioRequest, ArchValidationMatchesTheCli)
{
    ScenarioRequest req;
    req.archs({"tpu"});
    EXPECT_FALSE(req.validate());
    auto res = parse({"--arch", "tpu"});
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(req.error(), res.error);

    ScenarioRequest all;
    all.archs({"all"});
    ASSERT_TRUE(all.validate()) << all.error();
    EXPECT_EQ(all.options().archs.size(), 5u);
}

TEST(ScenarioRequest, SweepAxisValidationMatchesTheCli)
{
    // A malformed axis value: the request reports exactly the text
    // the CLI prints after "canonsim: ".
    ScenarioRequest req;
    req.sweep("sparsity", "0.5,oops");
    EXPECT_FALSE(req.validate());

    auto res = parse({"--sweep", "sparsity=0.5,oops"});
    ASSERT_TRUE(res.ok) << res.error; // axes validate at run time
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(res.options, out, err), 2);
    EXPECT_NE(err.str().find("canonsim: " + req.error()),
              std::string::npos)
        << err.str();

    // Duplicate and non-sweepable axes are construction-time errors.
    ScenarioRequest dup;
    dup.sweep("rows", "4,8").sweep("rows", "16");
    EXPECT_FALSE(dup.validate());
    EXPECT_NE(dup.error().find("duplicate"), std::string::npos);

    ScenarioRequest fixed;
    fixed.sweep("jobs", "1,2");
    EXPECT_FALSE(fixed.validate());
    EXPECT_NE(fixed.error().find("not sweepable"), std::string::npos);
}

TEST(ScenarioRequest, IrrelevantAxisRejectedLikeTheCli)
{
    // spmm never consumes --window: the relevance matrix rejects the
    // axis at validation, with the CLI's exact message.
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm).sweep("window", "32,64");
    EXPECT_FALSE(req.validate());
    EXPECT_NE(req.error().find("has no effect"), std::string::npos);

    auto res = parse({"--workload", "spmm", "--sweep",
                      "window=32,64"});
    ASSERT_TRUE(res.ok) << res.error;
    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(res.options, out, err), 2);
    EXPECT_NE(err.str().find("canonsim: " + req.error()),
              std::string::npos)
        << err.str();
}

TEST(ScenarioRequest, WarningsMatchTheCli)
{
    auto res = parse({"--workload", "spmm", "--nm", "2:8"});
    ASSERT_TRUE(res.ok) << res.error;
    ScenarioRequest req = ScenarioRequest::fromOptions(res.options);
    ASSERT_TRUE(req.validate()) << req.error();
    ASSERT_EQ(req.warnings().size(), 1u);
    EXPECT_EQ(req.warnings()[0],
              "option '--nm' is ignored by workload 'spmm'");

    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(res.options, out, err), 0);
    EXPECT_NE(err.str().find("canonsim: warning: " +
                             req.warnings()[0]),
              std::string::npos)
        << err.str();
}

TEST(ScenarioRequest, TypedSettersMatchParsedOptions)
{
    // The typed setters and the CLI spellings must name the same
    // scenario -- asserted through the canonical cache key, which
    // folds in everything result-shaping.
    ScenarioRequest req;
    req.workload(cli::Workload::SpmmNm)
        .shape(128, 256, 32)
        .nm(2, 8)
        .seed(9)
        .fabric(4, 16)
        .spad(32)
        .dmem(2048)
        .clockGhz(1.5)
        .archs({"canon", "zed"});
    ASSERT_TRUE(req.validate()) << req.error();

    auto res = parse({"--workload", "spmm-nm", "--m", "128", "--k",
                      "256", "--n", "32", "--nm", "2:8", "--seed",
                      "9", "--rows", "4", "--cols", "16", "--spad",
                      "32", "--dmem", "2048", "--clock-ghz", "1.5",
                      "--arch", "canon,zed"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(cache::scenarioKey(req.options()).canonical,
              cache::scenarioKey(res.options).canonical);
}

TEST(ScenarioRequest, FirstErrorIsLatched)
{
    ScenarioRequest req;
    req.set("sparsity", "2.0").shape(64, 64, 64);
    EXPECT_FALSE(req.validate());
    EXPECT_NE(req.error().find("--sparsity"), std::string::npos);
    // The later, valid setter still applied.
    EXPECT_EQ(req.options().m, 64);
}

// ---- engine execution -------------------------------------------------

TEST(Engine, RunMatchesRunCases)
{
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sparsity(0.5)
        .archs({"canon", "zed"});
    Engine eng(EngineConfig{.jobs = 1});
    ResultSet rs = eng.run(req);
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_TRUE(rs.single());
    EXPECT_EQ(rs.failureCount(), 0u);

    const CaseResult direct = cli::runCases(req.options());
    const CaseResult &cases = rs.scenarios().front().cases;
    ASSERT_EQ(cases.size(), direct.size());
    for (const auto &[arch, profile] : direct) {
        ASSERT_TRUE(cases.count(arch)) << arch;
        EXPECT_EQ(cases.at(arch).cycles, profile.cycles) << arch;
    }
}

TEST(Engine, RunIsDeterministicAcrossWorkerCounts)
{
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.3,0.5,0.7")
        .sweep("rows", "4,8");
    Engine serial(EngineConfig{.jobs = 1});
    Engine threaded(EngineConfig{.jobs = 4});
    const std::string a = render(serial.run(req));
    const std::string b = render(threaded.run(req));
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Engine, PolicyAxesAreDeterministicAcrossWorkerCounts)
{
    // Sweeping the tag-bank count and flush policy must commute with
    // the worker count: four scenarios, byte-identical tables.
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("tag-banks", "1,8")
        .sweep("spad-flush", "eager,adaptive");
    Engine serial(EngineConfig{.jobs = 1});
    Engine threaded(EngineConfig{.jobs = 4});
    const auto ra = serial.run(req);
    const auto rb = threaded.run(req);
    ASSERT_TRUE(ra.ok()) << ra.error();
    ASSERT_EQ(ra.size(), 4u);
    const std::string a = render(ra);
    const std::string b = render(rb);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Engine, RunBatchIsDeterministicAcrossWorkerCounts)
{
    ScenarioRequest sweep;
    sweep.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.3,0.6");
    ScenarioRequest gemm;
    gemm.workload(cli::Workload::Gemm).shape(64, 64, 16);

    Engine serial(EngineConfig{.jobs = 1});
    Engine threaded(EngineConfig{.jobs = 4});
    auto a = serial.runBatch({sweep, gemm});
    auto b = threaded.runBatch({sweep, gemm});
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), 2u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok());
        EXPECT_EQ(render(a[i]), render(b[i])) << "request " << i;
    }
    // Requests keep their identities: one sweep set, one single.
    EXPECT_EQ(a[0].size(), 2u);
    EXPECT_TRUE(a[1].single());
}

TEST(Engine, StreamingCallbackDeliversInExpansionOrder)
{
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.1,0.3,0.5,0.7")
        .sweep("rows", "4,8");
    Engine eng(EngineConfig{.jobs = 4});

    std::vector<std::size_t> order;
    std::vector<std::string> points;
    ResultSet rs = eng.run(req, [&](const runner::ScenarioResult &r) {
        order.push_back(r.job.index);
        points.push_back(r.job.point);
    });
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    // The streamed view is the result set, in the same order.
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i], rs.scenarios()[i].job.point);
}

TEST(Engine, ThrowingStreamCallbackRethrowsOnCallerThread)
{
    // A buggy callback must not escape a worker thread (that would
    // std::terminate); the pool latches the first exception and
    // rethrows it here, after every job has completed.
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.2,0.4,0.6,0.8");
    Engine eng(EngineConfig{.jobs = 4});
    EXPECT_THROW(eng.run(req,
                         [](const runner::ScenarioResult &) {
                             throw std::runtime_error("boom");
                         }),
                 std::runtime_error);
}

TEST(Engine, StreamingCallbackSpansBatchInGlobalOrder)
{
    ScenarioRequest s1;
    s1.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.2,0.4");
    ScenarioRequest s2;
    s2.workload(cli::Workload::Gemm).shape(64, 64, 16);

    Engine eng(EngineConfig{.jobs = 4});
    std::vector<std::string> labels;
    auto sets = eng.runBatch(
        {s1, s2}, [&](const runner::ScenarioResult &r) {
            labels.push_back(r.job.options.workloadLabel());
        });
    ASSERT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels[0], "spmm 64x64x16 s=0.2");
    EXPECT_EQ(labels[1], "spmm 64x64x16 s=0.4");
    EXPECT_EQ(labels[2], "gemm 64x64x16");
    ASSERT_EQ(sets.size(), 2u);
    EXPECT_EQ(sets[0].size(), 2u);
    EXPECT_EQ(sets[1].size(), 1u);
}

TEST(Engine, ShardOwnsItsContiguousSlice)
{
    auto makeReq = [] {
        ScenarioRequest req;
        req.workload(cli::Workload::Spmm)
            .shape(64, 64, 16)
            .sweep("sparsity", "0.1,0.3,0.5,0.7,0.9");
        return req;
    };
    Engine eng(EngineConfig{.jobs = 2});
    ResultSet whole = eng.run(makeReq());
    ASSERT_EQ(whole.size(), 5u);

    std::vector<std::string> sharded;
    for (int i = 0; i < 2; ++i) {
        ScenarioRequest req = makeReq();
        req.shard(i, 2);
        ResultSet rs = eng.run(req);
        EXPECT_EQ(rs.totalJobs(), 5u);
        EXPECT_FALSE(rs.single());
        for (const auto &r : rs.scenarios())
            sharded.push_back(r.job.point);
    }
    ASSERT_EQ(sharded.size(), 5u);
    for (std::size_t i = 0; i < sharded.size(); ++i)
        EXPECT_EQ(sharded[i], whole.scenarios()[i].job.point);
}

TEST(Engine, InvalidRequestNeverRuns)
{
    ScenarioRequest bad;
    bad.set("sparsity", "2.0");
    Engine eng(EngineConfig{.jobs = 1});
    ResultSet rs = eng.run(bad);
    EXPECT_EQ(rs.status(), ResultSet::Status::InvalidRequest);
    EXPECT_FALSE(rs.ok());
    EXPECT_FALSE(rs.error().empty());
    EXPECT_EQ(rs.size(), 0u);

    // In a batch, the invalid request does not block the others.
    ScenarioRequest good;
    good.workload(cli::Workload::Gemm).shape(64, 64, 16);
    auto sets = eng.runBatch({bad, good});
    ASSERT_EQ(sets.size(), 2u);
    EXPECT_EQ(sets[0].status(), ResultSet::Status::InvalidRequest);
    ASSERT_TRUE(sets[1].ok());
    EXPECT_EQ(sets[1].failureCount(), 0u);
}

TEST(Engine, UnpreparableCacheDirectoryFailsTheRun)
{
    const std::string dir = scratchDir("engine_badcache");
    // A plain file where the cache directory should go.
    const std::string blocker = dir + "blocked";
    {
        std::ofstream f(blocker);
        f << "not a directory";
    }
    Engine eng(EngineConfig{.jobs = 1, .cacheDir = blocker});
    EXPECT_FALSE(eng.prepare().empty());

    ScenarioRequest req;
    req.workload(cli::Workload::Gemm).shape(64, 64, 16);
    ResultSet rs = eng.run(req);
    EXPECT_EQ(rs.status(), ResultSet::Status::Failed);
    EXPECT_FALSE(rs.error().empty());
}

// ---- cache integration ------------------------------------------------

TEST(Engine, WarmRerunExecutesZeroSimulationJobs)
{
    const std::string dir = scratchDir("engine_warm") + "cache";
    auto makeReq = [] {
        ScenarioRequest req;
        req.workload(cli::Workload::Spmm)
            .shape(64, 64, 16)
            .sweep("sparsity", "0.3,0.5,0.7");
        return req;
    };

    Engine cold(EngineConfig{.jobs = 2, .cacheDir = dir});
    ResultSet first = cold.run(makeReq());
    ASSERT_TRUE(first.ok()) << first.error();
    EXPECT_NE(first.cacheStatsLine().find(
                  "3 misses, 3 stored; simulation jobs executed: 3"),
              std::string::npos)
        << first.cacheStatsLine();

    Engine warm(EngineConfig{.jobs = 2, .cacheDir = dir});
    ResultSet second = warm.run(makeReq());
    ASSERT_TRUE(second.ok()) << second.error();
    EXPECT_NE(second.cacheStatsLine().find(
                  "3 hits, 0 misses, 0 stored; simulation jobs"
                  " executed: 0"),
              std::string::npos)
        << second.cacheStatsLine();
    EXPECT_EQ(render(first), render(second));
}

TEST(Engine, SharedEngineReportsPerRequestCacheDeltas)
{
    // One long-lived engine (the canond model) serving sequential
    // requests: each ResultSet's cache line must be that request's
    // own delta, not the engine's accumulated totals -- the second
    // run below would otherwise report the first run's misses and
    // stores as its own.
    const std::string dir = scratchDir("engine_delta") + "cache";
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.3,0.5,0.7");

    Engine shared(EngineConfig{.jobs = 2, .cacheDir = dir});
    ResultSet first = shared.run(req);
    ASSERT_TRUE(first.ok()) << first.error();
    EXPECT_NE(first.cacheStatsLine().find(
                  "0 hits, 3 misses, 3 stored; simulation jobs"
                  " executed: 3"),
              std::string::npos)
        << first.cacheStatsLine();

    ResultSet second = shared.run(req);
    ASSERT_TRUE(second.ok()) << second.error();
    EXPECT_NE(second.cacheStatsLine().find(
                  "3 hits, 0 misses, 0 stored; simulation jobs"
                  " executed: 0"),
              std::string::npos)
        << second.cacheStatsLine();

    // The engine-lifetime totals still accumulate across both runs.
    EXPECT_NE(shared.cacheStatsLine().find("3 hits, 3 misses"),
              std::string::npos)
        << shared.cacheStatsLine();
}

TEST(Engine, CancelTokenSkipsRemainingScenarios)
{
    // jobs=1 runs the expansion inline in index order, so a token
    // cancelled from the first scenario's callback deterministically
    // skips the remaining four.
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.1,0.3,0.5,0.7,0.9");

    Engine eng(EngineConfig{.jobs = 1});
    runner::CancelToken token;
    std::size_t streamed = 0;
    ResultSet rs = eng.run(
        req,
        [&](const runner::ScenarioResult &) {
            ++streamed;
            token.cancel();
        },
        &token);
    ASSERT_TRUE(rs.ok()) << rs.error();
    ASSERT_EQ(rs.size(), 5u);
    EXPECT_EQ(streamed, 5u); // cancelled results still stream
    EXPECT_EQ(rs.cancelledCount(), 4u);
    EXPECT_EQ(rs.failureCount(), 4u);
    EXPECT_TRUE(rs.scenarios()[0].error.empty());
    for (std::size_t i = 1; i < rs.size(); ++i) {
        EXPECT_TRUE(rs.scenarios()[i].cancelled()) << i;
        EXPECT_EQ(rs.scenarios()[i].error, runner::kCancelledError);
    }
}

TEST(Engine, CancelledScenariosNeverTouchTheCache)
{
    // A cancelled job must not probe, count, or store: the cache
    // line for the run reports only the one scenario that executed.
    const std::string dir = scratchDir("engine_cancel_cache")
                            + "cache";
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.2,0.4,0.6");

    Engine eng(EngineConfig{.jobs = 1, .cacheDir = dir});
    runner::CancelToken token;
    ResultSet rs = eng.run(
        req,
        [&](const runner::ScenarioResult &) { token.cancel(); },
        &token);
    ASSERT_TRUE(rs.ok()) << rs.error();
    EXPECT_EQ(rs.cancelledCount(), 2u);
    EXPECT_NE(rs.cacheStatsLine().find(
                  "0 hits, 1 misses, 1 stored; simulation jobs"
                  " executed: 1"),
              std::string::npos)
        << rs.cacheStatsLine();
}

TEST(Engine, PlanForecastsTheCache)
{
    const std::string dir = scratchDir("engine_plan") + "cache";
    ScenarioRequest req;
    req.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.3,0.7");

    // Uncached engine: every scenario always executes.
    Engine uncached(EngineConfig{.jobs = 1});
    auto plans = uncached.plan(req);
    ASSERT_EQ(plans.size(), 2u);
    for (const auto &p : plans)
        EXPECT_EQ(p.forecast, ScenarioPlan::Forecast::Uncached);

    // Cold cache: all misses, and planning must not simulate, count,
    // or store anything.
    Engine eng(EngineConfig{.jobs = 1, .cacheDir = dir});
    plans = eng.plan(req);
    ASSERT_EQ(plans.size(), 2u);
    for (const auto &p : plans) {
        EXPECT_EQ(p.forecast, ScenarioPlan::Forecast::Miss);
        EXPECT_FALSE(p.key.canonical.empty());
    }
    EXPECT_NE(eng.cacheStatsLine().find("0 hits, 0 misses, 0 stored"),
              std::string::npos);

    // Warm cache: all hits. Refresh mode still executes everything.
    ASSERT_TRUE(eng.run(req).ok());
    for (const auto &p : eng.plan(req))
        EXPECT_EQ(p.forecast, ScenarioPlan::Forecast::Hit);
    Engine refresh(EngineConfig{.jobs = 1,
                                .cacheDir = dir,
                                .cacheMode = cache::Mode::Refresh});
    for (const auto &p : refresh.plan(req))
        EXPECT_EQ(p.forecast, ScenarioPlan::Forecast::Miss);
}

TEST(Engine, DryRunCliSimulatesNothing)
{
    const std::string dir = scratchDir("engine_dryrun") + "cache";
    auto res = parse({"--workload", "spmm", "--m", "64", "--k", "64",
                      "--n", "16", "--sweep", "sparsity=0.3,0.7",
                      "--cache-dir", dir, "--dry-run"});
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_TRUE(res.options.dryRun);

    std::ostringstream out, err;
    EXPECT_EQ(cli::runScenario(res.options, out, err), 0);
    EXPECT_NE(out.str().find("canonsim dry-run: 2 scenarios"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("dry-run forecast: 0 hits, 2 misses;"
                             " simulation jobs to execute: 2"),
              std::string::npos)
        << out.str();

    // Nothing was simulated or stored: the cache directory is empty.
    std::size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 0u);

    // After a real run the same dry-run forecasts a fully warm pass.
    auto run = parse({"--workload", "spmm", "--m", "64", "--k", "64",
                      "--n", "16", "--sweep", "sparsity=0.3,0.7",
                      "--cache-dir", dir});
    ASSERT_TRUE(run.ok);
    std::ostringstream rout, rerr;
    ASSERT_EQ(cli::runScenario(run.options, rout, rerr), 0);
    std::ostringstream wout, werr;
    EXPECT_EQ(cli::runScenario(res.options, wout, werr), 0);
    EXPECT_NE(wout.str().find("dry-run forecast: 2 hits, 0 misses;"
                              " simulation jobs to execute: 0"),
              std::string::npos)
        << wout.str();
}

TEST(Engine, PayloadBatchRoundTripsThroughTheCache)
{
    const std::string dir = scratchDir("engine_payload") + "cache";
    std::atomic<int> computed{0};
    auto makeBatch = [&computed] {
        std::vector<PayloadJob> batch;
        for (int i = 0; i < 4; ++i)
            batch.push_back({cache::figureKey("engine_test", "t",
                                              "i=" +
                                                  std::to_string(i)),
                             [&computed, i] {
                                 ++computed;
                                 return "payload-" +
                                        std::to_string(i);
                             }});
        return batch;
    };

    Engine eng(EngineConfig{.jobs = 2, .cacheDir = dir});
    auto first = eng.runPayloadBatch(makeBatch());
    ASSERT_EQ(first.size(), 4u);
    EXPECT_EQ(computed.load(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(first[static_cast<std::size_t>(i)],
                  "payload-" + std::to_string(i));

    // Warm: the payloads come back bit-exact with zero computation.
    Engine warm(EngineConfig{.jobs = 2, .cacheDir = dir});
    auto second = warm.runPayloadBatch(makeBatch());
    EXPECT_EQ(computed.load(), 4);
    EXPECT_EQ(first, second);
}

// ---- the introspection registry ---------------------------------------

TEST(Registry, WorkloadsDeriveFromTheRelevanceMatrix)
{
    const auto &reg = workloadRegistry();
    ASSERT_EQ(reg.size(), 5u);
    for (const auto &info : reg) {
        EXPECT_EQ(info.name, cli::workloadName(info.workload));
        cli::Options opt;
        opt.workload = info.workload;
        EXPECT_EQ(info.options, cli::relevantScenarioKeys(opt))
            << info.name;
    }
}

TEST(Registry, ModelsDeriveFromTheModelRegistry)
{
    const auto models = modelRegistry();
    ASSERT_EQ(models.size(), knownModelNames().size());
    for (std::size_t i = 0; i < models.size(); ++i) {
        EXPECT_EQ(models[i].name, knownModelNames()[i]);
        cli::Options opt;
        opt.model = models[i].name;
        EXPECT_EQ(models[i].options, cli::relevantScenarioKeys(opt));
    }
}

TEST(Registry, SweepableKeysRoundTripThroughTheGrammar)
{
    // The no-drift gate: every advertised key is accepted by the
    // option grammar (its own canonical value round-trips), and the
    // grammar accepts nothing the registry does not advertise --
    // every relevance-matrix key and every fabric key is advertised.
    const auto keys = sweepableOptionKeys();
    for (const auto &key : keys) {
        cli::Options opt;
        const std::string value = cli::optionValueText(opt, key);
        EXPECT_TRUE(
            cli::applyScenarioOption(opt, key, value).empty())
            << key << "=" << value;
    }

    cli::Options opt;
    EXPECT_FALSE(
        cli::applyScenarioOption(opt, "frobnicate", "1").empty());

    auto advertised = [&keys](const std::string &key) {
        return std::find(keys.begin(), keys.end(), key) != keys.end();
    };
    for (const auto &info : workloadRegistry())
        for (const auto &key : info.options)
            EXPECT_TRUE(advertised(key)) << key;
    for (const auto &model : modelRegistry())
        for (const auto &key : model.options)
            EXPECT_TRUE(advertised(key)) << key;
    for (const auto &key : cli::fabricOptionKeys())
        EXPECT_TRUE(advertised(key)) << key;
}

TEST(Registry, ListTextNamesEverythingRunnable)
{
    const std::string text = listText();
    for (const auto &info : workloadRegistry())
        EXPECT_NE(text.find(info.name), std::string::npos)
            << info.name;
    for (const auto &model : modelRegistry())
        EXPECT_NE(text.find(model.name), std::string::npos)
            << model.name;
    for (const auto &arch : archRegistry())
        EXPECT_NE(text.find(arch), std::string::npos) << arch;
    for (const auto &key : sweepableOptionKeys())
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

} // namespace
} // namespace engine
} // namespace canon
