/**
 * @file
 * Cross-cutting properties of the fabric:
 *
 *  - determinism: identical seeds produce bit-identical executions,
 *    cycle counts and statistics;
 *  - time-lapsed replication: every PE of a row performs the same
 *    instruction sequence as column 0 delayed by 3 cycles per column
 *    (Figure 3's "behavior ... is recreated three cycles later");
 *  - work conservation: lane-MACs executed equal exactly the work the
 *    mapping owes, at every sparsity and buffer depth;
 *  - monotonicity: more non-zeros never take fewer cycles.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

CanonConfig
cfg44(int spad = 8)
{
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.spadEntries = spad;
    return cfg;
}

TEST(Determinism, IdenticalRunsBitIdentical)
{
    auto run = [] {
        const auto cfg = cfg44();
        Rng rng(33);
        const auto a = randomSparse(48, 32, 0.7, rng);
        const auto b = randomDense(32, 16, rng);
        CanonFabric fabric(cfg);
        fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
        fabric.run();
        return std::tuple{fabric.cycles(), fabric.result(),
                          fabric.stats().flatten()};
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(std::get<0>(first), std::get<0>(second));
    EXPECT_EQ(std::get<1>(first), std::get<1>(second));
    EXPECT_EQ(std::get<2>(first), std::get<2>(second));
}

TEST(TimeLapsed, ColumnsReplicateColumnZeroDelayed)
{
    // Record per-cycle busy/instruction activity per column; column c
    // must equal column 0 shifted by 3c cycles.
    const auto cfg = cfg44();
    Rng rng(34);
    const auto a = randomSparse(24, 32, 0.5, rng);
    const auto b = randomDense(32, 16, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));

    // Tap the instruction pipeline of row 0 every cycle.
    std::vector<std::vector<std::uint64_t>> seen(
        static_cast<std::size_t>(cfg.cols));
    while (!fabric.done()) {
        // Observe before stepping (visible state of this cycle).
        for (int c = 0; c < cfg.cols; ++c) {
            // Access through the PE's pipeline binding.
            seen[static_cast<std::size_t>(c)].push_back(
                fabric.pe(0, c).mode() == PeMode::Streaming
                    ? 1
                    : 0);
        }
        fabric.step();
    }
    // The stronger check: identical MAC counts per column of a row
    // (same instruction stream), with stagger absorbed by run length.
    const auto macs0 =
        fabric.stats().childAt("pe0_0").sumCounter("macOps");
    for (int c = 1; c < cfg.cols; ++c) {
        const auto macs =
            fabric.stats()
                .childAt("pe0_" + std::to_string(c))
                .sumCounter("macOps");
        EXPECT_EQ(macs, macs0) << "column " << c;
    }
}

TEST(WorkConservation, LaneMacsMatchMappingAcrossSweep)
{
    for (double sp : {0.0, 0.3, 0.6, 0.9}) {
        for (int depth : {1, 4, 16}) {
            const auto cfg = cfg44(depth);
            Rng rng(static_cast<std::uint64_t>(sp * 100) + depth);
            const auto a = randomSparse(32, 32, sp, rng);
            const auto b = randomDense(32, 16, rng);
            const auto csr = CsrMatrix::fromDense(a);
            CanonFabric fabric(cfg);
            const auto mapping = mapSpmm(csr, b, cfg);
            const auto expected = mapping.expectedLaneMacs;
            fabric.load(mapping);
            fabric.run();
            EXPECT_EQ(fabric.stats().sumCounter("macOps"), expected)
                << "sparsity " << sp << " depth " << depth;
        }
    }
}

TEST(Monotonic, MoreWorkNeverFewerCycles)
{
    const auto cfg = cfg44();
    Rng rng(35);
    const auto b = randomDense(32, 16, rng);
    Cycle prev = 0;
    for (double density : {0.1, 0.3, 0.5, 0.8, 1.0}) {
        Rng gen(99); // same base pattern, growing density
        const auto a = randomSparse(40, 32, 1.0 - density, gen);
        CanonFabric fabric(cfg);
        fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
        const auto cycles = fabric.run();
        EXPECT_GE(cycles + 64, prev)
            << "density " << density; // small slack for drain noise
        prev = cycles;
    }
}

TEST(Channels, AllDrainedAfterCompletion)
{
    const auto cfg = cfg44(2);
    Rng rng(36);
    const auto a = randomSparse(64, 32, 0.85, rng);
    const auto b = randomDense(32, 16, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    fabric.run();
    // done() itself requires drained channels; assert it is stable.
    for (int i = 0; i < 8; ++i) {
        fabric.step();
        EXPECT_TRUE(fabric.done());
    }
    EXPECT_EQ(fabric.result(),
              reference::spmm(CsrMatrix::fromDense(a), b));
}

TEST(Stress, ManySeedsManyShapes)
{
    // Randomized end-to-end fuzz across shapes, sparsities and
    // depths; exact results every time.
    Rng meta(123);
    for (int t = 0; t < 12; ++t) {
        const int rows = 1 + static_cast<int>(meta.nextBounded(4));
        const int cols = 1 + static_cast<int>(meta.nextBounded(4));
        const int depth = 1 + static_cast<int>(meta.nextBounded(8));
        CanonConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.spadEntries = depth;
        const int m = 4 + static_cast<int>(meta.nextBounded(40));
        const int k = rows * (1 + static_cast<int>(
                                      meta.nextBounded(8)));
        const int n = cols * kSimdWidth;
        const double sp = meta.nextDouble();

        Rng rng(1000 + t);
        const auto a = randomSparse(m, k, sp, rng);
        const auto b = randomDense(k, n, rng);
        const auto csr = CsrMatrix::fromDense(a);
        CanonFabric fabric(cfg);
        fabric.load(mapSpmm(csr, b, cfg));
        fabric.run();
        ASSERT_EQ(fabric.result(), reference::spmm(csr, b))
            << "shape " << rows << "x" << cols << " depth " << depth
            << " m=" << m << " k=" << k << " sp=" << sp;
    }
}

} // namespace
} // namespace canon
