/**
 * @file
 * SDDMM on the Canon fabric: output-side sparsity with A streamed
 * from the north edge, prefetch-window buffering, and east-edge lane
 * reduction -- checked exactly against the reference for unstructured
 * and sliding-window masks.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/sddmm.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

CanonConfig
sddmmConfig(int rows = 4, int cols = 4, int spad = 4)
{
    CanonConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.spadEntries = spad;
    return cfg;
}

WordMatrix
runSddmm(const CsrMatrix &mask, const DenseMatrix &a,
         const DenseMatrix &b, const CanonConfig &cfg)
{
    CanonFabric fabric(cfg);
    fabric.load(mapSddmm(mask, a, b, cfg));
    fabric.run();
    return fabric.result();
}

TEST(CanonSddmm, SingleElementMask)
{
    const auto cfg = sddmmConfig();
    Rng rng(1);
    const auto a = randomDense(4, 16, rng);
    const auto b = randomDense(16, 8, rng);
    CsrMatrix mask(4, 8);
    mask.append(2, 5, 1);

    EXPECT_EQ(runSddmm(mask, a, b, cfg), reference::sddmm(mask, a, b));
}

TEST(CanonSddmm, FullMaskEqualsGemm)
{
    const auto cfg = sddmmConfig();
    Rng rng(2);
    const auto a = randomDense(8, 16, rng);
    const auto b = randomDense(16, 8, rng);
    const auto mask = randomMask(8, 8, 0.0, rng); // fully dense mask

    const auto c = runSddmm(mask, a, b, cfg);
    EXPECT_EQ(c, reference::gemm(a, b));
}

TEST(CanonSddmm, EmptyMask)
{
    const auto cfg = sddmmConfig();
    Rng rng(3);
    const auto a = randomDense(6, 16, rng);
    const auto b = randomDense(16, 8, rng);
    const CsrMatrix mask(6, 8);

    EXPECT_EQ(runSddmm(mask, a, b, cfg), WordMatrix(6, 8));
}

struct SddmmParam
{
    double mask_sparsity;
    int spad;
    int m;
    std::uint64_t seed;
};

class SddmmSweep : public ::testing::TestWithParam<SddmmParam>
{
};

TEST_P(SddmmSweep, MatchesReference)
{
    const auto p = GetParam();
    const auto cfg = sddmmConfig(4, 4, p.spad);
    Rng rng(p.seed);
    const auto a = randomDense(p.m, 16, rng);
    const auto b = randomDense(16, 16, rng);
    const auto mask = randomMask(p.m, 16, p.mask_sparsity, rng);

    EXPECT_EQ(runSddmm(mask, a, b, cfg), reference::sddmm(mask, a, b))
        << "mask sparsity " << p.mask_sparsity << " spad " << p.spad;
}

INSTANTIATE_TEST_SUITE_P(
    MaskSparsity, SddmmSweep,
    ::testing::Values(SddmmParam{0.1, 4, 16, 50},
                      SddmmParam{0.3, 4, 16, 51},
                      SddmmParam{0.5, 4, 24, 52},
                      SddmmParam{0.7, 4, 24, 53},
                      SddmmParam{0.9, 4, 32, 54},
                      SddmmParam{0.95, 4, 48, 55}));

INSTANTIATE_TEST_SUITE_P(
    PrefetchWindows, SddmmSweep,
    ::testing::Values(SddmmParam{0.6, 1, 24, 60},
                      SddmmParam{0.6, 2, 24, 61},
                      SddmmParam{0.6, 8, 24, 62},
                      SddmmParam{0.6, 16, 24, 63},
                      SddmmParam{0.6, 32, 24, 64}));

TEST(CanonSddmm, SlidingWindowMask)
{
    const auto cfg = sddmmConfig();
    Rng rng(70);
    const int seq = 32;
    const auto a = randomDense(seq, 16, rng);
    const auto b = randomDense(16, seq, rng);
    const auto mask = slidingWindowMask(seq, seq, 8);

    EXPECT_EQ(runSddmm(mask, a, b, cfg), reference::sddmm(mask, a, b));
}

TEST(CanonSddmm, PaperConfig)
{
    const auto cfg = CanonConfig::paper();
    Rng rng(71);
    const int m = 40, k = 32, n = 32;
    const auto a = randomDense(m, k, rng);
    const auto b = randomDense(k, n, rng);
    const auto mask = randomMask(m, n, 0.7, rng);

    EXPECT_EQ(runSddmm(mask, a, b, cfg), reference::sddmm(mask, a, b));
}

TEST(CanonSddmm, DeeperWindowNoSlower)
{
    // The prefetch window absorbs inter-row imbalance: a deeper
    // scratchpad should never increase cycles on a skewed mask.
    Rng rng(72);
    const int m = 64;
    const auto a = randomDense(m, 16, rng);
    const auto b = randomDense(16, 16, rng);
    // Heavily skewed mask: one row block owns most of the work.
    CsrMatrix mask(m, 16);
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < 16; ++j) {
            const bool heavy = j < 4; // block of PE row 0
            if (heavy || rng.nextBool(0.1))
                mask.append(i, j, 1);
        }
    }

    auto cycles_at = [&](int spad) {
        const auto cfg = sddmmConfig(4, 4, spad);
        CanonFabric fabric(cfg);
        fabric.load(mapSddmm(mask, a, b, cfg));
        return fabric.run();
    };

    EXPECT_LE(cycles_at(16), cycles_at(1));
}

} // namespace
} // namespace canon
