/**
 * @file
 * Sparse substrate tests: container invariants, generator structure
 * properties (parameterized sweeps), and reference-kernel identities
 * (SpMM == GEMM on densified input, SDDMM == masked GEMM).
 */

#include <gtest/gtest.h>

#include "sparse/generate.hh"
#include "sparse/preprocess.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

TEST(Matrix, DenseBasics)
{
    DenseMatrix m(3, 4);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.countNonZero(), 0u);
    m.at(2, 3) = 5;
    EXPECT_EQ(m.countNonZero(), 1u);
    EXPECT_NEAR(m.sparsity(), 11.0 / 12.0, 1e-12);
    EXPECT_THROW(m.at(3, 0), PanicError);
    EXPECT_THROW(m.at(0, 4), PanicError);
}

TEST(Matrix, CsrRoundTrip)
{
    Rng rng(1);
    const auto d = randomSparse(13, 17, 0.6, rng);
    const auto csr = CsrMatrix::fromDense(d);
    EXPECT_EQ(csr.nnz(), d.countNonZero());
    EXPECT_EQ(csr.toDense(), d);
}

TEST(Matrix, CsrAppendOrderEnforced)
{
    CsrMatrix m(4, 4);
    m.append(1, 2, 5);
    EXPECT_THROW(m.append(0, 0, 1), PanicError); // row went backwards
    EXPECT_THROW(m.append(1, 2, 1), PanicError); // column not ascending
    EXPECT_THROW(m.append(1, 1, 1), PanicError);
    EXPECT_NO_THROW(m.append(1, 3, 1));
    EXPECT_NO_THROW(m.append(3, 0, 1)); // skipping rows is fine
    EXPECT_EQ(m.rowNnz(1), 2);
    EXPECT_EQ(m.rowNnz(2), 0);
    EXPECT_EQ(m.rowNnz(3), 1);
}

TEST(Matrix, CsrRejectsExplicitZero)
{
    CsrMatrix m(2, 2);
    EXPECT_THROW(m.append(0, 0, 0), PanicError);
}

struct GenParam
{
    int rows, cols;
    double sparsity;
    std::uint64_t seed;
};

class SparsitySweep : public ::testing::TestWithParam<GenParam>
{
};

TEST_P(SparsitySweep, DensityNearTarget)
{
    const auto p = GetParam();
    Rng rng(p.seed);
    const auto m = randomSparse(p.rows, p.cols, p.sparsity, rng);
    EXPECT_NEAR(m.sparsity(), p.sparsity, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Levels, SparsitySweep,
    ::testing::Values(GenParam{64, 64, 0.1, 1}, GenParam{64, 64, 0.3, 2},
                      GenParam{64, 64, 0.5, 3}, GenParam{64, 64, 0.7, 4},
                      GenParam{64, 64, 0.9, 5},
                      GenParam{128, 32, 0.95, 6}));

TEST(Generate, ExactNnz)
{
    Rng rng(7);
    const auto m = randomSparseExact(32, 32, 100, rng);
    EXPECT_EQ(m.countNonZero(), 100u);
}

struct NmGenParam
{
    int n, m;
    std::uint64_t seed;
};

class NmStructure : public ::testing::TestWithParam<NmGenParam>
{
};

TEST_P(NmStructure, ExactPerGroup)
{
    const auto p = GetParam();
    Rng rng(p.seed);
    const auto mat = nmStructured(16, 32, p.n, p.m, rng);
    EXPECT_TRUE(conformsToNm(mat, p.n, p.m));
    // The generator produces *exactly* n per group.
    EXPECT_EQ(mat.countNonZero(),
              static_cast<std::size_t>(16 * (32 / p.m) * p.n));
}

INSTANTIATE_TEST_SUITE_P(Patterns, NmStructure,
                         ::testing::Values(NmGenParam{2, 4, 1},
                                           NmGenParam{2, 8, 2},
                                           NmGenParam{1, 4, 3},
                                           NmGenParam{4, 8, 4},
                                           NmGenParam{1, 2, 5}));

TEST(Generate, ConformsRejectsViolations)
{
    DenseMatrix m(1, 8);
    m.at(0, 0) = 1;
    m.at(0, 1) = 1;
    m.at(0, 2) = 1; // three in the first group of 4
    EXPECT_FALSE(conformsToNm(m, 2, 4));
    EXPECT_TRUE(conformsToNm(m, 3, 4));
}

TEST(Generate, SlidingWindowBand)
{
    const auto mask = slidingWindowMask(16, 16, 4);
    for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
            const bool live = std::abs(i - j) <= 2;
            EXPECT_EQ(mask.toDense().at(i, j) != 0, live)
                << i << "," << j;
        }
    }
}

TEST(Generate, SlidingWindowRectangular)
{
    const auto mask = slidingWindowMask(8, 32, 8);
    EXPECT_EQ(mask.rows(), 8);
    EXPECT_EQ(mask.cols(), 32);
    // Centres scale with the key length.
    EXPECT_GT(mask.nnz(), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(mask.rowNnz(i), 0);
}

TEST(Reference, SpmmEqualsGemmOnDensified)
{
    Rng rng(20);
    const auto a = randomSparse(9, 12, 0.5, rng);
    const auto b = randomDense(12, 7, rng);
    EXPECT_EQ(reference::spmm(CsrMatrix::fromDense(a), b),
              reference::gemm(a, b));
}

TEST(Reference, SddmmEqualsMaskedGemm)
{
    Rng rng(21);
    const auto a = randomDense(6, 10, rng);
    const auto b = randomDense(10, 8, rng);
    const auto mask = randomMask(6, 8, 0.5, rng);
    const auto full = reference::gemm(a, b);
    const auto sampled = reference::sddmm(mask, a, b);
    const auto mask_d = mask.toDense();
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 8; ++j)
            EXPECT_EQ(sampled.at(i, j),
                      mask_d.at(i, j) != 0 ? full.at(i, j) : 0);
}

TEST(Reference, ShapeChecks)
{
    const DenseMatrix a(2, 3), b(4, 2);
    EXPECT_THROW(reference::gemm(a, b), PanicError);
}

TEST(Preprocess, PermutationIsBijective)
{
    Rng rng(30);
    const auto a =
        CsrMatrix::fromDense(randomSparse(33, 16, 0.6, rng));
    const auto p = balancedRowOrder(a);
    std::vector<bool> seen(33, false);
    for (int r = 0; r < 33; ++r) {
        const int o = p.oldRow(r);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, 33);
        EXPECT_FALSE(seen[static_cast<std::size_t>(o)]);
        seen[static_cast<std::size_t>(o)] = true;
    }
}

TEST(Preprocess, SnakeOrderBalancesWindows)
{
    // Any contiguous window of the balanced order should carry close
    // to the average work even when the input is heavily skewed.
    Rng rng(31);
    const auto a = CsrMatrix::fromDense(
        randomSparseBimodal(64, 64, 0.1, 0.95, rng));
    const auto p = balancedRowOrder(a);
    const auto bal = permuteRows(a, p);

    const int window = 8;
    const double avg =
        static_cast<double>(a.nnz()) / (64 / window);
    for (int w = 0; w < 64 / window; ++w) {
        std::int64_t work = 0;
        for (int r = 0; r < window; ++r)
            work += bal.rowNnz(w * window + r);
        EXPECT_NEAR(static_cast<double>(work), avg, avg * 0.5)
            << "window " << w;
    }
}

TEST(Preprocess, UnpermuteRestoresReference)
{
    Rng rng(32);
    const auto a_dense = randomSparse(20, 16, 0.5, rng);
    const auto b = randomDense(16, 8, rng);
    const auto a = CsrMatrix::fromDense(a_dense);
    const auto p = balancedRowOrder(a);
    const auto permuted = permuteRows(a, p);

    const auto c_perm = reference::spmm(permuted, b);
    EXPECT_EQ(p.unpermute(c_perm), reference::spmm(a, b));
}

TEST(Preprocess, BimodalGeneratorAlternates)
{
    Rng rng(33);
    const auto m = randomSparseBimodal(32, 200, 0.1, 0.9, rng);
    // Even rows dense-ish, odd rows sparse.
    double even = 0.0, odd = 0.0;
    for (int r = 0; r < 32; r += 2)
        even += static_cast<double>(
            CsrMatrix::fromDense(m).rowNnz(r));
    for (int r = 1; r < 32; r += 2)
        odd += static_cast<double>(CsrMatrix::fromDense(m).rowNnz(r));
    EXPECT_GT(even, odd * 4);
}

} // namespace
} // namespace canon
