/**
 * @file
 * Unit tests for the common substrate: logging discipline,
 * deterministic RNG, bit-slice helpers, statistics tree and the
 * bench table printer.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace canon
{
namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "not reached"));
    EXPECT_THROW(fatalIf(true, "reached"), FatalError);
}

TEST(Logging, PanicIfConditional)
{
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "bad"), PanicError);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(8);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(10);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleDistinctSorted)
{
    Rng r(11);
    const auto s = r.sample(100, 20);
    ASSERT_EQ(s.size(), 20u);
    for (std::size_t i = 1; i < s.size(); ++i)
        EXPECT_LT(s[i - 1], s[i]);
}

TEST(Bitfield, MaskAndBits)
{
    EXPECT_EQ(mask(3, 0), 0xFull);
    EXPECT_EQ(mask(7, 4), 0xF0ull);
    EXPECT_EQ(bits(0xABCD, 15, 12), 0xAull);
    EXPECT_EQ(bits(0xABCD, 3, 0), 0xDull);
}

TEST(Bitfield, InsertRoundTrip)
{
    std::uint64_t w = 0;
    w = insertBits(w, 11, 4, 0x5A);
    EXPECT_EQ(bits(w, 11, 4), 0x5Aull);
    EXPECT_THROW(insertBits(0, 3, 0, 0x1F), PanicError);
}

TEST(Bitfield, Helpers)
{
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_EQ(divCeil(10, 4), 3u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(bitsFor(1024), 10);
    EXPECT_EQ(bitsFor(1025), 11);
}

TEST(Stats, CountersAndSums)
{
    StatGroup root("root");
    auto &c = root.counter("events");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);

    auto &child = root.child("pe0");
    child.counter("events") += 7;
    EXPECT_EQ(root.sumCounter("events"), 12u);
}

TEST(Stats, FlattenPaths)
{
    StatGroup root("root");
    root.counter("top") += 1;
    auto &a = root.child("a");
    a.counter("x") += 2;
    a.child("b").counter("y") += 3;
    const auto flat = root.flatten();
    EXPECT_EQ(flat.at("top"), 1u);
    EXPECT_EQ(flat.at("a.x"), 2u);
    EXPECT_EQ(flat.at("a.b.y"), 3u);
    EXPECT_EQ(&root.childAt("a"), &a);
}

TEST(Stats, RegistrationCollisionsPanic)
{
    // One component's stats must never silently merge into (or
    // shadow) another's in the flat view: duplicate child names,
    // counter/child name collisions, and '.'-forged paths all panic
    // at registration.
    StatGroup root("root");
    root.child("a").counter("x") += 1;
    EXPECT_THROW(root.child("a"), PanicError);
    EXPECT_THROW(root.counter("a"), PanicError);
    root.counter("n") += 1;
    EXPECT_THROW(root.child("n"), PanicError);
    EXPECT_THROW(root.counter("forged.path"), PanicError);
    EXPECT_THROW(root.distribution("forged.path"), PanicError);
    EXPECT_THROW(root.child("forged.path"), PanicError);
    EXPECT_THROW(root.childAt("missing"), PanicError);
    // Fetching an existing counter stays cheap and panic-free.
    EXPECT_EQ(root.counter("n").value(), 1u);
}

TEST(Stats, VisitCountersWalksFlatPathsInOrder)
{
    StatGroup root("root");
    root.counter("top") += 1;
    auto &a = root.child("a");
    a.counter("x") += 2;
    a.child("b").counter("y") += 3;
    std::vector<std::string> paths;
    root.visitCounters(
        [&](const std::string &path, const Counter &ctr) {
            paths.push_back(path + "=" +
                            std::to_string(ctr.value()));
        });
    const std::vector<std::string> expect = {"top=1", "a.x=2",
                                             "a.b.y=3"};
    EXPECT_EQ(paths, expect);
}

TEST(Stats, ResetAll)
{
    StatGroup root("root");
    root.counter("n") += 9;
    root.child("c").counter("n") += 9;
    root.resetAll();
    EXPECT_EQ(root.sumCounter("n"), 0u);
}

TEST(Stats, Distribution)
{
    StatGroup root("root");
    auto &d = root.distribution("lat");
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Table, FormattingHelpers)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(Table::fmtInt(12), "12");
}

TEST(Table, RowWidthEnforced)
{
    Table t("demo");
    t.header({"a", "b"});
    EXPECT_NO_THROW(t.addRow({"1", "2"}));
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

} // namespace
} // namespace canon
