/**
 * @file
 * Core-module tests: edge collectors and feeders in isolation, fabric
 * construction/config validation, kernel-mapping shape checks (the
 * fatal() error paths a user hits first), and write-coalescing
 * behaviour visible through the activity counters.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/dense_cadence.hh"
#include "kernels/sddmm.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"

namespace canon
{
namespace
{

TEST(Config, DescribeAndDerived)
{
    const auto cfg = CanonConfig::paper();
    EXPECT_EQ(cfg.numPes(), 64);
    EXPECT_EQ(cfg.numMacs(), 256);
    EXPECT_EQ(cfg.dmemBytesPerPe(), 4096u);
    EXPECT_EQ(cfg.spadBytesPerPe(), 256u);
    EXPECT_NE(cfg.describe().find("8x8"), std::string::npos);
}

TEST(Fabric, RejectsBadConfig)
{
    CanonConfig cfg;
    cfg.rows = 0;
    EXPECT_THROW(CanonFabric{cfg}, FatalError);

    CanonConfig cfg2;
    cfg2.spadEntries = 1000;
    EXPECT_THROW(CanonFabric{cfg2}, FatalError);
}

TEST(Fabric, SingleUsePerKernel)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Rng rng(1);
    const auto a = randomSparse(4, 4, 0.5, rng);
    const auto b = randomDense(4, 8, rng);
    const auto map = mapSpmm(CsrMatrix::fromDense(a), b, cfg);

    CanonFabric fabric(cfg);
    fabric.load(map);
    EXPECT_THROW(fabric.load(map), FatalError);
}

TEST(Fabric, RunWithoutLoadFails)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    CanonFabric fabric(cfg);
    EXPECT_THROW(fabric.run(), FatalError);
}

TEST(MappingErrors, SpmmShapeChecks)
{
    const auto cfg = CanonConfig::paper(); // needs N == 32, K % 8 == 0
    Rng rng(2);
    const auto b_bad_n = randomDense(64, 48, rng);
    const auto b_bad_k = randomDense(63, 32, rng);
    const auto a64 = CsrMatrix::fromDense(randomSparse(8, 64, 0.5, rng));
    const auto a63 = CsrMatrix::fromDense(randomSparse(8, 63, 0.5, rng));

    EXPECT_THROW(mapSpmm(a64, b_bad_n, cfg), FatalError);
    EXPECT_THROW(mapSpmm(a63, b_bad_k, cfg), FatalError);
    // Mismatched inner dimension.
    const auto b_ok = randomDense(32, 32, rng);
    EXPECT_THROW(mapSpmm(a64, b_ok, cfg), FatalError);
}

TEST(MappingErrors, GemmRejectsZeros)
{
    const auto cfg = CanonConfig::paper();
    Rng rng(3);
    auto a = randomDense(8, 64, rng);
    a.at(0, 0) = 0;
    const auto b = randomDense(64, 32, rng);
    EXPECT_THROW(mapGemm(a, b, cfg), FatalError);
}

TEST(MappingErrors, SddmmDepthMustBePowerOfTwo)
{
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.spadEntries = 6; // not a power of two
    Rng rng(4);
    const auto a = randomDense(8, 16, rng);
    const auto b = randomDense(16, 8, rng);
    const auto mask = randomMask(8, 8, 0.5, rng);
    EXPECT_THROW(mapSddmm(mask, a, b, cfg), FatalError);
}

TEST(Collectors, SouthAccumulatesByRid)
{
    WordMatrix out(4, 8);
    MsgChannel msgs;
    DataChannel c0(8, "c0"), c1(8, "c1");
    SouthCollector col(&msgs, {&c0, &c1}, &out);

    // Two psums for the same output row must accumulate.
    auto deliver = [&](std::uint16_t rid, Word base) {
        msgs.push({kMsgPsum, rid});
        for (int i = 0; i < 8; ++i)
            msgs.tickCommit();
        c0.push(Vec4::splat(base));
        c1.push(Vec4::splat(base + 1));
        c0.commit();
        c1.commit();
        for (int i = 0; i < 2; ++i) {
            col.tickCompute();
            msgs.tickCommit();
            c0.commit();
            c1.commit();
        }
    };
    deliver(2, 10);
    deliver(2, 100);
    EXPECT_TRUE(col.pendingEmpty());
    EXPECT_EQ(out.at(2, 0), 110);
    EXPECT_EQ(out.at(2, 4), 112);
    EXPECT_EQ(out.at(1, 0), 0);
}

TEST(Collectors, SouthPanicsOnUnannouncedVector)
{
    WordMatrix out(2, 4);
    MsgChannel msgs;
    DataChannel c0(8, "c0");
    SouthCollector col(&msgs, {&c0}, &out);
    c0.push(Vec4::splat(1));
    c0.commit();
    EXPECT_THROW(col.tickCompute(), PanicError);
}

TEST(Collectors, EastReducesLanes)
{
    WordMatrix out(4, 8);
    EastCollector col(&out, 2);
    DataChannel ch(8, "e");
    std::deque<OutRec> recs;
    col.addRow(1, &ch, &recs); // row 1 covers output cols [2, 4)

    recs.push_back({3, 1}); // m=3, local n=1 -> col 3
    ch.push(Vec4{{1, 2, 3, 4}});
    ch.commit();
    col.tickCompute();
    ch.commit();
    EXPECT_EQ(out.at(3, 3), 10);
    EXPECT_TRUE(col.pendingEmpty());
}

TEST(Collectors, NorthFeederSynchronizedSteps)
{
    DataChannel c0(8, "n0"), c1(8, "n1");
    MsgChannel announce;
    NorthFeeder feeder({&c0, &c1}, &announce);
    feeder.setFeed({{Vec4::splat(1), Vec4::splat(2)},
                    {Vec4::splat(3), Vec4::splat(4)}});

    feeder.tickCompute();
    c0.commit();
    c1.commit();
    announce.tickCommit();
    EXPECT_EQ(c0.front(), Vec4::splat(1));
    EXPECT_EQ(c1.front(), Vec4::splat(2));

    EXPECT_FALSE(feeder.drained());
    feeder.tickCompute();
    c0.commit();
    c1.commit();
    EXPECT_EQ(c0.size(), 2u);
    EXPECT_TRUE(feeder.drained()); // both steps delivered
}

TEST(WriteCoalescing, DenseRunsCommitOncePerRow)
{
    // A dense GEMM accumulates long register runs: the number of
    // committed register writes must be far below the MAC count.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Rng rng(5);
    const auto a = randomDense(16, 32, rng);
    const auto b = randomDense(32, 8, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();
    const auto macs = fabric.stats().sumCounter("macOps") / kSimdWidth;
    const auto reg_writes = fabric.stats().sumCounter("regWrites");
    EXPECT_LT(reg_writes, macs / 4)
        << "back-to-back accumulation should coalesce";
}

TEST(Profile, FabricExportsActivity)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Rng rng(6);
    const auto a = randomSparse(16, 16, 0.5, rng);
    const auto b = randomDense(16, 8, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    fabric.run();
    const auto p = fabric.profile("t");
    EXPECT_EQ(p.cycles, fabric.cycles());
    EXPECT_GT(p.get("laneMacs"), 0u);
    EXPECT_GT(p.get("lutLookups"), 0u);
    EXPECT_GT(p.get("instHops"), 0u);
    EXPECT_EQ(p.peCount, 4u);
}

TEST(Determinism, RegistrationShuffleLeavesResultsIdentical)
{
    // The typed tick schedule may advance partitions in any order; the
    // two-phase protocol makes that unobservable. Construct the same
    // fabric under several registration-order shuffles and require the
    // result matrix, cycle count, and every activity counter to match.
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;

    auto execute = [&](std::uint64_t shuffle_seed) {
        Rng rng(7);
        const auto a = randomSparse(16, 16, 0.5, rng);
        const auto b = randomDense(16, 16, rng);
        CanonFabric fabric(cfg, shuffle_seed);
        fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
        fabric.run();
        return std::pair{fabric.result(), fabric.profile("shuffle")};
    };

    const auto [ref_out, ref_prof] = execute(0);
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto [out, prof] = execute(seed);
        EXPECT_EQ(out, ref_out) << "seed " << seed;
        EXPECT_EQ(prof.cycles, ref_prof.cycles) << "seed " << seed;
        EXPECT_EQ(prof.activity, ref_prof.activity) << "seed " << seed;
    }
}

TEST(Determinism, ShuffleAppliesToLoadTimeComponents)
{
    // SDDMM exercises the east collector + north feeder + message sink
    // path, whose registrations happen at load() time.
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.spadEntries = 16;

    auto execute = [&](std::uint64_t shuffle_seed) {
        Rng rng(8);
        const auto a = randomDense(8, 16, rng);
        const auto b = randomDense(16, 8, rng);
        const auto mask = randomMask(8, 8, 0.5, rng);
        CanonFabric fabric(cfg, shuffle_seed);
        fabric.load(mapSddmm(mask, a, b, cfg));
        fabric.run();
        return std::pair{fabric.result(), fabric.cycles()};
    };

    const auto [ref_out, ref_cycles] = execute(0);
    for (std::uint64_t seed : {1ull, 2ull}) {
        const auto [out, cycles] = execute(seed);
        EXPECT_EQ(out, ref_out) << "seed " << seed;
        EXPECT_EQ(cycles, ref_cycles) << "seed " << seed;
    }
}

TEST(Profile, ScaleAndAccumulate)
{
    ExecutionProfile a;
    a.cycles = 100;
    a.add("laneMacs", 1000);
    ExecutionProfile b = a;
    b.accumulate(a);
    EXPECT_EQ(b.cycles, 200u);
    EXPECT_EQ(b.get("laneMacs"), 2000u);
    b.scale(0.5);
    EXPECT_EQ(b.cycles, 100u);
    EXPECT_EQ(b.get("laneMacs"), 1000u);
    EXPECT_DOUBLE_EQ(a.utilization(10), 1.0);
}

} // namespace
} // namespace canon
