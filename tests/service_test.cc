/**
 * @file
 * canon::service tests: the canon-rpc-1 frame codec (round-trips
 * under arbitrary chunking, typed rejection of oversize and unknown
 * frames, and a decoder fuzz pass that feeds random byte streams),
 * the typed message bodies, the admission policy, and end-to-end
 * daemon/client runs over a real Unix socket -- expansion-order
 * streaming, warm reruns executing zero simulation jobs, per-request
 * cache deltas for sequential clients of one shared engine,
 * byte-identical result streams for concurrent clients, quota and
 * draining rejections, cross-connection cancellation, and graceful
 * drain.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/rng.hh"
#include "service/admission.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "service/render.hh"

namespace canon
{
namespace service
{
namespace
{

/** Per-test scratch dir: ctest -j runs tests concurrently. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name + "/";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---- frame codec ------------------------------------------------------

TEST(FrameCodec, RoundTripsUnderArbitraryChunking)
{
    const std::vector<Frame> frames = {
        {MsgType::Hello, "proto=canon-rpc-1\n"},
        {MsgType::Submit, std::string(1000, 'x')},
        {MsgType::Result, ""},
        {MsgType::Done, "job=1\n"},
    };
    std::string wire;
    for (const auto &f : frames)
        wire += encodeFrame(f);

    // Every chunk size must yield the same frames: framing cannot
    // depend on how the kernel splits the stream.
    for (std::size_t chunk : {1u, 2u, 3u, 7u, 64u, 4096u}) {
        FrameDecoder dec;
        std::vector<Frame> got;
        for (std::size_t i = 0; i < wire.size(); i += chunk) {
            dec.feed(wire.data() + i,
                     std::min(chunk, wire.size() - i));
            Frame f;
            while (dec.next(f) == FrameDecoder::Status::Ready)
                got.push_back(f);
        }
        ASSERT_EQ(got.size(), frames.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            EXPECT_EQ(got[i].type, frames[i].type);
            EXPECT_EQ(got[i].payload, frames[i].payload);
        }
        EXPECT_EQ(dec.pendingBytes(), 0u);
    }
}

TEST(FrameCodec, OversizeFrameIsATypedErrorBeforeAllocation)
{
    // A hostile 4 GiB length field must stop the stream from the
    // 5-byte header alone.
    FrameDecoder dec;
    const char header[5] = {'\xff', '\xff', '\xff', '\xff',
                            static_cast<char>(MsgType::Hello)};
    dec.feed(header, sizeof(header));
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::Error);
    EXPECT_EQ(dec.error(), DecodeError::OversizeFrame);

    // A stopped decoder stays stopped: the stream cannot resync.
    dec.feed(encodeFrame({MsgType::Hello, "ok"}));
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::Error);

    // The cap itself is inclusive; one byte over trips it.
    FrameDecoder tight(16);
    tight.feed(encodeFrame({MsgType::Hello, std::string(16, 'a')}));
    EXPECT_EQ(tight.next(f), FrameDecoder::Status::Ready);
    tight.feed(encodeFrame({MsgType::Hello, std::string(17, 'a')}));
    EXPECT_EQ(tight.next(f), FrameDecoder::Status::Error);
    EXPECT_EQ(tight.error(), DecodeError::OversizeFrame);
}

TEST(FrameCodec, UnknownTypeIsATypedError)
{
    FrameDecoder dec;
    const char header[5] = {1, 0, 0, 0, 99};
    dec.feed(header, sizeof(header));
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::Error);
    EXPECT_EQ(dec.error(), DecodeError::UnknownType);
    EXPECT_FALSE(knownMsgType(99));
    EXPECT_TRUE(knownMsgType(
        static_cast<std::uint8_t>(MsgType::StatsReply)));
}

TEST(FrameCodec, FuzzedStreamsNeverCrashTheDecoder)
{
    // Random byte soup: the decoder must always land in NeedMore or
    // a typed error, never crash or buffer unboundedly past the cap.
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        FrameDecoder dec(4096);
        std::string bytes;
        const std::size_t n = rng.nextBounded(512) + 1;
        for (std::size_t i = 0; i < n; ++i)
            bytes.push_back(
                static_cast<char>(rng.nextBounded(256)));
        dec.feed(bytes);
        Frame f;
        for (int steps = 0; steps < 64; ++steps) {
            const auto s = dec.next(f);
            if (s != FrameDecoder::Status::Ready)
                break;
        }
        SUCCEED();
    }

    // Truncations of valid streams: every prefix either yields whole
    // frames then NeedMore, and never an error (truncation is not a
    // protocol violation -- the peer may just be slow).
    std::string wire;
    for (int i = 0; i < 8; ++i)
        wire += encodeFrame(
            {MsgType::Result, std::string(rng.nextBounded(64), 'r')});
    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameDecoder dec;
        dec.feed(wire.data(), cut);
        Frame f;
        FrameDecoder::Status s;
        while ((s = dec.next(f)) == FrameDecoder::Status::Ready)
            ;
        EXPECT_EQ(s, FrameDecoder::Status::NeedMore) << cut;
    }

    // Random valid frame sequences round-trip regardless of how the
    // stream is sliced.
    for (int round = 0; round < 50; ++round) {
        std::vector<Frame> frames;
        std::string stream;
        const std::size_t count = rng.nextBounded(6) + 1;
        for (std::size_t i = 0; i < count; ++i) {
            Frame f{rng.nextBool(0.5) ? MsgType::Result
                                      : MsgType::Stats,
                    std::string(rng.nextBounded(128), 'p')};
            frames.push_back(f);
            stream += encodeFrame(f);
        }
        FrameDecoder dec;
        std::size_t fed = 0, got = 0;
        Frame f;
        while (fed < stream.size()) {
            const std::size_t chunk = std::min(
                stream.size() - fed, rng.nextBounded(32) + 1);
            dec.feed(stream.data() + fed, chunk);
            fed += chunk;
            while (dec.next(f) == FrameDecoder::Status::Ready) {
                ASSERT_LT(got, frames.size());
                EXPECT_EQ(f.payload, frames[got].payload);
                ++got;
            }
        }
        EXPECT_EQ(got, frames.size());
    }
}

// ---- payload codecs ---------------------------------------------------

TEST(KvCodec, RoundTripsAndRejectsJunk)
{
    std::string error;
    const KvPairs records = {
        {"client", "alice"}, {"priority", "3"}, {"opt.m", "64"},
        {"arch", "canon"},   {"arch", "zed"}, // duplicates kept
    };
    const std::string payload = encodeKv(records, error);
    ASSERT_TRUE(error.empty()) << error;
    KvPairs back;
    ASSERT_TRUE(decodeKv(payload, back, error)) << error;
    EXPECT_EQ(back, records);

    EXPECT_TRUE(decodeKv("", back, error));
    EXPECT_TRUE(back.empty());

    EXPECT_FALSE(decodeKv("no-equals\n", back, error));
    EXPECT_FALSE(decodeKv("=value\n", back, error));
    EXPECT_FALSE(decodeKv("key=truncated", back, error));

    EXPECT_TRUE(encodeKv({{"bad=key", "v"}}, error).empty());
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(encodeKv({{"k", "line\nbreak"}}, error).empty());
}

TEST(SubmitCodec, RoundTripsAndStaysStrict)
{
    SubmitBody body;
    body.client = "alice";
    body.priority = -2;
    body.opt("workload", "spmm")
        .opt("m", "64")
        .sweep("sparsity", "0.3,0.7")
        .arch("canon")
        .arch("zed");

    std::string error;
    const std::string payload = encodeSubmit(body, error);
    ASSERT_TRUE(error.empty()) << error;

    SubmitBody back;
    ASSERT_TRUE(decodeSubmit(payload, back, error)) << error;
    EXPECT_EQ(back.client, "alice");
    EXPECT_EQ(back.priority, -2);
    ASSERT_EQ(back.entries.size(), body.entries.size());
    for (std::size_t i = 0; i < body.entries.size(); ++i) {
        EXPECT_EQ(back.entries[i].kind, body.entries[i].kind);
        EXPECT_EQ(back.entries[i].key, body.entries[i].key);
        EXPECT_EQ(back.entries[i].value, body.entries[i].value);
    }

    // Strictness: unknown records, missing identity, junk priority.
    SubmitBody out;
    EXPECT_FALSE(decodeSubmit("client=a\npriority=0\nbogus=1\n", out,
                              error));
    EXPECT_FALSE(decodeSubmit("priority=0\n", out, error));
    EXPECT_FALSE(decodeSubmit("client=a\n", out, error));
    EXPECT_FALSE(
        decodeSubmit("client=a\npriority=soon\n", out, error));
    EXPECT_FALSE(decodeSubmit("client=a\npriority=0\nopt.=x\n", out,
                              error));
}

TEST(DoneCodec, RoundTrips)
{
    DoneBody body;
    body.jobId = 42;
    body.scenarios = 9;
    body.failures = 2;
    body.cancelled = 1;
    body.cacheLine = "cache: 7 hits, 2 misses, 2 stored;"
                     " simulation jobs executed: 2";
    body.queueWaitUs = 12345;

    std::string error;
    const std::string payload = encodeDone(body, error);
    ASSERT_TRUE(error.empty()) << error;
    DoneBody back;
    ASSERT_TRUE(decodeDone(payload, back, error)) << error;
    EXPECT_EQ(back.jobId, 42u);
    EXPECT_EQ(back.scenarios, 9u);
    EXPECT_EQ(back.failures, 2u);
    EXPECT_EQ(back.cancelled, 1u);
    EXPECT_EQ(back.cacheLine, body.cacheLine);
    EXPECT_EQ(back.queueWaitUs, 12345u);

    DoneBody out;
    EXPECT_FALSE(decodeDone("job=1\nscenarios=soon\n", out, error));
}

TEST(ResultFrame, RoundTripsIndexAndText)
{
    runner::ScenarioResult r;
    r.job.index = 7;
    r.error = "boom";
    const std::string payload = encodeResultFrame(7, r);

    std::size_t index = 0;
    std::string text, error;
    ASSERT_TRUE(decodeResultFrame(payload, index, text, error))
        << error;
    EXPECT_EQ(index, 7u);
    EXPECT_NE(text.find("error: boom"), std::string::npos);

    EXPECT_FALSE(decodeResultFrame("garbage", index, text, error));
    EXPECT_FALSE(decodeResultFrame("index=x\n\ntext", index, text,
                                   error));
}

// ---- admission policy -------------------------------------------------

TEST(Admission, PriorityThenFairnessThenArrival)
{
    std::map<std::string, std::uint64_t> admitted;
    std::vector<Ticket> waiting = {
        {0, 0, "a", 0},
        {1, 5, "b", 0},
        {2, 5, "c", 0},
    };
    // Highest priority wins; equal priorities fall to arrival.
    EXPECT_EQ(pickNext(waiting, admitted), 1u);

    // Fairness: the client with fewer prior admissions goes first
    // even though it arrived later.
    admitted["b"] = 3;
    EXPECT_EQ(pickNext(waiting, admitted), 2u);

    // Equal priority and equal admissions: strict arrival order.
    admitted["c"] = 3;
    EXPECT_EQ(pickNext(waiting, admitted), 1u);

    // Priority always dominates fairness.
    admitted["a"] = 0;
    waiting.push_back({3, 9, "b", 0});
    EXPECT_EQ(pickNext(waiting, admitted), 3u);
}

TEST(Admission, QueueGrantsAtMostMaxActiveAndCloseWakes)
{
    AdmissionQueue q(2);
    const Ticket t1 = q.enqueue(0, "a", 0);
    const Ticket t2 = q.enqueue(0, "b", 0);
    const Ticket t3 = q.enqueue(0, "c", 0);
    EXPECT_TRUE(q.awaitGrant(t1));
    EXPECT_TRUE(q.awaitGrant(t2));
    EXPECT_EQ(q.activeCount(), 2);
    EXPECT_EQ(q.waitingCount(), 1u);

    // The third waits until a slot releases.
    std::atomic<bool> granted{false};
    std::thread waiter([&] {
        granted.store(q.awaitGrant(t3));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(granted.load());
    q.release();
    waiter.join();
    EXPECT_TRUE(granted.load());

    // Close wakes and refuses late arrivals.
    const Ticket t4 = q.enqueue(0, "d", 0);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.close();
    });
    EXPECT_FALSE(q.awaitGrant(t4));
    closer.join();
    EXPECT_FALSE(q.awaitGrant(q.enqueue(0, "e", 0)));
}

// ---- daemon end-to-end ------------------------------------------------

SubmitBody
sweepBody(const std::string &client)
{
    SubmitBody body;
    body.client = client;
    body.opt("workload", "spmm")
        .opt("m", "64")
        .opt("k", "64")
        .opt("n", "16")
        .sweep("sparsity", "0.3,0.5,0.7");
    return body;
}

struct DaemonFixture
{
    explicit DaemonFixture(const std::string &name,
                           DaemonConfig cfg = {})
    {
        const std::string dir = scratchDir(name);
        cfg.socketPath = dir + "canond.sock";
        if (cfg.jobs == 0)
            cfg.jobs = 2;
        daemon = std::make_unique<Daemon>(cfg);
        const std::string error = daemon->start();
        EXPECT_TRUE(error.empty()) << error;
    }

    Client connect()
    {
        Client c;
        const std::string error =
            c.connect(daemon->config().socketPath);
        EXPECT_TRUE(error.empty()) << error;
        return c;
    }

    std::unique_ptr<Daemon> daemon;
};

TEST(Daemon, HandshakeListAndStats)
{
    DaemonFixture fx("svc_hello");
    Client c = fx.connect();
    EXPECT_EQ(c.daemonWorkers(), 2);
    EXPECT_FALSE(c.daemonCacheOn());

    std::string text, error;
    ASSERT_TRUE(c.list(text, error)) << error;
    EXPECT_NE(text.find("spmm"), std::string::npos);

    ASSERT_TRUE(c.stats(text, error)) << error;
    EXPECT_NE(text.find("service.proto: canon-rpc-1"),
              std::string::npos);
    EXPECT_NE(text.find("service.engine.cache: off"),
              std::string::npos);
    EXPECT_NE(text.find("service.clients.total: 1"),
              std::string::npos);
}

TEST(Daemon, RejectsWrongProtocolRevision)
{
    DaemonFixture fx("svc_proto");
    std::string error;
    Fd fd = connectUnix(fx.daemon->config().socketPath, error);
    ASSERT_TRUE(fd.valid()) << error;
    std::string payload = encodeKv({{"proto", "canon-rpc-0"}}, error);
    ASSERT_TRUE(sendFrame(fd, Frame{MsgType::Hello, payload}));
    FrameDecoder dec;
    Frame reply;
    ASSERT_EQ(readFrame(fd, dec, reply, error), ReadStatus::Frame)
        << error;
    EXPECT_EQ(reply.type, MsgType::Error);
    EXPECT_NE(reply.payload.find("canon-rpc-1"), std::string::npos);
}

TEST(Daemon, SubmitStreamsResultsInExpansionOrder)
{
    DaemonFixture fx("svc_stream");
    Client c = fx.connect();

    std::vector<std::size_t> indices;
    std::string stream;
    SubmitOutcome outcome;
    std::string error;
    ASSERT_TRUE(c.submit(
        sweepBody("alice"),
        [&](std::size_t index, const std::string &text) {
            indices.push_back(index);
            stream += text;
        },
        outcome, error))
        << error;

    ASSERT_TRUE(outcome.accepted) << outcome.message;
    EXPECT_EQ(outcome.scenarios, 3u);
    EXPECT_EQ(outcome.done.scenarios, 3u);
    EXPECT_EQ(outcome.done.failures, 0u);
    EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_NE(stream.find("scenario 0"), std::string::npos);
    EXPECT_NE(stream.find("s=0.3"), std::string::npos);
    EXPECT_NE(stream.find("canon:"), std::string::npos);
    // Uncached daemon: no cache line in the summary.
    EXPECT_TRUE(outcome.done.cacheLine.empty());
}

TEST(Daemon, InvalidRequestGetsTypedRejection)
{
    DaemonFixture fx("svc_invalid");
    Client c = fx.connect();

    SubmitBody body;
    body.client = "alice";
    body.opt("sparsity", "2.0");
    SubmitOutcome outcome;
    std::string error;
    ASSERT_TRUE(c.submit(body, {}, outcome, error)) << error;
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reason, RejectReason::InvalidRequest);
    EXPECT_NE(outcome.message.find("--sparsity"), std::string::npos);
}

TEST(Daemon, WarmRerunAndPerRequestDeltasForSequentialClients)
{
    DaemonConfig cfg;
    cfg.cacheDir = scratchDir("svc_warm_cache") + "cache";
    DaemonFixture fx("svc_warm", cfg);

    // Client A runs cold: the delta reports 3 misses, 3 stores.
    Client a = fx.connect();
    EXPECT_TRUE(a.daemonCacheOn());
    SubmitOutcome first;
    std::string error;
    std::string stream_a;
    ASSERT_TRUE(a.submit(
        sweepBody("alice"),
        [&](std::size_t, const std::string &text) {
            stream_a += text;
        },
        first, error))
        << error;
    ASSERT_TRUE(first.accepted) << first.message;
    EXPECT_NE(first.done.cacheLine.find(
                  "3 misses, 3 stored; simulation jobs executed: 3"),
              std::string::npos)
        << first.done.cacheLine;

    // Client B reruns against the same warm daemon. The cache line
    // must be B's *own* delta -- all hits, zero jobs executed -- not
    // the engine's process-lifetime totals (which would report A's
    // misses and stores too).
    Client b = fx.connect();
    SubmitOutcome second;
    std::string stream_b;
    ASSERT_TRUE(b.submit(
        sweepBody("bob"),
        [&](std::size_t, const std::string &text) {
            stream_b += text;
        },
        second, error))
        << error;
    ASSERT_TRUE(second.accepted) << second.message;
    EXPECT_NE(second.done.cacheLine.find(
                  "3 hits, 0 misses, 0 stored; simulation jobs"
                  " executed: 0"),
              std::string::npos)
        << second.done.cacheLine;

    // Hit or simulate, the rendered stream is byte-identical.
    EXPECT_EQ(stream_a, stream_b);
}

TEST(Daemon, ConcurrentClientsGetByteIdenticalStreams)
{
    DaemonConfig cfg;
    cfg.cacheDir = scratchDir("svc_conc_cache") + "cache";
    cfg.maxActive = 4;
    DaemonFixture fx("svc_conc", cfg);

    // Warm the cache first so the concurrent runs are hit-only and
    // their per-request deltas are deterministic too.
    {
        Client warm = fx.connect();
        SubmitOutcome outcome;
        std::string error;
        ASSERT_TRUE(
            warm.submit(sweepBody("warm"), {}, outcome, error))
            << error;
        ASSERT_TRUE(outcome.accepted) << outcome.message;
    }

    constexpr int kClients = 4;
    std::vector<std::string> streams(kClients);
    std::vector<std::string> cache_lines(kClients);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            Client c;
            if (!c.connect(fx.daemon->config().socketPath).empty()) {
                failures.fetch_add(1);
                return;
            }
            SubmitOutcome outcome;
            std::string error;
            const bool ok = c.submit(
                sweepBody("client-" + std::to_string(i)),
                [&](std::size_t, const std::string &text) {
                    streams[i] += text;
                },
                outcome, error);
            if (!ok || !outcome.accepted)
                failures.fetch_add(1);
            cache_lines[i] = outcome.done.cacheLine;
        });
    }
    for (auto &t : threads)
        t.join();
    ASSERT_EQ(failures.load(), 0);

    for (int i = 1; i < kClients; ++i) {
        EXPECT_EQ(streams[i], streams[0]) << "client " << i;
        EXPECT_EQ(cache_lines[i], cache_lines[0]) << "client " << i;
    }
    EXPECT_NE(cache_lines[0].find("simulation jobs executed: 0"),
              std::string::npos)
        << cache_lines[0];
}

TEST(Daemon, QuotaRejectsColdSweepButAdmitsWarmTwin)
{
    DaemonConfig cfg;
    cfg.cacheDir = scratchDir("svc_quota_cache") + "cache";
    cfg.jobQuota = 1;
    DaemonFixture fx("svc_quota", cfg);
    Client c = fx.connect();

    // Cold: the sweep forecasts 3 simulation jobs, over quota.
    SubmitOutcome outcome;
    std::string error;
    ASSERT_TRUE(c.submit(sweepBody("alice"), {}, outcome, error))
        << error;
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reason, RejectReason::QuotaExceeded);
    EXPECT_NE(outcome.message.find("forecast 3"), std::string::npos);

    // Warm the cache one scenario at a time (each within quota).
    for (const char *s : {"0.3", "0.5", "0.7"}) {
        SubmitBody one;
        one.client = "alice";
        one.opt("workload", "spmm")
            .opt("m", "64")
            .opt("k", "64")
            .opt("n", "16")
            .opt("sparsity", s);
        ASSERT_TRUE(c.submit(one, {}, outcome, error)) << error;
        ASSERT_TRUE(outcome.accepted) << outcome.message;
    }

    // The same sweep now forecasts 0 jobs: hits are free.
    ASSERT_TRUE(c.submit(sweepBody("alice"), {}, outcome, error))
        << error;
    EXPECT_TRUE(outcome.accepted) << outcome.message;
    EXPECT_EQ(outcome.predictedJobs, 0u);
    EXPECT_NE(outcome.done.cacheLine.find(
                  "simulation jobs executed: 0"),
              std::string::npos);

    // plan() over the wire agrees.
    std::string text;
    ASSERT_TRUE(c.plan(sweepBody("alice"), text, error)) << error;
    EXPECT_NE(text.find("simulation jobs to execute: 0"),
              std::string::npos)
        << text;
}

TEST(Daemon, CancelFromASecondConnection)
{
    DaemonConfig cfg;
    cfg.jobs = 1; // serialize scenarios so the cancel lands mid-run
    DaemonFixture fx("svc_cancel", cfg);

    SubmitBody body;
    body.client = "alice";
    body.opt("workload", "spmm")
        .opt("m", "128")
        .opt("k", "128")
        .opt("n", "32")
        .sweep("sparsity",
               "0.05,0.10,0.15,0.20,0.25,0.30,0.35,0.40,0.45,0.50,"
               "0.55,0.60,0.65,0.70,0.75,0.80,0.85,0.90")
        .sweep("rows", "4,8");

    Client runner = fx.connect();
    Client killer = fx.connect();
    SubmitOutcome outcome;
    std::string error;
    bool cancel_sent = false;
    ASSERT_TRUE(runner.submit(
        body,
        [&](std::size_t, const std::string &) {
            if (cancel_sent)
                return;
            cancel_sent = true;
            // outcome.jobId is filled by the Accepted frame, which
            // precedes every Result frame on this connection.
            bool found = false;
            std::string cancel_error;
            EXPECT_TRUE(killer.cancel(outcome.jobId, found,
                                      cancel_error))
                << cancel_error;
            EXPECT_TRUE(found);
        },
        outcome, error))
        << error;

    ASSERT_TRUE(outcome.accepted) << outcome.message;
    EXPECT_TRUE(cancel_sent);
    EXPECT_EQ(outcome.done.scenarios, 36u);
    // Every scenario either ran or was skipped with the typed
    // cancellation error; the skipped ones count as failures.
    EXPECT_GT(outcome.done.cancelled, 0u);
    EXPECT_EQ(outcome.done.failures, outcome.done.cancelled);

    // The job is gone: a second cancel finds nothing.
    bool found = true;
    ASSERT_TRUE(killer.cancel(outcome.jobId, found, error)) << error;
    EXPECT_FALSE(found);
}

TEST(Daemon, DrainingRejectsNewSubmitsAndStopsCleanly)
{
    DaemonFixture fx("svc_drain");
    Client c = fx.connect();

    // Run one real submission so the drain has had traffic.
    SubmitOutcome outcome;
    std::string error;
    ASSERT_TRUE(c.submit(sweepBody("alice"), {}, outcome, error))
        << error;
    ASSERT_TRUE(outcome.accepted) << outcome.message;

    fx.daemon->requestStop();
    ASSERT_TRUE(c.submit(sweepBody("alice"), {}, outcome, error))
        << error;
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reason, RejectReason::Draining);

    // Nothing was in flight: the drain is clean.
    EXPECT_EQ(fx.daemon->stop(), 0);
    EXPECT_EQ(fx.daemon->exitCode(), 0);
    EXPECT_NE(fx.daemon->statsText().find(
                  "service.requests.rejected.draining: 1"),
              std::string::npos);
}

} // namespace
} // namespace service
} // namespace canon
