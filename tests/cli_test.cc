/**
 * @file
 * canonsim driver tests: option parsing (both --key value and
 * --key=value spellings), rejection of malformed input, and
 * end-to-end smoke runs of each kernel family through the driver.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/driver.hh"
#include "cli/options.hh"

namespace canon
{
namespace cli
{
namespace
{

ParseResult
parse(std::initializer_list<std::string> args)
{
    return parseArgs(std::vector<std::string>(args));
}

// ---- parsing ----------------------------------------------------------

TEST(CliOptions, DefaultsAreSpmmOnCanonPaperFabric)
{
    auto res = parse({});
    ASSERT_TRUE(res.ok) << res.error;
    const Options &o = res.options;
    EXPECT_EQ(o.workload, Workload::Spmm);
    EXPECT_EQ(o.archs, std::vector<std::string>{"canon"});

    const CanonConfig cfg = o.fabricConfig();
    const CanonConfig paper = CanonConfig::paper();
    EXPECT_EQ(cfg.rows, paper.rows);
    EXPECT_EQ(cfg.cols, paper.cols);
    EXPECT_EQ(cfg.spadEntries, paper.spadEntries);
    EXPECT_EQ(cfg.dmemSlots, paper.dmemSlots);
}

TEST(CliOptions, ParsesEveryWorkloadName)
{
    const std::pair<const char *, Workload> cases[] = {
        {"gemm", Workload::Gemm},
        {"dense", Workload::Gemm},
        {"spmm", Workload::Spmm},
        {"spmm-nm", Workload::SpmmNm},
        {"nm", Workload::SpmmNm},
        {"sddmm", Workload::Sddmm},
        {"sddmm-window", Workload::SddmmWindow},
    };
    for (const auto &[name, wl] : cases) {
        auto res = parse({"--workload", name});
        ASSERT_TRUE(res.ok) << name << ": " << res.error;
        EXPECT_EQ(res.options.workload, wl) << name;
    }
}

TEST(CliOptions, AcceptsBothOptionSpellings)
{
    auto spaced = parse({"--m", "128", "--k", "64", "--n", "32"});
    auto equals = parse({"--m=128", "--k=64", "--n=32"});
    ASSERT_TRUE(spaced.ok) << spaced.error;
    ASSERT_TRUE(equals.ok) << equals.error;
    EXPECT_EQ(spaced.options.m, 128);
    EXPECT_EQ(equals.options.m, 128);
    EXPECT_EQ(equals.options.k, 64);
    EXPECT_EQ(equals.options.n, 32);
}

TEST(CliOptions, ParsesFabricAndModeOptions)
{
    auto res = parse({"--rows=4", "--cols=16", "--spad=32",
                      "--dmem=2048", "--clock-ghz=1.5",
                      "--arch=canon,zed", "--sparsity=0.9",
                      "--seed=42", "--csv=/tmp/out.csv"});
    ASSERT_TRUE(res.ok) << res.error;
    const Options &o = res.options;
    EXPECT_EQ(o.fabricConfig().rows, 4);
    EXPECT_EQ(o.fabricConfig().cols, 16);
    EXPECT_EQ(o.fabricConfig().spadEntries, 32);
    EXPECT_EQ(o.fabricConfig().dmemSlots, 2048);
    EXPECT_DOUBLE_EQ(o.fabricConfig().clockGhz, 1.5);
    EXPECT_EQ(o.archs, (std::vector<std::string>{"canon", "zed"}));
    EXPECT_DOUBLE_EQ(o.sparsity, 0.9);
    EXPECT_EQ(o.seed, 42u);
    EXPECT_EQ(o.csvPath, "/tmp/out.csv");
}

TEST(CliOptions, ParsesTagBanksAndSpadFlush)
{
    auto res = parse({"--tag-banks=8", "--spad-flush=adaptive"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.fabricConfig().tagBanks, 8);
    EXPECT_EQ(res.options.fabricConfig().spadFlush,
              SpadFlushPolicy::Adaptive);

    // Defaults stay on the linear-search / flush-at-cap baseline.
    auto dflt = parse({});
    ASSERT_TRUE(dflt.ok) << dflt.error;
    EXPECT_EQ(dflt.options.fabricConfig().tagBanks, 1);
    EXPECT_EQ(dflt.options.fabricConfig().spadFlush,
              SpadFlushPolicy::Eager);

    for (const char *bad :
         {"--tag-banks=0", "--tag-banks=65", "--tag-banks=lots"})
        EXPECT_FALSE(parse({bad}).ok) << bad;
    auto flush = parse({"--spad-flush", "lazy"});
    ASSERT_FALSE(flush.ok);
    EXPECT_NE(flush.error.find("eager | adaptive"),
              std::string::npos)
        << flush.error;
}

TEST(CliOptions, ArchAllExpandsToEveryArchitecture)
{
    auto res = parse({"--arch", "all"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.archs.size(), 5u);
}

TEST(CliOptions, ParsesNmPattern)
{
    auto res = parse({"--workload", "spmm-nm", "--nm", "1:8"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.nmN, 1);
    EXPECT_EQ(res.options.nmM, 8);
}

TEST(CliOptions, RejectsUnknownWorkload)
{
    auto res = parse({"--workload", "conv3d"});
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("conv3d"), std::string::npos);
}

TEST(CliOptions, RejectsMalformedDimensions)
{
    for (const char *bad : {"abc", "-4", "0", "12x", "", "1.5"}) {
        auto res = parse({"--m", bad});
        EXPECT_FALSE(res.ok) << "'" << bad << "' should be rejected";
    }
}

TEST(CliOptions, RejectsBadSparsityAndClock)
{
    EXPECT_FALSE(parse({"--sparsity", "1.0"}).ok);
    EXPECT_FALSE(parse({"--sparsity", "-0.1"}).ok);
    EXPECT_FALSE(parse({"--sparsity", "dense"}).ok);
    EXPECT_FALSE(parse({"--clock-ghz", "0"}).ok);
}

TEST(CliOptions, RejectsBadNmPattern)
{
    EXPECT_FALSE(parse({"--nm", "4"}).ok);
    EXPECT_FALSE(parse({"--nm", "4:2"}).ok);
    EXPECT_FALSE(parse({"--nm", "0:4"}).ok);
    EXPECT_FALSE(parse({"--nm", "a:b"}).ok);
}

TEST(CliOptions, RejectsUnknownOptionArchAndMissingValue)
{
    EXPECT_FALSE(parse({"--frobnicate", "1"}).ok);
    EXPECT_FALSE(parse({"--arch", "tpu"}).ok);
    EXPECT_FALSE(parse({"--m"}).ok);
}

TEST(CliOptions, ParsesSweepAxesAndJobs)
{
    auto res = parse({"--sweep", "sparsity=0.5,0.7,0.9",
                      "--sweep=rows=4,8", "--jobs", "4"});
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.options.sweepAxes.size(), 2u);
    EXPECT_EQ(res.options.sweepAxes[0].first, "sparsity");
    EXPECT_EQ(res.options.sweepAxes[0].second, "0.5,0.7,0.9");
    EXPECT_EQ(res.options.sweepAxes[1].first, "rows");
    EXPECT_EQ(res.options.sweepAxes[1].second, "4,8");
    EXPECT_EQ(res.options.common.jobs, 4);
}

TEST(CliOptions, RejectsMalformedSweepAndJobs)
{
    EXPECT_FALSE(parse({"--sweep", "sparsity"}).ok);  // no '='
    EXPECT_FALSE(parse({"--sweep", "=0.5"}).ok);      // empty key
    EXPECT_FALSE(parse({"--sweep", "sparsity="}).ok); // empty values
    EXPECT_FALSE(parse({"--jobs", "0"}).ok);
    EXPECT_FALSE(parse({"--jobs", "257"}).ok);
    EXPECT_FALSE(parse({"--jobs", "many"}).ok);
}

TEST(CliOptions, ParsesShardFlag)
{
    auto res = parse({"--shard", "1/4"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.common.shard.index, 1);
    EXPECT_EQ(res.options.common.shard.count, 4);
    EXPECT_FALSE(res.options.common.shard.whole());

    // Default: the whole job list.
    auto plain = parse({});
    ASSERT_TRUE(plain.ok);
    EXPECT_TRUE(plain.options.common.shard.whole());

    // The '=' spelling works like every other flag.
    auto eq = parse({"--shard=0/2"});
    ASSERT_TRUE(eq.ok) << eq.error;
    EXPECT_EQ(eq.options.common.shard.count, 2);
}

TEST(CliOptions, RejectsMalformedShard)
{
    EXPECT_FALSE(parse({"--shard", "2"}).ok);    // no '/'
    EXPECT_FALSE(parse({"--shard", "2/2"}).ok);  // index == count
    EXPECT_FALSE(parse({"--shard", "-1/2"}).ok); // negative index
    EXPECT_FALSE(parse({"--shard", "0/0"}).ok);  // zero count
    EXPECT_FALSE(parse({"--shard", "a/b"}).ok);  // not numbers
    EXPECT_FALSE(parse({"--shard", "1/9999"}).ok); // beyond kMaxShards
}

TEST(CliOptions, ShardIsNotSweepable)
{
    auto res = parse({"--sweep", "shard=0/2,1/2"});
    ASSERT_TRUE(res.ok) << res.error; // validated by the runner
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(res.options, out, err), 2);
    EXPECT_NE(err.str().find("not sweepable"), std::string::npos)
        << err.str();
}

TEST(CliOptions, ParsesCacheFlags)
{
    auto res = parse({"--cache-dir", "/tmp/cache"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.common.cacheDir, "/tmp/cache");
    EXPECT_EQ(res.options.common.cacheMode, cache::Mode::ReadWrite);

    auto refresh =
        parse({"--cache-dir=/tmp/cache", "--cache=refresh"});
    ASSERT_TRUE(refresh.ok) << refresh.error;
    EXPECT_EQ(refresh.options.common.cacheMode, cache::Mode::Refresh);

    // Plain runs keep caching off entirely.
    auto plain = parse({});
    ASSERT_TRUE(plain.ok);
    EXPECT_TRUE(plain.options.common.cacheDir.empty());
}

TEST(CliOptions, RejectsBadCacheFlags)
{
    EXPECT_FALSE(parse({"--cache-dir", ""}).ok);
    EXPECT_FALSE(parse({"--cache-dir=/tmp/c", "--cache", "rw"}).ok);
    // --cache without a directory is a usage error, not a no-op.
    auto orphan = parse({"--cache", "read"});
    EXPECT_FALSE(orphan.ok);
    EXPECT_NE(orphan.error.find("--cache-dir"), std::string::npos);
}

TEST(CliOptions, CacheFlagsAreNotSweepable)
{
    for (const char *axis : {"cache=read,write", "cache-dir=a,b"}) {
        auto res = parse({"--sweep", axis});
        ASSERT_TRUE(res.ok) << res.error; // validated by the runner
        std::ostringstream out, err;
        EXPECT_EQ(runScenario(res.options, out, err), 2) << axis;
        EXPECT_NE(err.str().find("not sweepable"), std::string::npos)
            << err.str();
    }
}

TEST(CliOptions, TracksExplicitlySetScenarioKeys)
{
    auto res = parse({"--workload", "spmm", "--sparsity=0.5",
                      "--jobs", "2", "--arch", "canon"});
    ASSERT_TRUE(res.ok) << res.error;
    // Only scenario-grammar keys are tracked, not fixed flags.
    EXPECT_EQ(res.options.explicitKeys,
              (std::vector<std::string>{"workload", "sparsity"}));
}

// ---- workload/option relevance matrix ---------------------------------

TEST(CliRelevance, PerWorkloadKeySetsMatchTheGrammar)
{
    Options o;
    o.workload = Workload::Gemm;
    EXPECT_TRUE(optionRelevant(o, "m"));
    EXPECT_TRUE(optionRelevant(o, "seed"));
    EXPECT_FALSE(optionRelevant(o, "sparsity"));
    EXPECT_FALSE(optionRelevant(o, "nm"));
    EXPECT_FALSE(optionRelevant(o, "window"));

    o.workload = Workload::Spmm;
    EXPECT_TRUE(optionRelevant(o, "sparsity"));
    EXPECT_FALSE(optionRelevant(o, "nm"));

    o.workload = Workload::SpmmNm;
    EXPECT_TRUE(optionRelevant(o, "nm"));
    EXPECT_FALSE(optionRelevant(o, "sparsity"));

    o.workload = Workload::SddmmWindow;
    EXPECT_TRUE(optionRelevant(o, "window"));
    EXPECT_FALSE(optionRelevant(o, "n"));

    // Fabric keys and the model selector are always relevant.
    EXPECT_TRUE(optionRelevant(o, "rows"));
    EXPECT_TRUE(optionRelevant(o, "clock-ghz"));
    EXPECT_TRUE(optionRelevant(o, "model"));
}

TEST(CliRelevance, PolicyKeysAreFabricKeysEverywhere)
{
    // tag-banks / spad-flush shape the fabric like rows/spad do, so
    // they are relevant to every workload and every model, and they
    // round-trip through the sweep grammar.
    Options o;
    for (auto wl : {Workload::Gemm, Workload::Spmm, Workload::SpmmNm,
                    Workload::Sddmm, Workload::SddmmWindow}) {
        o.workload = wl;
        EXPECT_TRUE(optionRelevant(o, "tag-banks"));
        EXPECT_TRUE(optionRelevant(o, "spad-flush"));
    }
    o = Options{};
    o.model = "longformer";
    EXPECT_TRUE(optionRelevant(o, "tag-banks"));
    EXPECT_TRUE(optionRelevant(o, "spad-flush"));

    o = Options{};
    EXPECT_EQ(optionValueText(o, "tag-banks"), "1");
    EXPECT_EQ(optionValueText(o, "spad-flush"), "eager");
    EXPECT_TRUE(
        applyScenarioOption(o, "spad-flush", "adaptive").empty());
    EXPECT_EQ(optionValueText(o, "spad-flush"), "adaptive");
}

TEST(CliRelevance, PolicyAxesSweepCleanly)
{
    auto res = parse({"--workload", "spmm", "--m", "16", "--k", "16",
                      "--n", "16", "--sparsity", "0.5", "--rows",
                      "2", "--cols", "2", "--sweep", "tag-banks=1,4",
                      "--sweep", "spad-flush=eager,adaptive"});
    ASSERT_TRUE(res.ok) << res.error;
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(res.options, out, err), 0) << err.str();
    EXPECT_EQ(err.str(), ""); // relevant axes: no ignored-key warning
}

TEST(CliRelevance, ModelRunsIgnoreShapeKeys)
{
    Options o;
    o.model = "llama8b-attn";
    EXPECT_FALSE(optionRelevant(o, "m"));
    EXPECT_FALSE(optionRelevant(o, "workload"));
    EXPECT_TRUE(optionRelevant(o, "sparsity")); // has a knob
    EXPECT_TRUE(optionRelevant(o, "seed"));

    o.model = "longformer"; // purely window-structured: no knob
    EXPECT_FALSE(optionRelevant(o, "sparsity"));
}

TEST(CliRelevance, SingleRunsWarnOnIgnoredOptions)
{
    auto res = parse({"--workload", "spmm", "--nm", "2:8", "--m",
                      "16", "--k", "16", "--n", "16"});
    ASSERT_TRUE(res.ok) << res.error;
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(res.options, out, err), 0); // warn, not fail
    EXPECT_NE(err.str().find("option '--nm' is ignored by workload"
                             " 'spmm'"),
              std::string::npos)
        << err.str();

    auto win = parse({"--workload", "gemm", "--window", "32", "--m",
                      "16", "--k", "16", "--n", "16"});
    ASSERT_TRUE(win.ok) << win.error;
    std::ostringstream wout, werr;
    EXPECT_EQ(runScenario(win.options, wout, werr), 0);
    EXPECT_NE(werr.str().find("'--window' is ignored"),
              std::string::npos)
        << werr.str();

    // Relevant options stay silent.
    auto clean = parse({"--workload", "spmm", "--sparsity", "0.5",
                        "--m", "16", "--k", "16", "--n", "16"});
    ASSERT_TRUE(clean.ok) << clean.error;
    std::ostringstream cout_, cerr_;
    EXPECT_EQ(runScenario(clean.options, cout_, cerr_), 0);
    EXPECT_EQ(cerr_.str(), "");
}

TEST(CliRelevance, SweepsRejectAxesNoScenarioConsumes)
{
    // gemm never reads sparsity: the sweep would emit 3 identical
    // row groups, so it is rejected up front.
    auto res = parse({"--workload", "gemm", "--m", "16", "--k", "16",
                      "--n", "16", "--sweep",
                      "sparsity=0.3,0.5,0.7"});
    ASSERT_TRUE(res.ok) << res.error;
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(res.options, out, err), 2);
    EXPECT_NE(err.str().find("has no effect"), std::string::npos)
        << err.str();

    // A workload axis that includes a consumer legitimizes the axis.
    auto mixed = parse({"--m", "16", "--k", "16", "--n", "16",
                        "--sweep", "workload=gemm,spmm", "--sweep",
                        "sparsity=0.3,0.7"});
    ASSERT_TRUE(mixed.ok) << mixed.error;
    std::ostringstream mout, merr;
    EXPECT_EQ(runScenario(mixed.options, mout, merr), 0)
        << merr.str();

    // A window-model-only sweep over sparsity is just as dead.
    auto model = parse({"--model", "longformer", "--sweep",
                        "sparsity=0.3,0.7"});
    ASSERT_TRUE(model.ok) << model.error;
    std::ostringstream oout, oerr;
    EXPECT_EQ(runScenario(model.options, oout, oerr), 2);
    EXPECT_NE(oerr.str().find("has no effect"), std::string::npos)
        << oerr.str();
}

TEST(CliOptions, ParsesKnownModelAndRejectsUnknown)
{
    auto res = parse({"--model", "llama8b-attn"});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.options.model, "llama8b-attn");
    EXPECT_EQ(res.options.workloadLabel(), "llama8b-attn model");

    auto none = parse({"--model", "llama8b-attn", "--model", "none"});
    ASSERT_TRUE(none.ok) << none.error;
    EXPECT_EQ(none.options.model, "");

    auto bad = parse({"--model", "gpt5"});
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("gpt5"), std::string::npos);
}

// ---- end-to-end smoke runs -------------------------------------------

Options
smokeOptions(Workload wl)
{
    Options o;
    o.workload = wl;
    o.m = 32;
    o.k = 32;
    o.n = 32;
    o.window = 16;
    o.sparsity = 0.5;
    return o;
}

TEST(CliDriver, DenseCadenceSmokeRun)
{
    const Options o = smokeOptions(Workload::Gemm);
    CaseResult r = runCases(o);
    ASSERT_EQ(r.count("canon"), 1u);
    const ExecutionProfile &p = r.at("canon");
    EXPECT_GT(p.cycles, 0u);
    // Dense 32x32x32 INT8 GEMM: exactly m*k*n lane MACs.
    EXPECT_EQ(p.get("laneMacs"), 32u * 32u * 32u);
}

TEST(CliDriver, SpmmSmokeRun)
{
    const Options o = smokeOptions(Workload::Spmm);
    CaseResult r = runCases(o);
    ASSERT_EQ(r.count("canon"), 1u);
    const ExecutionProfile &p = r.at("canon");
    EXPECT_GT(p.cycles, 0u);
    EXPECT_GT(p.get("laneMacs"), 0u);
    // Half-sparse input must do fewer MACs than the dense run.
    EXPECT_LT(p.get("laneMacs"), 32u * 32u * 32u);
}

TEST(CliDriver, SddmmSmokeRun)
{
    const Options o = smokeOptions(Workload::Sddmm);
    CaseResult r = runCases(o);
    ASSERT_EQ(r.count("canon"), 1u);
    EXPECT_GT(r.at("canon").cycles, 0u);
    EXPECT_GT(r.at("canon").get("laneMacs"), 0u);
}

TEST(CliDriver, BaselineComparisonIncludesRequestedArchs)
{
    Options o = smokeOptions(Workload::Spmm);
    o.archs = {"canon", "systolic", "zed"};
    CaseResult r = runCases(o);
    EXPECT_EQ(r.count("canon"), 1u);
    EXPECT_EQ(r.count("systolic"), 1u);
    EXPECT_EQ(r.count("zed"), 1u);
    EXPECT_EQ(r.count("cgra"), 0u); // not requested
}

TEST(CliDriver, BaselineOnlyRunSkipsCanonSimulation)
{
    Options o = smokeOptions(Workload::Spmm);
    o.archs = {"systolic", "cgra"};
    CaseResult r = runCases(o);
    EXPECT_EQ(r.count("canon"), 0u);
    EXPECT_EQ(r.count("systolic"), 1u);
    EXPECT_EQ(r.count("cgra"), 1u);

    // The suite itself must not have computed the unselected archs.
    ArchSuite suite(o.fabricConfig(), o.archs);
    EXPECT_FALSE(suite.enabled("canon"));
    EXPECT_TRUE(suite.enabled("systolic"));
    CaseResult direct = suite.spmm(32, 32, 32, 0.5, 1);
    EXPECT_EQ(direct.count("canon"), 0u);
    EXPECT_EQ(direct.count("zed"), 0u);
    EXPECT_EQ(direct.count("systolic"), 1u);
}

TEST(CliDriver, ModelRunAccumulatesLayersOnCanon)
{
    Options o;
    o.model = "llama8b-attn";
    o.sparsity = 0.9;
    o.archs = {"canon"};
    CaseResult r = runCases(o);
    ASSERT_EQ(r.count("canon"), 1u);
    EXPECT_GT(r.at("canon").cycles, 0u);
    EXPECT_GT(r.at("canon").get("laneMacs"), 0u);
    EXPECT_EQ(r.at("canon").workload, "Llama8B-Attn");
}

TEST(CliDriver, RunScenarioWritesReportToGivenStream)
{
    Options o = smokeOptions(Workload::Spmm);
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(o, out, err), 0);
    EXPECT_EQ(err.str(), "");
    EXPECT_NE(out.str().find("=== canonsim: spmm"),
              std::string::npos);
}

TEST(CliDriver, RunScenarioReportsCsvFailureOnErrStream)
{
    Options o = smokeOptions(Workload::Spmm);
    o.csvPath = "/nonexistent-dir/x.csv";
    std::ostringstream out, err;
    EXPECT_EQ(runScenario(o, out, err), 1);
    EXPECT_NE(err.str().find("cannot write CSV"), std::string::npos);
}

TEST(CliDriver, CsvQuotesThousandsSeparatedCells)
{
    Table t("csv quoting");
    t.header({"Arch", "Cycles", "Note"});
    t.addRow({"canon", Table::fmtInt(1'253'184), "say \"hi\""});

    const std::string path =
        ::testing::TempDir() + "cli_test_quoting.csv";
    ASSERT_TRUE(t.writeCsv(path));

    std::ifstream f(path);
    std::string header, row;
    ASSERT_TRUE(std::getline(f, header));
    ASSERT_TRUE(std::getline(f, row));
    EXPECT_EQ(header, "Arch,Cycles,Note");
    // fmtInt's separators must be quoted, embedded quotes doubled.
    EXPECT_EQ(row, "canon,\"1,253,184\",\"say \"\"hi\"\"\"");
}

TEST(CliDriver, CsvWriteFailureIsReported)
{
    Table t("unwritable");
    t.header({"A"});
    t.addRow({"1"});
    EXPECT_FALSE(t.writeCsv("/nonexistent-dir/x.csv"));
}

TEST(CliDriver, StatsTableBuildsForComparisonRun)
{
    Options o = smokeOptions(Workload::Spmm);
    o.archs = {"canon", "systolic"};
    CaseResult r = runCases(o);
    // Throws on header/row width mismatch; building it is the check.
    Table t = buildStatsTable(o, r);
    (void)t;
}

TEST(CliOptions, ParsesProbeSpadFlag)
{
    EXPECT_FALSE(parse({}).options.probeSpad);
    const auto res = parse({"--probe-spad"});
    ASSERT_TRUE(res.ok);
    EXPECT_TRUE(res.options.probeSpad);
}

TEST(CliDriver, ProbeSpadAppendsOccupancyColumns)
{
    Options o = smokeOptions(Workload::Spmm);
    o.archs = {"canon", "systolic"};
    CaseResult r = runCases(o);

    std::ostringstream base_csv;
    buildStatsTable(o, r).writeCsv(base_csv);

    o.probeSpad = true;
    std::ostringstream probe_csv;
    buildStatsTable(o, r).writeCsv(probe_csv);

    auto lines = [](const std::string &s) {
        std::vector<std::string> out;
        std::istringstream in(s);
        for (std::string l; std::getline(in, l);)
            out.push_back(l);
        return out;
    };
    const auto base = lines(base_csv.str());
    const auto probed = lines(probe_csv.str());
    ASSERT_EQ(base.size(), probed.size());

    // The probe table is the base table with three appended columns:
    // every base CSV line is a strict prefix of its probed line.
    EXPECT_NE(probed[0].find("SpadOcc"), std::string::npos);
    EXPECT_NE(probed[0].find("SpadCap%"), std::string::npos);
    EXPECT_NE(probed[0].find("Cmp/Probe"), std::string::npos);
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(probed[i].rfind(base[i], 0), 0u) << "line " << i;
        EXPECT_GT(probed[i].size(), base[i].size()) << "line " << i;
    }

    // Canon carries the occupancy counters; the baseline renders "X".
    ASSERT_GE(probed.size(), 3u);
    EXPECT_EQ(probed[1].find(",X,X,X"), std::string::npos)
        << "canon row should have numeric probe cells: " << probed[1];
    EXPECT_NE(probed[2].find("X,X,X"), std::string::npos)
        << "baseline row should render X probe cells: " << probed[2];
}

} // namespace
} // namespace cli
} // namespace canon
