/**
 * @file
 * Program-level FSM tests for the dense-cadence and SDDMM kernels:
 * state residency, merge/bypass/prefetch behaviour observed on live
 * fabrics, and the LUT-visible structure of the compiled programs.
 */

#include <gtest/gtest.h>

#include "core/fabric.hh"
#include "kernels/dense_cadence.hh"
#include "kernels/sddmm.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace
{

TEST(CadenceFsm, FlushEveryCadence)
{
    // Each orchestrator must emit exactly one PSUM message per output
    // row: M flushes.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Rng rng(1);
    const int m = 12, k = 16;
    const auto a = randomDense(m, k, rng);
    const auto b = randomDense(k, 8, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();

    // Row 0 sends only its own flushes; row 1 additionally relays
    // nothing when merges succeed.
    const auto row0 =
        fabric.stats().childAt("orch0").sumCounter("msgsSent");
    EXPECT_EQ(row0, static_cast<std::uint64_t>(m));
}

TEST(CadenceFsm, MergesDominateBypassesWhenAligned)
{
    // With compile-time skew in place, nearly every upstream psum
    // merges into the register ring instead of bypassing.
    CanonConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    Rng rng(2);
    const int m = 64, k = 64;
    const auto a = randomDense(m, k, rng);
    const auto b = randomDense(k, 16, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));
    fabric.run();

    const auto bypasses =
        fabric.stats().sumCounter("fwdAhead") +
        fabric.stats().sumCounter("fwdBehind");
    // Upstream psums total m * (rows-1); demand high merge rates.
    EXPECT_LT(bypasses, static_cast<std::uint64_t>(m) * 3 / 2)
        << "skew/merge window should absorb nearly all psums";
    EXPECT_EQ(fabric.result(), reference::gemm(a, b));
}

TEST(CadenceFsm, VisitsMergeAndFlushStates)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Rng rng(3);
    const auto a = randomDense(8, 16, rng);
    const auto b = randomDense(16, 8, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapGemm(a, b, cfg));

    bool saw_flush = false, saw_merge = false;
    while (!fabric.done()) {
        fabric.step();
        saw_flush |= fabric.orch(0).state() == cadence_state::kFlush;
        saw_merge |= fabric.orch(1).state() == cadence_state::kMerge;
    }
    EXPECT_TRUE(saw_flush);
    EXPECT_TRUE(saw_merge);
}

TEST(SddmmFsm, PrefetchWindowBoundsMeta)
{
    // meta1 (prefetched) may lead meta0 (current mask row) by at most
    // the scratchpad depth, and must never trail it.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    Rng rng(4);
    const int m = 24;
    const auto a = randomDense(m, 8, rng);
    const auto b = randomDense(8, 8, rng);
    const auto mask = randomMask(m, 8, 0.4, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSddmm(mask, a, b, cfg));

    while (!fabric.done()) {
        fabric.step();
        for (int r = 0; r < cfg.rows; ++r) {
            const auto m0 = fabric.orch(r).meta(0);
            const auto m1 = fabric.orch(r).meta(1);
            ASSERT_GE(m1, m0);
            ASSERT_LE(m1 - m0, cfg.spadEntries);
        }
    }
    EXPECT_EQ(fabric.result(), reference::sddmm(mask, a, b));
}

TEST(SddmmFsm, AllRowsForwardEveryAVector)
{
    // Every orchestrator relays all M A-vector announcements (its
    // meta1 ends at M), even rows whose mask block is empty.
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 4;
    Rng rng(5);
    const int m = 16;
    const auto a = randomDense(m, 8, rng);
    const auto b = randomDense(8, 8, rng);
    CsrMatrix mask(m, 8); // only row block 0 has work
    for (int i = 0; i < m; ++i)
        mask.append(i, 1, 1);
    CanonFabric fabric(cfg);
    fabric.load(mapSddmm(mask, a, b, cfg));
    fabric.run();
    for (int r = 0; r < cfg.rows; ++r)
        EXPECT_EQ(fabric.orch(r).meta(1), m) << "row " << r;
    EXPECT_EQ(fabric.result(), reference::sddmm(mask, a, b));
}

TEST(SddmmFsm, ReachesDone)
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    cfg.spadEntries = 2;
    Rng rng(6);
    const auto a = randomDense(8, 8, rng);
    const auto b = randomDense(8, 8, rng);
    const auto mask = randomMask(8, 8, 0.5, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSddmm(mask, a, b, cfg));
    fabric.run();
    for (int r = 0; r < cfg.rows; ++r)
        EXPECT_EQ(fabric.orch(r).state(), sddmm_state::kDone);
}

TEST(Programs, LutImagesDiffer)
{
    // The three kernel programs must compile to genuinely different
    // bitstreams (no accidental sharing).
    const auto spmm_bits = buildSpmmProgram()->lut().toBitstream();
    const auto cad_bits =
        buildCadenceProgram(16)->lut().toBitstream();
    const auto sddmm_bits =
        buildSddmmProgram(64, 8)->lut().toBitstream();
    EXPECT_NE(spmm_bits, cad_bits);
    EXPECT_NE(spmm_bits, sddmm_bits);
    EXPECT_NE(cad_bits, sddmm_bits);
}

TEST(Programs, CadenceConstantIsVisible)
{
    const auto p8 = buildCadenceProgram(8);
    const auto p32 = buildCadenceProgram(32);
    EXPECT_EQ(p8->condConst(), 8);
    EXPECT_EQ(p32->condConst(), 32);
}

} // namespace
} // namespace canon
