/**
 * @file
 * Bench-layer tests: FigureSpec grid expansion, FigureBench execution
 * on the worker pool (determinism across --jobs, shard concatenation,
 * whole-table jobs), the shared bench CLI grammar, and the figure
 * registry. The real-figure determinism check runs a converted
 * figure (Figure 16) at several worker counts and shard splits and
 * requires byte-identical CSV recombination.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_util.hh"
#include "common/logging.hh"
#include "figure_spec.hh"
#include "figures.hh"

namespace canon
{
namespace bench
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

// ---- FigureSpec -------------------------------------------------------

TEST(FigureSpec, NoAxesExpandToOneUnlabeledPoint)
{
    FigureSpec spec;
    EXPECT_EQ(spec.pointCount(), 1u);
    auto points = spec.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].index, 0u);
    EXPECT_EQ(points[0].label, "");
    EXPECT_TRUE(points[0].coords.empty());
}

TEST(FigureSpec, ExpandsLastAxisFastestLikeSweepSpec)
{
    FigureSpec spec;
    spec.axis("size", {"8", "16"}).axis("mode", {"a", "b", "c"});
    EXPECT_EQ(spec.pointCount(), 6u);

    auto points = spec.expand();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].label, "size=8 mode=a");
    EXPECT_EQ(points[1].label, "size=8 mode=b");
    EXPECT_EQ(points[3].label, "size=16 mode=a");
    EXPECT_EQ(points[5].label, "size=16 mode=c");
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);

    EXPECT_EQ(points[4].value("mode"), "b");
    EXPECT_EQ(points[4].integer("size"), 16);
    EXPECT_DOUBLE_EQ(points[4].number("size"), 16.0);
    EXPECT_EQ(points[4].digits[0], 1u);
    EXPECT_EQ(points[4].digits[1], 1u);
}

TEST(FigureSpec, RejectsBadAxesAndLookups)
{
    FigureSpec spec;
    EXPECT_THROW(spec.axis("empty", {}), FatalError);
    spec.axis("size", {"8"});
    EXPECT_THROW(spec.axis("size", {"16"}), FatalError);

    auto points = spec.expand();
    EXPECT_THROW(points[0].value("missing"), FatalError);
    FigureSpec text;
    text.axis("name", {"alpha"});
    EXPECT_THROW(text.expand()[0].integer("name"), FatalError);
    EXPECT_THROW(text.expand()[0].number("name"), FatalError);
}

// ---- FigureBench on the pool ------------------------------------------

/**
 * A synthetic two-table bench: a gridded table whose emit sleeps
 * *longer* for earlier rows (so out-of-order completion is the norm
 * under threading) and a whole-table (axis-free) second table.
 */
FigureBench
syntheticBench(const std::string &dir)
{
    FigureBench bench("synthetic");

    FigureTable grid_t;
    grid_t.title = "synthetic grid";
    grid_t.header = {"Point", "Product"};
    grid_t.csvName = dir + "grid.csv";
    grid_t.grid.axis("a", {"2", "3", "5"}).axis("b", {"7", "11"});
    grid_t.emit = [](const FigurePoint &p) -> FigureRows {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(6 - p.index));
        return {{p.label,
                 std::to_string(p.integer("a") * p.integer("b"))}};
    };
    bench.add(std::move(grid_t));

    FigureTable whole_t;
    whole_t.title = "synthetic whole-table job";
    whole_t.header = {"Row", "Value"};
    whole_t.csvName = dir + "whole.csv";
    whole_t.emit = [](const FigurePoint &) -> FigureRows {
        // Rows that share state (here: a running sum) stay together.
        int sum = 0;
        FigureRows rows;
        for (int i = 1; i <= 3; ++i) {
            sum += i;
            rows.push_back({std::to_string(i), std::to_string(sum)});
        }
        return rows;
    };
    bench.add(std::move(whole_t));
    return bench;
}

/** Fresh per-test scratch dir: ctest -j runs tests concurrently,
 *  and cache-backed tests must not inherit a previous run's store. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name + "/";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(FigureBench, OutputIsByteIdenticalAcrossWorkerCounts)
{
    const std::string dir = scratchDir("bench_grid_jobs");
    auto run = [&](int jobs) {
        BenchOptions opt;
        opt.common.jobs = jobs;
        std::ostringstream out, err;
        EXPECT_EQ(syntheticBench(dir).run(opt, out, err), 0)
            << err.str();
        EXPECT_EQ(err.str(), "");
        return out.str() + "|" + slurp(dir + "grid.csv") + "|" +
               slurp(dir + "whole.csv");
    };

    const std::string serial = run(1);
    EXPECT_NE(serial.find("a=2 b=7"), std::string::npos);
    EXPECT_NE(serial.find("a=5 b=11,55"), std::string::npos);
    for (int jobs : {2, 4, 8})
        EXPECT_EQ(run(jobs), serial) << "jobs=" << jobs;
}

TEST(FigureBench, ShardCsvsConcatenateToTheFullCsv)
{
    const std::string dir = scratchDir("bench_grid_shards");
    const FigureBench bench = syntheticBench(dir);
    EXPECT_EQ(bench.jobCount(), 7u); // 6 grid points + 1 whole table

    BenchOptions full;
    full.common.jobs = 2;
    std::ostringstream out, err;
    ASSERT_EQ(bench.run(full, out, err), 0) << err.str();
    const std::string grid_full = slurp(dir + "grid.csv");
    const std::string whole_full = slurp(dir + "whole.csv");

    // Every shard count recombines byte-identically, including
    // counts larger than the job list (empty shards emit nothing).
    for (int n : {2, 3, 5, 9}) {
        std::string grid_merged, whole_merged;
        for (int i = 0; i < n; ++i) {
            BenchOptions opt;
            opt.common.jobs = 2;
            opt.common.shard = runner::Shard{i, n};
            std::ostringstream sout, serr;
            ASSERT_EQ(bench.run(opt, sout, serr), 0) << serr.str();
            EXPECT_NE(sout.str().find("(shard " + opt.common.shard.label() +
                                      ")"),
                      std::string::npos);
            grid_merged += slurp(dir + "grid.csv");
            whole_merged += slurp(dir + "whole.csv");
        }
        EXPECT_EQ(grid_merged, grid_full) << "n=" << n;
        EXPECT_EQ(whole_merged, whole_full) << "n=" << n;
    }
}

/** A tiny two-table bench whose emit calls are counted. */
FigureBench
countingBench(const std::string &dir, std::atomic<int> *emits)
{
    FigureBench bench("counting");
    FigureTable t;
    t.title = "counting grid";
    t.header = {"Point", "Square"};
    t.csvName = dir + "counting.csv";
    t.grid.axis("v", {"2", "3", "4"});
    t.emit = [emits](const FigurePoint &p) -> FigureRows {
        emits->fetch_add(1);
        const int v = p.integer("v");
        return {{p.label, std::to_string(v * v)}};
    };
    bench.add(std::move(t));
    return bench;
}

TEST(FigureBench, WarmCacheRerunExecutesZeroJobs)
{
    const std::string dir = scratchDir("bench_grid_cache");
    std::atomic<int> emits{0};
    const FigureBench bench = countingBench(dir, &emits);

    BenchOptions opt;
    opt.common.jobs = 2;
    opt.common.cacheDir = dir + "cache";

    std::ostringstream cold_out, cold_err;
    ASSERT_EQ(bench.run(opt, cold_out, cold_err), 0)
        << cold_err.str();
    EXPECT_EQ(emits.load(), 3);
    EXPECT_NE(cold_out.str().find("counting: cache: 0 hits, 3"
                                  " misses, 3 stored; simulation jobs"
                                  " executed: 3"),
              std::string::npos)
        << cold_out.str();
    const std::string cold_csv = slurp(dir + "counting.csv");
    EXPECT_NE(cold_csv.find("v=4,16"), std::string::npos);

    // The warm rerun renders from the store: same bytes, no emits.
    std::ostringstream warm_out, warm_err;
    ASSERT_EQ(bench.run(opt, warm_out, warm_err), 0)
        << warm_err.str();
    EXPECT_EQ(emits.load(), 3);
    EXPECT_NE(warm_out.str().find("counting: cache: 3 hits, 0"
                                  " misses, 0 stored; simulation jobs"
                                  " executed: 0"),
              std::string::npos)
        << warm_out.str();
    EXPECT_EQ(slurp(dir + "counting.csv"), cold_csv);

    // --cache off ignores the warm directory entirely.
    BenchOptions off = opt;
    off.common.cacheMode = cache::Mode::Off;
    std::ostringstream off_out, off_err;
    ASSERT_EQ(bench.run(off, off_out, off_err), 0) << off_err.str();
    EXPECT_EQ(emits.load(), 6);
    EXPECT_EQ(off_out.str().find("cache:"), std::string::npos);
}

TEST(FigureBench, ShardsResumeFromASharedCacheDir)
{
    const std::string dir = scratchDir("bench_grid_cache_shard");
    std::atomic<int> emits{0};
    const FigureBench bench = countingBench(dir, &emits);

    // Shard 0 fills its slice; the full run only emits the rest.
    BenchOptions s0;
    s0.common.cacheDir = dir + "cache";
    s0.common.shard = runner::Shard{0, 2};
    std::ostringstream out0, err0;
    ASSERT_EQ(bench.run(s0, out0, err0), 0) << err0.str();
    const int shard0_emits = emits.load();
    EXPECT_GT(shard0_emits, 0);

    BenchOptions full;
    full.common.cacheDir = dir + "cache";
    std::ostringstream out1, err1;
    ASSERT_EQ(bench.run(full, out1, err1), 0) << err1.str();
    EXPECT_EQ(emits.load(), 3); // shard jobs were not re-emitted
    EXPECT_NE(out1.str().find("cache: " +
                              std::to_string(shard0_emits) +
                              " hits"),
              std::string::npos)
        << out1.str();
}

TEST(FigureBench, JobFailureIsReportedNotSwallowed)
{
    FigureBench bench("failing");
    FigureTable t;
    t.title = "failing";
    t.header = {"Col"};
    t.grid.axis("i", {"0", "1", "2"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        if (p.index == 1)
            fatal("grid point exploded");
        return {{p.value("i")}};
    };
    bench.add(std::move(t));

    BenchOptions opt;
    opt.common.jobs = 2;
    std::ostringstream out, err;
    EXPECT_EQ(bench.run(opt, out, err), 1);
    EXPECT_NE(err.str().find("grid point exploded"),
              std::string::npos)
        << err.str();
}

// ---- shared bench CLI -------------------------------------------------

TEST(BenchArgs, ParsesJobsShardAndHelp)
{
    BenchOptions opt;
    EXPECT_EQ(parseBenchArgs({"--jobs", "4", "--shard", "1/2"}, opt),
              "");
    EXPECT_EQ(opt.common.jobs, 4);
    EXPECT_EQ(opt.common.shard.index, 1);
    EXPECT_EQ(opt.common.shard.count, 2);
    EXPECT_FALSE(opt.showHelp);
    EXPECT_TRUE(opt.common.cacheDir.empty());

    BenchOptions cached;
    EXPECT_EQ(parseBenchArgs({"--cache-dir", "/tmp/c", "--cache",
                              "refresh"},
                             cached),
              "");
    EXPECT_EQ(cached.common.cacheDir, "/tmp/c");
    EXPECT_EQ(cached.common.cacheMode, cache::Mode::Refresh);

    BenchOptions eq;
    EXPECT_EQ(parseBenchArgs({"--jobs=8", "--shard=0/4"}, eq), "");
    EXPECT_EQ(eq.common.jobs, 8);
    EXPECT_EQ(eq.common.shard.count, 4);

    BenchOptions help;
    EXPECT_EQ(parseBenchArgs({"--help"}, help), "");
    EXPECT_TRUE(help.showHelp);

    BenchOptions none;
    EXPECT_EQ(parseBenchArgs({}, none), "");
    EXPECT_EQ(none.common.jobs, 0); // 0 = the binary's default
    EXPECT_TRUE(none.common.shard.whole());
}

TEST(BenchArgs, RejectsMalformedInput)
{
    BenchOptions opt;
    EXPECT_NE(parseBenchArgs({"--jobs", "0"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--jobs", "many"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--jobs"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--shard", "2/2"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--shard", "nope"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--frobnicate", "1"}, opt), "");
    EXPECT_NE(parseBenchArgs({"--cache", "rw"}, opt), "");
    // --cache without --cache-dir is a usage error here too.
    EXPECT_NE(parseBenchArgs({"--cache", "read"}, opt), "");
}

// ---- figure registry --------------------------------------------------

TEST(FigureRegistry, EveryBinaryBuildsANonEmptyBench)
{
    const auto &entries = figureRegistry();
    EXPECT_EQ(entries.size(), 13u);
    for (const auto &entry : entries) {
        const FigureBench bench = entry.build();
        EXPECT_EQ(bench.name(), entry.binary);
        EXPECT_GT(bench.jobCount(), 0u) << entry.binary;
    }
}

// ---- a real converted figure ------------------------------------------

TEST(FigureBench, ConvertedFigure16IsDeterministicAcrossJobsAndShards)
{
    // Figure 16 runs eight real proxy simulations, one per sparsity
    // row -- small enough for a unit test, real enough to catch
    // shared-state bugs in a converted figure. CSVs land in the CWD,
    // so run from a scratch directory.
    const auto old_cwd = std::filesystem::current_path();
    const std::string dir = ::testing::TempDir() + "fig16_grid";
    std::filesystem::create_directories(dir);
    std::filesystem::current_path(dir);

    auto run = [](const BenchOptions &opt) {
        std::ostringstream out, err;
        EXPECT_EQ(figure16Bench().run(opt, out, err), 0) << err.str();
        return slurp("fig16_bandwidth.csv");
    };

    BenchOptions serial;
    serial.common.jobs = 1;
    const std::string baseline = run(serial);
    EXPECT_NE(baseline.find("Sparsity,AI(ops/B)"), std::string::npos);

    BenchOptions threaded;
    threaded.common.jobs = 4;
    EXPECT_EQ(run(threaded), baseline);

    std::string merged;
    for (int i = 0; i < 2; ++i) {
        BenchOptions opt;
        opt.common.jobs = 2;
        opt.common.shard = runner::Shard{i, 2};
        merged += run(opt);
    }
    EXPECT_EQ(merged, baseline);

    std::filesystem::current_path(old_cwd);
}

} // namespace
} // namespace bench
} // namespace canon
