/**
 * @file
 * Embedding the simulator as a library: the canon::engine façade.
 *
 * Build & run:
 *     cmake -B build && cmake --build build
 *     ./build/example_embed_engine
 *
 * canonsim and the figure benches are thin adapters over the same
 * three types this example exercises directly:
 *
 *   1. ScenarioRequest -- a typed, self-validating description of
 *      what to run (workload or model, shape, fabric, architectures,
 *      optional sweep axes),
 *   2. Engine -- owns the worker pool and the optional result cache;
 *      run() / runBatch() / a streaming per-result callback,
 *   3. ResultSet -- the outcomes, pickable apart per scenario and
 *      per architecture, or rendered as the canonsim tables.
 */

#include <iostream>

#include "engine/engine.hh"
#include "engine/registry.hh"

using namespace canon;

int
main()
{
    // --- 1. a typed request: SpMM across two architectures ----------
    engine::ScenarioRequest request;
    request.workload(cli::Workload::Spmm)
        .shape(128, 128, 32)
        .sparsity(0.6)
        .seed(7)
        .archs({"canon", "zed"});
    if (!request.validate()) {
        std::cerr << "invalid request: " << request.error() << "\n";
        return 1;
    }

    // --- 2. an engine with its own worker pool ----------------------
    engine::Engine eng(engine::EngineConfig{.jobs = 2});
    engine::ResultSet rs = eng.run(request);
    if (!rs.ok() || rs.failureCount() != 0) {
        std::cerr << "run failed: " << rs.error() << "\n";
        return 1;
    }

    // --- 3. pick the results apart ... ------------------------------
    const runner::ScenarioResult &scenario = rs.scenarios().front();
    for (const auto &[arch, profile] : scenario.cases)
        std::cout << arch << ": " << profile.cycles << " cycles\n";

    // ... or render the canonsim report for the same scenario.
    rs.statsTable().print(std::cout);

    // --- 4. a sweep request, streamed in deterministic order --------
    engine::ScenarioRequest sweep;
    sweep.workload(cli::Workload::Spmm)
        .shape(64, 64, 16)
        .sweep("sparsity", "0.3,0.6,0.9");
    std::size_t streamed = 0;
    engine::ResultSet swept =
        eng.run(sweep, [&](const runner::ScenarioResult &r) {
            // Called in expansion order while later scenarios may
            // still be executing on other workers.
            std::cout << "streamed [" << streamed++ << "] "
                      << r.job.point << ": "
                      << r.cases.at("canon").cycles << " cycles\n";
        });
    if (swept.failureCount() != 0)
        return 1;

    // --- 5. request batches share one pool --------------------------
    engine::ScenarioRequest gemm;
    gemm.workload(cli::Workload::Gemm).shape(64, 64, 16);
    engine::ScenarioRequest window;
    window.workload(cli::Workload::SddmmWindow)
        .shape(256, 32, 16)
        .window(32);
    for (const engine::ResultSet &b : eng.runBatch({gemm, window}))
        if (!b.ok() || b.failureCount() != 0)
            return 1;
    std::cout << "batch of 2 requests: ok\n";

    // --- 6. validation is construction-time, same voice as the CLI --
    engine::ScenarioRequest bad;
    bad.set("sparsity", "1.5");
    std::cout << "rejected: " << bad.error() << "\n";

    // --- 7. and the registry says what can run ----------------------
    std::cout << "engine knows " << engine::workloadRegistry().size()
              << " workloads, " << engine::modelRegistry().size()
              << " models, " << engine::archRegistry().size()
              << " architectures\n";
    return 0;
}
