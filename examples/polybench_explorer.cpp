/**
 * @file
 * PolyBench explorer: maps every kernel of the evaluated PolyBench
 * suite onto both general-purpose fabrics -- the CGRA through its
 * modulo-scheduling mapper, Canon through its row-SIMD loop model --
 * and prints the per-kernel comparison behind the PolyB-* columns of
 * Figure 12.
 *
 * Things to look for (Section 6.2): the CGRA wins the low-DLP
 * solvers (trisolv, durbin) where fine-grained reconfiguration
 * pipelines a dependence chain; Canon wins everything with enough
 * data parallelism to feed its 4-wide lanes.
 */

#include <iostream>

#include "common/table.hh"
#include "workloads/polybench.hh"

using namespace canon;

int
main()
{
    const auto cfg = CanonConfig::paper();
    CgraModel cgra;

    Table t("PolyBench on Canon vs CGRA");
    t.header({"Kernel", "Group", "DFG nodes", "DLP", "recMII",
              "CGRA II", "CGRA cycles", "Canon cycles", "Winner"});

    int canon_wins = 0, cgra_wins = 0;
    for (const auto &k : polybenchSuite()) {
        const auto mapping = cgra.mapper().map(k.body, k.recMii);
        const auto c = canonPolybench(k, cfg);
        const auto g = cgraPolybench(k, cgra);
        const bool canon_faster = c.cycles < g.cycles;
        (canon_faster ? canon_wins : cgra_wins)++;
        t.addRow({k.name, polyGroupName(k.group),
                  std::to_string(k.body.size()),
                  std::to_string(k.dlp), std::to_string(k.recMii),
                  std::to_string(mapping.ii),
                  Table::fmtInt(g.cycles), Table::fmtInt(c.cycles),
                  canon_faster ? "Canon" : "CGRA"});
    }
    t.print();
    std::cout << "\nCanon wins " << canon_wins << " kernels, CGRA wins "
              << cgra_wins
              << " (CGRA's wins concentrate in the low-DLP "
                 "solvers).\n";
    return 0;
}
