/**
 * @file
 * Sparse attention on Canon: the QK^T score computation of a
 * transformer layer under two sparsification regimes the paper
 * evaluates --
 *
 *   (a) unstructured sparse attention (Sanger/ViTCoD-style): a
 *       runtime mask samples the score matrix => SDDMM with the mask
 *       driving the orchestrators' dynamic decisions;
 *   (b) sliding-window attention (Longformer/Mistral): the band is
 *       compile-time structure => Canon's structured mapping computes
 *       exactly the band (Section 4.1.3).
 *
 * Both are checked against the reference and compared against what a
 * dense accelerator would have to do.
 */

#include <iostream>

#include "baselines/systolic.hh"
#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/sddmm.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"
#include "workloads/canon_runner.hh"

using namespace canon;

int
main()
{
    setQuiet(true);
    Rng rng(7);
    const int seq = 64, head_dim = 32;

    // Q and K^T for one attention head (INT8-quantized scores).
    const auto q = randomDense(seq, head_dim, rng);
    const auto kt = randomDense(head_dim, seq, rng);

    const auto cfg = CanonConfig::paper();

    // ---- (a) unstructured sparse attention --------------------------
    const auto mask = randomMask(seq, seq, /*sparsity=*/0.75, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSddmm(mask, q, kt, cfg));
    const auto cycles_u = fabric.run();
    const bool ok =
        fabric.result() == reference::sddmm(mask, q, kt);
    std::cout << "unstructured mask (" << mask.nnz() << "/"
              << seq * seq << " scores live): " << cycles_u
              << " cycles, result "
              << (ok ? "verified" : "WRONG") << "\n";

    // A dense engine computes all seq*seq scores regardless:
    SystolicModel dense(SystolicConfig{});
    std::cout << "  dense accelerator baseline:  "
              << dense.sddmm(seq, head_dim, seq, 0.75).cycles
              << " cycles (computes every score)\n";

    // ---- (b) sliding-window attention --------------------------------
    const int window = 16;
    const auto band = slidingWindowMask(seq, seq, window);
    CanonFabric fabric_w(cfg);
    fabric_w.load(mapSddmm(band, q, kt, cfg));
    const auto cycles_w = fabric_w.run();
    const bool ok_w =
        fabric_w.result() == reference::sddmm(band, q, kt);
    std::cout << "window mask (band of " << window << "): "
              << cycles_w << " cycles, result "
              << (ok_w ? "verified" : "WRONG") << "\n";

    // At paper scale the structured mapping + proxy scaling kick in:
    CanonRunner runner(cfg);
    const auto win1 = runner.sddmmWindowShape(4096, 64, 512, 9);
    const auto chunked =
        dense.sddmmWindow(4096, 64, 512);
    std::cout << "\nLongformer Win1 (seq 4K, window 512):\n"
              << "  Canon structured mapping: " << win1.cycles
              << " cycles\n"
              << "  sliding-chunk dense conversion: "
              << chunked.cycles << " cycles ("
              << Table::fmt(static_cast<double>(chunked.cycles) /
                                static_cast<double>(win1.cycles),
                            2)
              << "x slower)\n";
    return ok && ok_w ? 0 : 1;
}
