/**
 * @file
 * Measure the per-resident-row cycle cost curve that justifies the
 * proxy-row caps (kMinProxyRows / kMinProxyRowsAdaptive /
 * effectiveProxyRows) in the CanonRunner scaling model.
 *
 * For 16x16 and 32x32 fabrics, this drives a large synthetic SpMM
 * through CanonRunner with explicit CanonRunOptions::maxProxyRows
 * overrides, under both scratchpad flush policies (--spad-flush
 * eager | adaptive). A Collector from the obs layer is installed
 * around each run: the scaling model reports *scaled* cycles, but
 * FabricRunObs records the raw simulated cycles of the proxy itself,
 * which is what the per-row cost is defined over. The flat stats of
 * the same observation give the scratchpad cap-pressure share that
 * explains the shape of each curve.
 *
 * Output: an aligned table on stdout and resident_rows.csv in the
 * CWD (consumed by docs/resident_rows.md).
 */

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <numeric>

#include "obs/collector.hh"
#include "workloads/canon_runner.hh"

namespace
{

struct Measurement
{
    int fabric = 0;        // rows == cols
    int residentRows = 0;  // simulated output rows (the cap)
    std::uint64_t cycles = 0; // raw proxy cycles (unscaled)
    double perRow = 0.0;
    double spadCapPct = 0.0; // % of orch-cycles at resident cap
};

Measurement
measure(int fabric, int resident_rows, canon::SpadFlushPolicy flush)
{
    canon::CanonConfig cfg;
    cfg.rows = fabric;
    cfg.cols = fabric;
    cfg.spadFlush = flush;

    canon::CanonRunOptions opt;
    opt.maxProxyRows = resident_rows;

    // M far beyond every cap so the proxy path always engages and the
    // simulated row count is exactly the override; full K so row-slice
    // populations are authentic, one column pass.
    const std::int64_t m = 1 << 20;
    const std::int64_t k = 128;
    const std::int64_t n = fabric * canon::kSimdWidth;

    canon::obs::ObsOptions obs_opt;
    obs_opt.statsJsonOut = "(memory)"; // enables flat-stats capture;
                                       // nothing is written to disk
    canon::obs::Collector col(obs_opt);
    std::shared_ptr<const canon::obs::ScenarioObs> seen;
    {
        canon::obs::ScopedCollector scope(col);
        canon::CanonRunner runner(cfg);
        (void)runner.spmmShape(m, k, n, 0.7, 42, opt);
        seen = col.finish();
    }

    Measurement out;
    out.fabric = fabric;
    out.residentRows = resident_rows;
    if (seen->runs.empty()) {
        std::cerr << "resident_rows: no observed fabric run\n";
        std::exit(1);
    }
    const auto &run = seen->runs.front();
    out.cycles = run.cycles;
    out.perRow = static_cast<double>(run.cycles) / resident_rows;

    // Sum spadCapCycles over every orchestrator; the denominator is
    // one orchestrator-cycle per fabric row per simulated cycle.
    std::uint64_t cap_cycles = 0;
    for (const auto &[path, value] : run.flat)
        if (path.size() > 13 &&
            path.compare(path.size() - 13, 13, "spadCapCycles") == 0)
            cap_cycles += value;
    out.spadCapPct = 100.0 * static_cast<double>(cap_cycles) /
                     (static_cast<double>(run.cycles) * fabric);
    return out;
}

} // namespace

int
main()
{
    const int fabrics[] = {16, 32};
    const int caps[] = {256, 512, 1024, 2048, 4096};
    const canon::SpadFlushPolicy policies[] = {
        canon::SpadFlushPolicy::Eager,
        canon::SpadFlushPolicy::Adaptive};

    std::ofstream csv("resident_rows.csv");
    csv << "flush,fabric,resident_rows,cycles,cycles_per_row,"
           "spad_cap_pct\n";

    std::cout << std::setw(10) << "flush" << std::setw(8) << "fabric"
              << std::setw(10) << "rows" << std::setw(12) << "cycles"
              << std::setw(12) << "cyc/row" << std::setw(12)
              << "spadCap%" << "\n";
    for (auto flush : policies) {
        for (int fabric : fabrics) {
            for (int cap : caps) {
                const auto m = measure(fabric, cap, flush);
                std::cout << std::setw(10)
                          << canon::spadFlushName(flush)
                          << std::setw(8) << m.fabric << std::setw(10)
                          << m.residentRows << std::setw(12)
                          << m.cycles << std::setw(12) << std::fixed
                          << std::setprecision(2) << m.perRow
                          << std::setw(12) << std::setprecision(1)
                          << m.spadCapPct << "\n";
                csv << canon::spadFlushName(flush) << ',' << m.fabric
                    << ',' << m.residentRows << ',' << m.cycles << ','
                    << std::fixed << std::setprecision(4) << m.perRow
                    << ',' << std::setprecision(2) << m.spadCapPct
                    << '\n';
            }
        }
    }
    std::cout << "\nwrote resident_rows.csv\n";
    return 0;
}
