/**
 * @file
 * Quickstart: run a sparse matrix multiplication on the Canon fabric
 * and inspect what the architecture did.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 *
 * The flow below is the whole public API story:
 *   1. make a sparse A and dense B,
 *   2. map them onto a fabric configuration (this compiles the
 *      orchestrator FSM bitstream, slices B into the PE data
 *      memories, and schedules the meta-data streams),
 *   3. run the cycle-level simulation,
 *   4. read the result back and compare against the reference.
 */

#include <iostream>

#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "power/energy.hh"
#include "sparse/generate.hh"
#include "sparse/reference.hh"

using namespace canon;

int
main()
{
    // --- 1. a 60%-sparse A (64x64) and dense B (64x32) -------------
    Rng rng(/*seed=*/42);
    const auto a_dense = randomSparse(64, 64, /*sparsity=*/0.6, rng);
    const auto a = CsrMatrix::fromDense(a_dense);
    const auto b = randomDense(64, 32, rng);
    std::cout << "A: 64x64, " << a.nnz() << " non-zeros ("
              << static_cast<int>(a.sparsity() * 100) << "% sparse)\n";

    // --- 2. map onto the paper's 8x8 configuration ------------------
    const auto cfg = CanonConfig::paper();
    std::cout << "Fabric: " << cfg.describe() << "\n";

    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(a, b, cfg));

    // --- 3. simulate -------------------------------------------------
    const auto cycles = fabric.run();

    // --- 4. verify + report ------------------------------------------
    const bool ok = fabric.result() == reference::spmm(a, b);
    std::cout << "result " << (ok ? "MATCHES" : "DIFFERS FROM")
              << " the reference\n";

    std::cout << "cycles:            " << cycles << "\n"
              << "lane utilization:  " << fabric.utilization() << "\n"
              << "FSM transitions:   " << fabric.stateTransitions()
              << "\n"
              << "stall cycles:      " << fabric.stallCycles() << "\n";

    EnergyModel energy;
    const auto r = energy.evaluate(fabric.profile("quickstart-spmm"));
    std::cout << "energy:            " << r.totalJoules() * 1e9
              << " nJ\n"
              << "average power:     " << r.watts() * 1e3 << " mW\n";
    return ok ? 0 : 1;
}
