/**
 * @file
 * Spatial execution mode demo (Appendix D / Figure 22).
 *
 * Canon can fall back to a fully static, place-and-route style
 * mapping: the orchestrator streams per-column instructions through
 * the instruction NoC during a configuration phase (~3 cycles per
 * column), the pipelines freeze, and every PE then re-executes its
 * held instruction -- a classic CGRA. Here we configure one PE row as
 * a 4-tap FIR-like pipeline: column c computes
 *
 *     psum_out = psum_in + coeff[c] * sample[c]
 *
 * with coefficients in the scratchpads and samples in data memory,
 * while another row is configured as a plain forwarding bucket
 * brigade -- distinct per-PE programs, which the time-lapsed SIMD
 * mode cannot express.
 */

#include <iostream>

#include "core/fabric.hh"

using namespace canon;

namespace as = canon::addrspace;

int
main()
{
    CanonConfig cfg;
    cfg.rows = 2;
    cfg.cols = 4;
    CanonFabric fabric(cfg);

    // Row 0: MAC pipeline; row 1: forwarding brigade.
    std::vector<std::vector<Instruction>> program(2);
    for (int c = 0; c < cfg.cols; ++c) {
        Instruction mac;
        mac.op = OpCode::VvMacW;
        mac.op1 = as::spad(0); // coefficient
        mac.op2 = as::dmem(0); // sample
        mac.res = as::portOut(Dir::East);
        program[0].push_back(mac);

        Instruction mov;
        mov.op = OpCode::VMov;
        mov.op1 = as::portIn(Dir::West);
        mov.res = as::portOut(Dir::East);
        program[1].push_back(mov);
    }

    const auto config_cycles = fabric.configureSpatial(program);
    std::cout << "configuration took " << config_cycles
              << " cycles (~3 per column, Figure 22)\n";

    // Coefficients 1..4, samples all 2: each traversal accumulates
    // sum(c+1)*2 = 20 onto the west seed.
    for (int c = 0; c < cfg.cols; ++c) {
        fabric.pe(0, c).spad().poke(0, Vec4::splat(c + 1));
        fabric.pe(0, c).dmem().poke(0, Vec4::splat(2));
    }

    for (int v = 0; v < 4; ++v) {
        fabric.pushWest(0, Vec4::splat(v * 100));
        fabric.pushWest(1, Vec4::splat(v + 1));
    }

    std::cout << "row 0 (MAC pipeline) and row 1 (brigade) outputs:\n";
    int got0 = 0, got1 = 0;
    for (int t = 0; t < 80 && (got0 < 4 || got1 < 4); ++t) {
        fabric.step();
        if (auto v = fabric.popEast(0)) {
            std::cout << "  cycle " << fabric.cycles()
                      << "  row0 -> " << (*v)[0] << " (expected "
                      << got0 * 100 + 20 << ")\n";
            ++got0;
        }
        if (auto v = fabric.popEast(1)) {
            std::cout << "  cycle " << fabric.cycles()
                      << "  row1 -> " << (*v)[0] << "\n";
            ++got1;
        }
    }
    return got0 == 4 && got1 == 4 ? 0 : 1;
}
