/**
 * @file
 * Model analysis: walk one real model's layer list across all five
 * architectures and report per-layer cycles plus whole-model
 * energy-delay product -- a working miniature of Figure 14's
 * methodology, exposed as an API example.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace canon;
using namespace canon::bench;

int
main()
{
    setQuiet(true);
    ArchSuite suite;
    EnergyModel energy;

    const auto model = llama8bMlp(0.7);
    std::cout << "Model: " << model.name << " ("
              << model.layers.size() << " layers)\n";

    Table t("Per-layer cycles (millions)");
    std::vector<std::string> header = {"Layer", "Shape"};
    for (const auto &a : archOrder())
        header.push_back(archLabel(a));
    t.header(header);

    std::uint64_t seed = 900;
    for (const auto &layer : model.layers) {
        const auto r =
            suite.spmm(layer.m, layer.k, layer.n, layer.sparsity,
                       seed++);
        std::vector<std::string> row = {
            layer.name, std::to_string(layer.m) + "x" +
                            std::to_string(layer.k) + "x" +
                            std::to_string(layer.n)};
        for (const auto &a : archOrder()) {
            auto it = r.find(a);
            row.push_back(
                it == r.end()
                    ? "X"
                    : Table::fmt(static_cast<double>(
                                     it->second.cycles) /
                                     1e6,
                                 1));
        }
        t.addRow(row);
    }
    t.print();

    const auto whole = suite.model(model, 950);
    Table e("Whole-model EDP normalized to Canon (lower is better)");
    std::vector<std::string> eh;
    for (const auto &a : archOrder())
        eh.push_back(archLabel(a));
    e.header(eh);
    const double canon_edp =
        energy.evaluate(whole.at("canon")).edp();
    std::vector<std::string> row;
    for (const auto &a : archOrder()) {
        auto it = whole.find(a);
        row.push_back(it == whole.end()
                          ? "X"
                          : Table::fmt(energy.evaluate(it->second)
                                               .edp() /
                                           canon_edp,
                                       2));
    }
    e.addRow(row);
    e.print();
    return 0;
}
