/**
 * @file
 * Synthetic tensor generators.
 *
 * The paper's workloads come from activation-sparsified real models
 * (ResNet-50, LLaMA-8B, Mistral-7B, Longformer-on-BERT). Those tensors
 * are not redistributable, so this repository substitutes synthetic
 * matrices with the same *structural* statistics -- which is what the
 * architecture reacts to (Section 5 of DESIGN.md):
 *
 *  - unstructured sparsity at a target density (S1/S2/S3 ranges),
 *  - N:M fine-grained structured sparsity (2:4, 2:8, any N:M),
 *  - sliding-window (diagonal band) output masks for window attention.
 *
 * Values are small nonzero INT8s so that INT32 accumulation is exact
 * for every problem size used in tests and benches.
 */

#ifndef CANON_SPARSE_GENERATE_HH
#define CANON_SPARSE_GENERATE_HH

#include "common/rng.hh"
#include "sparse/matrix.hh"

namespace canon
{

/** Dense matrix with uniform nonzero values in [-magnitude, magnitude]. */
DenseMatrix randomDense(int rows, int cols, Rng &rng, int magnitude = 4);

/**
 * Unstructured sparse matrix: every entry is nonzero with probability
 * (1 - sparsity), independently. Per-row nnz therefore varies -- the
 * imbalance Canon's buffer management is designed to absorb.
 */
DenseMatrix randomSparse(int rows, int cols, double sparsity, Rng &rng,
                         int magnitude = 4);

/**
 * Unstructured sparse matrix with an exact total nnz, spread uniformly
 * at random. Used where a precise arithmetic intensity is required
 * (Figure 15/16 sweeps).
 */
DenseMatrix randomSparseExact(int rows, int cols, std::size_t nnz,
                              Rng &rng, int magnitude = 4);

/**
 * Skewed sparse matrix: alternating rows at @p sparsity_a and
 * @p sparsity_b. Models the uneven non-zero distributions of real
 * activation tensors, where row-granular accelerators hit their
 * long-row balancing cliff (Section 6.2's S3 discussion).
 */
DenseMatrix randomSparseBimodal(int rows, int cols, double sparsity_a,
                                double sparsity_b, Rng &rng,
                                int magnitude = 4);

/**
 * N:M structured sparsity: exactly @p n nonzeros in every aligned group
 * of @p m consecutive elements along each row (2:4 is the Tensor-Core
 * pattern; the paper also evaluates 2:8). cols must divide by m.
 */
DenseMatrix nmStructured(int rows, int cols, int n, int m, Rng &rng,
                         int magnitude = 4);

/** True iff every aligned m-group of every row has at most n nonzeros. */
bool conformsToNm(const DenseMatrix &a, int n, int m);

/**
 * Sliding-window attention mask for a @p query_len x @p key_len score
 * matrix: position (i, j) is live iff |i - j'| <= window/2 where j' is
 * j scaled to query positions. For square self-attention this is the
 * Longformer band of width @p window.
 */
CsrMatrix slidingWindowMask(int query_len, int key_len, int window);

/** Random unstructured binary mask with target output sparsity. */
CsrMatrix randomMask(int rows, int cols, double sparsity, Rng &rng);

} // namespace canon

#endif // CANON_SPARSE_GENERATE_HH
