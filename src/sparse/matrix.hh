/**
 * @file
 * Dense and CSR matrix containers used throughout the repository.
 *
 * Matrix values are INT8 (Elem) on the input side and INT32 (Word) on
 * the accumulator/output side, matching the INT8 MAC datapath of
 * Table 1. All correctness checks in the test suite are therefore exact
 * integer comparisons, never epsilon comparisons.
 */

#ifndef CANON_SPARSE_MATRIX_HH
#define CANON_SPARSE_MATRIX_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace canon
{

/** Row-major dense matrix. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(int rows, int cols, T init = T{})
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * cols, init)
    {
        panicIf(rows < 0 || cols < 0, "Matrix: negative shape");
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    T &
    at(int r, int c)
    {
        checkIndex(r, c);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    T
    at(int r, int c) const
    {
        checkIndex(r, c);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    const std::vector<T> &data() const { return data_; }
    std::vector<T> &data() { return data_; }

    /** Count of structurally nonzero entries. */
    std::size_t
    countNonZero() const
    {
        std::size_t n = 0;
        for (const auto &v : data_)
            if (v != T{})
                ++n;
        return n;
    }

    /** Fraction of zero entries, in [0, 1]. */
    double
    sparsity() const
    {
        if (data_.empty())
            return 0.0;
        return 1.0 -
               static_cast<double>(countNonZero()) /
                   static_cast<double>(data_.size());
    }

    friend bool
    operator==(const Matrix &a, const Matrix &b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
               a.data_ == b.data_;
    }

  private:
    void
    checkIndex(int r, int c) const
    {
        panicIf(r < 0 || r >= rows_ || c < 0 || c >= cols_,
                "Matrix index (", r, ",", c, ") out of ", rows_, "x",
                cols_);
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

using DenseMatrix = Matrix<Elem>;
using WordMatrix = Matrix<Word>;

/**
 * Compressed Sparse Row matrix with INT8 values. The canonical exchange
 * format between generators, the Canon meta-data streams, and the
 * baseline accelerator models.
 */
class CsrMatrix
{
  public:
    CsrMatrix() : rowPtr_(1, 0) {}

    CsrMatrix(int rows, int cols) : rows_(rows), cols_(cols)
    {
        rowPtr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    }

    /** Build from a dense matrix, dropping zeros. */
    static CsrMatrix fromDense(const DenseMatrix &d);

    /** Expand back into a dense matrix. */
    DenseMatrix toDense() const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t nnz() const { return colIdx_.size(); }

    int
    rowNnz(int r) const
    {
        syncRowPtr();
        return rowPtr_[static_cast<std::size_t>(r) + 1] -
               rowPtr_[static_cast<std::size_t>(r)];
    }

    /** Append an entry; rows must be appended in order, cols ascending. */
    void append(int row, int col, Elem value);

    const std::vector<std::int32_t> &
    rowPtr() const
    {
        syncRowPtr();
        return rowPtr_;
    }

    const std::vector<std::int32_t> &colIdx() const { return colIdx_; }
    const std::vector<Elem> &values() const { return values_; }

    double
    sparsity() const
    {
        const auto total =
            static_cast<double>(rows_) * static_cast<double>(cols_);
        return total == 0.0 ? 0.0 : 1.0 - static_cast<double>(nnz()) / total;
    }

  private:
    /** Patch rowPtr entries past the construction cursor (lazy append). */
    void syncRowPtr() const;

    int rows_ = 0;
    int cols_ = 0;
    mutable std::vector<std::int32_t> rowPtr_;
    std::vector<std::int32_t> colIdx_;
    std::vector<Elem> values_;

    /** Last row touched by append(); -1 when empty / fully synced. */
    int cursorRow_ = -1;
    mutable bool dirty_ = false;
};

} // namespace canon

#endif // CANON_SPARSE_MATRIX_HH
