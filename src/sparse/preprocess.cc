#include "sparse/preprocess.hh"

#include <algorithm>
#include <numeric>

namespace canon
{

WordMatrix
RowPermutation::unpermute(const WordMatrix &c) const
{
    panicIf(static_cast<int>(perm.size()) != c.rows(),
            "RowPermutation: size mismatch");
    WordMatrix out(c.rows(), c.cols());
    for (int r = 0; r < c.rows(); ++r)
        for (int col = 0; col < c.cols(); ++col)
            out.at(perm[static_cast<std::size_t>(r)], col) =
                c.at(r, col);
    return out;
}

RowPermutation
balancedRowOrder(const CsrMatrix &a)
{
    std::vector<int> by_nnz(static_cast<std::size_t>(a.rows()));
    std::iota(by_nnz.begin(), by_nnz.end(), 0);
    std::stable_sort(by_nnz.begin(), by_nnz.end(),
                     [&](int x, int y) {
                         return a.rowNnz(x) > a.rowNnz(y);
                     });

    // Snake deal: heaviest, lightest, second-heaviest, ... so that any
    // contiguous window of rows carries near-average work.
    RowPermutation p;
    p.perm.reserve(by_nnz.size());
    std::size_t lo = 0, hi = by_nnz.size();
    bool front = true;
    while (lo < hi) {
        p.perm.push_back(front ? by_nnz[lo++] : by_nnz[--hi]);
        front = !front;
    }
    return p;
}

CsrMatrix
permuteRows(const CsrMatrix &a, const RowPermutation &p)
{
    panicIf(static_cast<int>(p.perm.size()) != a.rows(),
            "permuteRows: size mismatch");
    CsrMatrix out(a.rows(), a.cols());
    const auto &rp = a.rowPtr();
    for (int nr = 0; nr < a.rows(); ++nr) {
        const int orig = p.perm[static_cast<std::size_t>(nr)];
        for (auto i = rp[orig]; i < rp[orig + 1]; ++i)
            out.append(nr, a.colIdx()[i], a.values()[i]);
    }
    return out;
}

} // namespace canon
