/**
 * @file
 * Gold-standard reference kernels.
 *
 * Every simulated execution in this repository -- Canon, systolic, ZeD,
 * CGRA -- is checked against these scalar implementations. Arithmetic is
 * INT8 x INT8 -> INT32 with INT32 accumulation, the exact semantics of
 * the PE vector lane, so comparisons are bit-exact.
 */

#ifndef CANON_SPARSE_REFERENCE_HH
#define CANON_SPARSE_REFERENCE_HH

#include "sparse/matrix.hh"

namespace canon
{
namespace reference
{

/** C = A(MxK) * B(KxN), all dense. */
WordMatrix gemm(const DenseMatrix &a, const DenseMatrix &b);

/** C = A(MxK, sparse) * B(KxN, dense), Gustavson row formulation. */
WordMatrix spmm(const CsrMatrix &a, const DenseMatrix &b);

/**
 * C = mask .* (A(MxK) * B(KxN)): sampled dense-dense matmul. Only
 * positions live in @p mask are computed; everything else is zero.
 */
WordMatrix sddmm(const CsrMatrix &mask, const DenseMatrix &a,
                 const DenseMatrix &b);

} // namespace reference
} // namespace canon

#endif // CANON_SPARSE_REFERENCE_HH
