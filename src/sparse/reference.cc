#include "sparse/reference.hh"

namespace canon
{
namespace reference
{

WordMatrix
gemm(const DenseMatrix &a, const DenseMatrix &b)
{
    panicIf(a.cols() != b.rows(), "gemm: shape mismatch ", a.rows(), "x",
            a.cols(), " * ", b.rows(), "x", b.cols());
    WordMatrix c(a.rows(), b.cols());
    for (int m = 0; m < a.rows(); ++m) {
        for (int k = 0; k < a.cols(); ++k) {
            const Word av = a.at(m, k);
            if (av == 0)
                continue;
            for (int n = 0; n < b.cols(); ++n)
                c.at(m, n) += av * static_cast<Word>(b.at(k, n));
        }
    }
    return c;
}

WordMatrix
spmm(const CsrMatrix &a, const DenseMatrix &b)
{
    panicIf(a.cols() != b.rows(), "spmm: shape mismatch ", a.rows(), "x",
            a.cols(), " * ", b.rows(), "x", b.cols());
    WordMatrix c(a.rows(), b.cols());
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();
    for (int m = 0; m < a.rows(); ++m) {
        for (auto i = row_ptr[m]; i < row_ptr[m + 1]; ++i) {
            const Word av = values[i];
            const int k = col_idx[i];
            for (int n = 0; n < b.cols(); ++n)
                c.at(m, n) += av * static_cast<Word>(b.at(k, n));
        }
    }
    return c;
}

WordMatrix
sddmm(const CsrMatrix &mask, const DenseMatrix &a, const DenseMatrix &b)
{
    panicIf(a.cols() != b.rows(), "sddmm: inner dim mismatch ", a.cols(),
            " vs ", b.rows());
    panicIf(mask.rows() != a.rows() || mask.cols() != b.cols(),
            "sddmm: mask shape ", mask.rows(), "x", mask.cols(),
            " does not match output ", a.rows(), "x", b.cols());
    WordMatrix c(mask.rows(), mask.cols());
    const auto &row_ptr = mask.rowPtr();
    const auto &col_idx = mask.colIdx();
    for (int m = 0; m < mask.rows(); ++m) {
        for (auto i = row_ptr[m]; i < row_ptr[m + 1]; ++i) {
            const int n = col_idx[i];
            Word acc = 0;
            for (int k = 0; k < a.cols(); ++k)
                acc += static_cast<Word>(a.at(m, k)) *
                       static_cast<Word>(b.at(k, n));
            c.at(m, n) = acc;
        }
    }
    return c;
}

} // namespace reference
} // namespace canon
