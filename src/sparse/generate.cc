#include "sparse/generate.hh"

#include <algorithm>

namespace canon
{

namespace
{

/** Nonzero INT8 value in [-magnitude, magnitude] \ {0}. */
Elem
nonZeroValue(Rng &rng, int magnitude)
{
    panicIf(magnitude < 1 || magnitude > 127,
            "generator magnitude out of range: ", magnitude);
    for (;;) {
        auto v = static_cast<Elem>(rng.nextRange(-magnitude, magnitude));
        if (v != 0)
            return v;
    }
}

} // namespace

DenseMatrix
randomDense(int rows, int cols, Rng &rng, int magnitude)
{
    DenseMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m.at(r, c) = nonZeroValue(rng, magnitude);
    return m;
}

DenseMatrix
randomSparse(int rows, int cols, double sparsity, Rng &rng, int magnitude)
{
    fatalIf(sparsity < 0.0 || sparsity > 1.0,
            "sparsity must be in [0,1], got ", sparsity);
    DenseMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            if (!rng.nextBool(sparsity))
                m.at(r, c) = nonZeroValue(rng, magnitude);
    return m;
}

DenseMatrix
randomSparseExact(int rows, int cols, std::size_t nnz, Rng &rng,
                  int magnitude)
{
    const std::size_t total =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    fatalIf(nnz > total, "requested nnz ", nnz, " exceeds ", total,
            " entries");
    DenseMatrix m(rows, cols);
    auto positions =
        rng.sample(static_cast<std::uint32_t>(total),
                   static_cast<std::uint32_t>(nnz));
    for (auto p : positions)
        m.at(static_cast<int>(p) / cols, static_cast<int>(p) % cols) =
            nonZeroValue(rng, magnitude);
    return m;
}

DenseMatrix
randomSparseBimodal(int rows, int cols, double sparsity_a,
                    double sparsity_b, Rng &rng, int magnitude)
{
    DenseMatrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
        const double sp = (r % 2 == 0) ? sparsity_a : sparsity_b;
        for (int c = 0; c < cols; ++c)
            if (!rng.nextBool(sp))
                m.at(r, c) = nonZeroValue(rng, magnitude);
    }
    return m;
}

DenseMatrix
nmStructured(int rows, int cols, int n, int m, Rng &rng, int magnitude)
{
    fatalIf(n < 0 || m <= 0 || n > m, "invalid N:M pattern ", n, ":", m);
    fatalIf(cols % m != 0, "cols ", cols, " not divisible by M=", m);
    DenseMatrix mat(rows, cols);
    for (int r = 0; r < rows; ++r) {
        for (int g = 0; g < cols / m; ++g) {
            auto lanes = rng.sample(static_cast<std::uint32_t>(m),
                                    static_cast<std::uint32_t>(n));
            for (auto l : lanes)
                mat.at(r, g * m + static_cast<int>(l)) =
                    nonZeroValue(rng, magnitude);
        }
    }
    return mat;
}

bool
conformsToNm(const DenseMatrix &a, int n, int m)
{
    if (a.cols() % m != 0)
        return false;
    for (int r = 0; r < a.rows(); ++r) {
        for (int g = 0; g < a.cols() / m; ++g) {
            int live = 0;
            for (int i = 0; i < m; ++i)
                if (a.at(r, g * m + i) != 0)
                    ++live;
            if (live > n)
                return false;
        }
    }
    return true;
}

CsrMatrix
slidingWindowMask(int query_len, int key_len, int window)
{
    fatalIf(window <= 0, "window must be positive, got ", window);
    CsrMatrix mask(query_len, key_len);
    const int half = window / 2;
    for (int i = 0; i < query_len; ++i) {
        // Centre of the band for query i, in key coordinates.
        const int centre = key_len == query_len
                               ? i
                               : static_cast<int>(
                                     (static_cast<std::int64_t>(i) *
                                      key_len) /
                                     query_len);
        const int lo = std::max(0, centre - half);
        const int hi = std::min(key_len - 1, centre + half);
        for (int j = lo; j <= hi; ++j)
            mask.append(i, j, 1);
    }
    return mask;
}

CsrMatrix
randomMask(int rows, int cols, double sparsity, Rng &rng)
{
    fatalIf(sparsity < 0.0 || sparsity > 1.0,
            "sparsity must be in [0,1], got ", sparsity);
    CsrMatrix mask(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            if (!rng.nextBool(sparsity))
                mask.append(r, c, 1);
    return mask;
}

} // namespace canon
