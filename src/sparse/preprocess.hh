/**
 * @file
 * Input preprocessing transforms.
 *
 * Section 5 notes that ZeD's row-reorganization preprocessing was
 * excluded from the comparison "as the same can be applied to Canon".
 * This module implements it so the claim is testable: reordering the
 * sparse matrix's rows (by non-zero population) changes nothing
 * semantically -- outputs are permuted back -- but evens out the
 * work distribution that reaches the orchestrators' buffer management,
 * and `bench_ablation_row_reorder` quantifies the effect on both
 * Canon and ZeD.
 */

#ifndef CANON_SPARSE_PREPROCESS_HH
#define CANON_SPARSE_PREPROCESS_HH

#include <vector>

#include "sparse/matrix.hh"

namespace canon
{

/** A row permutation: perm[new_row] = old_row. */
struct RowPermutation
{
    std::vector<int> perm;

    int
    oldRow(int new_row) const
    {
        return perm[static_cast<std::size_t>(new_row)];
    }

    /** Undo the permutation on a result matrix's rows. */
    WordMatrix unpermute(const WordMatrix &c) const;
};

/**
 * Reorder rows so heavy and light rows interleave (balanced snake
 * order): sort by nnz, then deal them out alternately from both ends.
 * This is the balancing reorganization of the ZeD paper.
 */
RowPermutation balancedRowOrder(const CsrMatrix &a);

/** Apply a permutation to A's rows. */
CsrMatrix permuteRows(const CsrMatrix &a, const RowPermutation &p);

} // namespace canon

#endif // CANON_SPARSE_PREPROCESS_HH
