#include "sparse/matrix.hh"

namespace canon
{

CsrMatrix
CsrMatrix::fromDense(const DenseMatrix &d)
{
    CsrMatrix m(d.rows(), d.cols());
    m.colIdx_.reserve(d.countNonZero());
    m.values_.reserve(m.colIdx_.capacity());
    for (int r = 0; r < d.rows(); ++r) {
        for (int c = 0; c < d.cols(); ++c) {
            if (d.at(r, c) != 0) {
                m.colIdx_.push_back(c);
                m.values_.push_back(d.at(r, c));
            }
        }
        m.rowPtr_[static_cast<std::size_t>(r) + 1] =
            static_cast<std::int32_t>(m.colIdx_.size());
    }
    return m;
}

DenseMatrix
CsrMatrix::toDense() const
{
    syncRowPtr();
    DenseMatrix d(rows_, cols_);
    for (int r = 0; r < rows_; ++r) {
        for (auto i = rowPtr_[r]; i < rowPtr_[r + 1]; ++i)
            d.at(r, colIdx_[i]) = values_[i];
    }
    return d;
}

void
CsrMatrix::append(int row, int col, Elem value)
{
    panicIf(row < 0 || row >= rows_, "CsrMatrix::append: row ", row,
            " out of ", rows_);
    panicIf(col < 0 || col >= cols_, "CsrMatrix::append: col ", col,
            " out of ", cols_);
    panicIf(value == 0, "CsrMatrix::append: explicit zero");
    panicIf(row < cursorRow_,
            "CsrMatrix::append: rows must be appended in order (got ",
            row, " after ", cursorRow_, ")");
    panicIf(row == cursorRow_ && !colIdx_.empty() && colIdx_.back() >= col,
            "CsrMatrix::append: columns must ascend within a row");

    // Close out rows skipped since the last append. Entries past the
    // cursor stay stale until syncRowPtr() patches them on read.
    for (int r = std::max(cursorRow_, 0); r < row; ++r)
        rowPtr_[static_cast<std::size_t>(r) + 1] =
            static_cast<std::int32_t>(colIdx_.size());
    cursorRow_ = row;

    colIdx_.push_back(col);
    values_.push_back(value);
    rowPtr_[static_cast<std::size_t>(row) + 1] =
        static_cast<std::int32_t>(colIdx_.size());
    dirty_ = true;
}

void
CsrMatrix::syncRowPtr() const
{
    if (!dirty_)
        return;
    for (std::size_t r = static_cast<std::size_t>(cursorRow_) + 1;
         r < static_cast<std::size_t>(rows_); ++r)
        rowPtr_[r + 1] = static_cast<std::int32_t>(colIdx_.size());
    dirty_ = false;
}

} // namespace canon
