/**
 * @file
 * The architecture-independent execution record: cycles plus named
 * activity counters. Every simulator/model in this repository (Canon
 * fabric, systolic array, ZeD, CGRA) produces an ExecutionProfile;
 * the energy model converts it to joules/watts, and the benches
 * combine both into the paper's figures.
 *
 * Canonical activity keys (all optional; absent = 0):
 *   laneMacs     INT8 multiply-accumulate lane operations
 *   aluOps       non-MAC vector ALU lane operations
 *   dmemReads / dmemWrites     per-PE data memory vector accesses
 *   spadReads / spadWrites     scratchpad vector accesses
 *   edgeSramReads / edgeSramWrites  shared edge-SRAM word accesses
 *   routerHops   circuit-switched NoC vector transfers
 *   instHops     instruction NoC hops
 *   lutLookups   orchestrator LUT reads
 *   orchCycles   orchestrator active cycles
 *   bufferSearches  associative psum-tag probes
 *   regReads / regWrites   SIMD register file accesses
 *   stateTransitions   data-driven FSM transitions (Figure 11)
 *   decodeOps    sparse-format decode operations (ZeD)
 *   crossbarXfers  crossbar distribution transfers (ZeD)
 *   instFetches  per-PE instruction memory fetches (CGRA)
 *   offchipBytes main-memory traffic in bytes
 */

#ifndef CANON_POWER_PROFILE_HH
#define CANON_POWER_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>

namespace canon
{

struct ExecutionProfile
{
    std::string arch;
    std::string workload;
    std::uint64_t cycles = 0;
    std::uint64_t peCount = 0; //!< for leakage/idle accounting
    std::map<std::string, std::uint64_t> activity;

    std::uint64_t
    get(const std::string &key) const
    {
        auto it = activity.find(key);
        return it == activity.end() ? 0 : it->second;
    }

    void
    add(const std::string &key, std::uint64_t n)
    {
        activity[key] += n;
    }

    /** Accumulate another profile (multi-pass tiling, model sums). */
    void
    accumulate(const ExecutionProfile &o)
    {
        cycles += o.cycles;
        for (const auto &[k, v] : o.activity)
            activity[k] += v;
    }

    /** Scale cycles and all activity by a tiling replication factor. */
    void
    scale(double f)
    {
        cycles = static_cast<std::uint64_t>(
            static_cast<double>(cycles) * f);
        for (auto &[k, v] : activity)
            v = static_cast<std::uint64_t>(static_cast<double>(v) * f);
    }

    /** Lane-MAC utilization against @p lanes_total lanes. */
    double
    utilization(std::uint64_t lanes_total) const
    {
        if (cycles == 0 || lanes_total == 0)
            return 0.0;
        return static_cast<double>(get("laneMacs")) /
               (static_cast<double>(cycles) *
                static_cast<double>(lanes_total));
    }
};

} // namespace canon

#endif // CANON_POWER_PROFILE_HH
