/**
 * @file
 * Component-census area model (Figures 9 and 10).
 *
 * Each architecture is a bill of materials over shared component
 * constants (mm^2 at a 22 nm-class node). The constants are
 * calibrated so that the Canon breakdown reproduces Figure 10
 * (58/13/16/5/8 % across data memory / scratchpad / compute /
 * routing / control) with individually plausible magnitudes; the
 * baseline deltas of Figure 9 (+30 % vs systolic, +9 % vs ZeD, -7 %
 * vs CGRA) then *follow from the census* rather than being asserted.
 * EXPERIMENTS.md records measured-vs-paper for all of them.
 */

#ifndef CANON_POWER_AREA_HH
#define CANON_POWER_AREA_HH

#include <map>
#include <string>

namespace canon
{

struct AreaParams
{
    // SRAM macro densities (mm^2 per KB).
    double sram1pPerKb = 0.0080;   //!< single-port data SRAM
    double sram2pPerKb = 0.0176;   //!< dual-port (scratchpad)
    double sramLutPerKb = 0.0040;  //!< high-density LUT macro
    double spadFixed = 0.0028;     //!< dual-port periphery per macro

    // Compute.
    double lane4Int8 = 0.00883; //!< 4-wide INT8 MAC lane + SIMD regs
    double scalarMacSite = 0.0018; //!< systolic/CGRA scalar MAC + regs

    // Interconnect.
    double canonRouter = 0.00276;  //!< circuit-switched 4-port router
    double cgraRouter = 0.0024;    //!< HyCUBE-style multi-hop router
    double zedCrossbar = 0.42;     //!< full distribution crossbar

    // Control.
    double orchLogic = 0.0113;   //!< FSM ALUs/registers per orchestrator
    double cgraInstMemPerPe = 0.0016; //!< per-PE instruction memory
    double cgraRegFilePerPe = 0.0008;
    double zedDecoderPerLane = 0.0008;
    double zedScheduler = 0.105;
    double systolicSequencer = 0.016;
    double systolicAccumKb = 24.0; //!< accumulator buffer KB
};

struct AreaBreakdown
{
    std::string arch;
    std::map<std::string, double> componentsMm2;

    double
    total() const
    {
        double t = 0.0;
        for (const auto &[_, v] : componentsMm2)
            t += v;
        return t;
    }

    double
    share(const std::string &name) const
    {
        auto it = componentsMm2.find(name);
        return it == componentsMm2.end() || total() == 0.0
                   ? 0.0
                   : it->second / total();
    }
};

class AreaModel
{
  public:
    explicit AreaModel(const AreaParams &params = {}) : params_(params)
    {
    }

    /**
     * Canon at @p rows x @p cols with @p dmem_kb data memory per PE
     * and @p spad_bytes scratchpad per PE. Components: dataMem, spad,
     * compute, routing, control.
     */
    AreaBreakdown canon(int rows = 8, int cols = 8,
                        double dmem_kb = 4.0,
                        double spad_bytes = 256.0) const;

    /** Systolic array with @p macs MACs and ~1 KB SRAM per MAC. */
    AreaBreakdown systolic(int macs = 256) const;

    /** ZeD with @p lanes multiplier lanes. */
    AreaBreakdown zed(int lanes = 256) const;

    /** CGRA with @p pes scalar PEs. */
    AreaBreakdown cgra(int pes = 256) const;

    const AreaParams &params() const { return params_; }

  private:
    AreaParams params_;
};

} // namespace canon

#endif // CANON_POWER_AREA_HH
