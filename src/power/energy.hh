/**
 * @file
 * Activity-based energy model.
 *
 * The paper synthesizes at 22 nm FDSOI and reports *relative* power
 * (Figures 11, 13, 14); this model substitutes per-event energy
 * constants of 22 nm-class magnitude (documented per field) applied
 * to the activity counters of an ExecutionProfile. The absolute
 * numbers land in the same regime as Figure 11 (around 1-2 mW per PE
 * for dense streaming at 1 GHz); the figure-level comparisons only
 * consume ratios.
 *
 * Categories mirror Figure 11's breakdown: Data Memory, Spad-Read,
 * Spad-Write, Compute, Control & Routing (+ leakage).
 */

#ifndef CANON_POWER_ENERGY_HH
#define CANON_POWER_ENERGY_HH

#include <map>
#include <string>

#include "power/profile.hh"

namespace canon
{

struct EnergyParams
{
    // Compute (per lane operation).
    double macInt8Pj = 0.06;  //!< INT8 MAC incl. INT32 accumulate
    double aluAddPj = 0.03;   //!< vector add/move lane op
    double nmSelectPj = 0.02; //!< 2:4 metadata mux per lane

    // Local memories (per Vec4 access).
    double dmemReadPj = 0.45;  //!< 4 B from a 4 KB single-port SRAM
    double dmemWritePj = 0.50;
    double spadReadPj = 0.45;  //!< 16 B from the small dual-port SRAM
    double spadWritePj = 0.50;
    double regAccessPj = 0.02;

    // Shared/edge SRAM (per word) for the baseline organizations.
    double edgeSramReadPj = 0.20;
    double edgeSramWritePj = 0.25;

    /**
     * Systolic datapath shifting: the A/psum register-chain movement
     * every active PE performs each cycle -- the systolic array's
     * counterpart of Canon's local-memory access (without it a
     * systolic MAC would look implausibly free; Figure 11 shows the
     * two designs at comparable per-PE power on GEMM).
     */
    double shiftOpPj = 0.12;

    // Interconnect and control.
    double routerHopPj = 0.12; //!< circuit-switched hop (width-avg)
    double instHopPj = 0.03;   //!< 64 b instruction NoC stage
    double lutLookupPj = 0.15; //!< 6 KB LUT read (48 b)
    double orchCyclePj = 0.08; //!< orchestrator ALUs/registers
    double bufferSearchPj = 0.10; //!< associative tag probe
    double stateTransitionPj = 0.02;

    // Baseline-specific datapaths.
    double decodeOpPj = 0.35;    //!< ZeD sparse-format decode per nnz
    double crossbarXferPj = 0.50; //!< ZeD distribution crossbar
    double instFetchPj = 0.18;   //!< CGRA per-PE instruction fetch

    // Static power, folded per PE-cycle.
    double leakagePerPeCyclePj = 0.03;
};

struct EnergyReport
{
    std::map<std::string, double> categoriesPj;
    double totalPj = 0.0;
    std::uint64_t cycles = 0;
    double clockGhz = 1.0;

    double totalJoules() const { return totalPj * 1e-12; }

    double
    seconds() const
    {
        return static_cast<double>(cycles) / (clockGhz * 1e9);
    }

    /** Average power over the execution. */
    double
    watts() const
    {
        return seconds() > 0.0 ? totalJoules() / seconds() : 0.0;
    }

    /** Energy-delay product in J*s (Figure 14). */
    double edp() const { return totalJoules() * seconds(); }

    double
    category(const std::string &name) const
    {
        auto it = categoriesPj.find(name);
        return it == categoriesPj.end() ? 0.0 : it->second;
    }
};

class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : params_(params)
    {
    }

    EnergyReport evaluate(const ExecutionProfile &profile,
                          double clock_ghz = 1.0) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace canon

#endif // CANON_POWER_ENERGY_HH
