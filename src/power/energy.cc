#include "power/energy.hh"

#include <algorithm>

namespace canon
{

EnergyReport
EnergyModel::evaluate(const ExecutionProfile &p, double clock_ghz) const
{
    EnergyReport r;
    r.cycles = p.cycles;
    r.clockGhz = clock_ghz;

    // Energy-active MAC events: systolic-style models report padded
    // activity in macSlots; cycle simulators report exact laneMacs.
    const auto mac_events =
        std::max(p.get("macSlots"), p.get("laneMacs"));

    r.categoriesPj["compute"] =
        static_cast<double>(mac_events) * params_.macInt8Pj +
        static_cast<double>(p.get("aluOps")) * params_.aluAddPj +
        static_cast<double>(p.get("shiftOps")) * params_.shiftOpPj +
        static_cast<double>(p.get("nmSelectOps")) * params_.nmSelectPj;

    r.categoriesPj["dataMem"] =
        static_cast<double>(p.get("dmemReads")) * params_.dmemReadPj +
        static_cast<double>(p.get("dmemWrites")) * params_.dmemWritePj +
        static_cast<double>(p.get("edgeSramReads")) *
            params_.edgeSramReadPj +
        static_cast<double>(p.get("edgeSramWrites")) *
            params_.edgeSramWritePj;

    r.categoriesPj["spadRead"] =
        static_cast<double>(p.get("spadReads")) * params_.spadReadPj;
    r.categoriesPj["spadWrite"] =
        static_cast<double>(p.get("spadWrites")) * params_.spadWritePj;

    r.categoriesPj["controlRouting"] =
        static_cast<double>(p.get("routerHops")) * params_.routerHopPj +
        static_cast<double>(p.get("instHops")) * params_.instHopPj +
        static_cast<double>(p.get("lutLookups")) * params_.lutLookupPj +
        static_cast<double>(p.get("orchCycles")) * params_.orchCyclePj +
        static_cast<double>(p.get("bufferSearches")) *
            params_.bufferSearchPj +
        static_cast<double>(p.get("stateTransitions")) *
            params_.stateTransitionPj +
        static_cast<double>(p.get("regReads") + p.get("regWrites")) *
            params_.regAccessPj +
        static_cast<double>(p.get("decodeOps")) * params_.decodeOpPj +
        static_cast<double>(p.get("crossbarXfers")) *
            params_.crossbarXferPj +
        static_cast<double>(p.get("instFetches")) *
            params_.instFetchPj;

    r.categoriesPj["leakage"] =
        static_cast<double>(p.peCount) *
        static_cast<double>(p.cycles) * params_.leakagePerPeCyclePj;

    r.totalPj = 0.0;
    for (const auto &[_, v] : r.categoriesPj)
        r.totalPj += v;
    return r;
}

} // namespace canon
