#include "power/area.hh"

namespace canon
{

AreaBreakdown
AreaModel::canon(int rows, int cols, double dmem_kb,
                 double spad_bytes) const
{
    const int pes = rows * cols;
    AreaBreakdown b;
    b.arch = "canon";
    b.componentsMm2["dataMem"] = pes * dmem_kb * params_.sram1pPerKb;
    b.componentsMm2["spad"] =
        pes * (spad_bytes / 1024.0 * params_.sram2pPerKb +
               params_.spadFixed);
    b.componentsMm2["compute"] = pes * params_.lane4Int8;
    b.componentsMm2["routing"] = pes * params_.canonRouter;
    // Control: one orchestrator (FSM logic + 6 KB LUT) per row.
    b.componentsMm2["control"] =
        rows * (params_.orchLogic + 6.0 * params_.sramLutPerKb);
    return b;
}

AreaBreakdown
AreaModel::systolic(int macs) const
{
    AreaBreakdown b;
    b.arch = "systolic";
    // ~1 KB of edge SRAM per MAC plus the accumulator buffer; the
    // figure-10 grouping folds accumulators into "data memory".
    b.componentsMm2["dataMem"] =
        (macs * 1.0 + params_.systolicAccumKb) * params_.sram1pPerKb +
        params_.systolicSequencer;
    b.componentsMm2["compute"] = macs * params_.scalarMacSite;
    return b;
}

AreaBreakdown
AreaModel::zed(int lanes) const
{
    AreaBreakdown b;
    b.arch = "zed";
    b.componentsMm2["dataMem"] = lanes * 1.0 * params_.sram1pPerKb;
    b.componentsMm2["compute"] = lanes * params_.scalarMacSite;
    b.componentsMm2["crossbar"] = params_.zedCrossbar;
    b.componentsMm2["decoders"] = lanes * params_.zedDecoderPerLane;
    b.componentsMm2["control"] = params_.zedScheduler;
    return b;
}

AreaBreakdown
AreaModel::cgra(int pes) const
{
    AreaBreakdown b;
    b.arch = "cgra";
    b.componentsMm2["dataMem"] = pes * 1.0 * params_.sram1pPerKb;
    b.componentsMm2["compute"] =
        pes * (params_.scalarMacSite + params_.cgraRegFilePerPe);
    b.componentsMm2["routing"] = pes * params_.cgraRouter;
    b.componentsMm2["control"] = pes * params_.cgraInstMemPerPe;
    return b;
}

} // namespace canon
