#include "cache/mode.hh"

namespace canon
{
namespace cache
{

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Off:
        return "off";
      case Mode::Read:
        return "read";
      case Mode::Write:
        return "write";
      case Mode::ReadWrite:
        return "readwrite";
      case Mode::Refresh:
        return "refresh";
    }
    return "?";
}

std::string
parseMode(const std::string &text, Mode &out)
{
    if (text == "off")
        out = Mode::Off;
    else if (text == "read")
        out = Mode::Read;
    else if (text == "write")
        out = Mode::Write;
    else if (text == "readwrite")
        out = Mode::ReadWrite;
    else if (text == "refresh")
        out = Mode::Refresh;
    else
        return "option '--cache' expects off | read | write |"
               " readwrite | refresh, got '" + text + "'";
    return {};
}

} // namespace cache
} // namespace canon
