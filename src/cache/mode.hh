/**
 * @file
 * Cache access modes shared by canonsim and the figure benches.
 *
 * The mode is parsed by the CLI layers and consumed by
 * cache::ResultStore; it lives in its own dependency-free header so
 * cli/options.hh can hold a Mode without pulling in the store (which
 * itself depends on the options for key building).
 */

#ifndef CANON_CACHE_MODE_HH
#define CANON_CACHE_MODE_HH

#include <cstdint>
#include <string>

namespace canon
{
namespace cache
{

/**
 * How a run uses the result store:
 *  - Off:       ignore the store entirely (even with --cache-dir).
 *  - Read:      satisfy jobs from the store; never write new entries.
 *  - Write:     run every job; fill entries that are missing.
 *  - ReadWrite: consult first, run on miss, store the miss (default).
 *  - Refresh:   run every job and overwrite its entry, fresh or stale.
 */
enum class Mode : std::uint8_t
{
    Off,
    Read,
    Write,
    ReadWrite,
    Refresh,
};

/** Canonical CLI spelling of @p mode ("readwrite", "refresh", ...). */
const char *modeName(Mode mode);

/**
 * Parse the --cache argument (off | read | write | readwrite |
 * refresh). Returns an empty string on success, otherwise the error
 * message; @p out is only written on success.
 */
std::string parseMode(const std::string &text, Mode &out);

} // namespace cache
} // namespace canon

#endif // CANON_CACHE_MODE_HH
