/**
 * @file
 * Content-addressed scenario keys.
 *
 * A ScenarioKey is a canonical one-line description of everything
 * that determines a cached result, and nothing else:
 *
 *  - canonsim scenarios (scenarioKey) fold in the schema version, the
 *    requested architecture set (sorted, deduplicated, so the key is
 *    order-insensitive), the result-shaping fabric dimensions, and
 *    *only* the scenario options the selected workload or model
 *    actually consumes -- cli::relevantScenarioKeys() is the single
 *    source of truth, so `--nm` never pollutes an spmm key and
 *    `--window` never pollutes a gemm key. Options that only affect
 *    rendering (e.g. --clock-ghz, applied to the stored profiles at
 *    display time) stay out of the key on purpose: the same profiles
 *    serve every clock.
 *  - figure-bench grid points (figureKey) fold in the schema version,
 *    the binary name, the table title, and the point's axis
 *    assignment; any change to a figure's grid or identity therefore
 *    misses the old entries instead of reusing them.
 *
 * kSchemaVersion is baked into every canonical string: bump it
 * whenever simulator semantics change (cycle accounting, RNG streams,
 * activity counters) and every stale entry becomes unreachable
 * without any cache-walking invalidation pass.
 *
 * The digest is two independent 64-bit FNV-1a passes over the
 * canonical string (128 bits, hex), which names the entry's file; the
 * store re-verifies the full canonical string on every read, so even
 * a digest collision degrades to a cache miss, never to a wrong
 * result.
 */

#ifndef CANON_CACHE_KEY_HH
#define CANON_CACHE_KEY_HH

#include <string>

#include "cli/options.hh"

namespace canon
{
namespace cache
{

/**
 * Simulator-semantics version of every cache entry. Bump on any
 * change that alters what a scenario computes (not on store-format
 * changes; those bump the magic line in store.cc).
 *
 * v2: canon profiles grew the scratchpad occupancy probe counters
 * (tagCompares, spadResidentSum, spadCapCycles); entries cached at
 * v1 would replay without them.
 *
 * v3: the fabric grew the --tag-banks / --spad-flush policy axes
 * (banked tag search, occupancy-adaptive flush) and scenario keys
 * fold them in; under the adaptive policy the derived proxy-row cap
 * is also larger, so cycles/activity of derived-cap scenarios differ
 * from v2 entries.
 */
inline constexpr int kSchemaVersion = 3;

struct ScenarioKey
{
    /** Full canonical description; single line, never empty. */
    std::string canonical;

    /** 32 hex chars: two independent FNV-1a 64 passes. */
    std::string digest() const;

    /** Entry file name under the cache directory. */
    std::string fileName() const { return digest() + ".entry"; }
};

/**
 * Key of one canonsim scenario: @p opt with irrelevant options
 * canonicalized away. Two Options that differ only in options their
 * workload ignores produce the same key.
 */
ScenarioKey scenarioKey(const cli::Options &opt);

/**
 * Key of one figure-bench grid point, identified by the bench binary
 * name, the table title, and the point's "key=value ..." label
 * (empty for a whole-table job).
 */
ScenarioKey figureKey(const std::string &bench,
                      const std::string &table,
                      const std::string &point);

} // namespace cache
} // namespace canon

#endif // CANON_CACHE_KEY_HH
