#include "cache/payload.hh"

#include <charconv>
#include <sstream>

namespace canon
{
namespace cache
{

namespace
{

/** Forward-only reader over a payload string. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;

    /** Read up to the next '\n' (consumed, not returned). */
    bool line(std::string &out)
    {
        if (pos >= text.size())
            return false;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return false;
        out = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    }

    /** Read exactly @p n raw bytes followed by a '\n'. */
    bool bytes(std::size_t n, std::string &out)
    {
        if (pos + n >= text.size() || text[pos + n] != '\n')
            return false;
        out = text.substr(pos, n);
        pos += n + 1;
        return true;
    }

    bool done() const { return pos == text.size(); }
};

/** Parse "<tag> <u64>"; false unless the line matches exactly. */
bool
taggedU64(const std::string &line, const std::string &tag,
          std::uint64_t &out)
{
    if (line.rfind(tag + " ", 0) != 0)
        return false;
    const char *first = line.data() + tag.size() + 1;
    const char *last = line.data() + line.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

/** Split off the rest-of-line value of "<tag> <value>". */
bool
taggedRest(const std::string &line, const std::string &tag,
           std::string &out)
{
    if (line.rfind(tag + " ", 0) != 0)
        return false;
    out = line.substr(tag.size() + 1);
    return true;
}

} // namespace

std::string
encodeCaseResult(const CaseResult &cases)
{
    std::ostringstream oss;
    oss << "caseresult " << cases.size() << "\n";
    for (const auto &[name, p] : cases) {
        oss << "entry " << name << "\n"
            << "arch " << p.arch << "\n"
            << "workload " << p.workload << "\n"
            << "cycles " << p.cycles << "\n"
            << "pes " << p.peCount << "\n"
            << "activity " << p.activity.size() << "\n";
        for (const auto &[key, value] : p.activity)
            oss << key << " " << value << "\n";
    }
    return oss.str();
}

bool
decodeCaseResult(const std::string &payload, CaseResult &out)
{
    out.clear();
    Cursor cur{payload};
    std::string line;
    std::uint64_t entries = 0;
    if (!cur.line(line) || !taggedU64(line, "caseresult", entries))
        return false;

    for (std::uint64_t e = 0; e < entries; ++e) {
        std::string name;
        if (!cur.line(line) || !taggedRest(line, "entry", name) ||
            name.empty() || out.count(name) != 0)
            return false;
        ExecutionProfile p;
        std::uint64_t activity = 0;
        if (!cur.line(line) || !taggedRest(line, "arch", p.arch))
            return false;
        if (!cur.line(line) ||
            !taggedRest(line, "workload", p.workload))
            return false;
        if (!cur.line(line) || !taggedU64(line, "cycles", p.cycles))
            return false;
        if (!cur.line(line) || !taggedU64(line, "pes", p.peCount))
            return false;
        if (!cur.line(line) || !taggedU64(line, "activity", activity))
            return false;
        for (std::uint64_t a = 0; a < activity; ++a) {
            if (!cur.line(line))
                return false;
            const std::size_t space = line.find(' ');
            if (space == 0 || space == std::string::npos)
                return false;
            const std::string key = line.substr(0, space);
            std::uint64_t value = 0;
            if (!taggedU64(line, key, value) ||
                p.activity.count(key) != 0)
                return false;
            p.activity.emplace(key, value);
        }
        out.emplace(std::move(name), std::move(p));
    }
    return cur.done();
}

std::string
encodeRows(const RowTable &rows)
{
    std::ostringstream oss;
    oss << "rows " << rows.size() << "\n";
    for (const auto &row : rows) {
        oss << "row " << row.size() << "\n";
        for (const auto &cell : row)
            oss << "cell " << cell.size() << "\n" << cell << "\n";
    }
    return oss.str();
}

bool
decodeRows(const std::string &payload, RowTable &out)
{
    out.clear();
    Cursor cur{payload};
    std::string line;
    std::uint64_t nrows = 0;
    if (!cur.line(line) || !taggedU64(line, "rows", nrows))
        return false;
    // No reserve() from the untrusted counts: a corrupt entry
    // claiming 2^64 rows must fail at the structural checks below,
    // not throw length_error out of the graceful-miss path.
    for (std::uint64_t r = 0; r < nrows; ++r) {
        std::uint64_t ncells = 0;
        if (!cur.line(line) || !taggedU64(line, "row", ncells))
            return false;
        std::vector<std::string> row;
        for (std::uint64_t c = 0; c < ncells; ++c) {
            std::uint64_t len = 0;
            std::string cell;
            if (!cur.line(line) || !taggedU64(line, "cell", len) ||
                !cur.bytes(len, cell))
                return false;
            row.push_back(std::move(cell));
        }
        out.push_back(std::move(row));
    }
    return cur.done();
}

} // namespace cache
} // namespace canon
