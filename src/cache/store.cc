#include "cache/store.hh"

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

namespace canon
{
namespace cache
{

namespace
{

/** Store-format magic; bump on layout changes (not semantics). */
constexpr const char *kMagicLine = "canon-cache 1\n";

/** Unique-enough temp suffix for same-directory atomic publishes. */
std::string
tempSuffix()
{
    static std::atomic<std::uint64_t> seq{0};
    std::random_device rd;
    std::ostringstream oss;
    oss << "." << std::hex << rd() << "-"
        << seq.fetch_add(1, std::memory_order_relaxed) << ".tmp";
    return oss.str();
}

} // namespace

std::string
ResultStore::prepare() const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return "cannot create cache directory '" + dir_ +
               "': " + ec.message();
    return {};
}

std::string
ResultStore::entryPath(const ScenarioKey &key) const
{
    return (std::filesystem::path(dir_) / key.fileName()).string();
}

std::optional<std::string>
ResultStore::lookup(const ScenarioKey &key) const
{
    if (!readsEnabled())
        return std::nullopt;
    std::ifstream f(entryPath(key), std::ios::binary);
    if (!f)
        return std::nullopt;
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());

    // Magic line, then the full canonical key: a digest collision or
    // a stale/torn entry fails verification and reads as a miss.
    if (text.rfind(kMagicLine, 0) != 0)
        return std::nullopt;
    const std::size_t key_start = std::char_traits<char>::length(
        kMagicLine);
    const std::size_t key_end = text.find('\n', key_start);
    if (key_end == std::string::npos ||
        text.compare(key_start, key_end - key_start, key.canonical) !=
            0)
        return std::nullopt;

    return text.substr(key_end + 1);
}

bool
ResultStore::store(const ScenarioKey &key,
                   const std::string &payload, bool *wrote) const
{
    if (wrote)
        *wrote = false;
    if (!writesEnabled())
        return true;
    const std::string final_path = entryPath(key);
    if (!overwrites()) {
        std::error_code ec;
        if (std::filesystem::exists(final_path, ec))
            return true; // same key, same bytes: nothing to refresh
    }

    const std::string tmp_path = final_path + tempSuffix();
    {
        std::ofstream f(tmp_path, std::ios::binary);
        if (!f)
            return false;
        f << kMagicLine << key.canonical << '\n' << payload;
        f.flush();
        if (!f.good()) {
            std::error_code ec;
            std::filesystem::remove(tmp_path, ec);
            return false;
        }
    }

    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        std::filesystem::remove(tmp_path, ec);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    if (wrote)
        *wrote = true;
    return true;
}

std::string
statsLineText(const CacheStats &s)
{
    return "cache: " + std::to_string(s.hits) + " hits, " +
           std::to_string(s.misses) + " misses, " +
           std::to_string(s.stores) +
           " stored; simulation jobs executed: " +
           std::to_string(s.misses);
}

std::string
ResultStore::statsLine() const
{
    return statsLineText(stats());
}

} // namespace cache
} // namespace canon
