#include "cache/key.hh"

#include <algorithm>
#include <cstdint>

namespace canon
{
namespace cache
{

namespace
{

/** FNV-1a 64 with a caller-chosen offset basis. */
std::uint64_t
fnv1a64(const std::string &text, std::uint64_t basis)
{
    constexpr std::uint64_t prime = 1099511628211ull;
    std::uint64_t h = basis;
    for (unsigned char c : text) {
        h ^= c;
        h *= prime;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

/** Requested architectures, sorted and deduplicated; empty = canon. */
std::string
canonicalArchs(const cli::Options &opt)
{
    std::vector<std::string> archs = opt.archs;
    if (archs.empty())
        archs.push_back("canon"); // the Options contract
    std::sort(archs.begin(), archs.end());
    archs.erase(std::unique(archs.begin(), archs.end()), archs.end());
    std::string out;
    for (const auto &a : archs) {
        if (!out.empty())
            out += ",";
        out += a;
    }
    return out;
}

} // namespace

std::string
ScenarioKey::digest() const
{
    // Two independent passes (standard basis, and the same basis run
    // over the reversed string) give 128 bits; the store verifies the
    // canonical text anyway, so this only has to make accidental
    // file-name collisions vanishingly rare.
    const std::uint64_t a = fnv1a64(canonical, 14695981039346656037ull);
    std::string reversed(canonical.rbegin(), canonical.rend());
    const std::uint64_t b = fnv1a64(reversed, 14695981039346656037ull);
    return hex64(a) + hex64(b);
}

ScenarioKey
scenarioKey(const cli::Options &opt)
{
    ScenarioKey key;
    key.canonical = "canonsim schema=" + std::to_string(kSchemaVersion);
    key.canonical += " archs=" + canonicalArchs(opt);

    // The fabric dimensions that shape the simulated profiles.
    // --clock-ghz is deliberately absent: it is applied to the
    // stored profiles at rendering time (time/energy/power cells),
    // so one entry serves every clock.
    for (const char *k :
         {"rows", "cols", "spad", "tag-banks", "spad-flush", "dmem"})
        key.canonical +=
            " " + std::string(k) + "=" + cli::optionValueText(opt, k);

    // Only the options this scenario's workload/model consumes.
    for (const auto &k : cli::relevantScenarioKeys(opt))
        key.canonical += " " + k + "=" + cli::optionValueText(opt, k);
    return key;
}

ScenarioKey
figureKey(const std::string &bench, const std::string &table,
          const std::string &point)
{
    ScenarioKey key;
    key.canonical = "figure schema=" + std::to_string(kSchemaVersion) +
                    " bench=" + bench + " table=" + table +
                    " point=" + point;
    return key;
}

} // namespace cache
} // namespace canon
