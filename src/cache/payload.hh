/**
 * @file
 * Lossless text codecs for the two payload shapes the result store
 * holds: a canonsim CaseResult (per-architecture ExecutionProfiles)
 * and a figure bench's emitted table rows.
 *
 * Both codecs round-trip exactly -- profiles are integer counters
 * plus strings, and row cells are stored length-prefixed so commas,
 * quotes, and even newlines survive -- which is what makes a
 * warm-cache rerun byte-identical to the run that filled the cache.
 * Decoders are strict: any structural mismatch returns false and the
 * caller treats the entry as a miss (or reports corruption), never
 * as a partial result.
 */

#ifndef CANON_CACHE_PAYLOAD_HH
#define CANON_CACHE_PAYLOAD_HH

#include <string>
#include <vector>

#include "workloads/suite.hh"

namespace canon
{
namespace cache
{

/** Rows of rendered table cells (the bench FigureRows shape). */
using RowTable = std::vector<std::vector<std::string>>;

/** Serialize a CaseResult; the inverse of decodeCaseResult. */
std::string encodeCaseResult(const CaseResult &cases);

/**
 * Parse @p payload into @p out. Returns false (leaving @p out
 * unspecified) on any structural error.
 */
bool decodeCaseResult(const std::string &payload, CaseResult &out);

/** Serialize table rows; cells are length-prefixed (any bytes). */
std::string encodeRows(const RowTable &rows);

/** Parse @p payload into @p out; false on any structural error. */
bool decodeRows(const std::string &payload, RowTable &out);

} // namespace cache
} // namespace canon

#endif // CANON_CACHE_PAYLOAD_HH
