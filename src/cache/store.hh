/**
 * @file
 * On-disk content-addressed result store.
 *
 * Layout: one file per ScenarioKey under the cache directory, named
 * by the key's digest. Each entry is
 *
 *     canon-cache 1\n          (store-format magic + version)
 *     <canonical key text>\n   (verified on every read)
 *     <payload bytes>          (opaque to the store)
 *
 * Concurrency contract: the store is safe for any number of
 * concurrent readers and writers across threads *and* processes --
 * parallel --jobs workers and separate --shard invocations may share
 * one directory. Writes go to a uniquely named temp file in the same
 * directory and are published with an atomic rename, so a reader
 * observes either no entry or a complete one, never a torn file;
 * concurrent writers of the same key race benignly (last rename
 * wins, and every writer writes the same bytes for the same key).
 * Reads verify the magic line and the full canonical key text, so a
 * digest collision, a stale-format entry, or external corruption
 * degrades to a miss, never to a wrong result.
 *
 * Statistics: hits (jobs satisfied from the store), misses (jobs
 * actually executed), stores (entries written) are tracked with
 * atomic counters so pool workers can update them concurrently.
 */

#ifndef CANON_CACHE_STORE_HH
#define CANON_CACHE_STORE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "cache/key.hh"
#include "cache/mode.hh"

namespace canon
{
namespace cache
{

/** Snapshot of a store's counters. */
struct CacheStats
{
    std::uint64_t hits = 0;   //!< jobs satisfied from the store
    std::uint64_t misses = 0; //!< jobs executed (lookup failed or off)
    std::uint64_t stores = 0; //!< entries written
};

/**
 * The canonical "cache: H hits, M misses, S stored; simulation jobs
 * executed: M" report line for a counter snapshot -- the one format
 * shared by the store's lifetime line and the per-request delta a
 * ResultSet reports (warm-cache CI gates grep it, so the bytes are
 * load-bearing).
 */
std::string statsLineText(const CacheStats &stats);

class ResultStore
{
  public:
    ResultStore(std::string dir, Mode mode)
        : dir_(std::move(dir)), mode_(mode)
    {
    }

    const std::string &dir() const { return dir_; }
    Mode mode() const { return mode_; }

    /**
     * Create the cache directory (recursively) if needed. Returns an
     * empty string on success, otherwise the error message. Call
     * once before the first lookup/store.
     */
    std::string prepare() const;

    /** True when this mode consults the store before running. */
    bool readsEnabled() const
    {
        return mode_ == Mode::Read || mode_ == Mode::ReadWrite;
    }

    /** True when this mode writes computed results back. */
    bool writesEnabled() const
    {
        return mode_ == Mode::Write || mode_ == Mode::ReadWrite ||
               mode_ == Mode::Refresh;
    }

    /** True when an existing entry is rewritten (Refresh). */
    bool overwrites() const { return mode_ == Mode::Refresh; }

    /**
     * Fetch the payload stored under @p key. Returns nullopt when
     * reads are disabled by the mode, the entry is absent, carries a
     * different canonical key, or predates the store format. Never
     * touches the counters: the caller records the hit only once the
     * payload proves usable (recordHit), so a fetched-but-
     * undecodable entry counts as exactly one miss, not as both.
     */
    std::optional<std::string> lookup(const ScenarioKey &key) const;

    /** Count one job satisfied from the store. */
    void recordHit() const
    {
        hits_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Publish @p payload under @p key via temp-file + atomic rename;
     * a no-op when writes are disabled by the mode. Without
     * overwrites(), an existing entry is left untouched (the bytes
     * for a given key are the same no matter who computes them).
     * Returns false only on I/O failure. A write counts one store;
     * @p wrote (when non-null) reports whether this call actually
     * published an entry, i.e. exactly when the store counter moved.
     */
    bool store(const ScenarioKey &key, const std::string &payload,
               bool *wrote = nullptr) const;

    /** Count one executed job (call before computing a miss). */
    void recordMiss() const
    {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }

    CacheStats stats() const
    {
        CacheStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.stores = stores_.load(std::memory_order_relaxed);
        return s;
    }

    /**
     * The one-line report every cached run prints; "simulation jobs
     * executed" repeats the miss count, which is what warm-cache CI
     * gates assert on.
     */
    std::string statsLine() const;

  private:
    std::string entryPath(const ScenarioKey &key) const;

    std::string dir_;
    Mode mode_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> stores_{0};
};

} // namespace cache
} // namespace canon

#endif // CANON_CACHE_STORE_HH
