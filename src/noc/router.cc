#include "noc/router.hh"

#include "common/logging.hh"

namespace canon
{

Router::Router(StatGroup &stats) : hops_(stats.counter("routerHops")) {}

void
Router::bindIn(Dir d, DataChannel *ch)
{
    in_[static_cast<int>(d)] = ch;
}

void
Router::bindOut(Dir d, DataChannel *ch)
{
    out_[static_cast<int>(d)] = ch;
}

void
Router::beginCycle()
{
    usedIn_.fill(false);
    usedOut_.fill(false);
}

bool
Router::hasInput(Dir d) const
{
    auto *ch = in_[static_cast<int>(d)];
    return ch && !ch->empty();
}

Vec4
Router::readIn(Dir d)
{
    auto *ch = in_[static_cast<int>(d)];
    panicIf(!ch, "Router: no channel bound at ", dirName(d), "_IN");
    panicIf(usedIn_[static_cast<int>(d)],
            "Router: second ", dirName(d),
            "_IN transfer in one cycle (one per direction per cycle)");
    usedIn_[static_cast<int>(d)] = true;
    ++hops_;
    Vec4 v = ch->front();
    ch->pop();
    return v;
}

void
Router::writeOut(Dir d, const Vec4 &v)
{
    auto *ch = out_[static_cast<int>(d)];
    panicIf(!ch, "Router: no channel bound at ", dirName(d), "_OUT");
    panicIf(usedOut_[static_cast<int>(d)],
            "Router: second ", dirName(d),
            "_OUT transfer in one cycle (one per direction per cycle)");
    usedOut_[static_cast<int>(d)] = true;
    ++hops_;
    ch->push(v);
}

} // namespace canon
