#include "noc/inst_pipeline.hh"

#include "common/logging.hh"

namespace canon
{

InstPipeline::InstPipeline(int columns)
    : columns_(columns),
      stages_(static_cast<std::size_t>(kIssueStagger) * (columns - 1) + 1,
              nopInst()),
      staged_(nopInst())
{
    panicIf(columns <= 0, "InstPipeline: need at least one column");
}

void
InstPipeline::issue(const Instruction &inst)
{
    panicIf(issuedThisCycle_,
            "InstPipeline: orchestrator issued twice in one cycle");
    staged_ = inst;
    issuedThisCycle_ = true;
}

const Instruction &
InstPipeline::tap(int c) const
{
    panicIf(c < 0 || c >= columns_, "InstPipeline: tap ", c, " out of ",
            columns_);
    return stages_[static_cast<std::size_t>(kIssueStagger) * c];
}

bool
InstPipeline::drained() const
{
    // Word-for-word NOP: an instruction with op == Nop but live
    // address or route fields is still in flight.
    const Instruction nop = nopInst();
    for (const auto &inst : stages_)
        if (!(inst == nop))
            return false;
    return true;
}

void
InstPipeline::tickCommit()
{
    if (!frozen_) {
        for (std::size_t i = stages_.size() - 1; i > 0; --i)
            stages_[i] = stages_[i - 1];
        stages_[0] = issuedThisCycle_ ? staged_ : nopInst();
    }
    issuedThisCycle_ = false;
    staged_ = nopInst();
}

} // namespace canon
