#include "noc/inst_pipeline.hh"

#include "common/logging.hh"

namespace canon
{

InstPipeline::InstPipeline(int columns)
    : columns_(columns),
      stages_(static_cast<std::size_t>(kIssueStagger) * (columns - 1) + 1,
              nopInst().encode()),
      staged_(nopInst().encode())
{
    panicIf(columns <= 0, "InstPipeline: need at least one column");
}

void
InstPipeline::issue(const Instruction &inst)
{
    panicIf(issuedThisCycle_,
            "InstPipeline: orchestrator issued twice in one cycle");
    staged_ = inst.encode();
    issuedThisCycle_ = true;
}

Instruction
InstPipeline::tap(int c) const
{
    panicIf(c < 0 || c >= columns_, "InstPipeline: tap ", c, " out of ",
            columns_);
    return Instruction::decode(
        stages_[static_cast<std::size_t>(kIssueStagger) * c]);
}

bool
InstPipeline::drained() const
{
    const auto nop = nopInst().encode();
    for (auto w : stages_)
        if (w != nop)
            return false;
    return true;
}

void
InstPipeline::tickCommit()
{
    if (!frozen_) {
        for (std::size_t i = stages_.size() - 1; i > 0; --i)
            stages_[i] = stages_[i - 1];
        stages_[0] = issuedThisCycle_ ? staged_ : nopInst().encode();
    }
    issuedThisCycle_ = false;
    staged_ = nopInst().encode();
}

} // namespace canon
