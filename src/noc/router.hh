/**
 * @file
 * Per-PE circuit-switched router.
 *
 * Canon's data NoC is deliberately cheap: no backpressure, no virtual
 * channels, no runtime arbitration (Section 2.1). Determinism from the
 * staggered-issue model means the orchestrators *know* when each
 * channel is used; the router only switches circuits named by the
 * current instruction. The model enforces the paper's structural rule
 * -- one data transfer per cycle per direction -- by panicking when an
 * instruction stream violates it, since that is a compile-time bug,
 * not a runtime condition.
 *
 * Physical channels between neighbouring PEs are small ChannelFifos
 * owned by the fabric; a depth of 2 absorbs the deterministic 1-cycle
 * skew between a producer's COMMIT and the consumer's LOAD.
 */

#ifndef CANON_NOC_ROUTER_HH
#define CANON_NOC_ROUTER_HH

#include <array>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/latch.hh"

namespace canon
{

/**
 * Default depth of inter-PE data channels. Sized so that the message
 * channel (capacity kMsgWindow, see msg_channel.hh) is always the
 * binding resource: every southbound data vector is announced by
 * exactly one orchestrator message, so unconsumed data per column is
 * bounded by the message window plus pipeline skew, and the data
 * channels themselves can never overflow.
 */
constexpr std::size_t kChannelDepth = 8;

using DataChannel = ChannelFifo<Vec4>;

class Router
{
  public:
    explicit Router(StatGroup &stats);

    /** Attach the channel delivering data *into* this PE from @p d. */
    void bindIn(Dir d, DataChannel *ch);

    /** Attach the channel carrying data *out of* this PE towards @p d. */
    void bindOut(Dir d, DataChannel *ch);

    DataChannel *inChannel(Dir d) const
    {
        return in_[static_cast<int>(d)];
    }
    DataChannel *outChannel(Dir d) const
    {
        return out_[static_cast<int>(d)];
    }

    /** Reset per-cycle direction-usage accounting. */
    void beginCycle();

    bool hasInput(Dir d) const;

    /** Consume the head of the @p d input channel (once per cycle). */
    Vec4 readIn(Dir d);

    /** Push onto the @p d output channel (once per cycle). */
    void writeOut(Dir d, const Vec4 &v);

    bool
    canWriteOut(Dir d) const
    {
        auto *ch = out_[static_cast<int>(d)];
        return ch && ch->canPush();
    }

  private:
    std::array<DataChannel *, kNumDirs> in_{};
    std::array<DataChannel *, kNumDirs> out_{};
    std::array<bool, kNumDirs> usedIn_{};
    std::array<bool, kNumDirs> usedOut_{};
    Counter &hops_;
};

} // namespace canon

#endif // CANON_NOC_ROUTER_HH
