/**
 * @file
 * The instruction-dedicated NoC of one PE row (Figures 2 and 3).
 *
 * The orchestrator pushes one encoded instruction per cycle into the
 * head of the row; the word shifts one stage per cycle. PE column c
 * taps the pipeline at depth kIssueStagger * c, so it observes the
 * instruction the orchestrator issued 3c cycles earlier -- the
 * time-lapsed SIMD stagger. "an instruction ... is issued to the first
 * PE in cycle 1, then traverses a 3-cycle pipeline before reaching the
 * second PE in cycle 4" (Section 2).
 *
 * freeze() supports the spatial execution mode of Appendix D: after a
 * configuration phase has shifted per-column instructions into place,
 * freezing stops propagation and every PE keeps re-executing its
 * latched instruction.
 */

#ifndef CANON_NOC_INST_PIPELINE_HH
#define CANON_NOC_INST_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "sim/clocked.hh"

namespace canon
{

/** Cycles between consecutive PEs seeing the same instruction. */
constexpr int kIssueStagger = 3;

class InstPipeline final : public Clocked
{
  public:
    /** Issues stage externally; all work happens at commit. */
    static constexpr bool kHasTickCompute = false;

    explicit InstPipeline(int columns);

    /** Stage the instruction entering the row this cycle. */
    void issue(const Instruction &inst);

    /** Instruction visible at PE column @p c this cycle. */
    const Instruction &tap(int c) const;

    /** Stop/resume shifting (spatial mode). */
    void freeze(bool on) { frozen_ = on; }
    bool frozen() const { return frozen_; }

    /** True iff every stage currently holds a NOP. */
    bool drained() const;

    int columns() const { return columns_; }

    void tickCompute() override {}
    void tickCommit() override;

  private:
    // The hardware shifts the encoded 64-bit word (encode/decode
    // round-trips exactly); the model keeps stages decoded so a tap is
    // a reference into the shift array instead of a decode per PE per
    // cycle.
    int columns_;
    std::vector<Instruction> stages_;
    Instruction staged_;
    bool issuedThisCycle_ = false;
    bool frozen_ = false;
};

} // namespace canon

#endif // CANON_NOC_INST_PIPELINE_HH
