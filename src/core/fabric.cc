#include "core/fabric.hh"

#include "common/rng.hh"
#include "obs/accounting.hh"
#include "obs/collector.hh"
#include "obs/sampler.hh"

namespace canon
{

CanonFabric::~CanonFabric() = default;

CanonFabric::CanonFabric(const CanonConfig &cfg,
                         std::uint64_t reg_shuffle_seed)
    : cfg_(cfg), stats_("fabric"), shuffleSeed_(reg_shuffle_seed)
{
    fatalIf(cfg_.rows <= 0 || cfg_.cols <= 0,
            "CanonFabric: non-positive array shape");
    fatalIf(cfg_.spadEntries <= 0 ||
                cfg_.spadEntries > addrspace::kSpadSize,
            "CanonFabric: scratchpad depth ", cfg_.spadEntries,
            " unsupported");
    fatalIf(cfg_.dmemSlots <= 0 || cfg_.dmemSlots > addrspace::kDmemSize,
            "CanonFabric: dmem slots ", cfg_.dmemSlots, " unsupported");
    fatalIf(cfg_.tagBanks <= 0,
            "CanonFabric: tag banks must be positive, got ",
            cfg_.tagBanks);

    // Channels first so PEs can bind to them.
    vert_.resize(cfg_.rows + 1);
    for (int r = 0; r <= cfg_.rows; ++r) {
        for (int c = 0; c < cfg_.cols; ++c) {
            vert_[r].push_back(std::make_unique<DataChannel>(
                kChannelDepth,
                "vert" + std::to_string(r) + "_" + std::to_string(c)));
        }
    }
    horiz_.resize(cfg_.rows);
    for (int r = 0; r < cfg_.rows; ++r) {
        for (int c = 0; c <= cfg_.cols; ++c) {
            horiz_[r].push_back(std::make_unique<DataChannel>(
                kChannelDepth,
                "horiz" + std::to_string(r) + "_" + std::to_string(c)));
        }
    }
    for (int r = 0; r <= cfg_.rows; ++r)
        msg_.push_back(std::make_unique<MsgChannel>(
            "msg" + std::to_string(r)));

    outRecs_.resize(cfg_.rows);

    // PEs.
    for (int r = 0; r < cfg_.rows; ++r) {
        for (int c = 0; c < cfg_.cols; ++c) {
            auto &pe_stats = stats_.child(
                "pe" + std::to_string(r) + "_" + std::to_string(c));
            auto pe = std::make_unique<Pe>(PeGeometry{r, c},
                                           cfg_.dmemSlots,
                                           cfg_.spadEntries, pe_stats);
            pe->router().bindIn(Dir::North, vert_[r][c].get());
            pe->router().bindOut(Dir::South, vert_[r + 1][c].get());
            pe->router().bindIn(Dir::West, horiz_[r][c].get());
            pe->router().bindOut(Dir::East, horiz_[r][c + 1].get());
            pes_.push_back(std::move(pe));
        }
    }

    // Per-row instruction pipelines and orchestrators.
    for (int r = 0; r < cfg_.rows; ++r) {
        pipes_.push_back(std::make_unique<InstPipeline>(cfg_.cols));
        auto &orch_stats = stats_.child("orch" + std::to_string(r));
        auto orch = std::make_unique<Orchestrator>(
            "orch" + std::to_string(r), cfg_.spadEntries, orch_stats,
            sim_, OrchPolicy{cfg_.tagBanks, cfg_.spadFlush});
        orch->bindPipeline(pipes_.back().get());
        orch->bindWestChannel(horiz_[r][0].get());
        orch->bindMsgIn(msg_[r].get());
        orch->bindMsgOut(msg_[r + 1].get());
        std::vector<DataChannel *> south;
        for (int c = 0; c < cfg_.cols; ++c)
            south.push_back(vert_[r + 1][c].get());
        orch->bindSouthData(std::move(south));
        orch->bindOutRecQueue(&outRecs_[r]);
        orchs_.push_back(std::move(orch));
        for (int c = 0; c < cfg_.cols; ++c)
            pes_[peIndex(r, c)]->bindPipeline(pipes_.back().get());
    }

    // Data channels publish through one batched commit pass instead of
    // ticking individually.
    for (auto &row : vert_)
        for (auto &ch : row)
            dataCommits_.add(ch.get());
    for (auto &row : horiz_)
        for (auto &ch : row)
            dataCommits_.add(ch.get());

    // Register everything into its typed partition. Order is
    // irrelevant for results (two-phase ticks); a nonzero shuffle seed
    // permutes it to prove that.
    std::vector<std::function<void()>> regs;
    for (auto &o : orchs_)
        regs.push_back([this, c = o.get()] { sim_.addTyped(c); });
    for (auto &p : pes_)
        regs.push_back([this, c = p.get()] { sim_.addTyped(c); });
    for (auto &pl : pipes_)
        regs.push_back([this, c = pl.get()] { sim_.addTyped(c); });
    for (auto &m : msg_)
        regs.push_back([this, c = m.get()] { sim_.addTyped(c); });
    regs.push_back([this] { sim_.addTyped(&dataCommits_); });
    registerAll(std::move(regs), 0);
}

void
CanonFabric::registerAll(std::vector<std::function<void()>> regs,
                         std::uint64_t salt)
{
    if (shuffleSeed_ != 0) {
        Rng rng(shuffleSeed_ + salt);
        rng.shuffle(regs);
    }
    for (auto &r : regs)
        r();
}

Pe &
CanonFabric::pe(int r, int c)
{
    panicIf(r < 0 || r >= cfg_.rows || c < 0 || c >= cfg_.cols,
            "CanonFabric::pe(", r, ",", c, ") out of range");
    return *pes_[peIndex(r, c)];
}

Orchestrator &
CanonFabric::orch(int r)
{
    panicIf(r < 0 || r >= cfg_.rows, "CanonFabric::orch(", r,
            ") out of range");
    return *orchs_[r];
}

const Orchestrator &
CanonFabric::orch(int r) const
{
    panicIf(r < 0 || r >= cfg_.rows, "CanonFabric::orch(", r,
            ") out of range");
    return *orchs_[r];
}

void
CanonFabric::load(KernelMapping mapping)
{
    fatalIf(loaded_, "CanonFabric: one fabric instance runs one kernel; "
                     "construct a fresh fabric per execution");
    fatalIf(!mapping.program, "CanonFabric: mapping without a program");
    fatalIf(static_cast<int>(mapping.rowStreams.size()) > cfg_.rows,
            "CanonFabric: more row streams than rows");
    mapping_ = std::move(mapping);
    loaded_ = true;

    out_ = WordMatrix(mapping_.outRows, mapping_.outCols);

    for (int r = 0; r < cfg_.rows; ++r) {
        orchs_[r]->loadProgram(mapping_.program.get());
        if (r < static_cast<int>(mapping_.rowStreams.size()))
            orchs_[r]->setStream(mapping_.rowStreams[r]);
    }

    // Data placement (the second IR of Figure 6).
    for (std::size_t r = 0; r < mapping_.dmemImage.size(); ++r) {
        for (std::size_t c = 0; c < mapping_.dmemImage[r].size(); ++c) {
            const auto &slots = mapping_.dmemImage[r][c];
            auto &pe_ref = pe(static_cast<int>(r), static_cast<int>(c));
            panicIf(static_cast<int>(slots.size()) >
                        pe_ref.dmem().slots(),
                    "CanonFabric: dmem image overflows PE (", r, ",", c,
                    ")");
            for (std::size_t s = 0; s < slots.size(); ++s)
                pe_ref.dmem().poke(static_cast<int>(s), slots[s]);
        }
    }

    // Edge movers and collectors.
    std::vector<std::function<void()>> regs;
    sink_ = std::make_unique<EdgeSink>();
    if (mapping_.collector == CollectorKind::South) {
        std::vector<DataChannel *> bottom;
        for (int c = 0; c < cfg_.cols; ++c)
            bottom.push_back(vert_[cfg_.rows][c].get());
        southCollector_ = std::make_unique<SouthCollector>(
            msg_[cfg_.rows].get(), std::move(bottom), &out_);
        regs.push_back([this] { sim_.addTyped(southCollector_.get()); });
        // East edge only carries forwarded operands: discard.
        for (int r = 0; r < cfg_.rows; ++r)
            sink_->add(horiz_[r][cfg_.cols].get());
    } else {
        eastCollector_ = std::make_unique<EastCollector>(
            &out_, mapping_.eastColsPerRow);
        for (int r = 0; r < cfg_.rows; ++r)
            eastCollector_->addRow(r, horiz_[r][cfg_.cols].get(),
                                   &outRecs_[r]);
        regs.push_back([this] { sim_.addTyped(eastCollector_.get()); });
        // South edge carries pass-through streams: discard, and drain
        // the bottom message channel.
        for (int c = 0; c < cfg_.cols; ++c)
            sink_->add(vert_[cfg_.rows][c].get());
        msgSink_ = std::make_unique<MsgSink>(msg_[cfg_.rows].get());
        regs.push_back([this] { sim_.addTyped(msgSink_.get()); });
    }
    regs.push_back([this] { sim_.addTyped(sink_.get()); });

    if (!mapping_.northFeed.empty()) {
        std::vector<DataChannel *> top;
        for (int c = 0; c < cfg_.cols; ++c)
            top.push_back(vert_[0][c].get());
        feeder_ = std::make_unique<NorthFeeder>(std::move(top),
                                                msg_[0].get());
        feeder_->setFeed(mapping_.northFeed);
        regs.push_back([this] { sim_.addTyped(feeder_.get()); });
    }
    registerAll(std::move(regs), 1);
}

bool
CanonFabric::channelsDrained() const
{
    for (const auto &row : vert_)
        for (const auto &ch : row)
            if (!ch->empty())
                return false;
    for (const auto &row : horiz_)
        for (const auto &ch : row)
            if (!ch->empty())
                return false;
    for (const auto &m : msg_)
        if (!m->empty())
            return false;
    return true;
}

bool
CanonFabric::done() const
{
    for (const auto &o : orchs_)
        if (!o->done())
            return false;
    for (const auto &p : pipes_)
        if (!p->drained())
            return false;
    for (const auto &p : pes_)
        if (!p->idle())
            return false;
    if (feeder_ && !feeder_->drained())
        return false;
    if (southCollector_ && !southCollector_->pendingEmpty())
        return false;
    if (eastCollector_ && !eastCollector_->pendingEmpty())
        return false;
    return channelsDrained();
}

Cycle
CanonFabric::run(Cycle max_cycles)
{
    fatalIf(!loaded_, "CanonFabric::run: no kernel loaded");
    obs::Collector *col = obs::current();
    if (col && col->sampling() && !sampler_) {
        sampler_ = std::make_unique<obs::CycleSampler>(
            stats_, col->options().sampleEvery);
        sim_.addTyped(sampler_.get());
    }
    if (col && col->accounting() && !accountant_) {
        std::vector<const Orchestrator *> orchs;
        for (const auto &o : orchs_)
            orchs.push_back(o.get());
        std::vector<const Pe *> pes;
        for (const auto &p : pes_)
            pes.push_back(p.get());
        std::vector<const InstPipeline *> pipes;
        for (const auto &p : pipes_)
            pipes.push_back(p.get());
        std::vector<const DataChannel *> vert;
        for (const auto &row : vert_)
            for (const auto &ch : row)
                vert.push_back(ch.get());
        std::vector<const DataChannel *> horiz;
        for (const auto &row : horiz_)
            for (const auto &ch : row)
                horiz.push_back(ch.get());
        std::vector<const MsgChannel *> msgs;
        for (const auto &m : msg_)
            msgs.push_back(m.get());
        accountant_ = std::make_unique<obs::CycleAccountant>(
            std::move(orchs), std::move(pes), std::move(pipes),
            std::move(vert), std::move(horiz), std::move(msgs),
            col->options().sampleEvery);
        sim_.addTyped(accountant_.get());
    }
    const Cycle elapsed = sim_.run([this] { return done(); }, max_cycles);
    if (col) {
        if (sampler_)
            sampler_->captureFinal();
        obs::SeriesSet series =
            sampler_ ? sampler_->take() : obs::SeriesSet{};
        obs::AccountingSet accounting;
        if (accountant_) {
            accountant_->captureFinal();
            obs::SeriesSet acct = accountant_->takeSeries();
            for (auto &s : acct.series)
                series.series.push_back(std::move(s));
            accounting = accountant_->take();
        }
        col->recordFabricRun(stats_, elapsed, std::move(series),
                             std::move(accounting));
    }
    return elapsed;
}

Cycle
CanonFabric::configureSpatial(
    const std::vector<std::vector<Instruction>> &insts)
{
    fatalIf(loaded_, "CanonFabric: spatial mode needs a fresh fabric");
    fatalIf(static_cast<int>(insts.size()) != cfg_.rows,
            "configureSpatial: need one instruction row per PE row");
    for (const auto &row : insts)
        fatalIf(static_cast<int>(row.size()) != cfg_.cols,
                "configureSpatial: need one instruction per column");
    spatial_ = true;

    // Configuration phase: PEs inert, instructions shift into place.
    // Column c's instruction is issued at cycle 3*(cols-1-c) so all
    // arrive at their taps simultaneously.
    for (auto &p : pes_)
        p->setMode(PeMode::Config);
    const Cycle start = sim_.now();
    const int horizon = kIssueStagger * (cfg_.cols - 1) + 1;
    for (int t = 0; t < horizon; ++t) {
        if (t % kIssueStagger == 0) {
            const int c = cfg_.cols - 1 - t / kIssueStagger;
            if (c >= 0) {
                for (int r = 0; r < cfg_.rows; ++r)
                    pipes_[r]->issue(insts[r][c]);
            }
        }
        sim_.step();
    }
    for (auto &p : pipes_)
        p->freeze(true);
    for (auto &p : pes_)
        p->setMode(PeMode::Spatial);
    return sim_.now() - start;
}

void
CanonFabric::pushWest(int r, const Vec4 &v)
{
    panicIf(r < 0 || r >= cfg_.rows, "pushWest: bad row");
    horiz_[r][0]->push(v);
}

std::optional<Vec4>
CanonFabric::popEast(int r)
{
    panicIf(r < 0 || r >= cfg_.rows, "popEast: bad row");
    auto &ch = *horiz_[r][cfg_.cols];
    if (ch.empty())
        return std::nullopt;
    Vec4 v = ch.front();
    ch.pop();
    return v;
}

double
CanonFabric::utilization() const
{
    const auto lane_macs = stats_.sumCounter("macOps");
    const double capacity = static_cast<double>(sim_.now()) *
                            cfg_.numPes() * kSimdWidth;
    return capacity == 0.0 ? 0.0
                           : static_cast<double>(lane_macs) / capacity;
}

std::uint64_t
CanonFabric::stateTransitions() const
{
    return stats_.sumCounter("stateTransitions");
}

std::uint64_t
CanonFabric::stallCycles() const
{
    return stats_.sumCounter("stallCycles");
}

ExecutionProfile
CanonFabric::profile(const std::string &workload) const
{
    ExecutionProfile p;
    p.arch = "canon";
    p.workload = workload;
    p.cycles = sim_.now();
    p.peCount = static_cast<std::uint64_t>(cfg_.numPes());
    p.add("laneMacs", stats_.sumCounter("macOps"));
    p.add("aluOps", stats_.sumCounter("aluOps"));
    p.add("dmemReads", stats_.sumCounter("dmemReads"));
    p.add("dmemWrites", stats_.sumCounter("dmemWrites"));
    p.add("spadReads", stats_.sumCounter("spadReads"));
    p.add("spadWrites", stats_.sumCounter("spadWrites"));
    p.add("routerHops", stats_.sumCounter("routerHops"));
    p.add("regReads", stats_.sumCounter("regReads"));
    p.add("regWrites", stats_.sumCounter("regWrites"));
    p.add("lutLookups", stats_.sumCounter("lutLookups"));
    p.add("bufferSearches", stats_.sumCounter("bufferSearches"));
    p.add("tagCompares", stats_.sumCounter("tagCompares"));
    p.add("spadResidentSum", stats_.sumCounter("spadResidentSum"));
    p.add("spadCapCycles", stats_.sumCounter("spadCapCycles"));
    p.add("stateTransitions", stats_.sumCounter("stateTransitions"));
    p.add("orchCycles",
          static_cast<std::uint64_t>(cfg_.rows) * sim_.now());
    // Every issued instruction traverses the whole row's dedicated
    // instruction NoC.
    p.add("instHops", stats_.sumCounter("instIssued") *
                          static_cast<std::uint64_t>(cfg_.cols));
    return p;
}

} // namespace canon
