/**
 * @file
 * The Canon fabric (Figure 1): the PE array, one orchestrator per row,
 * the instruction-dedicated NoC, the circuit-switched data NoC, the
 * inter-orchestrator message channels, and the edge movers/collectors.
 *
 * Usage:
 *     CanonFabric fabric(CanonConfig::paper());
 *     fabric.load(mapSpmm(a, b, fabric.config()));
 *     fabric.run();
 *     WordMatrix c = fabric.result();
 *
 * The fabric also supports the spatial execution mode of Appendix D:
 * configureSpatial() streams per-column instructions through the
 * instruction NoC (3 cycles per column), freezes the pipelines, and
 * every PE then re-executes its latched instruction each cycle while
 * data is pushed/popped at the west/east edges.
 */

#ifndef CANON_CORE_FABRIC_HH
#define CANON_CORE_FABRIC_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/collectors.hh"
#include "core/config.hh"
#include "core/kernel_mapping.hh"
#include "orch/orchestrator.hh"
#include "pe/pe.hh"
#include "power/profile.hh"
#include "sim/schedule.hh"

namespace canon
{

namespace obs
{
class CycleSampler;
class CycleAccountant;
}

class CanonFabric
{
  public:
    /**
     * @p reg_shuffle_seed permutes the order components are registered
     * with the simulator (0 = construction order). Results are
     * independent of registration order -- the determinism tests
     * construct fabrics under several seeds and require byte-identical
     * outputs.
     */
    explicit CanonFabric(const CanonConfig &cfg,
                         std::uint64_t reg_shuffle_seed = 0);

    /** Out of line: sampler_/accountant_ are incomplete here. */
    ~CanonFabric();

    const CanonConfig &config() const { return cfg_; }

    /** Program the fabric for one kernel execution. */
    void load(KernelMapping mapping);

    /** True when execution has fully drained. */
    bool done() const;

    /** Run the loaded kernel to completion; returns cycles taken. */
    Cycle run(Cycle max_cycles = 500'000'000);

    /** Advance a single cycle (tests). */
    void step() { sim_.step(); }

    Cycle cycles() const { return sim_.now(); }

    /** The assembled output matrix. */
    const WordMatrix &result() const { return out_; }

    // ---- spatial mode (Appendix D) -----------------------------------
    /**
     * Configure PE (r, c) with insts[r][c] via the instruction NoC,
     * then freeze. Returns the configuration cycle count (~3 cycles
     * per column, Figure 22).
     */
    Cycle configureSpatial(
        const std::vector<std::vector<Instruction>> &insts);

    /** Push a vector into row @p r's west edge (spatial mode I/O). */
    void pushWest(int r, const Vec4 &v);

    /** Pop a vector from row @p r's east edge, if present. */
    std::optional<Vec4> popEast(int r);

    // ---- introspection ------------------------------------------------
    Pe &pe(int r, int c);
    Orchestrator &orch(int r);
    const Orchestrator &orch(int r) const;
    StatGroup &stats() { return stats_; }

    /** Live tick-schedule partitions (zero-cost-when-off tests). */
    std::size_t schedulePartitions() const
    {
        return sim_.partitionCount();
    }

    /** Lane-MAC utilization: useful MAC lanes / (lanes * cycles). */
    double utilization() const;

    /** Total data-driven FSM state transitions across orchestrators. */
    std::uint64_t stateTransitions() const;

    /** Total orchestrator stall cycles (load-imbalance backpressure). */
    std::uint64_t stallCycles() const;

    /** Export the run as an architecture-independent profile. */
    ExecutionProfile profile(const std::string &workload) const;

  private:
    int peIndex(int r, int c) const { return r * cfg_.cols + c; }
    bool channelsDrained() const;

    /** Run registration thunks, permuted when shuffleSeed_ != 0. */
    void registerAll(std::vector<std::function<void()>> regs,
                     std::uint64_t salt);

    CanonConfig cfg_;
    Simulator sim_;
    StatGroup stats_;

    std::vector<std::unique_ptr<Pe>> pes_;
    std::vector<std::unique_ptr<Orchestrator>> orchs_;
    std::vector<std::unique_ptr<InstPipeline>> pipes_;

    // vert_[r][c]: channel from row r-1 into row r (r=0: north edge,
    // r=rows: south edge). horiz_[r][c]: channel into PE (r, c) from
    // the west (c=0: west edge, c=cols: east edge).
    std::vector<std::vector<std::unique_ptr<DataChannel>>> vert_;
    std::vector<std::vector<std::unique_ptr<DataChannel>>> horiz_;

    // msg_[r]: messages from orchestrator r-1 to r; msg_[0] is the
    // north-edge (feeder) channel, msg_[rows] feeds the collector.
    std::vector<std::unique_ptr<MsgChannel>> msg_;

    std::vector<std::deque<OutRec>> outRecs_;

    KernelMapping mapping_;
    WordMatrix out_;

    std::unique_ptr<NorthFeeder> feeder_;
    std::unique_ptr<SouthCollector> southCollector_;
    std::unique_ptr<EastCollector> eastCollector_;
    std::unique_ptr<EdgeSink> sink_;
    std::unique_ptr<MsgSink> msgSink_;

    /** Batched commit pass over every data channel (schedule.hh). */
    FifoCommitList<Vec4> dataCommits_;

    /**
     * Cycle-resolved stats sampler, constructed (and registered as a
     * commit-only schedule partition) in run() only when the current
     * thread is observing with a sampling cadence. Null otherwise, so
     * a non-observed fabric's schedule is untouched.
     */
    std::unique_ptr<obs::CycleSampler> sampler_;

    /**
     * Per-component cycle accountant (obs/accounting.hh), constructed
     * and registered in run() only when the observing collector asked
     * for --cycle-accounting -- same structural zero-cost contract as
     * the sampler.
     */
    std::unique_ptr<obs::CycleAccountant> accountant_;

    std::uint64_t shuffleSeed_ = 0;
    bool loaded_ = false;
    bool spatial_ = false;
};

} // namespace canon

#endif // CANON_CORE_FABRIC_HH
