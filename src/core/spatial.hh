/**
 * @file
 * Spatial-mode mapping utilities (Appendix D / Figure 22).
 *
 * The spatial mode gives every PE its own held instruction -- the
 * place-and-route compatibility mode of classic CGRAs. The natural
 * unit the fabric supports directly is a *row pipeline*: data enters
 * the west edge, each column applies one operation chaining through
 * the W->E circuit, results leave the east edge. SpatialPipeline is a
 * checked builder for such pipelines (operand-port legality, one
 * stage per column, pass-through padding), and buildSpatialProgram()
 * assembles per-row pipelines into the instruction grid
 * CanonFabric::configureSpatial() consumes.
 */

#ifndef CANON_CORE_SPATIAL_HH
#define CANON_CORE_SPATIAL_HH

#include <vector>

#include "isa/instruction.hh"

namespace canon
{

class SpatialPipeline
{
  public:
    /**
     * Append a stage: the column's PE executes @p op with local
     * operands @p op1 / @p op2; the chained value from the west is
     * implicit for VvMacW, and every stage's result continues east.
     * VMov stages forward/transform the stream itself.
     */
    SpatialPipeline &stage(OpCode op, Addr op1,
                           Addr op2 = addrspace::kNullAddr);

    /** A plain forwarding stage (bucket brigade). */
    SpatialPipeline &forward();

    int size() const { return static_cast<int>(stages_.size()); }

    /**
     * Emit per-column instructions, padding unused trailing columns
     * with forwarders so results still reach the east edge. Fatal if
     * more stages than columns.
     */
    std::vector<Instruction> instructions(int cols) const;

  private:
    std::vector<Instruction> stages_;
};

/**
 * Assemble one pipeline per fabric row (missing rows idle at NOP)
 * into the configureSpatial() instruction grid.
 */
std::vector<std::vector<Instruction>>
buildSpatialProgram(const std::vector<SpatialPipeline> &rows, int rows_n,
                    int cols);

} // namespace canon

#endif // CANON_CORE_SPATIAL_HH
