/**
 * @file
 * Fabric configuration (Table 1 of the paper).
 *
 * The scratchpad is sized in psum-vector entries (one entry = one Vec4
 * of INT32). Table 1 lists "64 Bytes per PE" while Section 6.5
 * evaluates scratchpad *depths* of 1..64 entries with 16 as the
 * sweet spot; we parameterize by entry depth (default 16) and report
 * bytes alongside. EXPERIMENTS.md discusses the reconciliation.
 */

#ifndef CANON_CORE_CONFIG_HH
#define CANON_CORE_CONFIG_HH

#include <string>

#include "common/types.hh"
#include "orch/policy.hh"

namespace canon
{

struct CanonConfig
{
    int rows = 8;          //!< PE rows (= number of orchestrators)
    int cols = 8;          //!< PE columns
    int spadEntries = 16;  //!< scratchpad depth in Vec4 psum entries
    int dmemSlots = 1024;  //!< data memory in Vec4<INT8> slots (4 KB)
    double clockGhz = 1.0;

    /** Associative-search banks of the psum-tag buffer (orch/policy,
     *  tag_fifo): 1 is the paper's flat CAM-style linear probe. */
    int tagBanks = 1;

    /** Scratchpad flush policy (orch/policy.hh): eager is the paper's
     *  flush-at-cap; adaptive drains at a high-water mark and paces
     *  merge traffic so resident-row cost stays flat at scale. */
    SpadFlushPolicy spadFlush = SpadFlushPolicy::Eager;

    /** The evaluated configuration of Table 1. */
    static CanonConfig
    paper()
    {
        return CanonConfig{};
    }

    int numPes() const { return rows * cols; }
    int numMacs() const { return numPes() * kSimdWidth; }

    std::size_t
    dmemBytesPerPe() const
    {
        return static_cast<std::size_t>(dmemSlots) * kSimdWidth;
    }

    std::size_t
    spadBytesPerPe() const
    {
        return static_cast<std::size_t>(spadEntries) * kSimdWidth *
               sizeof(Word);
    }

    /** Total on-chip data SRAM including the orchestrator LUTs. */
    std::size_t
    totalSramBytes() const
    {
        const std::size_t lut_bytes = 6 * 1024;
        return static_cast<std::size_t>(numPes()) * dmemBytesPerPe() +
               static_cast<std::size_t>(rows) * lut_bytes;
    }

    std::string describe() const;
};

} // namespace canon

#endif // CANON_CORE_CONFIG_HH
