#include "core/config.hh"

#include <sstream>

namespace canon
{

std::string
CanonConfig::describe() const
{
    std::ostringstream os;
    os << rows << "x" << cols << " PEs, " << kSimdWidth
       << "-SIMD INT8 (" << numMacs() << " MACs), "
       << dmemBytesPerPe() / 1024 << "KB dmem/PE, " << spadEntries
       << "-entry scratchpad (" << spadBytesPerPe() << "B), " << rows
       << " orchestrators, " << clockGhz << " GHz";
    if (tagBanks != 1)
        os << ", " << tagBanks << "-bank tag search";
    if (spadFlush != SpadFlushPolicy::Eager)
        os << ", " << spadFlushName(spadFlush) << " flush";
    return os.str();
}

} // namespace canon
