#include "core/spatial.hh"

#include "common/logging.hh"

namespace canon
{

namespace as = addrspace;

SpatialPipeline &
SpatialPipeline::stage(OpCode op, Addr op1, Addr op2)
{
    // Operand legality for a held, repeatedly executing instruction:
    // local memories and the implicit west chain only. Reading a port
    // as op1/op2 is allowed for the stream being transformed (VMov
    // W_IN) but both operands from one local memory would violate the
    // port budget every cycle.
    const auto r1 = as::region(op1);
    const auto r2 = as::region(op2);
    fatalIf(r1 == AddrRegion::PortOut || r2 == AddrRegion::PortOut,
            "SpatialPipeline: operands cannot be output ports");
    fatalIf(r1 == r2 &&
                (r1 == AddrRegion::Dmem || r1 == AddrRegion::Spad),
            "SpatialPipeline: two reads of the same local memory in "
            "one held instruction");
    switch (op) {
      case OpCode::VvMacW:
      case OpCode::VMov:
      case OpCode::VAdd:
      case OpCode::VvMac:
      case OpCode::SvMac:
        break;
      default:
        fatal("SpatialPipeline: opcode ", opName(op),
              " is not a pipeline stage");
    }

    Instruction inst;
    inst.op = op;
    inst.op1 = op1;
    inst.op2 = op2;
    inst.res = as::portOut(Dir::East);
    stages_.push_back(inst);
    return *this;
}

SpatialPipeline &
SpatialPipeline::forward()
{
    Instruction inst;
    inst.op = OpCode::VMov;
    inst.op1 = as::portIn(Dir::West);
    inst.res = as::portOut(Dir::East);
    stages_.push_back(inst);
    return *this;
}

std::vector<Instruction>
SpatialPipeline::instructions(int cols) const
{
    fatalIf(size() > cols, "SpatialPipeline: ", size(),
            " stages exceed ", cols, " columns");
    auto insts = stages_;
    while (static_cast<int>(insts.size()) < cols) {
        Instruction fwd;
        fwd.op = OpCode::VMov;
        fwd.op1 = as::portIn(Dir::West);
        fwd.res = as::portOut(Dir::East);
        insts.push_back(fwd);
    }
    return insts;
}

std::vector<std::vector<Instruction>>
buildSpatialProgram(const std::vector<SpatialPipeline> &rows,
                    int rows_n, int cols)
{
    fatalIf(static_cast<int>(rows.size()) > rows_n,
            "buildSpatialProgram: more pipelines than rows");
    std::vector<std::vector<Instruction>> grid;
    grid.reserve(static_cast<std::size_t>(rows_n));
    for (int r = 0; r < rows_n; ++r) {
        if (r < static_cast<int>(rows.size()))
            grid.push_back(
                rows[static_cast<std::size_t>(r)].instructions(cols));
        else
            grid.emplace_back(static_cast<std::size_t>(cols),
                              nopInst());
    }
    return grid;
}

} // namespace canon
