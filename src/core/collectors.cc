#include "core/collectors.hh"

namespace canon
{

// ---------------------------------------------------------------------
// SouthCollector
// ---------------------------------------------------------------------

SouthCollector::SouthCollector(MsgChannel *msgs,
                               std::vector<DataChannel *> chans,
                               WordMatrix *out)
    : msgs_(msgs), chans_(std::move(chans)), expect_(chans_.size()),
      out_(out)
{
    panicIf(!msgs_ || !out_, "SouthCollector: null wiring");
}

bool
SouthCollector::pendingEmpty() const
{
    if (!msgs_->empty())
        return false;
    for (const auto &q : expect_)
        if (!q.empty())
            return false;
    for (const auto *ch : chans_)
        if (!ch->empty())
            return false;
    return true;
}

void
SouthCollector::tickCompute()
{
    // One message per cycle fans out to one expected vector per column.
    if (!msgs_->empty()) {
        const OrchMsg m = msgs_->front();
        msgs_->pop();
        panicIf(m.id != kMsgPsum,
                "SouthCollector: unexpected message id ",
                static_cast<int>(m.id));
        for (auto &q : expect_)
            q.push_back(m.value);
    }

    // One vector per column per cycle.
    for (std::size_t c = 0; c < chans_.size(); ++c) {
        auto *ch = chans_[c];
        if (ch->empty())
            continue;
        panicIf(expect_[c].empty(),
                "SouthCollector: vector with no announcing message at "
                "column ", c);
        const int rid = expect_[c].front();
        expect_[c].pop_front();
        const Vec4 v = ch->front();
        ch->pop();
        for (int l = 0; l < kSimdWidth; ++l) {
            const int col = static_cast<int>(c) * kSimdWidth + l;
            if (rid < out_->rows() && col < out_->cols())
                out_->at(rid, col) += v[l];
            else
                panicIf(v[l] != 0,
                        "SouthCollector: nonzero psum outside the "
                        "output shape at (", rid, ",", col, ")");
        }
    }
}

// ---------------------------------------------------------------------
// NorthFeeder
// ---------------------------------------------------------------------

void
NorthFeeder::tickCompute()
{
    if (pos_ >= feed_.size())
        return;
    for (auto *ch : chans_)
        if (!ch->canPush())
            return;
    if (announce_ && !announce_->canPush())
        return;

    const auto &step = feed_[pos_];
    panicIf(step.size() != chans_.size(),
            "NorthFeeder: step width ", step.size(), " != columns ",
            chans_.size());
    for (std::size_t c = 0; c < chans_.size(); ++c)
        chans_[c]->push(step[c]);
    if (announce_)
        announce_->push({kMsgAVec, static_cast<std::uint16_t>(pos_)});
    ++pos_;
}

// ---------------------------------------------------------------------
// EastCollector
// ---------------------------------------------------------------------

EastCollector::EastCollector(WordMatrix *out, int cols_per_row)
    : out_(out), colsPerRow_(cols_per_row)
{
    panicIf(!out_, "EastCollector: null output");
}

void
EastCollector::addRow(int row, DataChannel *ch, std::deque<OutRec> *recs)
{
    panicIf(!ch || !recs, "EastCollector: null row wiring");
    ports_.push_back({row, ch, recs});
}

bool
EastCollector::pendingEmpty() const
{
    for (const auto &p : ports_)
        if (!p.ch->empty() || !p.recs->empty())
            return false;
    return true;
}

void
EastCollector::tickCompute()
{
    for (auto &p : ports_) {
        if (p.ch->empty())
            continue;
        panicIf(p.recs->empty(),
                "EastCollector: vector with no bookkeeping record at "
                "row ", p.row);
        const OutRec rec = p.recs->front();
        p.recs->pop_front();
        const Vec4 v = p.ch->front();
        p.ch->pop();
        const int m = rec.a;
        const int n = p.row * colsPerRow_ + rec.b;
        panicIf(m >= out_->rows() || n >= out_->cols(),
                "EastCollector: result (", m, ",", n,
                ") outside the output shape");
        out_->at(m, n) += v.hsum();
    }
}

} // namespace canon
