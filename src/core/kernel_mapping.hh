/**
 * @file
 * The loadable artifact a kernel mapper produces (Figure 6's three
 * intermediate representations):
 *
 *   1. I/O control    -> per-row meta streams + north-edge vector
 *                        queues (the EDDO memory movers' schedules)
 *   2. data placement -> per-PE data-memory images
 *   3. control logic  -> the orchestrator FSM program (bitstream)
 *
 * plus the collector description telling the fabric where results
 * leave the array and how to assemble the output matrix.
 */

#ifndef CANON_CORE_KERNEL_MAPPING_HH
#define CANON_CORE_KERNEL_MAPPING_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "orch/program.hh"
#include "orch/token.hh"

namespace canon
{

enum class CollectorKind : std::uint8_t
{
    /**
     * Psums exit the bottom edge; the bottom orchestrator's PSUM
     * messages name the output row, PE column c's lanes cover output
     * columns [4c, 4c+4). Used by SpMM / GEMM / N:M.
     */
    South,

    /**
     * Scalar results exit the east edge, one per OutRec {m, local n};
     * PE row y covers output columns [y*eastColsPerRow, ...). The lane
     * reduction at the array edge sums the 4 lanes. Used by SDDMM.
     */
    East,
};

struct KernelMapping
{
    std::string name;
    std::shared_ptr<OrchProgram> program;

    /** Per-row meta-data streams (index = PE row). */
    std::vector<MetaStream> rowStreams;

    /** dmemImage[row][col] = initial data-memory slots of that PE. */
    std::vector<std::vector<std::vector<Vec4>>> dmemImage;

    /** North-edge feed: northFeed[step][col] (East-collector kernels). */
    std::vector<std::vector<Vec4>> northFeed;

    CollectorKind collector = CollectorKind::South;
    int outRows = 0;
    int outCols = 0;
    int eastColsPerRow = 0;

    /** Useful work in the mapping: lane-MACs the kernel must perform. */
    std::uint64_t expectedLaneMacs = 0;
};

} // namespace canon

#endif // CANON_CORE_KERNEL_MAPPING_HH
