/**
 * @file
 * Edge components around the PE array: the output-side EDDO memory
 * movers that assemble result matrices, the north-edge feeder that
 * streams vectors into columns, and a sink that drains unused edge
 * channels (data "falling off" the array edge).
 */

#ifndef CANON_CORE_COLLECTORS_HH
#define CANON_CORE_COLLECTORS_HH

#include <deque>
#include <vector>

#include "noc/router.hh"
#include "orch/msg_channel.hh"
#include "orch/orchestrator.hh"
#include "sim/clocked.hh"
#include "sparse/matrix.hh"

namespace canon
{

/** Drains any channel bound to it, one element per channel per cycle. */
class EdgeSink final : public Clocked
{
  public:
    static constexpr bool kHasTickCommit = false;

    void add(DataChannel *ch) { chans_.push_back(ch); }

    void
    tickCompute() override
    {
        for (auto *ch : chans_)
            if (!ch->empty())
                ch->pop();
    }

    void tickCommit() override {}

  private:
    std::vector<DataChannel *> chans_;
};

/**
 * South-edge collector for row-dataflow kernels (SpMM/GEMM/N:M).
 *
 * The bottom orchestrator's PSUM(rid) message announces that one
 * flushed vector per column is in flight; the collector accumulates
 * each arriving vector into output row `rid`. Accumulation (rather
 * than assignment) implements the asynchronous reduction of
 * Listing 3: several psums for the same output row may arrive when
 * upstream rows bypassed each other under load imbalance.
 */
class SouthCollector final : public Clocked
{
  public:
    static constexpr bool kHasTickCommit = false;

    SouthCollector(MsgChannel *msgs, std::vector<DataChannel *> chans,
                   WordMatrix *out);

    bool pendingEmpty() const;

    void tickCompute() override;
    void tickCommit() override {}

  private:
    MsgChannel *msgs_;
    std::vector<DataChannel *> chans_;
    std::vector<std::deque<std::uint16_t>> expect_; // per column: rids
    WordMatrix *out_;
};

/**
 * East-edge collector for SDDMM: one scalar result per OutRec
 * {a = output row m, b = local output column}; the edge logic reduces
 * the 4 psum lanes to the scalar C[m][rowBase + b].
 */
class EastCollector final : public Clocked
{
  public:
    static constexpr bool kHasTickCommit = false;

    EastCollector(WordMatrix *out, int cols_per_row);

    /** Attach PE row @p row: its east channel and bookkeeping queue. */
    void addRow(int row, DataChannel *ch, std::deque<OutRec> *recs);

    bool pendingEmpty() const;

    void tickCompute() override;
    void tickCommit() override {}

  private:
    struct RowPort
    {
        int row;
        DataChannel *ch;
        std::deque<OutRec> *recs;
    };

    WordMatrix *out_;
    int colsPerRow_;
    std::vector<RowPort> ports_;
};

/**
 * North-edge feeder: the input-side EDDO mover for kernels that stream
 * dense vectors down the columns (SDDMM's A matrix).
 *
 * Steps are pushed synchronously -- one vector into every column in
 * the same cycle, announced by a kMsgAVec message to the top
 * orchestrator -- so the message window provides flow control for the
 * whole top edge: when the top row falls behind, the feeder pauses.
 */
class NorthFeeder final : public Clocked
{
  public:
    static constexpr bool kHasTickCommit = false;

    NorthFeeder(std::vector<DataChannel *> chans, MsgChannel *announce)
        : chans_(std::move(chans)), announce_(announce)
    {
    }

    /** feed[step][col]: the vector entering column col at step. */
    void
    setFeed(std::vector<std::vector<Vec4>> feed)
    {
        feed_ = std::move(feed);
        pos_ = 0;
    }

    bool drained() const { return pos_ >= feed_.size(); }

    void tickCompute() override;
    void tickCommit() override {}

  private:
    std::vector<DataChannel *> chans_;
    MsgChannel *announce_;
    std::vector<std::vector<Vec4>> feed_;
    std::size_t pos_ = 0;
};

/** Drains a message channel nobody else consumes (bottom-edge AVec). */
class MsgSink final : public Clocked
{
  public:
    static constexpr bool kHasTickCommit = false;

    explicit MsgSink(MsgChannel *ch) : ch_(ch) {}

    void
    tickCompute() override
    {
        if (ch_ && !ch_->empty())
            ch_->pop();
    }

    void tickCommit() override {}

  private:
    MsgChannel *ch_;
};

} // namespace canon

#endif // CANON_CORE_COLLECTORS_HH
