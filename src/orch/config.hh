/**
 * @file
 * The orchestrator's configurable vocabulary (Figure 5).
 *
 * The FSM's programmable LUT sees only 10 condition bits and emits a
 * 48-bit word whose fields *select* behaviours from small per-kernel
 * menus -- it never sees 16-bit values. Value-carrying data (row IDs,
 * coordinates, buffer pointers) flows through the statically
 * configured datapath units below, exactly the static/dynamic split
 * the paper describes:
 *
 *  - Predicate:   the condition bits (2 ALUs x 2 flags worth). Which
 *    four predicates feed the LUT is selected per FSM state.
 *  - AddrMode:    address generation menu (up to 16 entries); LUT
 *    fields pick one per operand role.
 *  - MsgMode:     message generation menu (up to 4 entries).
 *  - MetaUpdate:  state-meta register update menu (up to 4 per reg).
 *  - RouteMode:   pass-through route masks (up to 4 entries).
 */

#ifndef CANON_ORCH_CONFIG_HH
#define CANON_ORCH_CONFIG_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"

namespace canon
{

// --------------------------------------------------------------------
// Condition predicates
// --------------------------------------------------------------------

/**
 * Condition bits computable by the two flag ALUs + buffer probe from
 * the architectural registers. Four are selected per state.
 */
enum class Predicate : std::uint8_t
{
    False = 0,
    True,
    InputIsNnz,     //!< input meta kind == Nnz
    InputIsRowEnd,  //!< input meta kind == RowEnd
    InputIsEnd,     //!< input meta kind == End (stream exhausted)
    InputIsAux,     //!< input meta kind == Aux
    MsgTagManaged,  //!< buffer.is_managing(msg.value)
    BufferAtCap,    //!< resident entries == capacity-1 (flush on push)
    BufferEmpty,    //!< no resident entries
    MsgValueEqMeta0, //!< msg.value == stateMeta[0]
    Meta1EqConst,   //!< stateMeta[1] == program constant condConst
    Meta1GtMeta0,   //!< stateMeta[1] > stateMeta[0] (data prefetched)
    Meta1MinusMeta0LtB, //!< meta1 - meta0 < condConstB (window open)
    MsgMinusMeta0LtB,   //!< msg.value - meta0 < condConstB (merge window)
    NumPredicates
};

constexpr int kNumCondBits = 4;

/** Predicate selection for one FSM state. */
using PredicateSet = std::array<Predicate, kNumCondBits>;

// --------------------------------------------------------------------
// Address generation
// --------------------------------------------------------------------

/** Value selectors for indexed address generation and messages. */
enum class ValueSel : std::uint8_t
{
    Zero = 0,
    InputValue, //!< current meta token's 14-bit value
    MsgValue,   //!< incoming message value
    Meta0,
    Meta1,
    HeadTag,    //!< buffer's oldest resident tag
};

struct AddrMode
{
    enum class Kind : std::uint8_t
    {
        Null = 0,   //!< kNullAddr (unused operand)
        Zero,       //!< reads as zero vector
        Fixed,      //!< a literal unified-space address
        Indexed,    //!< base + ((sel & mask) << shift)
        SpadHead,   //!< scratchpad slot of the oldest resident psum
        SpadTail,   //!< scratchpad slot the current row accumulates in
        SpadSearch, //!< scratchpad slot where tag == msg.value resides
    };

    Kind kind = Kind::Null;
    Addr base = 0;
    ValueSel sel = ValueSel::Zero;
    std::uint16_t mask = 0x3FFF;
    std::uint8_t shift = 0;

    static AddrMode null() { return {}; }

    static AddrMode
    zero()
    {
        AddrMode m;
        m.kind = Kind::Zero;
        return m;
    }

    static AddrMode
    fixed(Addr a)
    {
        AddrMode m;
        m.kind = Kind::Fixed;
        m.base = a;
        return m;
    }

    static AddrMode
    indexed(Addr base, ValueSel sel, std::uint16_t mask = 0x3FFF,
            std::uint8_t shift = 0)
    {
        AddrMode m;
        m.kind = Kind::Indexed;
        m.base = base;
        m.sel = sel;
        m.mask = mask;
        m.shift = shift;
        return m;
    }

    static AddrMode
    spadHead()
    {
        AddrMode m;
        m.kind = Kind::SpadHead;
        return m;
    }

    static AddrMode
    spadTail()
    {
        AddrMode m;
        m.kind = Kind::SpadTail;
        return m;
    }

    static AddrMode
    spadSearch()
    {
        AddrMode m;
        m.kind = Kind::SpadSearch;
        return m;
    }
};

// --------------------------------------------------------------------
// Message generation
// --------------------------------------------------------------------

struct MsgMode
{
    enum class Kind : std::uint8_t
    {
        None = 0,
        Emit,    //!< send {id, value = sel}
        Forward, //!< relay the incoming message unchanged
    };

    Kind kind = Kind::None;
    std::uint8_t id = 0;
    ValueSel sel = ValueSel::Zero;

    static MsgMode none() { return {}; }

    static MsgMode
    emit(std::uint8_t id, ValueSel sel)
    {
        MsgMode m;
        m.kind = Kind::Emit;
        m.id = id;
        m.sel = sel;
        return m;
    }

    static MsgMode
    forward()
    {
        MsgMode m;
        m.kind = Kind::Forward;
        return m;
    }
};

// --------------------------------------------------------------------
// State-meta register updates
// --------------------------------------------------------------------

struct MetaUpdate
{
    enum class Kind : std::uint8_t
    {
        Nop = 0,
        Set,       //!< meta = constant
        AddConst,  //!< meta += constant (signed)
        LoadInput, //!< meta = input meta value
        LoadMsg,   //!< meta = msg value
    };

    Kind kind = Kind::Nop;
    std::int16_t konst = 0;

    static MetaUpdate nop() { return {}; }

    static MetaUpdate
    set(std::int16_t k)
    {
        return {Kind::Set, k};
    }

    static MetaUpdate
    add(std::int16_t k)
    {
        return {Kind::AddConst, k};
    }

    static MetaUpdate loadInput() { return {Kind::LoadInput, 0}; }
    static MetaUpdate loadMsg() { return {Kind::LoadMsg, 0}; }
};

// --------------------------------------------------------------------
// Buffer (scratchpad tag FIFO) operations
// --------------------------------------------------------------------

enum class BufferOp : std::uint8_t
{
    None = 0,
    Push,    //!< materialize the accumulation slot (tag = tagSel value)
    Pop,     //!< retire the oldest resident entry
    PushPop, //!< both, in one cycle (row end with a full buffer)
};

// --------------------------------------------------------------------
// What the west edge injects when an instruction consumes W_IN
// --------------------------------------------------------------------

enum class WestFeed : std::uint8_t
{
    None = 0,
    TokenData, //!< lane0 = the meta token's INT8 payload
    ZeroVec,   //!< a zero vector (psum seed for W->E reductions)
};

// --------------------------------------------------------------------
// The decoded 48-bit LUT output word
// --------------------------------------------------------------------

constexpr int kNumFsmStates = 8;
constexpr int kNumAddrModes = 16;
constexpr int kNumMsgModes = 4;
constexpr int kNumMetaUpdates = 4;
constexpr int kNumRouteModes = 4;
constexpr int kLutInputBits = 10;
constexpr int kLutEntries = 1 << kLutInputBits;
constexpr int kLutWordBits = 48;

/**
 * Semantic view of one LUT entry. Index fields refer to the
 * per-program menus above; pack()/unpack() (lut.hh) give the 48-bit
 * hardware image.
 */
struct OutputFields
{
    std::uint8_t nextState = 0;  // 3b
    OpCode peOp = OpCode::Nop;   // 3b
    std::uint8_t op1Mode = 0;    // 4b
    std::uint8_t op2Mode = 0;    // 4b
    std::uint8_t resMode = 0;    // 4b
    std::uint8_t routeMode = 0;  // 2b
    std::uint8_t msgMode = 0;    // 2b
    BufferOp bufferOp = BufferOp::None; // 2b
    std::uint8_t metaUpd0 = 0;   // 2b
    std::uint8_t metaUpd1 = 0;   // 2b
    bool consumeInput = false;   // 1b
    bool consumeMsg = false;     // 1b
    WestFeed westFeed = WestFeed::None; // 2b
    bool emitOutRec = false;     // 1b
    bool stallable = false;      // 1b: needs south channel space

    friend bool
    operator==(const OutputFields &a, const OutputFields &b)
    {
        return a.nextState == b.nextState && a.peOp == b.peOp &&
               a.op1Mode == b.op1Mode && a.op2Mode == b.op2Mode &&
               a.resMode == b.resMode && a.routeMode == b.routeMode &&
               a.msgMode == b.msgMode && a.bufferOp == b.bufferOp &&
               a.metaUpd0 == b.metaUpd0 && a.metaUpd1 == b.metaUpd1 &&
               a.consumeInput == b.consumeInput &&
               a.consumeMsg == b.consumeMsg &&
               a.westFeed == b.westFeed &&
               a.emitOutRec == b.emitOutRec &&
               a.stallable == b.stallable;
    }
};

} // namespace canon

#endif // CANON_ORCH_CONFIG_HH
