#include "orch/orchestrator.hh"

namespace canon
{

Orchestrator::Orchestrator(std::string name, int spad_capacity,
                           StatGroup &stats, const Simulator &sim,
                           const OrchPolicy &policy)
    : name_(std::move(name)),
      fifo_(spad_capacity, stats, policy.tagBanks), sim_(sim),
      flushPolicy_(policy.spadFlush),
      flushThreshold_(policy.spadFlush == SpadFlushPolicy::Adaptive
                          ? spadHighWaterMark(spad_capacity - 1)
                          : spad_capacity - 1),
      lutLookups_(stats.counter("lutLookups")),
      instIssued_(stats.counter("instIssued")),
      macIssued_(stats.counter("macIssued")),
      stallCycles_(stats.counter("stallCycles")),
      stateTransitions_(stats.counter("stateTransitions")),
      msgsSent_(stats.counter("msgsSent")),
      fwdAhead_(stats.counter("fwdAhead")),
      fwdBehind_(stats.counter("fwdBehind")),
      spadResidentSum_(stats.counter("spadResidentSum")),
      spadCapCycles_(stats.counter("spadCapCycles"))
{
}

void
Orchestrator::loadProgram(const OrchProgram *prog)
{
    panicIf(!prog, "Orchestrator ", name_, ": null program");
    panicIf(!prog->compiled(), "Orchestrator ", name_,
            ": program '", prog->name(), "' not compiled");
    prog_ = prog;
    state_ = prog->initialState();
    meta_[0] = meta_[1] = 0;
    rowCursor_ = -1;
    fifo_.reset();
}

void
Orchestrator::setStream(MetaStream stream)
{
    stream_ = std::move(stream);
}

bool
Orchestrator::done() const
{
    return prog_ && state_ == prog_->doneState();
}

bool
Orchestrator::evalPredicate(Predicate p, const MetaToken &token,
                            const OrchMsg &msg, bool msg_valid)
{
    switch (p) {
      case Predicate::False:
        return false;
      case Predicate::True:
        return true;
      case Predicate::InputIsNnz:
        return token.kind == TokenKind::Nnz;
      case Predicate::InputIsRowEnd:
        return token.kind == TokenKind::RowEnd;
      case Predicate::InputIsEnd:
        return token.kind == TokenKind::End;
      case Predicate::InputIsAux:
        return token.kind == TokenKind::Aux;
      case Predicate::MsgTagManaged:
        return msg_valid && fifo_.search(msg.value).has_value();
      case Predicate::BufferAtCap:
        // Eager: the hard resident cap. Adaptive: the high-water
        // mark, so flush rules engage while headroom remains.
        return fifo_.size() >= flushThreshold_;
      case Predicate::BufferEmpty:
        return fifo_.empty();
      case Predicate::MsgValueEqMeta0:
        return msg_valid && msg.value == meta_[0];
      case Predicate::Meta1EqConst:
        return meta_[1] == prog_->condConst();
      case Predicate::Meta1GtMeta0:
        return meta_[1] > meta_[0];
      case Predicate::Meta1MinusMeta0LtB:
        return static_cast<std::uint16_t>(meta_[1] - meta_[0]) <
               prog_->condConstB();
      case Predicate::MsgMinusMeta0LtB:
        return msg_valid &&
               static_cast<std::uint16_t>(msg.value - meta_[0]) <
                   prog_->condConstB();
      case Predicate::NumPredicates:
        break;
    }
    panic("Orchestrator ", name_, ": bad predicate");
}

std::uint8_t
Orchestrator::condBits(const MetaToken &token, const OrchMsg &msg,
                       bool msg_valid)
{
    const auto &preds = prog_->predicates(state_);
    std::uint8_t bits = 0;
    for (int i = 0; i < kNumCondBits; ++i) {
        if (evalPredicate(preds[static_cast<std::size_t>(i)], token, msg,
                          msg_valid))
            bits |= 1 << i;
    }
    return bits;
}

std::uint16_t
Orchestrator::selValue(ValueSel sel, const MetaToken &token,
                       const OrchMsg &msg) const
{
    switch (sel) {
      case ValueSel::Zero:
        return 0;
      case ValueSel::InputValue:
        return token.value;
      case ValueSel::MsgValue:
        return msg.value;
      case ValueSel::Meta0:
        return meta_[0];
      case ValueSel::Meta1:
        return meta_[1];
      case ValueSel::HeadTag:
        return fifo_.headTag();
    }
    panic("Orchestrator ", name_, ": bad value selector");
}

Addr
Orchestrator::evalAddr(const AddrMode &m, const MetaToken &token,
                       const OrchMsg &msg)
{
    switch (m.kind) {
      case AddrMode::Kind::Null:
        return addrspace::kNullAddr;
      case AddrMode::Kind::Zero:
        return addrspace::kZeroAddr;
      case AddrMode::Kind::Fixed:
        return m.base;
      case AddrMode::Kind::Indexed: {
        const std::uint16_t v = selValue(m.sel, token, msg);
        return static_cast<Addr>(
            m.base + ((v & m.mask) << m.shift));
      }
      case AddrMode::Kind::SpadHead:
        return addrspace::spad(fifo_.headSlot());
      case AddrMode::Kind::SpadTail:
        return addrspace::spad(fifo_.tailSlot());
      case AddrMode::Kind::SpadSearch: {
        auto slot = fifo_.search(msg.value);
        panicIf(!slot, "Orchestrator ", name_,
                ": SpadSearch for unmanaged tag ", msg.value,
                " (rule fired without MsgTagManaged guard?)");
        return addrspace::spad(*slot);
      }
    }
    panic("Orchestrator ", name_, ": bad address mode");
}

bool
Orchestrator::southHasSpace() const
{
    for (auto *ch : southData_)
        if (!ch->canPush())
            return false;
    return !msgOut_ || msgOut_->canPush();
}

void
Orchestrator::applyMetaUpdate(int reg, const MetaUpdate &u,
                              const MetaToken &token, const OrchMsg &msg)
{
    auto &m = meta_[reg];
    switch (u.kind) {
      case MetaUpdate::Kind::Nop:
        return;
      case MetaUpdate::Kind::Set:
        m = static_cast<std::uint16_t>(u.konst);
        return;
      case MetaUpdate::Kind::AddConst:
        m = static_cast<std::uint16_t>(m + u.konst);
        return;
      case MetaUpdate::Kind::LoadInput:
        m = token.value;
        return;
      case MetaUpdate::Kind::LoadMsg:
        m = msg.value;
        return;
    }
    panic("Orchestrator ", name_, ": bad meta update");
}

/**
 * Adaptive flush, message side: a merge-protocol message (SpMM: a
 * psum tagged with its row) whose row this orchestrator has not
 * materialized yet cannot merge here -- under the eager policy it
 * would be relayed south unmerged, and at high resident-row counts
 * those misses cascade toward the all-miss quadratic traffic regime
 * (docs/resident_rows.md). Instead, leave it at the head of the
 * inbound channel: the resulting backpressure paces the upstream row
 * to this row's progress, and the merge fires as soon as the row is
 * pushed. Once the local stream is exhausted (End token) the cursor
 * can never advance, so everything is relayed as under eager -- this
 * bounds the hold and keeps the drain phase deadlock-free.
 */
bool
Orchestrator::holdMergeMsg(const MetaToken &token, const OrchMsg &msg)
{
    if (flushPolicy_ != SpadFlushPolicy::Adaptive)
        return false;
    if (msg.id != prog_->mergeMsgId() || msg.id == kMsgNone)
        return false;
    if (token.kind == TokenKind::End)
        return false;
    if (static_cast<std::int32_t>(msg.value) <= rowCursor_)
        return false;
    // The admission probe is real associative work: charge it.
    return !fifo_.search(msg.value).has_value();
}

void
Orchestrator::tickCompute()
{
    if (!prog_ || !pipe_)
        return;

    // Per-cycle scratchpad occupancy probes (stall cycles included):
    // resident-row pressure and cycles pinned at the resident cap.
    spadResidentSum_ += static_cast<std::uint64_t>(fifo_.size());
    if (fifo_.atResidentCap())
        ++spadCapCycles_;

    // 1. Latch inputs.
    const MetaToken token = stream_.peek(sim_.now());
    bool msg_valid = msgIn_ && !msgIn_->empty();
    OrchMsg msg = msg_valid ? msgIn_->front() : OrchMsg{};
    if (msg_valid && holdMergeMsg(token, msg)) {
        msg_valid = false;
        msg = OrchMsg{};
    }

    // 2. Condition computation + LUT lookup.
    const auto idx =
        lutIndex(state_, msg_valid ? msg.id : kMsgNone,
                 condBits(token, msg, msg_valid));
    const OutputFields &f = prog_->lut().lookup(idx);
    ++lutLookups_;

    // 3. Structural stall: actions that push south wait for space.
    if (f.stallable && !southHasSpace()) {
        ++stallCycles_;
        pipe_->issue(nopInst());
        return;
    }

    // 4. Buffer push happens before address generation: the head/tag
    //    views used by a flush must include the entry materialized
    //    this cycle (a depth-1 buffer flushes the row it just pushed).
    if (f.bufferOp == BufferOp::Push || f.bufferOp == BufferOp::PushPop) {
        const std::uint16_t tag = selValue(prog_->tagSel(), token, msg);
        rowCursor_ = tag;
        fifo_.push(tag);
    }

    // 5. Address generation and instruction issue.
    Instruction inst;
    inst.op = f.peOp;
    inst.op1 = evalAddr(prog_->addrMode(f.op1Mode), token, msg);
    inst.op2 = evalAddr(prog_->addrMode(f.op2Mode), token, msg);
    inst.res = evalAddr(prog_->addrMode(f.resMode), token, msg);
    inst.route = prog_->routeMode(f.routeMode);
    pipe_->issue(inst);
    if (!inst.isNop())
        ++instIssued_;
    if (isMacOp(inst.op))
        ++macIssued_;

    // 6. West-edge data injection, aligned with the issued instruction.
    if (f.westFeed != WestFeed::None) {
        panicIf(!westChan_, "Orchestrator ", name_,
                ": westFeed with no west channel bound");
        Vec4 v;
        if (f.westFeed == WestFeed::TokenData)
            v[0] = token.data;
        westChan_->push(v);
    }

    // 7. Message generation.
    const MsgMode &mm = prog_->msgMode(f.msgMode);
    if (mm.kind != MsgMode::Kind::None) {
        panicIf(!msgOut_, "Orchestrator ", name_,
                ": message emitted with no south orchestrator bound");
        OrchMsg out;
        if (mm.kind == MsgMode::Kind::Forward) {
            panicIf(!msg_valid, "Orchestrator ", name_,
                    ": forwarding with no incoming message");
            out = msg;
            // Diagnostics: which side of the local cursor a relayed
            // value falls on (load-imbalance fingerprint).
            if (static_cast<std::int16_t>(msg.value - meta_[0]) >= 0)
                ++fwdAhead_;
            else
                ++fwdBehind_;
        } else {
            out.id = mm.id;
            out.value = selValue(mm.sel, token, msg);
        }
        msgOut_->push(out);
        ++msgsSent_;
    }

    // 8. Output bookkeeping for east-edge collectors.
    if (f.emitOutRec) {
        panicIf(!outRecs_, "Orchestrator ", name_,
                ": outRec with no collector queue bound");
        outRecs_->push_back({meta_[0], token.value});
    }

    // 9. Buffer pop retires the oldest entry after the flush
    //    referenced it.
    if (f.bufferOp == BufferOp::Pop || f.bufferOp == BufferOp::PushPop)
        fifo_.pop();

    // 10. Register updates and consumption.
    applyMetaUpdate(0, prog_->metaUpdate(0, f.metaUpd0), token, msg);
    applyMetaUpdate(1, prog_->metaUpdate(1, f.metaUpd1), token, msg);
    if (f.consumeInput)
        stream_.advance();
    if (f.consumeMsg) {
        panicIf(!msg_valid, "Orchestrator ", name_,
                ": consuming a message that is not there");
        msgIn_->pop();
    }

    // 11. State transition.
    if (f.nextState != state_) {
        ++stateTransitions_;
        state_ = f.nextState;
    }
}

} // namespace canon
