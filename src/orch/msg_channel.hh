/**
 * @file
 * Inter-orchestrator messages (Figure 5's ORCH_MSG / MSG_ID paths).
 *
 * A message is a 3-bit ID plus a 16-bit value; both the IDs' meanings
 * and the value encodings are kernel conventions (the hardware only
 * moves them). Messages travel between vertically adjacent
 * orchestrators with a fixed latency of kIssueStagger + 1 cycles so
 * that a message announcing a psum flush becomes visible to the
 * downstream orchestrator exactly when the flushed vector from the
 * first PE column becomes readable at the downstream PE's north port
 * -- the alignment that makes dynamic decisions deterministic.
 */

#ifndef CANON_ORCH_MSG_CHANNEL_HH
#define CANON_ORCH_MSG_CHANNEL_HH

#include <array>
#include <cstdint>

#include "noc/inst_pipeline.hh"
#include "sim/clocked.hh"
#include "sim/latch.hh"

namespace canon
{

/** Message IDs used by the kernel programs in this repository. */
enum OrchMsgId : std::uint8_t
{
    kMsgNone = 0,
    kMsgPsum = 1, //!< "a partial sum for row <value> is in flight"
    kMsgAVec = 2, //!< "streamed vector <value> is on the north channel"
};

/**
 * Maximum unconsumed messages between two orchestrators. This is the
 * fabric's flow-control window: a producer whose action would push a
 * message (and therefore a southbound data vector) stalls when the
 * window is exhausted, bounding data-channel occupancy structurally.
 */
constexpr std::size_t kMsgWindow = 4;

struct OrchMsg
{
    std::uint8_t id = kMsgNone;
    std::uint16_t value = 0;

    friend bool
    operator==(const OrchMsg &a, const OrchMsg &b)
    {
        return a.id == b.id && a.value == b.value;
    }
};

/**
 * Message pipe: a kIssueStagger-stage delay line feeding a small FIFO
 * at the consumer. Push during tickCompute; the message becomes
 * consumable kIssueStagger + 1 cycles later.
 */
class MsgChannel final : public Clocked
{
  public:
    /** Pushes stage externally; the delay line shifts at commit. */
    static constexpr bool kHasTickCompute = false;

    explicit MsgChannel(std::string name = "msg")
        : fifo_(kMsgWindow + kIssueStagger + 1, std::move(name))
    {
    }

    /**
     * Producer-side window check: counts everything unconsumed --
     * staged, in the delay line, and in the consumer FIFO. At most
     * kMsgWindow messages may be outstanding.
     */
    bool canPush() const { return size() < kMsgWindow; }

    void
    push(const OrchMsg &m)
    {
        panicIf(stagedValid_, "MsgChannel: double push in one cycle");
        panicIf(m.id == kMsgNone, "MsgChannel: pushing a None message");
        staged_ = m;
        stagedValid_ = true;
    }

    /** Consumer side. */
    bool empty() const { return fifo_.empty(); }
    const OrchMsg &front() const { return fifo_.front(); }
    void pop() { fifo_.pop(); }

    /**
     * Unconsumed messages in flight: staged + delay line + consumer
     * FIFO. This is the channel occupancy the obs histograms record.
     */
    std::size_t
    size() const
    {
        std::size_t n = fifo_.size() + (stagedValid_ ? 1 : 0);
        for (const auto &m : delay_)
            if (m.id != kMsgNone)
                ++n;
        return n;
    }

    void tickCompute() override {}

    void
    tickCommit() override
    {
        // Shift the delay line; the oldest stage drains into the FIFO.
        if (delay_.back().id != kMsgNone)
            fifo_.push(delay_.back());
        for (std::size_t i = delay_.size() - 1; i > 0; --i)
            delay_[i] = delay_[i - 1];
        delay_[0] = stagedValid_ ? staged_ : OrchMsg{};
        stagedValid_ = false;
        fifo_.commit();
    }

  private:
    std::array<OrchMsg, kIssueStagger> delay_{};
    OrchMsg staged_{};
    bool stagedValid_ = false;
    ChannelFifo<OrchMsg> fifo_;
};

} // namespace canon

#endif // CANON_ORCH_MSG_CHANNEL_HH
