/**
 * @file
 * The orchestrator's programmable-logic LUT (Section 3.2).
 *
 * 2^10 entries x 48 bits = 6 KB of SRAM, addressed by
 *
 *   index = state(3) | msgId(3) | condBits(4)
 *
 * and prefilled before kernel execution from a bitstream. pack() /
 * unpack() convert between the semantic OutputFields view and the
 * 48-bit hardware image; serialization round-trips are property-tested.
 */

#ifndef CANON_ORCH_LUT_HH
#define CANON_ORCH_LUT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "orch/config.hh"

namespace canon
{

/** Pack the semantic fields into the 48-bit LUT word. */
std::uint64_t packOutput(const OutputFields &f);

/** Unpack a 48-bit LUT word. */
OutputFields unpackOutput(std::uint64_t word);

/** Compose a LUT index from the condition inputs. */
std::uint16_t lutIndex(std::uint8_t state, std::uint8_t msg_id,
                       std::uint8_t cond_bits);

class FsmLut
{
  public:
    FsmLut();

    const OutputFields &
    lookup(std::uint16_t index) const
    {
        return decoded_[index];
    }

    void set(std::uint16_t index, const OutputFields &f);

    /** Size of the bitstream image in bytes (6 KB). */
    static constexpr std::size_t
    bitstreamBytes()
    {
        return static_cast<std::size_t>(kLutEntries) * kLutWordBits / 8;
    }

    /** Serialize the SRAM contents ("bitstream" of Figure 1). */
    std::vector<std::uint8_t> toBitstream() const;

    /** Prefill the SRAM from a bitstream. */
    void loadBitstream(const std::vector<std::uint8_t> &bits);

  private:
    // Raw 48-bit words (hardware image) + a decoded shadow for speed.
    std::array<std::uint64_t, kLutEntries> words_;
    std::array<OutputFields, kLutEntries> decoded_;
};

} // namespace canon

#endif // CANON_ORCH_LUT_HH
