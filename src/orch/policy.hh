/**
 * @file
 * Orchestrator-level policy knobs, shared between the fabric
 * configuration and the orchestrator implementation.
 *
 * These are scheduling/microarchitecture policies layered on top of
 * the kernel microcode: they never change what is computed (psum
 * accumulation is exact integer arithmetic, so merge order is
 * value-invariant), only when buffer slots are recycled and when
 * north->south relays happen.
 */

#ifndef CANON_ORCH_POLICY_HH
#define CANON_ORCH_POLICY_HH

#include <string>

namespace canon
{

/**
 * When the scratchpad context queue drains completed-row psums.
 *
 * Eager is the paper's Listing-1 behavior: rows stay resident until
 * the queue is at the resident cap and a new row end forces a
 * flush-and-recycle. Adaptive targets the resident-row scaling
 * pathology measured in docs/resident_rows.md: with thousands of
 * in-flight rows, downstream orchestrators lag upstream beyond the
 * residency window, psum merges miss, and relayed traffic cascades
 * toward the all-miss quadratic regime. Adaptive (a) starts draining
 * at a high-water mark instead of only at the cap, keeping headroom
 * at every row end, and (b) holds a merge-protocol message whose row
 * the local cursor has not reached yet in the inbound channel
 * (backpressure) instead of relaying it, so the merge happens as soon
 * as the row is materialized locally.
 */
enum class SpadFlushPolicy : std::uint8_t
{
    Eager,
    Adaptive,
};

/** High-water mark adaptive flushing drains at (eager: the cap). */
inline int
spadHighWaterMark(int resident_cap)
{
    const int mark = (resident_cap * 3) / 4;
    return mark < 1 ? 1 : mark;
}

inline const char *
spadFlushName(SpadFlushPolicy p)
{
    return p == SpadFlushPolicy::Adaptive ? "adaptive" : "eager";
}

inline bool
parseSpadFlush(const std::string &s, SpadFlushPolicy &out)
{
    if (s == "eager") {
        out = SpadFlushPolicy::Eager;
    } else if (s == "adaptive") {
        out = SpadFlushPolicy::Adaptive;
    } else {
        return false;
    }
    return true;
}

/** Orchestrator policy bundle threaded from CanonConfig. */
struct OrchPolicy
{
    int tagBanks = 1;
    SpadFlushPolicy spadFlush = SpadFlushPolicy::Eager;
};

} // namespace canon

#endif // CANON_ORCH_POLICY_HH
