/**
 * @file
 * Orchestrator kernel programs and the microcode compiler.
 *
 * A kernel's control schedule is written as prioritized rules --
 * exactly the shape of Listing 1 in the paper ("op = MAC(CID) if
 * !msg_from_north && input == NNZ(CID); ...") -- against the menus of
 * config.hh. compile() lowers the rules into the 1024-entry LUT
 * bitstream that is prefilled into the orchestrator before execution
 * (Figure 6, "Program Generation" -> "Bitstream for the Orchestrator's
 * FSM").
 *
 * Rule matching is by (state, message-ID condition, predicate-bit
 * requirements); the first registered rule that matches a LUT index
 * fills its word. Unmatched indices get a safe self-loop NOP.
 */

#ifndef CANON_ORCH_PROGRAM_HH
#define CANON_ORCH_PROGRAM_HH

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "orch/config.hh"
#include "orch/lut.hh"
#include "orch/msg_channel.hh"

namespace canon
{

/**
 * One microcode rule: conditions plus the action fields emitted when
 * it fires. Built through the fluent interface below; see
 * src/kernels/spmm_program.cc for the canonical example.
 */
class Rule
{
  public:
    Rule(std::uint8_t state, const PredicateSet &preds)
        : state_(state), preds_(preds)
    {
        fields_.nextState = state; // default: self-loop
    }

    // ---- conditions -------------------------------------------------
    Rule &onMsg(std::uint8_t id);
    Rule &onNoMsg();
    Rule &when(Predicate p);
    Rule &whenNot(Predicate p);

    // ---- actions ----------------------------------------------------
    Rule &op(OpCode o);
    Rule &op1(int addr_mode);
    Rule &op2(int addr_mode);
    Rule &res(int addr_mode);
    Rule &route(int route_mode);
    Rule &msg(int msg_mode);
    Rule &buffer(BufferOp b);
    Rule &meta0(int upd);
    Rule &meta1(int upd);
    Rule &consumeInput();
    Rule &consumeMsg();
    Rule &westFeed(WestFeed w);
    Rule &outRec();
    Rule &stallable();
    Rule &next(std::uint8_t state);

    // ---- matching ---------------------------------------------------
    bool matches(std::uint8_t msg_id, std::uint8_t cond_bits) const;

    std::uint8_t state() const { return state_; }
    const OutputFields &fields() const { return fields_; }

  private:
    int predBit(Predicate p) const;

    std::uint8_t state_;
    PredicateSet preds_;
    // Message-ID condition: unset = any; kMsgNone = require none;
    // other = require exactly that ID.
    std::optional<std::uint8_t> msgId_;
    std::uint8_t predMask_ = 0;
    std::uint8_t predVal_ = 0;
    OutputFields fields_;
};

class OrchProgram
{
  public:
    explicit OrchProgram(std::string name);

    const std::string &name() const { return name_; }

    // ---- menu registration (static configuration) -------------------
    int addAddrMode(const AddrMode &m);
    int addRouteMode(std::uint8_t mask);
    int addMsgMode(const MsgMode &m);
    int addMetaUpdate(int reg, const MetaUpdate &u);

    void setPredicates(std::uint8_t state, const PredicateSet &preds);
    void setInitialState(std::uint8_t s) { initialState_ = s; }
    void setDoneState(std::uint8_t s) { doneState_ = s; }

    /** Value source for buffer Push tags (SpMM: the RowEnd RID). */
    void setTagSel(ValueSel sel) { tagSel_ = sel; }

    /** The constant compared by Predicate::Meta1EqConst. */
    void setCondConst(std::uint16_t k) { condConst_ = k; }

    /** The constant compared by Predicate::Meta1MinusMeta0LtB. */
    void setCondConstB(std::uint16_t k) { condConstB_ = k; }

    /**
     * Message id participating in the tag-managed merge protocol
     * (SpMM: kMsgPsum, whose value is the row tag searched against
     * the context queue). kMsgNone (the default) means no message is
     * merge-protocol traffic, which disables the adaptive flush
     * policy's message hold for this program.
     */
    void setMergeMsgId(std::uint8_t id) { mergeMsgId_ = id; }

    // ---- rules ------------------------------------------------------
    /** Add a rule for @p state; earlier rules have priority. */
    Rule &rule(std::uint8_t state);

    /** Lower all rules into the LUT; panics on inconsistent menus. */
    void compile();

    bool compiled() const { return compiled_; }

    // ---- runtime accessors ------------------------------------------
    const FsmLut &lut() const { return lut_; }
    const AddrMode &addrMode(int i) const;
    std::uint8_t routeMode(int i) const;
    const MsgMode &msgMode(int i) const;
    const MetaUpdate &metaUpdate(int reg, int i) const;
    const PredicateSet &predicates(std::uint8_t state) const;

    std::uint8_t initialState() const { return initialState_; }
    std::uint8_t doneState() const { return doneState_; }
    ValueSel tagSel() const { return tagSel_; }
    std::uint16_t condConst() const { return condConst_; }
    std::uint16_t condConstB() const { return condConstB_; }
    std::uint8_t mergeMsgId() const { return mergeMsgId_; }

  private:
    std::string name_;
    std::vector<AddrMode> addrModes_;
    std::vector<std::uint8_t> routeModes_;
    std::vector<MsgMode> msgModes_;
    std::vector<MetaUpdate> metaUpdates_[2];
    PredicateSet predicates_[kNumFsmStates];
    std::deque<Rule> rules_; // deque: rule() returns stable references
    FsmLut lut_;
    std::uint8_t initialState_ = 0;
    std::uint8_t doneState_ = 0;
    ValueSel tagSel_ = ValueSel::InputValue;
    std::uint16_t condConst_ = 0;
    std::uint16_t condConstB_ = 0;
    std::uint8_t mergeMsgId_ = 0; // kMsgNone
    bool compiled_ = false;
};

} // namespace canon

#endif // CANON_ORCH_PROGRAM_HH
