/**
 * @file
 * Meta-data tokens and streams.
 *
 * The orchestrator's runtime inputs are a stream of 16-bit meta words
 * ("Input Meta Register") whose interpretation is defined by the kernel
 * program, not the hardware (Section 3.2). We model a meta word as a
 * 2-bit kind plus a 14-bit value; the kinds below are the conventions
 * used by the kernel programs in src/kernels:
 *
 *   Nnz(value)    - a non-zero element coordinate (SpMM: local column
 *                   of B / row of the PE's tile; SDDMM: a live mask
 *                   position). Carries the INT8 payload fed to the
 *                   row's west edge.
 *   RowEnd(value) - end of output row `value` (SpMM) / end of a mask
 *                   row (SDDMM).
 *   Aux(value)    - kernel-specific (SDDMM: "a new A vector arrives";
 *                   also produced implicitly before a stream's start
 *                   cycle to realize compile-time skew).
 *   End           - stream exhausted; peeking past the end keeps
 *                   returning End so drain states can rely on it.
 */

#ifndef CANON_ORCH_TOKEN_HH
#define CANON_ORCH_TOKEN_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace canon
{

enum class TokenKind : std::uint8_t
{
    Nnz = 0,
    RowEnd = 1,
    End = 2,
    Aux = 3,
};

struct MetaToken
{
    TokenKind kind = TokenKind::End;
    std::uint16_t value = 0; //!< 14-bit meta value (CID / RID / aux)
    Elem data = 0;           //!< payload for the west data edge

    static MetaToken
    nnz(std::uint16_t coord, Elem payload)
    {
        return {TokenKind::Nnz, coord, payload};
    }

    static MetaToken
    rowEnd(std::uint16_t rid)
    {
        return {TokenKind::RowEnd, rid, 0};
    }

    static MetaToken
    aux(std::uint16_t v = 0)
    {
        return {TokenKind::Aux, v, 0};
    }

    static MetaToken end() { return {}; }
};

/**
 * The per-orchestrator meta-data input stream, produced by the EDDO
 * memory movers from the kernel's sparse structure. startCycle gives
 * compile-time skew (the systolic alignment used by the dense/N:M
 * programs).
 */
class MetaStream
{
  public:
    MetaStream() = default;

    explicit MetaStream(std::vector<MetaToken> tokens,
                        Cycle start_cycle = 0)
        : tokens_(std::move(tokens)), startCycle_(start_cycle)
    {
        for (const auto &t : tokens_)
            panicIf(t.kind == TokenKind::End,
                    "MetaStream: explicit End token (End is implicit)");
        panicIf(!tokens_.empty() &&
                    tokens_.back().kind == TokenKind::End,
                "MetaStream: trailing End");
    }

    /** Token visible at cycle @p now; Aux before start, End after. */
    MetaToken
    peek(Cycle now) const
    {
        if (now < startCycle_)
            return MetaToken::aux();
        if (pos_ >= tokens_.size())
            return MetaToken::end();
        return tokens_[pos_];
    }

    void
    advance()
    {
        if (pos_ < tokens_.size())
            ++pos_;
    }

    bool exhausted() const { return pos_ >= tokens_.size(); }
    std::size_t size() const { return tokens_.size(); }
    std::size_t position() const { return pos_; }
    Cycle startCycle() const { return startCycle_; }

    void
    reset()
    {
        pos_ = 0;
    }

  private:
    std::vector<MetaToken> tokens_;
    std::size_t pos_ = 0;
    Cycle startCycle_ = 0;
};

} // namespace canon

#endif // CANON_ORCH_TOKEN_HH
