#include "orch/program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace canon
{

// ---------------------------------------------------------------------
// Rule
// ---------------------------------------------------------------------

Rule &
Rule::onMsg(std::uint8_t id)
{
    msgId_ = id;
    return *this;
}

Rule &
Rule::onNoMsg()
{
    msgId_ = kMsgNone;
    return *this;
}

int
Rule::predBit(Predicate p) const
{
    for (int i = 0; i < kNumCondBits; ++i)
        if (preds_[static_cast<std::size_t>(i)] == p)
            return i;
    panic("Rule: predicate ", static_cast<int>(p),
          " is not in the condition set of state ",
          static_cast<int>(state_));
}

Rule &
Rule::when(Predicate p)
{
    const int b = predBit(p);
    predMask_ |= 1 << b;
    predVal_ |= 1 << b;
    return *this;
}

Rule &
Rule::whenNot(Predicate p)
{
    const int b = predBit(p);
    predMask_ |= 1 << b;
    predVal_ &= static_cast<std::uint8_t>(~(1 << b));
    return *this;
}

Rule &
Rule::op(OpCode o)
{
    fields_.peOp = o;
    return *this;
}

Rule &
Rule::op1(int addr_mode)
{
    fields_.op1Mode = static_cast<std::uint8_t>(addr_mode);
    return *this;
}

Rule &
Rule::op2(int addr_mode)
{
    fields_.op2Mode = static_cast<std::uint8_t>(addr_mode);
    return *this;
}

Rule &
Rule::res(int addr_mode)
{
    fields_.resMode = static_cast<std::uint8_t>(addr_mode);
    return *this;
}

Rule &
Rule::route(int route_mode)
{
    fields_.routeMode = static_cast<std::uint8_t>(route_mode);
    return *this;
}

Rule &
Rule::msg(int msg_mode)
{
    fields_.msgMode = static_cast<std::uint8_t>(msg_mode);
    return *this;
}

Rule &
Rule::buffer(BufferOp b)
{
    fields_.bufferOp = b;
    return *this;
}

Rule &
Rule::meta0(int upd)
{
    fields_.metaUpd0 = static_cast<std::uint8_t>(upd);
    return *this;
}

Rule &
Rule::meta1(int upd)
{
    fields_.metaUpd1 = static_cast<std::uint8_t>(upd);
    return *this;
}

Rule &
Rule::consumeInput()
{
    fields_.consumeInput = true;
    return *this;
}

Rule &
Rule::consumeMsg()
{
    fields_.consumeMsg = true;
    return *this;
}

Rule &
Rule::westFeed(WestFeed w)
{
    fields_.westFeed = w;
    return *this;
}

Rule &
Rule::outRec()
{
    fields_.emitOutRec = true;
    return *this;
}

Rule &
Rule::stallable()
{
    fields_.stallable = true;
    return *this;
}

Rule &
Rule::next(std::uint8_t state)
{
    fields_.nextState = state;
    return *this;
}

bool
Rule::matches(std::uint8_t msg_id, std::uint8_t cond_bits) const
{
    if (msgId_.has_value()) {
        if (*msgId_ == kMsgNone) {
            if (msg_id != kMsgNone)
                return false;
        } else if (msg_id != *msgId_) {
            return false;
        }
    }
    return (cond_bits & predMask_) == predVal_;
}

// ---------------------------------------------------------------------
// OrchProgram
// ---------------------------------------------------------------------

OrchProgram::OrchProgram(std::string name) : name_(std::move(name))
{
    // Mode index 0 is always the neutral entry so unset fields decode
    // to "do nothing".
    addrModes_.push_back(AddrMode::null());
    routeModes_.push_back(0);
    msgModes_.push_back(MsgMode::none());
    metaUpdates_[0].push_back(MetaUpdate::nop());
    metaUpdates_[1].push_back(MetaUpdate::nop());
    for (auto &set : predicates_)
        set.fill(Predicate::False);
}

int
OrchProgram::addAddrMode(const AddrMode &m)
{
    panicIf(addrModes_.size() >= kNumAddrModes, "OrchProgram ", name_,
            ": address-mode menu full (", kNumAddrModes, ")");
    addrModes_.push_back(m);
    return static_cast<int>(addrModes_.size()) - 1;
}

int
OrchProgram::addRouteMode(std::uint8_t route_mask)
{
    panicIf(routeModes_.size() >= kNumRouteModes, "OrchProgram ", name_,
            ": route-mode menu full");
    routeModes_.push_back(route_mask);
    return static_cast<int>(routeModes_.size()) - 1;
}

int
OrchProgram::addMsgMode(const MsgMode &m)
{
    panicIf(msgModes_.size() >= kNumMsgModes, "OrchProgram ", name_,
            ": message-mode menu full");
    msgModes_.push_back(m);
    return static_cast<int>(msgModes_.size()) - 1;
}

int
OrchProgram::addMetaUpdate(int reg, const MetaUpdate &u)
{
    panicIf(reg < 0 || reg > 1, "OrchProgram: bad meta register ", reg);
    auto &menu = metaUpdates_[reg];
    panicIf(menu.size() >= kNumMetaUpdates, "OrchProgram ", name_,
            ": meta-update menu full for reg ", reg);
    menu.push_back(u);
    return static_cast<int>(menu.size()) - 1;
}

void
OrchProgram::setPredicates(std::uint8_t state, const PredicateSet &preds)
{
    panicIf(state >= kNumFsmStates, "setPredicates: state out of range");
    predicates_[state] = preds;
}

Rule &
OrchProgram::rule(std::uint8_t state)
{
    panicIf(state >= kNumFsmStates, "rule: state out of range");
    panicIf(compiled_, "OrchProgram ", name_,
            ": adding rules after compile()");
    rules_.emplace_back(state, predicates_[state]);
    return rules_.back();
}

void
OrchProgram::compile()
{
    panicIf(compiled_, "OrchProgram ", name_, ": compiled twice");
    for (int state = 0; state < kNumFsmStates; ++state) {
        for (int msg_id = 0; msg_id < 8; ++msg_id) {
            for (int cond = 0; cond < (1 << kNumCondBits); ++cond) {
                const auto idx = lutIndex(
                    static_cast<std::uint8_t>(state),
                    static_cast<std::uint8_t>(msg_id),
                    static_cast<std::uint8_t>(cond));
                const Rule *hit = nullptr;
                for (const auto &r : rules_) {
                    if (r.state() == state &&
                        r.matches(static_cast<std::uint8_t>(msg_id),
                                  static_cast<std::uint8_t>(cond))) {
                        hit = &r;
                        break;
                    }
                }
                if (hit) {
                    lut_.set(idx, hit->fields());
                } else {
                    // Safe default: self-loop NOP, consume nothing.
                    OutputFields f;
                    f.nextState = static_cast<std::uint8_t>(state);
                    lut_.set(idx, f);
                }
            }
        }
    }
    compiled_ = true;
}

const AddrMode &
OrchProgram::addrMode(int i) const
{
    panicIf(i < 0 || i >= static_cast<int>(addrModes_.size()),
            "addrMode index ", i, " out of menu");
    return addrModes_[static_cast<std::size_t>(i)];
}

std::uint8_t
OrchProgram::routeMode(int i) const
{
    panicIf(i < 0 || i >= static_cast<int>(routeModes_.size()),
            "routeMode index ", i, " out of menu");
    return routeModes_[static_cast<std::size_t>(i)];
}

const MsgMode &
OrchProgram::msgMode(int i) const
{
    panicIf(i < 0 || i >= static_cast<int>(msgModes_.size()),
            "msgMode index ", i, " out of menu");
    return msgModes_[static_cast<std::size_t>(i)];
}

const MetaUpdate &
OrchProgram::metaUpdate(int reg, int i) const
{
    panicIf(reg < 0 || reg > 1, "metaUpdate: bad register");
    const auto &menu = metaUpdates_[reg];
    panicIf(i < 0 || i >= static_cast<int>(menu.size()),
            "metaUpdate index ", i, " out of menu");
    return menu[static_cast<std::size_t>(i)];
}

const PredicateSet &
OrchProgram::predicates(std::uint8_t state) const
{
    panicIf(state >= kNumFsmStates, "predicates: state out of range");
    return predicates_[state];
}

} // namespace canon
