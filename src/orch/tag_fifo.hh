/**
 * @file
 * The orchestrator-side view of the scratchpad psum buffer.
 *
 * Section 4.1.1: the scratchpad "operates as a FIFO queue, and each PE
 * processes only the partial sums that are explicitly managed at any
 * given time ... The orchestrator actively monitors buffer occupancy,
 * maintaining metadata to track the oldest row index present in the
 * context queue."
 *
 * TagFifo is that metadata: a circular queue of row-ID tags mapping to
 * physical scratchpad slots, with the `is_managing(RID)` search of
 * Listing 1. One slot is always reserved as the in-flight accumulation
 * slot of the row currently being MACed (tailSlot()); resident entries
 * are therefore bounded by capacity - 1. Depth 1 degenerates to the
 * "single register" baseline of Figure 17: nothing is buffered and
 * every row end flushes immediately.
 *
 * Tags are searched associatively. The paper keeps a contiguous-RID
 * window in two meta registers; the associative form additionally
 * supports rows whose slice is empty being skipped in the meta stream,
 * which the contiguous window cannot address. DESIGN.md records this
 * interpretation; the cost model charges a CAM-style search per probe.
 */

#ifndef CANON_ORCH_TAG_FIFO_HH
#define CANON_ORCH_TAG_FIFO_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "common/logging.hh"
#include "common/stats.hh"

namespace canon
{

class TagFifo
{
  public:
    TagFifo(int capacity, StatGroup &stats)
        : capacity_(capacity),
          searches_(stats.counter("bufferSearches")),
          compares_(stats.counter("tagCompares")),
          pushes_(stats.counter("bufferPushes"))
    {
        panicIf(capacity <= 0, "TagFifo: capacity must be positive");
    }

    int capacity() const { return capacity_; }

    /** Resident entries allowed while a row is still accumulating. */
    int residentCap() const { return capacity_ - 1; }

    int size() const { return static_cast<int>(tags_.size()); }
    bool empty() const { return tags_.empty(); }

    /** Will the next push exceed the resident budget (flush needed)? */
    bool atResidentCap() const { return size() >= residentCap(); }

    /** Physical slot the current (unpushed) row accumulates into. */
    int
    tailSlot() const
    {
        return (headSlot_ + size()) % capacity_;
    }

    int
    headSlot() const
    {
        panicIf(tags_.empty(), "TagFifo: headSlot() on empty buffer");
        return headSlot_;
    }

    std::uint16_t
    headTag() const
    {
        panicIf(tags_.empty(), "TagFifo: headTag() on empty buffer");
        return tags_.front();
    }

    /** is_managing(tag): physical slot if resident, nullopt if not. */
    std::optional<int>
    search(std::uint16_t tag) const
    {
        ++searches_;
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            ++compares_;
            if (tags_[i] == tag)
                return (headSlot_ + static_cast<int>(i)) % capacity_;
        }
        return std::nullopt;
    }

    /** Materialize the accumulation slot as a managed entry. */
    void
    push(std::uint16_t tag)
    {
        panicIf(size() >= capacity_, "TagFifo: push beyond capacity");
        ++pushes_;
        tags_.push_back(tag);
    }

    /** Retire the oldest entry (its slot becomes reusable). */
    void
    pop()
    {
        panicIf(tags_.empty(), "TagFifo: pop on empty buffer");
        tags_.pop_front();
        headSlot_ = (headSlot_ + 1) % capacity_;
    }

    void
    reset()
    {
        tags_.clear();
        headSlot_ = 0;
    }

  private:
    int capacity_;
    std::deque<std::uint16_t> tags_;
    int headSlot_ = 0;
    Counter &searches_; // incrementable from const search(): the
    Counter &compares_; // counters live in the owning StatGroup
    Counter &pushes_;
};

} // namespace canon

#endif // CANON_ORCH_TAG_FIFO_HH
