/**
 * @file
 * The orchestrator-side view of the scratchpad psum buffer.
 *
 * Section 4.1.1: the scratchpad "operates as a FIFO queue, and each PE
 * processes only the partial sums that are explicitly managed at any
 * given time ... The orchestrator actively monitors buffer occupancy,
 * maintaining metadata to track the oldest row index present in the
 * context queue."
 *
 * TagFifo is that metadata: a circular queue of row-ID tags mapping to
 * physical scratchpad slots, with the `is_managing(RID)` search of
 * Listing 1. One slot is always reserved as the in-flight accumulation
 * slot of the row currently being MACed (tailSlot()); resident entries
 * are therefore bounded by capacity - 1. Depth 1 degenerates to the
 * "single register" baseline of Figure 17: nothing is buffered and
 * every row end flushes immediately.
 *
 * Tags are searched associatively. The paper keeps a contiguous-RID
 * window in two meta registers; the associative form additionally
 * supports rows whose slice is empty being skipped in the meta stream,
 * which the contiguous window cannot address. DESIGN.md records this
 * interpretation; the cost model charges a CAM-style search per probe.
 *
 * The search can be banked (the scale-out spatial-architecture
 * literature's standard fix for coordination-state lookups): tags are
 * hashed by `tag % banks` into independently searched banks, each
 * holding its members in global insertion order. A probe scans only
 * the bank its tag hashes to, so `tagCompares` counts per-bank work
 * and drops ~banks-fold at high occupancy. Because duplicate tags
 * hash to the same bank and bank order preserves insertion order, the
 * first match in a bank is the oldest match globally: results are
 * identical to the single-bank linear reference for every operation
 * sequence (pinned by a differential property test in orch_test).
 */

#ifndef CANON_ORCH_TAG_FIFO_HH
#define CANON_ORCH_TAG_FIFO_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"

namespace canon
{

class TagFifo
{
  public:
    TagFifo(int capacity, StatGroup &stats, int banks = 1)
        : capacity_(capacity),
          banks_(static_cast<std::size_t>(banks < 1 ? 1 : banks)),
          searches_(stats.counter("bufferSearches")),
          compares_(stats.counter("tagCompares")),
          pushes_(stats.counter("bufferPushes"))
    {
        panicIf(capacity <= 0, "TagFifo: capacity must be positive");
        panicIf(banks <= 0, "TagFifo: banks must be positive");
    }

    int capacity() const { return capacity_; }
    int numBanks() const { return static_cast<int>(banks_.size()); }

    /** Resident entries allowed while a row is still accumulating. */
    int residentCap() const { return capacity_ - 1; }

    int size() const { return static_cast<int>(tags_.size()); }
    bool empty() const { return tags_.empty(); }

    /** Will the next push exceed the resident budget (flush needed)? */
    bool atResidentCap() const { return size() >= residentCap(); }

    /** Cost-counter reads for the obs cycle accountant (per-cycle
     *  search/compare deltas drive the tag_search classification and
     *  the search-length histogram). */
    std::uint64_t searchCount() const { return searches_.value(); }
    std::uint64_t compareCount() const { return compares_.value(); }

    /** Physical slot the current (unpushed) row accumulates into. */
    int
    tailSlot() const
    {
        return (headSlot_ + size()) % capacity_;
    }

    int
    headSlot() const
    {
        panicIf(tags_.empty(), "TagFifo: headSlot() on empty buffer");
        return headSlot_;
    }

    std::uint16_t
    headTag() const
    {
        panicIf(tags_.empty(), "TagFifo: headTag() on empty buffer");
        return tags_.front();
    }

    /**
     * is_managing(tag): physical slot if resident, nullopt if not.
     * Non-const because a probe is charged work: it bumps the
     * bufferSearches/tagCompares cost counters. Diagnostic walks over
     * a const fabric use probe() instead.
     */
    std::optional<int>
    search(std::uint16_t tag)
    {
        ++searches_;
        const auto &bank = banks_[bankOf(tag)];
        for (const Entry &e : bank) {
            ++compares_;
            if (e.tag == tag)
                return e.slot;
        }
        return std::nullopt;
    }

    /** Uncounted const lookup for diagnostics/tests: same result as
     *  search(), charges nothing to the cost model. */
    std::optional<int>
    probe(std::uint16_t tag) const
    {
        for (const Entry &e : banks_[bankOf(tag)])
            if (e.tag == tag)
                return e.slot;
        return std::nullopt;
    }

    /** Materialize the accumulation slot as a managed entry. */
    void
    push(std::uint16_t tag)
    {
        panicIf(size() >= capacity_, "TagFifo: push beyond capacity");
        ++pushes_;
        banks_[bankOf(tag)].push_back(Entry{tailSlot(), tag});
        tags_.push_back(tag);
    }

    /** Retire the oldest entry (its slot becomes reusable). */
    void
    pop()
    {
        panicIf(tags_.empty(), "TagFifo: pop on empty buffer");
        auto &bank = banks_[bankOf(tags_.front())];
        panicIf(bank.empty() || bank.front().slot != headSlot_,
                "TagFifo: bank order diverged from global order");
        bank.pop_front();
        tags_.pop_front();
        headSlot_ = (headSlot_ + 1) % capacity_;
    }

    void
    reset()
    {
        tags_.clear();
        for (auto &bank : banks_)
            bank.clear();
        headSlot_ = 0;
    }

  private:
    struct Entry
    {
        int slot;
        std::uint16_t tag;
    };

    std::size_t
    bankOf(std::uint16_t tag) const
    {
        return tag % banks_.size();
    }

    int capacity_;
    std::deque<std::uint16_t> tags_; //!< global FIFO order
    std::vector<std::deque<Entry>> banks_; //!< per-bank insertion order
    int headSlot_ = 0;
    Counter &searches_;
    Counter &compares_;
    Counter &pushes_;
};

} // namespace canon

#endif // CANON_ORCH_TAG_FIFO_HH
