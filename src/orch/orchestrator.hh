/**
 * @file
 * The row orchestrator (Figure 5): Canon's data-to-instruction
 * translator.
 *
 * Per cycle the orchestrator:
 *   1. evaluates its four condition predicates from the architectural
 *      registers (input meta, state meta, message registers) and the
 *      scratchpad tag buffer,
 *   2. looks up state|msgId|conds in the 6 KB LUT,
 *   3. generates one PE instruction for its row (address generation
 *      from the configured modes), issues it into the row's
 *      instruction pipeline, and
 *   4. applies the side effects: message to the southern orchestrator,
 *      state-meta updates, buffer push/pop, stream/message consumption,
 *      west-edge data injection, and the FSM state transition.
 *
 * If the emitted action needs space in the southbound channels and
 * none is available, the orchestrator stalls in place (issues a NOP
 * and re-evaluates next cycle); stall propagation between rows is how
 * load imbalance manifests, which the scratchpad depth then absorbs
 * (Section 6.5 / Figure 17).
 *
 * An OrchPolicy layers scheduling knobs over the kernel microcode:
 * the tag buffer's associative search can be banked (--tag-banks),
 * and the scratchpad flush policy (--spad-flush) can be switched from
 * the paper's eager flush-at-cap to the occupancy-adaptive policy
 * described in orch/policy.hh. Neither changes computed values.
 */

#ifndef CANON_ORCH_ORCHESTRATOR_HH
#define CANON_ORCH_ORCHESTRATOR_HH

#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "noc/inst_pipeline.hh"
#include "noc/router.hh"
#include "orch/msg_channel.hh"
#include "orch/policy.hh"
#include "orch/program.hh"
#include "orch/tag_fifo.hh"
#include "orch/token.hh"
#include "sim/clocked.hh"
#include "sim/simulator.hh"

namespace canon
{

/** Output bookkeeping record for edge collectors (kernel-defined). */
struct OutRec
{
    std::uint16_t a = 0;
    std::uint16_t b = 0;
};

class Orchestrator final : public Clocked
{
  public:
    /** All orchestrator effects stage through channels/latches that
     *  commit themselves; the commit phase is dead (schedule.hh). */
    static constexpr bool kHasTickCommit = false;

    Orchestrator(std::string name, int spad_capacity, StatGroup &stats,
                 const Simulator &sim, const OrchPolicy &policy = {});

    // ---- wiring ------------------------------------------------------
    void bindPipeline(InstPipeline *pipe) { pipe_ = pipe; }
    void bindWestChannel(DataChannel *ch) { westChan_ = ch; }
    void bindMsgIn(MsgChannel *ch) { msgIn_ = ch; }
    void bindMsgOut(MsgChannel *ch) { msgOut_ = ch; }
    void bindSouthData(std::vector<DataChannel *> chans)
    {
        southData_ = std::move(chans);
    }
    void bindOutRecQueue(std::deque<OutRec> *q) { outRecs_ = q; }

    // ---- programming (done by the kernel mapper before execution) ----
    void loadProgram(const OrchProgram *prog);
    void setStream(MetaStream stream);

    // ---- queries ------------------------------------------------------
    bool done() const;
    std::uint8_t state() const { return state_; }
    std::uint16_t meta(int i) const { return meta_[i]; }
    const TagFifo &buffer() const { return fifo_; }
    const std::string &name() const { return name_; }

    /** Counter reads for the obs cycle accountant (delta-based
     *  per-cycle classification; see obs/accounting.hh). */
    std::uint64_t stallCyclesValue() const
    {
        return stallCycles_.value();
    }
    std::uint64_t instIssuedValue() const
    {
        return instIssued_.value();
    }

    void tickCompute() override;
    void tickCommit() override {}

  private:
    // Predicate/address evaluation is non-const because probing the
    // tag buffer (MsgTagManaged, SpadSearch) is charged work: it
    // mutates the bufferSearches/tagCompares cost counters.
    bool evalPredicate(Predicate p, const MetaToken &token,
                       const OrchMsg &msg, bool msg_valid);
    std::uint8_t condBits(const MetaToken &token, const OrchMsg &msg,
                          bool msg_valid);
    std::uint16_t selValue(ValueSel sel, const MetaToken &token,
                           const OrchMsg &msg) const;
    Addr evalAddr(const AddrMode &m, const MetaToken &token,
                  const OrchMsg &msg);
    bool southHasSpace() const;
    void applyMetaUpdate(int reg, const MetaUpdate &u,
                         const MetaToken &token, const OrchMsg &msg);
    bool holdMergeMsg(const MetaToken &token, const OrchMsg &msg);

    std::string name_;
    const OrchProgram *prog_ = nullptr;
    MetaStream stream_;
    TagFifo fifo_;
    const Simulator &sim_;
    SpadFlushPolicy flushPolicy_;
    int flushThreshold_; //!< occupancy BufferAtCap asserts at

    // Architectural registers (Figure 5).
    std::uint8_t state_ = 0;
    std::uint16_t meta_[2] = {0, 0};

    /**
     * Last row tag materialized into the buffer; -1 before any push.
     * The adaptive flush policy compares incoming merge-protocol
     * messages against this cursor: a psum for a row beyond it is
     * held in the channel (backpressure) instead of relayed, so the
     * merge happens once the local row cursor catches up.
     */
    std::int32_t rowCursor_ = -1;

    // Wiring.
    InstPipeline *pipe_ = nullptr;
    DataChannel *westChan_ = nullptr;
    MsgChannel *msgIn_ = nullptr;
    MsgChannel *msgOut_ = nullptr;
    std::vector<DataChannel *> southData_;
    std::deque<OutRec> *outRecs_ = nullptr;

    // Statistics.
    Counter &lutLookups_;
    Counter &instIssued_;
    Counter &macIssued_;
    Counter &stallCycles_;
    Counter &stateTransitions_;
    Counter &msgsSent_;
    Counter &fwdAhead_;
    Counter &fwdBehind_;
    Counter &spadResidentSum_; //!< sum of resident rows over cycles
    Counter &spadCapCycles_;   //!< cycles pinned at the resident cap
};

} // namespace canon

#endif // CANON_ORCH_ORCHESTRATOR_HH
