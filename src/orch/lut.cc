#include "orch/lut.hh"

#include "common/bitfield.hh"

namespace canon
{

namespace
{

// Bit layout of the 48-bit output word (LSB-0).
constexpr int kNextStateLo = 0;  // 3b
constexpr int kPeOpLo = 3;       // 3b
constexpr int kOp1ModeLo = 6;    // 4b
constexpr int kOp2ModeLo = 10;   // 4b
constexpr int kResModeLo = 14;   // 4b
constexpr int kRouteModeLo = 18; // 2b
constexpr int kMsgModeLo = 20;   // 2b
constexpr int kBufferOpLo = 22;  // 2b
constexpr int kMetaUpd0Lo = 24;  // 2b
constexpr int kMetaUpd1Lo = 26;  // 2b
constexpr int kConsumeInputBit = 28;
constexpr int kConsumeMsgBit = 29;
constexpr int kWestFeedLo = 30;  // 2b
constexpr int kEmitOutRecBit = 32;
constexpr int kStallableBit = 33;

} // namespace

std::uint64_t
packOutput(const OutputFields &f)
{
    std::uint64_t w = 0;
    w = insertBits(w, kNextStateLo + 2, kNextStateLo, f.nextState);
    w = insertBits(w, kPeOpLo + 2, kPeOpLo,
                   static_cast<std::uint64_t>(f.peOp));
    w = insertBits(w, kOp1ModeLo + 3, kOp1ModeLo, f.op1Mode);
    w = insertBits(w, kOp2ModeLo + 3, kOp2ModeLo, f.op2Mode);
    w = insertBits(w, kResModeLo + 3, kResModeLo, f.resMode);
    w = insertBits(w, kRouteModeLo + 1, kRouteModeLo, f.routeMode);
    w = insertBits(w, kMsgModeLo + 1, kMsgModeLo, f.msgMode);
    w = insertBits(w, kBufferOpLo + 1, kBufferOpLo,
                   static_cast<std::uint64_t>(f.bufferOp));
    w = insertBits(w, kMetaUpd0Lo + 1, kMetaUpd0Lo, f.metaUpd0);
    w = insertBits(w, kMetaUpd1Lo + 1, kMetaUpd1Lo, f.metaUpd1);
    w = insertBits(w, kConsumeInputBit, kConsumeInputBit,
                   f.consumeInput ? 1 : 0);
    w = insertBits(w, kConsumeMsgBit, kConsumeMsgBit,
                   f.consumeMsg ? 1 : 0);
    w = insertBits(w, kWestFeedLo + 1, kWestFeedLo,
                   static_cast<std::uint64_t>(f.westFeed));
    w = insertBits(w, kEmitOutRecBit, kEmitOutRecBit,
                   f.emitOutRec ? 1 : 0);
    w = insertBits(w, kStallableBit, kStallableBit, f.stallable ? 1 : 0);
    return w;
}

OutputFields
unpackOutput(std::uint64_t word)
{
    OutputFields f;
    f.nextState = static_cast<std::uint8_t>(
        bits(word, kNextStateLo + 2, kNextStateLo));
    f.peOp = static_cast<OpCode>(bits(word, kPeOpLo + 2, kPeOpLo));
    f.op1Mode =
        static_cast<std::uint8_t>(bits(word, kOp1ModeLo + 3, kOp1ModeLo));
    f.op2Mode =
        static_cast<std::uint8_t>(bits(word, kOp2ModeLo + 3, kOp2ModeLo));
    f.resMode =
        static_cast<std::uint8_t>(bits(word, kResModeLo + 3, kResModeLo));
    f.routeMode = static_cast<std::uint8_t>(
        bits(word, kRouteModeLo + 1, kRouteModeLo));
    f.msgMode =
        static_cast<std::uint8_t>(bits(word, kMsgModeLo + 1, kMsgModeLo));
    f.bufferOp = static_cast<BufferOp>(
        bits(word, kBufferOpLo + 1, kBufferOpLo));
    f.metaUpd0 = static_cast<std::uint8_t>(
        bits(word, kMetaUpd0Lo + 1, kMetaUpd0Lo));
    f.metaUpd1 = static_cast<std::uint8_t>(
        bits(word, kMetaUpd1Lo + 1, kMetaUpd1Lo));
    f.consumeInput = bits(word, kConsumeInputBit, kConsumeInputBit) != 0;
    f.consumeMsg = bits(word, kConsumeMsgBit, kConsumeMsgBit) != 0;
    f.westFeed =
        static_cast<WestFeed>(bits(word, kWestFeedLo + 1, kWestFeedLo));
    f.emitOutRec = bits(word, kEmitOutRecBit, kEmitOutRecBit) != 0;
    f.stallable = bits(word, kStallableBit, kStallableBit) != 0;
    return f;
}

std::uint16_t
lutIndex(std::uint8_t state, std::uint8_t msg_id, std::uint8_t cond_bits)
{
    panicIf(state >= kNumFsmStates, "lutIndex: state ", state,
            " out of range");
    panicIf(msg_id >= 8, "lutIndex: msgId ", msg_id, " out of range");
    panicIf(cond_bits >= (1 << kNumCondBits), "lutIndex: cond bits ",
            cond_bits, " out of range");
    return static_cast<std::uint16_t>((state << 7) | (msg_id << 4) |
                                      cond_bits);
}

FsmLut::FsmLut()
{
    words_.fill(0);
    decoded_.fill(OutputFields{});
}

void
FsmLut::set(std::uint16_t index, const OutputFields &f)
{
    panicIf(index >= kLutEntries, "FsmLut: index ", index, " out of ",
            kLutEntries);
    words_[index] = packOutput(f);
    decoded_[index] = f;
}

std::vector<std::uint8_t>
FsmLut::toBitstream() const
{
    std::vector<std::uint8_t> bits;
    bits.reserve(bitstreamBytes());
    for (auto w : words_)
        for (int b = 0; b < kLutWordBits / 8; ++b)
            bits.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
    return bits;
}

void
FsmLut::loadBitstream(const std::vector<std::uint8_t> &bits)
{
    panicIf(bits.size() != bitstreamBytes(),
            "FsmLut: bitstream is ", bits.size(), " bytes, expected ",
            bitstreamBytes());
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t w = 0;
        for (int b = 0; b < kLutWordBits / 8; ++b)
            w |= static_cast<std::uint64_t>(
                     bits[i * (kLutWordBits / 8) + b])
                 << (8 * b);
        words_[i] = w;
        decoded_[i] = unpackOutput(w);
    }
}

} // namespace canon
