/**
 * @file
 * The Canon processing element (Figure 4): a 3-stage pipeline around a
 * 4-wide INT8 vector lane.
 *
 *   LOAD    read operands from scratchpad / data memory / NoC ports /
 *           SIMD registers into the lane input registers.
 *   EXECUTE the vector lane computes (4 INT8 MACs or adds).
 *   COMMIT  write the result to scratchpad / registers / data memory,
 *           or send it to a neighbour; pass-through routes switched by
 *           ROUTER_CONF emit here too.
 *
 * PEs carry no control state beyond the pipeline registers: they
 * execute whatever the instruction NoC delivers. Local memories and
 * registers are PE-private, so stages apply in COMMIT->EXECUTE->LOAD
 * order within a cycle plus a single EXECUTE->LOAD forwarding path,
 * which yields exact sequential semantics for back-to-back
 * accumulations into the same location (the dense-GEMM inner loop).
 *
 * Structural rules from Section 3.1 are enforced by panics: one
 * transfer per NoC direction per cycle, one read and one write port on
 * each local memory per cycle.
 */

#ifndef CANON_PE_PE_HH
#define CANON_PE_PE_HH

#include <array>
#include <string>

#include "common/stats.hh"
#include "mem/vecram.hh"
#include "noc/inst_pipeline.hh"
#include "noc/router.hh"
#include "sim/clocked.hh"

namespace canon
{

/** Execution modes (Appendix D spatial support). */
enum class PeMode : std::uint8_t
{
    Streaming, //!< normal time-lapsed operation: execute the tap
    Config,    //!< spatial configuration phase: taps pass through inert
    Spatial,   //!< frozen pipeline: re-execute the latched tap forever
};

struct PeGeometry
{
    int row = 0;
    int col = 0;
};

class Pe final : public Clocked
{
  public:
    Pe(const PeGeometry &geo, int dmem_slots, int spad_slots,
       StatGroup &stats);

    void bindPipeline(InstPipeline *pipe) { pipe_ = pipe; }

    Router &router() { return router_; }
    VecRam &dmem() { return dmem_; }
    VecRam &spad() { return spad_; }

    void setMode(PeMode m) { mode_ = m; }
    PeMode mode() const { return mode_; }

    const Vec4 &reg(int r) const { return regs_[r]; }
    void pokeReg(int r, const Vec4 &v) { regs_[r] = v; }

    /** True iff no instruction is in flight in the pipeline. */
    bool idle() const;

    /** Counter read for the obs cycle accountant (a cycle with no
     *  busyCycles delta is an idle cycle). */
    std::uint64_t busyCyclesValue() const
    {
        return busyCycles_.value();
    }

    int row() const { return geo_.row; }
    int col() const { return geo_.col; }

    void tickCompute() override;
    void tickCommit() override;

  private:
    /**
     * Pipeline register between LOAD/EXECUTE and EXECUTE/COMMIT.
     * Kept trivially copyable (plain Vec4 + valid flags rather than
     * optionals) so the per-cycle register updates are flat copies.
     */
    struct StageReg
    {
        Instruction inst = nopInst();
        Vec4 a;        //!< op1 value
        Vec4 b;        //!< op2 value
        Vec4 resOld;   //!< prior contents of res (MAC accumulate)
        Vec4 west;     //!< west-in value for VvMacW
        Vec4 resultForwarded; //!< EXECUTE output (forwarding network)
        Vec4 routeN2S;
        Vec4 routeW2E;
        bool routeN2SValid = false;
        bool routeW2EValid = false;
        bool valid = false;
    };

    void commitStage(const StageReg &ex);
    StageReg executeStage(const StageReg &ld);
    StageReg loadStage(const Instruction &inst, const StageReg &fwd);

    /**
     * Spatial-mode firing rule: a held instruction executes only when
     * every port it reads has data and every port it writes has space
     * (Appendix D; the streaming mode instead relies on orchestrator
     * determinism and panics on a violated schedule).
     */
    bool spatialReady(const Instruction &inst) const;

    Vec4 readOperand(Addr a, const StageReg &fwd);
    Vec4 readPort(Dir d);
    void writeDest(Addr a, const Vec4 &v);

    PeGeometry geo_;
    std::string name_;
    VecRam dmem_;
    VecRam spad_;
    Router router_;
    std::array<Vec4, addrspace::kRegSize> regs_{};
    InstPipeline *pipe_ = nullptr;
    PeMode mode_ = PeMode::Streaming;

    StageReg ldReg_;  //!< instruction between LOAD and EXECUTE
    StageReg exReg_;  //!< instruction between EXECUTE and COMMIT
    StageReg ldNext_;
    StageReg exNext_;

    // Per-cycle port-read cache: one physical pop feeds every consumer
    // of the same input port in one instruction. Valid bits live in a
    // bitmask so clearing the cache is a single store.
    std::array<Vec4, kNumDirs> portCache_{};
    std::uint8_t portCacheValid_ = 0;

    // Per-cycle local-memory port accounting.
    int dmemReadsThisCycle_ = 0;
    int dmemWritesThisCycle_ = 0;
    int spadReadsThisCycle_ = 0;
    int spadWritesThisCycle_ = 0;

    Counter &busyCycles_;
    Counter &macOps_;
    Counter &aluOps_;
    Counter &regReads_;
    Counter &regWrites_;
};

} // namespace canon

#endif // CANON_PE_PE_HH
