#include "pe/pe.hh"

namespace canon
{

namespace as = addrspace;

Pe::Pe(const PeGeometry &geo, int dmem_slots, int spad_slots,
       StatGroup &stats)
    : geo_(geo),
      name_("pe" + std::to_string(geo.row) + "_" +
            std::to_string(geo.col)),
      dmem_("dmem", dmem_slots, 1, stats),
      spad_("spad", spad_slots, 4, stats),
      router_(stats),
      busyCycles_(stats.counter("busyCycles")),
      macOps_(stats.counter("macOps")),
      aluOps_(stats.counter("aluOps")),
      regReads_(stats.counter("regReads")),
      regWrites_(stats.counter("regWrites"))
{
}

bool
Pe::idle() const
{
    return !ldReg_.valid && !exReg_.valid;
}

Vec4
Pe::readPort(Dir d)
{
    const auto bit =
        static_cast<std::uint8_t>(1u << static_cast<int>(d));
    auto &cached = portCache_[static_cast<int>(d)];
    if (!(portCacheValid_ & bit)) {
        cached = router_.readIn(d);
        portCacheValid_ |= bit;
    }
    return cached;
}

Vec4
Pe::readOperand(Addr a, const StageReg &fwd)
{
    // Forwarding: the instruction one stage ahead commits next cycle;
    // a read of a local location it writes must observe its value via
    // the forwarding network instead of the array (not counted as a
    // memory access). VFlush additionally zeroes its op1 slot -- the
    // slot the circular psum buffer hands to the very next row -- so
    // that recycle-write forwards as well.
    const bool local_read = as::region(a) != AddrRegion::PortIn &&
                            as::region(a) != AddrRegion::PortOut;
    if (fwd.valid && local_read) {
        if (fwd.inst.op == OpCode::VFlush && fwd.inst.op1 == a)
            return Vec4{};
        if (fwd.inst.res == a)
            return fwd.resultForwarded;
    }

    switch (as::region(a)) {
      case AddrRegion::Dmem:
        ++dmemReadsThisCycle_;
        panicIf(dmemReadsThisCycle_ > 1, name_,
                ": two data-memory reads in one instruction");
        return dmem_.read(as::offset(a));
      case AddrRegion::Spad:
        ++spadReadsThisCycle_;
        panicIf(spadReadsThisCycle_ > 1, name_,
                ": two scratchpad reads in one instruction");
        return spad_.read(as::offset(a));
      case AddrRegion::Reg:
        ++regReads_;
        return regs_[as::offset(a)];
      case AddrRegion::PortIn:
        return readPort(static_cast<Dir>(as::offset(a)));
      case AddrRegion::Zero:
        return Vec4{};
      case AddrRegion::Null:
      case AddrRegion::PortOut:
      case AddrRegion::Invalid:
        break;
    }
    panic(name_, ": illegal operand address ", as::toString(a));
}

void
Pe::writeDest(Addr a, const Vec4 &v)
{
    switch (as::region(a)) {
      case AddrRegion::Dmem:
        ++dmemWritesThisCycle_;
        panicIf(dmemWritesThisCycle_ > 1, name_,
                ": two data-memory writes in one instruction window");
        dmem_.write(as::offset(a), v);
        return;
      case AddrRegion::Spad:
        ++spadWritesThisCycle_;
        panicIf(spadWritesThisCycle_ > 1, name_,
                ": two scratchpad writes in one instruction window");
        spad_.write(as::offset(a), v);
        return;
      case AddrRegion::Reg:
        ++regWrites_;
        regs_[as::offset(a)] = v;
        return;
      case AddrRegion::PortOut:
        router_.writeOut(static_cast<Dir>(as::offset(a)), v);
        return;
      case AddrRegion::Null:
        return; // discard
      case AddrRegion::PortIn:
      case AddrRegion::Zero:
      case AddrRegion::Invalid:
        break;
    }
    panic(name_, ": illegal destination address ", as::toString(a));
}

void
Pe::commitStage(const StageReg &ex)
{
    if (!ex.valid)
        return;
    const Instruction &inst = ex.inst;

    // Write coalescing: if the instruction one stage behind overwrites
    // the same local location (the common back-to-back accumulation
    // run, or a flush recycling the slot), this write is dead -- the
    // value only ever travels the forwarding network. Real pipelines
    // keep the run in the accumulate register and commit once, which
    // is what keeps the scratchpad's power share modest at low
    // sparsity (Figure 11).
    auto next_overwrites = [&](Addr a) {
        if (!ldReg_.valid)
            return false;
        if (as::region(a) == AddrRegion::PortOut ||
            as::region(a) == AddrRegion::Null)
            return false;
        if (ldReg_.inst.res == a && ldReg_.inst.op != OpCode::Nop &&
            ldReg_.inst.op != OpCode::Hold)
            return true;
        return ldReg_.inst.op == OpCode::VFlush && ldReg_.inst.op1 == a;
    };

    switch (inst.op) {
      case OpCode::Nop:
      case OpCode::Hold:
        break;
      case OpCode::SvMac:
      case OpCode::VvMac:
      case OpCode::VvMacW:
      case OpCode::VAdd:
      case OpCode::VMov:
        if (!next_overwrites(inst.res))
            writeDest(inst.res, ex.resultForwarded);
        break;
      case OpCode::VFlush:
        writeDest(inst.res, ex.resultForwarded);
        // Recycle the flushed location: clear it to zero. Uses the
        // location's write port (LOAD read it two cycles ago).
        if (!next_overwrites(inst.op1))
            writeDest(inst.op1, Vec4{});
        break;
      case OpCode::NumOpCodes:
        panic(name_, ": corrupt opcode at COMMIT");
    }

    // Pass-through circuit routes emit at COMMIT so that a neighbour's
    // staggered LOAD sees the data exactly when its copy of the same
    // instruction arrives.
    if (ex.routeN2SValid)
        router_.writeOut(Dir::South, ex.routeN2S);
    if (ex.routeW2EValid)
        router_.writeOut(Dir::East, ex.routeW2E);
}

Pe::StageReg
Pe::executeStage(const StageReg &ld)
{
    StageReg ex = ld;
    if (!ld.valid)
        return ex;

    Vec4 r;
    switch (ld.inst.op) {
      case OpCode::Nop:
      case OpCode::Hold:
        break;
      case OpCode::SvMac:
        r = ld.resOld;
        r.mac(ld.a[0], ld.b);
        macOps_ += kSimdWidth;
        break;
      case OpCode::VvMac:
        r = ld.resOld;
        r.mac(ld.a, ld.b);
        macOps_ += kSimdWidth;
        break;
      case OpCode::VvMacW:
        r = ld.west;
        r.mac(ld.a, ld.b);
        macOps_ += kSimdWidth;
        break;
      case OpCode::VAdd:
        r = ld.a;
        r += ld.b;
        aluOps_ += kSimdWidth;
        break;
      case OpCode::VMov:
      case OpCode::VFlush:
        r = ld.a;
        aluOps_ += kSimdWidth;
        break;
      case OpCode::NumOpCodes:
        panic(name_, ": corrupt opcode at EXECUTE");
    }
    ex.resultForwarded = r;
    return ex;
}

Pe::StageReg
Pe::loadStage(const Instruction &inst, const StageReg &fwd)
{
    StageReg ld;
    ld.inst = inst;
    ld.valid = !inst.isNop();
    if (!ld.valid)
        return ld;

    switch (inst.op) {
      case OpCode::Nop:
      case OpCode::Hold:
        break;
      case OpCode::SvMac:
      case OpCode::VvMac:
        ld.a = readOperand(inst.op1, fwd);
        ld.b = readOperand(inst.op2, fwd);
        ld.resOld = readOperand(inst.res, fwd);
        break;
      case OpCode::VvMacW:
        ld.a = readOperand(inst.op1, fwd);
        ld.b = readOperand(inst.op2, fwd);
        ld.west = readPort(Dir::West);
        break;
      case OpCode::VAdd:
        ld.a = readOperand(inst.op1, fwd);
        ld.b = readOperand(inst.op2, fwd);
        break;
      case OpCode::VMov:
      case OpCode::VFlush:
        ld.a = readOperand(inst.op1, fwd);
        break;
      case OpCode::NumOpCodes:
        panic(name_, ": corrupt opcode at LOAD");
    }

    // Pass-through routes latch their value at LOAD.
    if (inst.route & kRouteN2S) {
        ld.routeN2S = readPort(Dir::North);
        ld.routeN2SValid = true;
    }
    if (inst.route & kRouteW2E) {
        ld.routeW2E = readPort(Dir::West);
        ld.routeW2EValid = true;
    }

    return ld;
}

bool
Pe::spatialReady(const Instruction &inst) const
{
    auto in_ready = [&](Addr a) {
        return as::region(a) != AddrRegion::PortIn ||
               router_.hasInput(static_cast<Dir>(as::offset(a)));
    };
    auto out_ready = [&](Addr a) {
        return as::region(a) != AddrRegion::PortOut ||
               router_.canWriteOut(static_cast<Dir>(as::offset(a)));
    };
    if (!in_ready(inst.op1) || !in_ready(inst.op2) ||
        !out_ready(inst.res))
        return false;
    if (inst.op == OpCode::VvMacW && !router_.hasInput(Dir::West))
        return false;
    if ((inst.route & kRouteN2S) &&
        (!router_.hasInput(Dir::North) ||
         !router_.canWriteOut(Dir::South)))
        return false;
    if ((inst.route & kRouteW2E) &&
        (!router_.hasInput(Dir::West) || !router_.canWriteOut(Dir::East)))
        return false;
    return true;
}

void
Pe::tickCompute()
{
    // Config mode: taps shift past without executing.
    Instruction inst = nopInst();
    if (pipe_ && mode_ != PeMode::Config)
        inst = pipe_->tap(geo_.col);

    // Idle fast path: an empty pipeline looking at a NOP tap does no
    // work this cycle. Spatial mode is excluded -- its firing rule
    // reads channel occupancy that other components change within the
    // same compute phase, so it must be evaluated in stage order below.
    if (!ldReg_.valid && !exReg_.valid && mode_ != PeMode::Spatial &&
        inst.isNop()) {
        exNext_.valid = false;
        ldNext_.valid = false;
        return;
    }

    router_.beginCycle();
    portCacheValid_ = 0;
    dmemReadsThisCycle_ = dmemWritesThisCycle_ = 0;
    spadReadsThisCycle_ = spadWritesThisCycle_ = 0;

    // Stages run newest-result-visible-first: COMMIT applies the
    // in-flight write, EXECUTE produces the forwardable result, LOAD
    // then reads with both visible -- exact sequential semantics.
    commitStage(exReg_);
    exNext_ = executeStage(ldReg_);

    // The spatial firing rule reads port occupancy *after* this PE's
    // own COMMIT staged its pushes, exactly as the held hardware
    // pipeline would observe it.
    if (mode_ == PeMode::Spatial && !spatialReady(inst))
        inst = nopInst();
    ldNext_ = loadStage(inst, exNext_);

    if (ldNext_.valid || exNext_.valid || exReg_.valid)
        ++busyCycles_;
}

void
Pe::tickCommit()
{
    exReg_ = exNext_;
    ldReg_ = ldNext_;
}

} // namespace canon
