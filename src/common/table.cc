#include "common/table.hh"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/logging.hh"

namespace canon
{

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != header_.size(),
            "Table '", title_, "': row width ", cells.size(),
            " != header width ", header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::fmtInt(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;

    os << "\n=== " << title_ << " ===\n";
    auto rule = std::string(total, '-');
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };
    print_row(header_);
    os << rule << "\n";
    for (const auto &row : rows_)
        print_row(row);
    os << std::flush;
}

void
Table::print() const
{
    print(std::cout);
}

void
Table::writeCsv(std::ostream &os, bool with_header) const
{
    // RFC-4180 quoting: thousands-separated integers (fmtInt) would
    // otherwise split into multiple CSV fields.
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto write_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << escape(row[c]);
        os << "\n";
    };
    if (with_header)
        write_row(header_);
    for (const auto &row : rows_)
        write_row(row);
    os.flush();
}

bool
Table::writeCsv(const std::string &path, bool with_header) const
{
    // No warn() here: every caller checks the return value and
    // reports through its own injected error stream, so logging to
    // the global stream as well would double-report (and bypass the
    // stream injection embedders rely on).
    std::ofstream f(path);
    if (!f)
        return false;
    writeCsv(f, with_header);
    return f.good();
}

} // namespace canon
