/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Components own a StatGroup; they register named Counter / Scalar /
 * Distribution statistics against it. Groups nest, so a fabric exposes
 * `pe03.dmemReads` style paths. The power model consumes the flat view.
 */

#ifndef CANON_COMMON_STATS_HH
#define CANON_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace canon
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running distribution: min/max/mean/count. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        min_ = max_ = sum_ = 0.0;
        count_ = 0;
    }

  private:
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A named collection of statistics. Groups form a tree; leaf values are
 * registered by the owning component and read back via flat dotted paths.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /**
     * Register (or fetch) a counter under this group. A name that
     * contains '.' panics: it would forge a nested flat path and
     * silently shadow (or be shadowed by) a real child's entry in the
     * flat view. So does a name already taken by a child group.
     */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a distribution; same name rules. */
    Distribution &distribution(const std::string &name);

    /**
     * Create a nested child group. Duplicate registration panics:
     * two components merging into one group would silently share (and
     * double-count) any same-named counters in the flat view. A name
     * containing '.' or already taken by a counter panics too.
     */
    StatGroup &child(const std::string &name);

    /** Fetch an existing child group; a missing name panics. */
    StatGroup &childAt(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Sum a counter with @p leaf name across this subtree. */
    std::uint64_t sumCounter(const std::string &leaf) const;

    /** Flatten the subtree into `path -> value` entries. */
    std::map<std::string, std::uint64_t> flatten() const;

    /**
     * Visit every counter in the subtree as (flat dotted path,
     * counter), counters of a group before its children, names in
     * lexicographic order -- the deterministic enumeration the
     * cycle sampler resolves its probes from. The visited references
     * stay valid for the group's lifetime (counters are node-based).
     */
    void visitCounters(
        const std::function<void(const std::string &path,
                                 const Counter &ctr)> &fn) const;

    /** Zero every statistic in the subtree. */
    void resetAll();

  private:
    void flattenInto(const std::string &prefix,
                     std::map<std::string, std::uint64_t> &out) const;

    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, std::unique_ptr<StatGroup>> children_;
};

} // namespace canon

#endif // CANON_COMMON_STATS_HH
