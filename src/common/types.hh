/**
 * @file
 * Fundamental scalar and vector types shared across the simulator.
 *
 * Canon computes on INT8 operands with INT32 accumulation (Table 1 of the
 * paper). A PE's vector lane is 4 wide; Vec4 is the lane-register type.
 */

#ifndef CANON_COMMON_TYPES_HH
#define CANON_COMMON_TYPES_HH

#include <array>
#include <cstdint>
#include <ostream>

namespace canon
{

/** Simulation cycle count at the fabric clock (1 GHz in Table 1). */
using Cycle = std::uint64_t;

/** Unified PE address space word (Section 3.1): 16 bits. */
using Addr = std::uint16_t;

/** INT8 data element (matrix values). */
using Elem = std::int8_t;

/** INT32 accumulator word. */
using Word = std::int32_t;

/** SIMD width of a PE vector lane. */
constexpr int kSimdWidth = 4;

/**
 * A 4-wide INT32 vector: the value type that flows through lane
 * registers, scratchpad entries and the data NoC.
 */
struct Vec4
{
    std::array<Word, kSimdWidth> lane{0, 0, 0, 0};

    static Vec4
    splat(Word v)
    {
        return Vec4{{v, v, v, v}};
    }

    Word &operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
    Word operator[](int i) const
    {
        return lane[static_cast<std::size_t>(i)];
    }

    Vec4 &
    operator+=(const Vec4 &o)
    {
        for (int i = 0; i < kSimdWidth; ++i)
            lane[i] += o.lane[i];
        return *this;
    }

    friend Vec4
    operator+(Vec4 a, const Vec4 &b)
    {
        a += b;
        return a;
    }

    friend bool
    operator==(const Vec4 &a, const Vec4 &b)
    {
        return a.lane == b.lane;
    }

    /** Lane-wise scalar multiply-accumulate: this += s * v. */
    void
    mac(Word s, const Vec4 &v)
    {
        for (int i = 0; i < kSimdWidth; ++i)
            lane[i] += s * v.lane[i];
    }

    /** Lane-wise vector multiply-accumulate: this += a * b. */
    void
    mac(const Vec4 &a, const Vec4 &b)
    {
        for (int i = 0; i < kSimdWidth; ++i)
            lane[i] += a.lane[i] * b.lane[i];
    }

    /** Horizontal sum of all lanes. */
    Word
    hsum() const
    {
        Word s = 0;
        for (int i = 0; i < kSimdWidth; ++i)
            s += lane[i];
        return s;
    }

    bool
    isZero() const
    {
        return lane[0] == 0 && lane[1] == 0 && lane[2] == 0 && lane[3] == 0;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Vec4 &v)
{
    os << "[" << v[0] << "," << v[1] << "," << v[2] << "," << v[3] << "]";
    return os;
}

/** Cardinal directions of the 2D mesh. */
enum class Dir : std::uint8_t { North = 0, South = 1, East = 2, West = 3 };

constexpr int kNumDirs = 4;

inline Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::North: return Dir::South;
      case Dir::South: return Dir::North;
      case Dir::East: return Dir::West;
      case Dir::West: return Dir::East;
    }
    return Dir::North;
}

inline const char *
dirName(Dir d)
{
    switch (d) {
      case Dir::North: return "N";
      case Dir::South: return "S";
      case Dir::East: return "E";
      case Dir::West: return "W";
    }
    return "?";
}

} // namespace canon

#endif // CANON_COMMON_TYPES_HH
