#include "common/logging.hh"

#include <iostream>

namespace canon
{
namespace log_detail
{

bool &
quietFlag()
{
    static bool quiet = false;
    return quiet;
}

void
emitWarn(const std::string &msg)
{
    if (!quietFlag())
        std::cerr << "warn: " << msg << "\n";
}

void
emitInform(const std::string &msg)
{
    if (!quietFlag())
        std::cout << "info: " << msg << "\n";
}

} // namespace log_detail
} // namespace canon
