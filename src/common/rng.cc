#include "common/rng.hh"

#include <algorithm>

#include "common/logging.hh"

namespace canon
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64: used only to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBounded: bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "Rng::nextRange: empty range [", lo, ",", hi, "]");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<std::uint32_t>
Rng::sample(std::uint32_t n, std::uint32_t k)
{
    panicIf(k > n, "Rng::sample: k=", k, " exceeds n=", n);
    // Floyd's algorithm; sorted output for deterministic layouts.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    for (std::uint32_t j = n - k; j < n; ++j) {
        auto t = static_cast<std::uint32_t>(nextBounded(j + 1));
        if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
            chosen.push_back(t);
        else
            chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace canon
