/**
 * @file
 * Bit-slice helpers used by the instruction encoder and the orchestrator
 * LUT bitstream packer. All ranges are [hi:lo] inclusive, LSB-0, matching
 * conventional RTL notation.
 */

#ifndef CANON_COMMON_BITFIELD_HH
#define CANON_COMMON_BITFIELD_HH

#include <cstdint>

#include "common/logging.hh"

namespace canon
{

/** A mask with bits [hi:lo] set. */
constexpr std::uint64_t
mask(int hi, int lo)
{
    int width = hi - lo + 1;
    std::uint64_t m =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return m << lo;
}

/** Extract bits [hi:lo] of @p val, right-aligned. */
constexpr std::uint64_t
bits(std::uint64_t val, int hi, int lo)
{
    return (val & mask(hi, lo)) >> lo;
}

/** Return @p val with bits [hi:lo] replaced by @p field. */
inline std::uint64_t
insertBits(std::uint64_t val, int hi, int lo, std::uint64_t field)
{
    const std::uint64_t m = mask(hi, lo);
    panicIf((field << lo) & ~m, "insertBits: field 0x", std::hex, field,
            " does not fit in [", std::dec, hi, ":", lo, "]");
    return (val & ~m) | ((field << lo) & m);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Number of bits needed to represent values in [0, n). */
constexpr int
bitsFor(std::uint64_t n)
{
    int b = 0;
    std::uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++b;
    }
    return b;
}

} // namespace canon

#endif // CANON_COMMON_BITFIELD_HH
