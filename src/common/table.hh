/**
 * @file
 * Paper-style table and series printing for the benchmark harness.
 *
 * Every bench binary regenerates one table or figure of the paper; this
 * helper keeps their output uniform: an aligned text table on stdout plus
 * an optional CSV dump for plotting.
 */

#ifndef CANON_COMMON_TABLE_HH
#define CANON_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace canon
{

class Table
{
  public:
    explicit Table(std::string title);

    /** Set the column headers. Must be called before addRow(). */
    void header(std::vector<std::string> cols);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p prec digits after the point. */
    static std::string fmt(double v, int prec = 2);

    /** Format an integer with thousands separators. */
    static std::string fmtInt(std::uint64_t v);

    /** Render the aligned table to @p os. */
    void print(std::ostream &os) const;

    /** Render the aligned table to stdout. */
    void print() const;

    /**
     * Write the table as CSV rows to @p os. Sharded producers pass
     * @p with_header = false for every shard but the first, so that
     * concatenating the shard files in order reproduces the full CSV.
     */
    void writeCsv(std::ostream &os, bool with_header = true) const;

    /** Write the table as CSV to @p path; false if it can't open. */
    bool writeCsv(const std::string &path,
                  bool with_header = true) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace canon

#endif // CANON_COMMON_TABLE_HH
