/**
 * @file
 * Error and status reporting helpers, following the gem5 discipline:
 *
 *  - panic():  an internal invariant was violated -- a simulator bug.
 *              Aborts (throws PanicError so tests can assert on it).
 *  - fatal():  the user asked for something the simulator cannot do
 *              (bad configuration, invalid arguments). Throws FatalError.
 *  - warn():   something is modelled approximately; execution continues.
 *  - inform(): plain status output.
 *
 * Both panic() and fatal() throw rather than calling std::abort()/exit()
 * so that unit tests can exercise error paths; uncaught, they terminate
 * the process with a readable message.
 */

#ifndef CANON_COMMON_LOGGING_HH
#define CANON_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace canon
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace log_detail
{

/** Fold any set of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);
bool &quietFlag();

} // namespace log_detail

/** Suppress warn()/inform() output (used by tests and benches). */
inline void setQuiet(bool quiet) { log_detail::quietFlag() = quiet; }

/** Report an internal simulator bug and unwind. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError("panic: " +
                     log_detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error and unwind. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError("fatal: " +
                     log_detail::concat(std::forward<Args>(args)...));
}

/** panic() if @p cond does not hold. */
template <typename... Args>
void
panicIf(bool cond, Args &&...args)
{
    if (cond)
        panic(std::forward<Args>(args)...);
}

/** fatal() if @p cond does not hold. */
template <typename... Args>
void
fatalIf(bool cond, Args &&...args)
{
    if (cond)
        fatal(std::forward<Args>(args)...);
}

/** Emit a non-fatal modelling warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emitWarn(log_detail::concat(std::forward<Args>(args)...));
}

/** Emit a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::emitInform(log_detail::concat(std::forward<Args>(args)...));
}

} // namespace canon

#endif // CANON_COMMON_LOGGING_HH
