#include "common/stats.hh"

#include <memory>

namespace canon
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return dists_[name];
}

StatGroup &
StatGroup::child(const std::string &name)
{
    auto it = children_.find(name);
    if (it == children_.end()) {
        it = children_
                 .emplace(name, std::make_unique<StatGroup>(name))
                 .first;
    }
    return *it->second;
}

std::uint64_t
StatGroup::sumCounter(const std::string &leaf) const
{
    std::uint64_t total = 0;
    auto it = counters_.find(leaf);
    if (it != counters_.end())
        total += it->second.value();
    for (const auto &[_, child] : children_)
        total += child->sumCounter(leaf);
    return total;
}

std::map<std::string, std::uint64_t>
StatGroup::flatten() const
{
    std::map<std::string, std::uint64_t> out;
    flattenInto("", out);
    return out;
}

void
StatGroup::flattenInto(const std::string &prefix,
                       std::map<std::string, std::uint64_t> &out) const
{
    for (const auto &[name, ctr] : counters_)
        out[prefix + name] = ctr.value();
    for (const auto &[name, child] : children_)
        child->flattenInto(prefix + name + ".", out);
}

void
StatGroup::resetAll()
{
    for (auto &[_, ctr] : counters_)
        ctr.reset();
    for (auto &[_, dist] : dists_)
        dist.reset();
    for (auto &[_, child] : children_)
        child->resetAll();
}

} // namespace canon
