#include "common/stats.hh"

#include <memory>

namespace canon
{

namespace
{

/**
 * Shared registration guard: '.' is the flat-path separator, so a
 * leaf or child named "a.b" would forge a nested path and collide
 * with a real child "a"'s subtree in the flat map.
 */
void
checkStatName(const StatGroup &group, const std::string &name,
              const char *kind)
{
    panicIf(name.empty(), "StatGroup '", group.name(), "': empty ",
            kind, " name");
    panicIf(name.find('.') != std::string::npos, "StatGroup '",
            group.name(), "': ", kind, " name '", name,
            "' contains '.', which would forge a nested flat path");
}

} // namespace

Counter &
StatGroup::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    checkStatName(*this, name, "counter");
    panicIf(children_.count(name) != 0, "StatGroup '", name_,
            "': counter '", name,
            "' collides with a child group of the same name");
    return counters_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    auto it = dists_.find(name);
    if (it != dists_.end())
        return it->second;
    checkStatName(*this, name, "distribution");
    return dists_[name];
}

StatGroup &
StatGroup::child(const std::string &name)
{
    checkStatName(*this, name, "child");
    panicIf(children_.count(name) != 0, "StatGroup '", name_,
            "': duplicate child '", name,
            "' (two components would silently share one flat"
            " subtree)");
    panicIf(counters_.count(name) != 0, "StatGroup '", name_,
            "': child '", name,
            "' collides with a counter of the same name");
    auto it = children_
                  .emplace(name, std::make_unique<StatGroup>(name))
                  .first;
    return *it->second;
}

StatGroup &
StatGroup::childAt(const std::string &name) const
{
    auto it = children_.find(name);
    panicIf(it == children_.end(), "StatGroup '", name_,
            "': no child '", name, "'");
    return *it->second;
}

std::uint64_t
StatGroup::sumCounter(const std::string &leaf) const
{
    std::uint64_t total = 0;
    auto it = counters_.find(leaf);
    if (it != counters_.end())
        total += it->second.value();
    for (const auto &[_, child] : children_)
        total += child->sumCounter(leaf);
    return total;
}

std::map<std::string, std::uint64_t>
StatGroup::flatten() const
{
    std::map<std::string, std::uint64_t> out;
    flattenInto("", out);
    return out;
}

void
StatGroup::flattenInto(const std::string &prefix,
                       std::map<std::string, std::uint64_t> &out) const
{
    for (const auto &[name, ctr] : counters_)
        out[prefix + name] = ctr.value();
    for (const auto &[name, child] : children_)
        child->flattenInto(prefix + name + ".", out);
}

void
StatGroup::visitCounters(
    const std::function<void(const std::string &path,
                             const Counter &ctr)> &fn) const
{
    // Mirrors flattenInto: counters first, then children, both in
    // the maps' lexicographic name order, so the enumeration is
    // deterministic and independent of registration order.
    for (const auto &[name, ctr] : counters_)
        fn(name, ctr);
    for (const auto &[name, child] : children_)
        child->visitCounters([&](const std::string &path,
                                 const Counter &ctr) {
            fn(name + "." + path, ctr);
        });
}

void
StatGroup::resetAll()
{
    for (auto &[_, ctr] : counters_)
        ctr.reset();
    for (auto &[_, dist] : dists_)
        dist.reset();
    for (auto &[_, child] : children_)
        child->resetAll();
}

} // namespace canon
