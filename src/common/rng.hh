/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs in this repository (sparse patterns, matrix
 * values, workload shuffles) flow through Rng so that every experiment
 * is reproducible from a seed, independent of the platform's std::
 * distribution implementations.
 *
 * The core generator is xoshiro256** (Blackman & Vigna), which is small,
 * fast and has no measurable bias for the uses here.
 */

#ifndef CANON_COMMON_RNG_HH
#define CANON_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace canon
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Choose @p k distinct values from [0, n), ascending. */
    std::vector<std::uint32_t> sample(std::uint32_t n, std::uint32_t k);

  private:
    std::uint64_t s_[4];
};

} // namespace canon

#endif // CANON_COMMON_RNG_HH
