#include "sim/simulator.hh"

#include "common/logging.hh"

namespace canon
{

Cycle
Simulator::run(const std::function<bool()> &done, Cycle max_cycles)
{
    const Cycle start = now_;
    while (!done()) {
        panicIf(now_ - start >= max_cycles,
                "Simulator watchdog: no completion after ",
                max_cycles, " cycles");
        step();
    }
    return now_ - start;
}

void
Simulator::runFor(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

} // namespace canon
