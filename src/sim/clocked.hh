/**
 * @file
 * Two-phase clocked-component interface.
 *
 * Every hardware model advances in two phases per cycle:
 *
 *  - tickCompute(): read any *visible* state (your own and other
 *    components'), decide what happens this cycle, and stage updates.
 *  - tickCommit(): publish staged updates so they become visible at the
 *    next cycle.
 *
 * The split makes evaluation order irrelevant within a cycle -- the
 * classic cycle-simulator hazard of one component observing another's
 * same-cycle write cannot occur. Latch and ChannelFifo (latch.hh) stage
 * state for exactly this protocol.
 */

#ifndef CANON_SIM_CLOCKED_HH
#define CANON_SIM_CLOCKED_HH

namespace canon
{

class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Phase 1: observe visible state, stage this cycle's effects. */
    virtual void tickCompute() = 0;

    /** Phase 2: publish staged effects. */
    virtual void tickCommit() = 0;
};

} // namespace canon

#endif // CANON_SIM_CLOCKED_HH
