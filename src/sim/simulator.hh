/**
 * @file
 * The top-level cycle loop.
 *
 * Simulator owns no hardware; models register themselves (or are
 * registered by their parent) and the loop advances all of them in the
 * two-phase protocol of clocked.hh. Registration comes in two forms:
 *
 *  - addTyped<T>() buckets the component into the contiguous typed
 *    partition of its concrete type (schedule.hh), advanced by direct
 *    non-virtual calls with dead phases elided -- the fast path every
 *    fabric-owned component uses.
 *  - add(Clocked*) keeps the classic virtual interface: the component
 *    joins the residual virtual partition and ticks in both phases.
 *    External embedder models and test doubles need no changes.
 *
 * Both forms advance in the same two phases; registration order and
 * partition shape never affect results. A watchdog bounds runaway
 * simulations: a mis-programmed FSM that never reaches the done
 * predicate fails loudly rather than hanging a test.
 */

#ifndef CANON_SIM_SIMULATOR_HH
#define CANON_SIM_SIMULATOR_HH

#include <functional>

#include "common/types.hh"
#include "sim/clocked.hh"
#include "sim/schedule.hh"

namespace canon
{

class Simulator
{
  public:
    Simulator() = default;

    /**
     * Register a component through the virtual Clocked interface; not
     * owned. Order does not affect results. This is the compatibility
     * path for components the schedule has no typed partition for.
     */
    void add(Clocked *c) { schedule_.addVirtual(c); }

    /**
     * Register a component into the typed partition of its concrete
     * type; not owned. T needs tickCompute()/tickCommit() members and
     * may declare dead phases (see schedule.hh); it does not need to
     * derive from Clocked.
     */
    template <typename T>
    void
    addTyped(T *c)
    {
        schedule_.add<T>(c);
    }

    Cycle now() const { return now_; }

    /**
     * Live schedule partitions (typed + residual). Tests use this to
     * pin the structural zero-cost-when-off contract: an unobserved
     * run must register exactly the partitions a pre-obs fabric had.
     */
    std::size_t partitionCount() const
    {
        return schedule_.partitionCount();
    }

    /** Advance exactly one cycle. */
    void
    step()
    {
        schedule_.tickCompute();
        schedule_.tickCommit();
        ++now_;
    }

    /**
     * Run until @p done returns true (checked before each cycle).
     * @return cycles elapsed in this call.
     * Panics after @p max_cycles as a watchdog.
     */
    Cycle run(const std::function<bool()> &done,
              Cycle max_cycles = 500'000'000);

    /** Run for a fixed number of cycles. */
    void runFor(Cycle cycles);

  private:
    TickSchedule schedule_;
    Cycle now_ = 0;
};

} // namespace canon

#endif // CANON_SIM_SIMULATOR_HH
