/**
 * @file
 * The top-level cycle loop.
 *
 * Simulator owns no hardware; models register themselves (or are
 * registered by their parent) and the loop advances all of them in the
 * two-phase protocol of clocked.hh. A watchdog bounds runaway
 * simulations: a mis-programmed FSM that never reaches the done
 * predicate fails loudly rather than hanging a test.
 */

#ifndef CANON_SIM_SIMULATOR_HH
#define CANON_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/clocked.hh"

namespace canon
{

class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; not owned. Order does not affect results. */
    void add(Clocked *c) { components_.push_back(c); }

    Cycle now() const { return now_; }

    /** Advance exactly one cycle. */
    void step();

    /**
     * Run until @p done returns true (checked before each cycle).
     * @return cycles elapsed in this call.
     * Panics after @p max_cycles as a watchdog.
     */
    Cycle run(const std::function<bool()> &done,
              Cycle max_cycles = 500'000'000);

    /** Run for a fixed number of cycles. */
    void runFor(Cycle cycles);

  private:
    std::vector<Clocked *> components_;
    Cycle now_ = 0;
};

} // namespace canon

#endif // CANON_SIM_SIMULATOR_HH
