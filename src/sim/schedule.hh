/**
 * @file
 * The partitioned tick schedule behind Simulator.
 *
 * The naive cycle loop pays two virtual calls per registered component
 * per cycle -- on a 32x32 fabric that is thousands of indirect
 * branches before any modelling work happens, and most of them land in
 * empty phase bodies (collectors never commit, channels never
 * compute). TickSchedule removes both costs structurally:
 *
 *  - **Typed partitions.** Components registered through add<T>() are
 *    bucketed by concrete type into contiguous arrays. A partition
 *    advances in a tight loop of direct calls on T -- for a `final`
 *    component class the compiler devirtualizes them -- so a phase
 *    pass is a handful of partition dispatches instead of one
 *    indirect call per component.
 *
 *  - **Dead-phase elision.** A component type whose compute or commit
 *    body is empty declares it with
 *    `static constexpr bool kHasTickCompute = false;` (resp.
 *    `kHasTickCommit`). Its partition is simply absent from that
 *    phase's pass list, so a dead phase costs zero per cycle.
 *
 *  - **Residual virtual partition.** Components registered through
 *    addVirtual() -- external embedder models, test doubles -- tick
 *    through the classic Clocked interface in both phases. Typed and
 *    virtual components advance in the same two-phase protocol;
 *    nothing observable depends on which path a component took.
 *
 * Partition order (and registration order within a partition) is
 * irrelevant for results: the two-phase protocol of clocked.hh makes
 * evaluation order within a phase unobservable, which the
 * registration-shuffle determinism tests pin down.
 */

#ifndef CANON_SIM_SCHEDULE_HH
#define CANON_SIM_SCHEDULE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "sim/clocked.hh"
#include "sim/latch.hh"

namespace canon
{

namespace detail
{

/** Process-wide dense id per concrete component type. */
inline std::size_t
nextTickTypeId()
{
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
inline std::size_t
tickTypeId()
{
    static const std::size_t id = nextTickTypeId();
    return id;
}

} // namespace detail

/** Phase participation of T; defaults to both phases live. */
template <typename T>
constexpr bool
tickHasCompute()
{
    if constexpr (requires { T::kHasTickCompute; })
        return T::kHasTickCompute;
    else
        return true;
}

template <typename T>
constexpr bool
tickHasCommit()
{
    if constexpr (requires { T::kHasTickCommit; })
        return T::kHasTickCommit;
    else
        return true;
}

/**
 * Contiguous commit list for staged FIFOs: the batched form of the
 * commit phase for data channels. Where the naive loop dedicated one
 * virtual component (or one virtual call per channel) to publishing
 * staged pushes/pops, a commit list is registered as a single typed
 * partition member and drains every attached channel in one
 * non-virtual pass. It participates only in the commit phase.
 */
template <typename T>
class FifoCommitList final
{
  public:
    static constexpr bool kHasTickCompute = false;

    void add(ChannelFifo<T> *ch) { chans_.push_back(ch); }
    std::size_t size() const { return chans_.size(); }

    void tickCompute() {}

    void
    tickCommit()
    {
        for (auto *ch : chans_)
            ch->commit();
    }

  private:
    std::vector<ChannelFifo<T> *> chans_;
};

class TickSchedule
{
  public:
    TickSchedule() = default;
    TickSchedule(const TickSchedule &) = delete;
    TickSchedule &operator=(const TickSchedule &) = delete;

    /**
     * Register @p c (not owned) into the contiguous partition of its
     * concrete type T. T needs tickCompute()/tickCommit() members; it
     * does not need to derive from Clocked.
     */
    template <typename T>
    void
    add(T *c)
    {
        const std::size_t id = detail::tickTypeId<T>();
        if (id >= byType_.size())
            byType_.resize(id + 1, nullptr);
        if (!byType_[id]) {
            auto p = std::make_unique<Partition<T>>();
            byType_[id] = p.get();
            enlist(p.get(), tickHasCompute<T>(), tickHasCommit<T>());
            owned_.push_back(std::move(p));
        }
        static_cast<Partition<T> *>(byType_[id])->items.push_back(c);
    }

    /** Register @p c (not owned) into the residual virtual partition. */
    void
    addVirtual(Clocked *c)
    {
        if (!virtualPart_) {
            auto p = std::make_unique<VirtualPartition>();
            virtualPart_ = p.get();
            enlist(p.get(), true, true);
            owned_.push_back(std::move(p));
        }
        virtualPart_->items.push_back(c);
    }

    /** Advance every partition's compute (phase-1) pass. */
    void
    tickCompute()
    {
        for (auto *p : computeList_)
            p->compute();
    }

    /** Advance every partition's commit (phase-2) pass. */
    void
    tickCommit()
    {
        for (auto *p : commitList_)
            p->commit();
    }

    /** Live partitions (typed + residual), for tests/introspection. */
    std::size_t partitionCount() const { return owned_.size(); }

  private:
    class PartitionBase
    {
      public:
        virtual ~PartitionBase() = default;
        virtual void compute() = 0;
        virtual void commit() = 0;
    };

    template <typename T>
    class Partition final : public PartitionBase
    {
      public:
        std::vector<T *> items;

        void
        compute() override
        {
            // T is concrete: for a `final` component class these are
            // direct calls in a loop over a contiguous array.
            for (T *c : items)
                c->tickCompute();
        }

        void
        commit() override
        {
            for (T *c : items)
                c->tickCommit();
        }
    };

    class VirtualPartition final : public PartitionBase
    {
      public:
        std::vector<Clocked *> items;

        void
        compute() override
        {
            for (Clocked *c : items)
                c->tickCompute();
        }

        void
        commit() override
        {
            for (Clocked *c : items)
                c->tickCommit();
        }
    };

    void
    enlist(PartitionBase *p, bool has_compute, bool has_commit)
    {
        if (has_compute)
            computeList_.push_back(p);
        if (has_commit)
            commitList_.push_back(p);
    }

    std::vector<PartitionBase *> byType_;
    std::vector<std::unique_ptr<PartitionBase>> owned_;
    std::vector<PartitionBase *> computeList_;
    std::vector<PartitionBase *> commitList_;
    VirtualPartition *virtualPart_ = nullptr;
};

} // namespace canon

#endif // CANON_SIM_SCHEDULE_HH
