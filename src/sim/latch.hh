/**
 * @file
 * Staged-state building blocks for two-phase clocked models.
 *
 *  - Latch<T>: a register. set() stages a value during tickCompute;
 *    commit() makes it visible. get() always returns the value latched
 *    at the previous cycle boundary.
 *
 *  - ChannelFifo<T>: a small hardware FIFO between two components (e.g.
 *    a vertical psum channel between PE rows, or an orchestrator message
 *    channel). Pushes and pops staged during a cycle are applied at the
 *    commit boundary; the head read during a cycle is the pre-cycle head.
 *    Overflow and pop-from-empty panic: in Canon, orchestration is
 *    deterministic by construction, so either indicates a mis-programmed
 *    FSM (or a simulator bug), never a run-time condition to recover from.
 */

#ifndef CANON_SIM_LATCH_HH
#define CANON_SIM_LATCH_HH

#include <deque>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace canon
{

template <typename T>
class Latch
{
  public:
    Latch() = default;
    explicit Latch(T init) : cur_(std::move(init)) {}

    /** Visible value (latched at the last commit). */
    const T &get() const { return cur_; }

    /** Stage a new value; visible after commit(). */
    void set(T v) { next_ = std::move(v); }

    bool pendingUpdate() const { return next_.has_value(); }

    void
    commit()
    {
        if (next_) {
            cur_ = std::move(*next_);
            next_.reset();
        }
    }

  private:
    T cur_{};
    std::optional<T> next_;
};

template <typename T>
class ChannelFifo
{
  public:
    explicit ChannelFifo(std::size_t capacity, std::string name = "chan")
        : cap_(capacity), name_(std::move(name))
    {
        panicIf(cap_ == 0, "ChannelFifo ", name_, ": zero capacity");
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return cap_; }

    /**
     * Space check for a producer this cycle. Conservative: staged pushes
     * count against capacity, staged pops do not free space until the
     * next cycle (register semantics).
     */
    bool
    canPush() const
    {
        return q_.size() + stagedPush_.size() < cap_;
    }

    /** Head visible this cycle. */
    const T &
    front() const
    {
        panicIf(q_.empty(), "ChannelFifo ", name_, ": front() on empty");
        return q_.front();
    }

    /** Stage a push; panics on overflow (deterministic design violated). */
    void
    push(T v)
    {
        panicIf(!canPush(), "ChannelFifo ", name_, ": overflow (cap=",
                cap_, ")");
        stagedPush_.push_back(std::move(v));
    }

    /** Stage a pop of the current head. */
    void
    pop()
    {
        panicIf(q_.empty(), "ChannelFifo ", name_, ": pop() on empty");
        panicIf(stagedPop_, "ChannelFifo ", name_, ": double pop in cycle");
        stagedPop_ = true;
    }

    void
    commit()
    {
        if (stagedPop_) {
            q_.pop_front();
            stagedPop_ = false;
        }
        for (auto &v : stagedPush_)
            q_.push_back(std::move(v));
        stagedPush_.clear();
    }

    void
    clear()
    {
        q_.clear();
        stagedPush_.clear();
        stagedPop_ = false;
    }

  private:
    std::deque<T> q_;
    std::vector<T> stagedPush_;
    bool stagedPop_ = false;
    std::size_t cap_;
    std::string name_;
};

} // namespace canon

#endif // CANON_SIM_LATCH_HH
