#include "kernels/dense_cadence.hh"

#include "sparse/generate.hh"

namespace canon
{

std::shared_ptr<OrchProgram>
buildCadenceProgram(int cadence)
{
    using P = Predicate;
    namespace as = addrspace;
    namespace st = cadence_state;

    fatalIf(cadence <= 0, "buildCadenceProgram: cadence must be "
                          "positive, got ", cadence);

    auto prog = std::make_shared<OrchProgram>("dense-cadence");
    prog->setCondConst(static_cast<std::uint16_t>(cadence));
    prog->setCondConstB(kMergeWindow);

    const PredicateSet run_preds = {P::InputIsEnd, P::Meta1EqConst,
                                    P::MsgMinusMeta0LtB, P::InputIsAux};
    prog->setPredicates(st::kMac, run_preds);
    prog->setPredicates(st::kMerge, run_preds);
    prog->setPredicates(st::kFlush, run_preds);
    prog->setPredicates(st::kDrain,
                        {P::False, P::False, P::False, P::False});

    const int am_win = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::West)));
    const int am_nin = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::North)));
    const int am_sout = prog->addAddrMode(
        AddrMode::fixed(as::portOut(Dir::South)));
    const int am_brow = prog->addAddrMode(
        AddrMode::indexed(as::kDmemBase, ValueSel::InputValue));
    // Register ring: output row m accumulates in R[m mod 8].
    const int am_rcur = prog->addAddrMode(AddrMode::indexed(
        as::kRegBase, ValueSel::Meta0, kMergeWindow - 1));
    const int am_rmsg = prog->addAddrMode(AddrMode::indexed(
        as::kRegBase, ValueSel::MsgValue, kMergeWindow - 1));

    const int rt_w2e = prog->addRouteMode(kRouteW2E);
    const int rt_n2s = prog->addRouteMode(kRouteN2S);
    const int rt_both = prog->addRouteMode(kRouteW2E | kRouteN2S);

    const int mm_psum_cur =
        prog->addMsgMode(MsgMode::emit(kMsgPsum, ValueSel::Meta0));
    const int mm_forward = prog->addMsgMode(MsgMode::forward());

    const int mu0_inc = prog->addMetaUpdate(0, MetaUpdate::add(1));
    const int mu1_inc = prog->addMetaUpdate(1, MetaUpdate::add(1));
    const int mu1_clr = prog->addMetaUpdate(1, MetaUpdate::set(0));

    prog->setInitialState(st::kMac);
    prog->setDoneState(st::kDrain);

    for (std::uint8_t s : {st::kMac, st::kMerge, st::kFlush}) {
        // Merge a psum for a row inside the register window.
        prog->rule(s)
            .onMsg(kMsgPsum)
            .when(P::MsgMinusMeta0LtB)
            .op(OpCode::VAdd)
            .op1(am_rmsg)
            .op2(am_nin)
            .res(am_rmsg)
            .consumeMsg()
            .next(st::kMerge);

        // Outside the window (drift): bypass; the collector sums. The
        // bypass rides along with the next MAC (Appendix C case 3) so
        // relaying costs the row no throughput -- otherwise relayed
        // traffic would slow lower rows, grow the drift, and cascade.
        prog->rule(s)
            .onMsg(kMsgPsum)
            .whenNot(P::MsgMinusMeta0LtB)
            .whenNot(P::Meta1EqConst)
            .whenNot(P::InputIsEnd)
            .whenNot(P::InputIsAux)
            .op(OpCode::SvMac)
            .op1(am_win)
            .op2(am_brow)
            .res(am_rcur)
            .route(rt_both)
            .msg(mm_forward)
            .consumeMsg()
            .consumeInput()
            .westFeed(WestFeed::TokenData)
            .meta1(mu1_inc)
            .stallable()
            .next(st::kMac);

        // Bypass with no MAC to pair it with (flush boundary, idle,
        // or end of stream): costs the cycle.
        prog->rule(s)
            .onMsg(kMsgPsum)
            .whenNot(P::MsgMinusMeta0LtB)
            .op(OpCode::Nop)
            .route(rt_n2s)
            .msg(mm_forward)
            .consumeMsg()
            .stallable();

        // Cadence reached: flush this row's register south.
        prog->rule(s)
            .onNoMsg()
            .when(P::Meta1EqConst)
            .op(OpCode::VFlush)
            .op1(am_rcur)
            .res(am_sout)
            .msg(mm_psum_cur)
            .meta0(mu0_inc)
            .meta1(mu1_clr)
            .stallable()
            .next(st::kFlush);

        // Stream a non-zero into the row.
        prog->rule(s)
            .onNoMsg()
            .whenNot(P::Meta1EqConst)
            .whenNot(P::InputIsEnd)
            .whenNot(P::InputIsAux)
            .op(OpCode::SvMac)
            .op1(am_win)
            .op2(am_brow)
            .res(am_rcur)
            .route(rt_w2e)
            .westFeed(WestFeed::TokenData)
            .consumeInput()
            .meta1(mu1_inc)
            .next(st::kMac);

        // Stream exhausted (after the final flush cleared meta1).
        prog->rule(s)
            .onNoMsg()
            .when(P::InputIsEnd)
            .whenNot(P::Meta1EqConst)
            .next(st::kDrain);
    }

    // DRAIN: relay whatever upstream rows still flush.
    prog->rule(st::kDrain)
        .onMsg(kMsgPsum)
        .op(OpCode::Nop)
        .route(rt_n2s)
        .msg(mm_forward)
        .consumeMsg()
        .stallable();

    prog->compile();
    return prog;
}

namespace
{

/**
 * Shared body of the two cadence mappings: checks shapes, slices B
 * into the PE data memories, and emits skewed per-row non-zero
 * streams.
 */
KernelMapping
mapCadence(const DenseMatrix &a, const DenseMatrix &b, int cadence,
           const CanonConfig &cfg, const std::string &name)
{
    fatalIf(a.cols() != b.rows(), name, ": A is ", a.rows(), "x",
            a.cols(), " but B is ", b.rows(), "x", b.cols());
    fatalIf(b.cols() != cfg.cols * kSimdWidth, name, ": N=", b.cols(),
            " must equal cols*4=", cfg.cols * kSimdWidth);
    fatalIf(b.rows() % cfg.rows != 0, name, ": K=", b.rows(),
            " must divide by rows=", cfg.rows);
    const int h = b.rows() / cfg.rows;
    fatalIf(h > cfg.dmemSlots, name, ": B tile of ", h,
            " rows exceeds data memory");
    fatalIf(a.rows() >= (1 << 14), name, ": M exceeds meta range");

    KernelMapping map;
    map.name = name;
    map.program = buildCadenceProgram(cadence);
    map.collector = CollectorKind::South;
    map.outRows = a.rows();
    map.outCols = b.cols();
    map.expectedLaneMacs = static_cast<std::uint64_t>(a.countNonZero()) *
                           b.cols();

    const Cycle skew = static_cast<Cycle>(cadence) + 2;
    map.rowStreams.reserve(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        const int k_lo = y * h;
        std::vector<MetaToken> tokens;
        for (int m = 0; m < a.rows(); ++m) {
            int count = 0;
            for (int kk = 0; kk < h; ++kk) {
                const Elem v = a.at(m, k_lo + kk);
                if (v != 0) {
                    tokens.push_back(MetaToken::nnz(
                        static_cast<std::uint16_t>(kk), v));
                    ++count;
                }
            }
            fatalIf(count != cadence, name, ": output row ", m,
                    " slice ", y, " has ", count,
                    " non-zeros, cadence needs exactly ", cadence);
        }
        map.rowStreams.emplace_back(std::move(tokens),
                                    static_cast<Cycle>(y) * skew);
    }

    map.dmemImage.resize(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        map.dmemImage[y].resize(cfg.cols);
        for (int x = 0; x < cfg.cols; ++x) {
            auto &slots = map.dmemImage[y][x];
            slots.resize(h);
            for (int hh = 0; hh < h; ++hh)
                for (int l = 0; l < kSimdWidth; ++l)
                    slots[hh][l] =
                        b.at(y * h + hh, x * kSimdWidth + l);
        }
    }
    return map;
}

} // namespace

KernelMapping
mapGemm(const DenseMatrix &a, const DenseMatrix &b,
        const CanonConfig &cfg)
{
    fatalIf(static_cast<std::size_t>(a.rows()) * a.cols() !=
                a.countNonZero(),
            "mapGemm: A contains zeros; use mapSpmm or mapNmSpmm");
    const int h = b.rows() / std::max(cfg.rows, 1);
    return mapCadence(a, b, h, cfg, "gemm");
}

KernelMapping
mapNmSpmm(const DenseMatrix &a, const DenseMatrix &b, int n, int m,
          const CanonConfig &cfg)
{
    fatalIf(!conformsToNm(a, n, m), "mapNmSpmm: A violates ", n, ":", m,
            " structure");
    const int h = b.rows() / std::max(cfg.rows, 1);
    fatalIf(h % m != 0, "mapNmSpmm: K-slice ", h,
            " not divisible by the M of ", n, ":", m);
    return mapCadence(a, b, h * n / m, cfg,
                      "spmm-" + std::to_string(n) + ":" +
                          std::to_string(m));
}

} // namespace canon
