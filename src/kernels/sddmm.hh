/**
 * @file
 * SDDMM on Canon (Section 4.1.2, Listing 4, Figure 7b/19).
 *
 * C = mask .* (A x B): sparsity lives in the *output*. The dense A
 * streams from the top edge down the columns; each PE row owns a block
 * of output columns with the matching B slice resident in data memory.
 * For every live mask position the row performs a vector-MAC chain
 * west->east; the east edge reduces the 4 lanes to the output scalar.
 *
 * Load imbalance (rows own different mask populations) is absorbed by
 * the scratchpad: each row *prefetches* arriving A vectors into a
 * circular scratchpad window and forwards them south immediately, so a
 * busy row can fall up to `depth` rows behind the stream before its
 * neighbours feel backpressure -- the SDDMM use of the buffer
 * described in Section 4.1.2 ("store and reuse incoming vectors from
 * A, amortizing their loading cost across multiple masked positions").
 *
 * Fabric-native shape constraints: K == cols*4, N % rows == 0,
 * N/rows <= dmem slots, scratchpad depth a power of two.
 */

#ifndef CANON_KERNELS_SDDMM_HH
#define CANON_KERNELS_SDDMM_HH

#include <memory>

#include "core/config.hh"
#include "core/kernel_mapping.hh"
#include "sparse/matrix.hh"

namespace canon
{

namespace sddmm_state
{
constexpr std::uint8_t kMac = 0;
constexpr std::uint8_t kLoadA = 1;
constexpr std::uint8_t kDrain = 2;
constexpr std::uint8_t kDone = 3;
} // namespace sddmm_state

/**
 * Build the SDDMM program for @p total_steps streamed A vectors and a
 * prefetch window of @p spad_depth entries.
 */
std::shared_ptr<OrchProgram> buildSddmmProgram(int total_steps,
                                               int spad_depth);

/** Map C = mask .* (A(MxK) x B(KxN)) onto the fabric. */
KernelMapping mapSddmm(const CsrMatrix &mask, const DenseMatrix &a,
                       const DenseMatrix &b, const CanonConfig &cfg);

} // namespace canon

#endif // CANON_KERNELS_SDDMM_HH
