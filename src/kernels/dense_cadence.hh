/**
 * @file
 * The dense-cadence program: GEMM and N:M structured-sparse SpMM.
 *
 * When the per-row non-zero count of every output row is known at
 * compile time -- K for dense GEMM, K*N/M for N:M sparsity -- no
 * scratchpad buffer management is needed (Section 4.1.3): each PE
 * accumulates in a ring of 8 SIMD registers, flushes south on a fixed
 * cadence counted in a state-meta register, and merges psums arriving
 * from the north directly into the ring (the systolic-style dataflow
 * Canon emulates for regular tensor work, Section 6.2). Streams are
 * skewed by compile-time offsets so a psum for output row m arrives
 * while m is within the register window; the message window throttles
 * any drift, and out-of-window psums still bypass correctly.
 *
 * This is also why GEMM power shows no scratchpad component in
 * Figure 11: the scratchpad is simply not part of this program.
 */

#ifndef CANON_KERNELS_DENSE_CADENCE_HH
#define CANON_KERNELS_DENSE_CADENCE_HH

#include <memory>

#include "core/config.hh"
#include "core/kernel_mapping.hh"
#include "sparse/matrix.hh"

namespace canon
{

namespace cadence_state
{
constexpr std::uint8_t kMac = 0;
constexpr std::uint8_t kMerge = 1;
constexpr std::uint8_t kFlush = 2;
constexpr std::uint8_t kDrain = 3;
} // namespace cadence_state

/** Psum-merge register-ring size (R0..R15). */
constexpr int kMergeWindow = 16;

/**
 * Build the cadence program: flush after @p cadence MACs per output
 * row.
 */
std::shared_ptr<OrchProgram> buildCadenceProgram(int cadence);

/** Dense GEMM: A (MxK) x B (KxN), systolic-style dataflow. */
KernelMapping mapGemm(const DenseMatrix &a, const DenseMatrix &b,
                      const CanonConfig &cfg);

/**
 * N:M structured SpMM: A conforms to exactly @p n non-zeros per
 * aligned group of @p m; Canon skips the zeros, so the cadence is
 * K*n/m per output row. The mapping is otherwise identical to SpMM
 * (Section 4.1.3).
 */
KernelMapping mapNmSpmm(const DenseMatrix &a, const DenseMatrix &b,
                        int n, int m, const CanonConfig &cfg);

} // namespace canon

#endif // CANON_KERNELS_DENSE_CADENCE_HH
