#include "kernels/sddmm.hh"

#include "common/bitfield.hh"

namespace canon
{

std::shared_ptr<OrchProgram>
buildSddmmProgram(int total_steps, int spad_depth)
{
    using P = Predicate;
    namespace as = addrspace;
    namespace st = sddmm_state;

    fatalIf(!isPowerOf2(static_cast<std::uint64_t>(spad_depth)),
            "buildSddmmProgram: scratchpad depth ", spad_depth,
            " must be a power of two");

    auto prog = std::make_shared<OrchProgram>("sddmm");
    prog->setCondConst(static_cast<std::uint16_t>(total_steps));
    prog->setCondConstB(static_cast<std::uint16_t>(spad_depth));

    const PredicateSet run_preds = {P::InputIsEnd, P::InputIsRowEnd,
                                    P::Meta1MinusMeta0LtB,
                                    P::Meta1GtMeta0};
    prog->setPredicates(st::kMac, run_preds);
    prog->setPredicates(st::kLoadA, run_preds);
    prog->setPredicates(st::kDrain, {P::Meta1EqConst, P::False,
                                     P::False, P::False});
    prog->setPredicates(st::kDone,
                        {P::False, P::False, P::False, P::False});

    const int am_nin = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::North)));
    const int am_eout = prog->addAddrMode(
        AddrMode::fixed(as::portOut(Dir::East)));
    // Prefetch target: A slot meta1 mod depth; compute source: slot
    // meta0 mod depth.
    const int am_aslot_w = prog->addAddrMode(AddrMode::indexed(
        as::kSpadBase, ValueSel::Meta1,
        static_cast<std::uint16_t>(spad_depth - 1)));
    const int am_aslot_r = prog->addAddrMode(AddrMode::indexed(
        as::kSpadBase, ValueSel::Meta0,
        static_cast<std::uint16_t>(spad_depth - 1)));
    const int am_bcol = prog->addAddrMode(
        AddrMode::indexed(as::kDmemBase, ValueSel::InputValue));

    const int rt_n2s = prog->addRouteMode(kRouteN2S);

    const int mm_forward = prog->addMsgMode(MsgMode::forward());

    const int mu0_inc = prog->addMetaUpdate(0, MetaUpdate::add(1));
    const int mu1_inc = prog->addMetaUpdate(1, MetaUpdate::add(1));

    prog->setInitialState(st::kMac);
    prog->setDoneState(st::kDone);

    for (std::uint8_t s : {st::kMac, st::kLoadA}) {
        // Prefetch an arriving A vector into the circular window and
        // forward it (data + announcement) to the next row.
        prog->rule(s)
            .onMsg(kMsgAVec)
            .when(P::Meta1MinusMeta0LtB)
            .op(OpCode::VMov)
            .op1(am_nin)
            .res(am_aslot_w)
            .route(rt_n2s)
            .msg(mm_forward)
            .consumeMsg()
            .meta1(mu1_inc)
            .stallable()
            .next(st::kLoadA);

        // Compute one live mask position: A[m] . B[:,n] rides the
        // west->east psum chain; the east edge reduces lanes.
        prog->rule(s)
            .whenNot(P::InputIsEnd)
            .whenNot(P::InputIsRowEnd)
            .when(P::Meta1GtMeta0)
            .op(OpCode::VvMacW)
            .op1(am_aslot_r)
            .op2(am_bcol)
            .res(am_eout)
            .westFeed(WestFeed::ZeroVec)
            .outRec()
            .consumeInput()
            .next(st::kMac);

        // Mask row complete: advance the current-row cursor. The
        // row's A vector must have streamed past first (this keeps
        // meta0 <= meta1, which the unsigned window arithmetic
        // relies on, and matches the physical stream order).
        prog->rule(s)
            .when(P::InputIsRowEnd)
            .when(P::Meta1GtMeta0)
            .op(OpCode::Nop)
            .meta0(mu0_inc)
            .consumeInput();

        // Own work done; keep relaying A for the rows below.
        prog->rule(s).onNoMsg().when(P::InputIsEnd).next(st::kDrain);
    }

    prog->rule(st::kDrain)
        .onMsg(kMsgAVec)
        .op(OpCode::Nop)
        .route(rt_n2s)
        .msg(mm_forward)
        .consumeMsg()
        .meta1(mu1_inc)
        .stallable();
    prog->rule(st::kDrain).onNoMsg().when(P::Meta1EqConst).next(
        st::kDone);

    prog->compile();
    return prog;
}

KernelMapping
mapSddmm(const CsrMatrix &mask, const DenseMatrix &a,
         const DenseMatrix &b, const CanonConfig &cfg)
{
    fatalIf(a.cols() != b.rows(), "mapSddmm: A is ", a.rows(), "x",
            a.cols(), " but B is ", b.rows(), "x", b.cols());
    fatalIf(mask.rows() != a.rows() || mask.cols() != b.cols(),
            "mapSddmm: mask ", mask.rows(), "x", mask.cols(),
            " does not match output ", a.rows(), "x", b.cols());
    fatalIf(a.cols() != cfg.cols * kSimdWidth, "mapSddmm: K=", a.cols(),
            " must equal cols*4=", cfg.cols * kSimdWidth);
    fatalIf(b.cols() % cfg.rows != 0, "mapSddmm: N=", b.cols(),
            " must divide by rows=", cfg.rows);
    const int h_blk = b.cols() / cfg.rows;
    fatalIf(h_blk > cfg.dmemSlots, "mapSddmm: ", h_blk,
            " output columns per row exceed data memory");
    fatalIf(a.rows() >= (1 << 14), "mapSddmm: M exceeds meta range");

    KernelMapping map;
    map.name = "sddmm";
    map.program = buildSddmmProgram(a.rows(), cfg.spadEntries);
    map.collector = CollectorKind::East;
    map.outRows = mask.rows();
    map.outCols = mask.cols();
    map.eastColsPerRow = h_blk;
    map.expectedLaneMacs =
        static_cast<std::uint64_t>(mask.nnz()) * a.cols();

    // North feed: step m delivers A[m]'s K-slice to every column.
    map.northFeed.resize(a.rows());
    for (int m = 0; m < a.rows(); ++m) {
        map.northFeed[m].resize(cfg.cols);
        for (int x = 0; x < cfg.cols; ++x)
            for (int l = 0; l < kSimdWidth; ++l)
                map.northFeed[m][x][l] =
                    a.at(m, x * kSimdWidth + l);
    }

    // Mask streams: row y sees live positions inside its column block;
    // every output row ends with a RowEnd so the row cursor tracks m.
    const auto &row_ptr = mask.rowPtr();
    const auto &col_idx = mask.colIdx();
    map.rowStreams.reserve(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        const int n_lo = y * h_blk;
        const int n_hi = n_lo + h_blk;
        std::vector<MetaToken> tokens;
        for (int m = 0; m < mask.rows(); ++m) {
            for (auto i = row_ptr[m]; i < row_ptr[m + 1]; ++i) {
                const int n = col_idx[i];
                if (n >= n_lo && n < n_hi)
                    tokens.push_back(MetaToken::nnz(
                        static_cast<std::uint16_t>(n - n_lo), 0));
            }
            tokens.push_back(
                MetaToken::rowEnd(static_cast<std::uint16_t>(m)));
        }
        map.rowStreams.emplace_back(std::move(tokens));
    }

    // Data placement: PE (y, x) slot h = B[4x..4x+4)[y*h_blk + h].
    map.dmemImage.resize(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        map.dmemImage[y].resize(cfg.cols);
        for (int x = 0; x < cfg.cols; ++x) {
            auto &slots = map.dmemImage[y][x];
            slots.resize(h_blk);
            for (int hh = 0; hh < h_blk; ++hh)
                for (int l = 0; l < kSimdWidth; ++l)
                    slots[hh][l] =
                        b.at(x * kSimdWidth + l, y * h_blk + hh);
        }
    }
    return map;
}

} // namespace canon
