#include "kernels/spmm.hh"

namespace canon
{

std::shared_ptr<OrchProgram>
buildSpmmProgram()
{
    using P = Predicate;
    namespace as = addrspace;
    namespace st = spmm_state;

    auto prog = std::make_shared<OrchProgram>("spmm");

    // ---- condition configuration -------------------------------------
    const PredicateSet run_preds = {P::InputIsRowEnd, P::InputIsEnd,
                                    P::MsgTagManaged, P::BufferAtCap};
    prog->setPredicates(st::kMac, run_preds);
    prog->setPredicates(st::kAcc, run_preds);
    prog->setPredicates(st::kFlush, run_preds);
    prog->setPredicates(st::kDrain, {P::MsgTagManaged, P::BufferEmpty,
                                     P::False, P::False});
    prog->setPredicates(st::kDone, {P::False, P::False, P::False,
                                    P::False});

    // ---- static datapath menus ----------------------------------------
    const int am_win = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::West)));
    const int am_nin = prog->addAddrMode(
        AddrMode::fixed(as::portIn(Dir::North)));
    const int am_sout = prog->addAddrMode(
        AddrMode::fixed(as::portOut(Dir::South)));
    const int am_brow = prog->addAddrMode(
        AddrMode::indexed(as::kDmemBase, ValueSel::InputValue));
    const int am_tail = prog->addAddrMode(AddrMode::spadTail());
    const int am_head = prog->addAddrMode(AddrMode::spadHead());
    const int am_search = prog->addAddrMode(AddrMode::spadSearch());

    const int rt_w2e = prog->addRouteMode(kRouteW2E);
    const int rt_n2s = prog->addRouteMode(kRouteN2S);
    const int rt_both = prog->addRouteMode(kRouteW2E | kRouteN2S);

    const int mm_psum_head =
        prog->addMsgMode(MsgMode::emit(kMsgPsum, ValueSel::HeadTag));
    const int mm_forward = prog->addMsgMode(MsgMode::forward());

    prog->setTagSel(ValueSel::InputValue); // RowEnd carries the RID
    prog->setMergeMsgId(kMsgPsum); // psums merge against the queue
    prog->setInitialState(st::kMac);
    prog->setDoneState(st::kDone);

    // ---- microcode (the decision tree of Figure 8) --------------------
    for (std::uint8_t s : {st::kMac, st::kAcc, st::kFlush}) {
        // 1.1  psum from the north for a managed row: accumulate.
        prog->rule(s)
            .onMsg(kMsgPsum)
            .when(P::MsgTagManaged)
            .op(OpCode::VAdd)
            .op1(am_search)
            .op2(am_nin)
            .res(am_search)
            .consumeMsg()
            .next(st::kAcc);

        // 1.2a unmanaged psum while input is a non-zero: bypass the
        //      psum north->south *and* keep MACing (Appendix C case 3).
        prog->rule(s)
            .onMsg(kMsgPsum)
            .whenNot(P::MsgTagManaged)
            .whenNot(P::InputIsRowEnd)
            .whenNot(P::InputIsEnd)
            .op(OpCode::SvMac)
            .op1(am_win)
            .op2(am_brow)
            .res(am_tail)
            .route(rt_both)
            .msg(mm_forward)
            .consumeMsg()
            .consumeInput()
            .westFeed(WestFeed::TokenData)
            .stallable()
            .next(st::kMac);

        // 1.2b unmanaged psum at a row boundary: bypass only, defer
        //      the row-end handling one cycle.
        prog->rule(s)
            .onMsg(kMsgPsum)
            .whenNot(P::MsgTagManaged)
            .op(OpCode::Nop)
            .route(rt_n2s)
            .msg(mm_forward)
            .consumeMsg()
            .stallable();

        // 2.2  plain MAC on the next non-zero.
        prog->rule(s)
            .onNoMsg()
            .whenNot(P::InputIsRowEnd)
            .whenNot(P::InputIsEnd)
            .op(OpCode::SvMac)
            .op1(am_win)
            .op2(am_brow)
            .res(am_tail)
            .route(rt_w2e)
            .consumeInput()
            .westFeed(WestFeed::TokenData)
            .next(st::kMac);

        // 2.1a row end with a full context: flush the oldest psum
        //      south and recycle its slot for the row just finished.
        prog->rule(s)
            .onNoMsg()
            .when(P::InputIsRowEnd)
            .when(P::BufferAtCap)
            .op(OpCode::VFlush)
            .op1(am_head)
            .res(am_sout)
            .buffer(BufferOp::PushPop)
            .msg(mm_psum_head)
            .consumeInput()
            .stallable()
            .next(st::kFlush);

        // 2.1b row end with room: just manage the new psum.
        prog->rule(s)
            .onNoMsg()
            .when(P::InputIsRowEnd)
            .whenNot(P::BufferAtCap)
            .op(OpCode::Nop)
            .buffer(BufferOp::Push)
            .consumeInput()
            .next(st::kMac);

        // End of stream: drain the remaining context.
        prog->rule(s)
            .onNoMsg()
            .when(P::InputIsEnd)
            .next(st::kDrain);
    }

    // DRAIN: keep merging/bypassing, flush out the context queue.
    prog->rule(st::kDrain)
        .onMsg(kMsgPsum)
        .when(P::MsgTagManaged)
        .op(OpCode::VAdd)
        .op1(am_search)
        .op2(am_nin)
        .res(am_search)
        .consumeMsg();
    prog->rule(st::kDrain)
        .onMsg(kMsgPsum)
        .whenNot(P::MsgTagManaged)
        .op(OpCode::Nop)
        .route(rt_n2s)
        .msg(mm_forward)
        .consumeMsg()
        .stallable();
    prog->rule(st::kDrain)
        .onNoMsg()
        .whenNot(P::BufferEmpty)
        .op(OpCode::VFlush)
        .op1(am_head)
        .res(am_sout)
        .buffer(BufferOp::Pop)
        .msg(mm_psum_head)
        .stallable();
    prog->rule(st::kDrain).onNoMsg().when(P::BufferEmpty).next(
        st::kDone);

    // DONE: nothing left locally; relay any psums still coming from
    // the north so upstream rows can finish draining.
    prog->rule(st::kDone)
        .onMsg(kMsgPsum)
        .op(OpCode::Nop)
        .route(rt_n2s)
        .msg(mm_forward)
        .consumeMsg()
        .stallable();

    prog->compile();
    return prog;
}

KernelMapping
mapSpmm(const CsrMatrix &a, const DenseMatrix &b, const CanonConfig &cfg)
{
    fatalIf(a.cols() != b.rows(), "mapSpmm: A is ", a.rows(), "x",
            a.cols(), " but B is ", b.rows(), "x", b.cols());
    fatalIf(b.cols() != cfg.cols * kSimdWidth,
            "mapSpmm: N=", b.cols(), " must equal cols*4=",
            cfg.cols * kSimdWidth,
            " (tile wider problems over multiple passes)");
    fatalIf(b.rows() % cfg.rows != 0, "mapSpmm: K=", b.rows(),
            " must divide by rows=", cfg.rows);
    const int h = b.rows() / cfg.rows;
    fatalIf(h > cfg.dmemSlots, "mapSpmm: B tile of ", h,
            " rows exceeds data memory (", cfg.dmemSlots, " slots)");
    fatalIf(a.rows() >= (1 << 14), "mapSpmm: M=", a.rows(),
            " exceeds the 14-bit meta value range");

    KernelMapping map;
    map.name = "spmm";
    map.program = buildSpmmProgram();
    map.collector = CollectorKind::South;
    map.outRows = a.rows();
    map.outCols = b.cols();
    map.expectedLaneMacs =
        static_cast<std::uint64_t>(a.nnz()) * b.cols();

    // Meta streams: orchestrator y sees the non-zeros of its K-slice.
    const auto &row_ptr = a.rowPtr();
    const auto &col_idx = a.colIdx();
    const auto &values = a.values();
    map.rowStreams.reserve(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        const int k_lo = y * h;
        const int k_hi = k_lo + h;
        std::vector<MetaToken> tokens;
        for (int m = 0; m < a.rows(); ++m) {
            bool any = false;
            for (auto i = row_ptr[m]; i < row_ptr[m + 1]; ++i) {
                const int k = col_idx[i];
                if (k < k_lo || k >= k_hi)
                    continue;
                tokens.push_back(MetaToken::nnz(
                    static_cast<std::uint16_t>(k - k_lo), values[i]));
                any = true;
            }
            if (any)
                tokens.push_back(
                    MetaToken::rowEnd(static_cast<std::uint16_t>(m)));
        }
        map.rowStreams.emplace_back(std::move(tokens));
    }

    // Data placement: PE (y, x) holds B[y*H + h][4x .. 4x+4).
    map.dmemImage.resize(cfg.rows);
    for (int y = 0; y < cfg.rows; ++y) {
        map.dmemImage[y].resize(cfg.cols);
        for (int x = 0; x < cfg.cols; ++x) {
            auto &slots = map.dmemImage[y][x];
            slots.resize(h);
            for (int hh = 0; hh < h; ++hh)
                for (int l = 0; l < kSimdWidth; ++l)
                    slots[hh][l] =
                        b.at(y * h + hh, x * kSimdWidth + l);
        }
    }
    return map;
}

KernelMapping
mapGemmViaSpmm(const DenseMatrix &a, const DenseMatrix &b,
               const CanonConfig &cfg)
{
    auto map = mapSpmm(CsrMatrix::fromDense(a), b, cfg);
    map.name = "gemm-via-spmm";
    return map;
}

} // namespace canon
