/**
 * @file
 * SpMM on Canon: Gustavson row dataflow with asynchronous reduction
 * and explicit scratchpad buffer management (Section 4.1.1, Listing 1,
 * Figure 8, Appendices A and C).
 *
 * Mapping (Figure 7a / 18):
 *  - the dense matrix B (KxN) is tiled across the array: PE row y
 *    holds B rows [y*H, (y+1)*H) (H = K/rows), PE column x holds B
 *    columns [4x, 4x+4);
 *  - the sparse matrix A streams row-by-row into the orchestrators:
 *    orchestrator y receives the non-zeros of A whose column index
 *    falls in its B-row range, as (local-coordinate, value) tokens
 *    plus a RowEnd token per non-empty output row;
 *  - each PE scalar-vector-MACs streamed values against its local B
 *    slice into the scratchpad slot of the current output row;
 *  - partial sums travel south, merged opportunistically (managed
 *    rows accumulate, unmanaged ones bypass) and exit the bottom edge
 *    where the collector assembles C (MxN).
 *
 * Fabric-native shape constraints (the analytic layer tiles larger
 * problems over these):  N == cols*4,  K % rows == 0,  K/rows <= dmem
 * slots, M < 2^14.
 */

#ifndef CANON_KERNELS_SPMM_HH
#define CANON_KERNELS_SPMM_HH

#include <memory>

#include "core/config.hh"
#include "core/kernel_mapping.hh"
#include "sparse/matrix.hh"

namespace canon
{

/** FSM state ids of the SpMM program (exposed for tests). */
namespace spmm_state
{
constexpr std::uint8_t kMac = 0;
constexpr std::uint8_t kAcc = 1;
constexpr std::uint8_t kFlush = 2;
constexpr std::uint8_t kDrain = 3;
constexpr std::uint8_t kDone = 4;
} // namespace spmm_state

/** Build the SpMM orchestrator program (Listing 1 as microcode). */
std::shared_ptr<OrchProgram> buildSpmmProgram();

/** Map A (sparse, MxK) times B (dense, KxN) onto the fabric. */
KernelMapping mapSpmm(const CsrMatrix &a, const DenseMatrix &b,
                      const CanonConfig &cfg);

/** Dense GEMM expressed through the SpMM path (test utility). */
KernelMapping mapGemmViaSpmm(const DenseMatrix &a, const DenseMatrix &b,
                             const CanonConfig &cfg);

} // namespace canon

#endif // CANON_KERNELS_SPMM_HH
