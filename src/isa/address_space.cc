#include "isa/address_space.hh"

namespace canon
{
namespace addrspace
{

AddrRegion
region(Addr a)
{
    if (a < kDmemBase + kDmemSize)
        return AddrRegion::Dmem;
    if (a >= kSpadBase && a < kSpadBase + kSpadSize)
        return AddrRegion::Spad;
    if (a >= kRegBase && a < kRegBase + kRegSize)
        return AddrRegion::Reg;
    if (a >= kPortInBase && a < kPortInBase + kNumDirs)
        return AddrRegion::PortIn;
    if (a >= kPortOutBase && a < kPortOutBase + kNumDirs)
        return AddrRegion::PortOut;
    if (a == kZeroAddr)
        return AddrRegion::Zero;
    if (a == kNullAddr)
        return AddrRegion::Null;
    return AddrRegion::Invalid;
}

Addr
offset(Addr a)
{
    switch (region(a)) {
      case AddrRegion::Dmem:
        return static_cast<Addr>(a - kDmemBase);
      case AddrRegion::Spad:
        return static_cast<Addr>(a - kSpadBase);
      case AddrRegion::Reg:
        return static_cast<Addr>(a - kRegBase);
      case AddrRegion::PortIn:
        return static_cast<Addr>(a - kPortInBase);
      case AddrRegion::PortOut:
        return static_cast<Addr>(a - kPortOutBase);
      default:
        return 0;
    }
}

std::string
toString(Addr a)
{
    const auto off = std::to_string(offset(a));
    switch (region(a)) {
      case AddrRegion::Dmem:
        return "DMEM[" + off + "]";
      case AddrRegion::Spad:
        return "SPAD[" + off + "]";
      case AddrRegion::Reg:
        return "R" + off;
      case AddrRegion::PortIn:
        return std::string(dirName(static_cast<Dir>(offset(a)))) + "_IN";
      case AddrRegion::PortOut:
        return std::string(dirName(static_cast<Dir>(offset(a)))) + "_OUT";
      case AddrRegion::Zero:
        return "ZERO";
      case AddrRegion::Null:
        return "NULL";
      case AddrRegion::Invalid:
        break;
    }
    return "INVALID(0x" + std::to_string(a) + ")";
}

} // namespace addrspace
} // namespace canon
