#include "isa/instruction.hh"

#include "common/bitfield.hh"

namespace canon
{

const char *
opName(OpCode op)
{
    switch (op) {
      case OpCode::Nop: return "NOP";
      case OpCode::SvMac: return "SVMAC";
      case OpCode::VvMac: return "VVMAC";
      case OpCode::VvMacW: return "VVMACW";
      case OpCode::VAdd: return "VADD";
      case OpCode::VMov: return "VMOV";
      case OpCode::VFlush: return "VFLUSH";
      case OpCode::Hold: return "HOLD";
      case OpCode::NumOpCodes: break;
    }
    return "???";
}

namespace
{

// Field layout of the encoded 64-bit instruction word.
constexpr int kOpLo = 0, kOpHi = 5;
constexpr int kOp1Lo = 6, kOp1Hi = 21;
constexpr int kOp2Lo = 22, kOp2Hi = 37;
constexpr int kResLo = 38, kResHi = 53;
constexpr int kRouteLo = 54, kRouteHi = 57;
constexpr int kHoldBit = 58;

} // namespace

std::uint64_t
Instruction::encode() const
{
    std::uint64_t w = 0;
    w = insertBits(w, kOpHi, kOpLo, static_cast<std::uint64_t>(op));
    w = insertBits(w, kOp1Hi, kOp1Lo, op1);
    w = insertBits(w, kOp2Hi, kOp2Lo, op2);
    w = insertBits(w, kResHi, kResLo, res);
    w = insertBits(w, kRouteHi, kRouteLo, route);
    w = insertBits(w, kHoldBit, kHoldBit, hold ? 1 : 0);
    return w;
}

Instruction
Instruction::decode(std::uint64_t word)
{
    const auto op_field = bits(word, kOpHi, kOpLo);
    panicIf(op_field >=
                static_cast<std::uint64_t>(OpCode::NumOpCodes),
            "Instruction::decode: illegal opcode field ", op_field);
    Instruction inst;
    inst.op = static_cast<OpCode>(op_field);
    inst.op1 = static_cast<Addr>(bits(word, kOp1Hi, kOp1Lo));
    inst.op2 = static_cast<Addr>(bits(word, kOp2Hi, kOp2Lo));
    inst.res = static_cast<Addr>(bits(word, kResHi, kResLo));
    inst.route = static_cast<std::uint8_t>(bits(word, kRouteHi, kRouteLo));
    inst.hold = bits(word, kHoldBit, kHoldBit) != 0;
    return inst;
}

std::string
Instruction::toString() const
{
    std::string s = opName(op);
    if (op != OpCode::Nop && op != OpCode::Hold) {
        s += " " + addrspace::toString(op1);
        s += ", " + addrspace::toString(op2);
        s += " -> " + addrspace::toString(res);
    }
    if (route) {
        s += " [";
        if (route & kRouteN2S)
            s += "N>S";
        if (route & kRouteW2E)
            s += std::string(s.back() == '[' ? "" : " ") + "W>E";
        if (route & kRouteS2N)
            s += std::string(s.back() == '[' ? "" : " ") + "S>N";
        if (route & kRouteE2W)
            s += std::string(s.back() == '[' ? "" : " ") + "E>W";
        s += "]";
    }
    if (hold)
        s += " {hold}";
    return s;
}

} // namespace canon
