/**
 * @file
 * PE operation codes.
 *
 * The ISA is deliberately tiny (Section 3.1): PEs carry no control
 * logic, so an instruction only names an ALU operation and three
 * addresses in the unified address space. Everything control-flow-like
 * lives in the orchestrator.
 */

#ifndef CANON_ISA_OPCODE_HH
#define CANON_ISA_OPCODE_HH

#include <cstdint>

namespace canon
{

enum class OpCode : std::uint8_t
{
    Nop = 0,

    /** res += op1.lane[0] * op2 (scalar-vector MAC; SpMM inner op). */
    SvMac,

    /** res += op1 * op2 lane-wise (vector-vector MAC). */
    VvMac,

    /**
     * res = op1 * op2 + west-in, lane-wise. The fused form used by the
     * SDDMM dataflow where partial sums ride the west->east channel
     * while both operands are local (Figure 7b / Listing 4).
     */
    VvMacW,

    /** res = op1 + op2 lane-wise (psum accumulate). */
    VAdd,

    /** res = op1 (move / flush / load). */
    VMov,

    /**
     * res = op1, then op1's storage is cleared to zero. The flush
     * primitive of Appendix C ("LOAD SPad[0x00]; STORE #0 to
     * SPad[0x00]"): a psum leaves for the south neighbour and its slot
     * is recycled for the next output row in one instruction.
     */
    VFlush,

    /**
     * Spatial-mode hold (Appendix D): stop propagating instructions and
     * keep re-executing the latched spatial instruction.
     */
    Hold,

    NumOpCodes
};

const char *opName(OpCode op);

/** Ops whose EXECUTE stage performs multiply work (utilization metric). */
inline bool
isMacOp(OpCode op)
{
    return op == OpCode::SvMac || op == OpCode::VvMac ||
           op == OpCode::VvMacW;
}

} // namespace canon

#endif // CANON_ISA_OPCODE_HH
