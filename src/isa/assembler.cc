#include "isa/assembler.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace canon
{

namespace
{

namespace as = addrspace;

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

/** Split off a bracketed index: "DMEM[3]" -> ("DMEM", 3). */
bool
splitIndexed(const std::string &s, std::string &base, int &index)
{
    const auto lb = s.find('[');
    if (lb == std::string::npos || s.back() != ']')
        return false;
    base = s.substr(0, lb);
    try {
        index = std::stoi(s.substr(lb + 1, s.size() - lb - 2));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace

Addr
parseAddr(const std::string &text)
{
    const auto s = upper(text);
    std::string base;
    int index = 0;
    if (splitIndexed(s, base, index)) {
        if (base == "DMEM")
            return as::dmem(index);
        if (base == "SPAD")
            return as::spad(index);
        fatal("parseAddr: unknown region '", base, "' in '", text,
              "'");
    }
    if (s.size() >= 2 && s[0] == 'R' &&
        std::isdigit(static_cast<unsigned char>(s[1]))) {
        try {
            return as::reg(std::stoi(s.substr(1)));
        } catch (const std::exception &) {
            fatal("parseAddr: bad register '", text, "'");
        }
    }
    static const std::pair<const char *, Addr> ports[] = {
        {"N_IN", as::portIn(Dir::North)},
        {"S_IN", as::portIn(Dir::South)},
        {"E_IN", as::portIn(Dir::East)},
        {"W_IN", as::portIn(Dir::West)},
        {"N_OUT", as::portOut(Dir::North)},
        {"S_OUT", as::portOut(Dir::South)},
        {"E_OUT", as::portOut(Dir::East)},
        {"W_OUT", as::portOut(Dir::West)},
    };
    for (const auto &[name, addr] : ports)
        if (s == name)
            return addr;
    if (s == "ZERO")
        return as::kZeroAddr;
    if (s == "NULL")
        return as::kNullAddr;
    fatal("parseAddr: cannot parse '", text, "'");
}

Instruction
assembleInstruction(const std::string &text)
{
    // Tokenize around the punctuation we care about.
    std::string normalized;
    normalized.reserve(text.size() + 8);
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == ',') {
            normalized += ' ';
        } else if (c == '-' && i + 1 < text.size() &&
                   text[i + 1] == '>') {
            normalized += " -> ";
            ++i;
        } else {
            normalized += c;
        }
    }

    std::istringstream in(normalized);
    std::vector<std::string> tokens;
    for (std::string tok; in >> tok;)
        tokens.push_back(tok);
    fatalIf(tokens.empty(), "assembleInstruction: empty input");

    Instruction inst;
    const auto op = upper(tokens[0]);
    std::size_t pos = 1;
    if (op == "NOP") {
        inst.op = OpCode::Nop;
    } else if (op == "HOLD") {
        inst.op = OpCode::Hold;
    } else {
        static const std::pair<const char *, OpCode> ops[] = {
            {"SVMAC", OpCode::SvMac},   {"VVMAC", OpCode::VvMac},
            {"VVMACW", OpCode::VvMacW}, {"VADD", OpCode::VAdd},
            {"VMOV", OpCode::VMov},     {"VFLUSH", OpCode::VFlush},
        };
        bool found = false;
        for (const auto &[name, code] : ops) {
            if (op == name) {
                inst.op = code;
                found = true;
                break;
            }
        }
        fatalIf(!found, "assembleInstruction: unknown opcode '",
                tokens[0], "'");

        // op1 [op2] -> res
        fatalIf(pos >= tokens.size(),
                "assembleInstruction: missing operands in '", text,
                "'");
        inst.op1 = parseAddr(tokens[pos++]);
        if (pos < tokens.size() && tokens[pos] != "->")
            inst.op2 = parseAddr(tokens[pos++]);
        fatalIf(pos >= tokens.size() || tokens[pos] != "->",
                "assembleInstruction: expected '->' in '", text, "'");
        ++pos;
        fatalIf(pos >= tokens.size(),
                "assembleInstruction: missing destination in '", text,
                "'");
        inst.res = parseAddr(tokens[pos++]);
    }

    // Optional route list and hold flag.
    for (; pos < tokens.size(); ++pos) {
        auto tok = upper(tokens[pos]);
        // Strip brackets that survived tokenization. Uses the
        // erase-remove idiom rather than C++20 std::erase so the file
        // also survives C++17 toolchain probes.
        tok.erase(std::remove(tok.begin(), tok.end(), '['), tok.end());
        tok.erase(std::remove(tok.begin(), tok.end(), ']'), tok.end());
        if (tok.empty())
            continue;
        if (tok == "N>S")
            inst.route |= kRouteN2S;
        else if (tok == "W>E")
            inst.route |= kRouteW2E;
        else if (tok == "S>N")
            inst.route |= kRouteS2N;
        else if (tok == "E>W")
            inst.route |= kRouteE2W;
        else if (tok == "{HOLD}")
            inst.hold = true;
        else
            fatal("assembleInstruction: unexpected token '",
                  tokens[pos], "' in '", text, "'");
    }
    return inst;
}

} // namespace canon
