/**
 * @file
 * Textual instruction assembler: the inverse of
 * Instruction::toString(). Useful for writing spatial-mode programs
 * and tests as text, and for round-tripping disassembled streams.
 *
 * Grammar (case-insensitive opcodes, whitespace tolerant):
 *
 *   inst    := op [ operand "," operand "->" operand ]
 *              [ "[" route+ "]" ] [ "{hold}" ]
 *   op      := NOP | SVMAC | VVMAC | VVMACW | VADD | VMOV | VFLUSH
 *              | HOLD
 *   operand := DMEM "[" n "]" | SPAD "[" n "]" | R n
 *              | N_IN | S_IN | E_IN | W_IN
 *              | N_OUT | S_OUT | E_OUT | W_OUT | ZERO | NULL
 *   route   := N>S | W>E | S>N | E>W
 */

#ifndef CANON_ISA_ASSEMBLER_HH
#define CANON_ISA_ASSEMBLER_HH

#include <string>

#include "isa/instruction.hh"

namespace canon
{

/** Parse one instruction; throws FatalError with a diagnostic. */
Instruction assembleInstruction(const std::string &text);

/** Parse an operand address, e.g. "DMEM[3]", "W_IN", "R2". */
Addr parseAddr(const std::string &text);

} // namespace canon

#endif // CANON_ISA_ASSEMBLER_HH
