/**
 * @file
 * The unified PE address space (Section 3.1).
 *
 * "To simplify the instruction format, the scratchpad, data memory,
 *  router, and SIMD registers share a unified address space. The
 *  specific memory accessed or NoC switching action is inferred from
 *  the address."
 *
 * Layout (16-bit addresses, vector-granular):
 *
 *   0x0000 .. 0x03FF   data memory, 1024 x Vec4<Elem>  (4 KB)
 *   0x0400 .. 0x04FF   scratchpad entries (up to 256)
 *   0x0500 .. 0x050F   SIMD vector registers R0..R15
 *   0x0510 .. 0x0513   router input ports  (N, S, E, W)
 *   0x0520 .. 0x0523   router output ports (N, S, E, W)
 *   0x05F0             ZERO: reads as the zero vector
 *   0x05FF             NULL: writes are discarded, reads are invalid
 */

#ifndef CANON_ISA_ADDRESS_SPACE_HH
#define CANON_ISA_ADDRESS_SPACE_HH

#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace canon
{

enum class AddrRegion : std::uint8_t
{
    Dmem,
    Spad,
    Reg,
    PortIn,
    PortOut,
    Zero,
    Null,
    Invalid
};

namespace addrspace
{

constexpr Addr kDmemBase = 0x0000;
constexpr Addr kDmemSize = 0x0400; // vec slots
constexpr Addr kSpadBase = 0x0400;
constexpr Addr kSpadSize = 0x0100;
constexpr Addr kRegBase = 0x0500;
constexpr Addr kRegSize = 0x0010;
constexpr Addr kPortInBase = 0x0510;
constexpr Addr kPortOutBase = 0x0520;
constexpr Addr kZeroAddr = 0x05F0;
constexpr Addr kNullAddr = 0x05FF;

/** Classify an address. */
AddrRegion region(Addr a);

/** Offset of @p a within its region (slot index / register number). */
Addr offset(Addr a);

inline Addr
dmem(int slot)
{
    panicIf(slot < 0 || slot >= kDmemSize, "dmem slot ", slot,
            " out of range");
    return static_cast<Addr>(kDmemBase + slot);
}

inline Addr
spad(int entry)
{
    panicIf(entry < 0 || entry >= kSpadSize, "spad entry ", entry,
            " out of range");
    return static_cast<Addr>(kSpadBase + entry);
}

inline Addr
reg(int r)
{
    panicIf(r < 0 || r >= kRegSize, "register ", r, " out of range");
    return static_cast<Addr>(kRegBase + r);
}

inline Addr
portIn(Dir d)
{
    return static_cast<Addr>(kPortInBase + static_cast<int>(d));
}

inline Addr
portOut(Dir d)
{
    return static_cast<Addr>(kPortOutBase + static_cast<int>(d));
}

/** Human-readable form, e.g. "DMEM[12]", "S_OUT", "R3". */
std::string toString(Addr a);

} // namespace addrspace
} // namespace canon

#endif // CANON_ISA_ADDRESS_SPACE_HH
