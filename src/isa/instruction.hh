/**
 * @file
 * The Canon PE instruction (Section 3.1):
 *
 *     <inst> ::= <op> <op1_addr> <op2_addr> <res_addr>
 *
 * plus the ROUTER_CONF fields visible in Figure 4: a pass-through route
 * mask that switches the circuit NoC independently of the compute
 * operands (used for psum bypass N->S and meta/data forwarding W->E),
 * and the spatial-mode hold bit of Appendix D.
 *
 * Instructions are encodable to a 64-bit word; encode/decode round-trips
 * exactly (property-tested), which is what travels on the instruction-
 * dedicated NoC.
 */

#ifndef CANON_ISA_INSTRUCTION_HH
#define CANON_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/address_space.hh"
#include "isa/opcode.hh"

namespace canon
{

/** Pass-through routes switchable by one instruction. */
enum RouteBit : std::uint8_t
{
    kRouteN2S = 1 << 0, //!< forward north-in to south-out (psum bypass)
    kRouteW2E = 1 << 1, //!< forward west-in to east-out (operand stream)
    kRouteS2N = 1 << 2,
    kRouteE2W = 1 << 3,
};

struct Instruction
{
    OpCode op = OpCode::Nop;
    Addr op1 = addrspace::kNullAddr;
    Addr op2 = addrspace::kNullAddr;
    Addr res = addrspace::kNullAddr;
    std::uint8_t route = 0;
    bool hold = false;

    bool isNop() const { return op == OpCode::Nop && route == 0; }

    /** Pack into the 64-bit word carried by the instruction NoC. */
    std::uint64_t encode() const;

    /** Unpack; panics on an illegal opcode field. */
    static Instruction decode(std::uint64_t word);

    /** Disassemble, e.g. "SVMAC W_IN, DMEM[3] -> SPAD[1] [N>S]". */
    std::string toString() const;

    friend bool
    operator==(const Instruction &a, const Instruction &b)
    {
        return a.op == b.op && a.op1 == b.op1 && a.op2 == b.op2 &&
               a.res == b.res && a.route == b.route && a.hold == b.hold;
    }
};

/** A NOP instruction constant. */
inline Instruction
nopInst()
{
    return Instruction{};
}

} // namespace canon

#endif // CANON_ISA_INSTRUCTION_HH
