#include "engine/registry.hh"

#include <sstream>

#include "workloads/models.hh"

namespace canon
{
namespace engine
{

namespace
{

std::string
pad(const std::string &s, std::size_t width)
{
    return s.size() >= width
               ? s + " "
               : s + std::string(width - s.size(), ' ');
}

std::string
join(const std::vector<std::string> &items)
{
    std::string out;
    for (const auto &item : items) {
        if (!out.empty())
            out += " ";
        out += item;
    }
    return out;
}

} // namespace

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = [] {
        // Only the prose is declared here; the option columns are
        // derived from the relevance matrix that also builds cache
        // keys and guards sweeps.
        const std::pair<cli::Workload, const char *> summaries[] = {
            {cli::Workload::Gemm,
             "dense GEMM (dense-cadence kernel)"},
            {cli::Workload::Spmm, "unstructured SpMM"},
            {cli::Workload::SpmmNm, "N:M structured SpMM"},
            {cli::Workload::Sddmm,
             "unstructured SDDMM (--sparsity is the output mask)"},
            {cli::Workload::SddmmWindow,
             "sliding-window SDDMM (--m is the sequence length,"
             " --n ignored)"},
        };
        std::vector<WorkloadInfo> out;
        for (const auto &[w, summary] : summaries) {
            cli::Options opt;
            opt.workload = w;
            out.push_back({w, cli::workloadName(w), summary,
                           cli::relevantScenarioKeys(opt)});
        }
        return out;
    }();
    return registry;
}

std::vector<ModelInfo>
modelRegistry()
{
    std::vector<ModelInfo> out;
    for (const auto &name : knownModelNames()) {
        cli::Options opt;
        opt.model = name;
        out.push_back({name, cli::relevantScenarioKeys(opt)});
    }
    return out;
}

const std::vector<std::string> &
archRegistry()
{
    return cli::knownArchs();
}

std::vector<std::string>
sweepableOptionKeys()
{
    return cli::scenarioOptionKeys();
}

std::string
listText()
{
    std::ostringstream oss;
    oss << "Workloads (--workload W; each consumes exactly the"
           " listed options):\n";
    for (const auto &w : workloadRegistry())
        oss << "  " << pad(w.name, 14) << pad(join(w.options), 31)
            << w.summary << "\n";

    oss << "\nModels (--model M; layer shapes are pinned by the"
           " model):\n";
    for (const auto &m : modelRegistry())
        oss << "  " << pad(m.name, 16) << join(m.options) << "\n";

    oss << "\nArchitectures (--arch A[,A...]): "
        << join(archRegistry()) << "\n";

    oss << "\nSweepable options (--sweep K=V1,V2,...):\n  "
        << join(sweepableOptionKeys()) << "\n";
    oss << "Fabric options (relevant to every scenario): "
        << join(cli::fabricOptionKeys()) << "\n";
    return oss.str();
}

} // namespace engine
} // namespace canon
