/**
 * @file
 * The observability report: everything one Engine submission observed,
 * frozen into a value and rendered into the three machine-readable
 * outputs -- the sampled time-series CSV (--series-out), the Chrome
 * trace-event JSON (--trace-out), and the structured per-scenario
 * stats dump (--stats-json).
 *
 * A ResultSet carries an ObsReport so canonsim, the 13 figure benches,
 * and embedders all get the same outputs from the same flags without
 * re-implementing any formatting. Every emitted byte is a function of
 * simulated behaviour and the scenario expansion only: the trace
 * timeline is virtual (1 cycle = 1 us, scenarios serialized in
 * expansion order), so all three artifacts are byte-identical across
 * --jobs values and registration-shuffle seeds.
 */

#ifndef CANON_ENGINE_OBS_REPORT_HH
#define CANON_ENGINE_OBS_REPORT_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/store.hh"
#include "obs/collector.hh"
#include "runner/pool.hh"

namespace canon
{
namespace engine
{

/** One scenario's observation record, in expansion order. */
struct ObsScenario
{
    std::size_t index = 0; //!< global expansion index
    std::string point;     //!< sweep point label (may be empty)
    std::string error;     //!< scenario failure, if any
    /** Requested archs present in the result, in display order. */
    std::vector<std::string> archs;
    /** Per-arch execution profiles (keyed like archs). */
    CaseResult cases;
    std::shared_ptr<const obs::ScenarioObs> obs; //!< null when off
};

class ObsReport
{
  public:
    /** A default report is disabled: every writer is a no-op. */
    ObsReport() = default;

    bool enabled() const { return options_.enabled(); }
    const obs::ObsOptions &options() const { return options_; }
    const std::vector<ObsScenario> &scenarios() const
    {
        return scenarios_;
    }

    /**
     * Build from a finished pool run. Scenario indices/points/archs
     * come from the results (which carry their global expansion
     * indices through sharding); cache totals are snapshotted from
     * @p store when present.
     */
    static ObsReport
    build(const obs::ObsOptions &opt,
          const std::vector<runner::ScenarioResult> &results,
          const cache::ResultStore *store);

    /**
     * Build from a payload-level bench run: one label and one
     * (possibly null, e.g. cache-hit) observation per payload, in
     * submission order.
     */
    static ObsReport buildPayload(
        const obs::ObsOptions &opt,
        const std::vector<std::string> &labels,
        const std::vector<std::shared_ptr<const obs::ScenarioObs>>
            &observations,
        const cache::ResultStore *store);

    /** The sampled time series as one long-form CSV. */
    void writeSeriesCsv(std::ostream &os) const;

    /** The Chrome trace-event JSON document. */
    void writeTrace(std::ostream &os) const;

    /** The canon.stats.v2 structured stats dump. */
    void writeStatsJson(std::ostream &os) const;

    /** True when any observed run recorded cycle accounting. */
    bool hasAccounting() const;

    /**
     * Render the --cycle-accounting breakdown: per observed run, one
     * table with a fabric rollup row plus per-component rows, each
     * category as absolute cycles and percent of the component's
     * observed cycles.
     */
    void writeAccounting(std::ostream &os) const;

    /**
     * Write every output file the options request. Returns an empty
     * string on success, otherwise the first error message.
     */
    std::string writeOutputs() const;

  private:
    obs::ObsOptions options_;
    std::vector<ObsScenario> scenarios_;
    bool haveCacheTotals_ = false;
    cache::CacheStats cacheTotals_;
};

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_OBS_REPORT_HH
