/**
 * @file
 * The execution flags every canon entry point shares: worker count,
 * process shard, and result-cache directory/mode. canonsim, all 13
 * figure benches, and embedders configure an Engine from the same
 * CommonFlags value, and both CLI parsers (cli/options.cc and
 * bench/bench_util.cc) consume the --jobs/--shard/--cache-dir/--cache
 * grammar through the one parser below, so spellings, ranges, and
 * error messages cannot drift between the binaries.
 *
 * The header is deliberately a leaf: it depends only on the shard and
 * cache-mode value types, never on the options or engine layers, so
 * any CLI front end can embed a CommonFlags without pulling in the
 * simulator.
 */

#ifndef CANON_ENGINE_COMMON_FLAGS_HH
#define CANON_ENGINE_COMMON_FLAGS_HH

#include <string>

#include "cache/mode.hh"
#include "obs/options.hh"
#include "runner/shard.hh"

namespace canon
{
namespace engine
{

struct CommonFlags
{
    /**
     * Worker threads for batch execution; 0 means "the entry point's
     * default" (canonsim: 1; figure benches: the binary's declared
     * default, falling back to hardware concurrency).
     */
    int jobs = 0;

    /** This process's slice of the expanded job list (--shard i/n). */
    runner::Shard shard;

    /**
     * Content-addressed result cache directory (src/cache). Empty
     * disables caching; a non-empty directory is shared safely by
     * concurrent --jobs workers and separate --shard processes.
     */
    std::string cacheDir;
    cache::Mode cacheMode = cache::Mode::ReadWrite;

    /** --cache given explicitly (it requires --cache-dir). */
    bool cacheModeSet = false;

    /**
     * Observability: --sample-every, --series-out, --trace-out, and
     * --stats-json. Instrumentation-only; never part of the scenario
     * cache key and never changes simulated results.
     */
    obs::ObsOptions obs;
};

/** Outcome of offering one flag to parseCommonFlag. */
enum class FlagParse : int
{
    NotCommon, //!< not a common flag; the caller's grammar owns it
    Ok,        //!< consumed and applied
    Error,     //!< a common flag with a bad value; see the message
};

/** True for the keys parseCommonFlag recognizes. */
bool isCommonFlag(const std::string &key);

/**
 * True for the common keys that take no value (--cycle-accounting,
 * --host-timers). Callers skip value lookahead for these and offer
 * them to parseCommonFlag with an empty value.
 */
bool isCommonBoolFlag(const std::string &key);

/**
 * Offer one already-split "--key" / value pair to the common grammar.
 * Recognizes --jobs, --shard, --cache-dir, --cache, and the
 * observability keys --sample-every, --series-out, --trace-out,
 * --stats-json, --cycle-accounting, and --host-timers (the caller
 * handles --key=value splitting and value lookahead; boolean keys
 * are offered with an empty value). On Error, @p error holds the
 * message; on NotCommon nothing is touched.
 */
FlagParse parseCommonFlag(const std::string &key,
                          const std::string &value, CommonFlags &out,
                          std::string &error);

/**
 * Cross-flag validation, called once after the last flag: --cache
 * without --cache-dir, --series-out without --sample-every, and
 * --sample-every without any output flag are usage errors, and every
 * obs output path (--series-out/--trace-out/--stats-json) must name a
 * file in an existing writable directory -- checked here so a bad
 * path fails before the simulation runs, not after. Returns an empty
 * string on success, otherwise the message.
 */
std::string validateCommonFlags(const CommonFlags &flags);

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_COMMON_FLAGS_HH
