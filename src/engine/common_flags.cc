#include "engine/common_flags.hh"

#include <charconv>
#include <filesystem>

#include <unistd.h>

namespace canon
{
namespace engine
{

namespace
{

bool
parseInt(const std::string &s, int &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

/**
 * Fail-fast check for an output path: the parent directory must exist
 * and be writable *now*, so a typo'd --trace-out errors at parse time
 * instead of after the full simulation has run.
 */
std::string
checkOutputPath(const char *flag, const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path p(path);
    fs::path dir = p.parent_path();
    if (dir.empty())
        dir = ".";
    if (!fs::is_directory(dir, ec))
        return std::string("option '") + flag + "': directory '" +
               dir.string() + "' does not exist";
    if (::access(dir.c_str(), W_OK) != 0)
        return std::string("option '") + flag + "': directory '" +
               dir.string() + "' is not writable";
    if (fs::is_directory(p, ec))
        return std::string("option '") + flag + "': '" + path +
               "' is a directory";
    return {};
}

} // namespace

bool
isCommonFlag(const std::string &key)
{
    return key == "--jobs" || key == "--shard" ||
           key == "--cache-dir" || key == "--cache" ||
           key == "--sample-every" || key == "--series-out" ||
           key == "--trace-out" || key == "--stats-json" ||
           isCommonBoolFlag(key);
}

bool
isCommonBoolFlag(const std::string &key)
{
    return key == "--cycle-accounting" || key == "--host-timers";
}

FlagParse
parseCommonFlag(const std::string &key, const std::string &value,
                CommonFlags &out, std::string &error)
{
    if (key == "--jobs") {
        int v = 0;
        if (!parseInt(value, v) || v < 1 || v > 256) {
            error = "option '--jobs' expects an integer in [1, 256],"
                    " got '" + value + "'";
            return FlagParse::Error;
        }
        out.jobs = v;
        return FlagParse::Ok;
    }
    if (key == "--shard") {
        if (std::string err = runner::parseShard(value, out.shard);
            !err.empty()) {
            error = "option '--shard': " + err;
            return FlagParse::Error;
        }
        return FlagParse::Ok;
    }
    if (key == "--cache-dir") {
        if (value.empty()) {
            error = "option '--cache-dir' expects a path";
            return FlagParse::Error;
        }
        out.cacheDir = value;
        return FlagParse::Ok;
    }
    if (key == "--cache") {
        if (std::string err = cache::parseMode(value, out.cacheMode);
            !err.empty()) {
            error = err;
            return FlagParse::Error;
        }
        out.cacheModeSet = true;
        return FlagParse::Ok;
    }
    if (key == "--sample-every") {
        int v = 0;
        if (!parseInt(value, v) || v < 1 || v > 1'000'000'000) {
            error = "option '--sample-every' expects a cycle count in"
                    " [1, 1000000000], got '" + value + "'";
            return FlagParse::Error;
        }
        out.obs.sampleEvery = static_cast<std::uint64_t>(v);
        return FlagParse::Ok;
    }
    if (key == "--series-out") {
        if (value.empty()) {
            error = "option '--series-out' expects a path";
            return FlagParse::Error;
        }
        out.obs.seriesOut = value;
        return FlagParse::Ok;
    }
    if (key == "--trace-out") {
        if (value.empty()) {
            error = "option '--trace-out' expects a path";
            return FlagParse::Error;
        }
        out.obs.traceOut = value;
        return FlagParse::Ok;
    }
    if (key == "--stats-json") {
        if (value.empty()) {
            error = "option '--stats-json' expects a path";
            return FlagParse::Error;
        }
        out.obs.statsJsonOut = value;
        return FlagParse::Ok;
    }
    if (key == "--cycle-accounting" || key == "--host-timers") {
        if (!value.empty()) {
            error = "option '" + key + "' takes no value";
            return FlagParse::Error;
        }
        if (key == "--cycle-accounting")
            out.obs.cycleAccounting = true;
        else
            out.obs.hostTimers = true;
        return FlagParse::Ok;
    }
    return FlagParse::NotCommon;
}

std::string
validateCommonFlags(const CommonFlags &flags)
{
    if (flags.cacheModeSet && flags.cacheDir.empty())
        return "option '--cache' requires --cache-dir";
    if (!flags.obs.seriesOut.empty() && !flags.obs.sampling())
        return "option '--series-out' requires --sample-every";
    if (flags.obs.sampling() && flags.obs.seriesOut.empty() &&
        flags.obs.traceOut.empty() && flags.obs.statsJsonOut.empty())
        return "option '--sample-every' requires an output flag"
               " (--series-out, --trace-out, or --stats-json)";
    if (!flags.obs.seriesOut.empty())
        if (std::string err =
                checkOutputPath("--series-out", flags.obs.seriesOut);
            !err.empty())
            return err;
    if (!flags.obs.traceOut.empty())
        if (std::string err =
                checkOutputPath("--trace-out", flags.obs.traceOut);
            !err.empty())
            return err;
    if (!flags.obs.statsJsonOut.empty())
        if (std::string err =
                checkOutputPath("--stats-json", flags.obs.statsJsonOut);
            !err.empty())
            return err;
    return {};
}

} // namespace engine
} // namespace canon
