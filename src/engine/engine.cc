#include "engine/engine.hh"

#include <algorithm>
#include <thread>

#include "cache/payload.hh"
#include "runner/shard.hh"
#include "workloads/models.hh"

namespace canon
{
namespace engine
{

namespace
{

/** Run one workload case across the requested architectures. */
CaseResult
runSuiteCase(const cli::Options &opt)
{
    ArchSuite suite(opt.fabricConfig(), opt.archs);
    if (!opt.model.empty())
        return suite.model(opt.sparsitySet
                               ? modelByName(opt.model, opt.sparsity)
                               : modelByName(opt.model),
                           opt.seed);
    switch (opt.workload) {
      case cli::Workload::Gemm:
        return suite.gemm(opt.m, opt.k, opt.n, opt.seed);
      case cli::Workload::Spmm:
        return suite.spmm(opt.m, opt.k, opt.n, opt.sparsity,
                          opt.seed);
      case cli::Workload::SpmmNm:
        return suite.spmmNm(opt.m, opt.k, opt.n, opt.nmN, opt.nmM,
                            opt.seed);
      case cli::Workload::Sddmm:
        return suite.sddmm(opt.m, opt.k, opt.n, opt.sparsity,
                           opt.seed);
      case cli::Workload::SddmmWindow:
        return suite.sddmmWindow(opt.m, opt.k, opt.window, opt.seed);
    }
    return {};
}

} // namespace

CaseResult
runScenarioCases(const cli::Options &opt)
{
    // ArchSuite only simulates the selected architectures, so the
    // canon-only run needs no separate fast path; the filter below
    // just pins the result to exactly what was asked for.
    cli::Options o = opt;
    if (o.archs.empty()) // Options contract: empty means canon only
        o.archs.push_back("canon");
    CaseResult all = runSuiteCase(o);
    CaseResult r;
    for (const auto &a : o.archs) {
        auto it = all.find(a);
        if (it != all.end())
            r[a] = it->second;
    }
    return r;
}

EngineConfig
makeEngineConfig(const CommonFlags &flags, int default_jobs)
{
    EngineConfig cfg;
    cfg.jobs = flags.jobs > 0 ? flags.jobs : default_jobs;
    cfg.cacheDir = flags.cacheDir;
    cfg.cacheMode = flags.cacheMode;
    return cfg;
}

const char *
forecastName(ScenarioPlan::Forecast f)
{
    switch (f) {
      case ScenarioPlan::Forecast::Hit:
        return "hit";
      case ScenarioPlan::Forecast::Miss:
        return "miss";
      case ScenarioPlan::Forecast::Uncached:
        return "uncached";
    }
    return "?";
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      workers_(config_.jobs > 0
                   ? config_.jobs
                   : static_cast<int>(std::max(
                         1u, std::thread::hardware_concurrency()))),
      pool_(workers_)
{
    if (!config_.cacheDir.empty() &&
        config_.cacheMode != cache::Mode::Off)
        store_.emplace(config_.cacheDir, config_.cacheMode);
}

std::string
Engine::prepare()
{
    std::call_once(prepare_once_, [this] {
        if (store_)
            prepare_error_ = store_->prepare();
    });
    return prepare_error_;
}

std::string
Engine::cacheStatsLine() const
{
    return store_ ? store_->statsLine() : std::string();
}

ResultSet
Engine::rejected(const ScenarioRequest &req) const
{
    ResultSet rs;
    rs.status_ = ResultSet::Status::InvalidRequest;
    rs.error_ = req.error();
    rs.warnings_ = req.warnings();
    rs.shard_ = req.options().common.shard;
    return rs;
}

namespace
{

/**
 * The per-request cache report: hit/miss/store counts attributed to
 * exactly the results in @p results (via the pool's per-job flags),
 * never the store's process-lifetime totals -- under a shared
 * long-lived engine every submission must report its own delta.
 * Cancelled jobs never touched the store, so they count as neither
 * hits nor executed misses.
 */
std::string
perRequestCacheLine(
    const std::vector<runner::ScenarioResult> &results)
{
    cache::CacheStats delta;
    for (const auto &r : results) {
        if (r.cacheHit)
            ++delta.hits;
        else if (!r.cancelled())
            ++delta.misses;
        if (r.cacheStored)
            ++delta.stores;
    }
    return cache::statsLineText(delta);
}

} // namespace

ResultSet
Engine::execute(const std::vector<runner::SweepJob> &sharded,
                const ScenarioRequest &req, std::size_t total,
                const ResultCallback &onResult,
                const runner::CancelToken *cancel)
{
    ResultSet rs;
    rs.warnings_ = req.warnings();
    rs.total_jobs_ = total;
    rs.shard_ = req.options().common.shard;
    rs.single_ =
        req.options().sweepAxes.empty() && rs.shard_.whole();
    rs.results_ = pool_.run(sharded, runScenarioCases, store(),
                            onResult, cancel);
    if (store())
        rs.cache_stats_line_ = perRequestCacheLine(rs.results_);
    const obs::ObsOptions &obs_opt = req.options().common.obs;
    if (obs_opt.enabled())
        rs.obs_ = ObsReport::build(obs_opt, rs.results_, store());
    return rs;
}

ResultSet
Engine::run(const ScenarioRequest &req, const ResultCallback &onResult,
            const runner::CancelToken *cancel)
{
    // Validate a private copy: validation caches into the request's
    // mutable members without synchronization, so a const request
    // shared across threads must never be mutated through here.
    const ScenarioRequest local = req;
    if (!local.validate())
        return rejected(local);
    if (std::string err = prepare(); !err.empty()) {
        ResultSet rs;
        rs.status_ = ResultSet::Status::Failed;
        rs.error_ = err;
        rs.warnings_ = local.warnings();
        rs.shard_ = local.options().common.shard;
        return rs;
    }

    std::vector<runner::SweepJob> jobs = local.expand();
    const std::size_t total = jobs.size();
    const runner::Shard &shard = local.options().common.shard;
    if (!shard.whole()) {
        const auto [first, last] = runner::shardRange(shard, total);
        jobs = std::vector<runner::SweepJob>(
            jobs.begin() + static_cast<std::ptrdiff_t>(first),
            jobs.begin() + static_cast<std::ptrdiff_t>(last));
    }
    return execute(jobs, local, total, onResult, cancel);
}

std::vector<ResultSet>
Engine::runBatch(const std::vector<ScenarioRequest> &requests,
                 const ResultCallback &onResult,
                 const runner::CancelToken *cancel)
{
    // Validate and expand everything first so one global job list
    // can feed a single pool pass: concurrency then spans request
    // boundaries instead of draining one request at a time. Work on
    // private copies (see run()) so shared const requests are never
    // mutated through their validation cache.
    const std::vector<ScenarioRequest> local(requests.begin(),
                                             requests.end());
    std::vector<ResultSet> sets(local.size());
    std::vector<runner::SweepJob> all;
    struct Slice
    {
        bool runnable = false;
        std::size_t first = 0, count = 0, total = 0;
    };
    std::vector<Slice> slices(local.size());

    const std::string prepare_error = prepare();
    for (std::size_t r = 0; r < local.size(); ++r) {
        const ScenarioRequest &req = local[r];
        if (!req.validate()) {
            sets[r] = rejected(req);
            continue;
        }
        if (!prepare_error.empty()) {
            sets[r].status_ = ResultSet::Status::Failed;
            sets[r].error_ = prepare_error;
            sets[r].warnings_ = req.warnings();
            sets[r].shard_ = req.options().common.shard;
            continue;
        }
        std::vector<runner::SweepJob> jobs = req.expand();
        slices[r].total = jobs.size();
        const runner::Shard &shard = req.options().common.shard;
        if (!shard.whole()) {
            const auto [first, last] =
                runner::shardRange(shard, jobs.size());
            jobs = std::vector<runner::SweepJob>(
                jobs.begin() + static_cast<std::ptrdiff_t>(first),
                jobs.begin() + static_cast<std::ptrdiff_t>(last));
        }
        slices[r].runnable = true;
        slices[r].first = all.size();
        slices[r].count = jobs.size();
        all.insert(all.end(),
                   std::make_move_iterator(jobs.begin()),
                   std::make_move_iterator(jobs.end()));
    }

    std::vector<runner::ScenarioResult> results =
        pool_.run(all, runScenarioCases, store(), onResult, cancel);

    for (std::size_t r = 0; r < local.size(); ++r) {
        if (!slices[r].runnable)
            continue;
        ResultSet &rs = sets[r];
        rs.warnings_ = local[r].warnings();
        rs.total_jobs_ = slices[r].total;
        rs.shard_ = local[r].options().common.shard;
        rs.single_ = local[r].options().sweepAxes.empty() &&
                     rs.shard_.whole();
        rs.results_.assign(
            std::make_move_iterator(
                results.begin() +
                static_cast<std::ptrdiff_t>(slices[r].first)),
            std::make_move_iterator(
                results.begin() + static_cast<std::ptrdiff_t>(
                                      slices[r].first +
                                      slices[r].count)));
        if (store())
            rs.cache_stats_line_ = perRequestCacheLine(rs.results_);
        const obs::ObsOptions &obs_opt =
            local[r].options().common.obs;
        if (obs_opt.enabled())
            rs.obs_ = ObsReport::build(obs_opt, rs.results_, store());
    }
    return sets;
}

std::vector<ScenarioPlan>
Engine::plan(const ScenarioRequest &req)
{
    // Private copy, as in run().
    const ScenarioRequest local = req;
    if (!local.validate())
        return {};

    std::vector<runner::SweepJob> jobs = local.expand();
    const runner::Shard &shard = local.options().common.shard;
    if (!shard.whole()) {
        const auto [first, last] =
            runner::shardRange(shard, jobs.size());
        jobs = std::vector<runner::SweepJob>(
            jobs.begin() + static_cast<std::ptrdiff_t>(first),
            jobs.begin() + static_cast<std::ptrdiff_t>(last));
    }

    std::vector<ScenarioPlan> plans;
    plans.reserve(jobs.size());
    for (auto &job : jobs) {
        ScenarioPlan p;
        p.key = cache::scenarioKey(job.options);
        if (!store_) {
            p.forecast = ScenarioPlan::Forecast::Uncached;
        } else if (!store_->readsEnabled()) {
            // Write/Refresh modes execute every scenario regardless
            // of what is already stored.
            p.forecast = ScenarioPlan::Forecast::Miss;
        } else {
            // Mirror the pool's hit test exactly: a stored entry only
            // counts when it decodes to a non-empty result. Lookups
            // leave the hit/miss counters untouched.
            CaseResult decoded;
            auto payload = store_->lookup(p.key);
            p.forecast = payload &&
                                 cache::decodeCaseResult(*payload,
                                                         decoded) &&
                                 !decoded.empty()
                             ? ScenarioPlan::Forecast::Hit
                             : ScenarioPlan::Forecast::Miss;
        }
        p.job = std::move(job);
        plans.push_back(std::move(p));
    }
    return plans;
}

std::vector<std::string>
Engine::runPayloadBatch(const std::vector<PayloadJob> &jobs)
{
    // A missing cache directory degrades to computing everything
    // (lookups miss, stores fail quietly); callers that want to
    // surface the error check prepare() themselves first.
    prepare();
    return pool_.mapCached(
        jobs.size(),
        [&](std::size_t i) { return jobs[i].key; },
        [&](std::size_t i) { return jobs[i].compute(); }, store());
}

} // namespace engine
} // namespace canon
