/**
 * @file
 * The engine's introspection registry: what can run (workloads,
 * models, architectures) and which option keys shape each of them.
 *
 * Everything here is *derived* from the code that executes -- the
 * per-workload option lists come from cli::relevantScenarioKeys (the
 * PR-4 relevance matrix that also builds cache keys and guards
 * sweeps), the model list from workloads/models.cc's registry, the
 * architecture list from cli::knownArchs, and the sweepable-key list
 * from the CLI option grammar itself -- so `canonsim --list`, the
 * docs, and any embedder asking "what can I submit?" cannot drift
 * from what the engine actually accepts. A dedicated drift test
 * round-trips every advertised key through the option applier.
 */

#ifndef CANON_ENGINE_REGISTRY_HH
#define CANON_ENGINE_REGISTRY_HH

#include <string>
#include <vector>

#include "cli/options.hh"

namespace canon
{
namespace engine
{

/** One runnable workload and the option keys it consumes. */
struct WorkloadInfo
{
    cli::Workload workload;
    std::string name;    //!< canonical CLI spelling
    std::string summary; //!< one-line description
    /** Keys that shape its result, in canonical (cache-key) order. */
    std::vector<std::string> options;
};

/** One runnable model and the option keys it consumes. */
struct ModelInfo
{
    std::string name;
    std::vector<std::string> options;
};

/** Every workload, in CLI declaration order. */
const std::vector<WorkloadInfo> &workloadRegistry();

/** Every predefined model, in Figure-14 order. */
std::vector<ModelInfo> modelRegistry();

/** Every runnable architecture, in the paper's display order. */
const std::vector<std::string> &archRegistry();

/**
 * Every key a --sweep axis (or ScenarioRequest::set) accepts:
 * the scenario keys plus the always-relevant fabric keys.
 */
std::vector<std::string> sweepableOptionKeys();

/** The `canonsim --list` report, rendered from the tables above. */
std::string listText();

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_REGISTRY_HH
