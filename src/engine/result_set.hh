/**
 * @file
 * The result half of the canon::engine façade: everything one Engine
 * submission produced, plus the renderers that turn it into the
 * stats tables and CSVs every entry point prints.
 *
 * A ResultSet is a value: it owns its scenario outcomes outright and
 * never re-runs anything, so it can be returned across threads,
 * rendered repeatedly, or picked apart by an embedder (scenarios(),
 * profiles per architecture). The two render paths reproduce the
 * canonsim report formats byte for byte -- statsTable() is the
 * classic single-scenario per-architecture table, sweepTable() the
 * combined one-row-per-scenario-x-architecture sweep table -- which
 * is what keeps the CLI's output stable now that it routes through
 * the engine.
 *
 * Status taxonomy:
 *  - Ok: the request ran (individual scenarios may still have
 *    failed; see failureCount() and each scenario's error field).
 *  - InvalidRequest: the request never ran -- malformed option,
 *    malformed or irrelevant sweep axis. CLI exit code 2.
 *  - Failed: the engine could not execute it (cache directory could
 *    not be created). CLI exit code 1.
 */

#ifndef CANON_ENGINE_RESULT_SET_HH
#define CANON_ENGINE_RESULT_SET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hh"
#include "engine/obs_report.hh"
#include "runner/aggregate.hh"
#include "runner/pool.hh"
#include "runner/shard.hh"

namespace canon
{
namespace engine
{

/**
 * The per-architecture stats table for one scenario (the classic
 * canonsim single-run report): one row per requested architecture
 * that could run the workload, cycles through speedup-vs-canon.
 */
Table scenarioStatsTable(const cli::Options &opt,
                         const CaseResult &cases);

class ResultSet
{
  public:
    enum class Status
    {
        Ok,             //!< executed; scenarios hold their outcomes
        InvalidRequest, //!< rejected by request validation
        Failed,         //!< engine failure before any scenario ran
    };

    Status status() const { return status_; }
    bool ok() const { return status_ == Status::Ok; }

    /** Why the submission was rejected; empty when ok(). */
    const std::string &error() const { return error_; }

    /** Ignored-option notes from request validation. */
    const std::vector<std::string> &warnings() const
    {
        return warnings_;
    }

    /** Outcomes of this process's slice, in expansion order. */
    const std::vector<runner::ScenarioResult> &scenarios() const
    {
        return results_;
    }
    std::size_t size() const { return results_.size(); }

    /** Scenario count of the full, unsharded expansion. */
    std::size_t totalJobs() const { return total_jobs_; }

    /** The slice this set covers (whole() when unsharded). */
    const runner::Shard &shard() const { return shard_; }

    /**
     * True for the degenerate single-scenario submission (no sweep
     * axes, whole shard) -- the case canonsim renders with the
     * classic per-architecture report instead of the sweep table.
     */
    bool single() const { return single_; }

    /** Scenarios that produced no profiles (or threw). */
    std::size_t failureCount() const;

    /**
     * Scenarios skipped by a cancelled run (a subset of
     * failureCount(): each carries runner::kCancelledError).
     */
    std::size_t cancelledCount() const;

    /** Single-scenario per-architecture table (requires size() 1). */
    Table statsTable() const;

    /** Combined sweep table: a row per scenario x architecture. */
    Table sweepTable() const;

    /**
     * The cache report line ("cache: H hits, ...") for exactly this
     * submission -- a per-request delta computed from each result's
     * hit/store attribution, never the engine's process-lifetime
     * counters, so two clients of one shared warm engine each see
     * their own hit counts and "simulation jobs executed". Empty for
     * an uncached engine.
     */
    const std::string &cacheStatsLine() const
    {
        return cache_stats_line_;
    }

    /**
     * The observability report for this submission. Disabled (all
     * writers no-ops) unless the request's obs flags asked for
     * output; see obs_report.hh. Carries the per-scenario cycle
     * accounting (--cycle-accounting) and host phase telemetry
     * (--host-timers) alongside the series/trace/stats writers.
     */
    const ObsReport &obs() const { return obs_; }

  private:
    friend class Engine;

    Status status_ = Status::Ok;
    std::string error_;
    std::vector<std::string> warnings_;
    std::vector<runner::ScenarioResult> results_;
    std::size_t total_jobs_ = 0;
    runner::Shard shard_;
    bool single_ = false;
    std::string cache_stats_line_;
    ObsReport obs_;
};

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_RESULT_SET_HH
