#include "engine/obs_report.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <ostream>

#include "common/table.hh"
#include "obs/json.hh"
#include "obs/series.hh"
#include "obs/trace.hh"
#include "runner/aggregate.hh"

namespace canon
{
namespace engine
{

namespace
{

const char *
cacheEventName(obs::CacheEventKind k)
{
    switch (k) {
      case obs::CacheEventKind::Probe:
        return "probe";
      case obs::CacheEventKind::Hit:
        return "hit";
      case obs::CacheEventKind::Miss:
        return "miss";
      case obs::CacheEventKind::Store:
        return "store";
    }
    return "?";
}

/**
 * A scenario's span on the virtual timeline: the cycles it simulated,
 * falling back to the slowest recorded architecture for scenarios
 * that were satisfied from the cache (nothing ran, but the decoded
 * profiles are deterministic).
 */
std::uint64_t
scenarioDuration(const ObsScenario &s)
{
    if (s.obs && !s.obs->runs.empty()) {
        std::uint64_t d = 0;
        for (const auto &run : s.obs->runs)
            d += run.cycles;
        return d;
    }
    std::uint64_t mx = 0;
    for (const auto &[_, profile] : s.cases)
        mx = std::max(mx, profile.cycles);
    return mx;
}

/**
 * "<abs> <pct>%" cell: integer-only percent with one decimal digit
 * (round half up), so the rendered table is deterministic.
 */
std::string
catCell(std::uint64_t v, std::uint64_t total)
{
    const std::uint64_t pm =
        total == 0 ? 0 : (v * 1000 + total / 2) / total;
    return Table::fmtInt(v) + " " + std::to_string(pm / 10) + "." +
           std::to_string(pm % 10) + "%";
}

} // namespace

ObsReport
ObsReport::build(const obs::ObsOptions &opt,
                 const std::vector<runner::ScenarioResult> &results,
                 const cache::ResultStore *store)
{
    ObsReport rep;
    rep.options_ = opt;
    if (!opt.enabled())
        return rep;
    rep.scenarios_.reserve(results.size());
    for (const auto &r : results) {
        ObsScenario s;
        s.index = r.job.index;
        s.point = r.job.point;
        s.error = r.error;
        s.archs = runner::orderedArchs(r.job.options, r.cases);
        s.cases = r.cases;
        s.obs = r.obs;
        rep.scenarios_.push_back(std::move(s));
    }
    if (store) {
        rep.haveCacheTotals_ = true;
        rep.cacheTotals_ = store->stats();
    }
    return rep;
}

ObsReport
ObsReport::buildPayload(
    const obs::ObsOptions &opt, const std::vector<std::string> &labels,
    const std::vector<std::shared_ptr<const obs::ScenarioObs>>
        &observations,
    const cache::ResultStore *store)
{
    ObsReport rep;
    rep.options_ = opt;
    if (!opt.enabled())
        return rep;
    rep.scenarios_.reserve(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
        ObsScenario s;
        s.index = i;
        s.point = labels[i];
        if (i < observations.size())
            s.obs = observations[i];
        rep.scenarios_.push_back(std::move(s));
    }
    if (store) {
        rep.haveCacheTotals_ = true;
        rep.cacheTotals_ = store->stats();
    }
    return rep;
}

void
ObsReport::writeSeriesCsv(std::ostream &os) const
{
    if (!enabled())
        return;
    os << obs::kSeriesCsvHeader << '\n';
    for (const ObsScenario &s : scenarios_) {
        if (!s.obs)
            continue;
        for (std::size_t p = 0; p < s.obs->runs.size(); ++p)
            obs::writeSeriesCsv(os, s.index, p, s.obs->runs[p].series);
    }
}

void
ObsReport::writeTrace(std::ostream &os) const
{
    if (!enabled())
        return;
    using obs::TraceEvent;
    std::vector<TraceEvent> ev;

    {
        TraceEvent p;
        p.phase = 'M';
        p.name = "process_name";
        p.sargs.push_back({"name", "canon"});
        ev.push_back(std::move(p));
    }
    auto threadName = [&](int tid, const char *name) {
        TraceEvent m;
        m.phase = 'M';
        m.name = "thread_name";
        m.tid = tid;
        m.sargs.push_back({"name", name});
        ev.push_back(std::move(m));
    };
    threadName(0, "engine");
    threadName(1, "sim");

    // Virtual timeline: scenarios tile back to back in expansion
    // order, so the trace bytes are independent of worker scheduling.
    std::uint64_t now = 0;
    for (const ObsScenario &s : scenarios_) {
        const std::uint64_t dur = scenarioDuration(s);

        TraceEvent span;
        span.phase = 'X';
        span.name = "scenario " + std::to_string(s.index);
        span.cat = "engine";
        span.ts = now;
        span.dur = dur;
        span.tid = 0;
        span.args.push_back({"index", s.index});
        if (!s.point.empty())
            span.sargs.push_back({"point", s.point});
        if (!s.error.empty())
            span.sargs.push_back({"error", s.error});
        ev.push_back(std::move(span));

        if (!s.obs)
            continue;

        for (obs::CacheEventKind k : s.obs->cacheEvents) {
            TraceEvent i;
            i.phase = 'i';
            i.name = std::string("cache.") + cacheEventName(k);
            i.cat = "cache";
            // Probe/hit/miss happen before the scenario's simulated
            // window, stores after it completes.
            i.ts = k == obs::CacheEventKind::Store ? now + dur : now;
            i.tid = 0;
            i.args.push_back({"scenario", s.index});
            ev.push_back(std::move(i));
        }

        std::uint64_t t = now;
        for (std::size_t p = 0; p < s.obs->runs.size(); ++p) {
            const auto &run = s.obs->runs[p];
            TraceEvent x;
            x.phase = 'X';
            x.name = "sim.run";
            x.cat = "sim";
            x.ts = t;
            x.dur = run.cycles;
            x.tid = 1;
            x.args.push_back({"scenario", s.index});
            x.args.push_back({"pass", p});
            x.args.push_back({"cycles", run.cycles});
            ev.push_back(std::move(x));

            // Counter tracks: one 'C' event per metric per capture,
            // carrying every component's cumulative value. Series of
            // one metric are contiguous (the set is (metric,
            // component)-ordered) and all series share the same
            // capture cycles.
            const auto &series = run.series.series;
            const std::size_t npts =
                series.empty() ? 0 : series[0].points.size();
            for (std::size_t k = 0; k < npts; ++k) {
                std::size_t i = 0;
                while (i < series.size()) {
                    std::size_t j = i;
                    TraceEvent c;
                    c.phase = 'C';
                    c.name = series[i].metric;
                    c.cat = "sample";
                    c.ts = t + series[i].points[k].cycle;
                    c.tid = 1;
                    while (j < series.size() &&
                           series[j].metric == series[i].metric) {
                        c.args.push_back({series[j].component,
                                          series[j].points[k].value});
                        ++j;
                    }
                    ev.push_back(std::move(c));
                    i = j;
                }
            }
            t += run.cycles;
        }
        now += dur;
    }
    obs::writeChromeTrace(os, ev);
}

bool
ObsReport::hasAccounting() const
{
    for (const ObsScenario &s : scenarios_) {
        if (!s.obs)
            continue;
        for (const auto &run : s.obs->runs)
            if (!run.accounting.empty())
                return true;
    }
    return false;
}

void
ObsReport::writeAccounting(std::ostream &os) const
{
    for (const ObsScenario &s : scenarios_) {
        if (!s.obs)
            continue;
        for (std::size_t p = 0; p < s.obs->runs.size(); ++p) {
            const obs::AccountingSet &acct =
                s.obs->runs[p].accounting;
            if (acct.empty())
                continue;

            std::string title =
                "Cycle accounting -- scenario " +
                std::to_string(s.index);
            if (!s.point.empty())
                title += " (" + s.point + ")";
            if (s.obs->runs.size() > 1)
                title += ", pass " + std::to_string(p);
            title += ": " + Table::fmtInt(acct.cycles) +
                     " observed cycles";

            Table t(title);
            std::vector<std::string> head{"Component", "Cycles"};
            for (int c = 0; c < obs::kCycleCatCount; ++c)
                head.push_back(obs::cycleCatName(c));
            t.header(std::move(head));

            // Fabric rollup first, then every component.
            obs::ComponentAccount fabric;
            fabric.component = "fabric";
            for (const auto &comp : acct.components)
                for (int c = 0; c < obs::kCycleCatCount; ++c)
                    fabric.cycles[static_cast<std::size_t>(c)] +=
                        comp.cycles[static_cast<std::size_t>(c)];
            auto addRow = [&t](const obs::ComponentAccount &a) {
                const std::uint64_t total = a.total();
                std::vector<std::string> row{a.component,
                                             Table::fmtInt(total)};
                for (int c = 0; c < obs::kCycleCatCount; ++c)
                    row.push_back(catCell(
                        a.cycles[static_cast<std::size_t>(c)],
                        total));
                t.addRow(std::move(row));
            };
            addRow(fabric);
            for (const auto &comp : acct.components)
                addRow(comp);
            t.print(os);
        }
    }
}

void
ObsReport::writeStatsJson(std::ostream &os) const
{
    if (!enabled())
        return;
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "canon.stats.v2");
    w.key("scenarios");
    w.beginArray();
    for (const ObsScenario &s : scenarios_) {
        w.beginObject();
        w.kv("index", static_cast<std::uint64_t>(s.index));
        w.kv("point", s.point);
        if (!s.error.empty())
            w.kv("error", s.error);
        if (!s.archs.empty()) {
            w.key("archs");
            w.beginArray();
            for (const std::string &a : s.archs) {
                auto it = s.cases.find(a);
                if (it == s.cases.end())
                    continue;
                const ExecutionProfile &p = it->second;
                w.beginObject();
                w.kv("arch", a);
                w.kv("cycles", p.cycles);
                w.kv("peCount", p.peCount);
                w.key("activity");
                w.beginObject();
                for (const auto &[k, v] : p.activity)
                    w.kv(k, v);
                w.endObject();
                w.endObject();
            }
            w.endArray();
        }
        if (s.obs) {
            if (!s.obs->cacheEvents.empty()) {
                w.key("cache");
                w.beginArray();
                for (obs::CacheEventKind k : s.obs->cacheEvents)
                    w.value(cacheEventName(k));
                w.endArray();
            }
            // Only executed scenarios carry simulation runs; a
            // cache-hit scenario simulated nothing.
            if (!s.obs->runs.empty()) {
                w.key("sim");
                w.beginObject();
                w.key("runs");
                w.beginArray();
                for (const auto &run : s.obs->runs) {
                    w.beginObject();
                    w.kv("cycles", run.cycles);
                    if (!run.flat.empty()) {
                        w.key("stats");
                        w.beginObject();
                        for (const auto &[k, v] : run.flat)
                            w.kv(k, v);
                        w.endObject();
                    }
                    const obs::AccountingSet &acct = run.accounting;
                    if (!acct.empty()) {
                        w.key("accounting");
                        w.beginObject();
                        w.kv("cycles", acct.cycles);
                        // An array (not an object) keeps the fixed
                        // component order explicit.
                        w.key("components");
                        w.beginArray();
                        for (const auto &comp : acct.components) {
                            w.beginObject();
                            w.kv("component", comp.component);
                            for (int c = 0;
                                 c < obs::kCycleCatCount; ++c)
                                w.kv(obs::cycleCatName(c),
                                     comp.cycles[static_cast<
                                         std::size_t>(c)]);
                            w.kv("total", comp.total());
                            w.endObject();
                        }
                        w.endArray();
                        w.endObject();
                    }
                    if (!acct.histograms.empty()) {
                        w.key("histograms");
                        w.beginArray();
                        for (const auto &h : acct.histograms) {
                            w.beginObject();
                            w.kv("metric", h.metric);
                            w.kv("component", h.component);
                            w.kv("samples", h.hist.samples());
                            w.key("counts");
                            w.beginArray();
                            for (std::uint64_t c : h.hist.counts())
                                w.value(c);
                            w.endArray();
                            w.endObject();
                        }
                        w.endArray();
                    }
                    w.endObject();
                }
                w.endArray();
                w.endObject();
            }
            if (s.obs->host.measured) {
                w.key("host");
                w.beginObject();
                w.kv("queueWaitUs", s.obs->host.queueWaitUs);
                w.kv("cacheProbeUs", s.obs->host.cacheProbeUs);
                w.kv("simUs", s.obs->host.simUs);
                w.kv("encodeUs", s.obs->host.encodeUs);
                w.kv("cacheStoreUs", s.obs->host.cacheStoreUs);
                w.endObject();
            }
        }
        w.endObject();
    }
    w.endArray();
    if (haveCacheTotals_) {
        w.key("cache");
        w.beginObject();
        w.kv("hits", cacheTotals_.hits);
        w.kv("misses", cacheTotals_.misses);
        w.kv("stores", cacheTotals_.stores);
        w.endObject();
    }
    w.endObject();
    os << '\n';
}

std::string
ObsReport::writeOutputs() const
{
    auto writeFile =
        [](const std::string &path,
           const std::function<void(std::ostream &)> &writer)
        -> std::string {
        std::ofstream os(path, std::ios::binary);
        if (!os)
            return "cannot open '" + path + "' for writing";
        writer(os);
        os.flush();
        if (!os)
            return "error writing '" + path + "'";
        return {};
    };

    if (!options_.seriesOut.empty())
        if (std::string err =
                writeFile(options_.seriesOut,
                          [this](std::ostream &os) {
                              writeSeriesCsv(os);
                          });
            !err.empty())
            return err;
    if (!options_.traceOut.empty())
        if (std::string err = writeFile(options_.traceOut,
                                        [this](std::ostream &os) {
                                            writeTrace(os);
                                        });
            !err.empty())
            return err;
    if (!options_.statsJsonOut.empty())
        if (std::string err = writeFile(options_.statsJsonOut,
                                        [this](std::ostream &os) {
                                            writeStatsJson(os);
                                        });
            !err.empty())
            return err;
    return {};
}

} // namespace engine
} // namespace canon
