/**
 * @file
 * Typed scenario requests for the canon::engine façade.
 *
 * A ScenarioRequest is everything one submission to the Engine can
 * say: the workload (or whole model), its shape and sparsity knobs,
 * the fabric configuration, the architecture set, optional sweep axes
 * (the cartesian product expands into one scenario per combination),
 * and the process shard. It replaces the ad-hoc option plumbing the
 * entry points used to hand-wire: the CLI builds one from parsed
 * argv, benches and embedders build one with the typed setters, and
 * both get exactly the same validation.
 *
 * Validation happens at construction time, through the same grammar
 * the CLI parser uses (cli::applyScenarioOption and
 * runner::SweepSpec::addAxis), so a request cannot drift from what
 * canonsim accepts: every setter validates immediately and records
 * the first failure, and validate() finishes the job against the
 * per-workload relevance matrix (a sweep axis no expanded scenario
 * consumes is an error; an explicitly set option the selected
 * workload ignores becomes a warning). Error and warning texts are
 * byte-identical to the CLI's, which is asserted by the engine tests.
 *
 * Thread-safety: build a request on one thread, then share it const.
 * validate() caches its verdict into mutable members without
 * synchronization, so either call it once before sharing or leave it
 * to the Engine -- the run/plan entry points validate a private copy
 * and never mutate the caller's request.
 */

#ifndef CANON_ENGINE_REQUEST_HH
#define CANON_ENGINE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cli/options.hh"
#include "runner/sweep.hh"

namespace canon
{
namespace engine
{

class ScenarioRequest
{
  public:
    /** Defaults: spmm 256x256x64 s=0.7 on the paper fabric, canon. */
    ScenarioRequest() = default;

    /**
     * Adopt already-parsed CLI options (the canonsim adapter). The
     * sweep axes and explicit-key list carry over; axis validation
     * runs immediately, exactly as the typed sweep() setter would.
     */
    static ScenarioRequest fromOptions(const cli::Options &opt);

    // ---- scenario setters ---------------------------------------------
    //
    // Every setter validates through the CLI option grammar and
    // returns *this for chaining; the first failure is latched and
    // reported by error() (later setters still apply when they are
    // themselves valid). Typed setters funnel through set(), so a
    // value a setter accepts is exactly a value the CLI accepts.

    /** Apply one scenario/fabric option by bare key ("m", "nm"...). */
    ScenarioRequest &set(const std::string &key,
                         const std::string &value);

    ScenarioRequest &workload(cli::Workload w);
    ScenarioRequest &model(const std::string &name);
    ScenarioRequest &shape(std::int64_t m, std::int64_t k,
                           std::int64_t n);
    ScenarioRequest &sparsity(double s);
    ScenarioRequest &nm(int n, int m);
    ScenarioRequest &window(std::int64_t w);

    /**
     * RNG seed. The CLI grammar restricts seeds to [0, 2^63 - 1];
     * a larger value latches a validation error (with the grammar's
     * range message) rather than being accepted silently.
     */
    ScenarioRequest &seed(std::uint64_t s);
    ScenarioRequest &fabric(int rows, int cols);
    ScenarioRequest &spad(int entries);
    ScenarioRequest &dmem(int slots);
    ScenarioRequest &clockGhz(double ghz);

    /**
     * Replace the architecture set. Names are validated against the
     * arch registry; "all" selects every architecture. An empty list
     * means canon only (the Options contract).
     */
    ScenarioRequest &archs(const std::vector<std::string> &names);

    /**
     * Add one sweep axis (comma-separated values). Axes combine as a
     * cartesian product; values are validated now, against the same
     * grammar as the CLI, so expansion later cannot fail.
     */
    ScenarioRequest &sweep(const std::string &key,
                           const std::string &values);

    /** Own slice i of n of the expanded scenario list. */
    ScenarioRequest &shard(int index, int count);

    // ---- validation ---------------------------------------------------

    /**
     * Finish validation: build the sweep expansion and check it
     * against the per-workload relevance matrix. Idempotent and
     * cheap to repeat; Engine::run calls it implicitly. Returns true
     * when the request is runnable.
     */
    bool validate() const;

    /** First validation failure; empty when the request is valid. */
    const std::string &error() const;

    /**
     * Ignored-option notes for a single (no-axis) request: one
     * "option '--X' is ignored by workload 'Y'" line per explicitly
     * set option the selected workload or model does not consume.
     * Filled by validate().
     */
    const std::vector<std::string> &warnings() const;

    // ---- inspection ---------------------------------------------------

    /** The underlying options value (the scenario vocabulary). */
    const cli::Options &options() const { return opt_; }

    /** Number of scenarios the full (unsharded) expansion yields. */
    std::size_t jobCount() const;

    /**
     * The full unsharded expansion, in the deterministic axis order
     * (last-declared axis fastest). Requires a valid request; an
     * invalid one yields an empty list.
     */
    std::vector<runner::SweepJob> expand() const;

  private:
    void invalidate();
    void fail(const std::string &message);

    cli::Options opt_;
    runner::SweepSpec spec_;
    std::string error_;

    // validate() is logically const: it derives state from the
    // setters' inputs without changing what the request means.
    mutable bool validated_ = false;
    mutable std::string validation_error_;
    mutable std::vector<std::string> warnings_;
};

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_REQUEST_HH
