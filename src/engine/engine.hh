/**
 * @file
 * canon::engine -- the one typed façade every entry point runs
 * through.
 *
 * An Engine owns the execution machinery that canonsim, the 13
 * figure benches, the tests, and embedders used to hand-wire
 * individually: the runner::ScenarioPool worker pool, the optional
 * cache::ResultStore, and (via the registry header) the
 * workload/model/architecture tables. Callers submit typed
 * ScenarioRequests and get ResultSets back:
 *
 *     engine::Engine eng(engine::EngineConfig{.jobs = 4});
 *     auto rs = eng.run(engine::ScenarioRequest()
 *                           .workload(cli::Workload::Spmm)
 *                           .shape(256, 256, 64)
 *                           .sparsity(0.7)
 *                           .archs({"canon", "zed"}));
 *
 * Determinism contract (inherited from the runner layer): results
 * land at their expansion index, so a ResultSet -- and any table or
 * CSV rendered from it -- is byte-identical for every worker count;
 * the streaming overload delivers results in that same index order.
 *
 * Thread-safety: one Engine may be shared across threads after
 * construction. The run()/runBatch()/plan() entry points spawn
 * their own workers and only touch internally synchronized engine
 * state: the store's atomic counters, and the lazy cache-directory
 * preparation (a std::call_once). They are non-const because they
 * own that lazily prepared state.
 */

#ifndef CANON_ENGINE_ENGINE_HH
#define CANON_ENGINE_ENGINE_HH

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/store.hh"
#include "engine/common_flags.hh"
#include "engine/request.hh"
#include "engine/result_set.hh"
#include "runner/cancel.hh"
#include "runner/pool.hh"

namespace canon
{
namespace engine
{

struct EngineConfig
{
    /** Worker threads; <= 0 means hardware concurrency. */
    int jobs = 0;

    /** Result-cache directory; empty (or Mode::Off) runs uncached. */
    std::string cacheDir;
    cache::Mode cacheMode = cache::Mode::ReadWrite;
};

/**
 * EngineConfig from parsed CommonFlags. @p default_jobs fills in
 * when --jobs was absent (canonsim passes 1, benches their declared
 * default); 0 falls through to hardware concurrency.
 */
EngineConfig makeEngineConfig(const CommonFlags &flags,
                              int default_jobs = 0);

/**
 * Streaming result consumer: called once per scenario, in expansion
 * order, as soon as the scenario and every lower-indexed one have
 * finished. Calls are serialized (never concurrent with each other)
 * but run on pool worker threads while later scenarios are still
 * executing, so the callback must not block for long and must not
 * touch the pool.
 */
using ResultCallback =
    std::function<void(const runner::ScenarioResult &)>;

/**
 * One entry of a dry-run plan: the scenario, its cache identity, and
 * what the engine predicts the cache will do with it.
 */
struct ScenarioPlan
{
    runner::SweepJob job;
    cache::ScenarioKey key;

    enum class Forecast
    {
        Hit,      //!< a decodable entry is already in the store
        Miss,     //!< the scenario would execute (and maybe store)
        Uncached, //!< no store configured; always executes
    };
    Forecast forecast = Forecast::Uncached;
};

/** Plan forecast as the word dry-run reports print. */
const char *forecastName(ScenarioPlan::Forecast f);

/**
 * One unit of a payload-level batch (the figure-bench submission
 * path): a cache identity plus the computation that produces the
 * payload bytes on a miss.
 */
struct PayloadJob
{
    cache::ScenarioKey key;
    std::function<std::string()> compute;
};

class Engine
{
  public:
    explicit Engine(EngineConfig config = {});

    /** Resolved worker-thread count (never 0). */
    int workers() const { return workers_; }

    /**
     * Create the cache directory if this engine is cached. Returns an
     * empty string on success, otherwise the error message. Runs
     * once (thread-safely); called implicitly by the run entry
     * points, or directly to report a bad cache directory before
     * submitting work.
     */
    std::string prepare();

    /** The result store, or nullptr for an uncached engine. */
    const cache::ResultStore *store() const
    {
        return store_ ? &*store_ : nullptr;
    }

    /**
     * The "cache: H hits, M misses, S stored; ..." report line;
     * empty for an uncached engine. Counters accumulate across this
     * engine's runs -- the process-lifetime view. Each ResultSet
     * carries its own per-request delta instead (the line a client
     * of a shared, long-lived engine should report).
     */
    std::string cacheStatsLine() const;

    /**
     * Validate @p req, expand it, take its shard's slice, and execute
     * on the worker pool (consulting the cache store when configured).
     * With @p onResult, each scenario is additionally streamed in
     * expansion order as it completes. Never throws on scenario
     * failure -- inspect the ResultSet.
     *
     * With a non-null @p cancel, the run observes the token between
     * scenario jobs (runner::CancelToken): cancelled jobs land as
     * typed kCancelledError failures at their expansion index, so a
     * long sweep submitted by a service can be abandoned without
     * tearing down the engine or losing already-computed results.
     */
    ResultSet run(const ScenarioRequest &req,
                  const ResultCallback &onResult = {},
                  const runner::CancelToken *cancel = nullptr);

    /**
     * Submit several requests as one batch: every request's sharded
     * expansion executes on one shared pool (so concurrency spans
     * request boundaries), and each request gets its own ResultSet at
     * its index. An invalid request yields its InvalidRequest
     * ResultSet without blocking the others. @p onResult streams all
     * scenarios in global (request-major) order; @p cancel follows
     * the run() contract across the whole batch.
     */
    std::vector<ResultSet>
    runBatch(const std::vector<ScenarioRequest> &requests,
             const ResultCallback &onResult = {},
             const runner::CancelToken *cancel = nullptr);

    /**
     * Dry-run: the sharded scenario list @p req would execute, with
     * each scenario's cache key and a hit/miss forecast against the
     * current store contents. Never simulates and never touches the
     * cache counters. An invalid request yields an empty plan (check
     * req.validate() / req.error()).
     */
    std::vector<ScenarioPlan> plan(const ScenarioRequest &req);

    /**
     * Payload-level batch: for every job, the stored payload under
     * its key when the store has one, otherwise compute() (stored per
     * the engine's cache mode). Payloads return in submission order,
     * bit-exact whether they came from the store or the computation.
     * Throws std::runtime_error with the lowest-indexed failure after
     * every job has been attempted (the pool's map contract).
     */
    std::vector<std::string>
    runPayloadBatch(const std::vector<PayloadJob> &jobs);

  private:
    ResultSet rejected(const ScenarioRequest &req) const;
    ResultSet execute(const std::vector<runner::SweepJob> &sharded,
                      const ScenarioRequest &req, std::size_t total,
                      const ResultCallback &onResult,
                      const runner::CancelToken *cancel);

    EngineConfig config_;
    int workers_;
    runner::ScenarioPool pool_;
    std::optional<cache::ResultStore> store_;
    std::once_flag prepare_once_;
    std::string prepare_error_; //!< written once under prepare_once_
};

/**
 * Run one options value across its requested architectures (the
 * scenario executor behind every Engine submission; cli::runCases
 * forwards here). Only the requested architectures are simulated;
 * ones that cannot execute the workload are absent from the result.
 */
CaseResult runScenarioCases(const cli::Options &opt);

} // namespace engine
} // namespace canon

#endif // CANON_ENGINE_ENGINE_HH
