#include "engine/result_set.hh"

#include "common/logging.hh"

namespace canon
{
namespace engine
{

Table
scenarioStatsTable(const cli::Options &opt, const CaseResult &cases)
{
    const CanonConfig cfg = opt.fabricConfig();

    Table table("canonsim: " + opt.workloadLabel());
    std::vector<std::string> header = {"Arch"};
    for (const auto &col : runner::statsHeader(opt.probeSpad))
        header.push_back(col);
    table.header(std::move(header));

    const bool have_canon = cases.count("canon") != 0;
    const double canon_cycles =
        have_canon ? static_cast<double>(cases.at("canon").cycles)
                   : 0.0;

    for (const auto &arch : runner::orderedArchs(opt, cases)) {
        std::vector<std::string> row = {arch};
        for (auto &cell : runner::statsCells(cfg, cases.at(arch),
                                             canon_cycles,
                                             opt.probeSpad))
            row.push_back(std::move(cell));
        table.addRow(std::move(row));
    }
    return table;
}

std::size_t
ResultSet::failureCount() const
{
    std::size_t n = 0;
    for (const auto &r : results_)
        if (!r.error.empty())
            ++n;
    return n;
}

std::size_t
ResultSet::cancelledCount() const
{
    std::size_t n = 0;
    for (const auto &r : results_)
        if (r.cancelled())
            ++n;
    return n;
}

Table
ResultSet::statsTable() const
{
    fatalIf(results_.empty(),
            "ResultSet::statsTable on an empty result set");
    const runner::ScenarioResult &r = results_.front();
    return scenarioStatsTable(r.job.options, r.cases);
}

Table
ResultSet::sweepTable() const
{
    return runner::sweepTable(results_);
}

} // namespace engine
} // namespace canon
