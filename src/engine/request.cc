#include "engine/request.hh"

#include <algorithm>
#include <cstdio>

namespace canon
{
namespace engine
{

namespace
{

/** Shortest text that parses back to exactly @p v (17 digits do). */
std::string
doubleText(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

ScenarioRequest
ScenarioRequest::fromOptions(const cli::Options &opt)
{
    ScenarioRequest req;
    req.opt_ = opt;
    // Validate the carried-over axes now, exactly as sweep() would
    // have; the first failure is latched like any setter failure.
    for (const auto &[key, values] : opt.sweepAxes) {
        if (std::string err = req.spec_.addAxis(key, values);
            !err.empty()) {
            req.fail(err);
            break;
        }
    }
    return req;
}

void
ScenarioRequest::invalidate()
{
    validated_ = false;
}

void
ScenarioRequest::fail(const std::string &message)
{
    if (error_.empty())
        error_ = message;
    invalidate();
}

ScenarioRequest &
ScenarioRequest::set(const std::string &key, const std::string &value)
{
    if (std::string err = cli::applyScenarioOption(opt_, key, value);
        !err.empty()) {
        fail(err);
        return *this;
    }
    opt_.explicitKeys.push_back(key);
    invalidate();
    return *this;
}

ScenarioRequest &
ScenarioRequest::workload(cli::Workload w)
{
    return set("workload", cli::workloadName(w));
}

ScenarioRequest &
ScenarioRequest::model(const std::string &name)
{
    return set("model", name);
}

ScenarioRequest &
ScenarioRequest::shape(std::int64_t m, std::int64_t k, std::int64_t n)
{
    return set("m", std::to_string(m))
        .set("k", std::to_string(k))
        .set("n", std::to_string(n));
}

ScenarioRequest &
ScenarioRequest::sparsity(double s)
{
    return set("sparsity", doubleText(s));
}

ScenarioRequest &
ScenarioRequest::nm(int n, int m)
{
    return set("nm", std::to_string(n) + ":" + std::to_string(m));
}

ScenarioRequest &
ScenarioRequest::window(std::int64_t w)
{
    return set("window", std::to_string(w));
}

ScenarioRequest &
ScenarioRequest::seed(std::uint64_t s)
{
    return set("seed", std::to_string(s));
}

ScenarioRequest &
ScenarioRequest::fabric(int rows, int cols)
{
    return set("rows", std::to_string(rows))
        .set("cols", std::to_string(cols));
}

ScenarioRequest &
ScenarioRequest::spad(int entries)
{
    return set("spad", std::to_string(entries));
}

ScenarioRequest &
ScenarioRequest::dmem(int slots)
{
    return set("dmem", std::to_string(slots));
}

ScenarioRequest &
ScenarioRequest::clockGhz(double ghz)
{
    return set("clock-ghz", doubleText(ghz));
}

ScenarioRequest &
ScenarioRequest::archs(const std::vector<std::string> &names)
{
    std::vector<std::string> selected;
    for (const auto &name : names) {
        if (name == "all") {
            selected = cli::knownArchs();
            continue;
        }
        const auto &known = cli::knownArchs();
        if (std::find(known.begin(), known.end(), name) ==
            known.end()) {
            std::string list;
            for (const auto &k : known)
                list += k + ", ";
            fail("unknown architecture '" + name + "' (" + list +
                 "all)");
            return *this;
        }
        selected.push_back(name);
    }
    opt_.archs = std::move(selected);
    invalidate();
    return *this;
}

ScenarioRequest &
ScenarioRequest::sweep(const std::string &key,
                       const std::string &values)
{
    opt_.sweepAxes.emplace_back(key, values);
    if (std::string err = spec_.addAxis(key, values); !err.empty())
        fail(err);
    invalidate();
    return *this;
}

ScenarioRequest &
ScenarioRequest::shard(int index, int count)
{
    const std::string label =
        std::to_string(index) + "/" + std::to_string(count);
    if (std::string err =
            runner::parseShard(label, opt_.common.shard);
        !err.empty())
        fail("option '--shard': " + err);
    invalidate();
    return *this;
}

bool
ScenarioRequest::validate() const
{
    if (!error_.empty())
        return false;
    if (validated_)
        return validation_error_.empty();
    validated_ = true;
    validation_error_.clear();
    warnings_.clear();

    const std::vector<runner::SweepJob> jobs = spec_.expand(opt_);

    // Per-workload relevance guard (the PR-4 matrix): an axis no
    // expanded scenario consumes would only repeat identical rows, so
    // it is a usage error. The canonical cases: any shape axis when
    // every scenario runs a model, sparsity with gemm/spmm-nm, window
    // without sddmm-window, n with only sddmm-window.
    for (const auto &[axis_key, axis_values] : opt_.sweepAxes) {
        (void)axis_values;
        const bool consumed = std::any_of(
            jobs.begin(), jobs.end(),
            [&key = axis_key](const runner::SweepJob &job) {
                return cli::optionRelevant(job.options, key);
            });
        if (!consumed) {
            validation_error_ =
                "sweep axis '" + axis_key +
                "' has no effect: every scenario in this sweep"
                " ignores it (see the per-workload option table in"
                " --list; include 'none' in a model axis to mix"
                " model and shape scenarios)";
            return false;
        }
    }

    // Single requests collect -- once per offending key -- a note for
    // every explicitly set option the selected workload or model
    // ignores (`--nm` with spmm, `--sparsity` with window attention).
    if (opt_.sweepAxes.empty()) {
        for (const auto &key : opt_.explicitKeys) {
            const std::string note =
                "option '--" + key + "' is ignored by " +
                (opt_.model.empty()
                     ? "workload '" +
                           std::string(
                               cli::workloadName(opt_.workload)) +
                           "'"
                     : "model '" + opt_.model + "'");
            if (cli::optionRelevant(opt_, key) ||
                std::find(warnings_.begin(), warnings_.end(), note) !=
                    warnings_.end())
                continue;
            warnings_.push_back(note);
        }
    }
    return true;
}

const std::string &
ScenarioRequest::error() const
{
    return error_.empty() ? validation_error_ : error_;
}

const std::vector<std::string> &
ScenarioRequest::warnings() const
{
    return warnings_;
}

std::size_t
ScenarioRequest::jobCount() const
{
    return spec_.jobCount();
}

std::vector<runner::SweepJob>
ScenarioRequest::expand() const
{
    if (!validate())
        return {};
    return spec_.expand(opt_);
}

} // namespace engine
} // namespace canon
