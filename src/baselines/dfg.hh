/**
 * @file
 * Dataflow-graph IR for the CGRA baseline (and for Canon's spatial
 * mode experiments). A Dfg is the loop-body of a kernel: operation
 * nodes with latencies and data edges. PolyBench kernel descriptors
 * (src/workloads) carry one of these; the modulo-scheduling mapper
 * (cgra_mapper.hh) places it on the mesh.
 */

#ifndef CANON_BASELINES_DFG_HH
#define CANON_BASELINES_DFG_HH

#include <string>
#include <vector>

#include "common/logging.hh"

namespace canon
{

enum class DfgOp : std::uint8_t
{
    Load,
    Store,
    Mul,
    Add,
    Sub,
    Mac,
    Cmp,
    Select,
    Shift,
};

const char *dfgOpName(DfgOp op);

struct DfgNode
{
    int id;
    std::string name;
    DfgOp op;
    int latency; //!< cycles through the PE's functional unit
};

class Dfg
{
  public:
    explicit Dfg(std::string name = "dfg") : name_(std::move(name)) {}

    /** Add a node; returns its id. */
    int
    addNode(const std::string &name, DfgOp op, int latency = 1)
    {
        nodes_.push_back(
            {static_cast<int>(nodes_.size()), name, op, latency});
        preds_.emplace_back();
        return nodes_.back().id;
    }

    /** Data edge: @p to consumes @p from's value. */
    void
    addEdge(int from, int to)
    {
        panicIf(from < 0 || to < 0 || from >= size() || to >= size(),
                "Dfg ", name_, ": bad edge ", from, "->", to);
        panicIf(from == to, "Dfg ", name_, ": self edge on ", from);
        preds_[static_cast<std::size_t>(to)].push_back(from);
        ++edges_;
    }

    int size() const { return static_cast<int>(nodes_.size()); }
    int edgeCount() const { return edges_; }
    const std::string &name() const { return name_; }
    const DfgNode &node(int id) const
    {
        return nodes_[static_cast<std::size_t>(id)];
    }
    const std::vector<int> &preds(int id) const
    {
        return preds_[static_cast<std::size_t>(id)];
    }

    /** Topological order; panics on a cycle (loop-carried deps are
     *  expressed as a recurrence MII, not as graph edges). */
    std::vector<int> topoOrder() const;

    /** Length (in latency) of the longest path. */
    int criticalPath() const;

  private:
    std::string name_;
    std::vector<DfgNode> nodes_;
    std::vector<std::vector<int>> preds_;
    int edges_ = 0;
};

} // namespace canon

#endif // CANON_BASELINES_DFG_HH
