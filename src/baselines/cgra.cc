#include "baselines/cgra.hh"

#include "common/bitfield.hh"

namespace canon
{

Dfg
replicateDfg(const Dfg &dfg, int copies)
{
    panicIf(copies <= 0, "replicateDfg: need at least one copy");
    Dfg out(dfg.name() + "x" + std::to_string(copies));
    for (int c = 0; c < copies; ++c) {
        const int base = c * dfg.size();
        for (int v = 0; v < dfg.size(); ++v) {
            const auto &n = dfg.node(v);
            out.addNode(n.name + "#" + std::to_string(c), n.op,
                        n.latency);
        }
        for (int v = 0; v < dfg.size(); ++v)
            for (int p : dfg.preds(v))
                out.addEdge(base + p, base + v);
    }
    return out;
}

CgraModel::CgraModel(const CgraConfig &cfg)
    : cfg_(cfg), mapper_(cfg),
      systolic_(SystolicConfig{cfg.rows, cfg.cols,
                               SparsitySupport::Dense})
{
}

ExecutionProfile
CgraModel::emulate(ExecutionProfile p) const
{
    p.arch = "cgra";
    p.peCount = static_cast<std::uint64_t>(cfg_.numPes());
    // Each configured PE re-fetches its (held) instruction and drives
    // its crossbar switch every active cycle; data hops between
    // neighbours replace the systolic array's hardwired shifts.
    p.activity.erase("shiftOps");
    p.add("instFetches",
          p.cycles * static_cast<std::uint64_t>(cfg_.numPes()));
    p.add("routerHops", p.get("macSlots"));
    return p;
}

ExecutionProfile
CgraModel::gemm(std::int64_t m, std::int64_t k, std::int64_t n) const
{
    auto p = emulate(systolic_.gemm(m, k, n));
    p.workload = "gemm";
    return p;
}

ExecutionProfile
CgraModel::spmm(std::int64_t m, std::int64_t k, std::int64_t n,
                double sparsity) const
{
    auto p = emulate(systolic_.spmm(m, k, n, sparsity));
    p.workload = "spmm";
    return p;
}

ExecutionProfile
CgraModel::sddmm(std::int64_t m, std::int64_t k, std::int64_t n,
                 double mask_sparsity) const
{
    auto p = emulate(systolic_.sddmm(m, k, n, mask_sparsity));
    p.workload = "sddmm";
    return p;
}

ExecutionProfile
CgraModel::sddmmWindow(std::int64_t seq, std::int64_t k,
                       std::int64_t window) const
{
    auto p = emulate(systolic_.sddmmWindow(seq, k, window));
    p.workload = "sddmm-win";
    return p;
}

ExecutionProfile
CgraModel::loopKernel(const Dfg &body, std::int64_t iters, int rec_mii,
                      int max_unroll,
                      const std::string &workload) const
{
    ExecutionProfile p;
    p.arch = "cgra";
    p.workload = workload;
    p.peCount = static_cast<std::uint64_t>(cfg_.numPes());

    // Unroll as far as the fabric and the kernel's parallelism allow.
    int unroll = std::max(
        1, std::min(max_unroll, cfg_.numPes() / std::max(1,
                                                         body.size())));
    CgraMapping mapping;
    for (; unroll >= 1; unroll /= 2) {
        mapping = mapper_.map(replicateDfg(body, unroll),
                              unroll > 1 ? 1 : rec_mii);
        if (mapping.ok)
            break;
    }
    panicIf(!mapping.ok, "CgraModel: '", body.name(),
            "' does not map onto the fabric");

    const auto waves = divCeil(static_cast<std::uint64_t>(iters),
                               static_cast<std::uint64_t>(unroll));
    p.cycles = waves * static_cast<std::uint64_t>(mapping.ii) +
               static_cast<std::uint64_t>(mapping.schedLen);

    std::uint64_t mac_nodes = 0, mem_nodes = 0, alu_nodes = 0;
    for (int v = 0; v < body.size(); ++v) {
        switch (body.node(v).op) {
          case DfgOp::Mul:
          case DfgOp::Mac:
            ++mac_nodes;
            break;
          case DfgOp::Load:
          case DfgOp::Store:
            ++mem_nodes;
            break;
          default:
            ++alu_nodes;
        }
    }
    p.add("laneMacs", static_cast<std::uint64_t>(iters) * mac_nodes);
    p.add("aluOps", static_cast<std::uint64_t>(iters) * alu_nodes);
    p.add("edgeSramReads",
          static_cast<std::uint64_t>(iters) * mem_nodes);
    p.add("routerHops", waves * mapping.routeHops);
    p.add("instFetches",
          p.cycles * static_cast<std::uint64_t>(mapping.pesUsed));
    return p;
}

} // namespace canon
