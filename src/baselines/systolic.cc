#include "baselines/systolic.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace canon
{

SystolicSim::SystolicSim(const SystolicConfig &cfg) : cfg_(cfg)
{
    panicIf(cfg_.rows <= 0 || cfg_.cols <= 0,
            "SystolicSim: bad array shape");
}

void
SystolicSim::run(const DenseMatrix &a, const DenseMatrix &b)
{
    panicIf(a.cols() != b.rows(), "SystolicSim: shape mismatch");
    const int m_dim = a.rows();
    const int k_dim = a.cols();
    const int n_dim = b.cols();
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;

    c_ = WordMatrix(m_dim, n_dim);
    cycles_ = static_cast<Cycle>(rows); // initial weight-tile load

    std::vector<std::vector<Word>> w(rows, std::vector<Word>(cols));
    std::vector<std::vector<Word>> a_reg(rows,
                                         std::vector<Word>(cols, 0));
    std::vector<std::vector<Word>> p_reg(rows,
                                         std::vector<Word>(cols, 0));

    for (int n0 = 0; n0 < n_dim; n0 += cols) {
        for (int k0 = 0; k0 < k_dim; k0 += rows) {
            // Weight-stationary tile (zero padded at the edges);
            // loading overlaps the previous tile's drain
            // (double-buffered), so only the first load costs cycles.
            for (int r = 0; r < rows; ++r)
                for (int c = 0; c < cols; ++c)
                    w[r][c] = (k0 + r < k_dim && n0 + c < n_dim)
                                  ? b.at(k0 + r, n0 + c)
                                  : 0;
            for (auto &row : a_reg)
                std::fill(row.begin(), row.end(), 0);
            for (auto &row : p_reg)
                std::fill(row.begin(), row.end(), 0);

            const int tile_cycles = m_dim + rows + cols - 2;
            for (int t = 0; t < tile_cycles; ++t) {
                // Evaluate from the south-east corner so each PE sees
                // its neighbours' previous-cycle registers.
                for (int r = rows - 1; r >= 0; --r) {
                    for (int c = cols - 1; c >= 0; --c) {
                        const Word a_in =
                            c == 0 ? ((t - r >= 0 && t - r < m_dim &&
                                       k0 + r < k_dim)
                                          ? static_cast<Word>(
                                                a.at(t - r, k0 + r))
                                          : 0)
                                   : a_reg[r][c - 1];
                        const Word p_in = r == 0 ? 0 : p_reg[r - 1][c];
                        const Word p_out = p_in + w[r][c] * a_in;
                        // Shift into this PE's registers (safe order:
                        // consumers to the SE already read them).
                        a_reg[r][c] = a_in;
                        p_reg[r][c] = p_out;
                        if (r == rows - 1) {
                            const int m = t - (rows - 1) - c;
                            if (m >= 0 && m < m_dim && n0 + c < n_dim)
                                c_.at(m, n0 + c) += p_out;
                        }
                    }
                }
            }
            cycles_ += static_cast<Cycle>(tile_cycles);
        }
    }
}

Cycle
SystolicModel::gemmCycles(std::int64_t m, std::int64_t k,
                          std::int64_t n) const
{
    const auto ktiles = divCeil(static_cast<std::uint64_t>(k),
                                static_cast<std::uint64_t>(cfg_.rows));
    const auto ntiles = divCeil(static_cast<std::uint64_t>(n),
                                static_cast<std::uint64_t>(cfg_.cols));
    return static_cast<Cycle>(cfg_.rows) +
           ktiles * ntiles *
               static_cast<Cycle>(m + cfg_.rows + cfg_.cols - 2);
}

ExecutionProfile
SystolicModel::gemm(std::int64_t m, std::int64_t k, std::int64_t n,
                    std::pair<int, int> input_nm) const
{
    ExecutionProfile p;
    p.arch = cfg_.sparsity == SparsitySupport::TwoFour ? "systolic24"
                                                       : "systolic";
    p.peCount = static_cast<std::uint64_t>(cfg_.numMacs());

    std::int64_t k_eff = k;
    std::uint64_t useful =
        static_cast<std::uint64_t>(m) * k * n;
    if (cfg_.sparsity == SparsitySupport::TwoFour &&
        input_nm.second > 0 &&
        2 * input_nm.first <= input_nm.second) {
        // Any <=2-per-4-expressible pattern compresses to the 2:4
        // format: effective K halves regardless of deeper sparsity.
        k_eff = (k + 1) / 2;
        useful = static_cast<std::uint64_t>(m) * n *
                 (static_cast<std::uint64_t>(k) * input_nm.first /
                  input_nm.second);
        p.add("nmSelectOps", static_cast<std::uint64_t>(m) * k_eff * n);
    }

    p.cycles = gemmCycles(m, k_eff, n);
    p.add("laneMacs", useful);

    const auto ktiles = divCeil(static_cast<std::uint64_t>(k_eff),
                                static_cast<std::uint64_t>(cfg_.rows));
    const auto ntiles = divCeil(static_cast<std::uint64_t>(n),
                                static_cast<std::uint64_t>(cfg_.cols));
    // Energy-active MAC slots: every PE switches while a tile streams,
    // and its A/psum shift registers move every one of those cycles.
    p.add("macSlots", ktiles * ntiles * static_cast<std::uint64_t>(m) *
                          cfg_.numMacs());
    p.add("shiftOps", p.get("macSlots"));
    // Edge SRAM traffic: activations re-read per n-tile, weights once
    // per tile, psums spilled/merged across k-tiles.
    p.add("edgeSramReads",
          ntiles * ktiles * static_cast<std::uint64_t>(m) * cfg_.rows +
              static_cast<std::uint64_t>(k_eff) * n +
              static_cast<std::uint64_t>(m) * n * (ktiles - 1));
    p.add("edgeSramWrites",
          static_cast<std::uint64_t>(m) * n * ktiles);
    return p;
}

ExecutionProfile
SystolicModel::spmm(std::int64_t m, std::int64_t k, std::int64_t n,
                    double, std::pair<int, int> input_nm) const
{
    // No sparse datapath: unstructured sparse inputs run dense.
    auto p = gemm(m, k, n, input_nm);
    p.workload = "spmm";
    return p;
}

ExecutionProfile
SystolicModel::sddmm(std::int64_t m, std::int64_t k, std::int64_t n,
                     double) const
{
    // Output sparsity cannot be exploited either: full dense product.
    auto p = gemm(m, k, n);
    p.workload = "sddmm";
    return p;
}

ExecutionProfile
SystolicModel::sddmmWindow(std::int64_t seq, std::int64_t k,
                           std::int64_t window) const
{
    // Sliding-chunk conversion (Longformer): query chunks of size w
    // (= the window) each multiply against a 2w key range so every
    // query's full band is covered -- twice the band's useful work.
    const std::int64_t w = std::max<std::int64_t>(window, 1);
    const auto chunks = divCeil(static_cast<std::uint64_t>(seq),
                                static_cast<std::uint64_t>(w));
    ExecutionProfile total;
    total.arch = cfg_.sparsity == SparsitySupport::TwoFour
                     ? "systolic24"
                     : "systolic";
    total.workload = "sddmm-win";
    total.peCount = static_cast<std::uint64_t>(cfg_.numMacs());
    const auto chunk = gemm(w, k, 2 * w);
    for (std::uint64_t i = 0; i < chunks; ++i)
        total.accumulate(chunk);
    return total;
}

} // namespace canon
