/**
 * @file
 * Modulo-scheduling mapper for the HyCUBE-like CGRA baseline.
 *
 * Places a loop-body DFG onto an RxC mesh of single-op PEs under an
 * initiation interval II: each PE executes at most one operation per
 * II time-slot, operands travel over the mesh (HyCUBE-style
 * single-cycle multi-hop: up to `hopsPerCycle` hops per cycle), and a
 * successor starts no earlier than its producer's finish plus route
 * time. The mapper searches II upward from MII = max(resource MII,
 * recurrence MII) with a greedy nearest-placement heuristic and
 * restarts; it reports the achieved II, schedule length and PE usage,
 * which the CGRA timing model turns into kernel cycles.
 */

#ifndef CANON_BASELINES_CGRA_MAPPER_HH
#define CANON_BASELINES_CGRA_MAPPER_HH

#include "baselines/dfg.hh"

namespace canon
{

struct CgraConfig
{
    int rows = 16;
    int cols = 16;
    int hopsPerCycle = 3; //!< HyCUBE single-cycle multi-hop reach
    int maxII = 64;

    int numPes() const { return rows * cols; }
};

struct CgraMapping
{
    bool ok = false;
    int ii = 0;         //!< achieved initiation interval
    int schedLen = 0;   //!< schedule length (pipeline depth)
    int pesUsed = 0;
    std::uint64_t routeHops = 0; //!< per-iteration operand hops
    std::vector<int> peOf;   //!< node -> PE index
    std::vector<int> timeOf; //!< node -> issue time
};

class CgraMapper
{
  public:
    explicit CgraMapper(const CgraConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Map @p dfg with loop-carried recurrence constraint @p rec_mii.
     * Never fails for maxII large enough unless the DFG exceeds the
     * fabric (more nodes than PE slots at maxII).
     */
    CgraMapping map(const Dfg &dfg, int rec_mii = 1) const;

    const CgraConfig &config() const { return cfg_; }

  private:
    bool tryMap(const Dfg &dfg, int ii, CgraMapping &out) const;

    CgraConfig cfg_;
};

} // namespace canon

#endif // CANON_BASELINES_CGRA_MAPPER_HH
