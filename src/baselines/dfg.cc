#include "baselines/dfg.hh"

#include <algorithm>

namespace canon
{

const char *
dfgOpName(DfgOp op)
{
    switch (op) {
      case DfgOp::Load: return "load";
      case DfgOp::Store: return "store";
      case DfgOp::Mul: return "mul";
      case DfgOp::Add: return "add";
      case DfgOp::Sub: return "sub";
      case DfgOp::Mac: return "mac";
      case DfgOp::Cmp: return "cmp";
      case DfgOp::Select: return "select";
      case DfgOp::Shift: return "shift";
    }
    return "?";
}

std::vector<int>
Dfg::topoOrder() const
{
    std::vector<int> in_deg(static_cast<std::size_t>(size()), 0);
    for (int v = 0; v < size(); ++v)
        in_deg[static_cast<std::size_t>(v)] =
            static_cast<int>(preds(v).size());

    // Successor lists from the predecessor representation.
    std::vector<std::vector<int>> succs(
        static_cast<std::size_t>(size()));
    for (int v = 0; v < size(); ++v)
        for (int p : preds(v))
            succs[static_cast<std::size_t>(p)].push_back(v);

    std::vector<int> ready;
    for (int v = 0; v < size(); ++v)
        if (in_deg[static_cast<std::size_t>(v)] == 0)
            ready.push_back(v);

    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(size()));
    while (!ready.empty()) {
        const int v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (int s : succs[static_cast<std::size_t>(v)])
            if (--in_deg[static_cast<std::size_t>(s)] == 0)
                ready.push_back(s);
    }
    panicIf(static_cast<int>(order.size()) != size(), "Dfg ", name_,
            ": cycle detected (use recurrence MII for loop-carried "
            "dependences)");
    return order;
}

int
Dfg::criticalPath() const
{
    std::vector<int> finish(static_cast<std::size_t>(size()), 0);
    int best = 0;
    for (int v : topoOrder()) {
        int start = 0;
        for (int p : preds(v))
            start = std::max(start,
                             finish[static_cast<std::size_t>(p)]);
        finish[static_cast<std::size_t>(v)] = start + node(v).latency;
        best = std::max(best, finish[static_cast<std::size_t>(v)]);
    }
    return best;
}

} // namespace canon
