/**
 * @file
 * ZeD-like generalized sparse accelerator baseline (Section 5; Dangi
 * et al., PACT 2024).
 *
 * Behavioural model of the characteristics the paper's comparison
 * rests on:
 *  - work proportional to non-zeros (specialized decode datapath),
 *  - row-granular distribution of A rows to MAC clusters with work
 *    stealing (list scheduling): excellent balance when rows carry
 *    many non-zeros (S1/S2), degraded by per-row startup/decode
 *    latency when rows are tiny (high sparsity) and by single long
 *    rows under skew,
 *  - a fixed unstructured datapath: N:M and window structure are not
 *    exploited (treated as unstructured),
 *  - crossbar distribution + decoders that tax energy per non-zero.
 *
 * The timing core is a list-scheduling makespan over per-row costs;
 * the test suite pins its invariants (never better than the ideal
 * work bound, monotone under stealing, exact on uniform rows).
 */

#ifndef CANON_BASELINES_ZED_HH
#define CANON_BASELINES_ZED_HH

#include <vector>

#include "power/profile.hh"
#include "sparse/matrix.hh"

namespace canon
{

struct ZedConfig
{
    int clusters = 16;        //!< independent row processors
    int lanesPerCluster = 16; //!< MAC lanes per cluster (16x16 = 256)
    int rowStartup = 4;       //!< decode + B-row fetch latency per row
    bool workStealing = true;

    int numMacs() const { return clusters * lanesPerCluster; }
};

class ZedModel
{
  public:
    explicit ZedModel(const ZedConfig &cfg = {}) : cfg_(cfg) {}

    /** SpMM from an explicit sparse matrix (real row population). */
    ExecutionProfile spmm(const CsrMatrix &a, std::int64_t n) const;

    /** SpMM from per-row non-zero counts (synthetic/large shapes). */
    ExecutionProfile spmmRows(const std::vector<std::int64_t> &row_nnz,
                              std::int64_t n) const;

    /** Dense GEMM: every row fully populated. */
    ExecutionProfile gemm(std::int64_t m, std::int64_t k,
                          std::int64_t n) const;

    /** SDDMM: per output row, work = mask-row-nnz * K. */
    ExecutionProfile sddmm(const CsrMatrix &mask, std::int64_t k) const;

    ExecutionProfile sddmmRows(
        const std::vector<std::int64_t> &mask_row_nnz,
        std::int64_t k) const;

    const ZedConfig &config() const { return cfg_; }

    /** List-scheduling makespan over per-row cycle costs (exposed
     *  for property tests). */
    std::uint64_t makespan(const std::vector<std::uint64_t> &row_cycles)
        const;

    /**
     * SDDMM's inner products gather both operand vectors through the
     * banked SRAM (the output mask addresses are arbitrary), unlike
     * SpMM's streaming B-row fetch; the crossbar sustains reduced MAC
     * throughput. ZeD's datapath is specialized for the SpMM side.
     */
    static constexpr double kSddmmFetchFactor = 1.4;

  private:
    ExecutionProfile runRows(const std::vector<std::int64_t> &row_work,
                             std::int64_t words_per_unit,
                             const std::string &workload,
                             double fetch_factor = 1.0) const;

    ZedConfig cfg_;
};

} // namespace canon

#endif // CANON_BASELINES_ZED_HH
