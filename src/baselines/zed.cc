#include "baselines/zed.hh"

#include <algorithm>
#include <queue>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace canon
{

std::uint64_t
ZedModel::makespan(const std::vector<std::uint64_t> &row_cycles) const
{
    if (row_cycles.empty())
        return 0;
    if (cfg_.workStealing) {
        // List scheduling in arrival order: each row goes to the
        // earliest-available cluster -- the effect of hardware work
        // stealing at row granularity.
        std::priority_queue<std::uint64_t,
                            std::vector<std::uint64_t>,
                            std::greater<>>
            clusters;
        for (int i = 0; i < cfg_.clusters; ++i)
            clusters.push(0);
        std::uint64_t span = 0;
        for (auto rc : row_cycles) {
            auto t = clusters.top();
            clusters.pop();
            t += rc;
            span = std::max(span, t);
            clusters.push(t);
        }
        return span;
    }
    // Static round-robin assignment.
    std::vector<std::uint64_t> load(
        static_cast<std::size_t>(cfg_.clusters), 0);
    for (std::size_t i = 0; i < row_cycles.size(); ++i)
        load[i % cfg_.clusters] += row_cycles[i];
    return *std::max_element(load.begin(), load.end());
}

ExecutionProfile
ZedModel::runRows(const std::vector<std::int64_t> &row_work,
                  std::int64_t words_per_unit,
                  const std::string &workload,
                  double fetch_factor) const
{
    ExecutionProfile p;
    p.arch = "zed";
    p.workload = workload;
    p.peCount = static_cast<std::uint64_t>(cfg_.numMacs());

    std::vector<std::uint64_t> row_cycles;
    row_cycles.reserve(row_work.size());
    std::uint64_t units = 0;
    for (auto w : row_work) {
        if (w == 0)
            continue; // empty rows are skipped by the decoder
        units += static_cast<std::uint64_t>(w);
        const auto lane_work = static_cast<std::uint64_t>(
            static_cast<double>(w) * words_per_unit * fetch_factor);
        row_cycles.push_back(
            static_cast<std::uint64_t>(cfg_.rowStartup) +
            divCeil(lane_work,
                    static_cast<std::uint64_t>(cfg_.lanesPerCluster)));
    }
    p.cycles = std::max<std::uint64_t>(makespan(row_cycles), 1);
    p.add("laneMacs", units * words_per_unit);
    p.add("decodeOps", units);
    p.add("crossbarXfers", units);
    // Operand fetches from the banked SRAM: one word per lane-MAC
    // (B-row words for SpMM, A/B words for SDDMM) plus outputs.
    p.add("edgeSramReads", units * words_per_unit);
    p.add("edgeSramWrites", units * words_per_unit / 4);
    return p;
}

ExecutionProfile
ZedModel::spmm(const CsrMatrix &a, std::int64_t n) const
{
    std::vector<std::int64_t> work;
    work.reserve(static_cast<std::size_t>(a.rows()));
    for (int m = 0; m < a.rows(); ++m)
        work.push_back(a.rowNnz(m));
    return runRows(work, n, "spmm");
}

ExecutionProfile
ZedModel::spmmRows(const std::vector<std::int64_t> &row_nnz,
                   std::int64_t n) const
{
    return runRows(row_nnz, n, "spmm");
}

ExecutionProfile
ZedModel::gemm(std::int64_t m, std::int64_t k, std::int64_t n) const
{
    std::vector<std::int64_t> work(static_cast<std::size_t>(m), k);
    auto p = runRows(work, n, "gemm");
    // Dense inputs still pass through the sparse decoders.
    return p;
}

ExecutionProfile
ZedModel::sddmm(const CsrMatrix &mask, std::int64_t k) const
{
    std::vector<std::int64_t> work;
    work.reserve(static_cast<std::size_t>(mask.rows()));
    for (int m = 0; m < mask.rows(); ++m)
        work.push_back(mask.rowNnz(m));
    return runRows(work, k, "sddmm", kSddmmFetchFactor);
}

ExecutionProfile
ZedModel::sddmmRows(const std::vector<std::int64_t> &mask_row_nnz,
                    std::int64_t k) const
{
    return runRows(mask_row_nnz, k, "sddmm", kSddmmFetchFactor);
}

} // namespace canon
