/**
 * @file
 * HyCUBE-like CGRA baseline model (Section 5).
 *
 * Two operating regimes, as in the paper's evaluation:
 *  - tensor kernels: the CGRA "must emulate the systolic dataflow for
 *    tensor operations since it has no dynamic mechanism to exploit
 *    sparsity" (Section 6.2) -- timing follows the systolic model,
 *    with CGRA-specific activity (per-PE instruction memory fetches,
 *    reconfigurable routing) layered on top;
 *  - general loop kernels (PolyBench): the modulo-scheduling mapper
 *    produces an II for the loop body, optionally unrolled across
 *    spare PEs up to the kernel's data-parallelism.
 */

#ifndef CANON_BASELINES_CGRA_HH
#define CANON_BASELINES_CGRA_HH

#include "baselines/cgra_mapper.hh"
#include "baselines/systolic.hh"

namespace canon
{

/** Replicate @p dfg @p copies times (independent loop unrolling). */
Dfg replicateDfg(const Dfg &dfg, int copies);

class CgraModel
{
  public:
    explicit CgraModel(const CgraConfig &cfg = {});

    /** Dense GEMM via systolic-dataflow emulation. */
    ExecutionProfile gemm(std::int64_t m, std::int64_t k,
                          std::int64_t n) const;

    /** Sparse inputs execute densified, as on the systolic array. */
    ExecutionProfile spmm(std::int64_t m, std::int64_t k,
                          std::int64_t n, double sparsity) const;

    ExecutionProfile sddmm(std::int64_t m, std::int64_t k,
                           std::int64_t n, double mask_sparsity) const;

    ExecutionProfile sddmmWindow(std::int64_t seq, std::int64_t k,
                                 std::int64_t window) const;

    /**
     * A general loop nest: @p iters iterations of @p body, with
     * loop-carried recurrence @p rec_mii and at most @p max_unroll
     * independent iterations in flight (the kernel's DLP).
     */
    ExecutionProfile loopKernel(const Dfg &body, std::int64_t iters,
                                int rec_mii, int max_unroll,
                                const std::string &workload) const;

    const CgraConfig &config() const { return cfg_; }
    const CgraMapper &mapper() const { return mapper_; }

  private:
    /** Add CGRA overheads to a systolic-emulation profile. */
    ExecutionProfile emulate(ExecutionProfile p) const;

    CgraConfig cfg_;
    CgraMapper mapper_;
    SystolicModel systolic_;
};

} // namespace canon

#endif // CANON_BASELINES_CGRA_HH
