#include "baselines/cgra_mapper.hh"

#include <algorithm>

#include "common/bitfield.hh"

namespace canon
{

namespace
{

int
manhattan(int pe_a, int pe_b, int cols)
{
    const int ra = pe_a / cols, ca = pe_a % cols;
    const int rb = pe_b / cols, cb = pe_b % cols;
    return std::abs(ra - rb) + std::abs(ca - cb);
}

} // namespace

bool
CgraMapper::tryMap(const Dfg &dfg, int ii, CgraMapping &out) const
{
    const int pes = cfg_.numPes();
    // busy[pe][slot]: PE occupied at time mod ii.
    std::vector<std::vector<bool>> busy(
        static_cast<std::size_t>(pes),
        std::vector<bool>(static_cast<std::size_t>(ii), false));

    out.peOf.assign(static_cast<std::size_t>(dfg.size()), -1);
    out.timeOf.assign(static_cast<std::size_t>(dfg.size()), 0);
    out.routeHops = 0;

    for (int v : dfg.topoOrder()) {
        int best_pe = -1;
        int best_time = 0;
        long best_cost = -1;

        for (int pe = 0; pe < pes; ++pe) {
            // Earliest start honoring all placed predecessors with
            // routing delay from their PEs.
            int ready = 0;
            long hops = 0;
            for (int p : dfg.preds(v)) {
                const int ppe = out.peOf[static_cast<std::size_t>(p)];
                const int dist = manhattan(ppe, pe, cfg_.cols);
                const int route = static_cast<int>(divCeil(
                    static_cast<std::uint64_t>(dist),
                    static_cast<std::uint64_t>(cfg_.hopsPerCycle)));
                ready = std::max(
                    ready, out.timeOf[static_cast<std::size_t>(p)] +
                               dfg.node(p).latency + route);
                hops += dist;
            }
            // First free slot at or after ready (searching one full
            // II window suffices for feasibility at this PE).
            int t = -1;
            for (int d = 0; d < ii; ++d) {
                const int cand = ready + d;
                if (!busy[static_cast<std::size_t>(pe)]
                          [static_cast<std::size_t>(cand % ii)]) {
                    t = cand;
                    break;
                }
            }
            if (t < 0)
                continue;
            // Cost: schedule time first, then routing pressure.
            const long cost = static_cast<long>(t) * 1024 + hops;
            if (best_cost < 0 || cost < best_cost) {
                best_cost = cost;
                best_pe = pe;
                best_time = t;
            }
        }

        if (best_pe < 0)
            return false;
        out.peOf[static_cast<std::size_t>(v)] = best_pe;
        out.timeOf[static_cast<std::size_t>(v)] = best_time;
        busy[static_cast<std::size_t>(best_pe)]
            [static_cast<std::size_t>(best_time % ii)] = true;
        for (int p : dfg.preds(v))
            out.routeHops += static_cast<std::uint64_t>(manhattan(
                out.peOf[static_cast<std::size_t>(p)], best_pe,
                cfg_.cols));
    }

    out.ok = true;
    out.ii = ii;
    int len = 0;
    std::vector<bool> used(static_cast<std::size_t>(pes), false);
    for (int v = 0; v < dfg.size(); ++v) {
        len = std::max(len, out.timeOf[static_cast<std::size_t>(v)] +
                                dfg.node(v).latency);
        used[static_cast<std::size_t>(
            out.peOf[static_cast<std::size_t>(v)])] = true;
    }
    out.schedLen = len;
    out.pesUsed =
        static_cast<int>(std::count(used.begin(), used.end(), true));
    return true;
}

CgraMapping
CgraMapper::map(const Dfg &dfg, int rec_mii) const
{
    CgraMapping result;
    if (dfg.size() == 0) {
        result.ok = true;
        result.ii = std::max(rec_mii, 1);
        return result;
    }
    const int res_mii = static_cast<int>(
        divCeil(static_cast<std::uint64_t>(dfg.size()),
                static_cast<std::uint64_t>(cfg_.numPes())));
    const int mii = std::max({res_mii, rec_mii, 1});
    for (int ii = mii; ii <= cfg_.maxII; ++ii) {
        if (tryMap(dfg, ii, result))
            return result;
    }
    result.ok = false;
    return result;
}

} // namespace canon
