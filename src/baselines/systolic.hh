/**
 * @file
 * TPU-like systolic array baseline (Section 5), in two fidelities:
 *
 *  - SystolicSim: a genuine cycle-level weight-stationary array that
 *    computes real values (used to validate the timing model exactly
 *    and as the densest-possible 2D-mesh reference);
 *  - SystolicModel: the closed-form timing/activity model the benches
 *    use at paper scale, cross-validated against SystolicSim in the
 *    test suite.
 *
 * Dataflow: weight-stationary. A KxN weight tile (rows x cols PEs) is
 * preloaded; activation rows stream in west-to-east skewed by row;
 * psums flow north-to-south into accumulators. Tiles double-buffer,
 * so per (k-tile, n-tile) pair the cost is M + fill/drain.
 *
 * Sparsity handling: none -- sparse inputs execute as dense (the
 * fragility the paper quantifies). The TwoFour variant (NVIDIA
 *-Tensor-Core-like, Section 5) compresses aligned 2:4 input blocks,
 * halving the effective K; any input that is not 2:4-conformant falls
 * back to dense execution, and 2:8 inputs are padded to the 2:4
 * format (half of the stored values are zeros), so they see only the
 * 2:4 speedup, not 4x (Section 6.2's "diminished performance on 2:8").
 */

#ifndef CANON_BASELINES_SYSTOLIC_HH
#define CANON_BASELINES_SYSTOLIC_HH

#include "power/profile.hh"
#include "sparse/matrix.hh"

namespace canon
{

enum class SparsitySupport : std::uint8_t
{
    Dense,   //!< plain systolic array
    TwoFour, //!< 2:4 structured-sparse weight/input compression
};

struct SystolicConfig
{
    int rows = 16; //!< PE rows (K tile)
    int cols = 16; //!< PE cols (N tile)
    SparsitySupport sparsity = SparsitySupport::Dense;

    int numMacs() const { return rows * cols; }
};

/** Cycle-level weight-stationary array computing real INT32 results. */
class SystolicSim
{
  public:
    explicit SystolicSim(const SystolicConfig &cfg);

    /** Run C = A*B to completion; result() and cycles() follow. */
    void run(const DenseMatrix &a, const DenseMatrix &b);

    const WordMatrix &result() const { return c_; }
    Cycle cycles() const { return cycles_; }

  private:
    SystolicConfig cfg_;
    WordMatrix c_;
    Cycle cycles_ = 0;
};

/** Closed-form timing + activity model (per paper-scale bench). */
class SystolicModel
{
  public:
    explicit SystolicModel(const SystolicConfig &cfg) : cfg_(cfg) {}

    /**
     * Dense GEMM of shape MxKxN. @p input_nm describes the A-matrix
     * N:M structure when known ({0,0} = unstructured/dense): the
     * TwoFour variant halves effective K for any conformant pattern
     * with n/m <= 1/2 (2:8 pads up to 2:4).
     */
    ExecutionProfile gemm(std::int64_t m, std::int64_t k,
                          std::int64_t n,
                          std::pair<int, int> input_nm = {0, 0}) const;

    /** SpMM executes as dense GEMM (no sparsity datapath). */
    ExecutionProfile spmm(std::int64_t m, std::int64_t k,
                          std::int64_t n, double /*sparsity*/,
                          std::pair<int, int> input_nm = {0, 0}) const;

    /** SDDMM: computes the full dense product, masks at the end. */
    ExecutionProfile sddmm(std::int64_t m, std::int64_t k,
                           std::int64_t n, double /*mask_sparsity*/)
        const;

    /**
     * Sliding-window attention via the sliding-chunk dense conversion
     * (Longformer): the band is covered by seq/w chunks of w x 2w
     * dense score blocks.
     */
    ExecutionProfile sddmmWindow(std::int64_t seq, std::int64_t k,
                                 std::int64_t window) const;

    /** The timing formula shared with SystolicSim (tested equal). */
    Cycle gemmCycles(std::int64_t m, std::int64_t k,
                     std::int64_t n) const;

    const SystolicConfig &config() const { return cfg_; }

  private:
    SystolicConfig cfg_;
};

} // namespace canon

#endif // CANON_BASELINES_SYSTOLIC_HH
