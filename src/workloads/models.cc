#include "workloads/models.hh"

#include "common/logging.hh"

namespace canon
{

ModelSpec
resnet50Conv(double sparsity)
{
    // Representative im2col shapes of the four ResNet-50 stages
    // (batch 1): M = H*W, K = Cin*3*3 (or 1x1), N = Cout.
    ModelSpec m;
    m.name = "Resnet50-Conv";
    m.layers = {
        {"conv2_3x3", LayerKind::Spmm, 3136, 576, 64, sparsity, 0, 3},
        {"conv3_3x3", LayerKind::Spmm, 784, 1152, 128, sparsity, 0, 4},
        {"conv4_3x3", LayerKind::Spmm, 196, 2304, 256, sparsity, 0, 6},
        {"conv5_3x3", LayerKind::Spmm, 49, 4608, 512, sparsity, 0, 3},
    };
    return m;
}

ModelSpec
llama8bMlp(double sparsity)
{
    ModelSpec m;
    m.name = sparsity > 0.0 ? "Llama8B-MLP(sparse)"
                            : "Llama8B-MLP(dense)";
    const auto kind = sparsity > 0.0 ? LayerKind::Spmm : LayerKind::Gemm;
    m.layers = {
        {"gate_proj", kind, 512, 4096, 14336, sparsity, 0, 1},
        {"up_proj", kind, 512, 4096, 14336, sparsity, 0, 1},
        {"down_proj", kind, 512, 14336, 4096, sparsity, 0, 1},
    };
    return m;
}

ModelSpec
llama8bAttn(double sparsity)
{
    // QK^T per head: seq x seq scores over head_dim 128; 32 heads.
    ModelSpec m;
    m.name = "Llama8B-Attn";
    m.layers = {
        {"qk_scores", LayerKind::SddmmU, 512, 128, 512, sparsity, 0,
         32},
    };
    return m;
}

ModelSpec
mistral7bMlp(double sparsity)
{
    ModelSpec m;
    m.name = sparsity > 0.0 ? "Mistral7B-MLP(sparse)"
                            : "Mistral7B-MLP(dense)";
    const auto kind = sparsity > 0.0 ? LayerKind::Spmm : LayerKind::Gemm;
    m.layers = {
        {"gate_proj", kind, 512, 4096, 14336, sparsity, 0, 1},
        {"up_proj", kind, 512, 4096, 14336, sparsity, 0, 1},
        {"down_proj", kind, 512, 14336, 4096, sparsity, 0, 1},
    };
    return m;
}

ModelSpec
mistral7bAttn()
{
    // Sliding-window attention: window 4096 over a 16K context
    // (SDDMM-Win2 of Section 6.2), 32 heads of dim 128.
    ModelSpec m;
    m.name = "Mistral7B-Attn";
    m.layers = {
        {"qk_window", LayerKind::SddmmWin, 16384, 128, 16384, 0.0,
         4096, 32},
    };
    return m;
}

ModelSpec
longformerAttn()
{
    // Longformer on BERT: window 512 over seq 4K (SDDMM-Win1), 12
    // heads of dim 64.
    ModelSpec m;
    m.name = "Longformer-Attn";
    m.layers = {
        {"qk_window", LayerKind::SddmmWin, 4096, 64, 4096, 0.0, 512,
         12},
    };
    return m;
}

const std::vector<std::string> &
knownModelNames()
{
    static const std::vector<std::string> names = {
        "resnet50",      "llama8b-mlp",   "llama8b-attn",
        "mistral7b-mlp", "mistral7b-attn", "longformer",
    };
    return names;
}

ModelSpec
modelByName(const std::string &name, double sparsity)
{
    if (name == "resnet50")
        return resnet50Conv(sparsity);
    if (name == "llama8b-mlp")
        return llama8bMlp(sparsity);
    if (name == "llama8b-attn")
        return llama8bAttn(sparsity);
    if (name == "mistral7b-mlp")
        return mistral7bMlp(sparsity);
    if (name == "mistral7b-attn")
        return mistral7bAttn();
    if (name == "longformer")
        return longformerAttn();
    fatal("unknown model '", name, "'");
    return {};
}

bool
modelUsesSparsity(const std::string &name)
{
    // Derived from the registry rather than a parallel name list (a
    // list would silently drift when a model is added): the model has
    // a sparsity knob iff moving the knob changes its layer specs.
    for (const auto &known : knownModelNames()) {
        if (known != name)
            continue;
        const ModelSpec lo = modelByName(name, 0.25);
        const ModelSpec hi = modelByName(name, 0.75);
        for (std::size_t i = 0;
             i < lo.layers.size() && i < hi.layers.size(); ++i)
            if (lo.layers[i].sparsity != hi.layers[i].sparsity)
                return true;
        return false;
    }
    return false;
}

ModelSpec
modelByName(const std::string &name)
{
    // Canonical Figure-14 sparsities (see bench_fig14_edp.cc).
    if (name == "resnet50")
        return resnet50Conv(0.5);
    return modelByName(name, 0.7);
}

} // namespace canon
