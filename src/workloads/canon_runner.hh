/**
 * @file
 * Paper-scale workloads on the Canon cycle simulator.
 *
 * The fabric natively executes tiles of shape N = cols*4 (output
 * columns) with B resident (dense-stationary, Section 6.4). This
 * runner:
 *
 *  - tiles wider problems into column passes (B slice swapped per
 *    pass, A re-streamed) and pads ragged edges with zeros,
 *  - for very large shapes simulates a statistically representative
 *    proxy (full K so per-row-slice populations are authentic; M
 *    capped; one column pass) and scales cycles/activity by the exact
 *    replication factor -- valid because passes are i.i.d. and the
 *    per-row control overheads are M-linear,
 *  - records the off-chip traffic of the dense-stationary schedule
 *    for the bandwidth analysis of Figure 16.
 *
 * Scaling decisions are recorded in the returned profile's workload
 * string; tests cross-validate proxy scaling against exact runs on
 * overlapping sizes.
 */

#ifndef CANON_WORKLOADS_CANON_RUNNER_HH
#define CANON_WORKLOADS_CANON_RUNNER_HH

#include "core/fabric.hh"
#include "kernels/dense_cadence.hh"
#include "kernels/sddmm.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"

namespace canon
{

/**
 * Floor of the derived proxy-row cap under the eager flush policy:
 * enough i.i.d. row-slices for the scaled statistics to sit within a
 * few percent of an exact run (cross-validated in workloads_test at
 * 8x8 through 32x32), while staying inside the flat region of the
 * per-row cycle cost -- under eager flushing, beyond roughly 1k
 * resident rows psum-tag merge misses make per-row cost superlinear
 * (docs/resident_rows.md), so simulating more rows would make the
 * M-linear extrapolation *less* faithful, not more.
 */
inline constexpr int kMinProxyRows = 512;

/**
 * Floor of the derived proxy-row cap under the adaptive flush
 * policy. Adaptive flushing keeps the per-row cost curve flat
 * through at least 4096 resident rows (the regenerated curve in
 * docs/resident_rows.md: the 2048-row cost is *below* the 512-row
 * cost on 16x16 and 32x32), so the proxy can afford a 4x larger
 * sample and the M-linear extrapolation only gets more faithful.
 */
inline constexpr int kMinProxyRowsAdaptive = 2048;

/**
 * Minimum simulated row-slices per orchestrator row. The proxy's
 * validity argument is that per-orchestrator work populations are
 * sampled representatively; on tall fabrics the 512-row floor alone
 * would thin each orchestrator's sample (512 rows over 64
 * orchestrators is 8 slices each), so the cap scales with height.
 */
inline constexpr int kMinProxySlicesPerRow = 16;

struct CanonRunOptions
{
    /**
     * Cap on simulated output rows; 0 (the default) derives the cap
     * from the fabric via effectiveProxyRows(): at least
     * kMinProxyRows (kMinProxyRowsAdaptive under the adaptive flush
     * policy, whose flat cost curve affords the larger sample), at
     * least kMinProxySlicesPerRow slices per orchestrator row,
     * rounded up to a multiple of the fabric height so every
     * orchestrator row simulates the same number of row-slices. For
     * the 8x8..32x32 fabrics the eager floor derives the historical
     * 512; taller fabrics get proportionally more rows instead of a
     * silently thinning sample.
     */
    int maxProxyRows = 0;
    int maxProxyPasses = 1;  //!< column passes actually simulated
    bool collectResult = false; //!< keep the (unscaled) output matrix

    /** The row cap in effect for @p cfg (explicit or derived). */
    int effectiveProxyRows(const CanonConfig &cfg) const;
};

class CanonRunner
{
  public:
    explicit CanonRunner(const CanonConfig &cfg = CanonConfig::paper())
        : cfg_(cfg)
    {
    }

    const CanonConfig &config() const { return cfg_; }

    /** Exact run of a concrete sparse matrix (shapes must be
     *  fabric-tileable after zero padding). */
    ExecutionProfile spmmExact(const CsrMatrix &a, const DenseMatrix &b,
                               WordMatrix *result_out = nullptr) const;

    /** Synthetic SpMM at (m, k, n) with unstructured @p sparsity. */
    ExecutionProfile spmmShape(std::int64_t m, std::int64_t k,
                               std::int64_t n, double sparsity,
                               std::uint64_t seed,
                               const CanonRunOptions &opt = {}) const;

    /** Dense GEMM at (m, k, n). */
    ExecutionProfile gemmShape(std::int64_t m, std::int64_t k,
                               std::int64_t n, std::uint64_t seed,
                               const CanonRunOptions &opt = {}) const;

    /** N:M structured SpMM at (m, k, n). */
    ExecutionProfile nmShape(std::int64_t m, std::int64_t k,
                             std::int64_t n, int nm_n, int nm_m,
                             std::uint64_t seed,
                             const CanonRunOptions &opt = {}) const;

    /** Unstructured SDDMM at (m, k, n) with output @p mask_sparsity. */
    ExecutionProfile sddmmShape(std::int64_t m, std::int64_t k,
                                std::int64_t n, double mask_sparsity,
                                std::uint64_t seed,
                                const CanonRunOptions &opt = {}) const;

    /** Sliding-window SDDMM (seq x seq scores, band @p window). */
    ExecutionProfile sddmmWindowShape(std::int64_t seq, std::int64_t k,
                                      std::int64_t window,
                                      std::uint64_t seed,
                                      const CanonRunOptions &opt = {})
        const;

  private:
    CanonConfig cfg_;
};

} // namespace canon

#endif // CANON_WORKLOADS_CANON_RUNNER_HH
