/**
 * @file
 * Layer specifications of the real ML models used in Figures 11 and
 * 14. The paper sparsifies activations (Liu et al. 2024) and
 * attention (Sanger/ViTCoD-style for unstructured, Longformer /
 * Mistral sliding-window for structured); here each model is a small
 * set of representative layers with the published dimensions, and the
 * sparse tensors themselves are synthesized at matching sparsity
 * (DESIGN.md, substitution table).
 */

#ifndef CANON_WORKLOADS_MODELS_HH
#define CANON_WORKLOADS_MODELS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace canon
{

enum class LayerKind : std::uint8_t
{
    Gemm,     //!< dense GEMM
    Spmm,     //!< unstructured activation-sparse GEMM
    SddmmU,   //!< unstructured sparse attention scores
    SddmmWin, //!< sliding-window attention scores
};

struct LayerSpec
{
    std::string name;
    LayerKind kind;
    std::int64_t m, k, n;
    double sparsity = 0.0;    //!< input (Spmm) or mask (SddmmU)
    std::int64_t window = 0;  //!< SddmmWin band width
    double repeats = 1.0;     //!< layer multiplicity in the model
};

struct ModelSpec
{
    std::string name;
    std::vector<LayerSpec> layers;
};

/** ResNet-50 conv stages as im2col GEMMs, 50 % activation sparsity. */
ModelSpec resnet50Conv(double sparsity = 0.5);

/** LLaMA-8B MLP (4096 -> 14336 -> 4096) at seq 512. */
ModelSpec llama8bMlp(double sparsity);

/** LLaMA-8B attention QK^T scores, unstructured sparsification. */
ModelSpec llama8bAttn(double sparsity = 0.7);

/** Mistral-7B MLP (4096 -> 14336 -> 4096) at seq 512. */
ModelSpec mistral7bMlp(double sparsity);

/** Mistral-7B sliding-window attention (window 4096, context 16K). */
ModelSpec mistral7bAttn();

/** BERT + Longformer window (Win1: window 512, seq 4K). */
ModelSpec longformerAttn();

/**
 * CLI names of every predefined model, in Figure-14 order
 * ("resnet50", "llama8b-mlp", ...).
 */
const std::vector<std::string> &knownModelNames();

/**
 * Look up a model by its CLI name. @p sparsity feeds the model's
 * sparsified layers (ignored by the purely window-structured
 * attention models). Throws FatalError for an unknown name; callers
 * validate against knownModelNames() first.
 */
ModelSpec modelByName(const std::string &name, double sparsity);

/**
 * Same lookup at each model's canonical Figure-14 sparsity
 * (ResNet-50 at 0.5, the LLaMA/Mistral sparse variants at 0.7), so
 * CLI model runs reproduce the bench figures by default.
 */
ModelSpec modelByName(const std::string &name);

/**
 * True when model @p name has a sparsity knob (i.e. modelByName's
 * sparsity argument feeds its layers). The purely window-structured
 * attention models (mistral7b-attn, longformer) ignore it, which the
 * CLI's relevance matrix and the result cache rely on. Unknown names
 * report false.
 */
bool modelUsesSparsity(const std::string &name);

} // namespace canon

#endif // CANON_WORKLOADS_MODELS_HH
