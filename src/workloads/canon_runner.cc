#include "workloads/canon_runner.hh"

#include <algorithm>

#include "common/bitfield.hh"

namespace canon
{

namespace
{

/** Round @p v up to a multiple of @p q. */
std::int64_t
roundUp(std::int64_t v, std::int64_t q)
{
    return divCeil(static_cast<std::uint64_t>(v),
                   static_cast<std::uint64_t>(q)) *
           q;
}

/** Re-home a CSR matrix into a padded (rows x cols) shape. */
CsrMatrix
padCsr(const CsrMatrix &a, int rows, int cols)
{
    CsrMatrix out(rows, cols);
    const auto &rp = a.rowPtr();
    for (int r = 0; r < a.rows(); ++r)
        for (auto i = rp[r]; i < rp[r + 1]; ++i)
            out.append(r, a.colIdx()[i], a.values()[i]);
    return out;
}

/** Zero-pad a dense matrix to (rows x cols). */
DenseMatrix
padDense(const DenseMatrix &d, int rows, int cols)
{
    DenseMatrix out(rows, cols);
    for (int r = 0; r < d.rows(); ++r)
        for (int c = 0; c < d.cols(); ++c)
            out.at(r, c) = d.at(r, c);
    return out;
}

/** Slice columns [c0, c0+w) of @p d, zero-padded past the edge. */
DenseMatrix
sliceCols(const DenseMatrix &d, int c0, int w)
{
    DenseMatrix out(d.rows(), w);
    for (int r = 0; r < d.rows(); ++r)
        for (int c = 0; c < w; ++c)
            if (c0 + c < d.cols())
                out.at(r, c) = d.at(r, c0 + c);
    return out;
}

/** Dense-stationary off-chip traffic for one SpMM-style execution. */
std::uint64_t
spmmOffchipBytes(std::uint64_t nnz, std::int64_t m, std::int64_t k,
                 std::int64_t n, std::uint64_t passes)
{
    // B resident once (INT8), A re-streamed per pass (value byte +
    // 2-byte coordinate + row tokens), C written back as INT32.
    return static_cast<std::uint64_t>(k) * n +
           passes * (nnz * 3 + static_cast<std::uint64_t>(m) * 2) +
           static_cast<std::uint64_t>(m) * n * 4;
}

} // namespace

int
CanonRunOptions::effectiveProxyRows(const CanonConfig &cfg) const
{
    if (maxProxyRows > 0)
        return maxProxyRows;
    const int base = cfg.spadFlush == SpadFlushPolicy::Adaptive
                         ? kMinProxyRowsAdaptive
                         : kMinProxyRows;
    const std::int64_t floor = std::max<std::int64_t>(
        base,
        static_cast<std::int64_t>(kMinProxySlicesPerRow) * cfg.rows);
    return static_cast<int>(roundUp(floor, cfg.rows));
}

ExecutionProfile
CanonRunner::spmmExact(const CsrMatrix &a, const DenseMatrix &b,
                       WordMatrix *result_out) const
{
    const int tile_n = cfg_.cols * kSimdWidth;
    const int k_pad =
        static_cast<int>(roundUp(b.rows(), cfg_.rows));
    fatalIf(k_pad / cfg_.rows > cfg_.dmemSlots,
            "CanonRunner: K=", b.rows(),
            " exceeds on-chip capacity; tile K upstream");
    const auto a_pad = a.cols() == k_pad ? a : padCsr(a, a.rows(), k_pad);
    const auto b_pad =
        b.rows() == k_pad ? b : padDense(b, k_pad, b.cols());

    const int passes =
        static_cast<int>(divCeil(static_cast<std::uint64_t>(b.cols()),
                                 static_cast<std::uint64_t>(tile_n)));
    if (result_out)
        *result_out = WordMatrix(a.rows(), b.cols());

    ExecutionProfile total;
    total.arch = "canon";
    total.workload = "spmm";
    total.peCount = static_cast<std::uint64_t>(cfg_.numPes());
    for (int p = 0; p < passes; ++p) {
        CanonFabric fabric(cfg_);
        fabric.load(
            mapSpmm(a_pad, sliceCols(b_pad, p * tile_n, tile_n), cfg_));
        fabric.run();
        total.accumulate(fabric.profile("spmm"));
        if (result_out) {
            const auto &r = fabric.result();
            for (int m = 0; m < r.rows(); ++m)
                for (int c = 0; c < tile_n; ++c)
                    if (p * tile_n + c < result_out->cols())
                        result_out->at(m, p * tile_n + c) =
                            r.at(m, c);
        }
    }
    total.add("offchipBytes",
              spmmOffchipBytes(a.nnz(), a.rows(), b.rows(), b.cols(),
                               static_cast<std::uint64_t>(passes)));
    return total;
}

ExecutionProfile
CanonRunner::spmmShape(std::int64_t m, std::int64_t k, std::int64_t n,
                       double sparsity, std::uint64_t seed,
                       const CanonRunOptions &opt) const
{
    const int tile_n = cfg_.cols * kSimdWidth;
    const std::int64_t k_cap =
        static_cast<std::int64_t>(cfg_.rows) * cfg_.dmemSlots;

    const auto mp = static_cast<int>(
        std::min<std::int64_t>(m, opt.effectiveProxyRows(cfg_)));
    const auto kp = static_cast<int>(
        roundUp(std::min(k, k_cap), cfg_.rows));
    const auto passes_total = divCeil(static_cast<std::uint64_t>(n),
                                      static_cast<std::uint64_t>(tile_n));
    const auto passes_sim = std::min<std::uint64_t>(
        passes_total, static_cast<std::uint64_t>(opt.maxProxyPasses));

    Rng rng(seed);
    const auto a = randomSparse(mp, kp, sparsity, rng);
    const auto b =
        randomDense(kp, static_cast<int>(passes_sim) * tile_n, rng);

    auto p = spmmExact(CsrMatrix::fromDense(a), b);
    const double factor = (static_cast<double>(m) / mp) *
                          (static_cast<double>(k) / kp) *
                          (static_cast<double>(passes_total) /
                           static_cast<double>(passes_sim));
    p.scale(factor);
    p.workload = "spmm";
    return p;
}

ExecutionProfile
CanonRunner::gemmShape(std::int64_t m, std::int64_t k, std::int64_t n,
                       std::uint64_t seed,
                       const CanonRunOptions &opt) const
{
    const int tile_n = cfg_.cols * kSimdWidth;
    const std::int64_t k_cap =
        static_cast<std::int64_t>(cfg_.rows) * cfg_.dmemSlots;
    const auto mp = static_cast<int>(
        std::min<std::int64_t>(m, opt.effectiveProxyRows(cfg_)));
    const auto kp =
        static_cast<int>(roundUp(std::min(k, k_cap), cfg_.rows));
    const auto passes_total = divCeil(static_cast<std::uint64_t>(n),
                                      static_cast<std::uint64_t>(tile_n));
    const auto passes_sim = std::min<std::uint64_t>(
        passes_total, static_cast<std::uint64_t>(opt.maxProxyPasses));

    Rng rng(seed);
    const auto a = randomDense(mp, kp, rng);
    const auto b = randomDense(kp, tile_n, rng);

    ExecutionProfile total;
    total.arch = "canon";
    total.peCount = static_cast<std::uint64_t>(cfg_.numPes());
    for (std::uint64_t p = 0; p < passes_sim; ++p) {
        CanonFabric fabric(cfg_);
        fabric.load(mapGemm(a, b, cfg_));
        fabric.run();
        total.accumulate(fabric.profile("gemm"));
    }
    const double factor = (static_cast<double>(m) / mp) *
                          (static_cast<double>(k) / kp) *
                          (static_cast<double>(passes_total) /
                           static_cast<double>(passes_sim));
    total.scale(factor);
    total.add("offchipBytes",
              spmmOffchipBytes(static_cast<std::uint64_t>(m) * k, m, k,
                               n, passes_total));
    total.workload = "gemm";
    return total;
}

ExecutionProfile
CanonRunner::nmShape(std::int64_t m, std::int64_t k, std::int64_t n,
                     int nm_n, int nm_m, std::uint64_t seed,
                     const CanonRunOptions &opt) const
{
    const int tile_n = cfg_.cols * kSimdWidth;
    const std::int64_t k_cap =
        static_cast<std::int64_t>(cfg_.rows) * cfg_.dmemSlots;
    // The K tile must divide by rows and each slice by the pattern M.
    const std::int64_t k_quantum =
        static_cast<std::int64_t>(cfg_.rows) * nm_m;
    const auto mp = static_cast<int>(
        std::min<std::int64_t>(m, opt.effectiveProxyRows(cfg_)));
    std::int64_t kp64 = roundUp(std::min(k, k_cap), k_quantum);
    if (kp64 > k_cap)
        kp64 -= k_quantum;
    const auto kp =
        static_cast<int>(std::max<std::int64_t>(kp64, k_quantum));
    const auto passes_total = divCeil(static_cast<std::uint64_t>(n),
                                      static_cast<std::uint64_t>(tile_n));
    const auto passes_sim = std::min<std::uint64_t>(
        passes_total, static_cast<std::uint64_t>(opt.maxProxyPasses));

    Rng rng(seed);
    const auto a = nmStructured(mp, kp, nm_n, nm_m, rng);
    const auto b = randomDense(kp, tile_n, rng);

    ExecutionProfile total;
    total.arch = "canon";
    total.peCount = static_cast<std::uint64_t>(cfg_.numPes());
    for (std::uint64_t p = 0; p < passes_sim; ++p) {
        CanonFabric fabric(cfg_);
        fabric.load(mapNmSpmm(a, b, nm_n, nm_m, cfg_));
        fabric.run();
        total.accumulate(fabric.profile("nm-spmm"));
    }
    const double factor = (static_cast<double>(m) / mp) *
                          (static_cast<double>(k) / kp) *
                          (static_cast<double>(passes_total) /
                           static_cast<double>(passes_sim));
    total.scale(factor);
    const auto nnz = static_cast<std::uint64_t>(m) * k * nm_n / nm_m;
    total.add("offchipBytes", spmmOffchipBytes(nnz, m, k, n,
                                               passes_total));
    total.workload = "spmm-" + std::to_string(nm_n) + ":" +
                     std::to_string(nm_m);
    return total;
}

ExecutionProfile
CanonRunner::sddmmShape(std::int64_t m, std::int64_t k, std::int64_t n,
                        double mask_sparsity, std::uint64_t seed,
                        const CanonRunOptions &opt) const
{
    const int kp = cfg_.cols * kSimdWidth; // native K tile
    const std::int64_t n_cap =
        static_cast<std::int64_t>(cfg_.rows) * cfg_.dmemSlots;
    const auto mp = static_cast<int>(
        std::min<std::int64_t>(m, opt.effectiveProxyRows(cfg_)));
    const auto np = static_cast<int>(
        roundUp(std::min(n, n_cap), cfg_.rows));

    Rng rng(seed);
    const auto a = randomDense(mp, kp, rng);
    const auto b = randomDense(kp, np, rng);
    const auto mask = randomMask(mp, np, mask_sparsity, rng);

    CanonFabric fabric(cfg_);
    fabric.load(mapSddmm(mask, a, b, cfg_));
    fabric.run();
    auto p = fabric.profile("sddmm");
    // Work per mask position and per streamed A vector both scale
    // linearly in K (K/kp instruction repetitions), so the whole
    // profile scales.
    const double factor = (static_cast<double>(m) / mp) *
                          (static_cast<double>(k) / kp) *
                          (static_cast<double>(n) / np);
    p.scale(factor);
    const auto mask_nnz = static_cast<std::uint64_t>(
        static_cast<double>(m) * static_cast<double>(n) *
        (1.0 - mask_sparsity));
    p.add("offchipBytes", static_cast<std::uint64_t>(m) * k +
                              static_cast<std::uint64_t>(k) * n +
                              mask_nnz * 7);
    p.workload = "sddmm";
    return p;
}

ExecutionProfile
CanonRunner::sddmmWindowShape(std::int64_t seq, std::int64_t k,
                              std::int64_t window, std::uint64_t seed,
                              const CanonRunOptions &opt) const
{
    // Section 4.1.3: sliding-window sparsity is *structured*, so the
    // generic masked mapping (which would concentrate the diagonal
    // band on one PE row at a time) is not used. Instead "the output
    // sparsity is decomposed into dense rows, where each row
    // corresponds to a vector-matrix multiplication" with the key
    // tile resident and shifted for perfect reuse -- i.e. a dense
    // (seq x k x window) product computing exactly the band, executed
    // through the register-cadence program.
    auto p = gemmShape(seq, k, window, seed, opt);
    p.activity.erase("offchipBytes");
    // Dense-stationary traffic: Q and K once, band scores out.
    p.add("offchipBytes",
          static_cast<std::uint64_t>(seq) * k * 2 +
              static_cast<std::uint64_t>(static_cast<double>(seq) *
                                         static_cast<double>(window)) *
                  4);
    p.workload = "sddmm-win";
    return p;
}

} // namespace canon
