#include "workloads/suite.hh"

#include <cmath>

#include "common/bitfield.hh"

namespace canon
{

ArchSuite::ArchSuite(const CanonConfig &cfg) : ArchSuite(cfg, {}) {}

ArchSuite::ArchSuite(const CanonConfig &cfg,
                     const std::vector<std::string> &archs)
    : canon_(cfg),
      systolic_(SystolicConfig{16, 16, SparsitySupport::Dense}),
      systolic24_(SystolicConfig{16, 16, SparsitySupport::TwoFour}),
      zed_(ZedConfig{}), cgra_(CgraConfig{}),
      archs_(archs.begin(), archs.end())
{
}

std::vector<std::int64_t>
ArchSuite::sampleRowNnz(std::int64_t rows, std::int64_t k,
                        double density, std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<std::int64_t> nnz;
    nnz.reserve(static_cast<std::size_t>(rows));
    if (k <= 2048) {
        for (std::int64_t r = 0; r < rows; ++r) {
            std::int64_t c = 0;
            for (std::int64_t i = 0; i < k; ++i)
                if (rng.nextBool(density))
                    ++c;
            nnz.push_back(c);
        }
        return nnz;
    }
    // Normal approximation of Binomial(k, density) for large k.
    const double mean = static_cast<double>(k) * density;
    const double sd = std::sqrt(mean * (1.0 - density));
    for (std::int64_t r = 0; r < rows; ++r) {
        const double u1 = std::max(rng.nextDouble(), 1e-12);
        const double u2 = rng.nextDouble();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * M_PI * u2);
        const double v = std::round(mean + sd * z);
        nnz.push_back(static_cast<std::int64_t>(
            std::clamp(v, 0.0, static_cast<double>(k))));
    }
    return nnz;
}

CaseResult
ArchSuite::gemm(std::int64_t m, std::int64_t k, std::int64_t n,
                std::uint64_t seed) const
{
    CaseResult r;
    if (enabled("canon"))
        r["canon"] = canon_.gemmShape(m, k, n, seed);
    if (enabled("systolic"))
        r["systolic"] = systolic_.gemm(m, k, n);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.gemm(m, k, n);
    if (enabled("zed"))
        r["zed"] = zed_.gemm(m, k, n);
    if (enabled("cgra"))
        r["cgra"] = cgra_.gemm(m, k, n);
    return r;
}

CaseResult
ArchSuite::spmm(std::int64_t m, std::int64_t k, std::int64_t n,
                double sparsity, std::uint64_t seed) const
{
    CaseResult r;
    if (enabled("canon"))
        r["canon"] = canon_.spmmShape(m, k, n, sparsity, seed);
    if (enabled("systolic"))
        r["systolic"] = systolic_.spmm(m, k, n, sparsity);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.spmm(m, k, n, sparsity);
    if (enabled("zed"))
        r["zed"] = zed_.spmmRows(
            sampleRowNnz(m, k, 1.0 - sparsity, seed + 1), n);
    if (enabled("cgra"))
        r["cgra"] = cgra_.spmm(m, k, n, sparsity);
    return r;
}

CaseResult
ArchSuite::spmmBimodal(std::int64_t m, std::int64_t k, std::int64_t n,
                       double sparsity_a, double sparsity_b,
                       std::uint64_t seed) const
{
    const auto &cfg = canon_.config();
    const int tile_n = cfg.cols * kSimdWidth;
    const double avg = (sparsity_a + sparsity_b) / 2.0;

    CaseResult r;
    if (enabled("canon") || enabled("zed")) {
        // Build the skewed matrix at proxy size; both the Canon cycle
        // simulator and ZeD's row model consume the *same* population.
        const auto mp =
            static_cast<int>(std::min<std::int64_t>(m, 512));
        const auto kp = static_cast<int>(std::min<std::int64_t>(
            k, static_cast<std::int64_t>(cfg.rows) * cfg.dmemSlots));
        Rng rng(seed);
        const auto a =
            randomSparseBimodal(mp, kp, sparsity_a, sparsity_b, rng);
        const auto csr = CsrMatrix::fromDense(a);

        if (enabled("canon")) {
            const auto b = randomDense(kp, tile_n, rng);
            const auto passes =
                divCeil(static_cast<std::uint64_t>(n),
                        static_cast<std::uint64_t>(tile_n));
            const double factor = (static_cast<double>(m) / mp) *
                                  (static_cast<double>(k) / kp) *
                                  static_cast<double>(passes);
            auto canon_p = canon_.spmmExact(csr, b);
            canon_p.scale(factor);
            canon_p.workload = "spmm-skewed";
            r["canon"] = canon_p;
        }

        if (enabled("zed")) {
            // ZeD holds the whole B (its banks are sized for it), so
            // it runs the full output width in one pass: scale only
            // the m/k proxying.
            std::vector<std::int64_t> rows;
            rows.reserve(static_cast<std::size_t>(mp));
            for (int i = 0; i < csr.rows(); ++i)
                rows.push_back(csr.rowNnz(i));
            auto zed_p = zed_.spmmRows(rows, n);
            zed_p.scale((static_cast<double>(m) / mp) *
                        (static_cast<double>(k) / kp));
            r["zed"] = zed_p;
        }
    }

    if (enabled("systolic"))
        r["systolic"] = systolic_.spmm(m, k, n, avg);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.spmm(m, k, n, avg);
    if (enabled("cgra"))
        r["cgra"] = cgra_.spmm(m, k, n, avg);
    return r;
}

CaseResult
ArchSuite::spmmNm(std::int64_t m, std::int64_t k, std::int64_t n,
                  int nm_n, int nm_m, std::uint64_t seed) const
{
    CaseResult r;
    if (enabled("canon"))
        r["canon"] = canon_.nmShape(m, k, n, nm_n, nm_m, seed);
    if (enabled("systolic"))
        r["systolic"] = systolic_.gemm(m, k, n);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.gemm(m, k, n, {nm_n, nm_m});
    if (enabled("zed")) {
        // ZeD treats structure as plain unstructured non-zeros: rows
        // are perfectly balanced at k*n/m non-zeros each.
        std::vector<std::int64_t> rows(
            static_cast<std::size_t>(m),
            static_cast<std::int64_t>(k) * nm_n / nm_m);
        r["zed"] = zed_.spmmRows(rows, n);
    }
    if (enabled("cgra"))
        r["cgra"] = cgra_.spmm(m, k, n,
                               1.0 - static_cast<double>(nm_n) / nm_m);
    return r;
}

CaseResult
ArchSuite::sddmm(std::int64_t m, std::int64_t k, std::int64_t n,
                 double mask_sparsity, std::uint64_t seed) const
{
    CaseResult r;
    if (enabled("canon"))
        r["canon"] = canon_.sddmmShape(m, k, n, mask_sparsity, seed);
    if (enabled("systolic"))
        r["systolic"] = systolic_.sddmm(m, k, n, mask_sparsity);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.sddmm(m, k, n, mask_sparsity);
    if (enabled("zed"))
        r["zed"] = zed_.sddmmRows(
            sampleRowNnz(m, n, 1.0 - mask_sparsity, seed + 1), k);
    if (enabled("cgra"))
        r["cgra"] = cgra_.sddmm(m, k, n, mask_sparsity);
    return r;
}

CaseResult
ArchSuite::sddmmWindow(std::int64_t seq, std::int64_t k,
                       std::int64_t window, std::uint64_t seed) const
{
    CaseResult r;
    if (enabled("canon"))
        r["canon"] = canon_.sddmmWindowShape(seq, k, window, seed);
    if (enabled("systolic"))
        r["systolic"] = systolic_.sddmmWindow(seq, k, window);
    if (enabled("systolic24"))
        r["systolic24"] = systolic24_.sddmmWindow(seq, k, window);
    if (enabled("zed")) {
        // ZeD sees the band as an unstructured mask: `window` live
        // positions per row.
        std::vector<std::int64_t> rows(static_cast<std::size_t>(seq),
                                       window);
        r["zed"] = zed_.sddmmRows(rows, k);
    }
    if (enabled("cgra"))
        r["cgra"] = cgra_.sddmmWindow(seq, k, window);
    return r;
}

CaseResult
ArchSuite::model(const ModelSpec &spec, std::uint64_t seed) const
{
    CaseResult total;
    std::uint64_t salt = seed;
    for (const auto &layer : spec.layers) {
        CaseResult one;
        switch (layer.kind) {
          case LayerKind::Gemm:
            one = gemm(layer.m, layer.k, layer.n, salt);
            break;
          case LayerKind::Spmm:
            one = spmm(layer.m, layer.k, layer.n, layer.sparsity,
                       salt);
            break;
          case LayerKind::SddmmU:
            one = sddmm(layer.m, layer.k, layer.n, layer.sparsity,
                        salt);
            break;
          case LayerKind::SddmmWin:
            one = sddmmWindow(layer.m, layer.k, layer.window, salt);
            break;
        }
        for (auto &[arch, profile] : one) {
            profile.scale(layer.repeats);
            auto it = total.find(arch);
            if (it == total.end()) {
                profile.workload = spec.name;
                total.emplace(arch, std::move(profile));
            } else {
                it->second.accumulate(profile);
            }
        }
        ++salt;
    }
    return total;
}

} // namespace canon
