/**
 * @file
 * Cross-architecture workload execution: one call runs a workload
 * case on every architecture of Section 5 (Canon cycle simulation,
 * systolic / 2:4-systolic / ZeD / CGRA models) and returns the
 * profiles keyed by architecture name. Architectures that cannot run
 * a case (the "X" marks of Figures 12/13) are simply absent from the
 * result.
 */

#ifndef CANON_WORKLOADS_SUITE_HH
#define CANON_WORKLOADS_SUITE_HH

#include <map>
#include <set>
#include <string>

#include "baselines/cgra.hh"
#include "baselines/systolic.hh"
#include "baselines/zed.hh"
#include "workloads/canon_runner.hh"
#include "workloads/models.hh"

namespace canon
{

using CaseResult = std::map<std::string, ExecutionProfile>;

class ArchSuite
{
  public:
    explicit ArchSuite(const CanonConfig &cfg = CanonConfig::paper());

    /**
     * Suite restricted to @p archs (names as in the driver: "canon",
     * "systolic", "systolic24", "zed", "cgra"). Unselected
     * architectures are skipped entirely -- in particular a
     * baseline-only run no longer pays for the dominant Canon cycle
     * simulation. An empty set selects every architecture.
     */
    ArchSuite(const CanonConfig &cfg,
              const std::vector<std::string> &archs);

    /** True when @p arch is in the selected set. */
    bool enabled(const std::string &arch) const
    {
        return archs_.empty() || archs_.count(arch) != 0;
    }

    CaseResult gemm(std::int64_t m, std::int64_t k, std::int64_t n,
                    std::uint64_t seed) const;

    CaseResult spmm(std::int64_t m, std::int64_t k, std::int64_t n,
                    double sparsity, std::uint64_t seed) const;

    /**
     * SpMM with a bimodal row population (alternating rows at the two
     * sparsities): the skewed-input regime where row-granular work
     * distribution struggles (Section 6.2's S3 cases).
     */
    CaseResult spmmBimodal(std::int64_t m, std::int64_t k,
                           std::int64_t n, double sparsity_a,
                           double sparsity_b,
                           std::uint64_t seed) const;

    CaseResult spmmNm(std::int64_t m, std::int64_t k, std::int64_t n,
                      int nm_n, int nm_m, std::uint64_t seed) const;

    CaseResult sddmm(std::int64_t m, std::int64_t k, std::int64_t n,
                     double mask_sparsity, std::uint64_t seed) const;

    CaseResult sddmmWindow(std::int64_t seq, std::int64_t k,
                           std::int64_t window,
                           std::uint64_t seed) const;

    /** Run a whole model (Figure 14): per-arch accumulated profile. */
    CaseResult model(const ModelSpec &spec, std::uint64_t seed) const;

    const CanonRunner &canon() const { return canon_; }
    const ZedModel &zed() const { return zed_; }
    const CgraModel &cgra() const { return cgra_; }

  private:
    /** Binomially distributed per-row nnz for the ZeD row model. */
    std::vector<std::int64_t> sampleRowNnz(std::int64_t rows,
                                           std::int64_t k,
                                           double density,
                                           std::uint64_t seed) const;

    CanonRunner canon_;
    SystolicModel systolic_;
    SystolicModel systolic24_;
    ZedModel zed_;
    CgraModel cgra_;
    std::set<std::string> archs_; //!< empty = all selected
};

} // namespace canon

#endif // CANON_WORKLOADS_SUITE_HH
