#include "workloads/polybench.hh"

#include <algorithm>

#include "noc/inst_pipeline.hh"

namespace canon
{

const char *
polyGroupName(PolyGroup g)
{
    switch (g) {
      case PolyGroup::Blas: return "PolyB-BLAS";
      case PolyGroup::Kernel: return "PolyB-Kernel";
      case PolyGroup::Stencil: return "PolyB-Stencil";
    }
    return "?";
}

namespace
{

/** load a; load b; acc += a*b  (the MAC triad every BLAS body uses) */
Dfg
macBody(const std::string &name)
{
    Dfg d(name);
    const int la = d.addNode("ldA", DfgOp::Load, 2);
    const int lb = d.addNode("ldB", DfgOp::Load, 2);
    const int mul = d.addNode("mul", DfgOp::Mul, 1);
    const int acc = d.addNode("acc", DfgOp::Add, 1);
    d.addEdge(la, mul);
    d.addEdge(lb, mul);
    d.addEdge(mul, acc);
    return d;
}

/** Two independent MACs sharing one streamed operand (gesummv etc). */
Dfg
dualMacBody(const std::string &name)
{
    Dfg d(name);
    const int lx = d.addNode("ldX", DfgOp::Load, 2);
    const int la = d.addNode("ldA", DfgOp::Load, 2);
    const int lb = d.addNode("ldB", DfgOp::Load, 2);
    const int m1 = d.addNode("mulA", DfgOp::Mul, 1);
    const int m2 = d.addNode("mulB", DfgOp::Mul, 1);
    const int a1 = d.addNode("accA", DfgOp::Add, 1);
    const int a2 = d.addNode("accB", DfgOp::Add, 1);
    d.addEdge(lx, m1);
    d.addEdge(la, m1);
    d.addEdge(lx, m2);
    d.addEdge(lb, m2);
    d.addEdge(m1, a1);
    d.addEdge(m2, a2);
    return d;
}

/** k-point stencil: k loads, k-1 adds, one scale, one store. */
Dfg
stencilBody(const std::string &name, int points)
{
    Dfg d(name);
    std::vector<int> loads;
    for (int i = 0; i < points; ++i)
        loads.push_back(
            d.addNode("ld" + std::to_string(i), DfgOp::Load, 2));
    int acc = loads[0];
    for (int i = 1; i < points; ++i) {
        const int add = d.addNode("add" + std::to_string(i),
                                  DfgOp::Add, 1);
        d.addEdge(acc, add);
        d.addEdge(loads[static_cast<std::size_t>(i)], add);
        acc = add;
    }
    const int scale = d.addNode("scale", DfgOp::Mul, 1);
    d.addEdge(acc, scale);
    const int st = d.addNode("st", DfgOp::Store, 1);
    d.addEdge(scale, st);
    return d;
}

/** Solver step: load, mul, sub, div-ish (modelled as mul), store. */
Dfg
solverBody(const std::string &name)
{
    Dfg d(name);
    const int la = d.addNode("ldA", DfgOp::Load, 2);
    const int lx = d.addNode("ldX", DfgOp::Load, 2);
    const int mul = d.addNode("mul", DfgOp::Mul, 1);
    const int sub = d.addNode("sub", DfgOp::Sub, 1);
    const int scl = d.addNode("scale", DfgOp::Mul, 1);
    const int st = d.addNode("st", DfgOp::Store, 1);
    d.addEdge(la, mul);
    d.addEdge(lx, mul);
    d.addEdge(mul, sub);
    d.addEdge(sub, scl);
    d.addEdge(scl, st);
    return d;
}

constexpr std::int64_t kN = 256;  // vector/matrix dimension
constexpr std::int64_t kT = 50;   // stencil time steps

} // namespace

std::vector<PolybenchKernel>
polybenchSuite()
{
    std::vector<PolybenchKernel> suite;
    const std::int64_t n2 = kN * kN;
    const std::int64_t n3 = n2 * kN;

    // ---- PolyB-BLAS (linear-algebra/blas + solvers) -------------------
    suite.push_back({"gemm", PolyGroup::Blas, macBody("gemm"), n3, 1,
                     n2, 1.0, false});
    suite.push_back({"gemver", PolyGroup::Blas, dualMacBody("gemver"),
                     4 * n2, 1, kN, 1.0, false});
    suite.push_back({"gesummv", PolyGroup::Blas,
                     dualMacBody("gesummv"), n2, 1, kN, 1.0, false});
    suite.push_back({"symm", PolyGroup::Blas, macBody("symm"), n3 / 2,
                     1, kN, 0.75, false});
    suite.push_back({"syrk", PolyGroup::Blas, macBody("syrk"), n3 / 2,
                     1, n2 / 2, 1.0, false});
    suite.push_back({"syr2k", PolyGroup::Blas, dualMacBody("syr2k"),
                     n3 / 2, 1, n2 / 2, 1.0, false});
    suite.push_back({"trmm", PolyGroup::Blas, macBody("trmm"), n3 / 2,
                     1, kN, 0.75, false});
    suite.push_back({"trisolv", PolyGroup::Blas, solverBody("trisolv"),
                     n2 / 2, 2, 1, 0.5, true});
    suite.push_back({"durbin", PolyGroup::Blas, solverBody("durbin"),
                     n2 / 2, 3, 1, 0.25, true});
    suite.push_back({"lu", PolyGroup::Blas, macBody("lu"), n3 / 3, 2,
                     8, 0.5, true});
    suite.push_back({"ludcmp", PolyGroup::Blas, solverBody("ludcmp"),
                     n3 / 3, 2, 8, 0.5, true});

    // ---- PolyB-Kernel (linear-algebra/kernels) ------------------------
    suite.push_back({"2mm", PolyGroup::Kernel, macBody("2mm"), 2 * n3,
                     1, n2, 1.0, false});
    suite.push_back({"3mm", PolyGroup::Kernel, macBody("3mm"), 3 * n3,
                     1, n2, 1.0, false});
    suite.push_back({"atax", PolyGroup::Kernel, macBody("atax"),
                     2 * n2, 1, kN, 1.0, false});
    suite.push_back({"bicg", PolyGroup::Kernel, dualMacBody("bicg"),
                     n2, 1, kN, 1.0, false});
    suite.push_back({"doitgen", PolyGroup::Kernel,
                     macBody("doitgen"), n3, 1, n2, 1.0, false});
    suite.push_back({"mvt", PolyGroup::Kernel, dualMacBody("mvt"), n2,
                     1, kN, 1.0, false});

    // ---- PolyB-Stencil -------------------------------------------------
    suite.push_back({"jacobi-1d", PolyGroup::Stencil,
                     stencilBody("jacobi-1d", 3), kT * kN, 1, kN, 1.0,
                     false});
    suite.push_back({"jacobi-2d", PolyGroup::Stencil,
                     stencilBody("jacobi-2d", 5), kT * n2, 1, n2, 1.0,
                     false});
    suite.push_back({"seidel-2d", PolyGroup::Stencil,
                     stencilBody("seidel-2d", 9), kT * n2, 2, 16, 0.5,
                     false});
    suite.push_back({"fdtd-2d", PolyGroup::Stencil,
                     stencilBody("fdtd-2d", 4), 3 * kT * n2, 1, n2,
                     1.0, false});
    suite.push_back({"heat-3d", PolyGroup::Stencil,
                     stencilBody("heat-3d", 7), kT * n2 * 16, 1, n2,
                     1.0, false});
    suite.push_back({"adi", PolyGroup::Stencil,
                     solverBody("adi"), 2 * kT * n2, 2, kN, 0.75,
                     false});
    return suite;
}

ExecutionProfile
canonPolybench(const PolybenchKernel &k, const CanonConfig &cfg)
{
    ExecutionProfile p;
    p.arch = "canon";
    p.workload = k.name;
    p.peCount = static_cast<std::uint64_t>(cfg.numPes());

    const double lanes =
        static_cast<double>(cfg.numPes()) * kSimdWidth;
    // Scalar residue occupies one of four lanes.
    const double vec_eff =
        k.vecFraction + (1.0 - k.vecFraction) * 0.25;

    // Canon decouples data movement: loads/stores ride the EDDO
    // movers and the operand addresses come from the orchestrator, so
    // only arithmetic occupies the vector lanes -- and a mul feeding
    // an add fuses into one MAC lane op. (The CGRA, in contrast,
    // spatializes every DFG node onto a PE.)
    std::uint64_t mul_like = 0, add_like = 0;
    for (int v = 0; v < k.body.size(); ++v) {
        switch (k.body.node(v).op) {
          case DfgOp::Mul:
          case DfgOp::Mac:
            ++mul_like;
            break;
          case DfgOp::Load:
          case DfgOp::Store:
            break;
          default:
            ++add_like;
        }
    }
    const double lane_ops_per_iter = static_cast<double>(
        std::max<std::uint64_t>(std::max(mul_like, add_like), 1));
    const double ops =
        static_cast<double>(k.iters) * lane_ops_per_iter;

    const double compute_bound = ops / (lanes * vec_eff);
    // Conditional bodies are confined to PE rows: at most `rows`
    // independent control contexts (Section 4.2).
    const auto unroll_eff = std::max<std::int64_t>(
        1, k.condInner ? std::min<std::int64_t>(k.dlp, cfg.rows)
                       : k.dlp);
    const double dep_bound = static_cast<double>(k.iters) * k.recMii /
                             static_cast<double>(unroll_eff);

    // 6% orchestration overhead (flush/merge cadence measured on the
    // tensor kernels) plus the pipeline fill of the staggered issue.
    const double cycles = std::max(compute_bound, dep_bound) * 1.06 +
                          kIssueStagger * cfg.cols + 10;
    p.cycles = static_cast<std::uint64_t>(cycles);

    std::uint64_t mem_nodes = 0;
    for (int v = 0; v < k.body.size(); ++v) {
        const auto op = k.body.node(v).op;
        if (op == DfgOp::Load || op == DfgOp::Store)
            ++mem_nodes;
    }
    p.add("laneMacs", static_cast<std::uint64_t>(k.iters) * mul_like);
    p.add("aluOps",
          static_cast<std::uint64_t>(k.iters) *
              (add_like > mul_like ? add_like - mul_like : 0));
    p.add("dmemReads",
          static_cast<std::uint64_t>(k.iters) * mem_nodes / 4);
    p.add("orchCycles",
          p.cycles * static_cast<std::uint64_t>(cfg.rows));
    p.add("lutLookups",
          p.cycles * static_cast<std::uint64_t>(cfg.rows));
    p.add("instHops", p.cycles * static_cast<std::uint64_t>(
                                     cfg.rows * cfg.cols));
    p.add("routerHops",
          static_cast<std::uint64_t>(k.iters) * mem_nodes / 8);
    return p;
}

ExecutionProfile
cgraPolybench(const PolybenchKernel &k, const CgraModel &cgra)
{
    const auto max_unroll = static_cast<int>(std::min<std::int64_t>(
        k.dlp, cgra.config().numPes()));
    return cgra.loopKernel(k.body, k.iters, k.recMii,
                           std::max(1, max_unroll), k.name);
}

} // namespace canon
