/**
 * @file
 * PolyBenchC kernel descriptors (Section 5: "we map the kernels from
 * the PolyBenchC benchmark suite", excluding sqrt/exp kernels which
 * neither Canon nor the CGRA support).
 *
 * Each descriptor carries what the two fabrics consume:
 *  - the innermost loop-body DFG (mapped by the CGRA's
 *    modulo-scheduling mapper),
 *  - total innermost iterations at PolyBench MEDIUM-class sizes,
 *  - the loop-carried recurrence MII,
 *  - the data-level parallelism (independent iterations available),
 *  - the fraction of the body that vectorizes by 4 on Canon's SIMD
 *    lanes, and whether conditional inner loops confine work to
 *    single PE rows (Section 4.2's DLP-granularity bound).
 *
 * Groups mirror the paper's Figure 12 categories: PolyB-BLAS (linear
 * algebra incl. solvers), PolyB-Kernel, PolyB-Stencil.
 */

#ifndef CANON_WORKLOADS_POLYBENCH_HH
#define CANON_WORKLOADS_POLYBENCH_HH

#include <vector>

#include "baselines/cgra.hh"
#include "core/config.hh"
#include "power/profile.hh"

namespace canon
{

enum class PolyGroup : std::uint8_t
{
    Blas,
    Kernel,
    Stencil,
};

const char *polyGroupName(PolyGroup g);

struct PolybenchKernel
{
    std::string name;
    PolyGroup group;
    Dfg body;
    std::int64_t iters;  //!< total innermost iterations
    int recMii;          //!< loop-carried recurrence bound
    std::int64_t dlp;    //!< independent iterations available
    double vecFraction;  //!< share of the body that is 4-vectorizable
    bool condInner;      //!< conditional inner loop (row confinement)
};

/** The evaluated suite (18 kernels across the three groups). */
std::vector<PolybenchKernel> polybenchSuite();

/**
 * Canon executing a general affine loop nest (Section 4.2): row-SIMD
 * mapping with 4-wide lanes; throughput is the tighter of the
 * compute roofline (discounted by the vectorizable fraction) and the
 * dependence bound (recurrence MII overlapped across the available
 * DLP, row-confined for conditional bodies).
 */
ExecutionProfile canonPolybench(const PolybenchKernel &k,
                                const CanonConfig &cfg);

/** CGRA executing the same kernel through the mapper. */
ExecutionProfile cgraPolybench(const PolybenchKernel &k,
                               const CgraModel &cgra);

} // namespace canon

#endif // CANON_WORKLOADS_POLYBENCH_HH
