#include "cli/options.hh"

#include <algorithm>
#include <charconv>
#include <iomanip>
#include <limits>
#include <sstream>

#include "workloads/models.hh"

namespace canon
{
namespace cli
{

const std::vector<std::string> &
knownArchs()
{
    static const std::vector<std::string> archs = {
        "canon", "systolic", "systolic24", "zed", "cgra"};
    return archs;
}

namespace
{

bool
parseWorkload(const std::string &s, Workload &out)
{
    if (s == "gemm" || s == "dense") {
        out = Workload::Gemm;
    } else if (s == "spmm") {
        out = Workload::Spmm;
    } else if (s == "spmm-nm" || s == "nm") {
        out = Workload::SpmmNm;
    } else if (s == "sddmm") {
        out = Workload::Sddmm;
    } else if (s == "sddmm-window" || s == "window") {
        out = Workload::SddmmWindow;
    } else {
        return false;
    }
    return true;
}

bool
parseI64(const std::string &s, std::int64_t &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    std::istringstream iss(s);
    iss >> out;
    return iss && iss.eof();
}

/**
 * Shortest decimal text that round-trips to exactly @p v, so "0.5",
 * ".50", and "0.50" all canonicalize to "0.5" while distinct doubles
 * stay distinct (17 significant digits always round-trip).
 */
std::string
canonicalDouble(double v)
{
    for (int prec = 1; prec <= 17; ++prec) {
        std::ostringstream oss;
        oss << std::setprecision(prec) << v;
        double back = 0.0;
        std::istringstream iss(oss.str());
        if ((iss >> back) && back == v)
            return oss.str();
    }
    std::ostringstream oss;
    oss << std::setprecision(17) << v;
    return oss.str();
}

} // namespace

std::string
applyScenarioOption(Options &opt, const std::string &key,
                    const std::string &value)
{
    auto intArg = [&](std::int64_t &out, std::int64_t lo,
                      std::int64_t hi) -> std::string {
        std::int64_t v = 0;
        if (!parseI64(value, v) || v < lo || v > hi)
            return "option '--" + key + "' expects an integer in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) +
                   "], got '" + value + "'";
        out = v;
        return {};
    };
    auto smallIntArg = [&](int &out, std::int64_t lo,
                           std::int64_t hi) -> std::string {
        std::int64_t v = 0;
        std::string err = intArg(v, lo, hi);
        if (err.empty())
            out = static_cast<int>(v);
        return err;
    };

    if (key == "workload") {
        if (!parseWorkload(value, opt.workload))
            return "unknown workload '" + value + "' (try --list)";
        return {};
    }
    if (key == "model") {
        if (value == "none") { // let a sweep axis restore shape mode
            opt.model.clear();
            return {};
        }
        for (const auto &name : knownModelNames()) {
            if (name == value) {
                opt.model = value;
                return {};
            }
        }
        std::string names;
        for (const auto &name : knownModelNames())
            names += name + ", ";
        return "unknown model '" + value + "' (" + names + "none)";
    }
    if (key == "m")
        return intArg(opt.m, 1, 1'000'000'000);
    if (key == "k")
        return intArg(opt.k, 1, 1'000'000'000);
    if (key == "n")
        return intArg(opt.n, 1, 1'000'000'000);
    if (key == "window")
        return intArg(opt.window, 1, 1'000'000'000);
    if (key == "seed") {
        std::int64_t v = 0;
        std::string err =
            intArg(v, 0, std::numeric_limits<std::int64_t>::max());
        if (err.empty())
            opt.seed = static_cast<std::uint64_t>(v);
        return err;
    }
    if (key == "sparsity") {
        double v = 0.0;
        // The negated-range form also rejects NaN.
        if (!parseDouble(value, v) || !(v >= 0.0 && v < 1.0))
            return "option '--sparsity' expects a number in [0, 1),"
                   " got '" + value + "'";
        opt.sparsity = v;
        opt.sparsitySet = true;
        return {};
    }
    if (key == "nm") {
        auto colon = value.find(':');
        std::int64_t nm_n = 0, nm_m = 0;
        if (colon == std::string::npos ||
            !parseI64(value.substr(0, colon), nm_n) ||
            !parseI64(value.substr(colon + 1), nm_m) || nm_n < 1 ||
            nm_m < 2 || nm_n > nm_m || nm_m > 64)
            return "option '--nm' expects N:M with"
                   " 1 <= N <= M <= 64, got '" + value + "'";
        opt.nmN = static_cast<int>(nm_n);
        opt.nmM = static_cast<int>(nm_m);
        return {};
    }
    if (key == "rows")
        return smallIntArg(opt.rows, 1, 1024);
    if (key == "cols")
        return smallIntArg(opt.cols, 1, 1024);
    if (key == "spad")
        return smallIntArg(opt.spadEntries, 1, 65536);
    if (key == "tag-banks")
        return smallIntArg(opt.tagBanks, 1, 64);
    if (key == "spad-flush") {
        if (!parseSpadFlush(value, opt.spadFlush))
            return "option '--spad-flush' expects eager | adaptive,"
                   " got '" + value + "'";
        return {};
    }
    if (key == "dmem")
        return smallIntArg(opt.dmemSlots, 1, 1 << 26);
    if (key == "clock-ghz") {
        double v = 0.0;
        if (!parseDouble(value, v) || !(v > 0.0 && v <= 100.0))
            return "option '--clock-ghz' expects a number in"
                   " (0, 100], got '" + value + "'";
        opt.clockGhz = v;
        return {};
    }
    return "unknown option '--" + key + "' (see --help)";
}

CanonConfig
Options::fabricConfig() const
{
    CanonConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.spadEntries = spadEntries;
    cfg.tagBanks = tagBanks;
    cfg.spadFlush = spadFlush;
    cfg.dmemSlots = dmemSlots;
    cfg.clockGhz = clockGhz;
    return cfg;
}

std::string
Options::workloadLabel() const
{
    if (!model.empty())
        return model + " model";
    std::ostringstream oss;
    oss << workloadName(workload) << " " << m << "x" << k << "x" << n;
    switch (workload) {
      case Workload::Spmm:
      case Workload::Sddmm:
        oss << " s=" << sparsity;
        break;
      case Workload::SpmmNm:
        oss << " " << nmN << ":" << nmM;
        break;
      case Workload::SddmmWindow:
        oss << " w=" << window;
        break;
      case Workload::Gemm:
        break;
    }
    return oss.str();
}

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::Gemm:
        return "gemm";
      case Workload::Spmm:
        return "spmm";
      case Workload::SpmmNm:
        return "spmm-nm";
      case Workload::Sddmm:
        return "sddmm";
      case Workload::SddmmWindow:
        return "sddmm-window";
    }
    return "?";
}

const std::vector<std::string> &
fabricOptionKeys()
{
    static const std::vector<std::string> keys = {
        "rows",      "cols", "spad",     "tag-banks",
        "spad-flush", "dmem", "clock-ghz"};
    return keys;
}

std::vector<std::string>
relevantScenarioKeys(const Options &opt)
{
    if (!opt.model.empty()) {
        // A model run pins its own layer shapes; only the model
        // selector, its sparsity knob (when it has one), and the RNG
        // seed shape the result.
        std::vector<std::string> keys = {"model"};
        if (modelUsesSparsity(opt.model))
            keys.push_back("sparsity");
        keys.push_back("seed");
        return keys;
    }

    std::vector<std::string> keys = {"workload", "m", "k"};
    switch (opt.workload) {
      case Workload::Gemm:
        keys.push_back("n");
        break;
      case Workload::Spmm:
      case Workload::Sddmm:
        keys.push_back("n");
        keys.push_back("sparsity");
        break;
      case Workload::SpmmNm:
        keys.push_back("n");
        keys.push_back("nm");
        break;
      case Workload::SddmmWindow:
        // --m is the sequence length; --n is ignored entirely.
        keys.push_back("window");
        break;
    }
    keys.push_back("seed");
    return keys;
}

bool
optionRelevant(const Options &opt, const std::string &key)
{
    const auto &fabric = fabricOptionKeys();
    if (std::find(fabric.begin(), fabric.end(), key) != fabric.end())
        return true;
    // "model" always selects (model=none switches back to shape
    // mode), so it is never an ignored option.
    if (key == "model")
        return true;
    const auto keys = relevantScenarioKeys(opt);
    return std::find(keys.begin(), keys.end(), key) != keys.end();
}

std::string
optionValueText(const Options &opt, const std::string &key)
{
    if (key == "workload")
        return workloadName(opt.workload);
    if (key == "model")
        return opt.model.empty() ? "none" : opt.model;
    if (key == "m")
        return std::to_string(opt.m);
    if (key == "k")
        return std::to_string(opt.k);
    if (key == "n")
        return std::to_string(opt.n);
    if (key == "window")
        return std::to_string(opt.window);
    if (key == "seed")
        return std::to_string(opt.seed);
    if (key == "sparsity") {
        // Models fall back to their canonical per-model sparsity when
        // --sparsity was not given; that choice, not the dormant
        // opt.sparsity value, is what identifies the scenario.
        if (!opt.model.empty() && !opt.sparsitySet)
            return "canonical";
        return canonicalDouble(opt.sparsity);
    }
    if (key == "nm")
        return std::to_string(opt.nmN) + ":" + std::to_string(opt.nmM);
    if (key == "rows")
        return std::to_string(opt.rows);
    if (key == "cols")
        return std::to_string(opt.cols);
    if (key == "spad")
        return std::to_string(opt.spadEntries);
    if (key == "tag-banks")
        return std::to_string(opt.tagBanks);
    if (key == "spad-flush")
        return spadFlushName(opt.spadFlush);
    if (key == "dmem")
        return std::to_string(opt.dmemSlots);
    if (key == "clock-ghz")
        return canonicalDouble(opt.clockGhz);
    return "?";
}

const char *
usageText()
{
    // The model menu is derived from knownModelNames() so the help
    // text cannot drift from the registry; the assembled text is
    // cached because callers expect a stable const char *.
    static const std::string text = std::string(
        "canonsim -- unified driver for the Canon orchestration"
        " simulator\n"
        "\n"
        "Usage: canonsim [options]\n"
        "\n"
        "Workload selection:\n"
        "  --workload W      gemm | spmm | spmm-nm | sddmm |"
        " sddmm-window\n"
        "                    (default: spmm)\n"
        "  --model M         run a whole model instead of one shape\n"
        "                    (" + []() {
                                  std::string names;
                                  for (const auto &n :
                                       knownModelNames())
                                      names += n + " | ";
                                  return names;
                              }() + "none;\n"
        "                    --sparsity overrides the canonical\n"
        "                    sparsity of the sparse-layer models;\n"
        "                    window-attention models ignore it)\n"
        "  --m N  --k N  --n N   problem shape (default 256x256x64;\n"
        "                    sddmm-window uses --m as sequence"
        " length)\n"
        "  --sparsity F      input/mask sparsity in [0, 1)"
        " (default 0.7)\n"
        "  --nm N:M          structured sparsity pattern"
        " (default 2:4)\n"
        "  --window N        sliding-window band width (default 64)\n"
        "  --seed N          RNG seed (default 1)\n"
        "\n"
        "Fabric configuration:\n"
        "  --rows N          PE rows / orchestrators (default 8)\n"
        "  --cols N          PE columns (default 8)\n"
        "  --spad N          scratchpad depth in psum entries"
        " (default 16)\n"
        "  --tag-banks N     associative-search banks of the psum-tag\n"
        "                    buffer in [1, 64] (default 1 = the flat\n"
        "                    CAM-style linear probe; results are\n"
        "                    identical, tag compares per probe drop\n"
        "                    ~N-fold)\n"
        "  --spad-flush P    eager | adaptive (default eager =\n"
        "                    flush-at-cap; adaptive drains at a\n"
        "                    high-water mark and paces psum merges so\n"
        "                    per-row cost stays flat at high resident\n"
        "                    row counts, enabling a larger proxy cap)\n"
        "  --dmem N          data-memory Vec4 slots per PE"
        " (default 1024)\n"
        "  --clock-ghz F     clock for power reporting"
        " (default 1.0)\n"
        "\n"
        "Execution mode:\n"
        "  --arch A[,A...]   canon | systolic | systolic24 | zed |"
        " cgra | all\n"
        "                    (default: canon; baselines enable the\n"
        "                    orchestrator-vs-baseline comparison)\n"
        "\n"
        "Sweep mode:\n"
        "  --sweep K=V,V,... sweep option K over the listed values;\n"
        "                    repeatable, axes combine as a cartesian\n"
        "                    product (any workload/fabric key above:\n"
        "                    sparsity, rows, m, model, ...)\n"
        "  --jobs N          worker threads for sweep execution\n"
        "                    (default 1; results are deterministic\n"
        "                    regardless of N)\n"
        "  --shard I/N       run slice I of N of the expanded job\n"
        "                    list (default 0/1 = everything); shard\n"
        "                    CSVs concatenate in order to the full\n"
        "                    CSV (only shard 0 writes the header)\n"
        "\n"
        "Result cache:\n"
        "  --cache-dir PATH  content-addressed result cache; repeated\n"
        "                    scenarios become lookups, an interrupted\n"
        "                    sweep resumes from what is already there,\n"
        "                    and concurrent --jobs/--shard runs share\n"
        "                    one directory safely\n"
        "  --cache MODE      off | read | write | readwrite |"
        " refresh\n"
        "                    (default readwrite; refresh re-runs and\n"
        "                    overwrites existing entries)\n"
        "\n"
        "Observability (instrumentation only; never changes results\n"
        "or cache keys, and all outputs are byte-identical across\n"
        "--jobs values):\n"
        "  --sample-every N  sample fabric counters every N simulated\n"
        "                    cycles (cycle-resolved time series)\n"
        "  --series-out P    write the sampled series as long-form\n"
        "                    CSV (requires --sample-every)\n"
        "  --trace-out P     write a Chrome trace-event JSON (load\n"
        "                    into Perfetto / about://tracing): engine\n"
        "                    scenario spans, sim run spans, cache\n"
        "                    probe/hit/miss/store instants, and -- \n"
        "                    with --sample-every -- counter tracks\n"
        "  --stats-json P    write the canon.stats.v2 dump: per\n"
        "                    scenario, the per-arch activity profiles,\n"
        "                    the full flat fabric stats view of every\n"
        "                    executed simulation run, and -- when\n"
        "                    enabled -- cycle accounting, occupancy\n"
        "                    histograms, and host phase timers\n"
        "  --cycle-accounting\n"
        "                    classify every component-cycle into the\n"
        "                    stall-cause taxonomy (compute / upstream\n"
        "                    empty / backpressure / tag search / drain\n"
        "                    / idle), render the breakdown table, and\n"
        "                    record occupancy histograms\n"
        "  --host-timers     measure host wall-clock phase durations\n"
        "                    per scenario (queue wait, cache probe,\n"
        "                    sim, encode, store; --stats-json only;\n"
        "                    not byte-stable across runs)\n"
        "\n"
        "Output:\n"
        "  --csv PATH        also write the stats table as CSV\n"
        "  --probe-spad      add scratchpad occupancy columns to the\n"
        "                    stats table: mean resident psum rows,\n"
        "                    % cycles at the resident cap, and tag\n"
        "                    compares per buffer probe (canon only)\n"
        "  --dry-run         print the expanded scenario list with\n"
        "                    cache keys and hit/miss forecasts, then\n"
        "                    exit without simulating\n"
        "  --list            list workloads, models, architectures,\n"
        "                    and sweepable options from the engine\n"
        "                    registry, then exit\n"
        "  --help            show this text and exit\n");
    return text.c_str();
}

const std::vector<std::string> &
scenarioOptionKeys()
{
    // Keep in lockstep with applyScenarioOption above: every key it
    // accepts appears here, in canonical order. The engine registry
    // drift test round-trips each key through the grammar.
    static const std::vector<std::string> keys = {
        "workload",   "model", "m",         "k",
        "n",          "sparsity", "nm",     "window",
        "seed",       "rows",  "cols",      "spad",
        "tag-banks",  "spad-flush", "dmem", "clock-ghz"};
    return keys;
}

ParseResult
parseArgs(const std::vector<std::string> &args)
{
    ParseResult res;
    Options &opt = res.options;

    auto fail = [&res](const std::string &msg) {
        res.ok = false;
        res.error = msg;
        return res;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string key = args[i];
        std::string value;
        bool have_value = false;

        if (auto eq = key.find('='); eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        }

        if (key == "--help" || key == "-h") {
            opt.showHelp = true;
            continue;
        }
        if (key == "--list") {
            opt.listWorkloads = true;
            continue;
        }
        if (key == "--dry-run") {
            opt.dryRun = true;
            continue;
        }
        if (key == "--probe-spad") {
            opt.probeSpad = true;
            continue;
        }

        // Boolean common flags (--cycle-accounting, --host-timers)
        // take no value: offer them before the value lookahead.
        if (!have_value && engine::isCommonBoolFlag(key)) {
            std::string common_err;
            if (engine::parseCommonFlag(key, "", opt.common,
                                        common_err) ==
                engine::FlagParse::Error)
                return fail(common_err);
            continue;
        }

        // Everything else takes a value.
        if (!have_value) {
            if (i + 1 >= args.size())
                return fail("option '" + key + "' expects a value");
            value = args[++i];
        }

        // --jobs/--shard/--cache-dir/--cache: the execution grammar
        // shared with every bench binary (engine::CommonFlags).
        std::string common_err;
        const engine::FlagParse common_parse =
            engine::parseCommonFlag(key, value, opt.common,
                                    common_err);
        if (common_parse == engine::FlagParse::Error)
            return fail(common_err);
        if (common_parse == engine::FlagParse::Ok)
            continue;

        if (key == "--arch") {
            opt.archs.clear();
            std::string rest = value;
            while (!rest.empty()) {
                auto comma = rest.find(',');
                std::string a = rest.substr(0, comma);
                rest = comma == std::string::npos
                           ? ""
                           : rest.substr(comma + 1);
                if (a == "all") {
                    opt.archs = knownArchs();
                    continue;
                }
                bool known = false;
                for (const auto &k : knownArchs())
                    known = known || k == a;
                if (!known) {
                    std::string names;
                    for (const auto &k : knownArchs())
                        names += k + ", ";
                    return fail("unknown architecture '" + a + "' (" +
                                names + "all)");
                }
                opt.archs.push_back(a);
            }
            if (opt.archs.empty())
                return fail("option '--arch' expects at least one"
                            " architecture");
        } else if (key == "--csv") {
            if (value.empty())
                return fail("option '--csv' expects a path");
            opt.csvPath = value;
        } else if (key == "--sweep") {
            auto eq = value.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= value.size())
                return fail("option '--sweep' expects key=v1[,v2,...],"
                            " got '" + value + "'");
            opt.sweepAxes.emplace_back(value.substr(0, eq),
                                       value.substr(eq + 1));
        } else if (key.rfind("--", 0) == 0) {
            std::string err =
                applyScenarioOption(opt, key.substr(2), value);
            if (!err.empty())
                return fail(err);
            opt.explicitKeys.push_back(key.substr(2));
        } else {
            return fail("unknown option '" + key + "' (see --help)");
        }
    }

    if (std::string err = engine::validateCommonFlags(opt.common);
        !err.empty())
        return fail(err);

    if (opt.archs.empty())
        opt.archs.push_back("canon");

    return res;
}

} // namespace cli
} // namespace canon
