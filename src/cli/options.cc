#include "cli/options.hh"

#include <charconv>
#include <limits>
#include <sstream>

namespace canon
{
namespace cli
{

const std::vector<std::string> &
knownArchs()
{
    static const std::vector<std::string> archs = {
        "canon", "systolic", "systolic24", "zed", "cgra"};
    return archs;
}

namespace
{

bool
parseWorkload(const std::string &s, Workload &out)
{
    if (s == "gemm" || s == "dense") {
        out = Workload::Gemm;
    } else if (s == "spmm") {
        out = Workload::Spmm;
    } else if (s == "spmm-nm" || s == "nm") {
        out = Workload::SpmmNm;
    } else if (s == "sddmm") {
        out = Workload::Sddmm;
    } else if (s == "sddmm-window" || s == "window") {
        out = Workload::SddmmWindow;
    } else {
        return false;
    }
    return true;
}

bool
parseI64(const std::string &s, std::int64_t &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    std::istringstream iss(s);
    iss >> out;
    return iss && iss.eof();
}

} // namespace

CanonConfig
Options::fabricConfig() const
{
    CanonConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.spadEntries = spadEntries;
    cfg.dmemSlots = dmemSlots;
    cfg.clockGhz = clockGhz;
    return cfg;
}

std::string
Options::workloadLabel() const
{
    std::ostringstream oss;
    oss << workloadName(workload) << " " << m << "x" << k << "x" << n;
    switch (workload) {
      case Workload::Spmm:
      case Workload::Sddmm:
        oss << " s=" << sparsity;
        break;
      case Workload::SpmmNm:
        oss << " " << nmN << ":" << nmM;
        break;
      case Workload::SddmmWindow:
        oss << " w=" << window;
        break;
      case Workload::Gemm:
        break;
    }
    return oss.str();
}

bool
Options::comparesBaselines() const
{
    for (const auto &a : archs)
        if (a != "canon")
            return true;
    return false;
}

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::Gemm:
        return "gemm";
      case Workload::Spmm:
        return "spmm";
      case Workload::SpmmNm:
        return "spmm-nm";
      case Workload::Sddmm:
        return "sddmm";
      case Workload::SddmmWindow:
        return "sddmm-window";
    }
    return "?";
}

const char *
usageText()
{
    return
        "canonsim -- unified driver for the Canon orchestration"
        " simulator\n"
        "\n"
        "Usage: canonsim [options]\n"
        "\n"
        "Workload selection:\n"
        "  --workload W      gemm | spmm | spmm-nm | sddmm |"
        " sddmm-window\n"
        "                    (default: spmm)\n"
        "  --m N  --k N  --n N   problem shape (default 256x256x64;\n"
        "                    sddmm-window uses --m as sequence"
        " length)\n"
        "  --sparsity F      input/mask sparsity in [0, 1)"
        " (default 0.7)\n"
        "  --nm N:M          structured sparsity pattern"
        " (default 2:4)\n"
        "  --window N        sliding-window band width (default 64)\n"
        "  --seed N          RNG seed (default 1)\n"
        "\n"
        "Fabric configuration:\n"
        "  --rows N          PE rows / orchestrators (default 8)\n"
        "  --cols N          PE columns (default 8)\n"
        "  --spad N          scratchpad depth in psum entries"
        " (default 16)\n"
        "  --dmem N          data-memory Vec4 slots per PE"
        " (default 1024)\n"
        "  --clock-ghz F     clock for power reporting"
        " (default 1.0)\n"
        "\n"
        "Execution mode:\n"
        "  --arch A[,A...]   canon | systolic | systolic24 | zed |"
        " cgra | all\n"
        "                    (default: canon; baselines enable the\n"
        "                    orchestrator-vs-baseline comparison)\n"
        "\n"
        "Output:\n"
        "  --csv PATH        also write the stats table as CSV\n"
        "  --list            list workloads and exit\n"
        "  --help            show this text and exit\n";
}

std::string
workloadListText()
{
    std::ostringstream oss;
    oss << "gemm          dense GEMM (dense-cadence kernel);"
           " uses --m --k --n\n"
        << "spmm          unstructured SpMM; adds --sparsity\n"
        << "spmm-nm       N:M structured SpMM; adds --nm\n"
        << "sddmm         unstructured SDDMM; --sparsity is the"
           " output mask\n"
        << "sddmm-window  sliding-window SDDMM; --m is the sequence"
           " length,\n"
        << "              --window the band width (--n ignored)\n";
    return oss.str();
}

ParseResult
parseArgs(const std::vector<std::string> &args)
{
    ParseResult res;
    Options &opt = res.options;

    auto fail = [&res](const std::string &msg) {
        res.ok = false;
        res.error = msg;
        return res;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string key = args[i];
        std::string value;
        bool have_value = false;

        if (auto eq = key.find('='); eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        }

        if (key == "--help" || key == "-h") {
            opt.showHelp = true;
            continue;
        }
        if (key == "--list") {
            opt.listWorkloads = true;
            continue;
        }

        // Everything else takes a value.
        if (!have_value) {
            if (i + 1 >= args.size())
                return fail("option '" + key + "' expects a value");
            value = args[++i];
        }

        auto intArg = [&](std::int64_t &out, std::int64_t lo,
                          std::int64_t hi) -> bool {
            std::int64_t v = 0;
            if (!parseI64(value, v) || v < lo || v > hi) {
                fail("option '" + key + "' expects an integer in [" +
                     std::to_string(lo) + ", " + std::to_string(hi) +
                     "], got '" + value + "'");
                return false;
            }
            out = v;
            return true;
        };
        auto smallIntArg = [&](int &out, std::int64_t lo,
                               std::int64_t hi) -> bool {
            std::int64_t v = 0;
            if (!intArg(v, lo, hi))
                return false;
            out = static_cast<int>(v);
            return true;
        };

        if (key == "--workload") {
            if (!parseWorkload(value, opt.workload))
                return fail("unknown workload '" + value +
                            "' (try --list)");
        } else if (key == "--m") {
            if (!intArg(opt.m, 1, 1'000'000'000))
                return res;
        } else if (key == "--k") {
            if (!intArg(opt.k, 1, 1'000'000'000))
                return res;
        } else if (key == "--n") {
            if (!intArg(opt.n, 1, 1'000'000'000))
                return res;
        } else if (key == "--window") {
            if (!intArg(opt.window, 1, 1'000'000'000))
                return res;
        } else if (key == "--seed") {
            std::int64_t v = 0;
            if (!intArg(v, 0, std::numeric_limits<std::int64_t>::max()))
                return res;
            opt.seed = static_cast<std::uint64_t>(v);
        } else if (key == "--sparsity") {
            double v = 0.0;
            // The negated-range form also rejects NaN.
            if (!parseDouble(value, v) || !(v >= 0.0 && v < 1.0))
                return fail("option '--sparsity' expects a number in"
                            " [0, 1), got '" + value + "'");
            opt.sparsity = v;
        } else if (key == "--nm") {
            auto colon = value.find(':');
            std::int64_t nm_n = 0, nm_m = 0;
            if (colon == std::string::npos ||
                !parseI64(value.substr(0, colon), nm_n) ||
                !parseI64(value.substr(colon + 1), nm_m) ||
                nm_n < 1 || nm_m < 2 || nm_n > nm_m || nm_m > 64)
                return fail("option '--nm' expects N:M with"
                            " 1 <= N <= M <= 64, got '" + value + "'");
            opt.nmN = static_cast<int>(nm_n);
            opt.nmM = static_cast<int>(nm_m);
        } else if (key == "--rows") {
            if (!smallIntArg(opt.rows, 1, 1024))
                return res;
        } else if (key == "--cols") {
            if (!smallIntArg(opt.cols, 1, 1024))
                return res;
        } else if (key == "--spad") {
            if (!smallIntArg(opt.spadEntries, 1, 65536))
                return res;
        } else if (key == "--dmem") {
            if (!smallIntArg(opt.dmemSlots, 1, 1 << 26))
                return res;
        } else if (key == "--clock-ghz") {
            double v = 0.0;
            if (!parseDouble(value, v) || !(v > 0.0 && v <= 100.0))
                return fail("option '--clock-ghz' expects a number in"
                            " (0, 100], got '" + value + "'");
            opt.clockGhz = v;
        } else if (key == "--arch") {
            opt.archs.clear();
            std::string rest = value;
            while (!rest.empty()) {
                auto comma = rest.find(',');
                std::string a = rest.substr(0, comma);
                rest = comma == std::string::npos
                           ? ""
                           : rest.substr(comma + 1);
                if (a == "all") {
                    opt.archs = knownArchs();
                    continue;
                }
                bool known = false;
                for (const auto &k : knownArchs())
                    known = known || k == a;
                if (!known) {
                    std::string names;
                    for (const auto &k : knownArchs())
                        names += k + ", ";
                    return fail("unknown architecture '" + a + "' (" +
                                names + "all)");
                }
                opt.archs.push_back(a);
            }
            if (opt.archs.empty())
                return fail("option '--arch' expects at least one"
                            " architecture");
        } else if (key == "--csv") {
            if (value.empty())
                return fail("option '--csv' expects a path");
            opt.csvPath = value;
        } else {
            return fail("unknown option '" + key + "' (see --help)");
        }
    }

    if (opt.archs.empty())
        opt.archs.push_back("canon");

    return res;
}

} // namespace cli
} // namespace canon
