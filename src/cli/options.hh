/**
 * @file
 * Command-line options for the canonsim driver.
 *
 * Parsing is a pure function from an argument vector to either a
 * validated Options value or an error string, so tests can exercise
 * every rejection path without spawning a process. Both "--key value"
 * and "--key=value" spellings are accepted.
 */

#ifndef CANON_CLI_OPTIONS_HH
#define CANON_CLI_OPTIONS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "engine/common_flags.hh"

namespace canon
{
namespace cli
{

enum class Workload : std::uint8_t
{
    Gemm,        //!< dense GEMM via the dense-cadence kernel
    Spmm,        //!< unstructured-sparse x dense
    SpmmNm,      //!< N:M structured-sparse x dense
    Sddmm,       //!< unstructured sampled dense-dense
    SddmmWindow, //!< sliding-window sampled dense-dense
};

struct Options
{
    Workload workload = Workload::Spmm;

    /**
     * When non-empty, run this whole model (Figure 14) through
     * ArchSuite::model instead of the single-shape workload; the
     * shape options are ignored and --sparsity feeds the model's
     * sparsified layers.
     */
    std::string model;

    // Problem shape.
    std::int64_t m = 256;
    std::int64_t k = 256;
    std::int64_t n = 64;
    double sparsity = 0.7;   //!< input (spmm) or mask (sddmm) sparsity
    bool sparsitySet = false; //!< --sparsity given (models: override
                              //!< the canonical per-model sparsity)
    int nmN = 2;             //!< N of N:M structured sparsity
    int nmM = 4;             //!< M of N:M structured sparsity
    std::int64_t window = 64; //!< sddmm-window band width
    std::uint64_t seed = 1;

    // Fabric configuration.
    int rows = 8;
    int cols = 8;
    int spadEntries = 16;
    int tagBanks = 1; //!< associative-search banks in the tag fifo
    SpadFlushPolicy spadFlush = SpadFlushPolicy::Eager;
    int dmemSlots = 1024;
    double clockGhz = 1.0;

    /** Architectures to run; empty means Canon only. */
    std::vector<std::string> archs;

    /**
     * Raw sweep axes in declaration order: one (key, comma-separated
     * values) pair per --sweep flag. Validated and expanded by the
     * runner subsystem (runner::SweepSpec), not here, so the options
     * layer stays free of the expansion logic.
     */
    std::vector<std::pair<std::string, std::string>> sweepAxes;

    /**
     * The execution flags shared with every other entry point
     * (--jobs worker threads, --shard i/n process slice, --cache-dir
     * / --cache result cache), parsed by the one common grammar in
     * engine::parseCommonFlag. common.jobs of 0 means "not given";
     * canonsim's default is 1 worker.
     */
    engine::CommonFlags common;

    /**
     * Scenario option keys set explicitly on the command line, in
     * appearance order (duplicates kept). The driver warns when a
     * single run sets an option its workload ignores.
     */
    std::vector<std::string> explicitKeys;

    std::string csvPath; //!< also dump the stats table as CSV
    bool showHelp = false;
    bool listWorkloads = false;
    bool dryRun = false; //!< plan + cache forecast, no simulation

    /**
     * Render scratchpad occupancy probe columns (resident-row
     * pressure, resident-cap cycles, tag compares per probe) in the
     * stats tables. Render-only, like --csv: it changes which columns
     * a table shows, never what is simulated or cached.
     */
    bool probeSpad = false;

    CanonConfig fabricConfig() const;

    /** "spmm 256x256x64 s=0.70" style label for tables/profiles. */
    std::string workloadLabel() const;
};

/**
 * Apply one scenario-shaping option (bare key, no "--" prefix) to
 * @p opt. This is the single grammar shared by parseArgs and the
 * sweep-axis validation in runner::SweepSpec: every key that can be
 * swept is exactly a key this function accepts (workload, model, m,
 * k, n, sparsity, nm, window, seed, rows, cols, spad, tag-banks,
 * spad-flush, dmem, clock-ghz). Returns an empty string on success,
 * otherwise the error message.
 */
std::string applyScenarioOption(Options &opt, const std::string &key,
                                const std::string &value);

struct ParseResult
{
    Options options;
    bool ok = true;
    std::string error;
};

/** Parse argv[1..]; never exits, never prints. */
ParseResult parseArgs(const std::vector<std::string> &args);

/** The --help text. */
const char *usageText();

/** Canonical name of a Workload ("spmm", "sddmm-window", ...). */
const char *workloadName(Workload w);

/**
 * Every key applyScenarioOption accepts, in canonical order (the
 * scenario selectors and shapes, then the fabric keys). This is the
 * sweepable-option vocabulary the engine registry advertises; a
 * drift test round-trips each key through the option grammar.
 */
const std::vector<std::string> &scenarioOptionKeys();

/** Every runnable architecture, in the paper's display order. */
const std::vector<std::string> &knownArchs();

// ---- workload/option relevance matrix ---------------------------------
//
// The single source of truth for which option keys a scenario
// actually consumes. It drives three behaviors: single runs warn on
// explicitly set but ignored options, sweeps reject an axis that no
// selected scenario consumes (instead of silently emitting identical
// rows), and the result cache's ScenarioKey folds in only the
// relevant options so e.g. an spmm result is reusable no matter what
// --nm was set to.

/**
 * Fabric keys relevant to every scenario (rows, cols, spad,
 * tag-banks, spad-flush, dmem, clock-ghz).
 */
const std::vector<std::string> &fabricOptionKeys();

/**
 * The scenario option keys @p opt's selected workload -- or model --
 * actually consumes, in canonical order. A model run returns
 * {"model", ["sparsity",] "seed"} (sparsity only for models with a
 * sparsity knob); a shape run returns "workload" plus its shape and
 * workload-specific keys (e.g. spmm-nm consumes nm but not sparsity,
 * sddmm-window consumes window but not n).
 */
std::vector<std::string> relevantScenarioKeys(const Options &opt);

/**
 * True when setting option @p key can change what @p opt computes or
 * reports: fabric keys always, the "model" selector always (it
 * switches between model and shape mode), scenario keys per
 * relevantScenarioKeys.
 */
bool optionRelevant(const Options &opt, const std::string &key);

/**
 * Canonical text of scenario/fabric option @p key's value in @p opt
 * (doubles in shortest round-trip form, nm as "N:M", the model's
 * sparsity as "canonical" when --sparsity was not given). Used to
 * build stable cache keys.
 */
std::string optionValueText(const Options &opt, const std::string &key);

} // namespace cli
} // namespace canon

#endif // CANON_CLI_OPTIONS_HH
