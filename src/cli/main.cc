/**
 * @file
 * canonsim entry point: parse, dispatch, report.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/driver.hh"
#include "cli/options.hh"
#include "engine/registry.hh"

int
main(int argc, char **argv)
{
    using namespace canon::cli;

    std::vector<std::string> args(argv + 1, argv + argc);
    ParseResult parsed = parseArgs(args);
    if (!parsed.ok) {
        std::cerr << "canonsim: " << parsed.error << "\n\n"
                  << usageText();
        return 2;
    }
    if (parsed.options.showHelp) {
        std::cout << usageText();
        return 0;
    }
    if (parsed.options.listWorkloads) {
        // Introspection straight from the engine registry, so the
        // listing cannot drift from what the engine accepts.
        std::cout << canon::engine::listText();
        return 0;
    }
    return runScenario(parsed.options, std::cout, std::cerr);
}
