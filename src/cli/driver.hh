/**
 * @file
 * The canonsim execution driver: a thin adapter that turns validated
 * Options into an engine::ScenarioRequest, submits it to a
 * canon::engine::Engine (which owns the worker pool, the result
 * cache, and the arch registry), and renders the returned ResultSet
 * as the classic stats tables. --dry-run renders the engine's plan
 * (scenario list, cache keys, hit/miss forecast) instead of running.
 *
 * Every invocation is a sweep: the --sweep axes expand into a job
 * list (the cartesian product; no axes means one job) executed
 * across --jobs worker threads. All output goes through
 * caller-supplied streams, so tests can make assertions on both the
 * raw profiles and the rendered text.
 */

#ifndef CANON_CLI_DRIVER_HH
#define CANON_CLI_DRIVER_HH

#include <iosfwd>

#include "cli/options.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace cli
{

/**
 * Run the selected workload (or whole model, when --model is set) on
 * every requested architecture. Only the requested architectures are
 * simulated -- a baselines-only run skips the Canon cycle simulation
 * entirely. Architectures that cannot execute the workload are
 * absent from the result (the "X" cells of the paper's figures).
 */
CaseResult runCases(const Options &opt);

/** Build the per-architecture stats table for a finished run. */
Table buildStatsTable(const Options &opt, const CaseResult &cases);

/**
 * Full driver: expand the sweep (a plain run is the one-job
 * degenerate case), execute it on the worker pool, print the stats
 * table(s) to @p out, optionally dump CSV. Returns a process exit
 * code: 0 on success, 1 when a scenario could not run, 2 for a
 * malformed sweep axis.
 */
int runScenario(const Options &opt, std::ostream &out,
                std::ostream &err);

} // namespace cli
} // namespace canon

#endif // CANON_CLI_DRIVER_HH
