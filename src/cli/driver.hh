/**
 * @file
 * The canonsim execution driver: turns validated Options into
 * simulation runs (Canon cycle simulation through the orchestrators
 * and the cycle loop, plus the analytical baseline models on request)
 * and renders one stats table per run.
 *
 * The run step is separated from the printing step so tests can make
 * assertions on the raw profiles.
 */

#ifndef CANON_CLI_DRIVER_HH
#define CANON_CLI_DRIVER_HH

#include <iosfwd>

#include "cli/options.hh"
#include "common/table.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace cli
{

/**
 * Run the selected workload on every requested architecture.
 * Architectures that cannot execute the workload are absent from the
 * result (the "X" cells of the paper's figures).
 */
CaseResult runCases(const Options &opt);

/** Build the per-architecture stats table for a finished run. */
Table buildStatsTable(const Options &opt, const CaseResult &cases);

/**
 * Full driver: run, print the fabric description and stats table,
 * optionally dump CSV. Returns a process exit code (0 on success,
 * 1 when nothing could run).
 */
int runScenario(const Options &opt, std::ostream &err);

} // namespace cli
} // namespace canon

#endif // CANON_CLI_DRIVER_HH
