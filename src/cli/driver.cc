#include "cli/driver.hh"

#include <ostream>

#include "common/table.hh"
#include "engine/engine.hh"
#include "runner/pool.hh"

namespace canon
{
namespace cli
{

CaseResult
runCases(const Options &opt)
{
    return engine::runScenarioCases(opt);
}

Table
buildStatsTable(const Options &opt, const CaseResult &cases)
{
    return engine::scenarioStatsTable(opt, cases);
}

namespace
{

/** Render the classic single-scenario report (the no-axis sweep). */
int
renderSingle(const Options &opt, const engine::ResultSet &rs,
             std::ostream &out, std::ostream &err)
{
    out << opt.fabricConfig().describe() << "\n\n";

    const runner::ScenarioResult &result = rs.scenarios().front();
    if (!result.error.empty()) {
        if (result.error == runner::kNoArchError)
            err << "canonsim: no requested architecture can execute '"
                << opt.workloadLabel() << "'\n";
        else
            err << "canonsim: " << result.error << "\n";
        return 1;
    }

    Table table = rs.statsTable();
    table.print(out);
    if (rs.obs().hasAccounting())
        rs.obs().writeAccounting(out);
    if (!rs.cacheStatsLine().empty())
        out << "\n" << rs.cacheStatsLine() << "\n";
    if (!opt.csvPath.empty()) {
        if (!table.writeCsv(opt.csvPath)) {
            err << "canonsim: cannot write CSV to " << opt.csvPath
                << "\n";
            return 1;
        }
        out << "\nCSV written to " << opt.csvPath << "\n";
    }
    return 0;
}

/** Render the combined sweep report. */
int
renderSweep(const Options &opt, const engine::ResultSet &rs,
            std::ostream &out, std::ostream &err)
{
    const std::size_t count = rs.size();

    // Deliberately silent about --jobs: sweep output must be
    // byte-identical no matter how many workers executed it. The
    // shard, by contrast, changes which scenarios this process owns,
    // so it is part of the report.
    out << "canonsim sweep: ";
    if (rs.shard().whole())
        out << count << " scenario" << (count == 1 ? "" : "s")
            << "\n";
    else
        out << count << " of " << rs.totalJobs() << " scenario"
            << (rs.totalJobs() == 1 ? "" : "s") << " (shard "
            << rs.shard().label() << ")\n";

    Table table = rs.sweepTable();
    table.print(out);
    if (rs.obs().hasAccounting())
        rs.obs().writeAccounting(out);
    if (!rs.cacheStatsLine().empty())
        out << "\n" << rs.cacheStatsLine() << "\n";

    for (const auto &r : rs.scenarios())
        if (!r.error.empty())
            err << "canonsim: scenario '" << r.job.point
                << "' failed: " << r.error << "\n";

    if (!opt.csvPath.empty()) {
        // Shard 0 owns the CSV header; concatenating the shard files
        // in order then reproduces the unsharded CSV byte for byte.
        if (!table.writeCsv(opt.csvPath, rs.shard().index == 0)) {
            err << "canonsim: cannot write CSV to " << opt.csvPath
                << "\n";
            return 1;
        }
        out << "\nCSV written to " << opt.csvPath << "\n";
    }
    return rs.failureCount() == 0 ? 0 : 1;
}

/**
 * Render the --dry-run report: the sharded scenario list with each
 * scenario's cache digest and hit/miss forecast. Nothing simulates;
 * the forecast line's "simulation jobs to execute" is what a real
 * run's "simulation jobs executed" would report.
 */
int
renderDryRun(const engine::ScenarioRequest &req, engine::Engine &eng,
             std::ostream &out)
{
    const std::vector<engine::ScenarioPlan> plans = eng.plan(req);
    const std::size_t total = req.jobCount();

    out << "canonsim dry-run: ";
    if (req.options().common.shard.whole())
        out << plans.size() << " scenario"
            << (plans.size() == 1 ? "" : "s") << "\n";
    else
        out << plans.size() << " of " << total << " scenario"
            << (total == 1 ? "" : "s") << " (shard "
            << req.options().common.shard.label() << ")\n";

    Table table("canonsim dry-run");
    table.header({"Scenario", "Point", "CacheKey", "Forecast"});
    std::size_t hits = 0, misses = 0;
    for (const auto &p : plans) {
        hits += p.forecast == engine::ScenarioPlan::Forecast::Hit;
        misses += p.forecast != engine::ScenarioPlan::Forecast::Hit;
        table.addRow({p.job.options.workloadLabel(),
                      p.job.point.empty() ? "-" : p.job.point,
                      p.key.digest(),
                      engine::forecastName(p.forecast)});
    }
    table.print(out);

    if (eng.store())
        out << "\ndry-run forecast: " << hits << " hits, " << misses
            << " misses; simulation jobs to execute: " << misses
            << "\n";
    return 0;
}

} // namespace

int
runScenario(const Options &opt, std::ostream &out, std::ostream &err)
{
    engine::ScenarioRequest req =
        engine::ScenarioRequest::fromOptions(opt);
    if (!req.validate()) {
        // Same shape as main.cc's parse failure: error, blank line,
        // usage, exit 2.
        err << "canonsim: " << req.error() << "\n\n" << usageText();
        return 2;
    }

    // Single runs warn -- once per offending flag, on stderr, without
    // failing -- when an explicitly set option is ignored by the
    // selected workload or model (`--nm` with spmm, `--window` with
    // gemm, `--sparsity` with a window-attention model, ...).
    for (const auto &note : req.warnings())
        err << "canonsim: warning: " << note << "\n";

    engine::Engine eng(engine::makeEngineConfig(opt.common, 1));
    if (std::string perr = eng.prepare(); !perr.empty()) {
        err << "canonsim: " << perr << "\n";
        return 1;
    }

    if (opt.dryRun)
        return renderDryRun(req, eng, out);

    engine::ResultSet rs = eng.run(req);

    // Observability artifacts write before the report renders so a
    // render failure cannot leave a partial series/trace behind.
    if (rs.obs().enabled()) {
        if (std::string oerr = rs.obs().writeOutputs(); !oerr.empty()) {
            err << "canonsim: " << oerr << "\n";
            return 1;
        }
    }

    // A sharded run always uses the sweep report, even for a single
    // scenario: its slice may be empty and its CSV must obey the
    // shard concatenation contract.
    if (rs.single())
        return renderSingle(opt, rs, out, err);
    return renderSweep(opt, rs, out, err);
}

} // namespace cli
} // namespace canon
