#include "cli/driver.hh"

#include <algorithm>
#include <optional>
#include <ostream>

#include "cache/store.hh"
#include "common/table.hh"
#include "runner/aggregate.hh"
#include "runner/pool.hh"
#include "runner/shard.hh"
#include "runner/sweep.hh"
#include "workloads/models.hh"

namespace canon
{
namespace cli
{

namespace
{

/** Run one workload case across the requested architectures. */
CaseResult
runSuiteCase(const Options &opt)
{
    ArchSuite suite(opt.fabricConfig(), opt.archs);
    if (!opt.model.empty())
        return suite.model(opt.sparsitySet
                               ? modelByName(opt.model, opt.sparsity)
                               : modelByName(opt.model),
                           opt.seed);
    switch (opt.workload) {
      case Workload::Gemm:
        return suite.gemm(opt.m, opt.k, opt.n, opt.seed);
      case Workload::Spmm:
        return suite.spmm(opt.m, opt.k, opt.n, opt.sparsity, opt.seed);
      case Workload::SpmmNm:
        return suite.spmmNm(opt.m, opt.k, opt.n, opt.nmN, opt.nmM,
                            opt.seed);
      case Workload::Sddmm:
        return suite.sddmm(opt.m, opt.k, opt.n, opt.sparsity,
                           opt.seed);
      case Workload::SddmmWindow:
        return suite.sddmmWindow(opt.m, opt.k, opt.window, opt.seed);
    }
    return {};
}

} // namespace

CaseResult
runCases(const Options &opt)
{
    // ArchSuite only simulates the selected architectures, so the
    // canon-only run needs no separate fast path; the filter below
    // just pins the result to exactly what was asked for.
    Options o = opt;
    if (o.archs.empty()) // Options contract: empty means canon only
        o.archs.push_back("canon");
    CaseResult all = runSuiteCase(o);
    CaseResult r;
    for (const auto &a : o.archs) {
        auto it = all.find(a);
        if (it != all.end())
            r[a] = it->second;
    }
    return r;
}

Table
buildStatsTable(const Options &opt, const CaseResult &cases)
{
    const CanonConfig cfg = opt.fabricConfig();

    Table table("canonsim: " + opt.workloadLabel());
    std::vector<std::string> header = {"Arch"};
    for (const auto &col : runner::statsHeader())
        header.push_back(col);
    table.header(std::move(header));

    const bool have_canon = cases.count("canon") != 0;
    const double canon_cycles =
        have_canon ? static_cast<double>(cases.at("canon").cycles)
                   : 0.0;

    for (const auto &arch : runner::orderedArchs(opt, cases)) {
        std::vector<std::string> row = {arch};
        for (auto &cell : runner::statsCells(cfg, cases.at(arch),
                                             canon_cycles))
            row.push_back(std::move(cell));
        table.addRow(std::move(row));
    }
    return table;
}

namespace
{

/** Render the classic single-scenario report (the no-axis sweep). */
int
renderSingle(const Options &opt, const runner::ScenarioResult &result,
             const cache::ResultStore *store, std::ostream &out,
             std::ostream &err)
{
    out << opt.fabricConfig().describe() << "\n\n";

    if (!result.error.empty()) {
        if (result.error == runner::kNoArchError)
            err << "canonsim: no requested architecture can execute '"
                << opt.workloadLabel() << "'\n";
        else
            err << "canonsim: " << result.error << "\n";
        return 1;
    }

    Table table = buildStatsTable(opt, result.cases);
    table.print(out);
    if (store)
        out << "\n" << store->statsLine() << "\n";
    if (!opt.csvPath.empty()) {
        if (!table.writeCsv(opt.csvPath)) {
            err << "canonsim: cannot write CSV to " << opt.csvPath
                << "\n";
            return 1;
        }
        out << "\nCSV written to " << opt.csvPath << "\n";
    }
    return 0;
}

/** Render the combined sweep report. */
int
renderSweep(const Options &opt, std::size_t total,
            std::vector<runner::ScenarioResult> results,
            const cache::ResultStore *store, std::ostream &out,
            std::ostream &err)
{
    const std::size_t count = results.size();
    runner::SweepResult sweep(std::move(results));

    // Deliberately silent about --jobs: sweep output must be
    // byte-identical no matter how many workers executed it. The
    // shard, by contrast, changes which scenarios this process owns,
    // so it is part of the report.
    out << "canonsim sweep: ";
    if (opt.shard.whole())
        out << count << " scenario" << (count == 1 ? "" : "s")
            << "\n";
    else
        out << count << " of " << total << " scenario"
            << (total == 1 ? "" : "s") << " (shard "
            << opt.shard.label() << ")\n";

    Table table = sweep.table();
    table.print(out);
    if (store)
        out << "\n" << store->statsLine() << "\n";

    for (const auto &r : sweep.scenarios())
        if (!r.error.empty())
            err << "canonsim: scenario '" << r.job.point
                << "' failed: " << r.error << "\n";

    if (!opt.csvPath.empty()) {
        // Shard 0 owns the CSV header; concatenating the shard files
        // in order then reproduces the unsharded CSV byte for byte.
        if (!table.writeCsv(opt.csvPath, opt.shard.index == 0)) {
            err << "canonsim: cannot write CSV to " << opt.csvPath
                << "\n";
            return 1;
        }
        out << "\nCSV written to " << opt.csvPath << "\n";
    }
    return sweep.failureCount() == 0 ? 0 : 1;
}

} // namespace

int
runScenario(const Options &opt, std::ostream &out, std::ostream &err)
{
    runner::SweepSpec spec;
    if (std::string serr = runner::makeSweepSpec(opt.sweepAxes, spec);
        !serr.empty()) {
        // Same shape as main.cc's parse failure: error, blank line,
        // usage, exit 2.
        err << "canonsim: " << serr << "\n\n" << usageText();
        return 2;
    }

    std::vector<runner::SweepJob> jobs = spec.expand(opt);

    // Per-workload relevance guard (generalizes the old model-pins-
    // the-shape special case): an axis no expanded scenario consumes
    // would only repeat identical rows, so it is a usage error. The
    // canonical cases: any shape axis when every scenario runs a
    // model, --sweep sparsity with gemm/spmm-nm, --sweep window
    // without sddmm-window, --sweep n with only sddmm-window.
    for (const auto &[axis_key, axis_values] : opt.sweepAxes) {
        (void)axis_values;
        const bool consumed = std::any_of(
            jobs.begin(), jobs.end(),
            [&key = axis_key](const runner::SweepJob &job) {
                return optionRelevant(job.options, key);
            });
        if (!consumed) {
            err << "canonsim: sweep axis '" << axis_key
                << "' has no effect: every scenario in this sweep"
                   " ignores it (see the per-workload option table in"
                   " --list; include 'none' in a model axis to mix"
                   " model and shape scenarios)\n\n"
                << usageText();
            return 2;
        }
    }

    // Single runs warn -- once per offending flag, on stderr, without
    // failing -- when an explicitly set option is ignored by the
    // selected workload or model (`--nm` with spmm, `--window` with
    // gemm, `--sparsity` with a window-attention model, ...).
    if (opt.sweepAxes.empty()) {
        std::vector<std::string> warned;
        for (const auto &key : opt.explicitKeys) {
            if (optionRelevant(opt, key) ||
                std::find(warned.begin(), warned.end(), key) !=
                    warned.end())
                continue;
            warned.push_back(key);
            err << "canonsim: warning: option '--" << key
                << "' is ignored by "
                << (opt.model.empty()
                        ? "workload '" +
                              std::string(workloadName(opt.workload)) +
                              "'"
                        : "model '" + opt.model + "'")
                << "\n";
        }
    }

    const std::size_t total = jobs.size();
    if (!opt.shard.whole()) {
        const auto [first, last] = runner::shardRange(opt.shard, total);
        jobs = std::vector<runner::SweepJob>(
            jobs.begin() + static_cast<std::ptrdiff_t>(first),
            jobs.begin() + static_cast<std::ptrdiff_t>(last));
    }

    std::optional<cache::ResultStore> store;
    if (!opt.cacheDir.empty() &&
        opt.cacheMode != cache::Mode::Off) {
        store.emplace(opt.cacheDir, opt.cacheMode);
        if (std::string serr = store->prepare(); !serr.empty()) {
            err << "canonsim: " << serr << "\n";
            return 1;
        }
    }

    runner::ScenarioPool pool(opt.jobs);
    std::vector<runner::ScenarioResult> results = pool.run(
        jobs, [](const Options &o) { return runCases(o); },
        store ? &*store : nullptr);

    // A sharded run always uses the sweep report, even for a single
    // scenario: its slice may be empty and its CSV must obey the
    // shard concatenation contract.
    if (opt.sweepAxes.empty() && opt.shard.whole())
        return renderSingle(opt, results.front(),
                            store ? &*store : nullptr, out, err);
    return renderSweep(opt, total, std::move(results),
                       store ? &*store : nullptr, out, err);
}

} // namespace cli
} // namespace canon
