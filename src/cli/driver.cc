#include "cli/driver.hh"

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "power/energy.hh"

namespace canon
{
namespace cli
{

namespace
{

/** Run one workload case across all Section-5 architectures. */
CaseResult
runSuiteCase(const Options &opt)
{
    ArchSuite suite(opt.fabricConfig());
    switch (opt.workload) {
      case Workload::Gemm:
        return suite.gemm(opt.m, opt.k, opt.n, opt.seed);
      case Workload::Spmm:
        return suite.spmm(opt.m, opt.k, opt.n, opt.sparsity, opt.seed);
      case Workload::SpmmNm:
        return suite.spmmNm(opt.m, opt.k, opt.n, opt.nmN, opt.nmM,
                            opt.seed);
      case Workload::Sddmm:
        return suite.sddmm(opt.m, opt.k, opt.n, opt.sparsity,
                           opt.seed);
      case Workload::SddmmWindow:
        return suite.sddmmWindow(opt.m, opt.k, opt.window, opt.seed);
    }
    return {};
}

/** Canon-only fast path: skip the baseline models entirely. */
ExecutionProfile
runCanonCase(const Options &opt)
{
    CanonRunner runner(opt.fabricConfig());
    switch (opt.workload) {
      case Workload::Gemm:
        return runner.gemmShape(opt.m, opt.k, opt.n, opt.seed);
      case Workload::Spmm:
        return runner.spmmShape(opt.m, opt.k, opt.n, opt.sparsity,
                                opt.seed);
      case Workload::SpmmNm:
        return runner.nmShape(opt.m, opt.k, opt.n, opt.nmN, opt.nmM,
                              opt.seed);
      case Workload::Sddmm:
        return runner.sddmmShape(opt.m, opt.k, opt.n, opt.sparsity,
                                 opt.seed);
      case Workload::SddmmWindow:
        return runner.sddmmWindowShape(opt.m, opt.k, opt.window,
                                       opt.seed);
    }
    return {};
}

/** Display order: canon first, then the paper's baseline order. */
std::vector<std::string>
orderedArchs(const Options &opt, const CaseResult &cases)
{
    std::vector<std::string> out;
    for (const auto &a : knownArchs()) {
        bool requested =
            std::find(opt.archs.begin(), opt.archs.end(), a) !=
            opt.archs.end();
        if (requested && cases.count(a))
            out.push_back(a);
    }
    return out;
}

} // namespace

CaseResult
runCases(const Options &opt)
{
    if (!opt.comparesBaselines()) {
        CaseResult r;
        r["canon"] = runCanonCase(opt);
        return r;
    }
    CaseResult all = runSuiteCase(opt);
    // Keep only what was asked for ("canon" is always computed by the
    // suite as the normalization reference, but may be filtered out of
    // the table if it was not requested).
    CaseResult r;
    for (const auto &a : opt.archs) {
        auto it = all.find(a);
        if (it != all.end())
            r[a] = it->second;
    }
    return r;
}

Table
buildStatsTable(const Options &opt, const CaseResult &cases)
{
    const CanonConfig cfg = opt.fabricConfig();
    const EnergyModel energy;

    Table table("canonsim: " + opt.workloadLabel());
    table.header({"Arch", "Cycles", "Time(us)", "Util%", "LaneMACs",
                  "StateXitions", "Energy(uJ)", "Power(mW)",
                  "Perf/Canon"});

    const bool have_canon = cases.count("canon") != 0;
    const double canon_cycles =
        have_canon ? static_cast<double>(cases.at("canon").cycles)
                   : 0.0;

    for (const auto &arch : orderedArchs(opt, cases)) {
        const ExecutionProfile &p = cases.at(arch);
        const EnergyReport rep = energy.evaluate(p, cfg.clockGhz);

        std::string perf = "X";
        if (have_canon && p.cycles > 0)
            perf = Table::fmt(canon_cycles /
                              static_cast<double>(p.cycles));

        table.addRow({
            arch,
            Table::fmtInt(p.cycles),
            Table::fmt(rep.seconds() * 1e6, 3),
            Table::fmt(100.0 * p.utilization(cfg.numMacs()), 1),
            Table::fmtInt(p.get("laneMacs")),
            Table::fmtInt(p.get("stateTransitions")),
            Table::fmt(rep.totalJoules() * 1e6, 3),
            Table::fmt(rep.watts() * 1e3, 2),
            perf,
        });
    }
    return table;
}

int
runScenario(const Options &opt, std::ostream &err)
{
    const CanonConfig cfg = opt.fabricConfig();
    std::cout << cfg.describe() << "\n\n";

    const CaseResult cases = runCases(opt);
    if (cases.empty()) {
        err << "canonsim: no requested architecture can execute '"
            << opt.workloadLabel() << "'\n";
        return 1;
    }

    Table table = buildStatsTable(opt, cases);
    table.print();
    if (!opt.csvPath.empty()) {
        if (!table.writeCsv(opt.csvPath)) {
            err << "canonsim: cannot write CSV to " << opt.csvPath
                << "\n";
            return 1;
        }
        std::cout << "\nCSV written to " << opt.csvPath << "\n";
    }
    return 0;
}

} // namespace cli
} // namespace canon
