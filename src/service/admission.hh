/**
 * @file
 * Request admission for canond: which submitted job runs next, and
 * how many run at once.
 *
 * The daemon admits at most maxActive submissions into the engine
 * concurrently; everything else waits in this queue. The selection
 * rule, in order:
 *
 *  1. higher priority first (the Submit body's priority field);
 *  2. per-client fairness: among equal priorities, the client with
 *     the fewest admissions so far goes first, so one chatty client
 *     cannot starve the others by keeping the queue full;
 *  3. arrival order (the ticket sequence number) as the tie-break,
 *     which keeps scheduling deterministic for tests.
 *
 * The rule lives in pickNext(), a pure function over the waiting
 * list, so the policy is unit-testable without threads; the blocking
 * acquire/release wrapper is a thin mutex+condvar shell around it.
 *
 * Cost-aware quota: admission itself is cheap, so expensive sweeps
 * are throttled *before* they enqueue -- the daemon runs the
 * engine's plan() (a cache forecast that simulates nothing) and
 * rejects a submission whose predicted simulation-job count exceeds
 * the per-request quota. That check is the daemon's, not this
 * queue's; the predicted cost rides the ticket only for reporting.
 */

#ifndef CANON_SERVICE_ADMISSION_HH
#define CANON_SERVICE_ADMISSION_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace canon
{
namespace service
{

/** One submission waiting for (or holding) an engine slot. */
struct Ticket
{
    std::uint64_t seq = 0; //!< arrival order, assigned by enqueue()
    int priority = 0;
    std::string client;
    std::uint64_t predictedJobs = 0; //!< plan() simulation forecast
};

/**
 * Index into @p waiting of the ticket the policy admits next, per
 * the priority / fairness / arrival rule above. @p admitted maps
 * client name to how many submissions it has already had admitted.
 * Requires a non-empty list.
 */
std::size_t
pickNext(const std::vector<Ticket> &waiting,
         const std::map<std::string, std::uint64_t> &admitted);

class AdmissionQueue
{
  public:
    /** @p max_active is clamped to >= 1. */
    explicit AdmissionQueue(int max_active);

    /**
     * Register a submission and return its ticket (seq assigned).
     * Does not block; pair with awaitGrant().
     */
    Ticket enqueue(int priority, const std::string &client,
                   std::uint64_t predicted_jobs);

    /**
     * Block until @p ticket is granted a slot (per pickNext) or the
     * queue is closed. Returns true on a grant -- the caller now
     * holds a slot and must release() it -- false when the queue
     * closed first (the ticket is forgotten).
     */
    bool awaitGrant(const Ticket &ticket);

    /** Return a granted slot; wakes the next eligible waiter. */
    void release();

    /**
     * Close the queue: every current and future awaitGrant returns
     * false. Slots already granted are unaffected (the daemon drains
     * them separately).
     */
    void close();

    /** Submissions currently waiting (diagnostics/stats). */
    std::size_t waitingCount() const;

    /** Slots currently granted (diagnostics/stats). */
    int activeCount() const;

    /** Total submissions ever admitted per client (stats). */
    std::map<std::string, std::uint64_t> admittedByClient() const;

  private:
    void grantLocked(); //!< admit while slots and waiters remain

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    int max_active_;
    int active_ = 0;
    bool closed_ = false;
    std::uint64_t next_seq_ = 0;
    std::vector<Ticket> waiting_;
    std::vector<std::uint64_t> granted_; //!< seqs granted, unclaimed
    std::map<std::string, std::uint64_t> admitted_;
};

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_ADMISSION_HH
