#include "service/client.hh"

#include <cstdlib>

#include "service/render.hh"

namespace canon
{
namespace service
{

namespace
{

std::uint64_t
parseU64(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 10);
}

} // namespace

std::string
Client::connect(const std::string &socketPath)
{
    std::string error;
    fd_ = connectUnix(socketPath, error);
    if (!fd_.valid())
        return error;

    std::string payload = encodeKv({{"proto", kProtocolName}}, error);
    if (!sendFrame(fd_, Frame{MsgType::Hello, payload})) {
        fd_.reset();
        return "hello send failed";
    }

    Frame reply;
    if (!readReply(reply, error)) {
        fd_.reset();
        return error;
    }
    if (reply.type == MsgType::Error) {
        fd_.reset();
        return "daemon refused handshake: " + reply.payload;
    }
    if (reply.type != MsgType::HelloAck) {
        fd_.reset();
        return "unexpected handshake reply";
    }
    KvPairs records;
    if (decodeKv(reply.payload, records, error)) {
        for (const auto &kv : records) {
            if (kv.first == "workers")
                daemon_workers_ = static_cast<int>(parseU64(kv.second));
            else if (kv.first == "cache")
                daemon_cache_on_ = kv.second == "on";
        }
    }
    return "";
}

bool
Client::readReply(Frame &frame, std::string &error)
{
    switch (readFrame(fd_, decoder_, frame, error)) {
      case ReadStatus::Frame:
        return true;
      case ReadStatus::Eof:
        error = "daemon closed the connection";
        return false;
      case ReadStatus::Error:
        break;
    }
    return false;
}

bool
Client::call(const Frame &request, MsgType reply_type,
             std::string &text, std::string &error)
{
    if (!connected()) {
        error = "not connected";
        return false;
    }
    if (!sendFrame(fd_, request)) {
        error = "send failed";
        return false;
    }
    Frame reply;
    if (!readReply(reply, error))
        return false;
    if (reply.type == MsgType::Error) {
        error = "daemon error: " + reply.payload;
        return false;
    }
    if (reply.type != reply_type) {
        error = "unexpected reply frame";
        return false;
    }
    text = reply.payload;
    return true;
}

bool
Client::submit(const SubmitBody &body, const ResultFn &onResult,
               SubmitOutcome &outcome, std::string &error)
{
    outcome = SubmitOutcome();
    if (!connected()) {
        error = "not connected";
        return false;
    }
    std::string payload = encodeSubmit(body, error);
    if (!error.empty())
        return false;
    if (!sendFrame(fd_, Frame{MsgType::Submit, payload})) {
        error = "send failed";
        return false;
    }

    // Reply sequence: Rejected, or Accepted, Result*, Done. A
    // Rejected can also arrive *after* Accepted when the daemon
    // drains before the job is admitted.
    for (;;) {
        Frame frame;
        if (!readReply(frame, error))
            return false;
        KvPairs records;
        std::string kv_error;
        switch (frame.type) {
          case MsgType::Rejected: {
            outcome.accepted = false;
            if (!decodeKv(frame.payload, records, kv_error)) {
                error = "malformed rejected frame: " + kv_error;
                return false;
            }
            for (const auto &kv : records) {
                if (kv.first == "reason")
                    rejectReasonFromName(kv.second, outcome.reason);
                else if (kv.first == "message")
                    outcome.message = kv.second;
            }
            return true;
          }
          case MsgType::Accepted: {
            outcome.accepted = true;
            if (!decodeKv(frame.payload, records, kv_error)) {
                error = "malformed accepted frame: " + kv_error;
                return false;
            }
            for (const auto &kv : records) {
                if (kv.first == "job")
                    outcome.jobId = parseU64(kv.second);
                else if (kv.first == "scenarios")
                    outcome.scenarios = parseU64(kv.second);
                else if (kv.first == "predicted_jobs")
                    outcome.predictedJobs = parseU64(kv.second);
            }
            break;
          }
          case MsgType::Result: {
            std::size_t index = 0;
            std::string text;
            if (!decodeResultFrame(frame.payload, index, text,
                                   error))
                return false;
            if (onResult)
                onResult(index, text);
            break;
          }
          case MsgType::Done:
            if (!decodeDone(frame.payload, outcome.done, error))
                return false;
            return true;
          case MsgType::Error:
            error = "daemon error: " + frame.payload;
            return false;
          default:
            error = "unexpected frame in submit stream";
            return false;
        }
    }
}

bool
Client::plan(const SubmitBody &body, std::string &text,
             std::string &error)
{
    std::string payload = encodeSubmit(body, error);
    if (!error.empty())
        return false;
    // A Plan for an invalid request comes back Rejected, which call()
    // reports as an unexpected frame; surface it more usefully.
    if (!connected()) {
        error = "not connected";
        return false;
    }
    if (!sendFrame(fd_, Frame{MsgType::Plan, payload})) {
        error = "send failed";
        return false;
    }
    Frame reply;
    if (!readReply(reply, error))
        return false;
    if (reply.type == MsgType::Rejected) {
        KvPairs records;
        std::string kv_error, message;
        if (decodeKv(reply.payload, records, kv_error))
            for (const auto &kv : records)
                if (kv.first == "message")
                    message = kv.second;
        error = "plan rejected: " + message;
        return false;
    }
    if (reply.type != MsgType::PlanReply) {
        error = reply.type == MsgType::Error
                    ? "daemon error: " + reply.payload
                    : "unexpected reply frame";
        return false;
    }
    text = reply.payload;
    return true;
}

bool
Client::list(std::string &text, std::string &error)
{
    return call(Frame{MsgType::List, ""}, MsgType::ListReply, text,
                error);
}

bool
Client::stats(std::string &text, std::string &error)
{
    return call(Frame{MsgType::Stats, ""}, MsgType::StatsReply, text,
                error);
}

bool
Client::cancel(std::uint64_t jobId, bool &found, std::string &error)
{
    std::string payload =
        encodeKv({{"job", std::to_string(jobId)}}, error);
    std::string text;
    if (!call(Frame{MsgType::Cancel, payload}, MsgType::CancelReply,
              text, error))
        return false;
    KvPairs records;
    found = false;
    if (decodeKv(text, records, error))
        for (const auto &kv : records)
            if (kv.first == "found")
                found = kv.second == "1";
    return true;
}

} // namespace service
} // namespace canon
