/**
 * @file
 * Thin POSIX Unix-domain stream-socket helpers shared by the daemon
 * and the client library: RAII fd ownership, listen/connect on a
 * filesystem path, full-buffer sends, and blocking framed reads
 * layered on the protocol's incremental FrameDecoder.
 *
 * Everything here is blocking and local; canond's concurrency comes
 * from one handler thread per connection, not from non-blocking
 * I/O. EINTR is retried everywhere, so a signal aimed at the
 * process (SIGTERM for graceful drain) never corrupts a stream
 * mid-frame.
 */

#ifndef CANON_SERVICE_SOCKET_HH
#define CANON_SERVICE_SOCKET_HH

#include <string>

#include "service/protocol.hh"

namespace canon
{
namespace service
{

/** Owning file descriptor; -1 means empty. Move-only. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd_(other.release()) {}
    Fd &operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset(int fd = -1);

    /** shutdown(2) the read side: wakes a blocked reader with EOF. */
    void shutdownRead() const;

    /** shutdown(2) both sides. */
    void shutdownBoth() const;

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on @p path (removing a stale socket file first).
 * Returns an invalid Fd and sets @p error on failure. Paths must fit
 * sockaddr_un (~100 bytes); longer paths are reported, not
 * truncated.
 */
Fd listenUnix(const std::string &path, std::string &error);

/** Connect to a listening Unix socket at @p path. */
Fd connectUnix(const std::string &path, std::string &error);

/** Write all of @p bytes; false on any error (peer gone, ...). */
bool sendAll(const Fd &fd, const std::string &bytes);

/** Encode and send one frame. */
bool sendFrame(const Fd &fd, const Frame &frame);

/** Outcome of one blocking framed read. */
enum class ReadStatus
{
    Frame,  //!< @p out holds the next frame
    Eof,    //!< peer closed (or shutdownRead) between frames
    Error,  //!< I/O failure or protocol decode error; see message
};

/**
 * Block until the decoder yields the next frame from @p fd. EOF in
 * the middle of a frame is an Error (truncated stream), between
 * frames a clean Eof. On Error, @p error carries the reason
 * (including the typed DecodeError name for protocol violations).
 */
ReadStatus readFrame(const Fd &fd, FrameDecoder &decoder, Frame &out,
                     std::string &error);

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_SOCKET_HH
