/**
 * @file
 * canonctl: the command-line client for a running canond.
 *
 * Streamed result blocks, the per-request cache line, and the done
 * summary go to stdout and are deterministic (byte-identical across
 * clients and daemon worker counts -- the CI service gate diffs
 * them). Job ids and queue-wait times are wall-clock artifacts and
 * go to stderr, so `canonctl submit ... > out.txt` is comparable.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "service/client.hh"

namespace
{

const char *kUsage =
    "usage: canonctl --socket PATH COMMAND [args]\n"
    "\n"
    "commands:\n"
    "  submit [--client NAME] [--priority N] SPEC...\n"
    "        run a scenario request; results stream to stdout\n"
    "  plan SPEC...\n"
    "        dry-run cache forecast for the same request\n"
    "  list  the daemon's workload/model/architecture registry\n"
    "  stats the daemon's service.* counters\n"
    "  cancel JOBID\n"
    "        cancel a running job by id\n"
    "\n"
    "request SPEC (applied in order, canonsim option grammar):\n"
    "  --opt KEY=VALUE     one scenario option (workload=spmm, ...)\n"
    "  --sweep KEY=VALUES  one sweep axis (sparsity=0.1,0.5,0.9)\n"
    "  --arch NAME         one architecture (repeatable; 'all')\n";

int
fail(const std::string &message, int code = 1)
{
    std::cerr << "canonctl: " << message << "\n";
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace canon::service;

    std::vector<std::string> args(argv + 1, argv + argc);
    std::string socket, command;
    SubmitBody body;
    std::uint64_t cancel_id = 0;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](std::string &out) -> bool {
            if (i + 1 >= args.size())
                return false;
            out = args[++i];
            return true;
        };
        auto splitKv = [](const std::string &text, std::string &key,
                          std::string &val) -> bool {
            const std::size_t eq = text.find('=');
            if (eq == std::string::npos || eq == 0)
                return false;
            key = text.substr(0, eq);
            val = text.substr(eq + 1);
            return true;
        };

        std::string v, key, val;
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (arg == "--socket") {
            if (!value(socket))
                return fail("--socket needs a value", 2);
        } else if (arg == "--client") {
            if (!value(v))
                return fail("--client needs a value", 2);
            body.client = v;
        } else if (arg == "--priority") {
            if (!value(v))
                return fail("--priority needs a value", 2);
            try {
                body.priority = std::stoi(v);
            } catch (...) {
                return fail("bad --priority '" + v + "'", 2);
            }
        } else if (arg == "--opt") {
            if (!value(v) || !splitKv(v, key, val))
                return fail("--opt needs KEY=VALUE", 2);
            body.opt(key, val);
        } else if (arg == "--sweep") {
            if (!value(v) || !splitKv(v, key, val))
                return fail("--sweep needs KEY=VALUES", 2);
            body.sweep(key, val);
        } else if (arg == "--arch") {
            if (!value(v))
                return fail("--arch needs a value", 2);
            body.arch(v);
        } else if (command.empty() && !arg.empty() && arg[0] != '-') {
            command = arg;
        } else if (command == "cancel" && cancel_id == 0 &&
                   !arg.empty() && arg[0] != '-') {
            try {
                cancel_id = std::stoull(arg);
            } catch (...) {
                return fail("bad job id '" + arg + "'", 2);
            }
        } else {
            std::cerr << "canonctl: bad argument '" << arg << "'\n\n"
                      << kUsage;
            return 2;
        }
    }

    if (socket.empty())
        return fail("--socket is required", 2);
    if (command.empty()) {
        std::cerr << "canonctl: no command\n\n" << kUsage;
        return 2;
    }

    Client client;
    std::string error = client.connect(socket);
    if (!error.empty())
        return fail(error);

    if (command == "list" || command == "stats") {
        std::string text;
        const bool ok = command == "list"
                            ? client.list(text, error)
                            : client.stats(text, error);
        if (!ok)
            return fail(error);
        std::cout << text;
        return 0;
    }

    if (command == "cancel") {
        if (cancel_id == 0)
            return fail("cancel needs a job id", 2);
        bool found = false;
        if (!client.cancel(cancel_id, found, error))
            return fail(error);
        std::cout << (found ? "cancelled job "
                            : "no such job ")
                  << cancel_id << "\n";
        return found ? 0 : 1;
    }

    if (command == "plan") {
        std::string text;
        if (!client.plan(body, text, error))
            return fail(error);
        std::cout << text;
        return 0;
    }

    if (command != "submit") {
        std::cerr << "canonctl: unknown command '" << command
                  << "'\n\n" << kUsage;
        return 2;
    }

    SubmitOutcome outcome;
    const bool ok = client.submit(
        body,
        [](std::size_t, const std::string &text) {
            std::cout << text;
        },
        outcome, error);
    if (!ok)
        return fail(error);
    if (!outcome.accepted) {
        std::cerr << "canonctl: rejected ("
                  << rejectReasonName(outcome.reason)
                  << "): " << outcome.message << "\n";
        return outcome.reason == RejectReason::InvalidRequest ? 2 : 1;
    }

    // Deterministic summary on stdout; wall-clock facts on stderr.
    if (!outcome.done.cacheLine.empty())
        std::cout << outcome.done.cacheLine << "\n";
    std::cout << "done: " << outcome.done.scenarios << " scenarios, "
              << outcome.done.failures << " failures, "
              << outcome.done.cancelled << " cancelled\n";
    std::cerr << "canonctl: job " << outcome.done.jobId
              << " queue-wait " << outcome.done.queueWaitUs
              << " us\n";
    // Cancelled scenarios are counted among the failures.
    return outcome.done.failures > 0 ? 1 : 0;
}
