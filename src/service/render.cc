#include "service/render.hh"

#include "runner/aggregate.hh"

namespace canon
{
namespace service
{

engine::ScenarioRequest
requestFromSubmit(const SubmitBody &body)
{
    engine::ScenarioRequest req;
    std::vector<std::string> archs;
    for (const auto &e : body.entries) {
        switch (e.kind) {
          case SubmitBody::Entry::Kind::Opt:
            req.set(e.key, e.value);
            break;
          case SubmitBody::Entry::Kind::Sweep:
            req.sweep(e.key, e.value);
            break;
          case SubmitBody::Entry::Kind::Arch:
            archs.push_back(e.value);
            break;
        }
    }
    if (!archs.empty())
        req.archs(archs);
    return req;
}

std::string
renderScenarioText(const runner::ScenarioResult &r)
{
    std::string out = "scenario " + std::to_string(r.job.index) +
                      ": " + r.job.options.workloadLabel() + " [" +
                      (r.job.point.empty() ? "-" : r.job.point) +
                      "]\n";
    if (!r.error.empty()) {
        out += "  error: " + r.error + "\n";
        return out;
    }

    const CanonConfig cfg = r.job.options.fabricConfig();
    const bool have_canon = r.cases.count("canon") != 0;
    const double canon_cycles =
        have_canon ? static_cast<double>(r.cases.at("canon").cycles)
                   : 0.0;
    const bool probe = r.job.options.probeSpad;
    const std::vector<std::string> &header =
        runner::statsHeader(probe);

    for (const auto &arch :
         runner::orderedArchs(r.job.options, r.cases)) {
        out += "  " + arch + ":";
        const std::vector<std::string> cells = runner::statsCells(
            cfg, r.cases.at(arch), canon_cycles, probe);
        for (std::size_t c = 0; c < cells.size(); ++c)
            out += " " + header[c] + "=" + cells[c];
        out += "\n";
    }
    return out;
}

std::string
encodeResultFrame(std::size_t index, const runner::ScenarioResult &r)
{
    // One "index=N" record line, a blank separator, then the
    // rendered block verbatim (it contains newlines, so it cannot
    // ride the kv format).
    return "index=" + std::to_string(index) + "\n\n" +
           renderScenarioText(r);
}

bool
decodeResultFrame(const std::string &payload, std::size_t &index,
                  std::string &text, std::string &error)
{
    const std::size_t line_end = payload.find('\n');
    if (line_end == std::string::npos ||
        payload.rfind("index=", 0) != 0 ||
        line_end + 1 >= payload.size() ||
        payload[line_end + 1] != '\n') {
        error = "malformed result frame";
        return false;
    }
    const std::string num = payload.substr(6, line_end - 6);
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos) {
        error = "malformed result index '" + num + "'";
        return false;
    }
    index = static_cast<std::size_t>(std::stoull(num));
    text = payload.substr(line_end + 2);
    error.clear();
    return true;
}

std::string
renderPlanText(const std::vector<engine::ScenarioPlan> &plans,
               bool cached)
{
    std::string out;
    std::size_t hits = 0, misses = 0;
    for (const auto &p : plans) {
        hits += p.forecast == engine::ScenarioPlan::Forecast::Hit;
        misses += p.forecast != engine::ScenarioPlan::Forecast::Hit;
        out += "plan " + std::to_string(p.job.index) + ": " +
               p.job.options.workloadLabel() + " [" +
               (p.job.point.empty() ? "-" : p.job.point) + "] key=" +
               p.key.digest() + " forecast=" +
               engine::forecastName(p.forecast) + "\n";
    }
    if (cached)
        out += "plan forecast: " + std::to_string(hits) + " hits, " +
               std::to_string(misses) +
               " misses; simulation jobs to execute: " +
               std::to_string(misses) + "\n";
    else
        out += "plan forecast: uncached; simulation jobs to"
               " execute: " +
               std::to_string(plans.size()) + "\n";
    return out;
}

} // namespace service
} // namespace canon
