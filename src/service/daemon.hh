/**
 * @file
 * canond: the multi-tenant simulation daemon over canon::engine.
 *
 * One Daemon owns one warm engine::Engine -- worker pool plus
 * content-addressed result cache -- and serves it to any number of
 * concurrent clients over a Unix-domain stream socket speaking
 * canon-rpc-1 (protocol.hh). The engine is the amortization unit:
 * every connection shares the same cache, so scenarios any client
 * has computed are hits for all of them, and a warm daemon answers
 * a repeated sweep without executing a single simulation job.
 *
 * Life of a submission:
 *
 *  1. decode + validate (the same grammar the canonsim CLI uses;
 *     invalid requests get a typed Rejected frame);
 *  2. cheap cost forecast: engine.plan() predicts how many
 *     scenarios would actually simulate; a submission predicted to
 *     exceed the per-request job quota is rejected before it can
 *     occupy a slot (cache hits are free, so a warm sweep passes a
 *     quota its cold twin would fail);
 *  3. admission: an Accepted frame carries the job id, then the
 *     submission waits its turn in the AdmissionQueue (priority,
 *     then per-client fairness, then arrival order; at most
 *     maxActive submissions run concurrently);
 *  4. execution: engine.run streams every scenario outcome back as
 *     a Result frame in expansion order (the pool's ordered
 *     callback), each rendered server-side so all clients see
 *     byte-identical bytes for identical submissions;
 *  5. a Done frame reports the per-request cache delta, failure and
 *     cancellation counts, and the admission wait.
 *
 * Cancellation: every running submission has a runner::CancelToken
 * registered under its job id; a Cancel frame (from any connection)
 * latches it and the pool skips every scenario it has not started.
 * A client that vanishes mid-stream cancels its own job the same
 * way -- the daemon never burns the pool on results nobody reads.
 *
 * Shutdown: requestStop() is async-signal-safe (the accept loop
 * polls a flag). stop() then drains: new submissions are rejected
 * with Rejected(draining), accepted ones run to completion, idle
 * connections are woken with a read shutdown, and every handler
 * thread is joined. If the drain deadline passes with jobs still
 * running, they are cooperatively cancelled and the daemon reports
 * them as leaked (exitCode() 1) -- the CI gate asserts a clean
 * drain exits 0.
 */

#ifndef CANON_SERVICE_DAEMON_HH
#define CANON_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "runner/cancel.hh"
#include "service/admission.hh"
#include "service/protocol.hh"
#include "service/socket.hh"

namespace canon
{
namespace service
{

struct DaemonConfig
{
    /** Filesystem path of the listening Unix socket. */
    std::string socketPath;

    /** Engine worker threads; <= 0 means hardware concurrency. */
    int jobs = 0;

    /** Result-cache directory; empty runs the engine uncached. */
    std::string cacheDir;
    cache::Mode cacheMode = cache::Mode::ReadWrite;

    /** Submissions allowed to run concurrently (clamped >= 1). */
    int maxActive = 2;

    /**
     * Per-submission quota on *predicted simulation jobs* (plan()
     * misses); a forecast above it is rejected with QuotaExceeded.
     * 0 means unlimited. Cache hits never count against it.
     */
    std::uint64_t jobQuota = 0;

    /** Drain deadline at stop(); past it, running jobs leak. */
    int drainWaitMs = 60000;
};

/** Monotonic counters rendered by statsText(); all relaxed. */
struct ServiceStats
{
    std::atomic<std::uint64_t> clientsTotal{0};
    std::atomic<std::uint64_t> clientsActive{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejectedInvalid{0};
    std::atomic<std::uint64_t> rejectedQuota{0};
    std::atomic<std::uint64_t> rejectedDraining{0};
    std::atomic<std::uint64_t> rejectedProtocol{0};
    std::atomic<std::uint64_t> cancelRequests{0};
    std::atomic<std::uint64_t> cancelHonored{0};
    std::atomic<std::uint64_t> scenariosStreamed{0};
    std::atomic<std::uint64_t> scenariosFailed{0};
    std::atomic<std::uint64_t> scenariosCancelled{0};
    std::atomic<std::uint64_t> queueWaitUsTotal{0};
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket, warm the engine (cache directory prepared
     * now, so a bad path fails startup, not the first request), and
     * spawn the accept loop. Returns an empty string on success.
     */
    std::string start();

    /**
     * Flag the daemon to stop. Async-signal-safe: one relaxed
     * atomic store, no locks, no allocation -- callable straight
     * from a SIGTERM handler. The accept loop notices within its
     * poll interval; call stop() (from a normal thread) to drain
     * and join.
     */
    void requestStop() { stopping_.store(true); }

    /**
     * Drain and shut down: reject new submissions, let accepted
     * ones finish (up to drainWaitMs, then cancel cooperatively),
     * wake idle connections, join every thread, close the socket.
     * Idempotent. Returns exitCode().
     */
    int stop();

    /** 0 after a clean drain; 1 when jobs were leaked/cancelled. */
    int exitCode() const { return leaked_.load() ? 1 : 0; }

    /** Block until requestStop() is observed (signal-driven mains). */
    void waitForStopRequest() const;

    const DaemonConfig &config() const { return config_; }
    engine::Engine &engine() { return engine_; }
    const ServiceStats &stats() const { return stats_; }

    /** The "service.*" counter report a Stats frame returns. */
    std::string statsText() const;

  private:
    struct Connection
    {
        // The fd stays owned here (not moved into the handler) so
        // stop() can shutdownRead it to wake an idle reader.
        Fd fd;
        std::thread thread;
        std::atomic<bool> finished{false};
    };

    void acceptLoop();
    void reapFinishedLocked();
    void handleConnection(Connection *conn);
    void handleSubmit(const Fd &fd, const SubmitBody &body);
    void handlePlan(const Fd &fd, const SubmitBody &body);
    bool sendRejected(const Fd &fd, RejectReason reason,
                      const std::string &message);

    DaemonConfig config_;
    engine::Engine engine_;
    AdmissionQueue admission_;
    ServiceStats stats_;

    Fd listen_fd_;
    std::thread accept_thread_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> leaked_{false};

    std::mutex conn_mutex_;
    std::vector<std::unique_ptr<Connection>> connections_;

    // Live submissions: job id -> cancel token, for Cancel frames
    // from any connection; plus a drain-side count of running jobs.
    std::mutex jobs_mutex_;
    std::condition_variable jobs_cv_;
    std::map<std::uint64_t,
             std::shared_ptr<runner::CancelToken>>
        live_jobs_;
    std::atomic<std::uint64_t> next_job_id_{1};
    std::atomic<int> running_jobs_{0};
};

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_DAEMON_HH
