#include "service/daemon.hh"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/registry.hh"
#include "obs/host.hh"
#include "service/render.hh"

namespace canon
{
namespace service
{

namespace
{

/** Accept-loop poll interval: stop-request latency upper bound. */
constexpr int kAcceptPollMs = 100;

Frame
textFrame(MsgType type, std::string text)
{
    return Frame{type, std::move(text)};
}

Frame
kvFrame(MsgType type, const KvPairs &records)
{
    std::string error;
    return Frame{type, encodeKv(records, error)};
}

} // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      engine_(engine::EngineConfig{config_.jobs, config_.cacheDir,
                                   config_.cacheMode}),
      admission_(config_.maxActive)
{
}

Daemon::~Daemon()
{
    stop();
}

std::string
Daemon::start()
{
    if (started_.exchange(true))
        return "daemon already started";

    // Fail on a bad cache directory now, not on the first Submit.
    std::string error = engine_.prepare();
    if (!error.empty())
        return error;

    listen_fd_ = listenUnix(config_.socketPath, error);
    if (!listen_fd_.valid())
        return error;

    accept_thread_ = std::thread([this] { acceptLoop(); });
    return "";
}

void
Daemon::waitForStopRequest() const
{
    while (!stopping_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

int
Daemon::stop()
{
    if (!started_.load() || stopped_.exchange(true))
        return exitCode();

    stopping_.store(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    listen_fd_.reset();
    ::unlink(config_.socketPath.c_str());

    // Wake handler threads idle in readFrame; handlers mid-submission
    // keep their write side and finish streaming. New Submit frames
    // that were already buffered get Rejected(draining).
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (auto &c : connections_)
            c->fd.shutdownRead();
    }

    // Drain: admitted submissions run to completion, up to the
    // deadline; past it, cancel cooperatively and report the leak.
    {
        std::unique_lock<std::mutex> lock(jobs_mutex_);
        const bool drained = jobs_cv_.wait_for(
            lock, std::chrono::milliseconds(config_.drainWaitMs),
            [this] { return running_jobs_.load() == 0; });
        if (!drained) {
            leaked_.store(true);
            for (auto &kv : live_jobs_)
                kv.second->cancel();
        }
    }
    admission_.close();

    std::vector<std::unique_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns.swap(connections_);
    }
    for (auto &c : conns) {
        if (c->thread.joinable())
            c->thread.join();
    }
    return exitCode();
}

void
Daemon::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listen_fd_.get(), POLLIN, 0};
        const int rc = ::poll(&pfd, 1, kAcceptPollMs);
        {
            std::lock_guard<std::mutex> lock(conn_mutex_);
            reapFinishedLocked();
        }
        if (rc <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
        if (!client.valid())
            continue;

        stats_.clientsTotal.fetch_add(1);
        stats_.clientsActive.fetch_add(1);

        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.push_back(std::make_unique<Connection>());
        Connection *conn = connections_.back().get();
        conn->fd = std::move(client);
        conn->thread =
            std::thread([this, conn] { handleConnection(conn); });
    }
}

void
Daemon::reapFinishedLocked()
{
    for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished.load()) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Daemon::handleConnection(Connection *conn)
{
    const Fd &fd = conn->fd;
    FrameDecoder decoder;
    Frame frame;
    std::string error;
    bool hello_done = false;
    bool alive = true;

    while (alive) {
        const ReadStatus status =
            readFrame(fd, decoder, frame, error);
        if (status == ReadStatus::Eof)
            break;
        if (status == ReadStatus::Error) {
            stats_.rejectedProtocol.fetch_add(1);
            sendFrame(fd, textFrame(MsgType::Error, error));
            break;
        }

        // The handshake must come first so a peer speaking another
        // protocol revision fails fast instead of mid-submission.
        if (!hello_done) {
            if (frame.type != MsgType::Hello) {
                stats_.rejectedProtocol.fetch_add(1);
                sendFrame(fd, textFrame(MsgType::Error,
                                        "expected hello frame"));
                break;
            }
            KvPairs records;
            std::string proto;
            if (decodeKv(frame.payload, records, error)) {
                for (const auto &kv : records)
                    if (kv.first == "proto")
                        proto = kv.second;
            }
            if (proto != kProtocolName) {
                stats_.rejectedProtocol.fetch_add(1);
                sendFrame(fd, textFrame(
                    MsgType::Error,
                    "unsupported protocol '" + proto + "' (want " +
                        kProtocolName + ")"));
                break;
            }
            sendFrame(fd, kvFrame(
                MsgType::HelloAck,
                {{"proto", kProtocolName},
                 {"workers", std::to_string(engine_.workers())},
                 {"cache", engine_.store() ? "on" : "off"}}));
            hello_done = true;
            continue;
        }

        switch (frame.type) {
          case MsgType::Submit:
          case MsgType::Plan: {
            SubmitBody body;
            if (!decodeSubmit(frame.payload, body, error)) {
                stats_.rejectedProtocol.fetch_add(1);
                sendRejected(fd, RejectReason::ProtocolError, error);
                break;
            }
            if (frame.type == MsgType::Submit)
                handleSubmit(fd, body);
            else
                handlePlan(fd, body);
            break;
          }
          case MsgType::List:
            sendFrame(fd, textFrame(MsgType::ListReply,
                                    engine::listText()));
            break;
          case MsgType::Stats:
            sendFrame(fd,
                      textFrame(MsgType::StatsReply, statsText()));
            break;
          case MsgType::Cancel: {
            stats_.cancelRequests.fetch_add(1);
            KvPairs records;
            std::uint64_t job_id = 0;
            if (decodeKv(frame.payload, records, error)) {
                for (const auto &kv : records)
                    if (kv.first == "job")
                        job_id = std::strtoull(kv.second.c_str(),
                                               nullptr, 10);
            }
            bool found = false;
            {
                std::lock_guard<std::mutex> lock(jobs_mutex_);
                auto it = live_jobs_.find(job_id);
                if (it != live_jobs_.end()) {
                    it->second->cancel();
                    found = true;
                }
            }
            if (found)
                stats_.cancelHonored.fetch_add(1);
            sendFrame(fd, kvFrame(MsgType::CancelReply,
                                  {{"found", found ? "1" : "0"}}));
            break;
          }
          default:
            stats_.rejectedProtocol.fetch_add(1);
            sendFrame(fd, textFrame(MsgType::Error,
                                    "unexpected frame type"));
            alive = false;
            break;
        }
    }
    stats_.clientsActive.fetch_sub(1);
    conn->finished.store(true);
}

bool
Daemon::sendRejected(const Fd &fd, RejectReason reason,
                     const std::string &message)
{
    switch (reason) {
      case RejectReason::InvalidRequest:
        stats_.rejectedInvalid.fetch_add(1);
        break;
      case RejectReason::QuotaExceeded:
        stats_.rejectedQuota.fetch_add(1);
        break;
      case RejectReason::Draining:
        stats_.rejectedDraining.fetch_add(1);
        break;
      case RejectReason::ProtocolError:
        // counted at the decode site
        break;
    }
    // Error text can quote user input; newlines cannot ride a kv
    // value, so flatten them rather than dropping the message.
    std::string flat = message;
    for (char &c : flat)
        if (c == '\n')
            c = ' ';
    return sendFrame(fd, kvFrame(MsgType::Rejected,
                                 {{"reason", rejectReasonName(reason)},
                                  {"message", flat}}));
}

void
Daemon::handleSubmit(const Fd &fd, const SubmitBody &body)
{
    stats_.submitted.fetch_add(1);

    engine::ScenarioRequest req = requestFromSubmit(body);
    if (!req.validate()) {
        sendRejected(fd, RejectReason::InvalidRequest, req.error());
        return;
    }
    if (stopping_.load()) {
        sendRejected(fd, RejectReason::Draining,
                     "daemon is shutting down");
        return;
    }

    // plan() is the cheap cost forecast: it simulates nothing and
    // touches no cache counters, so it can gate every submission.
    const std::vector<engine::ScenarioPlan> plans = engine_.plan(req);
    std::uint64_t predicted = 0;
    for (const auto &p : plans)
        predicted += p.forecast != engine::ScenarioPlan::Forecast::Hit;
    if (config_.jobQuota != 0 && predicted > config_.jobQuota) {
        sendRejected(fd, RejectReason::QuotaExceeded,
                     "forecast " + std::to_string(predicted) +
                         " simulation jobs exceeds quota " +
                         std::to_string(config_.jobQuota) +
                         " (cache hits are free; warm the cache or"
                         " narrow the sweep)");
        return;
    }

    const std::uint64_t job_id = next_job_id_.fetch_add(1);
    auto token = std::make_shared<runner::CancelToken>();
    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        live_jobs_.emplace(job_id, token);
        running_jobs_.fetch_add(1);
    }

    if (!sendFrame(fd, kvFrame(
            MsgType::Accepted,
            {{"job", std::to_string(job_id)},
             {"scenarios", std::to_string(plans.size())},
             {"predicted_jobs", std::to_string(predicted)}}))) {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        live_jobs_.erase(job_id);
        running_jobs_.fetch_sub(1);
        jobs_cv_.notify_all();
        return;
    }

    const std::uint64_t wait_t0 = obs::hostNowUs();
    const Ticket ticket =
        admission_.enqueue(body.priority, body.client, predicted);
    const bool granted = admission_.awaitGrant(ticket);
    const std::uint64_t queue_wait = obs::hostNowUs() - wait_t0;
    stats_.queueWaitUsTotal.fetch_add(queue_wait);

    engine::ResultSet rs;
    bool peer_gone = false;
    if (granted) {
        stats_.admitted.fetch_add(1);
        try {
            rs = engine_.run(
                req,
                [&](const runner::ScenarioResult &r) {
                    stats_.scenariosStreamed.fetch_add(1);
                    if (!sendFrame(fd, Frame{
                            MsgType::Result,
                            encodeResultFrame(r.job.index, r)})) {
                        // Nobody is reading: stop simulating the
                        // rest of this submission.
                        token->cancel();
                        throw std::runtime_error(
                            "client disconnected mid-stream");
                    }
                },
                token.get());
        } catch (const std::exception &) {
            peer_gone = true;
        }
        admission_.release();
    }

    {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        live_jobs_.erase(job_id);
        running_jobs_.fetch_sub(1);
        jobs_cv_.notify_all();
    }

    if (!granted) {
        // The queue closed before this submission got a slot (drain
        // deadline passed): it never ran.
        sendRejected(fd, RejectReason::Draining,
                     "daemon drained before the job was admitted");
        return;
    }
    if (peer_gone)
        return;

    stats_.completed.fetch_add(1);
    stats_.scenariosFailed.fetch_add(rs.failureCount());
    stats_.scenariosCancelled.fetch_add(rs.cancelledCount());

    DoneBody done;
    done.jobId = job_id;
    done.scenarios = rs.size();
    done.failures = rs.failureCount();
    done.cancelled = rs.cancelledCount();
    done.cacheLine = rs.cacheStatsLine();
    done.queueWaitUs = queue_wait;
    std::string error;
    sendFrame(fd, Frame{MsgType::Done, encodeDone(done, error)});
}

void
Daemon::handlePlan(const Fd &fd, const SubmitBody &body)
{
    engine::ScenarioRequest req = requestFromSubmit(body);
    if (!req.validate()) {
        sendRejected(fd, RejectReason::InvalidRequest, req.error());
        return;
    }
    const std::vector<engine::ScenarioPlan> plans = engine_.plan(req);
    sendFrame(fd, textFrame(
        MsgType::PlanReply,
        renderPlanText(plans, engine_.store() != nullptr)));
}

std::string
Daemon::statsText() const
{
    auto line = [](const std::string &key, const std::string &value) {
        return key + ": " + value + "\n";
    };
    auto count = [&](const std::string &key,
                     const std::atomic<std::uint64_t> &v) {
        return line(key, std::to_string(v.load()));
    };

    std::string out;
    out += line("service.proto", kProtocolName);
    out += line("service.engine.workers",
                std::to_string(engine_.workers()));
    out += line("service.engine.cache",
                engine_.store() ? "on" : "off");
    out += count("service.clients.total", stats_.clientsTotal);
    out += count("service.clients.active", stats_.clientsActive);
    out += count("service.requests.submitted", stats_.submitted);
    out += count("service.requests.admitted", stats_.admitted);
    out += count("service.requests.completed", stats_.completed);
    out += count("service.requests.rejected.invalid_request",
                 stats_.rejectedInvalid);
    out += count("service.requests.rejected.quota_exceeded",
                 stats_.rejectedQuota);
    out += count("service.requests.rejected.draining",
                 stats_.rejectedDraining);
    out += count("service.requests.rejected.protocol_error",
                 stats_.rejectedProtocol);
    out += count("service.cancel.requests", stats_.cancelRequests);
    out += count("service.cancel.honored", stats_.cancelHonored);
    out += count("service.scenarios.streamed",
                 stats_.scenariosStreamed);
    out += count("service.scenarios.failed", stats_.scenariosFailed);
    out += count("service.scenarios.cancelled",
                 stats_.scenariosCancelled);
    out += line("service.queue.waiting",
                std::to_string(admission_.waitingCount()));
    out += line("service.queue.active",
                std::to_string(admission_.activeCount()));
    out += count("service.queue.wait_us_total",
                 stats_.queueWaitUsTotal);
    out += line("service.cache.line",
                engine_.store() ? engine_.cacheStatsLine() : "off");
    return out;
}

} // namespace service
} // namespace canon
