/**
 * @file
 * canon-rpc-1: the framed wire protocol between canond and its
 * clients (canonctl, service::Client, any embedder speaking the
 * frame format over a local stream socket).
 *
 * A frame is a 5-byte header followed by the payload bytes:
 *
 *     offset 0  u32 little-endian payload length N
 *     offset 4  u8  message type (MsgType)
 *     offset 5  N payload bytes
 *
 * The decoder is incremental -- feed() arbitrary chunks, next()
 * yields complete frames -- and total: any byte sequence either
 * yields frames, waits for more input, or stops with a *typed*
 * error (DecodeError), never a crash or an unbounded allocation.
 * Two properties make it safe against a hostile or broken peer:
 *
 *  - a declared payload length above the hard cap (kMaxFramePayload,
 *    checked before any payload allocation) stops the stream with
 *    DecodeError::OversizeFrame;
 *  - an unknown type byte stops the stream with
 *    DecodeError::UnknownType (later protocol revisions bump the
 *    hello version instead of silently adding frame types).
 *
 * A decoder that has stopped stays stopped: framing is byte-exact,
 * so there is no way to resynchronize a stream after a bad header.
 *
 * Payloads are newline-delimited "key=value" records (encodeKv /
 * decodeKv): deterministic, order-preserving, duplicate keys
 * allowed, keys free of '=' and '\n', values free of '\n'. The
 * Submit/Plan body (SubmitBody) and the Done summary (DoneBody) are
 * typed views over that record format.
 *
 * This header is a leaf on purpose: no sockets, no engine types --
 * the codec must be testable (and fuzzable) without a daemon.
 */

#ifndef CANON_SERVICE_PROTOCOL_HH
#define CANON_SERVICE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace canon
{
namespace service
{

/** Protocol name + revision, exchanged in Hello/HelloAck. */
inline constexpr const char *kProtocolName = "canon-rpc-1";

/**
 * Hard cap on a frame's payload bytes, enforced by encodeFrame
 * (panic: a server bug) and by FrameDecoder before any allocation
 * (typed error: a hostile or broken peer). Far above any legitimate
 * message -- a streamed result block is a few hundred bytes -- but
 * small enough that a malicious length field cannot balloon memory.
 */
inline constexpr std::size_t kMaxFramePayload = 1u << 20; // 1 MiB

/** Frame header bytes: u32 length + u8 type. */
inline constexpr std::size_t kFrameHeaderBytes = 5;

enum class MsgType : std::uint8_t
{
    // Client -> server.
    Hello = 1,  //!< protocol handshake: "proto=canon-rpc-1"
    Submit = 2, //!< run a scenario request, stream results
    Plan = 3,   //!< dry-run forecast of a scenario request
    List = 4,   //!< the engine registry listing
    Stats = 5,  //!< service.* counters + engine cache totals
    Cancel = 6, //!< cancel a job by id ("job=N")

    // Server -> client.
    HelloAck = 16,    //!< handshake reply: proto, workers, cache
    Accepted = 17,    //!< submit admitted: job id, forecast
    Rejected = 18,    //!< submit refused: typed reason + message
    Result = 19,      //!< one scenario outcome, expansion order
    Done = 20,        //!< end of a submit's result stream
    PlanReply = 21,   //!< rendered plan table + forecast line
    ListReply = 22,   //!< rendered registry listing
    StatsReply = 23,  //!< rendered service.* counter lines
    CancelReply = 24, //!< "found=0|1" for a cancel request
    Error = 25,       //!< protocol-level failure; connection closes
};

/** True for type bytes the current protocol revision defines. */
bool knownMsgType(std::uint8_t type);

struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

/**
 * Wire bytes for one frame. Panics (server-side bug, not peer
 * input) when the payload exceeds kMaxFramePayload.
 */
std::string encodeFrame(const Frame &frame);

/** Why a FrameDecoder stopped; None while the stream is healthy. */
enum class DecodeError
{
    None,
    OversizeFrame, //!< declared length above kMaxFramePayload
    UnknownType,   //!< type byte outside MsgType
};

/** Human-readable name of a DecodeError ("oversize-frame", ...). */
const char *decodeErrorName(DecodeError e);

class FrameDecoder
{
  public:
    /** @p max_payload lowers the cap (tests); never raises it. */
    explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

    /** Append raw stream bytes; cheap, never fails. */
    void feed(const char *data, std::size_t n);
    void feed(const std::string &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    enum class Status
    {
        NeedMore, //!< no complete frame buffered yet
        Ready,    //!< @p out holds the next frame
        Error,    //!< stream stopped; see error()
    };

    /**
     * Extract the next complete frame into @p out. Frames decode in
     * feed order; a stopped decoder reports Error forever.
     */
    Status next(Frame &out);

    DecodeError error() const { return error_; }

    /** Bytes buffered but not yet consumed (tests/diagnostics). */
    std::size_t pendingBytes() const { return buffer_.size() - pos_; }

  private:
    std::size_t max_payload_;
    std::string buffer_;
    std::size_t pos_ = 0; //!< consumed prefix of buffer_
    DecodeError error_ = DecodeError::None;
};

// ---- payload record format --------------------------------------------

/** Ordered key=value records; duplicate keys meaningful. */
using KvPairs =
    std::vector<std::pair<std::string, std::string>>;

/**
 * Render records as "key=value\n" lines. Returns an empty string
 * and sets @p error when a key is empty or contains '=' or '\n', or
 * a value contains '\n' (the caller is about to put user text on the
 * wire; a value that cannot round-trip must be rejected, not
 * mangled). A valid empty record list encodes to "".
 */
std::string encodeKv(const KvPairs &records, std::string &error);

/**
 * Parse "key=value\n" lines. Rejects (false + @p error) a line with
 * no '=', an empty key, or a payload not ending in '\n' (unless
 * empty). Order and duplicates preserved.
 */
bool decodeKv(const std::string &payload, KvPairs &out,
              std::string &error);

// ---- typed message bodies ---------------------------------------------

/**
 * The scenario specification a Submit or Plan frame carries: an
 * ordered list of entries mirroring how a canonsim command line
 * builds a request (option applications in order, sweep axes in
 * declaration order, the architecture set), plus the client identity
 * and priority the admission queue uses.
 */
struct SubmitBody
{
    std::string client = "client"; //!< fairness bucket
    int priority = 0;              //!< higher admits first

    struct Entry
    {
        enum class Kind
        {
            Opt,   //!< "opt.<key>=<value>": one scenario option
            Sweep, //!< "sweep.<key>=<values>": one sweep axis
            Arch,  //!< "arch=<name>": one architecture
        };
        Kind kind = Kind::Opt;
        std::string key;   //!< option/axis key; empty for Arch
        std::string value; //!< option value, axis list, or arch name
    };
    std::vector<Entry> entries;

    SubmitBody &opt(const std::string &key, const std::string &value)
    {
        entries.push_back({Entry::Kind::Opt, key, value});
        return *this;
    }
    SubmitBody &sweep(const std::string &key,
                      const std::string &values)
    {
        entries.push_back({Entry::Kind::Sweep, key, values});
        return *this;
    }
    SubmitBody &arch(const std::string &name)
    {
        entries.push_back({Entry::Kind::Arch, "", name});
        return *this;
    }
};

/** SubmitBody to payload bytes; empty + @p error on bad text. */
std::string encodeSubmit(const SubmitBody &body, std::string &error);

/**
 * Payload bytes to SubmitBody. Strict: unknown record keys, a
 * malformed priority, or a missing client reject the payload (a
 * typed protocol error, not a guess).
 */
bool decodeSubmit(const std::string &payload, SubmitBody &out,
                  std::string &error);

/** Why a Submit was refused. */
enum class RejectReason
{
    InvalidRequest, //!< request validation failed; message has why
    QuotaExceeded,  //!< plan() forecast too many simulation jobs
    Draining,       //!< daemon is shutting down
    ProtocolError,  //!< malformed frame/payload on this connection
};

const char *rejectReasonName(RejectReason r);

/** Parse a reason name back; false for an unknown name. */
bool rejectReasonFromName(const std::string &name, RejectReason &out);

/**
 * The Done frame's summary of one finished submission. queueWaitUs
 * is wall-clock (admission wait) and therefore the one
 * non-deterministic field: clients must keep it out of any output
 * they byte-compare.
 */
struct DoneBody
{
    std::uint64_t jobId = 0;
    std::uint64_t scenarios = 0;
    std::uint64_t failures = 0;
    std::uint64_t cancelled = 0;
    std::string cacheLine; //!< per-request delta; empty when uncached
    std::uint64_t queueWaitUs = 0;
};

std::string encodeDone(const DoneBody &body, std::string &error);
bool decodeDone(const std::string &payload, DoneBody &out,
                std::string &error);

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_PROTOCOL_HH
