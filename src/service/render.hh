/**
 * @file
 * The bridge between the wire protocol and the engine: turning a
 * decoded SubmitBody into a typed engine::ScenarioRequest, and
 * turning engine results into the text blocks canond streams back.
 *
 * Rendering lives on the server so every client of one daemon sees
 * the same bytes for the same scenario: a Result frame's text is a
 * pure function of the scenario's simulated outcome and its
 * expansion index -- no timestamps, job ids, or per-connection state
 * -- which is what makes N clients submitting the same sweep get
 * byte-identical result streams (asserted by the service tests and
 * the CI service gate).
 */

#ifndef CANON_SERVICE_RENDER_HH
#define CANON_SERVICE_RENDER_HH

#include <string>
#include <vector>

#include "engine/engine.hh"
#include "engine/request.hh"
#include "runner/pool.hh"
#include "service/protocol.hh"

namespace canon
{
namespace service
{

/**
 * Build a ScenarioRequest from a Submit body, applying entries in
 * wire order through the same grammar the canonsim command line
 * uses (options via ScenarioRequest::set, sweep axes via sweep(),
 * the architecture set collected across arch entries -- "all"
 * expands per the CLI rule). Validation is the caller's: the
 * returned request carries any application error exactly as the CLI
 * would report it.
 */
engine::ScenarioRequest requestFromSubmit(const SubmitBody &body);

/**
 * The deterministic text block for one scenario outcome, streamed
 * as a Result frame's payload after its "index=N" record line:
 *
 *     scenario 3: spmm 256x256x64 s=0.50 [sparsity=0.5]
 *       canon: Cycles=1234 Time(us)=1.234 ...
 *       zed: ...
 *
 * A failed scenario renders its error text instead of arch rows.
 */
std::string renderScenarioText(const runner::ScenarioResult &r);

/**
 * Result frame payload: "index=N\n" + the rendered text (the text
 * is the last record's value-free remainder; it may span lines, so
 * it is carried verbatim after a blank separator line).
 */
std::string encodeResultFrame(std::size_t index,
                              const runner::ScenarioResult &r);

/** Split a Result payload back into index + text; false on junk. */
bool decodeResultFrame(const std::string &payload, std::size_t &index,
                       std::string &text, std::string &error);

/**
 * The PlanReply text: one line per scenario (point, cache digest,
 * forecast) plus the dry-run summary line. Deterministic for a
 * given store state.
 */
std::string renderPlanText(
    const std::vector<engine::ScenarioPlan> &plans, bool cached);

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_RENDER_HH
