/**
 * @file
 * service::Client -- the embeddable canon-rpc-1 client library that
 * canonctl is a thin shell around.
 *
 * One Client is one connection to a running canond: connect()
 * performs the protocol handshake (and reports the daemon's worker
 * count and cache mode), then each call issues one request and
 * blocks until its terminal reply. submit() streams every Result
 * frame's rendered text to a callback in expansion order as the
 * daemon produces it, so a caller can pipe results while the sweep
 * is still running; the terminal Accepted/Rejected/Done state lands
 * in a SubmitOutcome.
 *
 * The class is deliberately synchronous and single-threaded: the
 * protocol never interleaves replies for one connection, so a
 * blocking read loop is the whole client. Callers wanting
 * concurrency open more Clients -- that is the daemon's multi-tenant
 * model, one connection per tenant.
 */

#ifndef CANON_SERVICE_CLIENT_HH
#define CANON_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hh"
#include "service/socket.hh"

namespace canon
{
namespace service
{

/** Terminal state of one submit(): rejected, or accepted + done. */
struct SubmitOutcome
{
    bool accepted = false;

    // Accepted path.
    std::uint64_t jobId = 0;
    std::uint64_t scenarios = 0;     //!< expansion size forecast
    std::uint64_t predictedJobs = 0; //!< plan() miss forecast
    DoneBody done;                   //!< valid once accepted

    // Rejected path.
    RejectReason reason = RejectReason::InvalidRequest;
    std::string message;
};

class Client
{
  public:
    Client() = default;

    /**
     * Connect to the daemon socket and run the Hello handshake.
     * Returns an empty string on success, the failure otherwise (a
     * protocol-version mismatch is reported with both names).
     */
    std::string connect(const std::string &socketPath);

    bool connected() const { return fd_.valid(); }
    void close() { fd_.reset(); }

    /** Daemon facts from the handshake. */
    int daemonWorkers() const { return daemon_workers_; }
    bool daemonCacheOn() const { return daemon_cache_on_; }

    /**
     * Called once per streamed Result frame, in expansion order:
     * the scenario's expansion index and its rendered text block.
     */
    using ResultFn =
        std::function<void(std::size_t index,
                           const std::string &text)>;

    /**
     * Run one submission to its terminal frame. Returns false (with
     * @p error) only on transport or protocol failure; a Rejected
     * reply is a *successful* call with outcome.accepted == false.
     */
    bool submit(const SubmitBody &body, const ResultFn &onResult,
                SubmitOutcome &outcome, std::string &error);

    /** Dry-run forecast; @p text is the rendered plan table. */
    bool plan(const SubmitBody &body, std::string &text,
              std::string &error);

    /** The engine registry listing, as canonsim --list prints it. */
    bool list(std::string &text, std::string &error);

    /** The daemon's service.* counter report. */
    bool stats(std::string &text, std::string &error);

    /** Cancel job @p jobId; @p found says whether it was live. */
    bool cancel(std::uint64_t jobId, bool &found, std::string &error);

  private:
    bool call(const Frame &request, MsgType reply, std::string &text,
              std::string &error);
    bool readReply(Frame &frame, std::string &error);

    Fd fd_;
    FrameDecoder decoder_;
    int daemon_workers_ = 0;
    bool daemon_cache_on_ = false;
};

} // namespace service
} // namespace canon

#endif // CANON_SERVICE_CLIENT_HH
