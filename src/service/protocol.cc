#include "service/protocol.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace canon
{
namespace service
{

namespace
{

/** Parse a non-negative decimal u64; false on junk or overflow. */
bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit =
            static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

} // namespace

bool
knownMsgType(std::uint8_t type)
{
    switch (static_cast<MsgType>(type)) {
      case MsgType::Hello:
      case MsgType::Submit:
      case MsgType::Plan:
      case MsgType::List:
      case MsgType::Stats:
      case MsgType::Cancel:
      case MsgType::HelloAck:
      case MsgType::Accepted:
      case MsgType::Rejected:
      case MsgType::Result:
      case MsgType::Done:
      case MsgType::PlanReply:
      case MsgType::ListReply:
      case MsgType::StatsReply:
      case MsgType::CancelReply:
      case MsgType::Error:
        return true;
    }
    return false;
}

std::string
encodeFrame(const Frame &frame)
{
    panicIf(frame.payload.size() > kMaxFramePayload,
            "encodeFrame: payload of ", frame.payload.size(),
            " bytes exceeds the ", kMaxFramePayload, "-byte cap");
    const std::uint32_t n =
        static_cast<std::uint32_t>(frame.payload.size());
    std::string out;
    out.reserve(kFrameHeaderBytes + frame.payload.size());
    out.push_back(static_cast<char>(n & 0xff));
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    out.push_back(static_cast<char>((n >> 24) & 0xff));
    out.push_back(static_cast<char>(frame.type));
    out += frame.payload;
    return out;
}

const char *
decodeErrorName(DecodeError e)
{
    switch (e) {
      case DecodeError::None:
        return "none";
      case DecodeError::OversizeFrame:
        return "oversize-frame";
      case DecodeError::UnknownType:
        return "unknown-type";
    }
    return "?";
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(std::min(max_payload, kMaxFramePayload))
{
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    if (error_ != DecodeError::None)
        return; // a stopped stream cannot resynchronize
    buffer_.append(data, n);
}

FrameDecoder::Status
FrameDecoder::next(Frame &out)
{
    if (error_ != DecodeError::None)
        return Status::Error;

    // Drop the consumed prefix lazily, only once it dominates the
    // buffer, so a long stream of small frames stays O(bytes).
    if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }

    const std::size_t avail = buffer_.size() - pos_;
    if (avail < kFrameHeaderBytes)
        return Status::NeedMore;

    const unsigned char *h = reinterpret_cast<const unsigned char *>(
        buffer_.data() + pos_);
    const std::uint32_t len = static_cast<std::uint32_t>(h[0]) |
                              (static_cast<std::uint32_t>(h[1]) << 8) |
                              (static_cast<std::uint32_t>(h[2])
                               << 16) |
                              (static_cast<std::uint32_t>(h[3])
                               << 24);

    // Both header checks run before any payload is buffered past
    // the header: a hostile length or type byte costs 5 bytes, not
    // an allocation.
    if (len > max_payload_) {
        error_ = DecodeError::OversizeFrame;
        return Status::Error;
    }
    if (!knownMsgType(h[4])) {
        error_ = DecodeError::UnknownType;
        return Status::Error;
    }

    if (avail < kFrameHeaderBytes + len)
        return Status::NeedMore;

    out.type = static_cast<MsgType>(h[4]);
    out.payload.assign(buffer_, pos_ + kFrameHeaderBytes, len);
    pos_ += kFrameHeaderBytes + len;
    return Status::Ready;
}

std::string
encodeKv(const KvPairs &records, std::string &error)
{
    std::string out;
    for (const auto &[key, value] : records) {
        if (key.empty() ||
            key.find_first_of("=\n") != std::string::npos) {
            error = "invalid record key '" + key + "'";
            return {};
        }
        if (value.find('\n') != std::string::npos) {
            error = "record value for '" + key +
                    "' contains a newline";
            return {};
        }
        out += key;
        out += '=';
        out += value;
        out += '\n';
    }
    error.clear();
    return out;
}

bool
decodeKv(const std::string &payload, KvPairs &out,
         std::string &error)
{
    out.clear();
    if (payload.empty())
        return true;
    if (payload.back() != '\n') {
        error = "truncated record payload (missing final newline)";
        return false;
    }
    std::size_t start = 0;
    while (start < payload.size()) {
        const std::size_t end = payload.find('\n', start);
        const std::string line = payload.substr(start, end - start);
        start = end + 1;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "malformed record line '" + line + "'";
            return false;
        }
        out.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    error.clear();
    return true;
}

std::string
encodeSubmit(const SubmitBody &body, std::string &error)
{
    KvPairs records;
    records.emplace_back("client", body.client);
    records.emplace_back("priority", std::to_string(body.priority));
    for (const auto &e : body.entries) {
        switch (e.kind) {
          case SubmitBody::Entry::Kind::Opt:
            records.emplace_back("opt." + e.key, e.value);
            break;
          case SubmitBody::Entry::Kind::Sweep:
            records.emplace_back("sweep." + e.key, e.value);
            break;
          case SubmitBody::Entry::Kind::Arch:
            records.emplace_back("arch", e.value);
            break;
        }
    }
    return encodeKv(records, error);
}

bool
decodeSubmit(const std::string &payload, SubmitBody &out,
             std::string &error)
{
    KvPairs records;
    if (!decodeKv(payload, records, error))
        return false;

    out = SubmitBody{};
    out.client.clear();
    bool have_client = false, have_priority = false;
    for (const auto &[key, value] : records) {
        if (key == "client") {
            if (value.empty()) {
                error = "empty client name";
                return false;
            }
            out.client = value;
            have_client = true;
        } else if (key == "priority") {
            std::uint64_t p = 0;
            bool neg = !value.empty() && value[0] == '-';
            if (!parseU64(neg ? value.substr(1) : value, p) ||
                p > 1000) {
                error = "malformed priority '" + value + "'";
                return false;
            }
            out.priority =
                neg ? -static_cast<int>(p) : static_cast<int>(p);
            have_priority = true;
        } else if (key.rfind("opt.", 0) == 0) {
            if (key.size() == 4) {
                error = "empty option key";
                return false;
            }
            out.entries.push_back({SubmitBody::Entry::Kind::Opt,
                                   key.substr(4), value});
        } else if (key.rfind("sweep.", 0) == 0) {
            if (key.size() == 6) {
                error = "empty sweep key";
                return false;
            }
            out.entries.push_back({SubmitBody::Entry::Kind::Sweep,
                                   key.substr(6), value});
        } else if (key == "arch") {
            out.entries.push_back(
                {SubmitBody::Entry::Kind::Arch, "", value});
        } else {
            error = "unknown submit record '" + key + "'";
            return false;
        }
    }
    if (!have_client || !have_priority) {
        error = "submit payload missing client/priority";
        return false;
    }
    return true;
}

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::InvalidRequest:
        return "invalid-request";
      case RejectReason::QuotaExceeded:
        return "quota-exceeded";
      case RejectReason::Draining:
        return "draining";
      case RejectReason::ProtocolError:
        return "protocol-error";
    }
    return "?";
}

bool
rejectReasonFromName(const std::string &name, RejectReason &out)
{
    for (RejectReason r :
         {RejectReason::InvalidRequest, RejectReason::QuotaExceeded,
          RejectReason::Draining, RejectReason::ProtocolError}) {
        if (name == rejectReasonName(r)) {
            out = r;
            return true;
        }
    }
    return false;
}

std::string
encodeDone(const DoneBody &body, std::string &error)
{
    KvPairs records = {
        {"job", std::to_string(body.jobId)},
        {"scenarios", std::to_string(body.scenarios)},
        {"failures", std::to_string(body.failures)},
        {"cancelled", std::to_string(body.cancelled)},
        {"cache", body.cacheLine},
        {"queue_wait_us", std::to_string(body.queueWaitUs)},
    };
    return encodeKv(records, error);
}

bool
decodeDone(const std::string &payload, DoneBody &out,
           std::string &error)
{
    KvPairs records;
    if (!decodeKv(payload, records, error))
        return false;
    out = DoneBody{};
    for (const auto &[key, value] : records) {
        if (key == "cache") {
            out.cacheLine = value;
            continue;
        }
        std::uint64_t v = 0;
        if (!parseU64(value, v)) {
            error = "malformed done field '" + key + "=" + value +
                    "'";
            return false;
        }
        if (key == "job")
            out.jobId = v;
        else if (key == "scenarios")
            out.scenarios = v;
        else if (key == "failures")
            out.failures = v;
        else if (key == "cancelled")
            out.cancelled = v;
        else if (key == "queue_wait_us")
            out.queueWaitUs = v;
        else {
            error = "unknown done record '" + key + "'";
            return false;
        }
    }
    return true;
}

} // namespace service
} // namespace canon
