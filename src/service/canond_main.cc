/**
 * @file
 * canond entry point: parse flags, run the daemon until SIGTERM or
 * SIGINT, drain, and exit 0 only on a clean drain.
 *
 * Shares the --jobs/--cache-dir/--cache grammar with canonsim via
 * engine::parseCommonFlag, so the daemon's engine is configured in
 * exactly the words every other entry point uses.
 */

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "engine/common_flags.hh"
#include "service/daemon.hh"

namespace
{

canon::service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: requestStop is one atomic store.
    if (g_daemon)
        g_daemon->requestStop();
}

const char *kUsage =
    "usage: canond --socket PATH [options]\n"
    "\n"
    "Serve a shared canon::engine over a Unix-domain socket\n"
    "(protocol canon-rpc-1; talk to it with canonctl).\n"
    "\n"
    "  --socket PATH       listening Unix socket path (required)\n"
    "  --jobs N            engine worker threads (default: hardware)\n"
    "  --cache-dir DIR     shared result-cache directory\n"
    "  --cache MODE        cache mode: rw|ro|wo (needs --cache-dir)\n"
    "  --max-active N      concurrent submissions (default 2)\n"
    "  --job-quota N       reject submissions forecast to simulate\n"
    "                      more than N scenarios (0 = unlimited)\n"
    "  --drain-wait-ms N   drain deadline at shutdown (default 60000)\n"
    "\n"
    "SIGTERM/SIGINT drain in-flight jobs; exit 0 means no job was\n"
    "leaked.\n";

bool
parseInt(const std::string &text, long long &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoll(text);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace canon;

    std::vector<std::string> args(argv + 1, argv + argc);
    engine::CommonFlags flags;
    service::DaemonConfig cfg;

    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string key = args[i], value;
        const std::size_t eq = key.find('=');
        bool have_value = false;
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        }
        auto need = [&]() -> bool {
            if (have_value)
                return true;
            if (i + 1 >= args.size())
                return false;
            value = args[++i];
            return true;
        };

        if (key == "--help" || key == "-h") {
            std::cout << kUsage;
            return 0;
        }

        std::string error;
        if (engine::isCommonFlag(key)) {
            if (!engine::isCommonBoolFlag(key) && !need()) {
                std::cerr << "canond: " << key
                          << " needs a value\n\n" << kUsage;
                return 2;
            }
            if (engine::parseCommonFlag(key, value, flags, error) ==
                engine::FlagParse::Error) {
                std::cerr << "canond: " << error << "\n\n" << kUsage;
                return 2;
            }
            continue;
        }

        long long n = 0;
        if (key == "--socket" && need()) {
            cfg.socketPath = value;
        } else if (key == "--max-active" && need() &&
                   parseInt(value, n) && n > 0) {
            cfg.maxActive = static_cast<int>(n);
        } else if (key == "--job-quota" && need() &&
                   parseInt(value, n)) {
            cfg.jobQuota = static_cast<std::uint64_t>(n);
        } else if (key == "--drain-wait-ms" && need() &&
                   parseInt(value, n) && n >= 0) {
            cfg.drainWaitMs = static_cast<int>(n);
        } else {
            std::cerr << "canond: bad flag or value '" << args[i]
                      << "'\n\n" << kUsage;
            return 2;
        }
    }

    if (cfg.socketPath.empty()) {
        std::cerr << "canond: --socket is required\n\n" << kUsage;
        return 2;
    }
    std::string error = engine::validateCommonFlags(flags);
    if (!error.empty()) {
        std::cerr << "canond: " << error << "\n\n" << kUsage;
        return 2;
    }

    cfg.jobs = flags.jobs;
    cfg.cacheDir = flags.cacheDir;
    cfg.cacheMode = flags.cacheMode;

    service::Daemon daemon(cfg);
    error = daemon.start();
    if (!error.empty()) {
        std::cerr << "canond: " << error << "\n";
        return 1;
    }

    g_daemon = &daemon;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::cerr << "canond: listening on " << cfg.socketPath
              << " (workers=" << daemon.engine().workers()
              << ", cache="
              << (daemon.engine().store() ? "on" : "off") << ")\n";

    daemon.waitForStopRequest();
    std::cerr << "canond: draining\n";
    const int rc = daemon.stop();
    std::cerr << (rc == 0 ? "canond: clean shutdown\n"
                          : "canond: leaked jobs at shutdown\n");
    return rc;
}
