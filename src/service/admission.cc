#include "service/admission.hh"

#include <algorithm>

#include "common/logging.hh"

namespace canon
{
namespace service
{

std::size_t
pickNext(const std::vector<Ticket> &waiting,
         const std::map<std::string, std::uint64_t> &admitted)
{
    panicIf(waiting.empty(), "pickNext on an empty waiting list");
    auto servedOf = [&](const Ticket &t) -> std::uint64_t {
        auto it = admitted.find(t.client);
        return it == admitted.end() ? 0 : it->second;
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < waiting.size(); ++i) {
        const Ticket &a = waiting[i], &b = waiting[best];
        if (a.priority != b.priority) {
            if (a.priority > b.priority)
                best = i;
            continue;
        }
        const std::uint64_t sa = servedOf(a), sb = servedOf(b);
        if (sa != sb) {
            if (sa < sb)
                best = i;
            continue;
        }
        if (a.seq < b.seq)
            best = i;
    }
    return best;
}

AdmissionQueue::AdmissionQueue(int max_active)
    : max_active_(std::max(1, max_active))
{
}

Ticket
AdmissionQueue::enqueue(int priority, const std::string &client,
                        std::uint64_t predicted_jobs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Ticket t;
    t.seq = next_seq_++;
    t.priority = priority;
    t.client = client;
    t.predictedJobs = predicted_jobs;
    waiting_.push_back(t);
    grantLocked();
    return t;
}

void
AdmissionQueue::grantLocked()
{
    // Move tickets from waiting to granted while slots remain; the
    // grantee may be any waiter, so every grant notifies all.
    bool granted_any = false;
    while (active_ < max_active_ && !waiting_.empty()) {
        const std::size_t i = pickNext(waiting_, admitted_);
        ++active_;
        ++admitted_[waiting_[i].client];
        granted_.push_back(waiting_[i].seq);
        waiting_.erase(waiting_.begin() +
                       static_cast<std::ptrdiff_t>(i));
        granted_any = true;
    }
    if (granted_any)
        cv_.notify_all();
}

bool
AdmissionQueue::awaitGrant(const Ticket &ticket)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        auto it = std::find(granted_.begin(), granted_.end(),
                            ticket.seq);
        if (it != granted_.end()) {
            granted_.erase(it);
            return true;
        }
        if (closed_) {
            // Forget the ticket whether it was still waiting or
            // never enqueued; a closed queue grants nothing.
            auto w = std::find_if(waiting_.begin(), waiting_.end(),
                                  [&](const Ticket &t) {
                                      return t.seq == ticket.seq;
                                  });
            if (w != waiting_.end())
                waiting_.erase(w);
            return false;
        }
        cv_.wait(lock);
    }
}

void
AdmissionQueue::release()
{
    std::lock_guard<std::mutex> lock(mutex_);
    panicIf(active_ <= 0, "AdmissionQueue::release without a grant");
    --active_;
    grantLocked();
}

void
AdmissionQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
}

std::size_t
AdmissionQueue::waitingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return waiting_.size();
}

int
AdmissionQueue::activeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

std::map<std::string, std::uint64_t>
AdmissionQueue::admittedByClient() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

} // namespace service
} // namespace canon
