#include "service/socket.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace canon
{
namespace service
{

namespace
{

std::string
errnoText(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

/** Fill a sockaddr_un; false when the path does not fit. */
bool
fillAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

void
Fd::shutdownRead() const
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

void
Fd::shutdownBoth() const
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Fd
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr)) {
        error = "socket path '" + path +
                "' is empty or too long for a Unix socket";
        return Fd();
    }

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoText("socket");
        return Fd();
    }

    // A stale socket file from a dead daemon would fail the bind;
    // removing it is safe because a live daemon holds the listening
    // socket, not just the path.
    ::unlink(path.c_str());

    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoText("bind '" + path + "'");
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        error = errnoText("listen '" + path + "'");
        return Fd();
    }
    error.clear();
    return fd;
}

Fd
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddr(path, addr)) {
        error = "socket path '" + path +
                "' is empty or too long for a Unix socket";
        return Fd();
    }

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoText("socket");
        return Fd();
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        error = errnoText("connect '" + path + "'");
        return Fd();
    }
    error.clear();
    return fd;
}

bool
sendAll(const Fd &fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here, not
        // as a process-wide SIGPIPE.
        const ssize_t n =
            ::send(fd.get(), bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendFrame(const Fd &fd, const Frame &frame)
{
    return sendAll(fd, encodeFrame(frame));
}

ReadStatus
readFrame(const Fd &fd, FrameDecoder &decoder, Frame &out,
          std::string &error)
{
    char buf[4096];
    for (;;) {
        switch (decoder.next(out)) {
          case FrameDecoder::Status::Ready:
            return ReadStatus::Frame;
          case FrameDecoder::Status::Error:
            error = std::string("protocol error: ") +
                    decodeErrorName(decoder.error());
            return ReadStatus::Error;
          case FrameDecoder::Status::NeedMore:
            break;
        }
        const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoText("recv");
            return ReadStatus::Error;
        }
        if (n == 0) {
            if (decoder.pendingBytes() != 0) {
                error = "connection closed mid-frame";
                return ReadStatus::Error;
            }
            return ReadStatus::Eof;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
    }
}

} // namespace service
} // namespace canon
