/**
 * @file
 * A minimal streaming JSON writer -- the repo takes no third-party
 * dependencies, and the obs layer only ever needs to *emit* JSON
 * (objects, arrays, strings, unsigned integers, booleans), never parse
 * or mutate it. Commas and nesting are managed by an explicit stack,
 * so the emitted bytes are a pure function of the call sequence:
 * exactly what the byte-identical-across---jobs determinism gate needs.
 */

#ifndef CANON_OBS_JSON_HH
#define CANON_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace canon
{
namespace obs
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by exactly one value. */
    void key(const std::string &k);

    void value(const std::string &s);
    void value(const char *s);
    void value(std::uint64_t v);
    void value(int v);
    void value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

  private:
    void separate();
    void escape(const std::string &s);

    std::ostream &os_;
    // One frame per open container: true after the first element, so
    // separate() knows whether to emit a comma.
    std::vector<bool> frames_;
    bool pendingKey_ = false;
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_JSON_HH
