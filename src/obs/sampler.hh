/**
 * @file
 * The cycle-resolved sampler: a typed, commit-only schedule partition
 * that reads a fixed probe set out of a StatGroup tree every N cycles.
 *
 * Zero-cost-when-off is structural, not branchy: when sampling is
 * disabled no CycleSampler is constructed and no partition is
 * registered, so the cycle loop is bit-for-bit the schedule it would
 * have been without this file. When enabled, the sampler joins the
 * commit phase (kHasTickCompute = false elides it from the compute
 * pass) and each sample is a handful of pointer reads: every probe is
 * resolved to direct Counter pointers at construction, which is safe
 * because StatGroup's maps are node-based and the fabric registers all
 * counters before it first ticks.
 *
 * Sampling in the commit phase makes the series deterministic: every
 * counter bumps in the compute phase, so by any commit pass the values
 * for that cycle are final regardless of partition or registration
 * order.
 */

#ifndef CANON_OBS_SAMPLER_HH
#define CANON_OBS_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "obs/series.hh"

namespace canon
{

class StatGroup;
class Counter;

namespace obs
{

class CycleSampler final
{
  public:
    static constexpr bool kHasTickCompute = false;

    /**
     * Resolve the probe set against @p stats (a fabric stats tree) and
     * sample it every @p every cycles. @p every must be > 0.
     *
     * Probes: each tracked metric is summed fabric-wide into component
     * "fabric", and the orchestrator residency/matching metrics are
     * additionally split per top-level "orch*" child.
     */
    CycleSampler(const StatGroup &stats, std::uint64_t every);

    void tickCompute() {}

    void
    tickCommit()
    {
        if (++tick_ % every_ == 0)
            capture();
    }

    /**
     * Record the final partial-interval sample (no-op when the last
     * cycle already landed on the cadence). Call after the run drains.
     */
    void captureFinal();

    /** Cycles observed since registration (the series time axis). */
    std::uint64_t tick() const { return tick_; }

    /** Move the accumulated series out; the sampler keeps ticking. */
    SeriesSet take();

  private:
    struct Probe
    {
        std::string metric;
        std::string component;
        std::vector<const Counter *> sources;
    };

    void capture();

    std::uint64_t every_;
    std::uint64_t tick_ = 0;
    std::uint64_t lastCaptured_ = 0;
    bool captured_ = false;
    std::vector<Probe> probes_;
    std::vector<std::vector<SeriesPoint>> points_;
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_SAMPLER_HH
