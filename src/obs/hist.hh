/**
 * @file
 * A fixed-shape log2-bucket histogram for occupancy and search-length
 * distributions.
 *
 * The bucket scheme is deliberately rigid: bucket 0 counts exact
 * zeros, bucket k (k >= 1) counts values in [2^(k-1), 2^k), and the
 * last bucket additionally absorbs everything at or above its lower
 * bound. No configuration, no resizing, no floating point -- the
 * emitted counts are a pure function of the recorded value sequence,
 * which is what keeps histogram artifacts byte-identical across
 * --jobs values and registration shuffles.
 */

#ifndef CANON_OBS_HIST_HH
#define CANON_OBS_HIST_HH

#include <array>
#include <cstdint>
#include <string>

namespace canon
{
namespace obs
{

class Histogram
{
  public:
    /**
     * 17 buckets: {0}, [1,2), [2,4), ... [32768, inf). Channel
     * occupancies are tiny; tag-buffer depths reach the thousands
     * under the lifted proxy-row caps, so the top bucket is comfort
     * headroom, not an expected landing spot.
     */
    static constexpr int kBuckets = 17;

    /** Bucket index for @p v (overflow clamps to the last bucket). */
    static int bucketOf(std::uint64_t v);

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t bucketLo(int b);

    /** Human-readable bucket label ("0", "1", "2-3", "32768+"). */
    static std::string bucketLabel(int b);

    void
    record(std::uint64_t v)
    {
        ++counts_[static_cast<std::size_t>(bucketOf(v))];
        ++samples_;
    }

    std::uint64_t samples() const { return samples_; }
    std::uint64_t count(int b) const
    {
        return counts_[static_cast<std::size_t>(b)];
    }
    const std::array<std::uint64_t, kBuckets> &counts() const
    {
        return counts_;
    }

    friend bool
    operator==(const Histogram &a, const Histogram &b)
    {
        return a.samples_ == b.samples_ && a.counts_ == b.counts_;
    }

  private:
    std::uint64_t samples_ = 0;
    std::array<std::uint64_t, kBuckets> counts_{};
};

/** One named histogram of one component (mirrors Series labelling). */
struct HistogramOut
{
    std::string metric;    //!< e.g. "occupancy", "tagDepth"
    std::string component; //!< e.g. "vert", "msg", "orch3"
    Histogram hist;

    friend bool
    operator==(const HistogramOut &a, const HistogramOut &b)
    {
        return a.metric == b.metric && a.component == b.component &&
               a.hist == b.hist;
    }
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_HIST_HH
